package corpus

// Retry-policy tests: the corpus's bounded retry-with-backoff must heal
// transient faults (a times-capped injected error fires once, the retry
// succeeds) and degrade predictably when faults persist (a read exhausts
// its attempts and becomes a miss; a write exhausts its attempts and
// surfaces an error the caller must ledger).

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"pokeemu/internal/faults"
)

// tempFiles lists leftover atomic-write temp files under the corpus root.
func tempFiles(c *Corpus) ([]string, error) {
	var out []string
	err := filepath.WalkDir(c.Dir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func TestWriteRetryHealsTransientFault(t *testing.T) {
	t.Cleanup(faults.Disarm)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faults.ArmSpec("corpus.write:times=1:err=transient EIO"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutInstr(testEntry("push_r")); err != nil {
		t.Fatalf("put with one transient write fault = %v, want recovery", err)
	}
	faults.Disarm()
	if _, ok := c.GetInstr(testKey("push_r")); !ok {
		t.Fatal("entry missing after recovered write")
	}
	st := c.Stats()
	if st.WriteRetries == 0 || st.WriteFailures != 0 {
		t.Errorf("stats = %+v, want retries > 0 and no failures", st)
	}
}

func TestRenameRetryHealsTransientFault(t *testing.T) {
	t.Cleanup(faults.Disarm)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faults.ArmSpec("corpus.rename:times=1:err=transient rename"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutInstr(testEntry("leave")); err != nil {
		t.Fatalf("put with one transient rename fault = %v, want recovery", err)
	}
	faults.Disarm()
	if _, ok := c.GetInstr(testKey("leave")); !ok {
		t.Fatal("entry missing after recovered rename")
	}
	// The injected rename failure must not leave a temp file behind.
	ents, err := tempFiles(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("temp files left after rename fault: %v", ents)
	}
}

func TestReadRetryHealsTransientFault(t *testing.T) {
	t.Cleanup(faults.Disarm)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutInstr(testEntry("push_r")); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.ArmSpec("corpus.read:times=1:err=transient EIO"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetInstr(testKey("push_r")); !ok {
		t.Fatal("one transient read fault was not retried into a hit")
	}
	st := c.Stats()
	if st.ReadRetries == 0 || st.ReadFailures != 0 {
		t.Errorf("stats = %+v, want retries > 0 and no failures", st)
	}
}

func TestReadExhaustionDegradesToMiss(t *testing.T) {
	t.Cleanup(faults.Disarm)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutInstr(testEntry("push_r")); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.ArmSpec("corpus.read:p=1:err=EIO"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetInstr(testKey("push_r")); ok {
		t.Fatal("persistently failing read reported a hit")
	}
	faults.Disarm()
	st := c.Stats()
	if st.ReadFailures != 1 {
		t.Errorf("ReadFailures = %d, want 1", st.ReadFailures)
	}
	// The object is intact: reads succeed again once the fault clears.
	if _, ok := c.GetInstr(testKey("push_r")); !ok {
		t.Fatal("object unreadable after faults cleared")
	}
}

func TestWriteExhaustionSurfacesError(t *testing.T) {
	t.Cleanup(faults.Disarm)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faults.ArmSpec("corpus.write:p=1:err=EIO"); err != nil {
		t.Fatal(err)
	}
	err = c.PutInstr(testEntry("push_r"))
	if err == nil {
		t.Fatal("persistently failing write reported success")
	}
	if !strings.Contains(err.Error(), "attempts") || !faults.IsInjected(err) {
		t.Errorf("error %v should name the attempt budget and wrap the injected fault", err)
	}
	faults.Disarm()
	st := c.Stats()
	if st.WriteFailures != 1 {
		t.Errorf("WriteFailures = %d, want 1", st.WriteFailures)
	}
	if _, ok := c.GetInstr(testKey("push_r")); ok {
		t.Fatal("failed write still produced a readable object")
	}
}
