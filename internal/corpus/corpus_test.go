package corpus

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(handler string) InstrKey {
	return InstrKey{
		Handler: handler, PathCap: 256, MaxSteps: 0, Seed: 1,
		Config: "bochs", SymexVersion: 1, GenVersion: 1,
	}
}

func testEntry(handler string) *InstrEntry {
	return &InstrEntry{
		Key:         testKey(handler),
		HandlerName: handler,
		Mnemonic:    handler,
		Paths:       3,
		Exhausted:   true,
		Queries:     42,
		Generated:   2,
		Tests: []CachedTest{
			{ID: handler + "#0", PathIndex: 0, Prog: []byte{0x90, 0xf4},
				Diffs: map[string]uint64{"st_eax": 7}},
			{ID: handler + "#2", PathIndex: 2, Prog: []byte{0x40, 0xf4},
				Outcome: Outcome{Kind: 1, Vector: 13, HasErr: true}},
		},
	}
}

func TestInstrRoundtrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetInstr(testKey("push_r")); ok {
		t.Fatal("hit on empty corpus")
	}
	want := testEntry("push_r")
	if err := c.PutInstr(want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetInstr(testKey("push_r"))
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Paths != want.Paths || got.Queries != want.Queries ||
		!got.Exhausted || len(got.Tests) != 2 {
		t.Errorf("entry mismatch: %+v", got)
	}
	if got.Tests[0].Diffs["st_eax"] != 7 {
		t.Errorf("diffs lost: %+v", got.Tests[0])
	}
	if string(got.Tests[1].Prog) != string(want.Tests[1].Prog) {
		t.Errorf("prog bytes lost")
	}
	if got.Tests[1].Outcome.Vector != 13 || !got.Tests[1].Outcome.HasErr {
		t.Errorf("outcome lost: %+v", got.Tests[1].Outcome)
	}
}

// TestKeyDimensionsMiss checks that every key field participates in the
// content address: changing any one of them must miss.
func TestKeyDimensionsMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutInstr(testEntry("push_r")); err != nil {
		t.Fatal(err)
	}
	mutants := []InstrKey{}
	for i := 0; i < 7; i++ {
		k := testKey("push_r")
		switch i {
		case 0:
			k.Handler = "pop_r"
		case 1:
			k.PathCap = 512
		case 2:
			k.MaxSteps = 100
		case 3:
			k.Seed = 2
		case 4:
			k.Config = "hardware"
		case 5:
			k.SymexVersion = 2
		case 6:
			k.GenVersion = 2
		}
		mutants = append(mutants, k)
	}
	for i, k := range mutants {
		if _, ok := c.GetInstr(k); ok {
			t.Errorf("mutant key %d unexpectedly hit", i)
		}
	}
	if _, ok := c.GetInstr(testKey("push_r")); !ok {
		t.Error("original key should still hit")
	}
}

func TestCorruptObjectIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutInstr(testEntry("push_r")); err != nil {
		t.Fatal(err)
	}
	hash := testKey("push_r").Hash()
	path := filepath.Join(dir, "objects", hash[:2], hash+".json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetInstr(testKey("push_r")); ok {
		t.Error("corrupt object should miss")
	}
	// Recompute-and-overwrite restores it.
	if err := c.PutInstr(testEntry("push_r")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetInstr(testKey("push_r")); !ok {
		t.Error("rewrite should hit again")
	}
}

func TestFormatVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("expected version mismatch error")
	}
}

func TestStatsAndConcurrentAccess(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	handlers := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, h := range handlers {
		wg.Add(1)
		go func(h string) {
			defer wg.Done()
			if err := c.PutInstr(testEntry(h)); err != nil {
				t.Error(err)
			}
			if _, ok := c.GetInstr(testKey(h)); !ok {
				t.Errorf("miss after concurrent put of %q", h)
			}
		}(h)
	}
	wg.Wait()
	s := c.Stats()
	if s.Writes != int64(len(handlers)) || s.Hits != int64(len(handlers)) {
		t.Errorf("stats = %+v, want %d writes and hits", s, len(handlers))
	}
}

func TestExecRoundtrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := ExecKey{ProgSHA: ExecProgSHA([]byte{1, 2}, []byte{3}), MaxSteps: 4096, SnapVer: 1}
	e := &ExecEntry{Key: k, Impls: []ExecOutcome{
		{Impl: "fidelis", Steps: 10, Snap: []byte("snapA")},
		{Impl: "celer", Steps: 9, Snap: []byte("snapB")},
		{Impl: "hardware", Steps: 8, BaselineFault: true, Snap: []byte("snapC")},
	}}
	if err := c.PutExec(e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetExec(k)
	if !ok {
		t.Fatal("miss after put")
	}
	if len(got.Impls) != 3 || got.Impls[2].Impl != "hardware" ||
		!got.Impls[2].BaselineFault || string(got.Impls[0].Snap) != "snapA" {
		t.Errorf("exec entry mismatch: %+v", got)
	}
	// Different program bytes → different key.
	k2 := ExecKey{ProgSHA: ExecProgSHA([]byte{1, 2}, []byte{4}), MaxSteps: 4096, SnapVer: 1}
	if _, ok := c.GetExec(k2); ok {
		t.Error("different program unexpectedly hit")
	}
}
