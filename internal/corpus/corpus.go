// Package corpus implements the persistent, content-addressed test corpus:
// an on-disk cache of exploration results (per-handler path summaries and
// minimized solver model assignments), generated test programs, the
// descriptor-parse summaries, and optionally executed-test outcomes. A warm
// campaign run resolves every instruction against the corpus and skips
// symbolic exploration and test generation entirely, going straight to
// execution and difference analysis — the corpus-driven shape Icicle and
// DiffSpec use for emulator testing, applied to the paper's re-runnable,
// highly parallel pipeline.
//
// Layout (all content under a single root directory):
//
//	<root>/VERSION                    corpus format version (one line)
//	<root>/objects/<hh>/<hash>.json   one entry per cache key
//
// Every entry is keyed by a SHA-256 over a canonical rendering of its full
// key — handler, path cap, step cap, seed, semantics configuration, and the
// symex/testgen version numbers — so any input or toolchain change misses
// cleanly instead of returning stale artifacts. Writes are atomic
// (temp file + rename), so concurrent campaign workers and interrupted runs
// never leave a torn entry behind.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pokeemu/internal/faults"
	"pokeemu/internal/symex"
)

// FormatVersion is the on-disk layout version of the corpus itself.
const FormatVersion = 1

// Transient-I/O retry policy: every object read and write is attempted up
// to ioAttempts times with doubling backoff from ioBackoff, so a fleeting
// EIO (or an injected one — the corpus.read/write/rename fault points)
// costs a retry, not a lost artifact. A read that still fails degrades to
// a cache miss (the caller recomputes); a write that still fails returns
// an error the campaign routes into its degraded ledger instead of
// dropping silently.
const (
	ioAttempts = 3
	ioBackoff  = time.Millisecond
)

// Corpus is handle to one on-disk corpus root.
type Corpus struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
	writes atomic.Int64

	readRetries   atomic.Int64
	writeRetries  atomic.Int64
	readFailures  atomic.Int64
	writeFailures atomic.Int64

	mu sync.Mutex // serializes directory creation
}

// Stats counts corpus traffic since Open. ReadRetries/WriteRetries count
// extra I/O attempts after a transient failure; ReadFailures/WriteFailures
// count operations that exhausted every attempt (a failed read degrades to
// a miss, a failed write surfaces as an error from Put*).
type Stats struct {
	Hits, Misses, Writes int64

	ReadRetries   int64
	WriteRetries  int64
	ReadFailures  int64
	WriteFailures int64
}

// ErrVersionMismatch marks a corpus root written by an incompatible format
// version. Unlike I/O failures (which callers may degrade past by running
// uncached), a mismatch means the on-disk data is not safe to reuse or
// overwrite, so callers must refuse it.
var ErrVersionMismatch = errors.New("corpus format version mismatch")

// Open opens (creating if necessary) the corpus rooted at dir. An existing
// root with a different format version is rejected.
func Open(dir string) (*Corpus, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	verFile := filepath.Join(dir, "VERSION")
	if b, err := os.ReadFile(verFile); err == nil {
		got := strings.TrimSpace(string(b))
		if got != strconv.Itoa(FormatVersion) {
			return nil, fmt.Errorf("corpus: %s has format version %s, want %d: %w",
				dir, got, FormatVersion, ErrVersionMismatch)
		}
	} else {
		if err := writeAtomic(verFile, []byte(strconv.Itoa(FormatVersion)+"\n"), "VERSION"); err != nil {
			return nil, err
		}
	}
	return &Corpus{dir: dir}, nil
}

// Dir returns the corpus root directory.
func (c *Corpus) Dir() string { return c.dir }

// Stats returns traffic counters.
func (c *Corpus) Stats() Stats {
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Writes: c.writes.Load(),
		ReadRetries: c.readRetries.Load(), WriteRetries: c.writeRetries.Load(),
		ReadFailures: c.readFailures.Load(), WriteFailures: c.writeFailures.Load(),
	}
}

// objectPath maps a key hash to its file.
func (c *Corpus) objectPath(hash string) string {
	return filepath.Join(c.dir, "objects", hash[:2], hash+".json")
}

// get loads the object with the given key hash into v. A missing or
// unreadable (torn, corrupt, persistently erroring) object is a miss,
// never an error: the caller recomputes and overwrites. Transient read
// errors are retried with backoff before degrading to a miss.
func (c *Corpus) get(hash string, v any) bool {
	b, err := c.readObject(hash)
	if err != nil {
		c.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(b, v); err != nil {
		c.misses.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// readObject reads one object file with bounded retry. A missing file is
// returned immediately (the common miss); any other error — including an
// injected corpus.read fault — is retried with doubling backoff and
// counted as a ReadFailure once every attempt is exhausted.
func (c *Corpus) readObject(hash string) ([]byte, error) {
	path := c.objectPath(hash)
	var lastErr error
	for attempt := 0; attempt < ioAttempts; attempt++ {
		if attempt > 0 {
			c.readRetries.Add(1)
			time.Sleep(ioBackoff << (attempt - 1))
		}
		if err := faults.Hit(faults.CorpusRead, hash); err != nil {
			lastErr = err
			continue
		}
		b, err := os.ReadFile(path)
		if err == nil {
			return b, nil
		}
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		lastErr = err
	}
	c.readFailures.Add(1)
	return nil, lastErr
}

// put stores v under the given key hash atomically, retrying transient
// write and rename failures with backoff. A put that exhausts its attempts
// returns an error; callers must surface it (the campaign counts it in the
// report's degraded section) rather than drop it.
func (c *Corpus) put(hash string, v any) error {
	path := c.objectPath(hash)
	c.mu.Lock()
	err := os.MkdirAll(filepath.Dir(path), 0o755)
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("corpus: encoding %s: %w", hash, err)
	}
	var lastErr error
	for attempt := 0; attempt < ioAttempts; attempt++ {
		if attempt > 0 {
			c.writeRetries.Add(1)
			time.Sleep(ioBackoff << (attempt - 1))
		}
		if lastErr = writeAtomic(path, b, hash); lastErr == nil {
			c.writes.Add(1)
			return nil
		}
	}
	c.writeFailures.Add(1)
	return fmt.Errorf("corpus: writing %s after %d attempts: %w", hash, ioAttempts, lastErr)
}

// writeAtomic writes data to path via a uniquely-named temp file and rename,
// so readers never observe a partial object and concurrent writers of the
// same key race benignly (last rename wins; contents are identical anyway,
// being derived from the key). faultKey names the write at the
// corpus.write (before the temp write) and corpus.rename (between write
// and commit) fault points, the two places a torn or lost object can
// originate.
func writeAtomic(path string, data []byte, faultKey string) error {
	if err := faults.Hit(faults.CorpusWrite, faultKey); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: writing %s: %v/%v", path, werr, cerr)
	}
	if err := faults.Hit(faults.CorpusRename, faultKey); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// hashKey renders the canonical key string and hashes it.
func hashKey(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(h[:])
}

// ---------------------------------------------------------------------------
// Per-instruction exploration + generation entries.

// InstrKey identifies one instruction's exploration/generation artifact.
// Every field participates in the content hash.
type InstrKey struct {
	Handler  string `json:"handler"` // unique-instruction key (core.UniqueInstr.Key)
	PathCap  int    `json:"path_cap"`
	MaxSteps int    `json:"max_steps"` // per-path IR step cap (0 = engine default)
	Seed     int64  `json:"seed"`
	Config   string `json:"config"` // semantics configuration label (e.g. "bochs")

	SymexVersion int `json:"symex_version"`
	GenVersion   int `json:"gen_version"`
}

// Hash returns the content address of the key.
func (k InstrKey) Hash() string {
	return hashKey("instr",
		k.Handler,
		strconv.Itoa(k.PathCap),
		strconv.Itoa(k.MaxSteps),
		strconv.FormatInt(k.Seed, 10),
		k.Config,
		strconv.Itoa(k.SymexVersion),
		strconv.Itoa(k.GenVersion),
	)
}

// Outcome is the serializable form of a path's termination.
type Outcome struct {
	Kind    uint8  `json:"kind"`
	Vector  uint8  `json:"vector,omitempty"`
	ErrCode uint32 `json:"err_code,omitempty"`
	HasErr  bool   `json:"has_err,omitempty"`
	Soft    bool   `json:"soft,omitempty"`
}

// CachedTest is one generated, initializer-verified test program plus the
// minimized solver model that produced it (as differences from the
// baseline state).
type CachedTest struct {
	ID        string            `json:"id"`
	PathIndex int               `json:"path_index"`
	Outcome   Outcome           `json:"outcome"`
	Diffs     map[string]uint64 `json:"diffs,omitempty"`
	Prog      []byte            `json:"prog"`
	// TestOffset locates the test instruction within Prog (everything before
	// it is the state initializer); the triage minimizer's split point.
	TestOffset int `json:"test_offset"`
}

// InstrEntry is the cached result of exploring and generating one
// instruction: the per-handler path summary (counts mirroring
// campaign.InstrReport) and every runnable test program.
type InstrEntry struct {
	Key         InstrKey     `json:"key"`
	HandlerName string       `json:"handler_name"` // semantics handler (no /16 suffix)
	Mnemonic    string       `json:"mnemonic"`
	Paths       int          `json:"paths"`
	Exhausted   bool         `json:"exhausted"`
	Queries     int64        `json:"queries"`
	Generated   int          `json:"generated"`
	GenFailed   int          `json:"gen_failed"`
	InitFault   int          `json:"init_fault"`
	Tests       []CachedTest `json:"tests"`
}

// GetInstr looks up the entry for k. The stored key must match k exactly
// (hash collisions and hand-edited objects miss).
func (c *Corpus) GetInstr(k InstrKey) (*InstrEntry, bool) {
	var e InstrEntry
	if !c.get(k.Hash(), &e) {
		return nil, false
	}
	if e.Key != k {
		return nil, false
	}
	return &e, true
}

// PutInstr stores the entry under its key.
func (c *Corpus) PutInstr(e *InstrEntry) error {
	return c.put(e.Key.Hash(), e)
}

// ---------------------------------------------------------------------------
// Descriptor-parse summary entries (the Section 3.3.2 summaries, shared by
// every instruction of a campaign).

// SummaryKey identifies the cached descriptor-parse summaries.
type SummaryKey struct {
	Config       string `json:"config"`
	SymexVersion int    `json:"symex_version"`
}

// Hash returns the content address of the key.
func (k SummaryKey) Hash() string {
	return hashKey("summary", k.Config, strconv.Itoa(k.SymexVersion))
}

// SummaryEntry holds the serialized data- and stack-segment parse summaries.
type SummaryEntry struct {
	Key   SummaryKey           `json:"key"`
	Paths int                  `json:"paths"`
	Data  *symex.SummaryRecord `json:"data"`
	SS    *symex.SummaryRecord `json:"ss"`
}

// GetSummary looks up the descriptor-parse summary entry.
func (c *Corpus) GetSummary(k SummaryKey) (*SummaryEntry, bool) {
	var e SummaryEntry
	if !c.get(k.Hash(), &e) {
		return nil, false
	}
	if e.Key != k {
		return nil, false
	}
	return &e, true
}

// PutSummary stores the descriptor-parse summary entry.
func (c *Corpus) PutSummary(e *SummaryEntry) error {
	return c.put(e.Key.Hash(), e)
}

// ---------------------------------------------------------------------------
// Executed-test outcome entries (used by campaign -resume to pick an
// interrupted run back up without re-executing finished tests).

// ExecKey identifies one test program's execution outcome across the
// implementation trio.
type ExecKey struct {
	ProgSHA  string `json:"prog_sha"` // sha256 of boot code + test program
	MaxSteps int    `json:"max_steps"`
	SnapVer  int    `json:"snap_ver"` // machine snapshot format version
}

// ExecProgSHA hashes the executable content of a test (the baseline
// initializer and the test program bytes).
func ExecProgSHA(bootCode, program []byte) string {
	h := sha256.New()
	h.Write(bootCode)
	h.Write([]byte{0xff}) // separator; 0xff never starts an x86 instruction here
	h.Write(program)
	return hex.EncodeToString(h.Sum(nil))
}

// Hash returns the content address of the key.
func (k ExecKey) Hash() string {
	return hashKey("exec", k.ProgSHA, strconv.Itoa(k.MaxSteps), strconv.Itoa(k.SnapVer))
}

// ExecOutcome is one implementation's result: the snapshot serialized in the
// machine snapfile format relative to the shared baseline image.
type ExecOutcome struct {
	Impl          string `json:"impl"`
	Steps         int    `json:"steps"`
	BaselineFault bool   `json:"baseline_fault,omitempty"`
	Snap          []byte `json:"snap"`
}

// ExecEntry is the cached trio outcome for one test program.
type ExecEntry struct {
	Key   ExecKey       `json:"key"`
	Impls []ExecOutcome `json:"impls"`
}

// GetExec looks up a cached execution outcome.
func (c *Corpus) GetExec(k ExecKey) (*ExecEntry, bool) {
	var e ExecEntry
	if !c.get(k.Hash(), &e) {
		return nil, false
	}
	if e.Key != k {
		return nil, false
	}
	return &e, true
}

// PutExec stores an execution outcome.
func (c *Corpus) PutExec(e *ExecEntry) error {
	return c.put(e.Key.Hash(), e)
}

// ---------------------------------------------------------------------------
// Equivalence-checking verdict entries (the symbolic disequivalence
// checker's per-handler results, cached so a warm equivcheck run answers
// without issuing a single solver query).

// EquivKey identifies one handler's cached disequivalence verdict. Every
// input that can change the verdict participates: the handler, the fidelis
// semantics configuration, the path cap and solver budget, and the checker
// and test-generator version numbers.
type EquivKey struct {
	Handler      string `json:"handler"` // unique-instruction key (core.UniqueInstr.Key)
	Config       string `json:"config"`  // fidelis semantics configuration label
	PathCap      int    `json:"path_cap"`
	Budget       int64  `json:"budget"`
	MaxConflicts int64  `json:"max_conflicts"` // per-query SAT conflict budget
	SemVersion   int    `json:"sem_version"`   // equivcheck semantics version
	GenVersion   int    `json:"gen_version"`   // testgen version (counterexample programs)
}

// Hash returns the content address of the key.
func (k EquivKey) Hash() string {
	return hashKey("equiv",
		k.Handler,
		k.Config,
		strconv.Itoa(k.PathCap),
		strconv.FormatInt(k.Budget, 10),
		strconv.FormatInt(k.MaxConflicts, 10),
		strconv.Itoa(k.SemVersion),
		strconv.Itoa(k.GenVersion),
	)
}

// EquivEntry is one cached verdict. Verdict is the equivcheck package's
// serialized HandlerVerdict, stored opaquely so the corpus stays decoupled
// from the checker types (the same pattern as TriageEntry.Min).
type EquivEntry struct {
	Key     EquivKey        `json:"key"`
	Verdict json.RawMessage `json:"verdict"`
}

// GetEquiv looks up a cached verdict.
func (c *Corpus) GetEquiv(k EquivKey) (*EquivEntry, bool) {
	var e EquivEntry
	if !c.get(k.Hash(), &e) {
		return nil, false
	}
	if e.Key != k {
		return nil, false
	}
	return &e, true
}

// PutEquiv stores a verdict.
func (c *Corpus) PutEquiv(e *EquivEntry) error {
	return c.put(e.Key.Hash(), e)
}

// ---------------------------------------------------------------------------
// Minimized-case entries (the triage engine's ddmin results, cached so
// re-triaging a campaign — or another job sharing the corpus — replays the
// minimization instead of re-running its oracles).

// TriageKey identifies one minimized divergent case. Every input that can
// change the minimizer's output participates: the original program content,
// the implementation pair and handler (they define the oracle and its
// undefined-behavior filter), both budgets, and the minimizer version.
type TriageKey struct {
	ProgSHA       string `json:"prog_sha"` // sha256 of boot code + original program
	Handler       string `json:"handler"`
	ImplA         string `json:"impl_a"`
	ImplB         string `json:"impl_b"`
	MaxSteps      int    `json:"max_steps"`
	Budget        int    `json:"budget"`
	TriageVersion int    `json:"triage_version"`
}

// Hash returns the content address of the key.
func (k TriageKey) Hash() string {
	return hashKey("triage",
		k.ProgSHA, k.Handler, k.ImplA, k.ImplB,
		strconv.Itoa(k.MaxSteps), strconv.Itoa(k.Budget), strconv.Itoa(k.TriageVersion))
}

// TriageEntry is one cached minimization result. Min is the triage
// package's serialized Minimized record, stored opaquely so the corpus
// stays decoupled from the triage types.
type TriageEntry struct {
	Key TriageKey       `json:"key"`
	Min json.RawMessage `json:"min"`
}

// ---------------------------------------------------------------------------
// Hybrid fuzzing-stage entries (the coverage-guided mutational fuzzer's
// whole deterministic result for one seed set and budget, cached so a warm
// hybrid campaign replays the stage byte-identically without re-executing a
// single mutated input).

// FuzzInputKey identifies one hybrid fuzzing stage. Every input that can
// change the stage's deterministic result participates: the seed test set
// (content hash), the fuzzer budget and RNG seed, the execution and reseed
// caps, the semantics configuration, and the coverage-map and fuzzer
// version numbers. MutatorWorkers deliberately does not participate — the
// result is worker-count-independent by contract.
type FuzzInputKey struct {
	SeedsSHA    string `json:"seeds_sha"` // sha256 over every seed program
	Budget      int    `json:"budget"`
	Seed        int64  `json:"seed"`
	MaxSteps    int    `json:"max_steps"`
	RoundSize   int    `json:"round_size"`
	ReseedPaths int    `json:"reseed_paths"`
	MaxReseeds  int    `json:"max_reseeds"`
	Config      string `json:"config"` // semantics configuration label

	CovVersion    int `json:"cov_version"`    // coverage.Version
	HybridVersion int `json:"hybrid_version"` // hybrid.Version
	GenVersion    int `json:"gen_version"`    // testgen version (reseed programs)
}

// Hash returns the content address of the key.
func (k FuzzInputKey) Hash() string {
	return hashKey("fuzz",
		k.SeedsSHA,
		strconv.Itoa(k.Budget),
		strconv.FormatInt(k.Seed, 10),
		strconv.Itoa(k.MaxSteps),
		strconv.Itoa(k.RoundSize),
		strconv.Itoa(k.ReseedPaths),
		strconv.Itoa(k.MaxReseeds),
		k.Config,
		strconv.Itoa(k.CovVersion),
		strconv.Itoa(k.HybridVersion),
		strconv.Itoa(k.GenVersion),
	)
}

// FuzzEntry is one cached hybrid stage result. Result is the hybrid
// package's serialized Result, stored opaquely so the corpus stays
// decoupled from the fuzzer types (the TriageEntry.Min pattern).
type FuzzEntry struct {
	Key    FuzzInputKey    `json:"key"`
	Result json.RawMessage `json:"result"`
}

// GetFuzz looks up a cached hybrid stage result.
func (c *Corpus) GetFuzz(k FuzzInputKey) (*FuzzEntry, bool) {
	var e FuzzEntry
	if !c.get(k.Hash(), &e) {
		return nil, false
	}
	if e.Key != k {
		return nil, false
	}
	return &e, true
}

// PutFuzz stores a hybrid stage result.
func (c *Corpus) PutFuzz(e *FuzzEntry) error {
	return c.put(e.Key.Hash(), e)
}

// GetTriage looks up a cached minimization.
func (c *Corpus) GetTriage(k TriageKey) (*TriageEntry, bool) {
	var e TriageEntry
	if !c.get(k.Hash(), &e) {
		return nil, false
	}
	if e.Key != k {
		return nil, false
	}
	return &e, true
}

// PutTriage stores a minimization result.
func (c *Corpus) PutTriage(e *TriageEntry) error {
	return c.put(e.Key.Hash(), e)
}
