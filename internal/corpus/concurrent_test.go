package corpus

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// writerEntry builds a self-consistent InstrEntry for key k as written by
// writer w: every internal field is derived from (k, w), so a torn read —
// bytes from two writers mixed in one object — cannot satisfy checkEntry.
func writerEntry(k InstrKey, w int) *InstrEntry {
	tests := make([]CachedTest, 0, 4+w)
	for i := 0; i < 4+w; i++ {
		tests = append(tests, CachedTest{
			ID:        fmt.Sprintf("w%d-%s-t%d", w, k.Handler, i),
			PathIndex: i,
			Prog:      []byte{byte(w), byte(i), byte(w), byte(i)},
		})
	}
	return &InstrEntry{
		Key:         k,
		HandlerName: k.Handler,
		Mnemonic:    k.Handler,
		Paths:       len(tests),
		Queries:     int64(w),
		Generated:   len(tests),
		Tests:       tests,
	}
}

// checkEntry verifies that a read entry is exactly what some single writer
// produced — never a blend of two writers' objects.
func checkEntry(t *testing.T, k InstrKey, e *InstrEntry) {
	t.Helper()
	w := int(e.Queries)
	if e.Key != k {
		t.Fatalf("entry key %+v, want %+v", e.Key, k)
	}
	if len(e.Tests) != 4+w || e.Generated != len(e.Tests) || e.Paths != len(e.Tests) {
		t.Fatalf("writer %d entry torn: paths=%d generated=%d tests=%d",
			w, e.Paths, e.Generated, len(e.Tests))
	}
	for i, ct := range e.Tests {
		wantID := fmt.Sprintf("w%d-%s-t%d", w, k.Handler, i)
		if ct.ID != wantID {
			t.Fatalf("writer %d test %d has ID %q, want %q", w, i, ct.ID, wantID)
		}
		for _, b := range ct.Prog {
			if b != byte(w) && b != byte(i) {
				t.Fatalf("writer %d test %d has foreign prog bytes %x", w, i, ct.Prog)
			}
		}
	}
}

// TestCorpusConcurrentWriters hammers one on-disk corpus from many
// goroutines through two independent handles (the shape two daemon jobs
// sharing a corpus produce): same-key writers race benignly (one whole
// object wins), and readers never observe a torn object. Run under -race by
// `make race`.
func TestCorpusConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		keys    = 4
		rounds  = 40
	)
	keyFor := func(i int) InstrKey {
		return InstrKey{Handler: fmt.Sprintf("h%d", i), PathCap: 64, Seed: 1, Config: "bochs"}
	}

	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := a
			if w%2 == 1 {
				c = b
			}
			for r := 0; r < rounds; r++ {
				k := keyFor((w + r) % keys)
				if err := c.PutInstr(writerEntry(k, w)); err != nil {
					errs <- err
					return
				}
				if e, ok := c.GetInstr(k); ok {
					checkEntry(t, k, e)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: every key resolves to one whole writer's object.
	for i := 0; i < keys; i++ {
		k := keyFor(i)
		e, ok := a.GetInstr(k)
		if !ok {
			t.Fatalf("key %d missing after the hammer", i)
		}
		checkEntry(t, k, e)
	}
	if st := a.Stats(); st.Writes == 0 {
		t.Error("handle a recorded no writes")
	}
}

// TestCorpusConcurrentOpen: two goroutines opening a fresh root race on the
// VERSION file; both must succeed and agree.
func TestCorpusConcurrentOpen(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Open(dir)
			if err == nil && !strings.HasSuffix(c.Dir(), dir[strings.LastIndex(dir, "/")+1:]) {
				err = fmt.Errorf("unexpected dir %q", c.Dir())
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("open %d: %v", i, err)
		}
	}
}
