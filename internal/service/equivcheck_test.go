package service

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"pokeemu/internal/equivcheck"
)

// eqQuery selects a small mixed handler set (EQUIV, DIVERGES, lift-UNKNOWN)
// so the endpoint tests cover every verdict kind quickly.
const eqQuery = "?handlers=add_rm8_r8,sete,add_rm8_imm8_alias,shld_cl"

// TestEquivcheckEndpoint drives GET /v1/equivcheck through the real HTTP
// stack: the response must carry the full verdict matrix, agree with a
// direct equivcheck.Run, and serve the second (corpus-warmed) request from
// cached verdicts without changing a byte of the report.
func TestEquivcheckEndpoint(t *testing.T) {
	_, ts := startServer(t, Options{CorpusDir: t.TempDir()})

	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/equivcheck"+eqQuery, "")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, raw)
	}
	var resp EquivcheckResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("bad response: %v\n%s", err, raw)
	}
	if resp.Config != equivcheck.ConfigLabel {
		t.Errorf("config = %q, want %q", resp.Config, equivcheck.ConfigLabel)
	}
	if n := len(resp.Report.Handlers); n != 4 {
		t.Fatalf("report covers %d handlers, want 4", n)
	}
	if resp.Report.Equiv != 2 || resp.Report.Diverges != 1 || resp.Report.Unknown != 1 {
		t.Errorf("verdict counts %d/%d/%d, want 2 EQUIV, 1 DIVERGES, 1 UNKNOWN:\n%s",
			resp.Report.Equiv, resp.Report.Diverges, resp.Report.Unknown, resp.Rendered)
	}
	if resp.CacheMisses != 4 || resp.CacheHits != 0 {
		t.Errorf("cold request: %d hits / %d misses, want 0/4", resp.CacheHits, resp.CacheMisses)
	}

	// Warm request: same parameters, answered from the shared corpus.
	code, raw2 := doJSON(t, http.MethodGet, ts.URL+"/v1/equivcheck"+eqQuery, "")
	if code != http.StatusOK {
		t.Fatalf("warm status = %d: %s", code, raw2)
	}
	var warm EquivcheckResponse
	if err := json.Unmarshal(raw2, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 4 || warm.CacheMisses != 0 {
		t.Errorf("warm request: %d hits / %d misses, want 4/0", warm.CacheHits, warm.CacheMisses)
	}
	if warm.Rendered != resp.Rendered {
		t.Errorf("warm render differs from cold render")
	}

	// The metrics document accumulates both requests.
	_, mraw := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	var ms MetricsSnapshot
	if err := json.Unmarshal(mraw, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.Equivcheck.Runs != 2 || ms.Equivcheck.Handlers != 8 {
		t.Errorf("metrics: runs=%d handlers=%d, want 2/8", ms.Equivcheck.Runs, ms.Equivcheck.Handlers)
	}
	if ms.Equivcheck.Equiv != 4 || ms.Equivcheck.Diverges != 2 || ms.Equivcheck.Unknown != 2 {
		t.Errorf("metrics verdict counters %d/%d/%d, want 4/2/2",
			ms.Equivcheck.Equiv, ms.Equivcheck.Diverges, ms.Equivcheck.Unknown)
	}
	if ms.Equivcheck.CacheHits != 4 || ms.Equivcheck.CacheMisses != 4 {
		t.Errorf("metrics cache counters %d hit / %d miss, want 4/4",
			ms.Equivcheck.CacheHits, ms.Equivcheck.CacheMisses)
	}
}

// TestEquivcheckEndpointErrors covers parameter validation.
func TestEquivcheckEndpointErrors(t *testing.T) {
	_, ts := startServer(t, Options{})
	for _, q := range []string{
		"?handlers=no_such_handler",
		"?budget=-1",
		"?paths=x",
		"?conflicts=-2",
		"?workers=many",
	} {
		code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/equivcheck"+q, "")
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", q, code, raw)
		}
	}
}

// TestEquivcheckGolden pins the endpoint's response schema byte for byte
// (no volatile fields: the report is deterministic and the fixed query runs
// cold with no corpus). Regenerate deliberately with:
//
//	go test ./internal/service -run TestEquivcheckGolden -update
func TestEquivcheckGolden(t *testing.T) {
	_, ts := startServer(t, Options{})
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/equivcheck"+eqQuery, "")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, raw)
	}
	compareGolden(t, filepath.Join("testdata", "equivcheck.golden"), raw)
}
