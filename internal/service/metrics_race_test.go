package service

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestMetricsRaceDuringSolve hammers /metrics from several goroutines while
// a campaign job and an equivcheck request are in flight, so the race
// detector covers the solver stats snapshot path: every counter served at
// /metrics must come from the package-level atomic totals, never from a
// CDCL instance another goroutine is mutating mid-solve. The numbers are
// also sanity-checked for monotonicity — a torn read would show up as a
// counter going backwards.
func TestMetricsRaceDuringSolve(t *testing.T) {
	_, ts := startServer(t, Options{CorpusDir: t.TempDir(), MaxJobs: 2, DrainTimeout: time.Minute})

	st := submitJob(t, ts.URL, `{"handlers":["push_r","add_rmv_rv"],"path_cap":24,"resume":true}`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastConflicts, lastQueries int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, b := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
				if code != http.StatusOK {
					t.Errorf("metrics = %d: %s", code, b)
					return
				}
				var ms MetricsSnapshot
				if err := json.Unmarshal(b, &ms); err != nil {
					t.Errorf("metrics unmarshal: %v", err)
					return
				}
				if ms.Solver.Conflicts < lastConflicts || ms.Solver.Queries < lastQueries {
					t.Errorf("solver counters went backwards: conflicts %d -> %d, queries %d -> %d",
						lastConflicts, ms.Solver.Conflicts, lastQueries, ms.Solver.Queries)
					return
				}
				lastConflicts, lastQueries = ms.Solver.Conflicts, ms.Solver.Queries
			}
		}()
	}

	// A synchronous equivcheck request keeps a second solver workload in
	// flight on the server while the readers poll.
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/equivcheck"+eqQuery, ""); code != http.StatusOK {
		t.Fatalf("equivcheck = %d: %s", code, raw)
	}
	pollUntil(t, ts.URL, st.ID, 2*time.Minute, StateDone)
	close(stop)
	wg.Wait()
}
