package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pokeemu/internal/campaign"
	"pokeemu/internal/core"
)

func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func submitJob(t *testing.T, base, body string) Status {
	t.Helper()
	code, b := doJSON(t, http.MethodPost, base+"/v1/campaigns", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollUntil(t *testing.T, base, id string, timeout time.Duration, want ...string) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, b := doJSON(t, http.MethodGet, base+"/v1/campaigns/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status = %d: %s", code, b)
		}
		var st Status
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State == StateFailed || st.State == StateCanceled || st.State == StateDone {
			t.Fatalf("job %s reached terminal state %q (error %q), wanted one of %v",
				id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchReport(t *testing.T, base, id string) Report {
	t.Helper()
	code, b := doJSON(t, http.MethodGet, base+"/v1/campaigns/"+id+"/report", "")
	if code != http.StatusOK {
		t.Fatalf("report = %d: %s", code, b)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSubmitPollReport is the submit → poll → fetch end-to-end path: the
// HTTP-fetched report must be byte-identical to the same config run through
// campaign.Run directly, and the direct run must hit the corpus the HTTP
// job filled (the shared-artifact contract).
func TestSubmitPollReport(t *testing.T) {
	dir := t.TempDir()
	_, ts := startServer(t, Options{CorpusDir: dir, MaxJobs: 2, DrainTimeout: time.Minute})

	st := submitJob(t, ts.URL, `{"handlers":["push_r"],"path_cap":16,"resume":true}`)
	if st.ID == "" || st.State == "" {
		t.Fatalf("submit response %+v lacks id/state", st)
	}
	done := pollUntil(t, ts.URL, st.ID, 2*time.Minute, StateDone)
	if done.Progress == nil || done.Progress.Stage != campaign.StageCompare {
		t.Errorf("finished job progress = %+v, want compare stage", done.Progress)
	}
	rep := fetchReport(t, ts.URL, st.ID)

	// The CLI-equivalent direct run against the same shared corpus.
	direct, err := campaign.Run(campaign.Config{
		MaxPathsPerInstr: 16,
		Handlers:         []string{"push_r"},
		Seed:             1,
		CorpusDir:        dir,
		Resume:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary != direct.Summary() {
		t.Errorf("HTTP report differs from direct run:\nhttp:\n%s\ndirect:\n%s",
			rep.Summary, direct.Summary())
	}
	if rep.TotalTests != direct.TotalTests {
		t.Errorf("total tests: http %d, direct %d", rep.TotalTests, direct.TotalTests)
	}
	if direct.Cache.InstrHits != 1 || direct.Cache.ExecHits != direct.TotalTests {
		t.Errorf("direct run did not reuse the job's corpus artifacts: %+v", direct.Cache)
	}

	code, b := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/divergences", "")
	if code != http.StatusOK {
		t.Fatalf("divergences = %d: %s", code, b)
	}
	var divs Divergences
	if err := json.Unmarshal(b, &divs); err != nil {
		t.Fatal(err)
	}
	if divs.Count != len(direct.Differences) || len(divs.Divergences) != divs.Count {
		t.Errorf("divergences count %d (len %d), direct %d",
			divs.Count, len(divs.Divergences), len(direct.Differences))
	}
}

// TestConcurrentJobsSharedCorpus is the acceptance scenario: two campaigns
// submitted concurrently over HTTP against one shared corpus both complete,
// return reports byte-identical to their CLI equivalents, and /metrics
// reflects the job counts and test totals.
func TestConcurrentJobsSharedCorpus(t *testing.T) {
	dir := t.TempDir()
	_, ts := startServer(t, Options{CorpusDir: dir, MaxJobs: 2, DrainTimeout: time.Minute})

	reqs := []struct {
		body     string
		handlers []string
	}{
		{`{"handlers":["push_r"],"path_cap":16,"resume":true}`, []string{"push_r"}},
		{`{"handlers":["add_rmv_rv"],"path_cap":16,"resume":true}`, []string{"add_rmv_rv"}},
	}
	var wg sync.WaitGroup
	ids := make([]string, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			ids[i] = submitJob(t, ts.URL, body).ID
		}(i, r.body)
	}
	wg.Wait()

	totalTests := 0
	for i, r := range reqs {
		pollUntil(t, ts.URL, ids[i], 2*time.Minute, StateDone)
		rep := fetchReport(t, ts.URL, ids[i])
		direct, err := campaign.Run(campaign.Config{
			MaxPathsPerInstr: 16,
			Handlers:         r.handlers,
			Seed:             1,
			CorpusDir:        dir,
			Resume:           true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Summary != direct.Summary() {
			t.Errorf("job %s report differs from its CLI equivalent", ids[i])
		}
		totalTests += rep.TotalTests
	}

	code, b := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Submitted != 2 || m.Jobs.Completed != 2 {
		t.Errorf("metrics jobs = %+v, want 2 submitted / 2 completed", m.Jobs)
	}
	if m.Tests.Reported != int64(totalTests) || m.Tests.Executed == 0 {
		t.Errorf("metrics tests = %+v, want reported=%d, executed>0", m.Tests, totalTests)
	}
	if m.JobDurationMS.Count != 2 {
		t.Errorf("job duration histogram count = %d, want 2", m.JobDurationMS.Count)
	}
}

// stubResult is a minimal but renderable campaign result for scheduler
// tests that don't need the real pipeline.
func stubResult(tests int) *campaign.Result {
	return &campaign.Result{
		InstrSet:   &core.InstrSetResult{},
		TotalTests: tests,
		RootCauses: map[string]int{},
	}
}

// TestGracefulShutdownDrains: Shutdown with a generous drain window lets an
// in-flight job finish, and the drained service refuses new submissions.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	s, err := New(Options{
		MaxJobs:      1,
		DrainTimeout: time.Minute,
		runCampaign: func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error) {
			close(started)
			time.Sleep(200 * time.Millisecond) // deliberately ignores ctx: must be drained, not killed
			return stubResult(7), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := submitJob(t, ts.URL, `{}`)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	j, _ := s.Job(st.ID)
	if got := j.State(); got != StateDone {
		t.Errorf("drained job state = %q, want done", got)
	}
	if code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", `{}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown = %d (%s), want 503", code, body)
	}
	if s.Metrics().JobsCompleted.Load() != 1 {
		t.Error("drained job not counted as completed")
	}
}

// TestShutdownCancelsStuckJob: when the drain window expires, Shutdown
// cancels the running job's context and returns; the job is marked canceled
// with the checkpoint hint, queued jobs never run, and the daemon exits
// cleanly either way.
func TestShutdownCancelsStuckJob(t *testing.T) {
	started := make(chan struct{})
	s, err := New(Options{
		CorpusDir:    t.TempDir(),
		MaxJobs:      1,
		DrainTimeout: 50 * time.Millisecond,
		runCampaign: func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error) {
			select {
			case <-started:
			default:
				close(started)
			}
			<-ctx.Done() // a job that only stops when canceled
			return nil, fmt.Errorf("campaign: canceled: %w", ctx.Err())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running := submitJob(t, ts.URL, `{"resume":true}`)
	<-started
	queued := submitJob(t, ts.URL, `{"resume":true}`)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	j, _ := s.Job(running.ID)
	if got := j.State(); got != StateCanceled {
		t.Errorf("stuck job state = %q, want canceled", got)
	}
	if st := j.status(); !strings.Contains(st.Error, "checkpointed") {
		t.Errorf("canceled resume job error %q lacks the checkpoint hint", st.Error)
	}
	q, _ := s.Job(queued.ID)
	if got := q.State(); got != StateCanceled {
		t.Errorf("queued job state = %q, want canceled", got)
	}
	if n := s.Metrics().JobsCanceled.Load(); n != 2 {
		t.Errorf("canceled metric = %d, want 2", n)
	}
}

// TestJobPanicDoesNotKillDaemon: a panic escaping a whole job fails that
// job only; the daemon keeps serving and completes the next job.
func TestJobPanicDoesNotKillDaemon(t *testing.T) {
	s, err := New(Options{
		MaxJobs:      1,
		DrainTimeout: time.Minute,
		runCampaign: func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error) {
			if len(cfg.Handlers) > 0 && cfg.Handlers[0] == "boom" {
				panic("injected job crash")
			}
			return stubResult(3), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	bad := submitJob(t, ts.URL, `{"handlers":["boom"]}`)
	deadline := time.Now().Add(time.Minute)
	var st Status
	for {
		_, b := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+bad.ID, "")
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crashing job stuck in %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(st.Error, "injected job crash") {
		t.Errorf("failed job error %q does not carry the panic", st.Error)
	}

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz after job panic = %d", code)
	}
	good := submitJob(t, ts.URL, `{}`)
	pollUntil(t, ts.URL, good.ID, time.Minute, StateDone)
	if f, c := s.Metrics().JobsFailed.Load(), s.Metrics().JobsCompleted.Load(); f != 1 || c != 1 {
		t.Errorf("metrics failed/completed = %d/%d, want 1/1", f, c)
	}
}

// TestSubmitValidationAndBackpressure: malformed and negative configs are
// 400s; a full queue and a canceled queued job behave as documented.
func TestSubmitValidationAndBackpressure(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	s, err := New(Options{
		MaxJobs:      1,
		MaxQueue:     1,
		DrainTimeout: time.Minute,
		runCampaign: func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error) {
			select {
			case <-started:
			default:
				close(started)
			}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return stubResult(1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		releaseOnce.Do(func() { close(release) })
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	for _, body := range []string{
		`{"path_cap":-1}`,
		`{"workers":-2}`,
		`{"test_timeout_ms":-5}`,
		`{"max_instrs":-1}`,
		`{"unknown_field":1}`,
		`not json`,
	} {
		if code, b := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", body); code != http.StatusBadRequest {
			t.Errorf("submit(%s) = %d (%s), want 400", body, code, b)
		}
	}

	first := submitJob(t, ts.URL, `{}`) // occupies the single slot
	<-started
	queued := submitJob(t, ts.URL, `{}`) // sits in the queue
	if code, b := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", `{}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit over full queue = %d (%s), want 503", code, b)
	}
	if s.Metrics().JobsRejected.Load() == 0 {
		t.Error("rejected submission not counted")
	}

	// Cancel the queued job; it must never run.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/campaigns/"+queued.ID, ""); code != http.StatusAccepted {
		t.Errorf("cancel = %d, want 202", code)
	}
	releaseOnce.Do(func() { close(release) })
	pollUntil(t, ts.URL, first.ID, time.Minute, StateDone)
	q, _ := s.Job(queued.ID)
	if got := q.State(); got != StateCanceled {
		t.Errorf("canceled queued job state = %q", got)
	}

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/nope", ""); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+queued.ID+"/report", ""); code != http.StatusConflict {
		t.Errorf("report of unfinished job = %d, want 409", code)
	}

	code, b := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns", "")
	if code != http.StatusOK || !bytes.Contains(b, []byte(first.ID)) || !bytes.Contains(b, []byte(queued.ID)) {
		t.Errorf("list = %d (%s), want both jobs", code, b)
	}
}
