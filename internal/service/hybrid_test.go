package service

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"pokeemu/internal/campaign"
)

// TestHybridJobEndToEnd submits a hybrid campaign over HTTP and checks the
// whole reporting chain: the report carries the hybrid section, it matches
// a direct campaign.Run byte for byte, and /metrics accumulates the fuzz
// execution and coverage counters.
func TestHybridJobEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, ts := startServer(t, Options{CorpusDir: dir, MaxJobs: 2, DrainTimeout: time.Minute})

	st := submitJob(t, ts.URL, `{"handlers":["push_r"],"path_cap":16,"hybrid_budget":16}`)
	done := pollUntil(t, ts.URL, st.ID, 2*time.Minute, StateDone)
	if done.Progress == nil || done.Progress.Stage != campaign.StageHybrid {
		t.Errorf("finished hybrid job progress = %+v, want hybrid stage", done.Progress)
	}
	rep := fetchReport(t, ts.URL, st.ID)
	if rep.Hybrid == nil {
		t.Fatal("report omits the hybrid section")
	}
	if rep.Hybrid.Execs != 16 {
		t.Errorf("hybrid execs = %d, want the full budget 16", rep.Hybrid.Execs)
	}
	if rep.Hybrid.Signatures <= rep.Hybrid.SeedSignatures || rep.Hybrid.Edges == 0 {
		t.Errorf("hybrid coverage yield missing: %+v", rep.Hybrid)
	}

	// The same config run directly against the shared corpus replays the
	// cached hybrid stage and must render the identical report.
	direct, err := campaign.Run(campaign.Config{
		MaxPathsPerInstr: 16,
		Handlers:         []string{"push_r"},
		Seed:             1,
		CorpusDir:        dir,
		Hybrid:           campaign.HybridConfig{Budget: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Cache.FuzzHit {
		t.Error("direct run did not reuse the job's cached hybrid stage")
	}
	if rep.Summary != direct.Summary() {
		t.Errorf("HTTP hybrid report differs from direct run:\nhttp:\n%s\ndirect:\n%s",
			rep.Summary, direct.Summary())
	}

	code, b := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", code, b)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.Hybrid.Runs != 1 || m.Hybrid.Execs != 16 {
		t.Errorf("metrics hybrid runs/execs = %d/%d, want 1/16", m.Hybrid.Runs, m.Hybrid.Execs)
	}
	if m.Hybrid.Signatures == 0 || m.Hybrid.Edges == 0 {
		t.Errorf("metrics hybrid coverage counters empty: %+v", m.Hybrid)
	}
}

// TestHybridRequestValidation pins request-level rejection of bad hybrid
// parameters.
func TestHybridRequestValidation(t *testing.T) {
	_, ts := startServer(t, Options{MaxJobs: 1, DrainTimeout: time.Minute})
	code, b := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns",
		`{"handlers":["push_r"],"hybrid_budget":-1}`)
	if code != http.StatusBadRequest {
		t.Errorf("negative hybrid_budget accepted: %d %s", code, b)
	}
}
