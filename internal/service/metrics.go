package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pokeemu/internal/campaign"
	"pokeemu/internal/equivcheck"
	"pokeemu/internal/expr"
	"pokeemu/internal/solver"
)

// Metrics are the daemon's built-in counters and histograms, expvar-style:
// no external dependencies, and one scrape of /metrics returns the whole
// document as JSON. Counters are monotonic since process start; the queued/
// running gauges in the rendered snapshot come from the live job table.
type Metrics struct {
	start time.Time

	JobsSubmitted atomic.Int64
	JobsStarted   atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCanceled  atomic.Int64
	JobsRejected  atomic.Int64

	// TestsExecuted counts per-test execution completions streamed from
	// job progress events; TestsReported sums TotalTests over completed
	// jobs (the two differ when jobs are canceled mid-flight or replay
	// cached outcomes).
	TestsExecuted atomic.Int64
	TestsReported atomic.Int64

	// Equivcheck counters accumulate over every /v1/equivcheck request:
	// runs, per-handler verdicts by kind, and how many verdicts were
	// answered from the shared corpus versus proved fresh.
	EquivRuns        atomic.Int64
	EquivHandlers    atomic.Int64
	EquivEquiv       atomic.Int64
	EquivDiverges    atomic.Int64
	EquivUnknown     atomic.Int64
	EquivCacheHits   atomic.Int64
	EquivCacheMisses atomic.Int64

	// Hybrid counters accumulate over every completed job that ran the
	// coverage-guided fuzzing stage: fuzz executions spent, inputs that
	// reached new coverage, divergent mutated inputs, distinct coverage
	// signatures and edges reported, and stages served from the corpus.
	HybridRuns       atomic.Int64
	HybridExecs      atomic.Int64
	HybridNewCov     atomic.Int64
	HybridDivergent  atomic.Int64
	HybridSignatures atomic.Int64
	HybridEdges      atomic.Int64
	HybridCacheHits  atomic.Int64

	JobDurationMS *Histogram
	TestsPerJob   *Histogram

	mu   sync.Mutex
	http map[string]*routeStats
}

type routeStats struct {
	count, errors int64
	latency       *Histogram
}

func newMetrics() *Metrics {
	return &Metrics{
		start:         time.Now(),
		JobDurationMS: newHistogram(5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000),
		TestsPerJob:   newHistogram(1, 10, 50, 100, 500, 1000, 5000, 10000, 50000),
		http:          make(map[string]*routeStats),
	}
}

// recordEquivcheck folds one equivcheck report into the counters.
func (m *Metrics) recordEquivcheck(rep *equivcheck.Report) {
	m.EquivRuns.Add(1)
	m.EquivHandlers.Add(int64(len(rep.Handlers)))
	m.EquivEquiv.Add(int64(rep.Equiv))
	m.EquivDiverges.Add(int64(rep.Diverges))
	m.EquivUnknown.Add(int64(rep.Unknown))
	m.EquivCacheHits.Add(int64(rep.Timing.CacheHits))
	m.EquivCacheMisses.Add(int64(rep.Timing.CacheMisses))
}

// recordHybrid folds one completed job's hybrid fuzzing stage into the
// counters.
func (m *Metrics) recordHybrid(res *campaign.Result) {
	if !res.HybridUsed {
		return
	}
	st := res.HybridStats
	m.HybridRuns.Add(1)
	m.HybridExecs.Add(int64(st.Execs))
	m.HybridNewCov.Add(int64(st.NewCoverage))
	m.HybridDivergent.Add(int64(st.Divergent))
	m.HybridSignatures.Add(int64(st.Signatures))
	m.HybridEdges.Add(int64(st.Edges))
	if res.Cache.FuzzHit {
		m.HybridCacheHits.Add(1)
	}
}

// observeHTTP records one served request on the named route.
func (m *Metrics) observeHTTP(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.http[route]
	if rs == nil {
		rs = &routeStats{latency: newHistogram(0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000)}
		m.http[route] = rs
	}
	rs.count++
	if code >= 400 {
		rs.errors++
	}
	rs.latency.Observe(float64(d) / float64(time.Millisecond))
}

// JobGauges are point-in-time job-table counts merged into the snapshot.
type JobGauges struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	UptimeMS int64 `json:"uptime_ms"`
	Jobs     struct {
		Submitted int64 `json:"submitted"`
		Started   int64 `json:"started"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Canceled  int64 `json:"canceled"`
		Rejected  int64 `json:"rejected"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
	} `json:"jobs"`
	Tests struct {
		Executed int64 `json:"executed"`
		Reported int64 `json:"reported"`
	} `json:"tests"`
	// Equivcheck accumulates over every /v1/equivcheck request served since
	// start: per-handler symbolic verdicts by kind, and verdict-cache
	// effectiveness against the shared corpus.
	Equivcheck struct {
		Runs        int64 `json:"runs"`
		Handlers    int64 `json:"handlers"`
		Equiv       int64 `json:"equiv"`
		Diverges    int64 `json:"diverges"`
		Unknown     int64 `json:"unknown"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
	} `json:"equivcheck"`
	// Hybrid accumulates over every completed job that ran the coverage-
	// guided fuzzing stage: executions spent, coverage yield, divergent
	// mutated inputs, and stage-level cache hits.
	Hybrid struct {
		Runs       int64 `json:"runs"`
		Execs      int64 `json:"execs"`
		NewCov     int64 `json:"new_coverage"`
		Divergent  int64 `json:"divergent"`
		Signatures int64 `json:"signatures"`
		Edges      int64 `json:"edges"`
		CacheHits  int64 `json:"cache_hits"`
	} `json:"hybrid"`
	// Solver mirrors the process-wide symbolic-execution hot-path counters:
	// bit-vector solver queries, the assumption-set memo that answers
	// repeated queries without solving, and the expression intern table that
	// deduplicates term construction. Totals cover every job since start.
	Solver struct {
		Queries       int64 `json:"queries"`
		MemoHits      int64 `json:"memo_hits"`
		MemoMisses    int64 `json:"memo_misses"`
		SubsumeHits   int64 `json:"subsume_hits"`
		ReusedLevels  int64 `json:"reused_levels"`
		Conflicts     int64 `json:"conflicts"`
		Decisions     int64 `json:"decisions"`
		Propagations  int64 `json:"propagations"`
		Restarts      int64 `json:"restarts"`
		ReduceRuns    int64 `json:"reduce_runs"`
		ReduceRemoved int64 `json:"reduce_removed"`
		InternHits    int64 `json:"intern_hits"`
		InternMisses  int64 `json:"intern_misses"`
		InternResets  int64 `json:"intern_resets"`
		InternSize    int   `json:"intern_size"`
	} `json:"solver"`
	JobDurationMS HistogramSnapshot        `json:"job_duration_ms"`
	TestsPerJob   HistogramSnapshot        `json:"tests_per_job"`
	HTTP          map[string]RouteSnapshot `json:"http"`
}

// RouteSnapshot is one route's request counters and latency histogram.
type RouteSnapshot struct {
	Count     int64             `json:"count"`
	Errors    int64             `json:"errors"`
	LatencyMS HistogramSnapshot `json:"latency_ms"`
}

// Snapshot renders every counter and histogram at once.
func (m *Metrics) Snapshot(g JobGauges) MetricsSnapshot {
	var s MetricsSnapshot
	s.UptimeMS = time.Since(m.start).Milliseconds()
	s.Jobs.Submitted = m.JobsSubmitted.Load()
	s.Jobs.Started = m.JobsStarted.Load()
	s.Jobs.Completed = m.JobsCompleted.Load()
	s.Jobs.Failed = m.JobsFailed.Load()
	s.Jobs.Canceled = m.JobsCanceled.Load()
	s.Jobs.Rejected = m.JobsRejected.Load()
	s.Jobs.Queued = g.Queued
	s.Jobs.Running = g.Running
	s.Tests.Executed = m.TestsExecuted.Load()
	s.Tests.Reported = m.TestsReported.Load()
	s.Equivcheck.Runs = m.EquivRuns.Load()
	s.Equivcheck.Handlers = m.EquivHandlers.Load()
	s.Equivcheck.Equiv = m.EquivEquiv.Load()
	s.Equivcheck.Diverges = m.EquivDiverges.Load()
	s.Equivcheck.Unknown = m.EquivUnknown.Load()
	s.Equivcheck.CacheHits = m.EquivCacheHits.Load()
	s.Equivcheck.CacheMisses = m.EquivCacheMisses.Load()
	s.Hybrid.Runs = m.HybridRuns.Load()
	s.Hybrid.Execs = m.HybridExecs.Load()
	s.Hybrid.NewCov = m.HybridNewCov.Load()
	s.Hybrid.Divergent = m.HybridDivergent.Load()
	s.Hybrid.Signatures = m.HybridSignatures.Load()
	s.Hybrid.Edges = m.HybridEdges.Load()
	s.Hybrid.CacheHits = m.HybridCacheHits.Load()
	// One atomic snapshot for every SAT-core counter: these are read while
	// campaign workers (and portfolio clones) are still solving, so they
	// must come from the solver's race-free totals, never from a live
	// solver instance.
	core := solver.StatsSnapshot()
	s.Solver.Queries = core.Queries
	s.Solver.MemoHits, s.Solver.MemoMisses = core.MemoHits, core.MemoMisses
	s.Solver.SubsumeHits = core.SubsumeHits
	s.Solver.ReusedLevels = core.ReusedLevels
	s.Solver.Conflicts = core.Conflicts
	s.Solver.Decisions = core.Decisions
	s.Solver.Propagations = core.Propagations
	s.Solver.Restarts = core.Restarts
	s.Solver.ReduceRuns = core.ReduceRuns
	s.Solver.ReduceRemoved = core.ReduceRemoved
	s.Solver.InternHits, s.Solver.InternMisses, s.Solver.InternResets = expr.InternStats()
	s.Solver.InternSize = expr.InternSize()
	s.JobDurationMS = m.JobDurationMS.Snapshot()
	s.TestsPerJob = m.TestsPerJob.Snapshot()
	s.HTTP = make(map[string]RouteSnapshot)
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.http {
		s.HTTP[route] = RouteSnapshot{
			Count:     rs.count,
			Errors:    rs.errors,
			LatencyMS: rs.latency.Snapshot(),
		}
	}
	return s
}

// Histogram is a fixed-bucket counting histogram: Counts[i] holds
// observations v <= Bounds[i] (and greater than the previous bound); the
// final count is the overflow bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

// HistogramSnapshot is the JSON form of a histogram: len(Counts) ==
// len(Bounds)+1, the last entry counting observations above every bound.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

func newHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.count++
	h.sum += v
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
	}
}
