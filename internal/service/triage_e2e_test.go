package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"pokeemu/internal/triage"
)

// TestTriageBaselineE2E drives the regression-gate workflow over the HTTP
// API end to end: run a campaign, fetch its minimized triage report, record
// the suggested baseline via PUT /v1/baseline, resubmit the same campaign,
// and require the second job to report zero new divergences — in its
// campaign summary, its report JSON, and its triage report.
func TestTriageBaselineE2E(t *testing.T) {
	dir := t.TempDir()
	_, ts := startServer(t, Options{CorpusDir: dir, MaxJobs: 1, DrainTimeout: time.Minute})
	body := `{"handlers":["leave"],"path_cap":8}`

	st := submitJob(t, ts.URL, body)
	pollUntil(t, ts.URL, st.ID, 2*time.Minute, StateDone)

	// Baseline-free job: no partition in the report.
	rep := fetchReport(t, ts.URL, st.ID)
	if rep.Baseline != nil {
		t.Fatalf("baseline-free job has a partition: %+v", rep.Baseline)
	}
	if rep.LoFiDiffTests == 0 {
		t.Fatal("seeded campaign produced no divergences")
	}

	// Minimized triage report: everything is new, every case reproduces.
	code, b := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/triage?minimize=1", "")
	if code != http.StatusOK {
		t.Fatalf("triage = %d: %s", code, b)
	}
	var trip TriageResponse
	if err := json.Unmarshal(b, &trip); err != nil {
		t.Fatal(err)
	}
	if trip.Report.New != trip.Report.Total || trip.Report.Total == 0 {
		t.Fatalf("first triage not all-new: %d new of %d", trip.Report.New, trip.Report.Total)
	}
	for _, c := range trip.Report.Cases {
		if c.Minimized == nil || !c.Minimized.Reproduced {
			t.Errorf("case %s did not reproduce under minimization", c.TestID)
		}
	}

	// Record the suggested baseline.
	blBody, err := json.Marshal(trip.SuggestedBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if code, b := doJSON(t, http.MethodPut, ts.URL+"/v1/baseline", string(blBody)); code != http.StatusOK {
		t.Fatalf("baseline put = %d: %s", code, b)
	}
	code, b = doJSON(t, http.MethodGet, ts.URL+"/v1/baseline", "")
	if code != http.StatusOK {
		t.Fatalf("baseline get = %d: %s", code, b)
	}
	var bl triage.Baseline
	if err := json.Unmarshal(b, &bl); err != nil {
		t.Fatal(err)
	}
	if bl.Len() != trip.SuggestedBaseline.Len() {
		t.Fatalf("baseline round trip lost entries: %d != %d",
			bl.Len(), trip.SuggestedBaseline.Len())
	}

	// Same campaign again: every divergence is now known.
	st2 := submitJob(t, ts.URL, body)
	pollUntil(t, ts.URL, st2.ID, 2*time.Minute, StateDone)
	rep2 := fetchReport(t, ts.URL, st2.ID)
	if rep2.Baseline == nil {
		t.Fatal("baselined job has no partition in its report")
	}
	if rep2.Baseline.New != 0 || rep2.Baseline.Known != rep.LoFiDiffTests {
		t.Errorf("baselined re-run: %+v, want 0 new / %d known", rep2.Baseline, rep.LoFiDiffTests)
	}
	if !strings.Contains(rep2.Summary, "baseline:") {
		t.Error("baselined summary lacks the baseline line")
	}

	code, b = doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st2.ID+"/triage", "")
	if code != http.StatusOK {
		t.Fatalf("second triage = %d: %s", code, b)
	}
	var trip2 TriageResponse
	if err := json.Unmarshal(b, &trip2); err != nil {
		t.Fatal(err)
	}
	if trip2.Report.New != 0 || trip2.Report.Known != trip2.Report.Total {
		t.Errorf("baselined triage still new: %d new, %d known of %d",
			trip2.Report.New, trip2.Report.Known, trip2.Report.Total)
	}
	if trip2.Report.NewCluster != 0 {
		t.Errorf("baselined triage reports %d new clusters", trip2.Report.NewCluster)
	}
}

// TestTriageEndpointValidation pins the endpoint's error handling: unknown
// jobs 404, unfinished jobs 409, bad budgets 400, bad baselines 400.
func TestTriageEndpointValidation(t *testing.T) {
	_, ts := startServer(t, Options{MaxJobs: 1, DrainTimeout: time.Minute})

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/job-9999/triage", ""); code != http.StatusNotFound {
		t.Errorf("unknown job triage = %d, want 404", code)
	}
	if code, b := doJSON(t, http.MethodPut, ts.URL+"/v1/baseline", `{"version":99,"entries":[]}`); code != http.StatusBadRequest {
		t.Errorf("bad baseline put = %d: %s", code, b)
	}
	if code, b := doJSON(t, http.MethodPut, ts.URL+"/v1/baseline", `garbage`); code != http.StatusBadRequest {
		t.Errorf("garbage baseline put = %d: %s", code, b)
	}

	st := submitJob(t, ts.URL, `{"handlers":["leave"],"path_cap":8}`)
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/triage?budget=nope", ""); code == http.StatusOK {
		t.Error("bad budget accepted")
	}
	pollUntil(t, ts.URL, st.ID, 2*time.Minute, StateDone)
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/triage?budget=-1", ""); code != http.StatusBadRequest {
		t.Error("negative budget accepted")
	}
}
