package service

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestStatusReportGolden pins the JSON schemas of the status and report
// endpoints byte for byte, so API changes are deliberate. The responses are
// fetched through the real HTTP stack for a fixed tiny job (no corpus, so
// the cache section is all-cold and deterministic), volatile fields
// (timestamps, wall-clock durations, the timing table) are normalized, and
// everything else — field names, nesting, and the deterministic campaign
// values — must match the golden files. Regenerate intentionally with:
//
//	go test ./internal/service -run TestStatusReportGolden -update
func TestStatusReportGolden(t *testing.T) {
	_, ts := startServer(t, Options{MaxJobs: 1, MaxWorkersPerJob: 2, DrainTimeout: time.Minute})

	st := submitJob(t, ts.URL, `{"handlers":["push_r"],"path_cap":8}`)
	pollUntil(t, ts.URL, st.ID, 2*time.Minute, StateDone)

	_, statusRaw := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID, "")
	_, reportRaw := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/report", "")

	compareGolden(t, filepath.Join("testdata", "status.golden"), normalizeJSON(t, statusRaw))
	compareGolden(t, filepath.Join("testdata", "report.golden"), normalizeJSON(t, reportRaw))
}

// normalizeJSON re-renders a response with its volatile fields pinned to
// fixed placeholders, leaving the schema and all deterministic values
// intact.
func normalizeJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, raw)
	}
	for _, ts := range []string{"submitted_at", "started_at", "finished_at"} {
		if _, ok := doc[ts]; ok {
			doc[ts] = "1970-01-01T00:00:00Z"
		}
	}
	if _, ok := doc["duration_ms"]; ok {
		doc["duration_ms"] = 42
	}
	if _, ok := doc["timing"]; ok {
		doc["timing"] = "(normalized: run-dependent wall-clock table)"
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != string(got) {
		t.Errorf("response differs from %s (API changes must be deliberate; run with -update to regenerate):\n--- want:\n%s\n--- got:\n%s",
			path, want, got)
	}
}
