package service

// Service-level chaos: the scheduler fault point and the degraded-report
// surface. A fault at the scheduling slot costs exactly one job; a job
// whose campaign degrades serves an explicit degraded section in its
// report and flips /healthz to "degraded" — never a silently short report
// behind a green health check.

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pokeemu/internal/campaign"
	"pokeemu/internal/faults"
)

// TestSchedulerFaultFailsJobNotDaemon arms an n=1 scheduler fault: the
// first job fails at its slot with the injected overload, the daemon and
// the next job are untouched, and /healthz reports the failure.
func TestSchedulerFaultFailsJobNotDaemon(t *testing.T) {
	t.Cleanup(faults.Disarm)
	s, ts := startServer(t, Options{
		MaxJobs:      1,
		DrainTimeout: time.Minute,
		runCampaign: func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error) {
			return stubResult(3), nil
		},
	})
	if _, err := faults.ArmSpec("service.schedule:n=1:err=injected overload"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	bad := submitJob(t, ts.URL, `{}`)
	st := pollUntil(t, ts.URL, bad.ID, time.Minute, StateFailed)
	if !strings.Contains(st.Error, "injected: service.schedule: injected overload") {
		t.Errorf("failed job error %q does not carry the injected fault", st.Error)
	}

	var h Health
	code, b := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d (the daemon is alive; only the status field degrades)", code)
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Degraded == nil || h.Degraded.JobsFailed != 1 {
		t.Errorf("healthz after scheduler fault = %+v, want degraded with jobs_failed 1", h)
	}

	// The n=1 rule is spent: the next job schedules and completes.
	good := submitJob(t, ts.URL, `{}`)
	pollUntil(t, ts.URL, good.ID, time.Minute, StateDone)
	if f, c := s.Metrics().JobsFailed.Load(), s.Metrics().JobsCompleted.Load(); f != 1 || c != 1 {
		t.Errorf("metrics failed/completed = %d/%d, want 1/1", f, c)
	}
}

// TestDegradedReportGoldenAndHealth runs a real campaign job with every
// corpus write failing and pins the degraded report JSON byte for byte:
// the report carries a degraded section (2 lost cache writes: summary +
// instr entry) and /healthz turns "degraded" with the unit count. The
// healthy-run golden (testdata/report.golden) doubles as proof that the
// degraded key is omitted entirely from healthy reports.
func TestDegradedReportGoldenAndHealth(t *testing.T) {
	t.Cleanup(faults.Disarm)
	_, ts := startServer(t, Options{
		MaxJobs:          1,
		MaxWorkersPerJob: 2,
		CorpusDir:        t.TempDir(), // opened (VERSION written) before arming
		DrainTimeout:     time.Minute,
	})
	if _, err := faults.ArmSpec("corpus.write:p=1:err"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	st := submitJob(t, ts.URL, `{"handlers":["push_r"],"path_cap":8}`)
	pollUntil(t, ts.URL, st.ID, 2*time.Minute, StateDone)

	_, reportRaw := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/report", "")
	compareGolden(t, filepath.Join("testdata", "report_degraded.golden"), normalizeJSON(t, reportRaw))

	var rep Report
	if err := json.Unmarshal(reportRaw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Degraded == nil || rep.Degraded.CorpusWrites != 2 || rep.Degraded.Units != 2 {
		t.Fatalf("report degraded section = %+v, want 2 lost corpus writes", rep.Degraded)
	}
	if !strings.Contains(rep.Summary, "degraded: 2 units") {
		t.Error("summary text omits the degraded section")
	}

	var h Health
	if _, b := doJSON(t, http.MethodGet, ts.URL+"/healthz", ""); true {
		if err := json.Unmarshal(b, &h); err != nil {
			t.Fatal(err)
		}
	}
	if h.Status != "degraded" || h.Degraded == nil ||
		h.Degraded.JobsDegraded != 1 || h.Degraded.DegradedUnits != 2 {
		t.Errorf("healthz = %+v, want degraded with 1 degraded job / 2 units", h)
	}
}

// TestStageTimeoutRequestValidation covers the new stage_timeout_ms knob:
// negative is a 400, positive reaches the campaign config.
func TestStageTimeoutRequestValidation(t *testing.T) {
	var got campaign.Config
	_, ts := startServer(t, Options{
		MaxJobs:      1,
		DrainTimeout: time.Minute,
		runCampaign: func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error) {
			got = cfg
			return stubResult(1), nil
		},
	})
	if code, b := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", `{"stage_timeout_ms":-1}`); code != http.StatusBadRequest {
		t.Errorf("negative stage_timeout_ms = %d: %s, want 400", code, b)
	}
	st := submitJob(t, ts.URL, `{"stage_timeout_ms":60000}`)
	pollUntil(t, ts.URL, st.ID, time.Minute, StateDone)
	if got.StageTimeout != time.Minute {
		t.Errorf("StageTimeout = %v, want 1m", got.StageTimeout)
	}
}
