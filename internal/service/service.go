// Package service implements the campaign service behind the pokeemud
// daemon: a long-running HTTP server (stdlib net/http only) that accepts
// cross-validation campaigns as JSON jobs, schedules them on a bounded pool
// (max concurrent jobs × workers per job), and shares one on-disk corpus
// across every job — so a warm submission dedups exploration, generation,
// and (with resume) execution against everything any tenant has already
// computed.
//
// The differential-testing pipelines this models (Icicle's fuzzing harness,
// DiffSpec's differential-test executor) run as persistent services because
// the work is embarrassingly parallel and artifact-heavy; the corpus plus
// the campaign engine's deterministic merges are what make that safe here:
// the report a job serves over HTTP is byte-identical to the same Config
// run through campaign.Run directly.
//
// Failure containment: a worker panic or per-test budget overrun is
// absorbed inside the campaign as a fault record; a panic escaping a whole
// job marks only that job failed. The daemon itself never dies with a job.
// Graceful shutdown drains running jobs for a configurable window, then
// cancels the stragglers — whose finished tests are already checkpointed in
// the corpus when resume is on, so resubmitting the same config continues
// where the canceled run stopped.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pokeemu/internal/campaign"
	"pokeemu/internal/corpus"
	"pokeemu/internal/faults"
	"pokeemu/internal/triage"
)

// Submission errors surfaced as HTTP 503 by the handler layer.
var (
	ErrDraining  = errors.New("service: draining, not accepting jobs")
	ErrQueueFull = errors.New("service: job queue full")
)

// DefaultPathCap is the per-instruction path cap applied when a request
// leaves path_cap at zero (matching the CLI's -cap default).
const DefaultPathCap = 256

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Options configure a Server.
type Options struct {
	// CorpusDir roots the corpus shared by every job. "" disables the
	// corpus: jobs run cold and cancellation checkpoints nothing.
	CorpusDir string
	// MaxJobs bounds concurrently running campaigns (default 2).
	MaxJobs int
	// MaxQueue bounds queued-but-not-started jobs; submissions beyond it
	// are rejected with ErrQueueFull (default 64).
	MaxQueue int
	// MaxWorkersPerJob caps (and defaults) the Workers a single job may
	// request (default runtime.NumCPU()).
	MaxWorkersPerJob int
	// DrainTimeout bounds how long Shutdown waits for running jobs to
	// finish before canceling them (0 = cancel immediately).
	DrainTimeout time.Duration

	// runCampaign is a test seam; nil means campaign.RunContext.
	runCampaign func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error)
}

// Server is the campaign service: a job table, a bounded scheduler, and the
// HTTP API over both.
type Server struct {
	opts    Options
	metrics *Metrics
	handler http.Handler
	run     func(ctx context.Context, cfg campaign.Config) (*campaign.Result, error)

	ctx    context.Context // canceled to abort every running job
	cancel context.CancelFunc

	// crp is the shared corpus handle ("" CorpusDir leaves it nil); the
	// triage endpoint uses it to cache minimized cases across jobs.
	crp *corpus.Corpus

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	nextID   int
	queue    chan *Job
	draining bool
	// baseline is the service-wide known-divergence set: every job submitted
	// after it is set partitions its differences against it, and the triage
	// endpoint uses the snapshot the job ran with. The pointer is replaced
	// wholesale on PUT (a Baseline is immutable once installed), so running
	// jobs keep a consistent view.
	baseline *triage.Baseline

	slots sync.WaitGroup // one per scheduler slot goroutine
}

// New builds a Server and starts its scheduler slots. A configured corpus
// directory is opened (and created) up front so a bad root fails at startup
// instead of failing every job.
func New(opts Options) (*Server, error) {
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 2
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.MaxWorkersPerJob <= 0 {
		opts.MaxWorkersPerJob = runtime.NumCPU()
	}
	var crp *corpus.Corpus
	if opts.CorpusDir != "" {
		var err error
		if crp, err = corpus.Open(opts.CorpusDir); err != nil {
			return nil, err
		}
	}
	s := &Server{
		opts:    opts,
		metrics: newMetrics(),
		run:     opts.runCampaign,
		crp:     crp,
		jobs:    make(map[string]*Job),
		nextID:  1,
		queue:   make(chan *Job, opts.MaxQueue),
	}
	// A baseline persisted next to the corpus survives daemon restarts; a
	// missing file just means no known divergences yet.
	if p := s.baselinePath(); p != "" {
		bl, err := triage.LoadBaseline(p)
		if err != nil {
			return nil, err
		}
		s.baseline = bl
	}
	if s.run == nil {
		s.run = campaign.RunContext
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := 0; i < opts.MaxJobs; i++ {
		s.slots.Add(1)
		go s.runSlot()
	}
	s.handler = s.routes()
	return s, nil
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// CorpusDir returns the shared corpus root ("" if disabled).
func (s *Server) CorpusDir() string { return s.opts.CorpusDir }

// baselinePath is where the service persists its baseline ("" when no corpus
// is configured — the baseline is then in-memory only).
func (s *Server) baselinePath() string {
	if s.opts.CorpusDir == "" {
		return ""
	}
	return filepath.Join(s.opts.CorpusDir, "baseline.json")
}

// Baseline returns the current service-wide baseline (nil if none is set).
func (s *Server) Baseline() *triage.Baseline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseline
}

// SetBaseline installs a new baseline for subsequent jobs and persists it
// next to the corpus when one is configured.
func (s *Server) SetBaseline(b *triage.Baseline) error {
	s.mu.Lock()
	s.baseline = b
	s.mu.Unlock()
	if p := s.baselinePath(); p != "" {
		return b.Save(p)
	}
	return nil
}

// Request is the JSON body of POST /v1/campaigns. Zero values take
// defaults (path_cap 256, seed 1, workers = the server's per-job cap);
// negative values are rejected.
type Request struct {
	Handlers  []string `json:"handlers,omitempty"`
	MaxInstrs int      `json:"max_instrs,omitempty"`
	PathCap   int      `json:"path_cap,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	// ExploreWorkers bounds the pool inside each instruction's symbolic
	// exploration; like workers it only affects wall-clock time, never the
	// report. 0 or 1 runs exploration sequentially.
	ExploreWorkers int   `json:"explore_workers,omitempty"`
	MaxSteps       int   `json:"max_steps,omitempty"`
	Resume         bool  `json:"resume,omitempty"`
	NoCache        bool  `json:"no_cache,omitempty"`
	TestMaxSteps   int   `json:"test_max_steps,omitempty"`
	TestTimeoutMS  int64 `json:"test_timeout_ms,omitempty"`
	// StageTimeoutMS caps each fan-out stage's wall clock; on expiry the
	// campaign degrades (skipped units are counted in the report's degraded
	// section) instead of failing. 0 = unlimited.
	StageTimeoutMS int64 `json:"stage_timeout_ms,omitempty"`

	// HybridBudget enables the coverage-guided hybrid fuzzing stage with
	// this many mutated-input executions; 0 leaves it off.
	HybridBudget int `json:"hybrid_budget,omitempty"`
	// HybridSeed seeds the fuzzer's RNG (0 = the campaign seed).
	HybridSeed int64 `json:"hybrid_seed,omitempty"`
	// HybridWorkers sizes the mutator pool (0 = workers); like workers it
	// never affects the report.
	HybridWorkers int `json:"hybrid_workers,omitempty"`

	// NoSolverBatch disables the batched solver front-end (incremental
	// solving with shared assumption prefixes); NoFastPath disables the
	// Lo-Fi emulator's direct-dispatch fast path. Both default off (the
	// fast configurations). Portfolio races that many extra seeded solver
	// clones per budgeted query (0 = off; stays deterministic).
	NoSolverBatch bool `json:"no_solver_batch,omitempty"`
	NoFastPath    bool `json:"no_fastpath,omitempty"`
	Portfolio     int  `json:"portfolio,omitempty"`

	// NoSubsume disables the solver's model-subsumption fast path;
	// NoReduceDB freezes the learned-clause database (no reduceDB);
	// RestartBase overrides the Luby restart unit (0 = default). All three
	// default off/zero — the fast configuration — and, like
	// no_solver_batch, select their own corpus cache namespace because
	// they move which models Sat queries return.
	NoSubsume   bool `json:"no_subsume,omitempty"`
	NoReduceDB  bool `json:"no_reduce_db,omitempty"`
	RestartBase int  `json:"restart_base,omitempty"`

	// Vote enables N-way voted verdicts: every test additionally runs on
	// lento and the three emulators are partitioned per test, yielding the
	// report's per-emulator blame column. Voting bypasses the resume
	// execution cache (cached outcomes hold only the classic trio).
	Vote bool `json:"vote,omitempty"`
}

// configFor normalizes the request in place (so the job's status echoes the
// effective values) and maps it onto a campaign.Config rooted at the shared
// corpus.
func (s *Server) configFor(req *Request) (campaign.Config, error) {
	if req.TestTimeoutMS < 0 {
		return campaign.Config{}, fmt.Errorf("campaign: test_timeout_ms must be >= 0 (got %d)", req.TestTimeoutMS)
	}
	if req.StageTimeoutMS < 0 {
		return campaign.Config{}, fmt.Errorf("campaign: stage_timeout_ms must be >= 0 (got %d)", req.StageTimeoutMS)
	}
	if req.Portfolio < 0 {
		return campaign.Config{}, fmt.Errorf("campaign: portfolio must be >= 0 (got %d)", req.Portfolio)
	}
	if req.RestartBase < 0 {
		return campaign.Config{}, fmt.Errorf("campaign: restart_base must be >= 0 (got %d)", req.RestartBase)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.PathCap == 0 {
		req.PathCap = DefaultPathCap
	}
	if req.Workers == 0 || req.Workers > s.opts.MaxWorkersPerJob {
		req.Workers = s.opts.MaxWorkersPerJob
	}
	if req.ExploreWorkers > s.opts.MaxWorkersPerJob {
		req.ExploreWorkers = s.opts.MaxWorkersPerJob
	}
	if req.HybridWorkers > s.opts.MaxWorkersPerJob {
		req.HybridWorkers = s.opts.MaxWorkersPerJob
	}
	cfg := campaign.Config{
		MaxPathsPerInstr: req.PathCap,
		MaxInstrs:        req.MaxInstrs,
		Handlers:         req.Handlers,
		Seed:             req.Seed,
		Workers:          req.Workers,
		ExploreWorkers:   req.ExploreWorkers,
		MaxSteps:         req.MaxSteps,
		CorpusDir:        s.opts.CorpusDir,
		NoCache:          req.NoCache,
		Resume:           req.Resume,
		TestMaxSteps:     req.TestMaxSteps,
		TestTimeout:      time.Duration(req.TestTimeoutMS) * time.Millisecond,
		StageTimeout:     time.Duration(req.StageTimeoutMS) * time.Millisecond,
		NoSolverBatch:    req.NoSolverBatch,
		NoFastPath:       req.NoFastPath,
		Portfolio:        req.Portfolio,
		NoSubsume:        req.NoSubsume,
		NoReduceDB:       req.NoReduceDB,
		RestartBase:      req.RestartBase,
		Vote:             req.Vote,
		// The job captures the baseline current at submission; a later PUT
		// replaces the server's pointer without disturbing running jobs.
		Baseline: s.Baseline(),
		Hybrid: campaign.HybridConfig{
			Budget:         req.HybridBudget,
			Seed:           req.HybridSeed,
			MutatorWorkers: req.HybridWorkers,
		},
	}
	if err := cfg.Validate(); err != nil {
		return campaign.Config{}, err
	}
	return cfg, nil
}

// Submit validates a request, enqueues it as a new job, and returns the
// job. ErrDraining and ErrQueueFull are capacity rejections; any other
// error is a bad request.
func (s *Server) Submit(req Request) (*Job, error) {
	cfg, err := s.configFor(&req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		return nil, ErrDraining
	}
	j := &Job{
		ID:        fmt.Sprintf("job-%04d", s.nextID),
		Req:       req,
		cfg:       cfg,
		state:     StateQueued,
		submitted: time.Now(),
	}
	j.ctx, j.cancelFn = context.WithCancel(s.ctx)
	j.cfg.Progress = func(ev campaign.Event) {
		j.setProgress(ev)
		if ev.Stage == campaign.StageExecute && ev.Key != "" {
			s.metrics.TestsExecuted.Add(1)
		}
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.nextID++
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.metrics.JobsSubmitted.Add(1)
	return j, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// gauges counts queued and running jobs for /metrics and /healthz.
func (s *Server) gauges() JobGauges {
	var g JobGauges
	for _, j := range s.Jobs() {
		switch j.State() {
		case StateQueued:
			g.Queued++
		case StateRunning:
			g.Running++
		}
	}
	return g
}

// runSlot is one scheduler slot: it pulls queued jobs until the queue is
// closed by Shutdown.
func (s *Server) runSlot() {
	defer s.slots.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one campaign and absorbs anything it throws: an escaping
// panic fails the job, a context cancellation marks it canceled; the daemon
// outlives both.
func (s *Server) runJob(j *Job) {
	if !j.begin() {
		return // canceled while queued
	}
	s.metrics.JobsStarted.Add(1)
	defer j.cancelFn()
	var res *campaign.Result
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panic: %v", r)
			}
		}()
		// Injected scheduler failure, keyed by job ID: an err-mode rule
		// fails the job at its slot (overload/admission failure), a
		// panic-mode rule exercises the recover above. Either way the
		// daemon and its other jobs are untouched.
		if ferr := faults.Hit(faults.ServiceSchedule, j.ID); ferr != nil {
			err = ferr
			return
		}
		res, err = s.run(j.ctx, j.cfg)
	}()
	canceled := err != nil && j.ctx.Err() != nil
	j.finish(res, err, canceled)
	switch {
	case canceled:
		s.metrics.JobsCanceled.Add(1)
	case err != nil:
		s.metrics.JobsFailed.Add(1)
	default:
		s.metrics.JobsCompleted.Add(1)
		s.metrics.TestsReported.Add(int64(res.TotalTests))
		s.metrics.TestsPerJob.Observe(float64(res.TotalTests))
		s.metrics.recordHybrid(res)
	}
	s.metrics.JobDurationMS.Observe(float64(j.Duration()) / float64(time.Millisecond))
}

// Shutdown drains the service: submissions are rejected immediately, queued
// jobs are canceled, and running jobs get DrainTimeout to finish before
// their contexts are canceled (checkpointing via the shared corpus when the
// job requested resume). It returns once every slot is idle or ctx expires.
// Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		for _, j := range s.jobs {
			if j.cancelQueued() {
				s.metrics.JobsCanceled.Add(1)
			}
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.slots.Wait()
		close(done)
	}()
	if s.opts.DrainTimeout > 0 {
		select {
		case <-done:
			return nil
		case <-time.After(s.opts.DrainTimeout):
		case <-ctx.Done():
		}
	}
	s.cancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Job is one submitted campaign and everything the API serves about it.
type Job struct {
	ID  string
	Req Request

	cfg      campaign.Config
	ctx      context.Context
	cancelFn context.CancelFunc

	mu        sync.Mutex
	state     string
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  campaign.Event
	result    *campaign.Result
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the campaign result of a done job (nil otherwise).
func (j *Job) Result() *campaign.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Degraded returns a done job's degradation ledger, or nil if the job has
// no result or lost nothing.
func (j *Job) Degraded() *campaign.Degraded {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil || j.result.Degraded.Empty() {
		return nil
	}
	d := j.result.Degraded
	return &d
}

// Duration is the running time (so far, for a live job).
func (j *Job) Duration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.started.IsZero():
		return 0
	case j.finished.IsZero():
		return time.Since(j.started)
	default:
		return j.finished.Sub(j.started)
	}
}

// Cancel aborts the job: a queued job is marked canceled without running; a
// running job's context is canceled and the scheduler marks it once the
// campaign unwinds. Finished jobs are unaffected.
func (j *Job) Cancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.markCanceledLocked("canceled before start")
	case StateRunning:
		j.cancelFn()
	}
}

// cancelQueued cancels the job only if it never started; reports whether it
// did (so Shutdown can count it).
func (j *Job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.markCanceledLocked("canceled: service shutting down")
	return true
}

func (j *Job) markCanceledLocked(msg string) {
	j.state = StateCanceled
	j.errMsg = msg
	j.finished = time.Now()
	j.cancelFn()
}

// begin moves queued → running; false if the job was canceled first.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

func (j *Job) setProgress(ev campaign.Event) {
	j.mu.Lock()
	j.progress = ev
	j.mu.Unlock()
}

func (j *Job) finish(res *campaign.Result, err error, canceled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case canceled:
		j.state = StateCanceled
		j.errMsg = "canceled"
		if j.cfg.Resume && j.cfg.CorpusDir != "" {
			j.errMsg = "canceled (completed tests are checkpointed in the shared corpus; resubmit the same config to resume)"
		}
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
	default:
		j.state = StateDone
		j.result = res
	}
}
