package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pokeemu/internal/campaign"
	"pokeemu/internal/diff"
	"pokeemu/internal/triage"
)

// Status is the JSON shape of GET /v1/campaigns/{id} (and of each element
// of the list endpoint): job identity, lifecycle timestamps, live progress,
// and the effective (normalized) config.
type Status struct {
	ID          string        `json:"id"`
	State       string        `json:"state"`
	Config      Request       `json:"config"`
	SubmittedAt string        `json:"submitted_at"`
	StartedAt   string        `json:"started_at,omitempty"`
	FinishedAt  string        `json:"finished_at,omitempty"`
	DurationMS  int64         `json:"duration_ms"`
	Progress    *ProgressInfo `json:"progress,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// ProgressInfo is the latest progress event of a job.
type ProgressInfo struct {
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// Report is the JSON shape of GET /v1/campaigns/{id}/report. Summary is the
// deterministic campaign report — byte-identical to Result.Summary() for
// the same config run via campaign.Run directly; Timing is the
// run-dependent wall-clock/cache table.
type Report struct {
	ID            string         `json:"id"`
	Summary       string         `json:"summary"`
	Timing        string         `json:"timing"`
	TotalTests    int            `json:"total_tests"`
	TotalPaths    int            `json:"total_paths"`
	LoFiDiffTests int            `json:"lofi_diff_tests"`
	HiFiDiffTests int            `json:"hifi_diff_tests"`
	InstrFaults   int            `json:"instr_faults"`
	ExecFaults    int            `json:"exec_faults"`
	ExecTimeouts  int            `json:"exec_timeouts"`
	RootCauses    map[string]int `json:"root_causes,omitempty"`
	Cache         CacheInfo      `json:"cache"`
	// Degraded is the campaign's graceful-degradation ledger: present only
	// when the run lost units or cache entries, so healthy reports are
	// byte-identical to the pre-degradation format.
	Degraded *DegradedInfo `json:"degraded,omitempty"`
	// Baseline is the known/new partition, present only when the job ran
	// against a baseline — baseline-free reports keep their historical bytes.
	Baseline *BaselineInfo `json:"baseline,omitempty"`
	// Hybrid summarizes the coverage-guided fuzzing stage, present only
	// when the job requested a hybrid budget.
	Hybrid *HybridInfo `json:"hybrid,omitempty"`
	// Vote summarizes the N-way voted verdicts, present only when the job
	// requested voting — vote-free reports keep their historical bytes.
	Vote *VoteInfo `json:"vote,omitempty"`
}

// VoteInfo summarizes a job's N-way voted verdicts: per-test equivalence
// classes over the three emulators, with per-emulator blame counts.
type VoteInfo struct {
	Agree    int            `json:"agree"`
	Majority int            `json:"majority"`
	Splits   int            `json:"splits"`
	Blame    map[string]int `json:"blame,omitempty"`
}

// HybridInfo summarizes a job's hybrid fuzzing stage.
type HybridInfo struct {
	Execs          int  `json:"execs"`
	Skipped        int  `json:"skipped,omitempty"`
	Deduped        int  `json:"deduped"`
	NewCoverage    int  `json:"new_coverage"`
	Divergent      int  `json:"divergent"`
	Promising      int  `json:"promising"`
	Reseeds        int  `json:"reseeds"`
	ReseedTests    int  `json:"reseed_tests"`
	Signatures     int  `json:"signatures"`
	SeedSignatures int  `json:"seed_signatures"`
	Edges          int  `json:"edges"`
	Cached         bool `json:"cached,omitempty"` // stage served from the corpus
}

// BaselineInfo summarizes a job's baseline partition.
type BaselineInfo struct {
	Entries int `json:"entries"` // suppressed clusters in the baseline
	Known   int `json:"known"`   // divergent tests matching a baseline entry
	New     int `json:"new"`     // divergent tests not in the baseline
}

// DegradedInfo mirrors campaign.Degraded with stable JSON names.
type DegradedInfo struct {
	Units        int            `json:"units"`
	Instrs       int            `json:"instrs"`
	Execs        int            `json:"execs"`
	CorpusWrites int            `json:"corpus_writes"`
	CorpusReads  int            `json:"corpus_reads"`
	HybridExecs  int            `json:"hybrid_execs,omitempty"`
	Reasons      map[string]int `json:"reasons,omitempty"`
}

// CacheInfo mirrors campaign.CacheStats with stable JSON names.
type CacheInfo struct {
	Enabled        bool `json:"enabled"`
	SummaryHit     bool `json:"summary_hit"`
	InstrHits      int  `json:"instr_hits"`
	InstrMisses    int  `json:"instr_misses"`
	TestsCached    int  `json:"tests_cached"`
	TestsGenerated int  `json:"tests_generated"`
	ExecHits       int  `json:"exec_hits"`
	ExecMisses     int  `json:"exec_misses"`
	// I/O resilience counters, omitted when zero so healthy-run reports
	// keep their pre-degradation bytes.
	ExecDecodeFailed int   `json:"exec_decode_failed,omitempty"`
	ReadRetries      int64 `json:"read_retries,omitempty"`
	WriteRetries     int64 `json:"write_retries,omitempty"`
	ReadFailures     int64 `json:"read_failures,omitempty"`
	WriteFailures    int64 `json:"write_failures,omitempty"`
}

// Divergences is the JSON shape of GET /v1/campaigns/{id}/divergences.
type Divergences struct {
	ID          string       `json:"id"`
	Count       int          `json:"count"`
	Divergences []Divergence `json:"divergences"`
}

// Divergence is one behavioral difference, with its root-cause class.
type Divergence struct {
	TestID    string            `json:"test_id"`
	Handler   string            `json:"handler"`
	Mnemonic  string            `json:"mnemonic"`
	ImplA     string            `json:"impl_a"`
	ImplB     string            `json:"impl_b"`
	RootCause string            `json:"root_cause"`
	Fields    []DivergenceField `json:"fields"`
}

// DivergenceField is one differing machine-state field (values in hex).
type DivergenceField struct {
	Field string `json:"field"`
	A     string `json:"a"`
	B     string `json:"b"`
}

// ListResponse is the JSON shape of GET /v1/campaigns.
type ListResponse struct {
	Jobs []Status `json:"jobs"`
}

// Health is the JSON shape of GET /healthz. Status is "ok" until a job
// fails or finishes degraded, then "degraded" with the detail populated —
// the HTTP code stays 200 (the daemon itself is alive; liveness probes
// must not restart it over a lost unit).
type Health struct {
	Status   string          `json:"status"`
	Draining bool            `json:"draining"`
	Corpus   string          `json:"corpus,omitempty"`
	Jobs     JobGauges       `json:"jobs"`
	Degraded *DegradedHealth `json:"degraded,omitempty"`
}

// DegradedHealth details why Health.Status is "degraded".
type DegradedHealth struct {
	JobsFailed    int `json:"jobs_failed"`    // jobs that died (panic, scheduler fault, hard error)
	JobsDegraded  int `json:"jobs_degraded"`  // done jobs whose campaigns lost units
	DegradedUnits int `json:"degraded_units"` // total units lost across those jobs
}

// routes wires the API. Every handler is wrapped with per-route request
// counting and latency observation.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.instrument("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/campaigns", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /v1/campaigns/{id}", s.instrument("status", s.handleStatus))
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.instrument("cancel", s.handleCancel))
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.instrument("report", s.handleReport))
	mux.HandleFunc("GET /v1/campaigns/{id}/divergences", s.instrument("divergences", s.handleDivergences))
	mux.HandleFunc("GET /v1/campaigns/{id}/triage", s.instrument("triage", s.handleTriage))
	mux.HandleFunc("GET /v1/equivcheck", s.instrument("equivcheck", s.handleEquivcheck))
	mux.HandleFunc("GET /v1/baseline", s.instrument("baseline", s.handleBaselineGet))
	mux.HandleFunc("PUT /v1/baseline", s.instrument("baseline", s.handleBaselinePut))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observeHTTP(route, sw.code, time.Since(t0))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrQueueFull) {
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		} else {
			writeErr(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	resp := ListResponse{Jobs: []Status{}}
	for _, j := range s.Jobs() {
		resp.Jobs = append(resp.Jobs, j.status())
	}
	writeJSON(w, http.StatusOK, resp)
}

// lookup resolves {id} or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no such job %q", id))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.status())
}

// finishedResult gates the result endpoints: only done jobs have one.
func finishedResult(w http.ResponseWriter, j *Job) (*campaign.Result, bool) {
	res := j.Result()
	if res == nil {
		writeErr(w, http.StatusConflict,
			fmt.Sprintf("job %s is %s; results are available once it is done", j.ID, j.State()))
		return nil, false
	}
	return res, true
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res, ok := finishedResult(w, j)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, Report{
		ID:            j.ID,
		Summary:       res.Summary(),
		Timing:        res.TimingTable(),
		TotalTests:    res.TotalTests,
		TotalPaths:    res.TotalPaths,
		LoFiDiffTests: res.LoFiDiffTests,
		HiFiDiffTests: res.HiFiDiffTests,
		InstrFaults:   res.InstrFaults,
		ExecFaults:    res.ExecFaults,
		ExecTimeouts:  res.ExecTimeouts,
		RootCauses:    res.RootCauses,
		Cache: CacheInfo{
			Enabled:          res.Cache.Enabled,
			SummaryHit:       res.Cache.SummaryHit,
			InstrHits:        res.Cache.InstrHits,
			InstrMisses:      res.Cache.InstrMisses,
			TestsCached:      res.Cache.TestsCached,
			TestsGenerated:   res.Cache.TestsGenerated,
			ExecHits:         res.Cache.ExecHits,
			ExecMisses:       res.Cache.ExecMisses,
			ExecDecodeFailed: res.Cache.ExecDecodeFailed,
			ReadRetries:      res.Cache.ReadRetries,
			WriteRetries:     res.Cache.WriteRetries,
			ReadFailures:     res.Cache.ReadFailures,
			WriteFailures:    res.Cache.WriteFailures,
		},
		Degraded: degradedInfo(&res.Degraded),
		Baseline: baselineInfo(res),
		Hybrid:   hybridInfo(res),
		Vote:     voteInfo(res),
	})
}

// voteInfo converts the result's voted verdicts for the API; nil (omitted
// from the JSON) when the job ran without voting.
func voteInfo(res *campaign.Result) *VoteInfo {
	if !res.VoteUsed {
		return nil
	}
	return &VoteInfo{
		Agree: res.VoteAgree, Majority: res.VoteMajority, Splits: res.VoteSplits,
		Blame: res.VoteBlame,
	}
}

// hybridInfo converts the result's hybrid stage for the API; nil (omitted
// from the JSON) when the job ran without a hybrid budget.
func hybridInfo(res *campaign.Result) *HybridInfo {
	if !res.HybridUsed {
		return nil
	}
	st := res.HybridStats
	return &HybridInfo{
		Execs: st.Execs, Skipped: st.Skipped, Deduped: st.Deduped,
		NewCoverage: st.NewCoverage, Divergent: st.Divergent, Promising: st.Promising,
		Reseeds: st.Reseeds, ReseedTests: st.ReseedTests,
		Signatures: st.Signatures, SeedSignatures: st.SeedSignatures, Edges: st.Edges,
		Cached: res.Cache.FuzzHit,
	}
}

// baselineInfo converts the result's baseline partition for the API; nil
// (omitted from the JSON) when the job ran without a baseline.
func baselineInfo(res *campaign.Result) *BaselineInfo {
	if !res.BaselineUsed {
		return nil
	}
	return &BaselineInfo{Entries: res.BaselineEntries, Known: res.KnownDiffs, New: res.NewDiffs}
}

// degradedInfo converts the campaign ledger for the API; nil (omitted from
// the JSON) when the run lost nothing.
func degradedInfo(d *campaign.Degraded) *DegradedInfo {
	if d.Empty() {
		return nil
	}
	return &DegradedInfo{
		Units:        d.Total(),
		Instrs:       d.Instrs,
		Execs:        d.Execs,
		CorpusWrites: d.CorpusWrites,
		CorpusReads:  d.CorpusReads,
		HybridExecs:  d.HybridExecs,
		Reasons:      d.Reasons,
	}
}

func (s *Server) handleDivergences(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res, ok := finishedResult(w, j)
	if !ok {
		return
	}
	resp := Divergences{ID: j.ID, Count: len(res.Differences), Divergences: []Divergence{}}
	for _, d := range res.Differences {
		dv := Divergence{
			TestID:    d.TestID,
			Handler:   d.Handler,
			Mnemonic:  d.Mnemonic,
			ImplA:     d.ImplA,
			ImplB:     d.ImplB,
			RootCause: diff.RootCause(d),
		}
		for _, f := range d.Fields {
			dv.Fields = append(dv.Fields, DivergenceField{
				Field: f.Field,
				A:     fmt.Sprintf("%#x", f.A),
				B:     fmt.Sprintf("%#x", f.B),
			})
		}
		resp.Divergences = append(resp.Divergences, dv)
	}
	writeJSON(w, http.StatusOK, resp)
}

// TriageResponse is the JSON shape of GET /v1/campaigns/{id}/triage: the
// full triage report, its human rendering, and the baseline that would
// suppress every cluster seen — ready to PUT back to /v1/baseline.
type TriageResponse struct {
	ID                string           `json:"id"`
	Rendered          string           `json:"rendered"`
	Report            *triage.Report   `json:"report"`
	SuggestedBaseline *triage.Baseline `json:"suggested_baseline"`
}

// handleTriage triages a done job's divergences on demand. Query parameters:
// minimize=1 ddmin-shrinks every case (cached in the shared corpus, so
// repeat requests replay instead of re-running oracles); budget=N bounds
// oracle runs per case. The partition uses the baseline the job ran with, so
// the triage report always agrees with the job's campaign summary.
func (s *Server) handleTriage(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res, ok := finishedResult(w, j)
	if !ok {
		return
	}
	opts := triage.Options{
		TestMaxSteps: j.Req.TestMaxSteps,
		Workers:      j.Req.Workers,
		Baseline:     j.cfg.Baseline,
		Corpus:       s.crp,
	}
	q := r.URL.Query()
	opts.Minimize = q.Get("minimize") == "1" || q.Get("minimize") == "true"
	if v := q.Get("budget"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad budget %q", v))
			return
		}
		opts.Budget = n
	}
	rep, err := triage.Run(res.TriageCases, opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, TriageResponse{
		ID:                j.ID,
		Rendered:          rep.Render(),
		Report:            rep,
		SuggestedBaseline: rep.SuggestedBaseline(),
	})
}

// handleBaselineGet serves the service-wide baseline (an empty one when none
// has been recorded, so clients can always fetch-modify-PUT).
func (s *Server) handleBaselineGet(w http.ResponseWriter, r *http.Request) {
	bl := s.Baseline()
	if bl == nil {
		bl = triage.NewBaseline()
	}
	writeJSON(w, http.StatusOK, bl)
}

// handleBaselinePut replaces the service-wide baseline. The body is the
// versioned baseline format (as served by GET /v1/baseline or suggested by
// the triage endpoint); jobs submitted afterwards partition against it.
func (s *Server) handleBaselinePut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	bl, err := triage.DecodeBaseline(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.SetBaseline(bl); err != nil {
		writeErr(w, http.StatusInternalServerError, "persisting baseline: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, bl)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{
		Status:   "ok",
		Draining: draining,
		Corpus:   s.opts.CorpusDir,
		Jobs:     s.gauges(),
	}
	var dh DegradedHealth
	for _, j := range s.Jobs() {
		if j.State() == StateFailed {
			dh.JobsFailed++
		}
		if d := j.Degraded(); d != nil {
			dh.JobsDegraded++
			dh.DegradedUnits += d.Total()
		}
	}
	if dh.JobsFailed > 0 || dh.JobsDegraded > 0 {
		h.Status = "degraded"
		h.Degraded = &dh
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.gauges()))
}

// status snapshots a job for the API.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		State:       j.state,
		Config:      j.Req,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.DurationMS = end.Sub(j.started).Milliseconds()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.progress.Stage != "" {
		st.Progress = &ProgressInfo{Stage: j.progress.Stage, Done: j.progress.Done, Total: j.progress.Total}
	}
	return st
}
