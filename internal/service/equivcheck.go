package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"pokeemu/internal/equivcheck"
)

// EquivcheckResponse is the JSON shape of GET /v1/equivcheck: the rendered
// verdict table plus the full structured report. Rendered and Report are
// deterministic — byte-identical to `pokeemu equivcheck` with the same
// parameters — while cache effectiveness (answered from the shared corpus
// versus proved fresh) is reported separately because it depends on what
// earlier requests already computed.
type EquivcheckResponse struct {
	Config      string             `json:"config"`
	Rendered    string             `json:"rendered"`
	Report      *equivcheck.Report `json:"report"`
	CacheHits   int64              `json:"cache_hits"`
	CacheMisses int64              `json:"cache_misses"`
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(q string, name string) (int64, error) {
	if q == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(q, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", name, q)
	}
	return n, nil
}

// handleEquivcheck proves (or refutes) fidelis/celer equivalence per handler
// on demand. Query parameters: handlers= comma-separated handler keys
// (default: the seeded gate subset; "all" checks every handler), paths= the
// fidelis path cap, budget= the per-handler solver-query budget, conflicts=
// the per-query SAT conflict budget, workers= the parallel width (never
// changes the report), nocache=1 to ignore cached verdicts. Verdicts are
// cached in the shared corpus keyed by (handler, semantics version, budgets),
// so a warm request answers without any solver queries.
func (s *Server) handleEquivcheck(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opts := equivcheck.Options{
		Handlers: equivcheck.DefaultGateHandlers,
		Corpus:   s.crp,
	}
	switch hs := q.Get("handlers"); hs {
	case "":
	case "all":
		opts.Handlers = nil
	default:
		opts.Handlers = strings.Split(hs, ",")
	}
	paths, err := queryInt(q.Get("paths"), "paths")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	opts.MaxPaths = int(paths)
	if opts.Budget, err = queryInt(q.Get("budget"), "budget"); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if opts.MaxConflicts, err = queryInt(q.Get("conflicts"), "conflicts"); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	workers, err := queryInt(q.Get("workers"), "workers")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if workers > int64(s.opts.MaxWorkersPerJob) {
		workers = int64(s.opts.MaxWorkersPerJob)
	}
	opts.Workers = int(workers)
	opts.NoCache = q.Get("nocache") == "1" || q.Get("nocache") == "true"

	rep, err := equivcheck.Run(opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.recordEquivcheck(rep)
	writeJSON(w, http.StatusOK, EquivcheckResponse{
		Config:      rep.Config,
		Rendered:    rep.Render(),
		Report:      rep,
		CacheHits:   int64(rep.Timing.CacheHits),
		CacheMisses: int64(rep.Timing.CacheMisses),
	})
}
