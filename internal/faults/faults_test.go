package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                          // no rules
		";;",                        // no rules
		"nonsense.point",            // unknown point
		"corpus.read:p=1.5",         // p out of range
		"corpus.read:p=nan",         // NaN
		"corpus.read:p=",            // empty p
		"corpus.read:n=0",           // n < 1
		"corpus.read:every=-2",      // every < 1
		"corpus.read:times=0",       // times < 1
		"corpus.read:key=",          // empty key
		"corpus.read:bogus=1",       // unknown option
		"corpus.read:err:panic",     // two actions
		"corpus.read:delay=xyz",     // bad duration
		"corpus.read:delay=-1s",     // negative duration
		"seed=abc",                  // bad seed
		"seed=1",                    // seed alone: no rules
	}
	for _, spec := range bad {
		if p, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", spec, p)
		}
	}
}

func TestParseAndFireModes(t *testing.T) {
	// n= fires exactly once, on the Nth call.
	p, err := Parse("corpus.read:n=3:err=boom")
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 5; i++ {
		if p.hit(CorpusRead, "k") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Errorf("n=3 fired on calls %v, want [3]", fired)
	}
	if got := p.Fires()[CorpusRead]; got != 1 {
		t.Errorf("Fires = %d, want 1", got)
	}

	// every= fires periodically; times= caps total fires.
	p, err = Parse("corpus.write:every=2:times=2")
	if err != nil {
		t.Fatal(err)
	}
	fired = nil
	for i := 1; i <= 8; i++ {
		if p.hit(CorpusWrite, "k") != nil {
			fired = append(fired, i)
		}
	}
	if want := []int{2, 4}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("every=2:times=2 fired on %v, want %v", fired, want)
	}

	// key= gates on substring.
	p, err = Parse("campaign.explore:key=leave:panic=crash")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.hit(CampaignExplore, "push_r/16"); err != nil {
		t.Errorf("non-matching key fired: %v", err)
	}
	func() {
		defer func() {
			r := recover()
			e, ok := r.(*Error)
			if !ok || e.Point != CampaignExplore || e.Msg != "crash" {
				t.Errorf("panic = %v, want *Error{campaign.explore, crash}", r)
			}
		}()
		p.hit(CampaignExplore, "leave/16")
		t.Error("matching key did not panic")
	}()
}

func TestKeyedProbabilityIsDeterministic(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	decide := func(seed uint64) string {
		p, err := Parse("campaign.exec:p=0.5:err")
		if err != nil {
			t.Fatal(err)
		}
		p.Seed = seed
		var b strings.Builder
		for _, k := range keys {
			if p.hit(CampaignExec, k) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	d1, d2 := decide(7), decide(7)
	if d1 != d2 {
		t.Errorf("same seed, different decisions: %s vs %s", d1, d2)
	}
	// Not all-fire / all-pass at p=0.5 over 10 keys (sanity, and seed matters).
	if !strings.Contains(d1, "1") || !strings.Contains(d1, "0") {
		t.Errorf("p=0.5 decisions degenerate: %s", d1)
	}
	if d3 := decide(8); d3 == d1 {
		t.Logf("seeds 7 and 8 agree on all 10 keys (unlikely but legal): %s", d1)
	}
	// p=1 always fires, p=0 never.
	p, _ := Parse("campaign.exec:p=1:err")
	if p.hit(CampaignExec, "x") == nil {
		t.Error("p=1 did not fire")
	}
	p, _ = Parse("campaign.exec:p=0:err")
	if p.hit(CampaignExec, "x") != nil {
		t.Error("p=0 fired")
	}
}

func TestArmDisarmAndHit(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Hit(CorpusRead, "k"); err != nil {
		t.Fatalf("disarmed Hit = %v", err)
	}
	p, err := ArmSpec("seed=3;corpus.read:err=EIO")
	if err != nil {
		t.Fatal(err)
	}
	if Armed() != p {
		t.Error("Armed() did not return the armed plan")
	}
	err = Hit(CorpusRead, "k")
	if err == nil || !IsInjected(err) {
		t.Fatalf("armed Hit = %v, want injected error", err)
	}
	if got, want := err.Error(), "injected: corpus.read: EIO"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != CorpusRead {
		t.Errorf("errors.As failed on %v", err)
	}
	Disarm()
	if err := Hit(CorpusRead, "k"); err != nil {
		t.Fatalf("Hit after Disarm = %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	p, err := Parse("service.schedule:delay=10ms")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := p.hit(ServiceSchedule, "job-0001"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Errorf("delay slept %v, want >= 10ms", d)
	}
}

func TestSeedElement(t *testing.T) {
	p, err := Parse(" seed=42 ; corpus.read:p=0.5 ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("Seed = %d, want 42", p.Seed)
	}
}

func TestEveryPointNameIsRegistered(t *testing.T) {
	for name := range Points {
		if _, err := Parse(name + ":err"); err != nil {
			t.Errorf("registered point %q rejected: %v", name, err)
		}
	}
}

// BenchmarkHitDisabled pins the disabled-path cost of a fault point: one
// atomic pointer load and a nil check. This is the acceptance gate for
// threading fault points through hot paths (solver queries, corpus I/O) —
// with no plan armed they must be effectively free.
func BenchmarkHitDisabled(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(SolverQuery, "key"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHitArmedMiss measures an armed plan whose rule does not match,
// the common case in a chaos run (most units are healthy).
func BenchmarkHitArmedMiss(b *testing.B) {
	p, err := Parse("solver.query:p=0:err")
	if err != nil {
		b.Fatal(err)
	}
	Arm(p)
	defer Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit(SolverQuery, "key"); err != nil {
			b.Fatal(err)
		}
	}
}
