// Package faults is the process-wide, seed-deterministic fault-injection
// registry behind the chaos test layer. The pipeline's trusted-harness
// argument (the paper's §6–7: a divergence report is evidence only if the
// harness survives its own failures) is only as good as the failure paths
// we can actually drive, so every subsystem with an interesting failure
// mode exposes a *named fault point* — a single call to Hit at the place
// where the real error would surface. With no plan armed, a fault point is
// one atomic pointer load; with a plan armed, the matching rules decide —
// deterministically — whether to inject an error, a panic, or latency.
//
// Determinism contract: rules selected by probability are keyed, not
// clocked. A `p=0.5` rule hashes (seed, point, key) — the key being the
// unit's stable identity (an instruction key, a test ID, a corpus object
// hash, a solver assumption-set key) — so whether a given unit faults is a
// pure function of the plan, independent of scheduling, worker count, and
// wall-clock time. That is what lets the chaos suite assert byte-identical
// degraded reports for Workers=1 vs N. Counter triggers (n=, every=) are
// clocked by a per-rule atomic call counter and are deterministic only
// where the point is hit from one goroutine at a time; they exist to test
// retry recovery (fire the first K attempts, then heal), which keyed
// probability cannot express (same key → same decision, every retry).
//
// Plans are armed process-wide (Arm/Disarm); the binaries arm from the
// POKEEMU_FAULTS environment variable or a -faults flag at startup. Spec
// grammar (Parse):
//
//	spec   := element (';' element)*
//	element:= 'seed=' uint | rule
//	rule   := point (':' option)*
//	option := 'p=' float01        keyed probability trigger
//	        | 'n=' int            fire on exactly the Nth call
//	        | 'every=' int        fire on every Nth call
//	        | 'key=' substring    fire only when the key contains substring
//	        | 'times=' int        stop after this many fires
//	        | 'err' ['=' msg]     action: return an injected error
//	        | 'panic' ['=' msg]   action: panic with an injected *Error
//	        | 'delay=' duration   action: sleep, then proceed normally
//
// Example: POKEEMU_FAULTS="seed=7;corpus.read:p=0.5:err;solver.query:n=40:err=decision timeout"
//
// A rule with no trigger always fires; a rule with no action injects an
// error. Triggers compose conjunctively. Option values cannot contain ':'
// or ';' (the separators). Unknown points and malformed options are
// rejected with errors, never panics (FuzzFaultSpec pins this).
package faults

import (
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Registered fault-point names. Hit panics on an unregistered name in
// tests (via Parse rejecting it); the inventory doubles as documentation.
const (
	CorpusRead      = "corpus.read"      // corpus object read; key = object hash
	CorpusWrite     = "corpus.write"     // corpus temp-file write; key = object hash
	CorpusRename    = "corpus.rename"    // corpus atomic-rename commit; key = object hash
	SolverQuery     = "solver.query"     // solver CheckLits query; key = assumption-set memo key; a fire is a decision-procedure timeout
	SymexTask       = "symex.task"       // parallel exploration task; key = direction prefix
	CampaignExplore = "campaign.explore" // per-instruction explore/generate task; key = instruction key
	CampaignExec    = "campaign.exec"    // per-test execution task; key = test ID
	ServiceSchedule = "service.schedule" // job scheduler slot; key = job ID
	HybridMutate    = "hybrid.mutate"    // hybrid fuzzer mutation job; key = job ID
)

// Points is the fault-point inventory: every name Hit is called with, and
// what its key is. Parse rejects names outside this set.
var Points = map[string]string{
	CorpusRead:      "corpus object read (key: object hash); a fire is a transient read error",
	CorpusWrite:     "corpus temp-file write (key: object hash); a fire is a transient write error",
	CorpusRename:    "corpus atomic-rename commit (key: object hash); a fire is a transient rename error",
	SolverQuery:     "solver CheckLits query (key: assumption-set memo key); a fire is a decision-procedure timeout",
	SymexTask:       "parallel exploration task (key: branch-direction prefix); a fire crashes the task",
	CampaignExplore: "per-instruction explore/generate worker (key: instruction key); a fire crashes the worker",
	CampaignExec:    "per-test execution worker (key: test ID); a fire crashes the worker",
	ServiceSchedule: "service job slot (key: job ID); a fire fails the job at scheduling time",
	HybridMutate:    "hybrid fuzzer mutation job (key: job ID); a fire skips the mutation",
}

// EnvVar is the environment variable both binaries consult at startup for
// a fault plan spec.
const EnvVar = "POKEEMU_FAULTS"

// Error is an injected failure. Subsystems that distinguish injected from
// organic errors (tests, mostly) use IsInjected; everything else treats it
// like the real error it stands in for.
type Error struct {
	Point string // the fault point that fired
	Msg   string // the rule's message ("I/O error", "decision timeout", …)
}

func (e *Error) Error() string { return "injected: " + e.Point + ": " + e.Msg }

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var e *Error
	return errors.As(err, &e)
}

type action uint8

const (
	actErr action = iota
	actPanic
	actDelay
)

// rule is one parsed spec element: triggers (all must pass) and an action.
type rule struct {
	point  string
	keySub string        // key= trigger ("" = any key)
	prob   float64       // p= trigger (-1 = unset)
	nth    int64         // n= trigger (0 = unset)
	every  int64         // every= trigger (0 = unset)
	times  int64         // times= cap (0 = unlimited)
	act    action
	msg    string
	delay  time.Duration

	calls atomic.Int64 // hits consulted (trigger clock for n=/every=)
	fires atomic.Int64 // times the rule actually fired
}

// Plan is a parsed, armable fault plan. A Plan is safe for concurrent use;
// its counters advance atomically.
type Plan struct {
	// Seed perturbs every keyed-probability decision; two plans with the
	// same rules and different seeds fail different unit sets.
	Seed uint64

	spec    string
	rules   []*rule
	byPoint map[string][]*rule
}

// Spec returns the spec string the plan was parsed from.
func (p *Plan) Spec() string { return p.spec }

// Fires returns the per-point count of injected faults so far, for test
// assertions and operator visibility.
func (p *Plan) Fires() map[string]int64 {
	out := make(map[string]int64)
	for _, r := range p.rules {
		out[r.point] += r.fires.Load()
	}
	return out
}

// armed is the process-wide active plan; nil means fault injection is off
// and every Hit is a single atomic load.
var armed atomic.Pointer[Plan]

// Arm activates the plan process-wide (nil disarms).
func Arm(p *Plan) {
	if p == nil {
		armed.Store(nil)
		return
	}
	armed.Store(p)
}

// Disarm deactivates fault injection.
func Disarm() { armed.Store(nil) }

// Armed returns the active plan (nil when disarmed).
func Armed() *Plan { return armed.Load() }

// ArmSpec parses and arms a spec in one step.
func ArmSpec(spec string) (*Plan, error) {
	p, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	Arm(p)
	return p, nil
}

// Hit consults the armed plan for the named point. It returns a non-nil
// *Error when an err-mode rule fires, panics with a *Error when a
// panic-mode rule fires, sleeps and returns nil for delay-mode, and
// returns nil otherwise. The disabled path is one atomic load.
func Hit(point, key string) error {
	p := armed.Load()
	if p == nil {
		return nil
	}
	return p.hit(point, key)
}

func (p *Plan) hit(point, key string) error {
	for _, r := range p.byPoint[point] {
		if !r.fire(p.Seed, key) {
			continue
		}
		switch r.act {
		case actDelay:
			time.Sleep(r.delay)
			return nil
		case actPanic:
			panic(&Error{Point: point, Msg: r.msg})
		default:
			return &Error{Point: point, Msg: r.msg}
		}
	}
	return nil
}

// fire evaluates the rule's triggers for one hit. Every trigger must pass.
func (r *rule) fire(seed uint64, key string) bool {
	n := r.calls.Add(1)
	if r.keySub != "" && !strings.Contains(key, r.keySub) {
		return false
	}
	if r.nth > 0 && n != r.nth {
		return false
	}
	if r.every > 0 && n%r.every != 0 {
		return false
	}
	if r.prob >= 0 {
		// Keyed decision: a pure function of (seed, point, key). Points hit
		// without a key fall back to the call counter, trading determinism
		// under concurrency for usability.
		k := key
		if k == "" {
			k = strconv.FormatInt(n, 10)
		}
		if !keyedBelow(seed, r.point, k, r.prob) {
			return false
		}
	}
	f := r.fires.Add(1)
	if r.times > 0 && f > r.times {
		return false
	}
	return true
}

// keyedBelow maps (seed, point, key) to [0,1) by FNV-1a and compares
// against p. p=1 always fires (the hash is strictly below 1); p=0 never.
func keyedBelow(seed uint64, point, key string, p float64) bool {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for i := 0; i < len(point); i++ {
		mix(point[i])
	}
	mix(0)
	for i := 0; i < len(key); i++ {
		mix(key[i])
	}
	// FNV avalanches poorly on short suffix differences (single-character
	// keys land in one narrow band); a murmur3-style finalizer fixes the
	// bit diffusion before the threshold compare.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11)/(1<<53) < p
}
