package faults

import (
	"testing"
	"time"
)

// FuzzFaultSpec pins the parser's no-panic contract: any input either
// yields a usable plan or a descriptive error — never a panic, and never a
// plan whose rules escape the registered point inventory. Armed plans come
// from operator-controlled env vars and HTTP-adjacent config, so the
// parser is an input boundary.
func FuzzFaultSpec(f *testing.F) {
	seeds := []string{
		"",
		"corpus.read:err",
		"seed=7;corpus.read:p=0.5:err;corpus.write:p=0.5:err",
		"solver.query:n=40:err=decision timeout",
		"campaign.explore:key=leave:panic=injected worker crash",
		"campaign.exec:p=0.25:panic",
		"service.schedule:n=1:err=injected overload",
		"corpus.rename:every=3:times=2:err",
		"symex.task:delay=1ms",
		"corpus.read:p=1.5",
		"seed=18446744073709551615;corpus.read:err",
		"corpus.read:p=0.5:err;;;",
		"corpus.read:err=msg with = sign",
		"seed=1:err",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both a plan and error %v", spec, err)
			}
			return
		}
		if p == nil || len(p.rules) == 0 {
			t.Fatalf("Parse(%q) succeeded with no rules", spec)
		}
		evaluate := true
		for _, r := range p.rules {
			if _, ok := Points[r.point]; !ok {
				t.Fatalf("Parse(%q) accepted unregistered point %q", spec, r.point)
			}
			if r.act == actDelay && r.delay > time.Millisecond {
				evaluate = false // don't actually sleep long delays below
			}
		}
		if !evaluate {
			return
		}
		// A successfully parsed plan must evaluate without panicking for
		// err-mode rules; panic-mode rules must panic with *Error only.
		for name := range Points {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(*Error); !ok {
							t.Fatalf("hit(%q) panicked with %T %v, want *Error", name, r, r)
						}
					}
				}()
				for i := 0; i < 4; i++ {
					if e := p.hit(name, "fuzz-key"); e != nil && !IsInjected(e) {
						t.Fatalf("hit(%q) = non-injected error %v", name, e)
					}
				}
			}()
		}
	})
}
