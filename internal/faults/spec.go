package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Parse compiles a POKEEMU_FAULTS spec string into a Plan. Malformed
// specs — unknown points, unknown options, out-of-range values, multiple
// actions on one rule — return errors; Parse never panics (FuzzFaultSpec
// pins this). The empty spec is an error: callers treat "" as "leave
// injection disarmed" before calling Parse.
func Parse(spec string) (*Plan, error) {
	p := &Plan{spec: spec, byPoint: make(map[string][]*rule)}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok && !strings.Contains(v, ":") {
			seed, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		p.rules = append(p.rules, r)
		p.byPoint[r.point] = append(p.byPoint[r.point], r)
	}
	if len(p.rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q contains no rules", spec)
	}
	return p, nil
}

func parseRule(part string) (*rule, error) {
	fields := strings.Split(part, ":")
	name := strings.TrimSpace(fields[0])
	if _, ok := Points[name]; !ok {
		return nil, fmt.Errorf("faults: unknown fault point %q (known: see faults.Points)", name)
	}
	r := &rule{point: name, prob: -1}
	haveAct := false
	setAct := func(a action, msg string) error {
		if haveAct {
			return fmt.Errorf("faults: rule %q has more than one action", part)
		}
		haveAct = true
		r.act, r.msg = a, msg
		return nil
	}
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		opt, val, hasVal := strings.Cut(f, "=")
		switch opt {
		case "p":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || v < 0 || v > 1 {
				return nil, fmt.Errorf("faults: rule %q: p must be in [0,1] (got %q)", part, val)
			}
			r.prob = v
		case "n":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("faults: rule %q: n must be >= 1 (got %q)", part, val)
			}
			r.nth = v
		case "every":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("faults: rule %q: every must be >= 1 (got %q)", part, val)
			}
			r.every = v
		case "times":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("faults: rule %q: times must be >= 1 (got %q)", part, val)
			}
			r.times = v
		case "key":
			if !hasVal || val == "" {
				return nil, fmt.Errorf("faults: rule %q: key needs a non-empty substring", part)
			}
			r.keySub = val
		case "err":
			msg := "I/O error"
			if hasVal && val != "" {
				msg = val
			}
			if err := setAct(actErr, msg); err != nil {
				return nil, err
			}
		case "panic":
			msg := "injected crash"
			if hasVal && val != "" {
				msg = val
			}
			if err := setAct(actPanic, msg); err != nil {
				return nil, err
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: rule %q: bad delay %q", part, val)
			}
			if err := setAct(actDelay, ""); err != nil {
				return nil, err
			}
			r.delay = d
		default:
			return nil, fmt.Errorf("faults: rule %q: unknown option %q", part, opt)
		}
	}
	if !haveAct {
		r.act, r.msg = actErr, "I/O error"
	}
	return r, nil
}
