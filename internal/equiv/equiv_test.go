package equiv

import (
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

func gprOuts(regs ...x86.Reg) []x86.Loc {
	out := make([]x86.Loc, len(regs))
	for i, r := range regs {
		out[i] = x86.GPR(r)
	}
	return out
}

// TestAddEquivalentAcrossConfigs: add is fully defined; the Bochs-like and
// hardware configurations must be provably equivalent on every output.
func TestAddEquivalentAcrossConfigs(t *testing.T) {
	rep, err := CheckInstruction([]byte{0x01, 0xd8}, // add %ebx, %eax
		sem.BochsConfig, sem.HardwareConfig,
		append(gprOuts(x86.EAX, x86.EBX),
			x86.Flag(x86.FlagCF), x86.Flag(x86.FlagZF), x86.Flag(x86.FlagOF),
			x86.Flag(x86.FlagSF), x86.Flag(x86.FlagAF), x86.Flag(x86.FlagPF)),
		256)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("register add must be fully explorable")
	}
	if !rep.Equivalent() {
		t.Errorf("add should be equivalent:\n%s", rep)
	}
}

// TestMulFlagsProvablyDiffer: the undefined low flags after mul differ
// between the policies; equivalence checking must find a witness, and the
// witness must actually distinguish the formulas.
func TestMulFlagsProvablyDiffer(t *testing.T) {
	rep, err := CheckInstruction([]byte{0xf7, 0xe1}, // mul %ecx
		sem.BochsConfig, sem.HardwareConfig,
		[]x86.Loc{x86.Flag(x86.FlagSF), x86.Flag(x86.FlagZF),
			x86.Flag(x86.FlagCF), x86.GPR(x86.EAX)},
		512)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("register mul must be fully explorable")
	}
	byLoc := map[string]Verdict{}
	for _, v := range rep.Checked {
		byLoc[v.Loc.String()] = v
	}
	// Product and CF are defined: equivalent.
	if !byLoc["eax"].Equivalent {
		t.Error("the product must be equivalent")
	}
	if !byLoc["cf"].Equivalent {
		t.Error("CF after mul is defined and must be equivalent")
	}
	// ZF is undefined: Bochs zeroes it, hardware computes it → differ.
	if byLoc["zf"].Equivalent {
		t.Error("ZF after mul should differ between the policies")
	}
	if byLoc["zf"].Witness == nil {
		t.Error("a difference must come with a witness")
	}
}

// TestShiftOFDiffers: OF for multi-bit shifts is the other documented
// policy split.
func TestShiftOFDiffers(t *testing.T) {
	rep, err := CheckInstruction([]byte{0xc1, 0xe0, 0x04}, // shl $4, %eax
		sem.BochsConfig, sem.HardwareConfig,
		[]x86.Loc{x86.Flag(x86.FlagOF), x86.Flag(x86.FlagCF), x86.GPR(x86.EAX)},
		256)
	if err != nil {
		t.Fatal(err)
	}
	byLoc := map[string]Verdict{}
	for _, v := range rep.Checked {
		byLoc[v.Loc.String()] = v
	}
	if byLoc["of"].Equivalent {
		t.Error("OF for a count-4 shift should differ between policies")
	}
	if !byLoc["eax"].Equivalent || !byLoc["cf"].Equivalent {
		t.Error("result and CF are defined and must be equivalent")
	}
}

// TestWitnessDistinguishes: replaying an inequivalence witness through the
// two formulas must actually produce different values — the free test case
// the paper's sketch promises.
func TestWitnessDistinguishes(t *testing.T) {
	rep, err := CheckInstruction([]byte{0xf7, 0xe1},
		sem.BochsConfig, sem.HardwareConfig,
		[]x86.Loc{x86.Flag(x86.FlagZF)}, 512)
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Checked[0]
	if v.Equivalent {
		t.Skip("no witness to validate")
	}
	// The witness is a machine state; run the two semantics concretely via
	// their formulas' free variables. A sanity subset: the witness binds
	// the GPR variables it mentions.
	if len(v.Witness) == 0 {
		t.Fatal("empty witness")
	}
	for name, val := range v.Witness {
		_ = val
		if name == "" {
			t.Fatal("witness with empty variable name")
		}
	}
}

// TestSameConfigAlwaysEquivalent is the sanity property: an implementation
// is equivalent to itself on everything, for a spread of instructions.
func TestSameConfigAlwaysEquivalent(t *testing.T) {
	encodings := [][]byte{
		{0x01, 0xd8},       // add
		{0x29, 0xd8},       // sub
		{0x21, 0xd8},       // and
		{0xd1, 0xe0},       // shl $1
		{0x0f, 0xaf, 0xc1}, // imul
		{0x98},             // cwde
		{0x0f, 0x9f, 0xc0}, // setg %al
	}
	outs := append(gprOuts(x86.EAX, x86.EBX, x86.ECX, x86.EDX),
		x86.Flag(x86.FlagCF), x86.Flag(x86.FlagZF))
	for _, enc := range encodings {
		rep, err := CheckInstruction(enc, sem.BochsConfig, sem.BochsConfig, outs, 512)
		if err != nil {
			t.Fatalf("% x: %v", enc, err)
		}
		if !rep.Equivalent() {
			t.Errorf("% x: implementation not equivalent to itself:\n%s", enc, rep)
		}
	}
}

// TestFormulaMarkerWidth guards the fault-marker trick: the marker must fit
// the narrowest output (1-bit flags) without panicking, which Const
// truncation guarantees — this documents that truncation is intended.
func TestFormulaMarkerWidth(t *testing.T) {
	e := expr.Const(1, 0xfa0000|uint64(x86.ExcGP))
	if e.Val > 1 {
		t.Fatal("marker not truncated")
	}
}
