// Package equiv implements the equivalence-checking extension the paper
// sketches as future work (Section 7): instead of only *testing* two
// implementations on sampled states, symbolically combine all execution
// paths of each implementation of an instruction into one formula per
// output, and ask the decision procedure whether the formulas can ever
// disagree. An UNSAT answer is a proof (within the symbolic state space)
// that no input state distinguishes the implementations on that output; a
// SAT answer yields a concrete distinguishing state — a test case for free.
//
// The paper cites microcode verification [Arons et al., CAV'05] as the
// precedent and notes it "provides a very strong statement about the
// absence of differences" where it scales; here it is applied between the
// Hi-Fi (Bochs-like) and hardware semantics configurations.
package equiv

import (
	"fmt"
	"sort"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/solver"
	"pokeemu/internal/symex"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// Verdict is the result of checking one output location.
type Verdict struct {
	Loc        x86.Loc
	Equivalent bool
	// Witness is a distinguishing assignment when not equivalent.
	Witness map[string]uint64
}

// Report covers one instruction.
type Report struct {
	Handler  string
	Checked  []Verdict
	PathsA   int
	PathsB   int
	Complete bool // both sides explored exhaustively
}

// Equivalent reports whether every checked output matched.
func (r *Report) Equivalent() bool {
	for _, v := range r.Checked {
		if !v.Equivalent {
			return false
		}
	}
	return true
}

func (r *Report) String() string {
	s := fmt.Sprintf("%s: paths %d vs %d, complete=%v\n",
		r.Handler, r.PathsA, r.PathsB, r.Complete)
	for _, v := range r.Checked {
		if v.Equivalent {
			s += fmt.Sprintf("  %-10v equivalent\n", v.Loc)
		} else {
			s += fmt.Sprintf("  %-10v DIFFERS (witness available)\n", v.Loc)
		}
	}
	return s
}

// sideFormulas folds all explored paths of a program into one guarded
// formula per output location, in the style of the summary construction:
// out = p1 ? v1 : p2 ? v2 : … (fault paths contribute a reserved marker so
// differing fault behavior also shows up).
func sideFormulas(prog *ir.Program, mkState func() *symex.SymState,
	outputs []x86.Loc, maxPaths int) (map[x86.Loc]*expr.Expr, int, bool, error) {

	st := mkState()
	opts := symex.Options{MaxPaths: maxPaths, MaxSteps: 1 << 16, Seed: 1,
		SkipMinimize: true}
	en := symex.NewEngine(st, nil, opts)

	type pathInfo struct {
		cond *expr.Expr
		outs map[x86.Loc]*expr.Expr
	}
	var paths []pathInfo
	en.Explore(prog, func(r *symex.PathResult) {
		cond := expr.One
		for _, c := range r.Cond {
			cond = expr.And(cond, c)
		}
		info := pathInfo{cond: cond, outs: make(map[x86.Loc]*expr.Expr)}
		for _, loc := range outputs {
			if r.Outcome.Kind == ir.OutRaise {
				// Fault marker: vector-dependent so mismatched vectors and
				// fault-vs-success both register as differences.
				info.outs[loc] = expr.Const(loc.Width(),
					0xfa0000|uint64(r.Outcome.Vector))
			} else {
				info.outs[loc] = r.Final.Get(loc)
			}
		}
		paths = append(paths, info)
	})
	stats := en.Stats()

	out := make(map[x86.Loc]*expr.Expr)
	for _, loc := range outputs {
		var chain *expr.Expr
		for i := len(paths) - 1; i >= 0; i-- {
			if chain == nil {
				chain = paths[i].outs[loc]
			} else {
				chain = expr.Ite(paths[i].cond, paths[i].outs[loc], chain)
			}
		}
		if chain == nil {
			return nil, 0, false, fmt.Errorf("equiv: no paths explored")
		}
		out[loc] = chain
	}
	return out, stats.Paths, stats.Exhausted, nil
}

// CheckInstruction decides output equivalence of one instruction's
// semantics under two configurations, over a symbolic register state (the
// registers named in outputs, plus the status flags as inputs). Memory-free
// instruction forms give complete results; forms whose exploration is
// capped report Complete=false.
func CheckInstruction(encoding []byte, cfgA, cfgB sem.Config,
	outputs []x86.Loc, maxPaths int) (*Report, error) {

	full := make([]byte, x86.MaxInstLen)
	copy(full, encoding)
	inst, err := x86.Decode(full)
	if err != nil {
		return nil, err
	}
	progA := sem.Compile(inst, cfgA)
	progB := sem.Compile(inst, cfgB)

	image := machine.BaselineImage()
	mkState := func() *symex.SymState {
		st := symex.NewSymState(machine.NewBaseline(image))
		for r := 0; r < 8; r++ {
			st.MarkLocSymbolic(x86.GPR(x86.Reg(r)), ^uint64(0))
		}
		for _, bit := range []uint8{x86.FlagCF, x86.FlagPF, x86.FlagAF,
			x86.FlagZF, x86.FlagSF, x86.FlagDF, x86.FlagOF} {
			st.MarkLocSymbolic(x86.Flag(bit), 1)
		}
		return st
	}

	fa, pa, compA, err := sideFormulas(progA, mkState, outputs, maxPaths)
	if err != nil {
		return nil, err
	}
	fb, pb, compB, err := sideFormulas(progB, mkState, outputs, maxPaths)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Handler: inst.Spec.Name, PathsA: pa, PathsB: pb,
		Complete: compA && compB,
	}
	bv := solver.NewBV()
	for _, loc := range outputs {
		neq := expr.Ne(fa[loc], fb[loc])
		v := Verdict{Loc: loc}
		if bv.Check([]*expr.Expr{neq}) == solver.Unsat {
			v.Equivalent = true
		} else {
			v.Witness = bv.Model()
		}
		rep.Checked = append(rep.Checked, v)
	}
	sort.Slice(rep.Checked, func(i, j int) bool {
		return rep.Checked[i].Loc.String() < rep.Checked[j].Loc.String()
	})
	return rep, nil
}
