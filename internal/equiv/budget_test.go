package equiv

import (
	"testing"

	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// TestIncompleteAtPathBudget: capping exploration below an instruction's
// path count must surface as Complete=false — the caller's signal that the
// verdict is budget-limited (equivcheck's UNKNOWN), never silently treated
// as a proof over the full state space.
func TestIncompleteAtPathBudget(t *testing.T) {
	// div %dh: divide-by-zero and quotient-overflow forks give >1 path.
	enc := []byte{0xf6, 0xf6}
	full, err := CheckInstruction(enc, sem.BochsConfig, sem.BochsConfig,
		gprOuts(x86.EAX), 256)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete {
		t.Fatalf("div exploration incomplete even at cap 256: %v", full)
	}
	if full.PathsA < 2 {
		t.Fatalf("div explored %d paths; the budget test needs a multi-path instruction",
			full.PathsA)
	}
	capped, err := CheckInstruction(enc, sem.BochsConfig, sem.BochsConfig,
		gprOuts(x86.EAX), 1)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Complete {
		t.Errorf("capped exploration (1 path of %d) still claims Complete", full.PathsA)
	}
	// The capped report still carries verdicts for what it did explore.
	if len(capped.Checked) == 0 {
		t.Error("capped report has no checked outputs")
	}
}
