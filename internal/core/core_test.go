package core

import (
	"testing"

	"pokeemu/internal/ir"
	"pokeemu/internal/symex"
	"pokeemu/internal/x86"
)

func findUnique(t *testing.T, key string) *UniqueInstr {
	t.Helper()
	for _, u := range ExploreInstructionSet().Unique {
		if u.Key() == key {
			return u
		}
	}
	t.Fatalf("unique instruction %q not found", key)
	return nil
}

func TestInstrSetExplorationShape(t *testing.T) {
	res := ExploreInstructionSet()
	// The raw three-byte space is 2^24; exploration must cut it down by
	// orders of magnitude while still finding a few hundred thousand
	// candidate sequences and a few hundred unique instructions — the
	// Section 6.1 shape.
	if res.ExploredPaths >= 1<<24/10 {
		t.Errorf("explored %d paths; expected a large reduction from 2^24", res.ExploredPaths)
	}
	if len(res.Candidates) < 10000 {
		t.Errorf("candidates = %d, suspiciously few", len(res.Candidates))
	}
	if len(res.Unique) < 200 || len(res.Unique) > 2000 {
		t.Errorf("unique = %d, want hundreds", len(res.Unique))
	}
	// Every candidate must actually decode.
	for _, c := range res.Candidates[:100] {
		full := make([]byte, x86.MaxInstLen)
		copy(full, c.Bytes[:])
		if _, err := x86.Decode(full); err != nil {
			t.Fatalf("candidate % x does not decode: %v", c.Bytes, err)
		}
	}
}

func TestInstrSetCoverage(t *testing.T) {
	res := ExploreInstructionSet()
	// Exploration must discover every handler reachable within three bytes
	// (all of them: our longest opcode+modrm form fits in three bytes).
	found := map[string]bool{}
	for _, u := range res.Unique {
		found[u.Spec.Name] = true
	}
	for _, s := range x86.AllSpecs() {
		if !found[s.Name] {
			t.Errorf("handler %q never discovered", s.Name)
		}
	}
}

func TestRepresentativesAreShortest(t *testing.T) {
	res := ExploreInstructionSet()
	for _, u := range res.Unique {
		// A representative must not start with a redundant prefix unless
		// the key demands one (the /16 operand-size variants).
		if u.OpSize == 32 && len(u.Repr) > 0 {
			switch u.Repr[0] {
			case 0x26, 0x2e, 0x36, 0x3e, 0x64, 0x65, 0xf0, 0xf2, 0xf3:
				// Segment/lock/rep prefixes are only acceptable for string
				// ops (rep forms share the handler) — reject for others.
				if u.Spec.Mn[0] != 'm' && u.Spec.Mn[0] != 'c' &&
					u.Spec.Mn[0] != 's' && u.Spec.Mn[0] != 'l' {
					t.Errorf("%s representative % x starts with a redundant prefix",
						u.Key(), u.Repr)
				}
			}
		}
	}
}

func TestExploreStateSimpleALU(t *testing.T) {
	ex, err := NewExplorer(symex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// add %ebx, %eax in its register form: no memory → very few paths,
	// all completing normally. (The partition representative of the
	// handler is a memory form, so build the register form explicitly.)
	inst, err := x86.Decode([]byte{0x01, 0xd8})
	if err != nil {
		t.Fatal(err)
	}
	u := &UniqueInstr{Spec: inst.Spec, OpSize: 32, Repr: []byte{0x01, 0xd8}}
	res, err := ex.ExploreState(u)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("register add must be exhaustively explorable")
	}
	if len(res.Tests) == 0 || len(res.Tests) > 8 {
		t.Errorf("register add paths = %d, want a handful", len(res.Tests))
	}
	for _, tc := range res.Tests {
		if tc.Outcome.Kind != ir.OutEnd {
			t.Errorf("register add path raised %v", tc.Outcome)
		}
	}
}

func TestExploreStateFaultCoverage(t *testing.T) {
	ex, err := NewExplorer(symex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// push explores the stack-segment checks and the page walk: the path
	// set must include #SS, #PF, and successful outcomes.
	u := findUnique(t, "push_r")
	res, err := ex.ExploreState(u)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, tc := range res.Tests {
		switch {
		case tc.Outcome.Kind == ir.OutEnd:
			kinds["ok"] = true
		case tc.Outcome.Vector == x86.ExcSS:
			kinds["ss"] = true
		case tc.Outcome.Vector == x86.ExcPF:
			kinds["pf"] = true
		}
	}
	for _, k := range []string{"ok", "ss", "pf"} {
		if !kinds[k] {
			t.Errorf("push exploration missing outcome class %q", k)
		}
	}
	if !res.Exhausted {
		t.Error("push should be exhaustively explorable at the default cap")
	}
}

func TestExploreStatePathCap(t *testing.T) {
	opts := symex.DefaultOptions()
	opts.MaxPaths = 10
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	u := findUnique(t, "push_r")
	res, err := ex.ExploreState(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 10 {
		t.Errorf("paths = %d, want the cap 10", len(res.Tests))
	}
	if res.Exhausted {
		t.Error("cannot be exhausted at cap 10")
	}
}

func TestModelsAreMinimized(t *testing.T) {
	ex, err := NewExplorer(symex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u := findUnique(t, "push_r")
	res, err := ex.ExploreState(u)
	if err != nil {
		t.Fatal(err)
	}
	// After minimization the per-test state differences are small: the
	// symbolic state has ~2100 variables, a raw solver model would disturb
	// hundreds of bits.
	for _, tc := range res.Tests {
		if n := len(tc.Diffs()); n > 40 {
			t.Errorf("%s: %d vars differ from baseline; minimization ineffective", tc.ID, n)
		}
	}
}

func TestSummaryAblation(t *testing.T) {
	opts := symex.DefaultOptions()
	opts.MaxPaths = 64
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ex.UseSummaries = false
	u := findUnique(t, "push_r")
	res, err := ex.ExploreState(u)
	if err != nil {
		t.Fatal(err)
	}
	// Without summaries, segment caches are free variables: exploration
	// still works, but the resulting test states reference cache fields
	// directly and are unliftable — the summary is what makes the states
	// realizable through GDT writes.
	foundCacheVar := false
	for _, tc := range res.Tests {
		for name := range tc.Diffs() {
			if loc, ok := tc.VarLoc[name]; ok &&
				(loc.Kind == x86.LocSegLimit || loc.Kind == x86.LocSegAttr ||
					loc.Kind == x86.LocSegBase) {
				foundCacheVar = true
			}
		}
	}
	if !foundCacheVar {
		t.Error("ablation should expose raw descriptor-cache variables")
	}
}

func TestBaselineSelectorMapping(t *testing.T) {
	if BaselineSelector(x86.SS) != 0x50 {
		t.Error("SS must use selector 0x50 (GDT index 10, the Figure 5 layout)")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for an invalid segment register")
		}
	}()
	BaselineSelector(x86.SegReg(9))
}

func TestExplorationCoverage(t *testing.T) {
	ex, err := NewExplorer(symex.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	u := findUnique(t, "push_r")
	res, err := ex.ExploreState(u)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive exploration must reach the vast majority of the IR (the
	// paper: "static coverage appeared very high"); only statements guarding
	// other modes stay dark (e.g. the paging-disabled arm).
	if cov := res.Stats.Coverage(); cov < 0.9 {
		t.Errorf("statement coverage %.2f, want ≥0.90", cov)
	}
}
