package core

import (
	"testing"

	"pokeemu/internal/ir"
	"pokeemu/internal/symex"
	"pokeemu/internal/x86"
)

func TestExploreSequenceFlagCoupling(t *testing.T) {
	opts := symex.DefaultOptions()
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	// stc ; adc %ebx, %eax — the adc consumes the carry the stc forces, so
	// the initial CF must not influence the outcome: the sequence has the
	// same path count as adc alone would with CF pinned.
	res, err := ex.ExploreSequence([][]byte{
		{0xf9},       // stc
		{0x11, 0xd8}, // adc %ebx, %eax
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("register-only sequence must be exhaustively explorable")
	}
	if len(res.Tests) == 0 {
		t.Fatal("no paths")
	}
	for _, tc := range res.Tests {
		if tc.Outcome.Kind != ir.OutEnd {
			t.Errorf("unexpected outcome %v", tc.Outcome)
		}
		// CF is forced by stc: no test state should need to pin it.
		if _, ok := tc.Diffs()["st_cf"]; ok {
			t.Error("initial CF should be irrelevant after stc")
		}
	}
}

func TestExploreSequenceFaultStopsSequence(t *testing.T) {
	opts := symex.DefaultOptions()
	opts.MaxPaths = 256
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	// push %eax ; mov $1, %ecx — a stack fault on the push must end the
	// path before the mov, so fault paths leave ECX symbolic-initial.
	res, err := ex.ExploreSequence([][]byte{
		{0x50},                         // push %eax
		{0xb9, 0x01, 0x00, 0x00, 0x00}, // mov $1, %ecx
	})
	if err != nil {
		t.Fatal(err)
	}
	var faulted, completed int
	for _, tc := range res.Tests {
		if tc.Outcome.Kind == ir.OutRaise {
			faulted++
		} else {
			completed++
		}
	}
	if faulted == 0 || completed == 0 {
		t.Errorf("faulted=%d completed=%d; want both", faulted, completed)
	}
}

func TestConcatProgramSemantics(t *testing.T) {
	// Concatenated programs must equal sequential execution.
	b1 := ir.NewBuilder("p1")
	b1.Set(x86.GPR(x86.EAX), b1.Add(b1.Get(x86.GPR(x86.EAX)), b1.Const(32, 5)))
	b1.End()
	b2 := ir.NewBuilder("p2")
	b2.Set(x86.GPR(x86.EAX), b2.Mul(b2.Get(x86.GPR(x86.EAX)), b2.Const(32, 3)))
	b2.End()
	cat := ir.Concat("seq", b1.Build(), b2.Build())

	st := newConcatState()
	st.vals[x86.GPR(x86.EAX)] = 7
	if _, err := ir.Run(cat, st, 0); err != nil {
		t.Fatal(err)
	}
	if got := st.vals[x86.GPR(x86.EAX)]; got != 36 { // (7+5)*3
		t.Errorf("eax = %d, want 36", got)
	}
}

type concatState struct{ vals map[x86.Loc]uint64 }

func newConcatState() *concatState { return &concatState{vals: map[x86.Loc]uint64{}} }

func (s *concatState) Get(l x86.Loc) uint64              { return s.vals[l] }
func (s *concatState) Set(l x86.Loc, v uint64)           { s.vals[l] = v }
func (s *concatState) Load(p uint32, n uint8) uint64     { return 0 }
func (s *concatState) Store(p uint32, v uint64, n uint8) {}
