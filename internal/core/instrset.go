// Package core implements path-exploration lifting, the paper's primary
// contribution: symbolic instruction-set exploration over the Hi-Fi
// emulator's decoder (Section 3.2), machine state-space exploration over
// each instruction's implementation with the Figure 3 symbolic state
// (Section 3.3), and the lifting of each explored path into a test case
// that the generator (internal/testgen) turns into a runnable test program.
package core

import (
	"sort"

	"pokeemu/internal/x86"
)

// Candidate is one byte sequence the decoder accepts, discovered on a
// distinct decoder path.
type Candidate struct {
	Bytes  [3]byte
	Spec   *x86.OpSpec
	OpSize int
}

// UniqueInstr is one per-instruction implementation (the unit of "unique
// instruction" in Section 6.1): a distinct handler at a distinct operand
// size, with one representative byte sequence selected from its partition
// cell.
type UniqueInstr struct {
	Spec   *x86.OpSpec
	OpSize int
	Repr   []byte // representative full encoding
}

// Key identifies the unique instruction.
func (u *UniqueInstr) Key() string {
	if u.OpSize == 16 {
		return u.Spec.Name + "/16"
	}
	return u.Spec.Name
}

// InstrSetResult is the outcome of instruction-set exploration.
type InstrSetResult struct {
	Candidates []Candidate
	Unique     []*UniqueInstr
	// ExploredPaths counts decoder paths followed, valid or not — the
	// measure of how far the 2²⁴ raw three-byte space was cut down.
	ExploredPaths int
}

// ExploreInstructionSet explores the decoder with the first three
// instruction-buffer bytes symbolic and the rest zero — the Section 3.2
// setup. The walk branches exactly where the decoder's control flow does
// (x86.NextByteRole): dispatch bytes are enumerated, the SIB byte
// contributes its single two-way displacement predicate, and
// immediate/displacement bytes are fixed at the concrete zero. Every
// completed walk is one decoder path; valid paths become candidates, and
// one representative is kept per per-instruction implementation.
func ExploreInstructionSet() *InstrSetResult {
	res := &InstrSetResult{}
	uniq := make(map[string]*UniqueInstr)

	try := func(chosen []byte) {
		res.ExploredPaths++
		full := make([]byte, x86.MaxInstLen)
		copy(full, chosen)
		inst, err := x86.Decode(full)
		if err != nil {
			return
		}
		var c Candidate
		copy(c.Bytes[:], full[:3])
		c.Spec = inst.Spec
		c.OpSize = inst.OpSize
		res.Candidates = append(res.Candidates, c)
		u := &UniqueInstr{Spec: inst.Spec, OpSize: inst.OpSize, Repr: full[:inst.Len]}
		if prev, ok := uniq[u.Key()]; !ok || len(u.Repr) < len(prev.Repr) {
			uniq[u.Key()] = u // keep the shortest representative of the cell
		}
	}

	var dfs func(chosen []byte)
	dfs = func(chosen []byte) {
		if len(chosen) >= 3 {
			try(chosen)
			return
		}
		switch x86.NextByteRole(chosen) {
		case x86.RoleDispatch:
			for b := 0; b < 256; b++ {
				dfs(append(append([]byte(nil), chosen...), byte(b)))
			}
		case x86.RoleSIB:
			// One two-way branch: base≠5-with-mod-0 vs the disp32 form.
			dfs2 := func(sib byte) {
				try(append(append([]byte(nil), chosen...), sib))
			}
			dfs2(0x00)
			dfs2(0x05)
		default:
			try(chosen)
		}
	}
	dfs(nil)

	for _, u := range uniq {
		res.Unique = append(res.Unique, u)
	}
	sort.Slice(res.Unique, func(i, j int) bool {
		return res.Unique[i].Key() < res.Unique[j].Key()
	})
	return res
}
