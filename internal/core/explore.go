package core

import (
	"fmt"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/symex"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// TestCase is one lifted test: a test instruction plus the minimized
// assignment describing the test state that drives one Hi-Fi execution
// path.
type TestCase struct {
	ID         string
	InstrBytes []byte
	Handler    string
	Mnemonic   string
	PathIndex  int
	Outcome    ir.Outcome
	Aborted    bool

	// Assignment maps symbolic variables to their (minimized) values;
	// Baseline/Widths/VarLoc/VarMem describe the variables.
	Assignment map[string]uint64
	Baseline   map[string]uint64
	Widths     map[string]uint8
	VarLoc     map[string]x86.Loc
	VarMem     map[string]uint32
}

// Diffs returns only the variables whose value differs from the baseline —
// the pieces of state the initializer must establish.
func (tc *TestCase) Diffs() map[string]uint64 {
	out := make(map[string]uint64)
	for name, v := range tc.Assignment {
		if v != tc.Baseline[name]&expr.Mask(tc.Widths[name]) {
			out[name] = v
		}
	}
	return out
}

// ExploreResult is the outcome of state-space exploration for one
// instruction.
type ExploreResult struct {
	Instr     *UniqueInstr
	Tests     []*TestCase
	Stats     symex.Stats
	Exhausted bool
}

// Explorer drives machine state-space exploration: it owns the shared
// baseline image and the descriptor-parse summaries, built once (the
// Section 3.3.2 summarization) and instantiated per segment.
type Explorer struct {
	image    *machine.Memory
	baseline *machine.Machine
	cfg      sem.Config
	opts     symex.Options

	sumData *symex.Summary
	sumSS   *symex.Summary
	// SummaryPaths records the path count of the descriptor parse (the
	// "23 paths" observation).
	SummaryPaths int

	// UseSummaries can be disabled for the E8 ablation: exploration then
	// leaves segment caches as plain symbolic variables, losing the tie to
	// GDT bytes.
	UseSummaries bool
}

// NewExplorer builds an explorer over a fresh baseline with the Hi-Fi
// (Bochs-like) semantics configuration.
func NewExplorer(opts symex.Options) (*Explorer, error) {
	return NewExplorerWithConfig(opts, sem.BochsConfig)
}

// NewExplorerWithConfig explores a different reference's semantics — e.g.
// the hardware configuration, which realizes the paper's Section 7
// suggestion of lifting in the opposite direction to probe the Hi-Fi
// emulator with another implementation's corner cases.
func NewExplorerWithConfig(opts symex.Options, cfg sem.Config) (*Explorer, error) {
	return NewExplorerWithSummaries(opts, cfg, ExplorerSummaries{})
}

// ExplorerSummaries bundles the precomputed descriptor-parse summaries so an
// explorer can be constructed without re-running the Section 3.3.2
// summarization — the corpus caches these across campaign runs.
type ExplorerSummaries struct {
	Data, SS *symex.Summary
}

// Summaries returns the explorer's descriptor-parse summaries for caching.
func (ex *Explorer) Summaries() ExplorerSummaries {
	return ExplorerSummaries{Data: ex.sumData, SS: ex.sumSS}
}

// NewExplorerWithSummaries builds an explorer, reusing precomputed
// descriptor-parse summaries when both are supplied and summarizing from
// scratch otherwise.
func NewExplorerWithSummaries(opts symex.Options, cfg sem.Config, sums ExplorerSummaries) (*Explorer, error) {
	ex := &Explorer{
		image:        machine.BaselineImage(),
		cfg:          cfg,
		opts:         opts,
		UseSummaries: true,
	}
	ex.baseline = machine.NewBaseline(ex.image)
	if sums.Data != nil && sums.SS != nil {
		ex.sumData, ex.sumSS = sums.Data, sums.SS
		ex.SummaryPaths = ex.sumData.Paths
		return ex, nil
	}
	base := symex.NewSymState(ex.baseline)
	ports := sem.DescriptorParsePorts
	inputs := map[x86.Loc]*expr.Expr{
		ports.Lo:  expr.Var(32, "d_lo"),
		ports.Hi:  expr.Var(32, "d_hi"),
		ports.Sel: expr.ZExt(expr.Var(16, "d_sel"), 32),
	}
	outs := []x86.Loc{ports.Base, ports.Limit, ports.Attr}
	var err error
	ex.sumData, err = symex.Summarize(base, sem.DescriptorParseProgram(false), inputs, outs)
	if err != nil {
		return nil, fmt.Errorf("core: data-segment parse summary: %w", err)
	}
	ex.sumSS, err = symex.Summarize(base, sem.DescriptorParseProgram(true), inputs, outs)
	if err != nil {
		return nil, fmt.Errorf("core: stack-segment parse summary: %w", err)
	}
	ex.SummaryPaths = ex.sumData.Paths
	return ex, nil
}

// Image returns the shared baseline image (for the harness).
func (ex *Explorer) Image() *machine.Memory { return ex.image }

// symbolicDataSegments lists the segment registers whose descriptors are
// explored symbolically (CS stays concrete so the test program itself can
// run, per Section 3.4's discussion).
var symbolicDataSegments = []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS}

// buildSymbolicState constructs the Figure 3 symbolic machine state over a
// fresh baseline clone: general registers, EFLAGS bits, segment selector
// RPLs, the GDT descriptor bytes of every data segment, CR0/CR3/CR4 flag
// bits, and the flag bytes of every page directory and page table entry.
// Segment descriptor caches are seeded from the parse summaries over the
// GDT bytes; the summaries' success conditions become side constraints (the
// cache reload in the initializer must not fault).
func (ex *Explorer) buildSymbolicState() (*symex.SymState, []*expr.Expr) {
	st := symex.NewSymState(machine.NewBaseline(ex.image))
	var side []*expr.Expr
	addSide := func(e *expr.Expr) {
		if e != nil {
			side = append(side, e)
		}
	}

	// General purpose registers: fully symbolic.
	for r := 0; r < 8; r++ {
		addSide(st.MarkLocSymbolic(x86.GPR(x86.Reg(r)), ^uint64(0)))
	}
	// EFLAGS bits per Figure 3 (VM and RF stay concrete).
	for _, bit := range []uint8{
		x86.FlagCF, x86.FlagPF, x86.FlagAF, x86.FlagZF, x86.FlagSF,
		x86.FlagTF, x86.FlagIF, x86.FlagDF, x86.FlagOF, 12, 13,
		x86.FlagNT, x86.FlagAC, x86.FlagVIF, x86.FlagVIP, x86.FlagID,
	} {
		addSide(st.MarkLocSymbolic(x86.Flag(bit), 1))
	}
	// Control registers: flag bits symbolic, mode bits (PE, PG) and the
	// page-table pointer concrete.
	cr0Mask := uint64(1<<x86.CR0MP | 1<<x86.CR0EM | 1<<x86.CR0TS |
		1<<x86.CR0NE | 1<<x86.CR0WP | 1<<x86.CR0AM)
	addSide(st.MarkLocSymbolic(x86.CR(0), cr0Mask))
	addSide(st.MarkLocSymbolic(x86.CR(3), 0x18)) // PWT, PCD only
	addSide(st.MarkLocSymbolic(x86.CR(4), 0x1ff))

	// Page directory and page table entry flag bytes (pointers concrete).
	for i := uint32(0); i < 1024; i++ {
		st.MarkMemSymbolic(machine.PDBase + i*4)
		st.MarkMemSymbolic(machine.PTBase + i*4)
	}

	// Segment selectors (RPL symbolic, index pinned so the GDT relationship
	// holds) and descriptors: all 8 GDT bytes of each data segment entry
	// symbolic; caches derived through the parse summaries.
	for _, sr := range symbolicDataSegments {
		addSide(st.MarkLocSymbolic(x86.SegSel(sr), 0x3))
		selVar := expr.Var(16, "st_"+sr.String()+".sel")
		base := machine.GDTBase + machine.GDTIndex(BaselineSelector(sr))*8
		for b := uint32(0); b < 8; b++ {
			st.MarkMemSymbolic(base + b)
		}
		loE := memWord(st, base)
		hiE := memWord(st, base+4)
		sum := ex.sumData
		if sr == x86.SS {
			sum = ex.sumSS
		}
		if ex.UseSummaries {
			sub := map[string]*expr.Expr{
				"d_lo": loE, "d_hi": hiE, "d_sel": selVar,
			}
			ports := sem.DescriptorParsePorts
			st.Set(x86.SegBase(sr), expr.Substitute(sum.Outputs[ports.Base], sub))
			st.Set(x86.SegLimit(sr), expr.Substitute(sum.Outputs[ports.Limit], sub))
			st.Set(x86.SegAttr(sr),
				expr.Extract(expr.Substitute(sum.Outputs[ports.Attr], sub), 0, 16))
			side = append(side, expr.Substitute(sum.Success, sub))
		} else {
			// Ablation: caches as free variables, untied to the GDT.
			addSide(st.MarkLocSymbolic(x86.SegBase(sr), ^uint64(0)))
			addSide(st.MarkLocSymbolic(x86.SegLimit(sr), ^uint64(0)))
			addSide(st.MarkLocSymbolic(x86.SegAttr(sr), ^uint64(0)))
		}
	}
	return st, side
}

// BaselineSelector returns the baseline GDT selector loaded into a segment
// register by the baseline initializer.
func BaselineSelector(sr x86.SegReg) uint16 {
	switch sr {
	case x86.CS:
		return machine.SelCode
	case x86.DS:
		return machine.SelData
	case x86.ES:
		return machine.SelES
	case x86.FS:
		return machine.SelFS
	case x86.GS:
		return machine.SelGS
	case x86.SS:
		return machine.SelSS
	}
	panic("core: unknown segment register")
}

// memWord assembles the little-endian 32-bit term at a physical address
// from the symbolic memory (used for the GDT descriptor words).
func memWord(st *symex.SymState, addr uint32) *expr.Expr {
	v := st.LoadByte(addr)
	for i := uint32(1); i < 4; i++ {
		v = expr.Concat(st.LoadByte(addr+i), v)
	}
	return v
}

// ExploreState runs machine state-space exploration for one instruction:
// compile its Hi-Fi semantics, mark the Figure 3 state symbolic, and
// enumerate paths up to the configured cap, lifting each into a TestCase.
func (ex *Explorer) ExploreState(u *UniqueInstr) (*ExploreResult, error) {
	inst, err := x86.Decode(u.Repr)
	if err != nil {
		return nil, fmt.Errorf("core: representative does not decode: %w", err)
	}
	return ex.exploreProgram(u, sem.Compile(inst, ex.cfg))
}

// exploreProgram is the shared exploration core behind ExploreState and
// ExploreSequence.
func (ex *Explorer) exploreProgram(u *UniqueInstr, prog *ir.Program) (*ExploreResult, error) {
	return ex.exploreProgramOpts(u, prog, ex.opts)
}

// exploreProgramOpts is exploreProgram under explicit engine options (the
// guided variant narrows the path cap and sets a guiding assignment).
func (ex *Explorer) exploreProgramOpts(u *UniqueInstr, prog *ir.Program, opts symex.Options) (*ExploreResult, error) {
	st, side := ex.buildSymbolicState()
	en := symex.NewEngine(st, side, opts)

	res := &ExploreResult{Instr: u}
	i := 0
	en.Explore(prog, func(r *symex.PathResult) {
		tc := &TestCase{
			ID:         fmt.Sprintf("%s#%d", u.Key(), i),
			InstrBytes: append([]byte(nil), u.Repr...),
			Handler:    u.Spec.Name,
			Mnemonic:   u.Spec.Mn,
			PathIndex:  i,
			Outcome:    r.Outcome,
			Aborted:    r.Aborted,
			Assignment: r.Model,
			Baseline:   st.Baseline,
			Widths:     st.Vars,
			VarLoc:     st.VarLoc,
			VarMem:     st.VarMem,
		}
		res.Tests = append(res.Tests, tc)
		i++
	})
	res.Stats = en.Stats()
	res.Exhausted = res.Stats.Exhausted
	return res, nil
}
