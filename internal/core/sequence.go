package core

import (
	"fmt"
	"strings"

	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// ExploreSequence explores a multi-instruction sequence as one unit — the
// Section 7 extension ("we plan on studying how multi-instruction sequences
// are treated by emulators"). Each instruction's semantics are compiled
// separately and chained; a fault inside any of them ends the path, so the
// explored state space covers inter-instruction couplings (flag producers
// feeding consumers, partial updates before a later fault) that
// single-instruction testing composes only under the independence
// assumption the paper spells out.
func (ex *Explorer) ExploreSequence(encodings [][]byte) (*ExploreResult, error) {
	var progs []*ir.Program
	var allBytes []byte
	var names []string
	eip := uint32(0)
	for _, enc := range encodings {
		full := make([]byte, x86.MaxInstLen)
		copy(full, enc)
		inst, err := x86.Decode(full)
		if err != nil {
			return nil, fmt.Errorf("core: sequence element % x: %w", enc, err)
		}
		progs = append(progs, sem.Compile(inst, ex.cfg))
		allBytes = append(allBytes, inst.Raw...)
		names = append(names, inst.Spec.Mn)
		eip += uint32(inst.Len)
	}
	seqName := strings.Join(names, ";")
	prog := ir.Concat(seqName, progs...)

	spec := &x86.OpSpec{Name: seqName, Mn: seqName}
	u := &UniqueInstr{Spec: spec, OpSize: 32, Repr: allBytes}
	return ex.exploreProgram(u, prog)
}
