package core

import (
	"testing"

	"pokeemu/internal/ir"
	"pokeemu/internal/symex"
)

// TestExploreEveryInstruction is the robustness sweep: symbolic exploration
// must handle every unique instruction in the decode tables without
// panicking or wedging, at a small path cap. This is the smoke equivalent
// of the paper's full 880-instruction run (the full-cap campaign lives in
// cmd/pokeemu and the benchmarks).
func TestExploreEveryInstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-table sweep skipped in -short mode")
	}
	opts := symex.DefaultOptions()
	opts.MaxPaths = 3
	opts.MaxSteps = 1 << 14
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	unique := ExploreInstructionSet().Unique
	explored, paths := 0, 0
	for _, u := range unique {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: exploration panicked: %v", u.Key(), r)
				}
			}()
			res, err := ex.ExploreState(u)
			if err != nil {
				t.Errorf("%s: %v", u.Key(), err)
				return
			}
			explored++
			paths += len(res.Tests)
			for _, tc := range res.Tests {
				// Every non-aborted path must have a concrete outcome and a
				// model covering all symbolic variables.
				if !tc.Aborted && tc.Outcome.Kind == ir.OutRaise && tc.Outcome.Vector > 32 &&
					!tc.Outcome.Soft {
					t.Errorf("%s: suspicious vector %d", tc.ID, tc.Outcome.Vector)
				}
				// Every assigned variable must be a known symbolic var.
				// (Widths is shared and may grow on later paths, so the
				// subset relation is the invariant, not equality.)
				for name := range tc.Assignment {
					if _, ok := tc.Widths[name]; !ok {
						t.Errorf("%s: model names unknown variable %s", tc.ID, name)
					}
				}
			}
		}()
	}
	if explored != len(unique) {
		t.Errorf("explored %d of %d unique instructions", explored, len(unique))
	}
	t.Logf("swept %d instructions, %d paths", explored, paths)
}
