package core

import (
	"fmt"

	"pokeemu/internal/expr"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// StateProbe describes the Figure 3 symbolic-variable layout — names, widths,
// and the machine locations they model — so a concrete machine state can be
// read back into a variable assignment. Hybrid campaigns use this to turn a
// fuzzer-found input (replayed concretely to the test instruction) into the
// guiding assignment for targeted exploration.
type StateProbe struct {
	Vars   map[string]uint8
	VarLoc map[string]x86.Loc
	VarMem map[string]uint32
}

// Probe builds the probe once; the layout is identical for every
// instruction, so one probe serves a whole campaign.
func (ex *Explorer) Probe() *StateProbe {
	st, _ := ex.buildSymbolicState()
	return &StateProbe{Vars: st.Vars, VarLoc: st.VarLoc, VarMem: st.VarMem}
}

// AssignmentFromMachine reads the concrete value of every symbolic state
// variable out of m (a guest paused at the test instruction).
func (p *StateProbe) AssignmentFromMachine(m *machine.Machine) map[string]uint64 {
	out := make(map[string]uint64, len(p.Vars))
	for name, w := range p.Vars {
		if loc, ok := p.VarLoc[name]; ok {
			out[name] = m.Get(loc) & expr.Mask(w)
		} else if addr, ok := p.VarMem[name]; ok {
			out[name] = m.Load(addr, 1) & expr.Mask(w)
		}
	}
	return out
}

// ExploreStateGuided explores one instruction starting from a concrete
// assignment: every symbolic branch tries the direction the assignment
// satisfies first, so the first completed path is (up to infeasibility) the
// assignment's own path and a small maxPaths cap enumerates its nearest
// neighbors. This is the symex half of the hybrid loop — the fuzzer finds
// an input with new coverage, and exploration radiates from its path.
func (ex *Explorer) ExploreStateGuided(u *UniqueInstr, guide map[string]uint64, maxPaths int) (*ExploreResult, error) {
	inst, err := x86.Decode(u.Repr)
	if err != nil {
		return nil, fmt.Errorf("core: representative does not decode: %w", err)
	}
	opts := ex.opts
	opts.Guide = guide
	opts.Workers = 1
	if maxPaths > 0 {
		opts.MaxPaths = maxPaths
	}
	return ex.exploreProgramOpts(u, sem.Compile(inst, ex.cfg), opts)
}
