package hybrid

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"pokeemu/internal/core"
	"pokeemu/internal/coverage"
	"pokeemu/internal/faults"
	"pokeemu/internal/machine"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
)

// fixtureHandlers is the small gate-handler subset every test fuzzes over;
// the same set the campaign goldens use.
var fixtureHandlers = map[string]bool{"push_r": true, "leave": true, "add_rmv_rv": true}

var fixOnce sync.Once
var fix struct {
	ex     *core.Explorer
	instrs []*core.UniqueInstr
	image  *machine.Memory
	boot   []byte
	seeds  []Seed
	err    error
}

// fixture builds one shared explorer and seed corpus (symbolic exploration
// is the expensive part; every test reuses it).
func fixture(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		is := core.ExploreInstructionSet()
		opts := symex.DefaultOptions()
		opts.MaxPaths = 6
		opts.Seed = 1
		ex, err := core.NewExplorer(opts)
		if err != nil {
			fix.err = err
			return
		}
		fix.ex = ex
		fix.image = ex.Image()
		fix.boot = testgen.BaselineInit()
		for _, u := range is.Unique {
			if !fixtureHandlers[u.Key()] {
				continue
			}
			fix.instrs = append(fix.instrs, u)
			er, err := ex.ExploreState(u)
			if err != nil {
				fix.err = err
				return
			}
			for _, tc := range er.Tests {
				p, err := testgen.Build(tc)
				if err != nil || !testgen.Verify(p, fix.image) {
					continue
				}
				fix.seeds = append(fix.seeds, Seed{
					ID: tc.ID, Handler: tc.Handler, Mnemonic: tc.Mnemonic,
					Prog: p.Code, TestOff: p.TestOffset,
				})
			}
		}
	})
	if fix.err != nil {
		t.Fatalf("fixture: %v", fix.err)
	}
	if len(fix.seeds) == 0 {
		t.Fatal("fixture produced no seeds")
	}
}

func baseConfig(workers int) Config {
	return Config{
		Budget:  48,
		Seed:    7,
		Workers: workers,
		Image:   fix.image,
		Boot:    fix.boot,
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil); err == nil {
		t.Error("zero budget: want error")
	}
	if _, err := Run(context.Background(), Config{Budget: 4}, nil); err == nil {
		t.Error("missing image: want error")
	}
}

func TestRunEmptySeeds(t *testing.T) {
	fixture(t)
	res, err := Run(context.Background(), baseConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Execs != 0 || len(res.Inputs) != 0 {
		t.Errorf("empty seed corpus must not fuzz: %+v", res.Stats)
	}
}

// TestCoverageBeyondSeeds is the headline acceptance property: a seeded
// hybrid run over the gate handlers reaches strictly more distinct coverage
// signatures than the pure-symex seed corpus, and keeps every seed
// divergence (nothing known is lost).
func TestCoverageBeyondSeeds(t *testing.T) {
	fixture(t)
	seeds := append([]Seed(nil), fix.seeds...)
	seeds[0].Divs = []Divergence{{InputID: seeds[0].ID, Handler: seeds[0].Handler,
		Mnemonic: seeds[0].Mnemonic, Impl: "celer", Signature: "sig-known"}}
	res, err := Run(context.Background(), baseConfig(4), seeds)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Execs != 48 {
		t.Errorf("Execs = %d, want the full budget 48", st.Execs)
	}
	if st.Signatures <= st.SeedSignatures {
		t.Errorf("hybrid corpus has %d signatures, seeds alone %d: fuzzing found no new coverage",
			st.Signatures, st.SeedSignatures)
	}
	if st.Edges <= 0 || st.NewCoverage <= 0 {
		t.Errorf("coverage accumulators empty: %+v", st)
	}
	found := false
	for _, d := range res.Divergences {
		if d.Signature == "sig-known" {
			found = true
		}
	}
	if !found {
		t.Error("seed divergence verdict was dropped")
	}
	if len(st.PerHandler) == 0 {
		t.Error("per-handler coverage rollup missing")
	}
	for i := 1; i < len(st.PerHandler); i++ {
		if st.PerHandler[i-1].Handler >= st.PerHandler[i].Handler {
			t.Error("per-handler rollup not sorted")
		}
	}
	for _, in := range res.Inputs {
		if in.Op != "" && len(in.Prog) > in.TestOff {
			continue
		}
		if in.TestOff > len(in.Prog) {
			t.Errorf("input %s: test offset %d beyond program (%d bytes)", in.ID, in.TestOff, len(in.Prog))
		}
	}
}

// TestRunDeterministic pins the worker-count independence contract: the
// whole Result — corpus, stats, divergences — is byte-identical for
// Workers=1 and Workers=8.
func TestRunDeterministic(t *testing.T) {
	fixture(t)
	run := func(workers int) []byte {
		res, err := Run(context.Background(), baseConfig(workers), fix.seeds)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	eight := run(8)
	if string(one) != string(eight) {
		t.Errorf("Workers=1 vs Workers=8 results differ:\n--- 1:\n%s\n--- 8:\n%s", one, eight)
	}
}

// TestFaultSkip pins the chaos contract at the hybrid.mutate point: every
// job skips, the corpus stays seeds-only, and the skip counts are
// deterministic for any worker count.
func TestFaultSkip(t *testing.T) {
	fixture(t)
	if _, err := faults.ArmSpec("hybrid.mutate:err"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	var stats [2]Stats
	for i, workers := range []int{1, 4} {
		res, err := Run(context.Background(), baseConfig(workers), fix.seeds)
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = res.Stats
		if res.Stats.Skipped != res.Stats.Execs || res.Stats.Execs != 48 {
			t.Errorf("workers=%d: skipped %d of %d execs, want all 48",
				workers, res.Stats.Skipped, res.Stats.Execs)
		}
		if got, want := len(res.Inputs), res.Stats.SeedSignatures; got != want {
			t.Errorf("workers=%d: corpus grew to %d under total mutation failure, want %d seeds",
				workers, got, want)
		}
	}
	stats[0].PerHandler, stats[1].PerHandler = nil, nil
	if !reflect.DeepEqual(stats[0], stats[1]) {
		t.Errorf("degraded stats differ across worker counts:\n%+v\n%+v", stats[0], stats[1])
	}
}

// TestReseedDirect drives the symex hand-back in isolation: a promising
// corpus input is replayed to its test instruction, probed, and guided
// exploration contributes new corpus inputs tagged Op="reseed".
func TestReseedDirect(t *testing.T) {
	fixture(t)
	f := &fuzzer{
		cfg: Config{
			Budget: 1, Image: fix.image, Boot: fix.boot,
			ReseedPaths: 2, MaxReseeds: 1,
			Explorer: func() (*core.Explorer, error) { return fix.ex, nil },
			Instrs:   fix.instrs,
		},
		global: coverage.NewGlobal(),
		sigs:   make(map[uint64]bool),
		byHand: make(map[string]*handlerCov),
		res:    &Result{},
	}
	s := fix.seeds[0]
	cov, fi := f.coverRun(s.Prog)
	if fi.Snapshot == nil {
		t.Fatal("seed run produced no snapshot")
	}
	in := &Input{
		ID: s.ID, Handler: s.Handler, Mnemonic: s.Mnemonic,
		Prog: s.Prog, TestOff: s.TestOff,
		Sig: cov.Signature(), EdgeCount: cov.Count(),
		Promising: true, edges: cov.Edges(),
	}
	f.admit(in, cov)
	f.reseed(context.Background())
	if f.res.Stats.Reseeds != 1 {
		t.Fatalf("Reseeds = %d, want 1 (replay or instruction resolution failed)", f.res.Stats.Reseeds)
	}
	if f.res.Stats.ReseedTests == 0 {
		t.Fatal("guided exploration produced no tests")
	}
	reseeded := 0
	for _, ri := range f.res.Inputs {
		if ri.Op == "reseed" {
			reseeded++
			if ri.Parent != in.ID {
				t.Errorf("reseed input %s has parent %q, want %q", ri.ID, ri.Parent, in.ID)
			}
		}
	}
	if reseeded == 0 && f.res.Stats.Deduped == 0 {
		t.Error("reseed tests neither admitted nor deduped")
	}
}

// TestRunWithReseed runs the full loop with the symex hand-back enabled;
// the result must stay deterministic across worker counts.
func TestRunWithReseed(t *testing.T) {
	fixture(t)
	run := func(workers int) *Result {
		cfg := baseConfig(workers)
		cfg.Budget = 32
		cfg.ReseedPaths = 2
		cfg.MaxReseeds = 1
		cfg.Explorer = func() (*core.Explorer, error) { return fix.ex, nil }
		cfg.Instrs = fix.instrs
		res, err := Run(context.Background(), cfg, fix.seeds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Error("reseed-enabled results differ across worker counts")
	}
}

func TestRunCanceled(t *testing.T) {
	fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, baseConfig(2), fix.seeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Execs != 0 {
		t.Errorf("canceled run spent %d execs", res.Stats.Execs)
	}
}

func TestSeedsSHA(t *testing.T) {
	boot := []byte{1, 2, 3}
	a := []Seed{{ID: "a", Prog: []byte{4, 5}}}
	b := []Seed{{ID: "a", Prog: []byte{4, 6}}}
	if SeedsSHA(boot, a) == SeedsSHA(boot, b) {
		t.Error("program change did not change the hash")
	}
	if SeedsSHA(boot, a) == SeedsSHA([]byte{9}, a) {
		t.Error("boot change did not change the hash")
	}
	if SeedsSHA(boot, a) != SeedsSHA(boot, []Seed{{ID: "a", Prog: []byte{4, 5}}}) {
		t.Error("hash not stable")
	}
}

func TestJobSeed(t *testing.T) {
	seen := make(map[int64]bool)
	for r := 0; r < 8; r++ {
		for j := 0; j < 8; j++ {
			s := jobSeed(7, r, j)
			if seen[s] {
				t.Fatalf("jobSeed collision at r=%d j=%d", r, j)
			}
			seen[s] = true
		}
	}
	if jobSeed(1, 0, 0) == jobSeed(2, 0, 0) {
		t.Error("stage seed does not perturb job seeds")
	}
}

func TestRunPool(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [10]atomic.Int32
		runPool(context.Background(), workers, len(hits), func(i int) {
			hits[i].Add(1)
			if i == 4 {
				panic("boom") // must stay contained to this slot
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
	runPool(context.Background(), 2, 0, func(int) { t.Error("n=0 must not run tasks") })
}
