package hybrid

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func TestSplitAtomsRoundtrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x90},                         // nop
		{0x90, 0x40, 0xc9},             // nop; inc eax; leave
		{0xb8, 0x01, 0x02, 0x03, 0x04}, // mov eax, imm32
		{0x0f},                         // truncated: opaque residue atom
		{0x90, 0x0f},                   // decodable prefix + residue
	}
	for _, in := range cases {
		atoms := SplitAtoms(in)
		if got := joinAtoms(atoms); !bytes.Equal(got, in) {
			t.Errorf("SplitAtoms(% x) does not roundtrip: % x", in, got)
		}
	}
}

func TestMutateOperators(t *testing.T) {
	init := []byte{0xb8, 0x01, 0x02, 0x03, 0x04, 0x90, 0x40}
	donor := []byte{0xc9, 0x91, 0x92}
	for _, op := range Ops {
		rng := rand.New(rand.NewSource(11))
		out := Mutate(rng, init, donor, op)
		if len(out) > 0 && &out[0] == &init[0] {
			t.Errorf("%s: returned slice aliases the input", op)
		}
		if len(out) > maxInitLen {
			t.Errorf("%s: output %d bytes exceeds cap", op, len(out))
		}
		// Deterministic: same rng state, same output.
		again := Mutate(rand.New(rand.NewSource(11)), init, donor, op)
		if !bytes.Equal(out, again) {
			t.Errorf("%s: not deterministic under a fixed seed", op)
		}
	}
}

func TestMutateEmptyInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, op := range Ops {
		out := Mutate(rng, nil, []byte{0x90, 0x40}, op)
		if op == "splice" {
			continue // splice may pull donor atoms into an empty initializer
		}
		if len(out) != 0 {
			t.Errorf("%s on empty init produced % x", op, out)
		}
	}
	if out := Mutate(rng, nil, nil, "splice"); len(out) != 0 {
		t.Errorf("splice with empty init and donor produced % x", out)
	}
}

// TestChunkSwapPreservesBytes pins the atom discipline: chunk-swap permutes
// whole initializer instructions, so the byte multiset is unchanged.
func TestChunkSwapPreservesBytes(t *testing.T) {
	init := []byte{0x90, 0x40, 0xb8, 0x01, 0x02, 0x03, 0x04, 0xc9}
	for seed := int64(0); seed < 32; seed++ {
		out := Mutate(rand.New(rand.NewSource(seed)), init, nil, "chunkswap")
		a, b := append([]byte(nil), init...), append([]byte(nil), out...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: chunkswap changed the byte multiset: % x -> % x", seed, init, out)
		}
	}
}

// TestSpliceRespectsAtoms pins the boundary discipline: a splice is a
// prefix of the initializer's atoms plus a suffix of the donor's atoms —
// never a cut through the middle of an instruction.
func TestSpliceRespectsAtoms(t *testing.T) {
	init := []byte{0xb8, 0x01, 0x02, 0x03, 0x04, 0x90} // mov imm32; nop
	donor := []byte{0x40, 0x41, 0xc9}                  // inc; inc; leave
	ia, da := SplitAtoms(init), SplitAtoms(donor)
	for seed := int64(0); seed < 64; seed++ {
		out := Mutate(rand.New(rand.NewSource(seed)), init, donor, "splice")
		ok := false
		for p := 0; p <= len(ia) && !ok; p++ {
			for s := 0; s <= len(da) && !ok; s++ {
				want := joinAtoms(append(append([][]byte(nil), ia[:p]...), da[s:]...))
				ok = bytes.Equal(out, want)
			}
		}
		if !ok {
			t.Fatalf("seed %d: splice output % x is not atoms(init)-prefix + atoms(donor)-suffix", seed, out)
		}
	}
}

// FuzzMutator is the make-fuzz property harness: for arbitrary initializer
// bytes and any operator, mutation must terminate, respect the length cap,
// keep atom splits consistent (roundtrip), and never touch the input slice.
func FuzzMutator(f *testing.F) {
	f.Add([]byte{0x90, 0x40, 0xc9}, []byte{0xb8, 1, 2, 3, 4}, int64(1), uint8(0))
	f.Add([]byte{}, []byte{0x90}, int64(2), uint8(4))
	f.Add([]byte{0x0f, 0xff}, []byte{}, int64(3), uint8(5))
	f.Fuzz(func(t *testing.T, init, donor []byte, seed int64, opSel uint8) {
		if len(init) > maxInitLen || len(donor) > maxInitLen {
			t.Skip()
		}
		op := Ops[int(opSel)%len(Ops)]
		before := append([]byte(nil), init...)
		out := Mutate(rand.New(rand.NewSource(seed)), init, donor, op)
		if !bytes.Equal(init, before) {
			t.Fatalf("%s: mutated the input slice in place", op)
		}
		if len(out) > maxInitLen {
			t.Fatalf("%s: output %d bytes exceeds cap %d", op, len(out), maxInitLen)
		}
		if got := joinAtoms(SplitAtoms(out)); !bytes.Equal(got, out) {
			t.Fatalf("%s: output does not atom-roundtrip", op)
		}
		// Dedup-by-signature idempotence precondition: mutation is a pure
		// function of (rng, inputs, op).
		again := Mutate(rand.New(rand.NewSource(seed)), before, donor, op)
		if !bytes.Equal(out, again) {
			t.Fatalf("%s: not deterministic", op)
		}
	})
}
