package hybrid

import (
	"math/rand"

	"pokeemu/internal/x86"
)

// maxInitLen caps a mutated initializer so splice chains cannot grow a
// program past the code region the harness loads it into.
const maxInitLen = 2048

// Ops are the mutation operators, drawn uniformly by the scheduler. The
// byte-level operators perturb initializer state values (testgen immediates
// mostly); the atom-level operators recombine whole initializer
// instructions across the corpus, respecting instruction boundaries.
var Ops = []string{"bitflip", "byteset", "wordflip", "arith", "splice", "chunkswap"}

// SplitAtoms decodes an initializer into single-instruction atoms, the
// boundary-respecting unit for splice and chunk-swap. Undecodable residue
// (possible after byte-level mutations) is kept as one opaque atom, so
// concatenating the atoms always reproduces the input bytes.
func SplitAtoms(init []byte) [][]byte {
	var atoms [][]byte
	for len(init) > 0 {
		inst, err := x86.Decode(init)
		if err != nil || inst.Len <= 0 || inst.Len > len(init) {
			atoms = append(atoms, init)
			break
		}
		atoms = append(atoms, init[:inst.Len])
		init = init[inst.Len:]
	}
	return atoms
}

func joinAtoms(atoms [][]byte) []byte {
	var out []byte
	for _, a := range atoms {
		out = append(out, a...)
	}
	return out
}

// Mutate applies one named operator to an initializer, drawing randomness
// from rng and splice material from donor (another corpus input's
// initializer). It always returns a fresh slice, never longer than
// maxInitLen; inputs it cannot meaningfully mutate (empty initializers,
// oversized splices) fall back to weaker operators or a plain copy, so the
// caller can count on a candidate — duplicates are cheap, they dedupe by
// signature.
func Mutate(rng *rand.Rand, init, donor []byte, op string) []byte {
	out := append([]byte(nil), init...)
	if len(out) == 0 && (op != "splice" || len(donor) == 0) {
		return out
	}
	switch op {
	case "bitflip":
		i := rng.Intn(len(out))
		out[i] ^= 1 << rng.Intn(8)
	case "byteset":
		out[rng.Intn(len(out))] = byte(rng.Intn(256))
	case "wordflip":
		i := rng.Intn(len(out))
		out[i] ^= 0xff
		if i+1 < len(out) {
			out[i+1] ^= 0xff
		}
	case "arith":
		delta := byte(rng.Intn(16) + 1)
		if rng.Intn(2) == 1 {
			delta = -delta
		}
		out[rng.Intn(len(out))] += delta
	case "splice":
		a := SplitAtoms(out)
		b := SplitAtoms(donor)
		cand := joinAtoms(append(append([][]byte(nil), a[:rng.Intn(len(a)+1)]...),
			b[rng.Intn(len(b)+1):]...))
		if len(cand) > maxInitLen {
			return Mutate(rng, init, nil, "bitflip")
		}
		out = cand
		if out == nil {
			out = []byte{}
		}
	case "chunkswap":
		a := SplitAtoms(out)
		if len(a) >= 2 {
			i, j := rng.Intn(len(a)), rng.Intn(len(a))
			a[i], a[j] = a[j], a[i]
			out = joinAtoms(a)
		}
	}
	return out
}
