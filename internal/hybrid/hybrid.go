// Package hybrid implements the coverage-guided mutational fuzzer that
// hybrid campaigns marry to symbolic exploration. Symex-generated tests
// seed a corpus; deterministic seeded mutation over their initializer bytes
// generates candidate inputs; each candidate runs on the instrumented Hi-Fi
// interpreter and is deduplicated by coverage signature; novel inputs run
// the full differential trio. Inputs that reach new coverage without
// diverging ("promising") are handed back to symex as concrete path seeds
// for targeted exploration — the loop that opens the frontier past the
// solver budget the paper's pure pipeline stops at.
//
// Determinism contract (the campaign's canonical-merge discipline): each
// round's job list is a pure function of the RNG seed, the round number,
// and the corpus state at round start; jobs execute on an index-sliced pool
// and merge in index order. The result — corpus, statistics, divergences —
// is byte-identical for every worker count.
package hybrid

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"pokeemu/internal/core"
	"pokeemu/internal/coverage"
	"pokeemu/internal/diff"
	"pokeemu/internal/emu"
	"pokeemu/internal/faults"
	"pokeemu/internal/fidelis"
	"pokeemu/internal/harness"
	"pokeemu/internal/machine"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// Version identifies the fuzzer algorithm (operators, scheduling, reseed);
// it participates in corpus cache keys so stale cached stages re-run.
const Version = 1

// Defaults for the knobs a zero Config leaves unset.
const (
	DefaultRoundSize   = 16
	DefaultReseedPaths = 4
	DefaultMaxReseeds  = 2
	rareEdgeMax        = 2 // an edge ≤ this many inputs have hit is "rare"
	rareWeight         = 4 // scheduling weight per rare edge an input holds
)

// Config tunes one fuzzing stage.
type Config struct {
	Budget   int   // mutated-input executions to spend (required > 0)
	Seed     int64 // RNG seed; the stage is a pure function of it
	Workers  int   // mutator pool size; never affects the result
	MaxSteps int   // per-execution step budget (0 = harness default)

	RoundSize   int // jobs planned per scheduling round (0 = DefaultRoundSize)
	ReseedPaths int // guided-exploration path cap per promising input (0 = DefaultReseedPaths)
	MaxReseeds  int // promising inputs handed back to symex (0 = DefaultMaxReseeds)

	Image *machine.Memory // shared baseline image
	Boot  []byte          // baseline initializer (testgen.BaselineInit)

	// Explorer lazily supplies the guided-exploration engine for the reseed
	// phase; nil disables reseeding. Instrs are the campaign's unique
	// instructions, used to resolve a promising input's test instruction
	// back to its exploration identity.
	Explorer func() (*core.Explorer, error)
	Instrs   []*core.UniqueInstr
}

// Seed is one symex-generated test seeding the fuzzer, with the campaign's
// compare verdict attached (so the seed evaluation pass costs one
// instrumented run, not a trio re-run).
type Seed struct {
	ID       string
	Handler  string
	Mnemonic string
	Prog     []byte
	TestOff  int
	Divs     []Divergence // campaign-observed divergences of this test
}

// Input is one corpus entry: a seed or an admitted (novel-signature)
// mutation, with its coverage identity.
type Input struct {
	ID       string `json:"id"`
	Parent   string `json:"parent,omitempty"` // corpus input this was mutated from
	Op       string `json:"op,omitempty"`     // mutation operator ("" for seeds)
	Handler  string `json:"handler"`
	Mnemonic string `json:"mnemonic"`
	Prog     []byte `json:"prog"`
	TestOff  int    `json:"test_off"`

	Sig       uint64 `json:"sig"`      // coverage signature (dedup key)
	EdgeCount int    `json:"edges"`    // distinct edges this input hit
	NewBits   int    `json:"new_bits"` // new (edge,bucket) classes at admission
	Divergent bool   `json:"divergent,omitempty"`
	Promising bool   `json:"promising,omitempty"` // new coverage, no divergence

	edges []uint32 // runtime-only: edge list for rarity scheduling
}

// Divergence is one implementation disagreement found on a corpus input.
type Divergence struct {
	InputID   string `json:"input_id"`
	Handler   string `json:"handler"`
	Mnemonic  string `json:"mnemonic"`
	Impl      string `json:"impl"` // emulator that disagreed with hardware
	Signature string `json:"signature"`
}

// HandlerCoverage is the per-handler coverage rollup for -timing.
type HandlerCoverage struct {
	Handler string `json:"handler"`
	Edges   int    `json:"edges"` // distinct edges across the handler's inputs
	Sigs    int    `json:"sigs"`  // distinct coverage signatures
}

// Stats aggregates one stage deterministically.
type Stats struct {
	Seeds          int `json:"seeds"`
	SeedSignatures int `json:"seed_signatures"` // distinct sigs among seeds (the pure-symex yield)
	Execs          int `json:"execs"`           // mutated executions spent
	Skipped        int `json:"skipped"`         // mutation jobs skipped (injected faults)
	Deduped        int `json:"deduped"`         // candidates dropped by signature
	NewCoverage    int `json:"new_coverage"`    // admitted inputs with new (edge,bucket) bits
	Divergent      int `json:"divergent"`       // admitted mutated inputs that diverged
	Promising      int `json:"promising"`
	Reseeds        int `json:"reseeds"`      // promising inputs handed back to symex
	ReseedTests    int `json:"reseed_tests"` // guided-exploration tests executed
	Signatures     int `json:"signatures"`   // distinct signatures in the final corpus
	Edges          int `json:"edges"`        // distinct edges in the global map

	PerHandler []HandlerCoverage `json:"per_handler,omitempty"`
}

// Result is one stage's complete, deterministic outcome.
type Result struct {
	Inputs      []*Input     `json:"inputs"`
	Divergences []Divergence `json:"divergences,omitempty"`
	Stats       Stats        `json:"stats"`
}

// SeedsSHA content-hashes the executable seed set for the corpus cache key.
func SeedsSHA(boot []byte, seeds []Seed) string {
	h := sha256.New()
	h.Write(boot)
	for _, s := range seeds {
		h.Write([]byte{0xff})
		h.Write([]byte(s.ID))
		h.Write([]byte{0xff})
		h.Write(s.Prog)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// jobSeed derives one mutation job's RNG seed (splitmix-style) from the
// stage seed and the job's (round, index) identity.
func jobSeed(seed int64, round, idx int) int64 {
	h := uint64(seed)
	for _, v := range [...]uint64{uint64(round) + 1, uint64(idx) + 1} {
		h ^= v * 0x9e3779b97f4a7c15
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return int64(h)
}

// fuzzer is one stage's mutable state.
type fuzzer struct {
	cfg    Config
	budget harness.Budget
	global *coverage.Global
	sigs   map[uint64]bool
	byHand map[string]*handlerCov
	res    *Result
}

type handlerCov struct {
	g    *coverage.Global
	sigs map[uint64]bool
}

// candidate is one job's output before the canonical merge.
type candidate struct {
	skipped  bool
	parent   *Input
	op       string
	prog     []byte
	testOff  int
	sig      uint64
	edges    []uint32
	cov      *coverage.Map
	fidelis  *harness.Result
	handler  string
	mnemonic string
}

// Run executes one fuzzing stage over the seed corpus. The result is a
// pure function of (cfg minus Workers, seeds); ctx cancellation stops
// scheduling new rounds (the partial result is still canonically merged).
func Run(ctx context.Context, cfg Config, seeds []Seed) (*Result, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("hybrid: budget must be positive")
	}
	if cfg.Image == nil || cfg.Boot == nil {
		return nil, fmt.Errorf("hybrid: image and boot code required")
	}
	if cfg.RoundSize <= 0 {
		cfg.RoundSize = DefaultRoundSize
	}
	if cfg.ReseedPaths <= 0 {
		cfg.ReseedPaths = DefaultReseedPaths
	}
	if cfg.MaxReseeds < 0 {
		cfg.MaxReseeds = 0
	} else if cfg.MaxReseeds == 0 {
		cfg.MaxReseeds = DefaultMaxReseeds
	}
	f := &fuzzer{
		cfg:    cfg,
		budget: harness.Budget{MaxSteps: cfg.MaxSteps},
		global: coverage.NewGlobal(),
		sigs:   make(map[uint64]bool),
		byHand: make(map[string]*handlerCov),
		res:    &Result{},
	}
	f.evalSeeds(ctx, seeds)
	if len(f.res.Inputs) > 0 {
		round := 0
		for f.res.Stats.Execs < cfg.Budget && ctx.Err() == nil {
			n := cfg.Budget - f.res.Stats.Execs
			if n > cfg.RoundSize {
				n = cfg.RoundSize
			}
			f.runRound(ctx, round, n)
			round++
		}
		f.reseed(ctx)
	}
	f.finalize()
	return f.res, nil
}

// coverRun executes one input on the instrumented Hi-Fi interpreter.
func (f *fuzzer) coverRun(prog []byte) (*coverage.Map, *harness.Result) {
	cov := coverage.New()
	r := harness.RunBootBudget(harness.CoverageFactory(cov), f.cfg.Image, f.cfg.Boot, prog, f.budget)
	return cov, r
}

// admit merges one novel-signature input into the corpus and all coverage
// accumulators; callers have already checked the signature is unseen.
func (f *fuzzer) admit(in *Input, cov *coverage.Map) {
	f.sigs[in.Sig] = true
	_, newBits := f.global.AddInput(cov)
	in.NewBits = newBits
	if newBits > 0 {
		f.res.Stats.NewCoverage++
	}
	hc := f.byHand[in.Handler]
	if hc == nil {
		hc = &handlerCov{g: coverage.NewGlobal(), sigs: make(map[uint64]bool)}
		f.byHand[in.Handler] = hc
	}
	hc.g.AddInput(cov)
	hc.sigs[in.Sig] = true
	f.res.Inputs = append(f.res.Inputs, in)
}

// evalSeeds runs every seed on the instrumented interpreter and admits the
// signature-distinct ones, carrying over the campaign's divergence verdicts.
func (f *fuzzer) evalSeeds(ctx context.Context, seeds []Seed) {
	f.res.Stats.Seeds = len(seeds)
	covs := make([]*coverage.Map, len(seeds))
	runPool(ctx, f.cfg.Workers, len(seeds), func(i int) {
		covs[i], _ = f.coverRun(seeds[i].Prog)
	})
	seen := make(map[uint64]bool)
	for i, s := range seeds {
		if covs[i] == nil {
			continue // canceled or crashed slot; deterministic only pre-cancel
		}
		// Every seed's divergence verdict is carried over — even a seed whose
		// coverage duplicates an earlier one — so the hybrid report reproduces
		// the campaign's full known-divergence set.
		f.res.Divergences = append(f.res.Divergences, s.Divs...)
		sig := covs[i].Signature()
		if !seen[sig] {
			seen[sig] = true
			f.res.Stats.SeedSignatures++
		}
		if f.sigs[sig] {
			continue
		}
		in := &Input{
			ID: s.ID, Handler: s.Handler, Mnemonic: s.Mnemonic,
			Prog: s.Prog, TestOff: s.TestOff,
			Sig: sig, EdgeCount: covs[i].Count(),
			Divergent: len(s.Divs) > 0,
			edges:     covs[i].Edges(),
		}
		f.admit(in, covs[i])
	}
}

// runRound plans, executes, and canonically merges one batch of n mutation
// jobs against the round-start corpus snapshot.
func (f *fuzzer) runRound(ctx context.Context, round, n int) {
	corpus := f.res.Inputs // immutable snapshot: jobs only read it
	// Rare-edge-favoring scheduler: an input's weight grows with the number
	// of edges few corpus inputs have reached.
	weights := make([]int, len(corpus))
	total := 0
	for i, in := range corpus {
		weights[i] = 1 + rareWeight*f.global.Rarity(in.edges, rareEdgeMax)
		total += weights[i]
	}
	pick := func(rng *rand.Rand) *Input {
		r := rng.Intn(total)
		for i, w := range weights {
			if r < w {
				return corpus[i]
			}
			r -= w
		}
		return corpus[len(corpus)-1]
	}

	cands := make([]*candidate, n)
	runPool(ctx, f.cfg.Workers, n, func(j int) {
		c := &candidate{skipped: true}
		cands[j] = c
		if err := faults.Hit(faults.HybridMutate, fmt.Sprintf("r%d#%d", round, j)); err != nil {
			return
		}
		rng := rand.New(rand.NewSource(jobSeed(f.cfg.Seed, round, j)))
		parent := pick(rng)
		donor := corpus[rng.Intn(len(corpus))]
		op := Ops[rng.Intn(len(Ops))]
		init := Mutate(rng, parent.Prog[:parent.TestOff], donor.Prog[:donor.TestOff], op)
		prog := append(init, parent.Prog[parent.TestOff:]...)
		c.parent, c.op = parent, op
		c.prog, c.testOff = prog, len(init)
		c.handler, c.mnemonic = parent.Handler, parent.Mnemonic
		c.cov, c.fidelis = f.coverRun(prog)
		c.sig = c.cov.Signature()
		c.edges = c.cov.Edges()
		c.skipped = false
	})

	// Canonical merge in job-index order: dedup by signature, then decide
	// which novel candidates go through the differential trio.
	var novel []*candidate
	var ids []string
	for j, c := range cands {
		f.res.Stats.Execs++
		if c == nil || c.skipped {
			f.res.Stats.Skipped++
			continue
		}
		if f.sigs[c.sig] {
			f.res.Stats.Deduped++
			continue
		}
		f.sigs[c.sig] = true // reserve; admit() sets it again harmlessly
		novel = append(novel, c)
		ids = append(ids, fmt.Sprintf("hyb:r%d#%d", round, j))
	}

	divs := make([][]Divergence, len(novel))
	runPool(ctx, f.cfg.Workers, len(novel), func(i int) {
		divs[i] = f.trio(ids[i], novel[i])
	})
	for i, c := range novel {
		in := &Input{
			ID: ids[i], Parent: c.parent.ID, Op: c.op,
			Handler: c.handler, Mnemonic: c.mnemonic,
			Prog: c.prog, TestOff: c.testOff,
			Sig: c.sig, EdgeCount: len(c.edges),
			Divergent: len(divs[i]) > 0,
			edges:     c.edges,
		}
		f.admit(in, c.cov)
		if in.Divergent {
			f.res.Stats.Divergent++
			f.res.Divergences = append(f.res.Divergences, divs[i]...)
		} else if in.NewBits > 0 {
			in.Promising = true
			f.res.Stats.Promising++
		}
	}
}

// trio completes the differential comparison for one candidate: the
// instrumented fidelis run already happened, so only the Lo-Fi emulator and
// the hardware oracle execute here.
func (f *fuzzer) trio(id string, c *candidate) []Divergence {
	ce := harness.RunBootBudget(harness.CelerFactory(), f.cfg.Image, f.cfg.Boot, c.prog, f.budget)
	hw := harness.RunBootBudget(harness.HardwareFactory(), f.cfg.Image, f.cfg.Boot, c.prog, f.budget)
	filter := diff.UndefFilterFor(c.handler)
	var out []Divergence
	for _, pair := range []struct {
		impl string
		r    *harness.Result
	}{{"fidelis", c.fidelis}, {"celer", ce}} {
		ds := diff.Compare(hw.Snapshot, pair.r.Snapshot, filter)
		if len(ds) == 0 {
			continue
		}
		d := diff.Difference{
			TestID: id, Handler: c.handler, Mnemonic: c.mnemonic,
			ImplA: "hardware", ImplB: pair.impl, Fields: ds,
		}
		out = append(out, Divergence{
			InputID: id, Handler: c.handler, Mnemonic: c.mnemonic,
			Impl: pair.impl, Signature: d.Signature(),
		})
	}
	return out
}

// finalize computes the corpus-wide statistics and the per-handler rollup.
func (f *fuzzer) finalize() {
	f.res.Stats.Signatures = len(f.sigs)
	f.res.Stats.Edges = f.global.Edges()
	hands := make([]string, 0, len(f.byHand))
	for h := range f.byHand {
		hands = append(hands, h)
	}
	sort.Strings(hands)
	for _, h := range hands {
		hc := f.byHand[h]
		f.res.Stats.PerHandler = append(f.res.Stats.PerHandler, HandlerCoverage{
			Handler: h, Edges: hc.g.Edges(), Sigs: len(hc.sigs),
		})
	}
}

// resolveInstr maps a corpus input's test-instruction bytes back to the
// campaign's unique-instruction identity for guided exploration.
func (f *fuzzer) resolveInstr(prog []byte, testOff int) *core.UniqueInstr {
	if testOff < 0 || testOff >= len(prog) {
		return nil
	}
	inst, err := x86.Decode(prog[testOff:])
	if err != nil {
		return nil
	}
	for _, u := range f.cfg.Instrs {
		if bytes.Equal(u.Repr, inst.Raw) {
			return u
		}
	}
	return nil
}

// reseed hands the first MaxReseeds promising inputs back to symex: replay
// the input concretely to the test instruction, read the Figure 3 variable
// assignment out of the paused machine, and run a small guided exploration
// radiating from that concrete path. Generated tests join the corpus like
// any other input.
func (f *fuzzer) reseed(ctx context.Context) {
	if f.cfg.Explorer == nil || f.cfg.MaxReseeds == 0 {
		return
	}
	var promising []*Input
	for _, in := range f.res.Inputs {
		if in.Promising {
			promising = append(promising, in)
		}
	}
	if len(promising) > f.cfg.MaxReseeds {
		promising = promising[:f.cfg.MaxReseeds]
	}
	if len(promising) == 0 {
		return
	}
	ex, err := f.cfg.Explorer()
	if err != nil || ex == nil {
		return
	}
	probe := ex.Probe()
	for _, in := range promising {
		if ctx.Err() != nil {
			return
		}
		u := f.resolveInstr(in.Prog, in.TestOff)
		if u == nil {
			continue
		}
		m := f.replayToTest(in.Prog, in.TestOff)
		if m == nil {
			continue
		}
		f.res.Stats.Reseeds++
		guide := probe.AssignmentFromMachine(m)
		res, err := ex.ExploreStateGuided(u, guide, f.cfg.ReseedPaths)
		if err != nil {
			continue
		}
		for k, tc := range res.Tests {
			p, err := testgen.Build(tc)
			if err != nil || !testgen.Verify(p, f.cfg.Image) {
				continue
			}
			f.res.Stats.ReseedTests++
			cov, fi := f.coverRun(p.Code)
			sig := cov.Signature()
			if f.sigs[sig] {
				f.res.Stats.Deduped++
				continue
			}
			id := fmt.Sprintf("%s~s%d", in.ID, k)
			c := &candidate{
				prog: p.Code, testOff: p.TestOffset, sig: sig,
				edges: cov.Edges(), cov: cov, fidelis: fi,
				handler: in.Handler, mnemonic: in.Mnemonic,
			}
			ds := f.trio(id, c)
			nin := &Input{
				ID: id, Parent: in.ID, Op: "reseed",
				Handler: in.Handler, Mnemonic: in.Mnemonic,
				Prog: p.Code, TestOff: p.TestOffset,
				Sig: sig, EdgeCount: len(c.edges),
				Divergent: len(ds) > 0,
				edges:     c.edges,
			}
			f.admit(nin, cov)
			if nin.Divergent {
				f.res.Stats.Divergent++
				f.res.Divergences = append(f.res.Divergences, ds...)
			}
		}
	}
}

// replayToTest boots the input and steps the hardware-configuration Hi-Fi
// interpreter until control reaches the test instruction, returning the
// paused machine (nil when the mutated initializer faults or loops first).
func (f *fuzzer) replayToTest(prog []byte, testOff int) *machine.Machine {
	maxSteps := f.budget.MaxSteps
	if maxSteps == 0 {
		maxSteps = harness.DefaultMaxSteps
	}
	m := machine.NewBoot(f.cfg.Image)
	m.Mem.WriteBytes(machine.BootBase, f.cfg.Boot)
	m.Mem.WriteBytes(machine.CodeBase, prog)
	e := fidelis.NewWithConfig(m, sem.HardwareConfig)
	target := machine.CodeBase + uint32(testOff)
	for i := 0; i < maxSteps; i++ {
		if m.EIP == target {
			return m
		}
		if ev := e.Step(); ev.Kind != emu.EventNone {
			return nil
		}
	}
	return nil
}

// runPool executes task(0..n-1) on an index-sliced worker pool: each index
// runs exactly once, panics are contained to their slot, and cancellation
// stops new pulls. Merging stays with the caller, in index order — the
// same contract as the campaign's pool.
func runPool(ctx context.Context, workers, n int, task func(i int)) {
	if n == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				func() {
					defer func() { recover() }() // a crashed slot reads as skipped
					task(i)
				}()
			}
		}()
	}
	wg.Wait()
}
