// Package emu defines the common surface of the three reference
// implementations (Hi-Fi interpreter, Lo-Fi translator, hardware simulator)
// so the harness can run test programs uniformly.
package emu

import "pokeemu/internal/machine"

// EventKind classifies the result of executing one instruction.
type EventKind uint8

// Step outcomes.
const (
	EventNone      EventKind = iota // instruction completed normally
	EventHalt                       // the CPU halted (hlt executed)
	EventException                  // an exception was raised and delivered
	EventShutdown                   // exception delivery itself failed
	EventTimeout                    // internal step budget exhausted
)

func (k EventKind) String() string {
	switch k {
	case EventHalt:
		return "halt"
	case EventException:
		return "exception"
	case EventShutdown:
		return "shutdown"
	case EventTimeout:
		return "timeout"
	default:
		return "none"
	}
}

// Event is the instrumented observation of one Step: the kind plus the
// exception that was delivered, if any. This is the "10-line patch"
// equivalent of the paper's emulator instrumentation.
type Event struct {
	Kind      EventKind
	Exception *machine.ExceptionInfo
}

// Emulator is a CPU implementation under test or used as a reference.
type Emulator interface {
	// Name identifies the implementation in reports.
	Name() string
	// Machine exposes the guest state (for loading programs, snapshots).
	Machine() *machine.Machine
	// Step executes one guest instruction, including any exception delivery.
	Step() Event
}
