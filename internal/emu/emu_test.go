package emu

import "testing"

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventNone:      "none",
		EventHalt:      "halt",
		EventException: "exception",
		EventShutdown:  "shutdown",
		EventTimeout:   "timeout",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d: %q, want %q", k, got, want)
		}
	}
}
