package testgen

import (
	"testing"

	"pokeemu/internal/core"
	"pokeemu/internal/emu"
	"pokeemu/internal/fidelis"
	"pokeemu/internal/machine"
	"pokeemu/internal/symex"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// TestBaselineInitReachesBaselineState is the keystone of Section 4.1: the
// boot-loader state plus the baseline initializer must reproduce exactly
// the baseline machine state the exploration assumed.
func TestBaselineInitReachesBaselineState(t *testing.T) {
	image := machine.BaselineImage()
	m := machine.NewBoot(image)
	m.Mem.WriteBytes(machine.BootBase, BaselineInit())
	e := fidelis.NewWithConfig(m, sem.HardwareConfig)
	for i := 0; i < 200; i++ {
		if m.EIP == machine.CodeBase {
			break
		}
		if ev := e.Step(); ev.Kind != emu.EventNone {
			t.Fatalf("baseline init raised %v at step %d (eip %#x)", ev, i, m.EIP)
		}
	}
	want := machine.BaselineCPU()
	got := m.CPU
	if got.EIP != want.EIP {
		t.Fatalf("init did not reach the test entry: eip %#x", got.EIP)
	}
	if got.GPR != want.GPR {
		t.Errorf("GPRs %v, want %v", got.GPR, want.GPR)
	}
	if got.EFLAGS != want.EFLAGS {
		t.Errorf("EFLAGS %#x, want %#x", got.EFLAGS, want.EFLAGS)
	}
	if got.CR0 != want.CR0 || got.CR3 != want.CR3 || got.CR4 != want.CR4 {
		t.Errorf("CRs %#x/%#x/%#x, want %#x/%#x/%#x",
			got.CR0, got.CR3, got.CR4, want.CR0, want.CR3, want.CR4)
	}
	if got.GDTRBase != want.GDTRBase || got.GDTRLimit != want.GDTRLimit ||
		got.IDTRBase != want.IDTRBase || got.IDTRLimit != want.IDTRLimit {
		t.Error("descriptor table registers differ from the baseline")
	}
	for s := 0; s < x86.NumSegRegs; s++ {
		if got.Seg[s] != want.Seg[s] {
			t.Errorf("%v: %+v, want %+v", x86.SegReg(s), got.Seg[s], want.Seg[s])
		}
	}
}

// explore produces test cases for one instruction encoding.
func explore(t *testing.T, repr []byte, maxPaths int) (*core.Explorer, []*core.TestCase) {
	t.Helper()
	opts := symex.DefaultOptions()
	if maxPaths > 0 {
		opts.MaxPaths = maxPaths
	}
	ex, err := core.NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]byte, x86.MaxInstLen)
	copy(full, repr)
	inst, err := x86.Decode(full)
	if err != nil {
		t.Fatal(err)
	}
	u := &core.UniqueInstr{Spec: inst.Spec, OpSize: inst.OpSize, Repr: full[:inst.Len]}
	res, err := ex.ExploreState(u)
	if err != nil {
		t.Fatal(err)
	}
	return ex, res.Tests
}

// TestLiftPushEax reproduces the paper's running example (Figure 5): lift
// push %eax test cases and verify every generated program assembles,
// orders its gadgets correctly, and reaches the test instruction.
func TestLiftPushEax(t *testing.T) {
	ex, tests := explore(t, []byte{0x50}, 0)
	if len(tests) < 20 {
		t.Fatalf("only %d paths for push", len(tests))
	}
	built, initOK := 0, 0
	for _, tc := range tests {
		p, err := Build(tc)
		if err != nil {
			t.Errorf("%s: %v", tc.ID, err)
			continue
		}
		built++
		if Verify(p, ex.Image()) {
			initOK++
		}
		// Gadget class ordering must be monotone.
		last := gadgetClass(-1)
		for _, g := range p.Gadgets[:len(p.Gadgets)-2] {
			if g.Class < last {
				t.Errorf("%s: gadget order violated at %q", tc.ID, g.Name)
			}
			last = g.Class
		}
	}
	if built != len(tests) {
		t.Errorf("built %d of %d", built, len(tests))
	}
	// The paper reports that none of its minimized test cases failed
	// initializer generation; the large majority must also reach the test
	// instruction (a few legitimately fault during init when the test
	// state unmaps init-critical pages).
	if initOK*10 < built*8 {
		t.Errorf("only %d/%d programs reach the test instruction", initOK, built)
	}
	t.Logf("push: %d paths, %d built, %d reach the test instruction",
		len(tests), built, initOK)
}

// TestLiftedTestTriggersExploredBehavior: a lifted #SS path for push must
// actually raise #SS when run, matching the explored outcome.
func TestLiftedTestTriggersExploredBehavior(t *testing.T) {
	ex, tests := explore(t, []byte{0x50}, 0)
	boot := BaselineInit()
	matched, ran := 0, 0
	for _, tc := range tests {
		p, err := Build(tc)
		if err != nil || !Verify(p, ex.Image()) {
			continue
		}
		// Run on the Hi-Fi emulator (whose exploration produced the test).
		m := machine.NewBoot(ex.Image().Overlay())
		m.Mem.WriteBytes(machine.BootBase, boot)
		m.Mem.WriteBytes(machine.CodeBase, p.Code)
		e := fidelis.New(m)
		testEIP := uint32(machine.CodeBase + p.TestOffset)
		reached := false
		var final emu.Event
		for i := 0; i < 4096; i++ {
			if m.EIP == testEIP {
				reached = true
			}
			ev := e.Step()
			if reached {
				final = ev
				break
			}
			if ev.Kind != emu.EventNone {
				break
			}
		}
		if !reached {
			continue
		}
		ran++
		switch tc.Outcome.Kind {
		case 1: // ir.OutRaise
			if final.Kind == emu.EventException || final.Kind == emu.EventShutdown {
				if final.Exception.Vector == tc.Outcome.Vector {
					matched++
				}
			}
		default:
			if final.Kind == emu.EventNone || final.Kind == emu.EventHalt {
				matched++
			}
		}
	}
	if ran == 0 {
		t.Fatal("no lifted tests ran")
	}
	// The explored path and the replayed behavior should agree in the
	// large majority of cases (residual slippage comes from boot-time
	// accessed-bit noise, documented in DESIGN.md).
	if matched*10 < ran*7 {
		t.Errorf("outcome matched on only %d/%d tests", matched, ran)
	}
	t.Logf("replayed %d lifted tests, outcome matched on %d", ran, matched)
}

func TestBuildUnliftable(t *testing.T) {
	tc := &core.TestCase{
		InstrBytes: []byte{0x90},
		Assignment: map[string]uint64{"bogus": 1},
		Baseline:   map[string]uint64{"bogus": 0},
		Widths:     map[string]uint8{"bogus": 8},
	}
	if _, err := Build(tc); err == nil {
		t.Error("expected unliftable error")
	}
}

func TestProgramRendering(t *testing.T) {
	_, tests := explore(t, []byte{0x50}, 64)
	for _, tc := range tests {
		p, err := Build(tc)
		if err != nil {
			continue
		}
		if p.String() == "" {
			t.Error("empty program rendering")
		}
		return
	}
}
