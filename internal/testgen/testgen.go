// Package testgen generates runnable test programs from explored test
// cases (paper Section 4): a fixed baseline state initializer that brings
// the boot-loader state to the baseline machine state, plus per-test state
// initializers assembled from a gadget library with prerequisite and
// side-effect tracking and a topological ordering — the Figure 5 pipeline.
package testgen

import (
	"fmt"
	"sort"
	"strings"

	"pokeemu/internal/core"
	"pokeemu/internal/emu"
	"pokeemu/internal/fidelis"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// Version identifies the generator's output format: the gadget library, the
// ordering rules, and the baseline initializer. Any change that could alter
// the bytes of a generated test program — or what cached entries record
// about it (v2 added the test-instruction offset, the triage minimizer's
// split point) — must bump it, so corpus entries produced by an older
// generator are regenerated instead of reused.
const Version = 2

// BaselineInit returns the fixed baseline state initializer (Section 4.1),
// loaded at machine.BootBase: it loads the descriptor table registers,
// enables paging, reloads every data segment from the baseline GDT, resets
// the general registers and stack, enables interrupts, and jumps to the
// test program. Its final state is exactly machine.BaselineCPU (verified by
// tests).
func BaselineInit() []byte {
	var out []byte
	app := func(b []byte) { out = append(out, b...) }
	app(x86.AsmLGDT(machine.ScratchBase))
	app(x86.AsmLIDT(machine.ScratchBase + 8))
	app(x86.AsmMovRegImm32(x86.EAX, machine.PDBase))
	app(x86.AsmMovCRReg(3, x86.EAX))
	app(x86.AsmMovRegImm32(x86.EAX,
		1<<x86.CR0PE|1<<x86.CR0ET|1<<x86.CR0PG))
	app(x86.AsmMovCRReg(0, x86.EAX))
	// Reload the data segments from the (now live) GDT.
	reload := func(sel uint16, sr x86.SegReg) {
		app(x86.AsmMovRegImm16(x86.EAX, sel))
		app(x86.AsmMovSregReg(sr, x86.EAX))
	}
	reload(machine.SelData, x86.DS)
	reload(machine.SelES, x86.ES)
	reload(machine.SelFS, x86.FS)
	reload(machine.SelGS, x86.GS)
	reload(machine.SelSS, x86.SS)
	// Reset registers to the baseline values.
	for r := x86.EAX; r <= x86.EDI; r++ {
		if r == x86.ESP {
			app(x86.AsmMovRegImm32(x86.ESP, machine.StackTop))
		} else {
			app(x86.AsmMovRegImm32(r, 0))
		}
	}
	// Enable interrupts via popf so EFLAGS matches the baseline exactly.
	app(x86.AsmPushImm32(x86.EflagsFixed1 | 1<<x86.FlagIF))
	app(x86.AsmPopf())
	// Jump to the test program.
	rel := int32(machine.CodeBase) - int32(machine.BootBase+uint32(len(out))+5)
	app(x86.AsmJmpRel32(rel))
	return out
}

// Gadget is one state-initializer snippet with its ordering metadata.
type Gadget struct {
	Name     string
	Code     []byte
	Class    gadgetClass
	Requires []string // names of gadgets that must precede this one
	Clobbers []x86.Reg
}

type gadgetClass int

// Gadget classes establish the coarse ordering constraints described in
// Section 4.2: flags first (they need a pristine stack), then general and
// GDT memory, then page-table entries (which may unmap pages later gadgets
// would have needed), then segment reloads (which read the GDT), then
// control registers (which change translation behavior), and registers
// last, with the scratch register restored at the very end — exactly the
// structure of Figure 5.
const (
	classFlags gadgetClass = iota
	classMem
	classMemPT
	classSeg
	classCR
	classGPR
	classScratchRestore
)

// Program is a generated test program.
type Program struct {
	Code       []byte // gadgets + test instruction + hlt, loaded at CodeBase
	Gadgets    []Gadget
	TestOffset int // offset of the test instruction within Code
}

// String renders the program like Figure 5(b).
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Gadgets {
		fmt.Fprintf(&b, "%-28s // % x\n", g.Name, g.Code)
	}
	return b.String()
}

// ErrUnliftable reports a state component no gadget can establish.
type ErrUnliftable struct{ Var string }

func (e *ErrUnliftable) Error() string {
	return "testgen: no gadget can initialize " + e.Var
}

// Build lifts a test case into a test program (Section 4.2): one gadget per
// differing state component, correction gadgets for side effects, a
// dependency-respecting order, then the test instruction and hlt.
func Build(tc *core.TestCase) (*Program, error) {
	diffs := tc.Diffs()

	var gadgets []Gadget
	flagBits := map[uint8]uint64{}
	segReload := map[x86.SegReg]bool{}
	gprVals := map[x86.Reg]uint32{}
	scratchNeeded := false

	names := make([]string, 0, len(diffs))
	for name := range diffs {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		v := diffs[name]
		switch {
		case strings.HasPrefix(name, "gm_"):
			addr := tc.VarMem[name]
			gadgets = append(gadgets, memGadget(addr, byte(v)))
			// A rewritten descriptor requires reloading the segment that
			// caches it (Figure 5 lines 4-5).
			if sr, ok := segOfGDTByte(addr); ok {
				segReload[sr] = true
			}
		case strings.HasPrefix(name, "st_"):
			loc, ok := tc.VarLoc[name]
			if !ok {
				return nil, &ErrUnliftable{Var: name}
			}
			switch loc.Kind {
			case x86.LocGPR:
				gprVals[x86.Reg(loc.Index)] = uint32(v)
			case x86.LocFlag:
				flagBits[loc.Index] = v
			case x86.LocSegSel:
				segReload[x86.SegReg(loc.Index)] = true
			case x86.LocCR:
				gadgets = append(gadgets, crGadget(loc.Index, uint32(v)))
				scratchNeeded = true
			default:
				return nil, &ErrUnliftable{Var: name}
			}
		default:
			return nil, &ErrUnliftable{Var: name}
		}
	}

	if len(flagBits) > 0 {
		gadgets = append(gadgets, flagsGadget(tc, flagBits))
	}
	for sr := range segReload {
		if sr == x86.CS {
			return nil, &ErrUnliftable{Var: "cs reload"}
		}
		g, err := segGadget(tc, sr)
		if err != nil {
			return nil, err
		}
		gadgets = append(gadgets, g)
		scratchNeeded = true
	}
	// Register initializers; the scratch register (EAX) last, either to its
	// test value or restored to baseline (Figure 5 line 6).
	for r := x86.EAX; r <= x86.EDI; r++ {
		v, have := gprVals[r]
		if r == x86.EAX {
			if !have && !scratchNeeded {
				continue
			}
			if !have {
				v = uint32(tc.Baseline["st_eax"])
			}
			gadgets = append(gadgets, Gadget{
				Name:  fmt.Sprintf("mov $0x%x, %%eax (restore)", v),
				Code:  x86.AsmMovRegImm32(x86.EAX, v),
				Class: classScratchRestore,
			})
			continue
		}
		if have {
			gadgets = append(gadgets, Gadget{
				Name:  fmt.Sprintf("mov $0x%x, %%%s", v, r),
				Code:  x86.AsmMovRegImm32(r, v),
				Class: classGPR,
			})
		}
	}

	ordered, err := topoSort(gadgets)
	if err != nil {
		return nil, err
	}

	p := &Program{Gadgets: ordered}
	for _, g := range ordered {
		p.Code = append(p.Code, g.Code...)
	}
	p.TestOffset = len(p.Code)
	p.Code = append(p.Code, tc.InstrBytes...)
	p.Code = append(p.Code, x86.AsmHlt()...)
	testName := tc.Mnemonic
	if inst, err := x86.Decode(tc.InstrBytes); err == nil {
		testName = x86.Disasm(inst)
	}
	p.Gadgets = append(p.Gadgets,
		Gadget{Name: testName + " (test instruction)", Code: tc.InstrBytes},
		Gadget{Name: "hlt", Code: x86.AsmHlt()})
	return p, nil
}

func memGadget(addr uint32, v byte) Gadget {
	cls := classMem
	if addr >= machine.PTBase && addr < machine.PTBase+machine.PageSize ||
		addr >= machine.PDBase && addr < machine.PDBase+machine.PageSize {
		cls = classMemPT
	}
	return Gadget{
		Name:  fmt.Sprintf("movb $0x%02x, 0x%06x", v, addr),
		Code:  x86.AsmMovMemImm8(addr, v),
		Class: cls,
	}
}

func crGadget(cr uint8, v uint32) Gadget {
	return Gadget{
		Name:     fmt.Sprintf("mov $0x%x, %%cr%d", v, cr),
		Code:     append(x86.AsmMovRegImm32(x86.EAX, v), x86.AsmMovCRReg(cr, x86.EAX)...),
		Class:    classCR,
		Clobbers: []x86.Reg{x86.EAX},
	}
}

func flagsGadget(tc *core.TestCase, bits map[uint8]uint64) Gadget {
	// Compose the full EFLAGS image: baseline, overridden by the test bits.
	v := uint32(x86.EflagsFixed1 | 1<<x86.FlagIF)
	for bit, val := range bits {
		if val&1 == 1 {
			v |= 1 << bit
		} else {
			v &^= 1 << bit
		}
	}
	return Gadget{
		Name:  fmt.Sprintf("push $0x%x; popf", v),
		Code:  append(x86.AsmPushImm32(v), x86.AsmPopf()...),
		Class: classFlags,
	}
}

func segGadget(tc *core.TestCase, sr x86.SegReg) (Gadget, error) {
	selVar := "st_" + sr.String() + ".sel"
	sel, ok := tc.Assignment[selVar]
	if !ok {
		sel = uint64(core.BaselineSelector(sr))
	}
	return Gadget{
		Name: fmt.Sprintf("mov $0x%04x, %%ax; mov %%ax, %%%s", sel, sr),
		Code: append(x86.AsmMovRegImm16(x86.EAX, uint16(sel)),
			x86.AsmMovSregReg(sr, x86.EAX)...),
		Class:    classSeg,
		Clobbers: []x86.Reg{x86.EAX},
	}, nil
}

// segOfGDTByte maps a physical address inside the GDT to the baseline
// segment register caching that entry, if any.
func segOfGDTByte(addr uint32) (x86.SegReg, bool) {
	if addr < machine.GDTBase || addr >= machine.GDTBase+machine.GDTEntries*8 {
		return 0, false
	}
	idx := (addr - machine.GDTBase) / 8
	for _, sr := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		if machine.GDTIndex(core.BaselineSelector(sr)) == idx {
			return sr, true
		}
	}
	return 0, false
}

// topoSort orders gadgets by class, then stably by explicit Requires edges
// within a class. A cycle is an error (the paper's "abort and ask for user
// assistance" case).
func topoSort(gs []Gadget) ([]Gadget, error) {
	sort.SliceStable(gs, func(i, j int) bool { return gs[i].Class < gs[j].Class })
	// Explicit Requires edges within the class ordering.
	index := make(map[string]int, len(gs))
	for i, g := range gs {
		index[g.Name] = i
	}
	for i, g := range gs {
		for _, req := range g.Requires {
			j, ok := index[req]
			if !ok {
				continue
			}
			if j > i && gs[j].Class == g.Class {
				return nil, fmt.Errorf("testgen: dependency cycle involving %q", g.Name)
			}
			if gs[j].Class > g.Class {
				return nil, fmt.Errorf("testgen: unsatisfiable dependency %q before %q",
					req, g.Name)
			}
		}
	}
	return gs, nil
}

// Verify simulates the generated program on the hardware model and reports
// whether execution reaches the test instruction (the generated-initializer
// sanity check; minimization is what keeps this from ever failing, and the
// ablation benchmark measures exactly that).
func Verify(p *Program, image *machine.Memory) bool {
	m := machine.NewBoot(image)
	m.Mem.WriteBytes(machine.BootBase, BaselineInit())
	m.Mem.WriteBytes(machine.CodeBase, p.Code)
	hw := fidelis.NewWithConfig(m, sem.HardwareConfig)
	testEIP := uint32(machine.CodeBase + p.TestOffset)
	for i := 0; i < 4096; i++ {
		if m.EIP == testEIP {
			return true
		}
		if ev := hw.Step(); ev.Kind != emu.EventNone {
			return false // halted or faulted before the test instruction
		}
	}
	return false
}
