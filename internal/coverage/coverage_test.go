package coverage

import "testing"

func TestProgIDStable(t *testing.T) {
	if ProgID("add_rm8_r8") != ProgID("add_rm8_r8") {
		t.Fatal("ProgID not stable")
	}
	if ProgID("a") == ProgID("b") {
		t.Fatal("ProgID collides on distinct names")
	}
}

func TestEdgeIndexSpread(t *testing.T) {
	pid := ProgID("p")
	seen := make(map[uint32]bool)
	for from := -1; from < 64; from++ {
		for to := 0; to < 64; to++ {
			seen[EdgeIndex(pid, from, to)] = true
		}
	}
	// 65*64 edges should land on nearly as many distinct slots of 65536.
	if len(seen) < 4000 {
		t.Fatalf("edge hash clustering: %d distinct slots", len(seen))
	}
	if EdgeIndex(pid, 3, 7) == EdgeIndex(ProgID("q"), 3, 7) {
		t.Fatal("same edge in different programs hashed identically")
	}
}

func TestBucketClasses(t *testing.T) {
	cases := []struct {
		n    uint16
		want uint8
	}{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {7, 4}, {8, 5}, {15, 5},
		{16, 6}, {31, 6}, {32, 7}, {127, 7}, {128, 8}, {60000, 8}}
	for _, c := range cases {
		if got := Bucket(c.n); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAddCountSignature(t *testing.T) {
	pid := ProgID("p")
	m := New()
	if m.Count() != 0 {
		t.Fatal("fresh map not empty")
	}
	empty := m.Signature()
	m.Add(pid, -1, 0)
	m.Add(pid, 0, 5)
	m.Add(pid, 0, 5)
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	if m.Signature() == empty {
		t.Fatal("signature unchanged after adds")
	}

	// Order-independence: same edges added in another order hash equal.
	o := New()
	o.Add(pid, 0, 5)
	o.Add(pid, -1, 0)
	o.Add(pid, 0, 5)
	if m.Signature() != o.Signature() {
		t.Fatal("signature depends on insertion order")
	}

	// Within-bucket count changes keep the signature; crossing a bucket
	// boundary changes it.
	sig := o.Signature()
	o.Add(pid, 0, 5) // 2 -> 3 crosses (buckets 1,2,3 are exact)
	if o.Signature() == sig {
		t.Fatal("bucket transition did not change signature")
	}
	for i := 0; i < 2; i++ {
		o.Add(pid, 0, 5) // 3 -> 5: 4 and 5 share the 4-7 bucket
	}
	sig = o.Signature()
	o.Add(pid, 0, 5) // 5 -> 6 stays in 4-7
	if o.Signature() != sig {
		t.Fatal("within-bucket count change altered signature")
	}
}

func TestCounterSaturates(t *testing.T) {
	m := New()
	idx := EdgeIndex(ProgID("p"), 0, 1)
	for i := 0; i < 70000; i++ {
		m.AddIndex(idx)
	}
	if m.counts[idx] != ^uint16(0) {
		t.Fatalf("counter wrapped: %d", m.counts[idx])
	}
}

func TestEdgesMergeDiff(t *testing.T) {
	pid := ProgID("p")
	a, b := New(), New()
	a.Add(pid, 0, 1)
	a.Add(pid, 1, 2)
	b.Add(pid, 1, 2)
	b.Add(pid, 2, 3)

	ea := a.Edges()
	if len(ea) != 2 {
		t.Fatalf("Edges len = %d", len(ea))
	}
	for i := 1; i < len(ea); i++ {
		if ea[i] <= ea[i-1] {
			t.Fatal("Edges not ascending")
		}
	}

	d := a.Diff(b)
	if len(d) != 1 || d[0] != EdgeIndex(pid, 0, 1) {
		t.Fatalf("Diff = %v", d)
	}

	if got := a.Merge(b); got != 1 {
		t.Fatalf("Merge new edges = %d, want 1", got)
	}
	if a.Count() != 3 {
		t.Fatalf("merged Count = %d, want 3", a.Count())
	}
	// Merge saturates rather than wrapping.
	sat := New()
	idx := EdgeIndex(pid, 9, 9)
	sat.counts[idx] = ^uint16(0) - 1
	add := New()
	add.counts[idx] = 5
	sat.Merge(add)
	if sat.counts[idx] != ^uint16(0) {
		t.Fatalf("merge wrapped: %d", sat.counts[idx])
	}

	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset left edges behind")
	}
}

func TestGlobalAccumulation(t *testing.T) {
	pid := ProgID("p")
	g := NewGlobal()

	m1 := New()
	m1.Add(pid, 0, 1)
	m1.Add(pid, 1, 2)
	newEdges, newBits := g.AddInput(m1)
	if newEdges != 2 || newBits != 2 {
		t.Fatalf("first input: edges %d bits %d", newEdges, newBits)
	}

	// Same map again: no new edges, no new bucket classes.
	newEdges, newBits = g.AddInput(m1)
	if newEdges != 0 || newBits != 0 {
		t.Fatalf("repeat input: edges %d bits %d", newEdges, newBits)
	}

	// Same edge, higher bucket: a new class but not a new edge.
	m2 := New()
	for i := 0; i < 10; i++ {
		m2.Add(pid, 0, 1)
	}
	newEdges, newBits = g.AddInput(m2)
	if newEdges != 0 || newBits != 1 {
		t.Fatalf("hotter input: edges %d bits %d", newEdges, newBits)
	}

	if g.Edges() != 2 {
		t.Fatalf("Edges = %d, want 2", g.Edges())
	}
	e01 := EdgeIndex(pid, 0, 1)
	e12 := EdgeIndex(pid, 1, 2)
	if g.InputsAt(e01) != 3 || g.InputsAt(e12) != 2 {
		t.Fatalf("InputsAt = %d,%d", g.InputsAt(e01), g.InputsAt(e12))
	}

	// Edge e12 is rarer (2 hits) than e01 (3).
	rare := g.RareEdges(2)
	if len(rare) != 1 || rare[0] != e12 {
		t.Fatalf("RareEdges = %v, want [%d]", rare, e12)
	}
	if got := g.Rarity(m1.Edges(), 2); got != 1 {
		t.Fatalf("Rarity = %d, want 1", got)
	}
	if got := g.Rarity(m1.Edges(), 10); got != 2 {
		t.Fatalf("Rarity(10) = %d, want 2", got)
	}
}
