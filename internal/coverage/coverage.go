// Package coverage implements the compact edge-coverage map behind hybrid
// campaigns: an AFL-style fixed-size table of hashed edge counters with
// bucketed hit counts, deterministic signatures for input deduplication,
// and the merge/diff/rarity operations the mutational fuzzer's scheduler
// needs. A Map records one execution; a Global accumulates a whole corpus
// and remembers how many inputs reached each edge, which is what makes
// rare-edge-favoring scheduling cheap.
package coverage

// MapBits sizes the edge table; 2^16 counters keeps the map at 128 KiB and
// the collision rate negligible for per-instruction IR bodies.
const (
	MapBits = 16
	MapSize = 1 << MapBits
)

// Version participates in corpus cache keys: bump on any change to edge
// hashing, bucketing, or signatures so stale cached hybrid results are not
// replayed.
const Version = 1

// Map is one execution's edge-hit counters.
type Map struct {
	counts []uint16
}

// New returns an empty coverage map.
func New() *Map { return &Map{counts: make([]uint16, MapSize)} }

// ProgID derives a stable 64-bit identity for an IR program from its name
// (FNV-1a), mixed into every edge index so identical (from, to) pairs in
// different programs land on different counters.
func ProgID(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: full-avalanche, so consecutive
// statement indexes spread across the whole table.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// EdgeIndex hashes one control-flow edge into the table.
func EdgeIndex(progID uint64, from, to int) uint32 {
	h := mix64(progID ^ mix64(uint64(int64(from))<<32|uint64(uint32(to))))
	return uint32(h) & (MapSize - 1)
}

// Add records one traversal of an edge (saturating at the counter maximum).
func (m *Map) Add(progID uint64, from, to int) {
	m.AddIndex(EdgeIndex(progID, from, to))
}

// AddIndex records one traversal of an already-hashed edge.
func (m *Map) AddIndex(idx uint32) {
	if c := m.counts[idx]; c != ^uint16(0) {
		m.counts[idx] = c + 1
	}
}

// Bucket maps a raw hit count onto its AFL-style power-of-two class
// (0 for never hit, then 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+). Two
// executions differing only within a class produce equal signatures.
func Bucket(n uint16) uint8 {
	switch {
	case n == 0:
		return 0
	case n <= 3:
		return uint8(n)
	case n <= 7:
		return 4
	case n <= 15:
		return 5
	case n <= 31:
		return 6
	case n <= 127:
		return 7
	default:
		return 8
	}
}

// Count returns the number of distinct edges hit.
func (m *Map) Count() int {
	n := 0
	for _, c := range m.counts {
		if c != 0 {
			n++
		}
	}
	return n
}

// Edges returns the hit edge indexes in ascending order.
func (m *Map) Edges() []uint32 {
	out := make([]uint32, 0, 64)
	for i, c := range m.counts {
		if c != 0 {
			out = append(out, uint32(i))
		}
	}
	return out
}

// Signature folds the bucketed map into a 64-bit fingerprint (FNV-1a over
// ascending (index, bucket) pairs). Deterministic: a pure function of the
// map contents, independent of insertion order, so it is safe to dedupe a
// corpus by signature across runs and worker counts.
func (m *Map) Signature() uint64 {
	h := uint64(14695981039346656037)
	step := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i, c := range m.counts {
		if c == 0 {
			continue
		}
		step(byte(i))
		step(byte(i >> 8))
		step(Bucket(c))
	}
	return h
}

// Merge folds another execution's counters into m (saturating add),
// returning how many edges were new to m.
func (m *Map) Merge(o *Map) int {
	newEdges := 0
	for i, c := range o.counts {
		if c == 0 {
			continue
		}
		if m.counts[i] == 0 {
			newEdges++
		}
		if s := uint32(m.counts[i]) + uint32(c); s > uint32(^uint16(0)) {
			m.counts[i] = ^uint16(0)
		} else {
			m.counts[i] = uint16(s)
		}
	}
	return newEdges
}

// Diff returns the edges hit by m but not by o, ascending — the "what did
// this input reach that the baseline did not" question.
func (m *Map) Diff(o *Map) []uint32 {
	var out []uint32
	for i, c := range m.counts {
		if c != 0 && o.counts[i] == 0 {
			out = append(out, uint32(i))
		}
	}
	return out
}

// Reset clears the map for reuse.
func (m *Map) Reset() {
	for i := range m.counts {
		m.counts[i] = 0
	}
}

// Global accumulates corpus-wide coverage: the set of (edge, bucket)
// classes any input has reached, and the number of inputs that hit each
// edge. The latter is the scheduler's rarity signal.
type Global struct {
	buckets []uint16 // bitmask of bucket classes seen per edge
	inputs  []uint32 // number of inputs that hit the edge
	edges   int      // distinct edges seen
}

// NewGlobal returns an empty corpus accumulator.
func NewGlobal() *Global {
	return &Global{buckets: make([]uint16, MapSize), inputs: make([]uint32, MapSize)}
}

// AddInput folds one execution's map into the accumulator, returning the
// number of edges never seen before and the number of new (edge, bucket)
// classes (AFL's "new bits": nonzero exactly when the input is interesting).
func (g *Global) AddInput(m *Map) (newEdges, newBits int) {
	for i, c := range m.counts {
		if c == 0 {
			continue
		}
		if g.inputs[i] == 0 {
			newEdges++
			g.edges++
		}
		g.inputs[i]++
		bit := uint16(1) << Bucket(c)
		if g.buckets[i]&bit == 0 {
			g.buckets[i] |= bit
			newBits++
		}
	}
	return newEdges, newBits
}

// Edges returns the number of distinct edges any input has hit.
func (g *Global) Edges() int { return g.edges }

// InputsAt returns how many inputs hit an edge.
func (g *Global) InputsAt(idx uint32) uint32 { return g.inputs[idx] }

// Rarity counts how many of the given edges at most maxHits inputs have
// reached — the scheduling weight of an input holding those edges.
func (g *Global) Rarity(edges []uint32, maxHits uint32) int {
	n := 0
	for _, e := range edges {
		if c := g.inputs[e]; c > 0 && c <= maxHits {
			n++
		}
	}
	return n
}

// RareEdges returns every edge reached by at most maxHits inputs,
// ascending.
func (g *Global) RareEdges(maxHits uint32) []uint32 {
	var out []uint32
	for i, c := range g.inputs {
		if c > 0 && c <= maxHits {
			out = append(out, uint32(i))
		}
	}
	return out
}
