package machine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Snapshot file format. The paper notes that while Bochs and QEMU ship
// their own snapshot facilities, PokeEMU uses its own format so that states
// from different implementations compare directly (Section 5.1). This is
// that format: a fixed-size CPU record followed by the touched memory pages
// (pages identical to the shared baseline image are omitted).
//
//	"PKEM" magic, u16 version
//	CPU record (little endian, fixed layout)
//	exception record (present flag, vector, errcode, has-err)
//	u32 page count, then per page: u32 page number + 4096 bytes

const (
	snapMagic   = "PKEM"
	snapVersion = 1
)

// SnapVersion is the snapshot file format version, exported so persistent
// caches of serialized snapshots can key on it.
const SnapVersion = snapVersion

// WriteTo serializes the snapshot relative to the given shared baseline
// image (pass nil to emit every touched page in the overlay chain).
func (s *Snapshot) WriteTo(w io.Writer, sharedRoot *Memory) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	put32 := func(v uint32) { _ = binary.Write(bw, le, v) }
	put16 := func(v uint16) { _ = binary.Write(bw, le, v) }

	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	put16(snapVersion)

	c := &s.CPU
	for _, r := range c.GPR {
		put32(r)
	}
	put32(c.EIP)
	put32(c.EFLAGS)
	for _, seg := range c.Seg {
		put16(seg.Sel)
		put32(seg.Base)
		put32(seg.Limit)
		put16(seg.Attr)
	}
	put32(c.CR0)
	put32(c.CR2)
	put32(c.CR3)
	put32(c.CR4)
	put32(c.GDTRBase)
	put32(c.GDTRLimit)
	put32(c.IDTRBase)
	put32(c.IDTRLimit)
	for _, m := range c.MSR {
		_ = binary.Write(bw, le, m)
	}
	halted := byte(0)
	if c.Halted {
		halted = 1
	}
	bw.WriteByte(halted)

	// Exception record.
	if s.Exception == nil {
		bw.WriteByte(0)
		put32(0)
		bw.WriteByte(0)
		bw.WriteByte(0)
	} else {
		bw.WriteByte(1)
		put32(s.Exception.ErrCode)
		bw.WriteByte(s.Exception.Vector)
		hasErr := byte(0)
		if s.Exception.HasErr {
			hasErr = 1
		}
		bw.WriteByte(hasErr)
	}

	// Touched pages, sorted for determinism.
	pages := s.Mem.Touched(sharedRoot)
	pns := make([]uint32, 0, len(pages))
	for pn := range pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	put32(uint32(len(pns)))
	for _, pn := range pns {
		put32(pn)
		if _, err := bw.Write(s.Mem.ReadBytes(pn*PageSize, PageSize)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a snapshot. Pages are layered over the given
// base image (which must be the same shared image used when writing).
func ReadSnapshot(r io.Reader, base *Memory) (*Snapshot, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != snapMagic {
		return nil, fmt.Errorf("machine: bad snapshot magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("machine: unsupported snapshot version %d", version)
	}

	get32 := func(v *uint32) error { return binary.Read(br, le, v) }
	get16 := func(v *uint16) error { return binary.Read(br, le, v) }
	s := &Snapshot{}
	c := &s.CPU
	for i := range c.GPR {
		if err := get32(&c.GPR[i]); err != nil {
			return nil, err
		}
	}
	get32(&c.EIP)
	get32(&c.EFLAGS)
	for i := range c.Seg {
		get16(&c.Seg[i].Sel)
		get32(&c.Seg[i].Base)
		get32(&c.Seg[i].Limit)
		get16(&c.Seg[i].Attr)
	}
	get32(&c.CR0)
	get32(&c.CR2)
	get32(&c.CR3)
	get32(&c.CR4)
	get32(&c.GDTRBase)
	get32(&c.GDTRLimit)
	get32(&c.IDTRBase)
	get32(&c.IDTRLimit)
	for i := range c.MSR {
		if err := binary.Read(br, le, &c.MSR[i]); err != nil {
			return nil, err
		}
	}
	var b [1]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return nil, err
	}
	c.Halted = b[0] == 1

	// Exception record.
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return nil, err
	}
	present := b[0] == 1
	var errCode uint32
	get32(&errCode)
	var vecHas [2]byte
	if _, err := io.ReadFull(br, vecHas[:]); err != nil {
		return nil, err
	}
	if present {
		s.Exception = &ExceptionInfo{
			Vector: vecHas[0], ErrCode: errCode, HasErr: vecHas[1] == 1,
		}
	}

	// Pages.
	if base == nil {
		base = NewMemory()
	}
	mem := base.Overlay()
	var count uint32
	if err := get32(&count); err != nil {
		return nil, err
	}
	if count > NumPages {
		return nil, fmt.Errorf("machine: snapshot claims %d pages", count)
	}
	buf := make([]byte, PageSize)
	for i := uint32(0); i < count; i++ {
		var pn uint32
		if err := get32(&pn); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		mem.WriteBytes(pn*PageSize, buf)
	}
	s.Mem = mem
	return s, nil
}
