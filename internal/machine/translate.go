package machine

import "pokeemu/internal/x86"

// Translate performs the concrete two-level page walk for one linear
// address: not-present and write-protection checks, CR4.PSE large pages,
// CR0.WP supervisor write protection, and accessed/dirty maintenance. It
// mirrors the IR walk emitted by x86/sem (cross-checked by tests) and is
// used for instruction fetch and by the KVM-style monitor.
//
// On fault it sets CR2 and returns the page-fault exception.
func (m *Machine) Translate(lin uint32, write bool) (uint32, *ExceptionInfo) {
	if m.CR0>>x86.CR0PG&1 == 0 {
		return lin, nil // paging disabled: linear is physical
	}
	fault := func(present bool) (uint32, *ExceptionInfo) {
		m.CR2 = lin
		var err uint32
		if present {
			err |= x86.PFErrP
		}
		if write {
			err |= x86.PFErrWR
		}
		return 0, &ExceptionInfo{Vector: x86.ExcPF, ErrCode: err, HasErr: true}
	}
	wp := m.CR0>>x86.CR0WP&1 == 1
	checkWrite := func(entry uint32) bool {
		return !write || !wp || entry&x86.PteRW != 0
	}
	setBit := func(addr, entry uint32, bit uint32) uint32 {
		if entry&bit == 0 {
			entry |= bit
			m.Mem.Write(addr, uint64(entry), 4)
		}
		return entry
	}

	pdeAddr := m.CR3&0xfffff000 | lin>>22<<2
	pde := uint32(m.Mem.Read(pdeAddr, 4))
	if pde&x86.PteP == 0 {
		return fault(false)
	}
	if m.CR4>>x86.CR4PSE&1 == 1 && pde&x86.PdePS != 0 {
		// 4-MiB page.
		if !checkWrite(pde) {
			return fault(true)
		}
		pde = setBit(pdeAddr, pde, x86.PteA)
		if write {
			setBit(pdeAddr, pde, x86.PteD)
		}
		return pde&0xffc00000 | lin&0x003fffff, nil
	}
	if !checkWrite(pde) {
		return fault(true)
	}
	pde = setBit(pdeAddr, pde, x86.PteA)
	pteAddr := pde&0xfffff000 | lin>>12&0x3ff<<2
	pte := uint32(m.Mem.Read(pteAddr, 4))
	if pte&x86.PteP == 0 {
		return fault(false)
	}
	if !checkWrite(pte) {
		return fault(true)
	}
	pte = setBit(pteAddr, pte, x86.PteA)
	if write {
		setBit(pteAddr, pte, x86.PteD)
	}
	return pte&0xfffff000 | lin&0xfff, nil
}

// FetchCode reads up to n instruction bytes at CS:EIP, applying the code
// segment limit per byte and page translation per page run. It returns the
// bytes fetched before the first fault (if any) and that fault. One page
// walk covers every byte up to the page boundary, with identical fault
// behavior to a per-byte walk: bytes are produced in order, and the first
// byte past the limit or on a faulting page stops the fetch with the fault.
func (m *Machine) FetchCode(n int) ([]byte, *ExceptionInfo) {
	cs := &m.Seg[x86.CS]
	out := make([]byte, 0, n)
	for i := 0; i < n; {
		off := m.EIP + uint32(i)
		if off > cs.Limit {
			return out, &ExceptionInfo{Vector: x86.ExcGP, ErrCode: 0, HasErr: true}
		}
		lin := cs.Base + off
		phys, exc := m.Translate(lin, false)
		if exc != nil {
			return out, exc
		}
		// Bytes coverable by this walk: to the page end, clipped by the
		// remaining request and the segment limit (64-bit math so a
		// Limit of 0xffffffff cannot overflow).
		run := int(0x1000 - lin&0xfff)
		if rem := n - i; run > rem {
			run = rem
		}
		if left := uint64(cs.Limit) - uint64(off) + 1; uint64(run) > left {
			run = int(left)
		}
		for j := 0; j < run; j++ {
			out = append(out, m.Mem.Read8(phys+uint32(j)))
		}
		i += run
	}
	return out, nil
}
