package machine

import "pokeemu/internal/x86"

// This file constructs the baseline machine state of Section 4.1: a
// minimalist 32-bit protected-mode environment with paging enabled — flat
// segmentation (zero base, 4-GiB limit), a page table mapping the 4-GiB
// linear space onto 4 MiB of physical memory repeating every 4 MiB, and an
// interrupt descriptor table whose exception handlers halt the CPU.

// Baseline descriptor attribute words.
const (
	attrFlatData = uint16(x86.AttrP | x86.AttrS | x86.AttrWritable |
		x86.AttrAccessed | x86.AttrG | x86.AttrDB) // type 0x3, G, D/B
	attrFlatCode = uint16(x86.AttrP | x86.AttrS | x86.AttrCode |
		x86.AttrWritable | x86.AttrAccessed | x86.AttrG | x86.AttrDB) // 0xB readable code
)

// BaselineImage builds the physical memory content of the baseline
// environment: GDT, page directory and table, IDT, and exception handler
// stubs. Test programs are loaded at CodeBase by the harness.
func BaselineImage() *Memory {
	m := NewMemory()

	// GDT: null, flat code, and flat data descriptors for each data segment
	// register, with the stack segment at index 10 (selector 0x50).
	writeDesc := func(index uint32, base, limit20 uint32, attr uint16) {
		lo, hi := x86.MakeDescriptor(base, limit20, attr)
		m.Write(GDTBase+index*8, uint64(lo), 4)
		m.Write(GDTBase+index*8+4, uint64(hi), 4)
	}
	writeDesc(GDTIndex(SelCode), 0, 0xfffff, attrFlatCode)
	writeDesc(GDTIndex(SelData), 0, 0xfffff, attrFlatData)
	writeDesc(GDTIndex(SelES), 0, 0xfffff, attrFlatData)
	writeDesc(GDTIndex(SelFS), 0, 0xfffff, attrFlatData)
	writeDesc(GDTIndex(SelGS), 0, 0xfffff, attrFlatData)
	writeDesc(GDTIndex(SelSS), 0, 0xfffff, attrFlatData)

	// Page directory: every entry points at the single shared page table,
	// so every 4-MiB slice of linear space maps to the same physical 4 MiB.
	for i := uint32(0); i < 1024; i++ {
		m.Write(PDBase+i*4, uint64(PTBase|x86.PteP|x86.PteRW|x86.PteUS), 4)
	}
	// Page table: linear within the 4-MiB window, all pages RW and user.
	for i := uint32(0); i < 1024; i++ {
		m.Write(PTBase+i*4, uint64(i<<12|x86.PteP|x86.PteRW|x86.PteUS), 4)
	}

	// Pseudo-descriptors for lgdt/lidt, used by the baseline initializer.
	m.Write(ScratchBase, GDTEntries*8-1, 2)
	m.Write(ScratchBase+2, GDTBase, 4)
	m.Write(ScratchBase+8, 256*8-1, 2)
	m.Write(ScratchBase+10, IDTBase, 4)

	// Exception handler stubs: one per vector so the halting EIP identifies
	// the vector in the final state; each is a single hlt.
	for v := uint32(0); v < 256; v++ {
		m.Write8(HandlerBase+v*8, 0xf4) // hlt
	}
	// IDT: 32-bit interrupt gates to the stubs.
	for v := uint32(0); v < 256; v++ {
		off := HandlerBase + v*8
		lo := uint64(off&0xffff) | uint64(SelCode)<<16
		hi := uint64(0x8e00) | uint64(off&0xffff0000) // P, DPL0, 32-bit int gate
		m.Write(IDTBase+v*8, lo, 4)
		m.Write(IDTBase+v*8+4, hi, 4)
	}
	return m
}

// BaselineCPU returns the register state immediately after the baseline
// initializer has run: flat segments loaded, paging enabled, interrupts on,
// EIP at the test program entry.
func BaselineCPU() CPU {
	flat := func(sel uint16, attr uint16) Segment {
		return Segment{Sel: sel, Base: 0, Limit: 0xffffffff, Attr: attr}
	}
	var c CPU
	c.GPR = [8]uint32{}
	c.GPR[x86.ESP] = StackTop
	c.EIP = CodeBase
	c.EFLAGS = x86.EflagsFixed1 | 1<<x86.FlagIF
	c.Seg[x86.CS] = flat(SelCode, attrFlatCode)
	c.Seg[x86.DS] = flat(SelData, attrFlatData)
	c.Seg[x86.ES] = flat(SelES, attrFlatData)
	c.Seg[x86.FS] = flat(SelFS, attrFlatData)
	c.Seg[x86.GS] = flat(SelGS, attrFlatData)
	c.Seg[x86.SS] = flat(SelSS, attrFlatData)
	c.CR0 = 1<<x86.CR0PE | 1<<x86.CR0ET | 1<<x86.CR0PG
	c.CR3 = PDBase
	c.CR4 = 0
	c.GDTRBase = GDTBase
	c.GDTRLimit = GDTEntries*8 - 1
	c.IDTRBase = IDTBase
	c.IDTRLimit = 256*8 - 1
	return c
}

// NewBaseline returns a machine in the baseline state backed by a private
// copy-on-write overlay of the given shared image (pass nil to build a
// fresh image).
func NewBaseline(image *Memory) *Machine {
	if image == nil {
		image = BaselineImage()
	}
	return NewMachine(BaselineCPU(), image.Overlay())
}

// BootCPU is the machine state the off-the-shelf boot loader leaves behind
// (paper Section 4): already in 32-bit protected mode with flat segment
// caches, but paging disabled, descriptor table registers unset, and
// interrupts off. The baseline state initializer (internal/testgen) runs
// from here as ordinary guest code.
func BootCPU() CPU {
	flat := func(sel uint16, attr uint16) Segment {
		return Segment{Sel: sel, Base: 0, Limit: 0xffffffff, Attr: attr}
	}
	var c CPU
	c.EIP = BootBase
	c.EFLAGS = x86.EflagsFixed1
	c.Seg[x86.CS] = flat(SelCode, attrFlatCode)
	c.Seg[x86.DS] = flat(SelData, attrFlatData)
	c.Seg[x86.ES] = flat(SelData, attrFlatData)
	c.Seg[x86.FS] = flat(SelData, attrFlatData)
	c.Seg[x86.GS] = flat(SelData, attrFlatData)
	c.Seg[x86.SS] = flat(SelData, attrFlatData)
	c.CR0 = 1<<x86.CR0PE | 1<<x86.CR0ET
	return c
}

// NewBoot returns a machine in the boot-loader state over a private overlay
// of the image.
func NewBoot(image *Memory) *Machine {
	if image == nil {
		image = BaselineImage()
	}
	return NewMachine(BootCPU(), image.Overlay())
}
