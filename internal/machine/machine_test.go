package machine

import (
	"testing"
	"testing/quick"

	"pokeemu/internal/x86"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 0x11223344, 4)
	if got := m.Read(0x1000, 4); got != 0x11223344 {
		t.Errorf("read = %#x", got)
	}
	if got := m.Read8(0x1001); got != 0x33 {
		t.Errorf("byte read = %#x (little endian expected)", got)
	}
	// Cross-page write.
	m.Write(PageSize-2, 0xaabbccdd, 4)
	if got := m.Read(PageSize-2, 4); got != 0xaabbccdd {
		t.Errorf("cross-page read = %#x", got)
	}
	// Address wraps at 4 MiB.
	m.Write8(PhysSize+5, 0x7f)
	if got := m.Read8(5); got != 0x7f {
		t.Errorf("wrap read = %#x", got)
	}
}

func TestMemoryOverlayCoW(t *testing.T) {
	base := NewMemory()
	base.Write8(100, 1)
	o1 := base.Overlay()
	o2 := base.Overlay()
	if o1.Read8(100) != 1 || o2.Read8(100) != 1 {
		t.Fatal("overlay should read through")
	}
	o1.Write8(100, 2)
	if base.Read8(100) != 1 {
		t.Error("overlay write leaked into base")
	}
	if o2.Read8(100) != 1 {
		t.Error("overlay write leaked into sibling")
	}
	if o1.Read8(100) != 2 {
		t.Error("overlay write lost")
	}
	// Touched excludes the shared root.
	touched := o1.Touched(base)
	if len(touched) != 1 || !touched[100/PageSize] {
		t.Errorf("touched = %v", touched)
	}
	if o1.Root() != base {
		t.Error("root mismatch")
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint32) bool {
		m.Write(addr, uint64(v), 4)
		return m.Read(addr, 4) == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMachineLocAccess(t *testing.T) {
	m := NewMachine(CPU{}, NewMemory())
	m.Set(x86.GPR(x86.EAX), 0x12345678)
	if m.Get(x86.GPR(x86.EAX)) != 0x12345678 {
		t.Error("gpr round trip")
	}
	m.Set(x86.Flag(x86.FlagZF), 1)
	if m.EFLAGS&(1<<x86.FlagZF) == 0 || m.Get(x86.Flag(x86.FlagZF)) != 1 {
		t.Error("flag set")
	}
	m.Set(x86.Flag(x86.FlagZF), 0)
	if m.Get(x86.Flag(x86.FlagZF)) != 0 {
		t.Error("flag clear")
	}
	m.Set(x86.SegAttr(x86.SS), 0x1c93)
	if m.Get(x86.SegAttr(x86.SS)) != 0x1c93&0xffff {
		t.Error("seg attr")
	}
	m.Set(x86.CR(3), PDBase)
	if m.CR3 != PDBase {
		t.Error("cr3")
	}
	m.Set(x86.MSR(2), 0x1122334455667788)
	if m.Get(x86.MSR(2)) != 0x1122334455667788 {
		t.Error("msr is 64-bit")
	}
}

func TestBaselineImageTables(t *testing.T) {
	img := BaselineImage()
	// GDT entry for SS (index 10) must describe a flat writable data segment.
	lo := uint32(img.Read(GDTBase+10*8, 4))
	hi := uint32(img.Read(GDTBase+10*8+4, 4))
	base, limit, attr := x86.DescriptorFields(lo, hi)
	if base != 0 || limit != 0xffffffff {
		t.Errorf("ss descriptor: base %#x limit %#x", base, limit)
	}
	if attr&x86.AttrP == 0 || attr&x86.AttrS == 0 || attr&x86.AttrWritable == 0 ||
		attr&x86.AttrCode != 0 {
		t.Errorf("ss descriptor attr %#x", attr)
	}
	// Every PDE points at the shared page table and is present.
	for _, i := range []uint32{0, 1, 511, 1023} {
		pde := uint32(img.Read(PDBase+i*4, 4))
		if pde&0xfffff000 != PTBase || pde&x86.PteP == 0 {
			t.Errorf("pde[%d] = %#x", i, pde)
		}
	}
	// PTE j maps physical page j.
	for _, j := range []uint32{0, 256, 1023} {
		pte := uint32(img.Read(PTBase+j*4, 4))
		if pte&0xfffff000 != j<<12 || pte&x86.PteP == 0 || pte&x86.PteRW == 0 {
			t.Errorf("pte[%d] = %#x", j, pte)
		}
	}
	// IDT gate 13 (#GP) points at its halting stub through the code selector.
	lo13 := uint32(img.Read(IDTBase+13*8, 4))
	hi13 := uint32(img.Read(IDTBase+13*8+4, 4))
	off := lo13&0xffff | hi13&0xffff0000
	sel := uint16(lo13 >> 16)
	if off != HandlerBase+13*8 || sel != SelCode {
		t.Errorf("idt[13]: off %#x sel %#x", off, sel)
	}
	if img.Read8(off) != 0xf4 {
		t.Error("handler stub is not hlt")
	}
}

func TestBaselineCPUState(t *testing.T) {
	c := BaselineCPU()
	if c.CR0&(1<<x86.CR0PE) == 0 || c.CR0&(1<<x86.CR0PG) == 0 {
		t.Error("baseline must be protected mode with paging")
	}
	if c.Seg[x86.SS].Sel != SelSS || c.Seg[x86.CS].Sel != SelCode {
		t.Error("baseline selectors wrong")
	}
	if c.Seg[x86.DS].Limit != 0xffffffff {
		t.Error("baseline segments must be flat")
	}
	if c.EIP != CodeBase || c.GPR[x86.ESP] != StackTop {
		t.Error("baseline entry state wrong")
	}
	if c.EFLAGS&(1<<x86.FlagIF) == 0 {
		t.Error("baseline enables interrupts")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	img := BaselineImage()
	m := NewBaseline(img)
	m.GPR[x86.EAX] = 7
	snap := m.Snapshot(nil)
	m.GPR[x86.EAX] = 9 // later mutation must not affect the snapshot CPU copy
	if snap.CPU.GPR[x86.EAX] != 7 {
		t.Error("snapshot CPU not value-copied")
	}
	if snap.Exception != nil {
		t.Error("no exception expected")
	}
}

func TestExceptionInfoString(t *testing.T) {
	var e *ExceptionInfo
	if e.String() != "none" {
		t.Error("nil exception string")
	}
	e = &ExceptionInfo{Vector: 13, ErrCode: 0x50, HasErr: true}
	if e.String() != "#13(err=0x50)" {
		t.Errorf("got %q", e.String())
	}
}
