package machine

import (
	"bytes"
	"testing"

	"pokeemu/internal/x86"
)

func TestSnapshotFileRoundTrip(t *testing.T) {
	image := BaselineImage()
	m := NewBaseline(image)
	m.GPR[x86.EAX] = 0x12345678
	m.EFLAGS |= 1 << x86.FlagZF
	m.CR2 = 0xdeadf000
	m.MSR[2] = 0x1122334455667788
	m.Halted = true
	m.Mem.Write(0x300123, 0xa5, 1)
	m.Seg[x86.FS].Base = 0x1000

	exc := &ExceptionInfo{Vector: x86.ExcGP, ErrCode: 0x50, HasErr: true}
	snap := m.Snapshot(exc)

	var buf bytes.Buffer
	if err := snap.WriteTo(&buf, image); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf, image)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPU != snap.CPU {
		t.Errorf("CPU mismatch:\n got %+v\nwant %+v", got.CPU, snap.CPU)
	}
	if got.Exception == nil || *got.Exception != *exc {
		t.Errorf("exception = %v", got.Exception)
	}
	if got.Mem.Read8(0x300123) != 0xa5 {
		t.Error("touched page content lost")
	}
	// Untouched content must come through the shared base.
	if got.Mem.Read(GDTBase+8, 4) != snap.Mem.Read(GDTBase+8, 4) {
		t.Error("baseline content lost")
	}
}

func TestSnapshotFileNoException(t *testing.T) {
	image := BaselineImage()
	snap := NewBaseline(image).Snapshot(nil)
	var buf bytes.Buffer
	if err := snap.WriteTo(&buf, image); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf, image)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exception != nil {
		t.Errorf("exception = %v, want none", got.Exception)
	}
}

func TestSnapshotFileRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("nope")), nil); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte("PKEM\xff\xff")), nil); err == nil {
		t.Error("bad version accepted")
	}
}
