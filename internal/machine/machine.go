// Package machine provides the guest machine-state container shared by all
// emulators: CPU registers with segment descriptor caches, copy-on-write
// paged physical memory, the baseline machine image (flat GDT, linear page
// tables, halting IDT handlers — Section 4.1 of the paper), and final-state
// snapshots.
package machine

import (
	"fmt"

	"pokeemu/internal/expr"
	"pokeemu/internal/x86"
)

// Physical memory geometry: 4 MiB, like the paper's baseline configuration
// (the 4-GiB linear space maps onto it repeating every 4 MiB).
const (
	PhysBits = 22
	PhysSize = 1 << PhysBits
	PhysMask = PhysSize - 1
	PageSize = 4096
	NumPages = PhysSize / PageSize
)

// Baseline physical layout.
const (
	IDTBase     = 0x0000_1000 // 256 × 8-byte gates
	PDBase      = 0x0000_2000 // page directory
	PTBase      = 0x0000_3000 // the single shared page table
	HandlerBase = 0x0000_4000 // exception handler stubs, 8 bytes per vector
	ScratchBase = 0x0000_5000 // pseudo-descriptors and initializer scratch
	BootBase    = 0x0000_6000 // baseline state initializer code
	CodeBase    = 0x0010_0000 // test program entry point
	StackBase   = 0x0020_0000 // stack page
	StackTop    = 0x0020_0800 // baseline ESP
	GDTBase     = 0x0020_8000 // 16 × 8-byte descriptors (echoes paper Fig. 5)
)

// GDT selector assignments for the baseline flat model. The stack segment
// deliberately uses descriptor index 10 (selector 0x50), matching the test
// program in Figure 5 of the paper.
const (
	SelNull    = 0x00
	SelCode    = 0x08
	SelData    = 0x10
	SelES      = 0x18
	SelFS      = 0x20
	SelGS      = 0x28
	SelSS      = 0x50
	GDTEntries = 16
)

// GDTIndex returns the descriptor table index of a selector.
func GDTIndex(sel uint16) uint32 { return uint32(sel) >> 3 }

// page is one 4-KiB frame.
type page [PageSize]byte

// Memory is paged physical memory with copy-on-write overlays. A fresh
// overlay per test run makes per-test reset O(1) and leaves the final
// content immutable for snapshot diffing.
type Memory struct {
	pages map[uint32]*page
	base  *Memory
}

// NewMemory returns empty (all-zero) physical memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

// Overlay returns a copy-on-write view of m. Writes go to the overlay;
// reads fall through to m for untouched pages.
func (m *Memory) Overlay() *Memory {
	return &Memory{pages: make(map[uint32]*page), base: m}
}

// find returns the page content for reading, or nil if never written.
func (m *Memory) find(pn uint32) *page {
	for cur := m; cur != nil; cur = cur.base {
		if p, ok := cur.pages[pn]; ok {
			return p
		}
	}
	return nil
}

// pageForWrite materializes a private copy of the page in this overlay.
func (m *Memory) pageForWrite(pn uint32) *page {
	if p, ok := m.pages[pn]; ok {
		return p
	}
	p := new(page)
	if src := m.find(pn); src != nil {
		*p = *src
	}
	m.pages[pn] = p
	return p
}

// Read8 reads one byte of physical memory (address wraps at 4 MiB).
func (m *Memory) Read8(addr uint32) byte {
	addr &= PhysMask
	p := m.find(addr / PageSize)
	if p == nil {
		return 0
	}
	return p[addr%PageSize]
}

// Write8 writes one byte of physical memory.
func (m *Memory) Write8(addr uint32, v byte) {
	addr &= PhysMask
	m.pageForWrite(addr / PageSize)[addr%PageSize] = v
}

// Read reads a little-endian value of 1, 2 or 4 bytes.
func (m *Memory) Read(addr uint32, bytes uint8) uint64 {
	var v uint64
	for i := uint8(0); i < bytes; i++ {
		v |= uint64(m.Read8(addr+uint32(i))) << (8 * i)
	}
	return v
}

// Write writes a little-endian value of 1, 2 or 4 bytes.
func (m *Memory) Write(addr uint32, v uint64, bytes uint8) {
	for i := uint8(0); i < bytes; i++ {
		m.Write8(addr+uint32(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies buf into memory at addr.
func (m *Memory) WriteBytes(addr uint32, buf []byte) {
	for i, b := range buf {
		m.Write8(addr+uint32(i), b)
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint32(i))
	}
	return out
}

// Touched returns the set of page numbers written anywhere in this overlay
// chain, excluding the shared root (used for efficient snapshot diffing).
func (m *Memory) Touched(sharedRoot *Memory) map[uint32]bool {
	out := make(map[uint32]bool)
	for cur := m; cur != nil && cur != sharedRoot; cur = cur.base {
		for pn := range cur.pages {
			out[pn] = true
		}
	}
	return out
}

// Root returns the bottom of the overlay chain.
func (m *Memory) Root() *Memory {
	cur := m
	for cur.base != nil {
		cur = cur.base
	}
	return cur
}

// Segment is a segment register with its descriptor cache (the "hidden
// part"): base, byte-granular limit, and packed attributes.
type Segment struct {
	Sel   uint16
	Base  uint32
	Limit uint32
	Attr  uint16
}

// CPU is the architected register state.
type CPU struct {
	GPR                 [8]uint32
	EIP                 uint32
	EFLAGS              uint32
	Seg                 [x86.NumSegRegs]Segment
	CR0                 uint32
	CR2                 uint32
	CR3                 uint32
	CR4                 uint32
	GDTRBase, GDTRLimit uint32
	IDTRBase, IDTRLimit uint32
	MSR                 [6]uint64
	Halted              bool
}

// Machine couples a CPU with physical memory and implements ir.State.
type Machine struct {
	CPU
	Mem *Memory
}

// NewMachine wraps cpu and mem.
func NewMachine(cpu CPU, mem *Memory) *Machine {
	return &Machine{CPU: cpu, Mem: mem}
}

// Get implements ir.State.
func (m *Machine) Get(loc x86.Loc) uint64 {
	switch loc.Kind {
	case x86.LocGPR:
		return uint64(m.GPR[loc.Index])
	case x86.LocEIP:
		return uint64(m.EIP)
	case x86.LocFlag:
		return uint64(m.EFLAGS >> loc.Index & 1)
	case x86.LocSegSel:
		return uint64(m.Seg[loc.Index].Sel)
	case x86.LocSegBase:
		return uint64(m.Seg[loc.Index].Base)
	case x86.LocSegLimit:
		return uint64(m.Seg[loc.Index].Limit)
	case x86.LocSegAttr:
		return uint64(m.Seg[loc.Index].Attr)
	case x86.LocCR:
		switch loc.Index {
		case 0:
			return uint64(m.CR0)
		case 2:
			return uint64(m.CR2)
		case 3:
			return uint64(m.CR3)
		case 4:
			return uint64(m.CR4)
		}
	case x86.LocGDTRBase:
		return uint64(m.GDTRBase)
	case x86.LocGDTRLimit:
		return uint64(m.GDTRLimit)
	case x86.LocIDTRBase:
		return uint64(m.IDTRBase)
	case x86.LocIDTRLimit:
		return uint64(m.IDTRLimit)
	case x86.LocMSR:
		return m.MSR[loc.Index]
	}
	panic(fmt.Sprintf("machine: get of unknown location %v", loc))
}

// Set implements ir.State.
func (m *Machine) Set(loc x86.Loc, v uint64) {
	v &= expr.Mask(loc.Width())
	switch loc.Kind {
	case x86.LocGPR:
		m.GPR[loc.Index] = uint32(v)
	case x86.LocEIP:
		m.EIP = uint32(v)
	case x86.LocFlag:
		bit := uint32(1) << loc.Index
		if v&1 == 1 {
			m.EFLAGS |= bit
		} else {
			m.EFLAGS &^= bit
		}
	case x86.LocSegSel:
		m.Seg[loc.Index].Sel = uint16(v)
	case x86.LocSegBase:
		m.Seg[loc.Index].Base = uint32(v)
	case x86.LocSegLimit:
		m.Seg[loc.Index].Limit = uint32(v)
	case x86.LocSegAttr:
		m.Seg[loc.Index].Attr = uint16(v)
	case x86.LocCR:
		switch loc.Index {
		case 0:
			m.CR0 = uint32(v)
		case 2:
			m.CR2 = uint32(v)
		case 3:
			m.CR3 = uint32(v)
		case 4:
			m.CR4 = uint32(v)
		default:
			panic("machine: set of unknown control register")
		}
	case x86.LocGDTRBase:
		m.GDTRBase = uint32(v)
	case x86.LocGDTRLimit:
		m.GDTRLimit = uint32(v)
	case x86.LocIDTRBase:
		m.IDTRBase = uint32(v)
	case x86.LocIDTRLimit:
		m.IDTRLimit = uint32(v)
	case x86.LocMSR:
		m.MSR[loc.Index] = v
	default:
		panic(fmt.Sprintf("machine: set of unknown location %v", loc))
	}
}

// Load implements ir.State (physical access).
func (m *Machine) Load(phys uint32, bytes uint8) uint64 {
	return m.Mem.Read(phys, bytes)
}

// Store implements ir.State (physical access).
func (m *Machine) Store(phys uint32, v uint64, bytes uint8) {
	m.Mem.Write(phys, v, bytes)
}

// Snapshot is a final machine state captured after a test run. The memory
// overlay must not be written after capture.
type Snapshot struct {
	CPU CPU
	Mem *Memory
	// Exception records the terminal event observed by the harness, if any.
	Exception *ExceptionInfo
}

// ExceptionInfo describes the exception that ended a test.
type ExceptionInfo struct {
	Vector  uint8
	ErrCode uint32
	HasErr  bool
}

func (e *ExceptionInfo) String() string {
	if e == nil {
		return "none"
	}
	if e.HasErr {
		return fmt.Sprintf("#%d(err=%#x)", e.Vector, e.ErrCode)
	}
	return fmt.Sprintf("#%d", e.Vector)
}

// Snapshot captures the current state.
func (m *Machine) Snapshot(exc *ExceptionInfo) *Snapshot {
	return &Snapshot{CPU: m.CPU, Mem: m.Mem, Exception: exc}
}
