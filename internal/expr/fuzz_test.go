package expr

import (
	"testing"
)

// fuzzVars is the variable pool the fuzz builder draws from: a mix of
// widths, like the symbolic machine state (8-bit descriptor bytes through
// 64-bit MSRs).
var fuzzVars = []struct {
	name string
	w    uint8
}{
	{"a8", 8}, {"b16", 16}, {"c32", 32}, {"d64", 64}, {"e1", 1}, {"f32", 32},
}

// fuzzEnvs are the concrete environments the property is checked under:
// corners plus bit patterns that stress carries, sign bits, and shifts.
var fuzzEnvs = []map[string]uint64{
	{},
	{"a8": 0xff, "b16": 0xffff, "c32": 0xffffffff, "d64": ^uint64(0), "e1": 1, "f32": 0xffffffff},
	{"a8": 0x80, "b16": 0x8000, "c32": 0x80000000, "d64": 1 << 63, "e1": 1, "f32": 1},
	{"a8": 0x2a, "b16": 0x1234, "c32": 0xdeadbeef, "d64": 0x0123456789abcdef, "e1": 0, "f32": 7},
	{"a8": 1, "b16": 2, "c32": 3, "d64": 4, "e1": 1, "f32": 0x55555555},
}

// coerce aligns x to width w the way the fuzz builder needs: widen with
// ZExt, narrow with Extract.
func coerce(x *Expr, w uint8) *Expr {
	if x.Width < w {
		return ZExt(x, w)
	}
	if x.Width > w {
		return Extract(x, 0, w)
	}
	return x
}

// buildTerm interprets the fuzz input as a stack-machine program over the
// expression constructors. Every constructor precondition (width equality,
// extract ranges, 64-bit concat limit) is satisfied by construction, so any
// panic is a real simplifier bug, and the term that comes back has passed
// through every rewrite rule the constructors implement.
func buildTerm(data []byte) *Expr {
	stack := []*Expr{Var(32, "c32")}
	pop := func() *Expr {
		e := stack[len(stack)-1]
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
		return e
	}
	push := func(e *Expr) {
		if len(stack) < 64 {
			stack = append(stack, e)
		} else {
			stack[len(stack)-1] = e
		}
	}
	next := func(i *int) byte {
		if *i >= len(data) {
			return 0
		}
		b := data[*i]
		*i++
		return b
	}
	for i := 0; i < len(data); {
		op := next(&i)
		switch op % 24 {
		case 0:
			v := fuzzVars[int(next(&i))%len(fuzzVars)]
			push(Var(v.w, v.name))
		case 1:
			w := 1 + next(&i)%64
			v := uint64(next(&i)) | uint64(next(&i))<<8 | uint64(next(&i))<<32
			push(Const(w, v))
		case 2:
			push(Not(pop()))
		case 3:
			push(Neg(pop()))
		case 4:
			b, a := pop(), pop()
			push(And(a, coerce(b, a.Width)))
		case 5:
			b, a := pop(), pop()
			push(Or(a, coerce(b, a.Width)))
		case 6:
			b, a := pop(), pop()
			push(Xor(a, coerce(b, a.Width)))
		case 7:
			b, a := pop(), pop()
			push(Add(a, coerce(b, a.Width)))
		case 8:
			b, a := pop(), pop()
			push(Sub(a, coerce(b, a.Width)))
		case 9:
			b, a := pop(), pop()
			push(Mul(a, coerce(b, a.Width)))
		case 10:
			b, a := pop(), pop()
			push(UDiv(a, coerce(b, a.Width)))
		case 11:
			b, a := pop(), pop()
			push(URem(a, coerce(b, a.Width)))
		case 12:
			b, a := pop(), pop()
			push(Shl(a, coerce(b, a.Width)))
		case 13:
			b, a := pop(), pop()
			push(LShr(a, coerce(b, a.Width)))
		case 14:
			b, a := pop(), pop()
			push(AShr(a, coerce(b, a.Width)))
		case 15:
			b, a := pop(), pop()
			push(Eq(a, coerce(b, a.Width)))
		case 16:
			b, a := pop(), pop()
			push(Ult(a, coerce(b, a.Width)))
		case 17:
			b, a := pop(), pop()
			push(Slt(a, coerce(b, a.Width)))
		case 18:
			b, a := pop(), pop()
			push(Ule(a, coerce(b, a.Width)))
		case 19:
			f, tv, c := pop(), pop(), pop()
			push(Ite(coerce(c, 1), tv, coerce(f, tv.Width)))
		case 20:
			a := pop()
			lo := next(&i) % a.Width
			w := 1 + next(&i)%(a.Width-lo)
			push(Extract(a, lo, w))
		case 21:
			lo, hi := pop(), pop()
			if hi.Width >= 64 {
				hi = coerce(hi, 32)
			}
			if int(hi.Width)+int(lo.Width) > 64 {
				lo = coerce(lo, 64-hi.Width)
			}
			push(Concat(hi, lo))
		case 22:
			a := pop()
			if a.Width < 64 {
				w := a.Width + 1 + next(&i)%(64-a.Width)
				push(ZExt(a, w))
			}
		case 23:
			a := pop()
			if a.Width < 64 {
				w := a.Width + 1 + next(&i)%(64-a.Width)
				push(SExt(a, w))
			}
		}
	}
	return stack[len(stack)-1]
}

// FuzzExprSimplify is the simplifier's soundness fuzzer. It builds a random
// term through the simplifying constructors, then checks on each concrete
// environment that (1) evaluation respects the term's width and (2)
// substituting the environment's values as constants — which re-runs every
// constructor's folding rules over the whole term — evaluates to exactly
// the same value. Any rewrite that changes a term's meaning shows up as a
// mismatch between the two evaluation routes.
func FuzzExprSimplify(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 7})                                  // a8 + c32
	f.Add([]byte{1, 32, 0xff, 0xee, 0xdd, 0, 3, 9})         // const * var
	f.Add([]byte{0, 3, 0, 3, 15, 0, 0, 0, 1, 19})           // ite(d64==d64, ...)
	f.Add([]byte{0, 2, 20, 8, 8, 0, 2, 20, 0, 8, 21})       // concat of extracts
	f.Add([]byte{0, 1, 22, 30, 20, 2, 16, 1, 5, 1, 12, 14}) // zext/extract/shifts
	f.Add([]byte{0, 0, 3, 2, 0, 0, 10, 0, 1, 11, 6, 18, 17, 23, 9, 4, 13})

	f.Fuzz(func(t *testing.T, data []byte) {
		term := buildTerm(data)
		if term.Width == 0 || term.Width > 64 {
			t.Fatalf("term has invalid width %d", term.Width)
		}
		for _, env := range fuzzEnvs {
			direct := Eval(term, env)
			if direct&^Mask(term.Width) != 0 {
				t.Fatalf("Eval overflows width %d: %#x\nterm: %s", term.Width, direct, term)
			}
			if memoed := EvalMemo(term, env, map[*Expr]uint64{}); memoed != direct {
				t.Fatalf("EvalMemo disagrees with Eval: %#x vs %#x\nterm: %s\nenv: %v",
					memoed, direct, term, env)
			}
			sub := make(map[string]*Expr, len(fuzzVars))
			for _, v := range fuzzVars {
				sub[v.name] = Const(v.w, env[v.name])
			}
			folded := Substitute(term, sub)
			if !folded.IsConst() {
				t.Fatalf("total substitution did not fold to a constant: %s", folded)
			}
			if folded.Width != term.Width {
				t.Fatalf("substitution changed width %d → %d\nterm: %s", term.Width, folded.Width, term)
			}
			if refold := Eval(folded, nil); refold != direct {
				t.Fatalf("constructor folding changed the value: direct %#x, folded %#x\nterm: %s\nenv: %v",
					direct, refold, term, env)
			}
		}
	})
}
