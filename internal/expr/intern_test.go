package expr

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternSharing checks the core hash-consing property: structurally
// equal terms built independently are the same pointer, and the canonical
// 1-bit constants are the interned ones.
func TestInternSharing(t *testing.T) {
	if Const(1, 1) != One || Const(1, 0) != Zero {
		t.Fatal("Const(1,x) does not return the canonical One/Zero pointers")
	}
	a1 := Add(Var(32, "x"), Const(32, 7))
	a2 := Add(Var(32, "x"), Const(32, 7))
	if a1 != a2 {
		t.Fatalf("structurally equal terms not shared: %p vs %p", a1, a2)
	}
	if !structEq(a1, a2) {
		t.Fatal("shared terms must be structurally equal")
	}
	// Different terms must stay distinct.
	if Add(Var(32, "x"), Const(32, 8)) == a1 {
		t.Fatal("distinct terms interned to the same pointer")
	}
	// Deep sharing: the whole spine of a rebuilt term is shared.
	f := func() *Expr {
		return Ite(Eq(Var(8, "b"), Const(8, 3)),
			Mul(Var(8, "b"), Const(8, 5)),
			Not(Var(8, "b")))
	}
	if f() != f() {
		t.Fatal("nested construction not shared")
	}
}

// TestInternBounded asserts the table cannot grow without bound: flooding
// it with distinct constants triggers epoch resets and the live size stays
// under the configured cap. This is the regression test for the unbounded
// solver/expr cache growth bug.
func TestInternBounded(t *testing.T) {
	_, _, resets0 := InternStats()
	n := internShards*internShardCap + internShards*internShardCap/2
	for i := 0; i < n; i++ {
		Const(64, uint64(i)|1<<40)
	}
	if sz, max := InternSize(), internShards*internShardCap; sz > max {
		t.Fatalf("intern table exceeded its bound: %d > %d", sz, max)
	}
	if _, _, resets := InternStats(); resets == resets0 {
		t.Fatalf("flooding %d distinct terms triggered no epoch reset", n)
	}
	// Terms from before a reset are still usable and still compare equal
	// structurally even if a fresh build gets a new pointer.
	old := Const(64, 1<<40)
	if old.Val != 1<<40 || !structEq(old, Const(64, 1<<40)) {
		t.Fatal("post-reset rebuild is not structurally equal")
	}
}

// TestInternParallel hammers the table from many goroutines; run under
// -race this checks the sharded locking, and the final identity check
// verifies cross-goroutine sharing.
func TestInternParallel(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]*Expr, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var last *Expr
			for i := 0; i < 2000; i++ {
				v := Var(16, fmt.Sprintf("p%d", i%7))
				last = Xor(Add(v, Const(16, uint64(i%13))), LShr(v, Const(16, 3)))
			}
			results[g] = last
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d built a distinct pointer for an identical term", g)
		}
	}
}
