// Package expr implements fixed-width bit-vector expressions, the term
// language shared by the symbolic execution engine and the solver.
//
// Terms are immutable. Constructors simplify eagerly (constant folding and
// algebraic identities), in the style of FuzzBALL's expression layer, so that
// the common case — mostly-concrete computation over a few symbolic bits —
// stays small before it ever reaches the decision procedure.
//
// Widths range from 1 to 64 bits. Comparison operators produce 1-bit terms.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Op identifies the operator at the root of a term.
type Op uint8

// Operators. Binary arithmetic is modular in the operand width. Division by
// zero follows SMT-LIB bit-vector semantics (udiv → all-ones, urem → dividend).
const (
	OpConst Op = iota // literal value
	OpVar             // free variable
	OpNot             // bitwise complement
	OpNeg             // two's-complement negation
	OpAnd
	OpOr
	OpXor
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpShl  // shift left; shift amount is an unsigned value of any width
	OpLShr // logical shift right
	OpAShr // arithmetic shift right
	OpEq   // equality, 1-bit result
	OpUlt  // unsigned less-than, 1-bit result
	OpSlt  // signed less-than, 1-bit result
	OpIte  // if-then-else; condition is 1 bit wide
	OpExtract
	OpConcat // Kids[0] is the high part, Kids[1] the low part
	OpZExt
	OpSExt
)

var opNames = map[Op]string{
	OpConst: "const", OpVar: "var", OpNot: "not", OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpUDiv: "udiv", OpURem: "urem",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpEq: "eq", OpUlt: "ult", OpSlt: "slt", OpIte: "ite",
	OpExtract: "extract", OpConcat: "concat", OpZExt: "zext", OpSExt: "sext",
}

func (o Op) String() string { return opNames[o] }

// Expr is a bit-vector term. Do not mutate an Expr after construction;
// subterms are shared freely.
type Expr struct {
	Op    Op
	Width uint8 // result width in bits, 1..64
	Val   uint64
	Name  string // variable name for OpVar
	Lo    uint8  // low bit index for OpExtract
	Kids  []*Expr
}

// Mask returns the bit mask selecting w low bits.
func Mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

func checkWidth(w uint8) {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("expr: invalid width %d", w))
	}
}

// Const builds a literal of width w; the value is truncated to w bits.
func Const(w uint8, v uint64) *Expr {
	checkWidth(w)
	return intern0(OpConst, w, v&Mask(w), "")
}

// Bool converts a Go bool to the canonical 1-bit constants.
func Bool(b bool) *Expr {
	if b {
		return One
	}
	return Zero
}

// One and Zero are the 1-bit true/false constants.
var (
	One  = &Expr{Op: OpConst, Width: 1, Val: 1}
	Zero = &Expr{Op: OpConst, Width: 1, Val: 0}
)

// Var builds a free variable of width w.
func Var(w uint8, name string) *Expr {
	checkWidth(w)
	return intern0(OpVar, w, 0, name)
}

// IsConst reports whether e is a literal.
func (e *Expr) IsConst() bool { return e.Op == OpConst }

// ConstVal returns the literal value; it panics if e is not a literal.
func (e *Expr) ConstVal() uint64 {
	if e.Op != OpConst {
		panic("expr: ConstVal on non-constant " + e.String())
	}
	return e.Val
}

// IsTrue reports whether e is the 1-bit constant 1.
func (e *Expr) IsTrue() bool { return e.Op == OpConst && e.Width == 1 && e.Val == 1 }

// IsFalse reports whether e is the 1-bit constant 0.
func (e *Expr) IsFalse() bool { return e.Op == OpConst && e.Width == 1 && e.Val == 0 }

func signExt(v uint64, w uint8) uint64 {
	if w >= 64 {
		return v
	}
	if v&(uint64(1)<<(w-1)) != 0 {
		return v | ^Mask(w)
	}
	return v
}

func sameWidth(a, b *Expr, op string) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("expr: %s width mismatch %d vs %d", op, a.Width, b.Width))
	}
}

// structEq is a cheap structural equality used by the simplifier. It is sound
// but incomplete: false only means "not obviously identical".
func structEq(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a.Op != b.Op || a.Width != b.Width || a.Val != b.Val ||
		a.Name != b.Name || a.Lo != b.Lo || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !structEq(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// Not builds bitwise complement.
func Not(a *Expr) *Expr {
	if a.IsConst() {
		return Const(a.Width, ^a.Val)
	}
	if a.Op == OpNot {
		return a.Kids[0]
	}
	return intern1(OpNot, a.Width, 0, a)
}

// Neg builds two's-complement negation.
func Neg(a *Expr) *Expr {
	if a.IsConst() {
		return Const(a.Width, -a.Val)
	}
	if a.Op == OpNeg {
		return a.Kids[0]
	}
	return intern1(OpNeg, a.Width, 0, a)
}

// And builds bitwise conjunction.
func And(a, b *Expr) *Expr {
	sameWidth(a, b, "and")
	if a.IsConst() && b.IsConst() {
		return Const(a.Width, a.Val&b.Val)
	}
	// Canonicalize the constant to the left.
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() {
		if a.Val == 0 {
			return Const(a.Width, 0)
		}
		if a.Val == Mask(a.Width) {
			return b
		}
	}
	if structEq(a, b) {
		return a
	}
	return intern2(OpAnd, a.Width, a, b)
}

// Or builds bitwise disjunction.
func Or(a, b *Expr) *Expr {
	sameWidth(a, b, "or")
	if a.IsConst() && b.IsConst() {
		return Const(a.Width, a.Val|b.Val)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() {
		if a.Val == 0 {
			return b
		}
		if a.Val == Mask(a.Width) {
			return Const(a.Width, Mask(a.Width))
		}
	}
	if structEq(a, b) {
		return a
	}
	return intern2(OpOr, a.Width, a, b)
}

// Xor builds bitwise exclusive-or.
func Xor(a, b *Expr) *Expr {
	sameWidth(a, b, "xor")
	if a.IsConst() && b.IsConst() {
		return Const(a.Width, a.Val^b.Val)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() {
		if a.Val == 0 {
			return b
		}
		if a.Val == Mask(a.Width) {
			return Not(b)
		}
	}
	if structEq(a, b) {
		return Const(a.Width, 0)
	}
	return intern2(OpXor, a.Width, a, b)
}

// Add builds modular addition.
func Add(a, b *Expr) *Expr {
	sameWidth(a, b, "add")
	if a.IsConst() && b.IsConst() {
		return Const(a.Width, a.Val+b.Val)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() && a.Val == 0 {
		return b
	}
	// (x + c1) + c2 → x + (c1+c2)
	if a.IsConst() && b.Op == OpAdd && b.Kids[0].IsConst() {
		return Add(Const(a.Width, a.Val+b.Kids[0].Val), b.Kids[1])
	}
	return intern2(OpAdd, a.Width, a, b)
}

// Sub builds modular subtraction.
func Sub(a, b *Expr) *Expr {
	sameWidth(a, b, "sub")
	if a.IsConst() && b.IsConst() {
		return Const(a.Width, a.Val-b.Val)
	}
	if b.IsConst() {
		if b.Val == 0 {
			return a
		}
		return Add(Const(a.Width, -b.Val), a)
	}
	if structEq(a, b) {
		return Const(a.Width, 0)
	}
	return intern2(OpSub, a.Width, a, b)
}

// Mul builds modular multiplication.
func Mul(a, b *Expr) *Expr {
	sameWidth(a, b, "mul")
	if a.IsConst() && b.IsConst() {
		return Const(a.Width, a.Val*b.Val)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() {
		switch a.Val {
		case 0:
			return Const(a.Width, 0)
		case 1:
			return b
		}
	}
	return intern2(OpMul, a.Width, a, b)
}

// UDiv builds unsigned division (x/0 = all-ones, per SMT-LIB).
func UDiv(a, b *Expr) *Expr {
	sameWidth(a, b, "udiv")
	if a.IsConst() && b.IsConst() {
		if b.Val == 0 {
			return Const(a.Width, Mask(a.Width))
		}
		return Const(a.Width, a.Val/b.Val)
	}
	if b.IsConst() && b.Val == 1 {
		return a
	}
	return intern2(OpUDiv, a.Width, a, b)
}

// URem builds unsigned remainder (x%0 = x, per SMT-LIB).
func URem(a, b *Expr) *Expr {
	sameWidth(a, b, "urem")
	if a.IsConst() && b.IsConst() {
		if b.Val == 0 {
			return a
		}
		return Const(a.Width, a.Val%b.Val)
	}
	if b.IsConst() && b.Val == 1 {
		return Const(a.Width, 0)
	}
	return intern2(OpURem, a.Width, a, b)
}

func shiftAmount(b *Expr) (uint64, bool) {
	if b.IsConst() {
		return b.Val, true
	}
	return 0, false
}

// Shl builds a left shift. The shift amount may have any width; amounts at or
// beyond the operand width yield zero.
func Shl(a, b *Expr) *Expr {
	if n, ok := shiftAmount(b); ok {
		if a.IsConst() {
			if n >= uint64(a.Width) {
				return Const(a.Width, 0)
			}
			return Const(a.Width, a.Val<<n)
		}
		if n == 0 {
			return a
		}
		if n >= uint64(a.Width) {
			return Const(a.Width, 0)
		}
	}
	return intern2(OpShl, a.Width, a, b)
}

// LShr builds a logical right shift.
func LShr(a, b *Expr) *Expr {
	if n, ok := shiftAmount(b); ok {
		if a.IsConst() {
			if n >= uint64(a.Width) {
				return Const(a.Width, 0)
			}
			return Const(a.Width, (a.Val&Mask(a.Width))>>n)
		}
		if n == 0 {
			return a
		}
		if n >= uint64(a.Width) {
			return Const(a.Width, 0)
		}
	}
	return intern2(OpLShr, a.Width, a, b)
}

// AShr builds an arithmetic right shift.
func AShr(a, b *Expr) *Expr {
	if n, ok := shiftAmount(b); ok {
		if a.IsConst() {
			s := signExt(a.Val, a.Width)
			if n >= uint64(a.Width) {
				n = uint64(a.Width) - 1
			}
			return Const(a.Width, uint64(int64(s)>>n))
		}
		if n == 0 {
			return a
		}
	}
	return intern2(OpAShr, a.Width, a, b)
}

// Eq builds an equality test with a 1-bit result.
func Eq(a, b *Expr) *Expr {
	sameWidth(a, b, "eq")
	if a.IsConst() && b.IsConst() {
		return Bool(a.Val == b.Val)
	}
	if structEq(a, b) {
		return One
	}
	if b.IsConst() {
		a, b = b, a
	}
	// For 1-bit terms, eq(1,x) = x and eq(0,x) = not x.
	if a.IsConst() && a.Width == 1 {
		if a.Val == 1 {
			return b
		}
		return Not(b)
	}
	return intern2(OpEq, 1, a, b)
}

// Ne builds an inequality test with a 1-bit result.
func Ne(a, b *Expr) *Expr { return Not(Eq(a, b)) }

// Ult builds an unsigned less-than test.
func Ult(a, b *Expr) *Expr {
	sameWidth(a, b, "ult")
	if a.IsConst() && b.IsConst() {
		return Bool(a.Val < b.Val)
	}
	if structEq(a, b) {
		return Zero
	}
	if b.IsConst() && b.Val == 0 {
		return Zero
	}
	if a.IsConst() && a.Val == Mask(a.Width) {
		return Zero
	}
	return intern2(OpUlt, 1, a, b)
}

// Ule builds an unsigned less-or-equal test.
func Ule(a, b *Expr) *Expr { return Not(Ult(b, a)) }

// Ugt builds an unsigned greater-than test.
func Ugt(a, b *Expr) *Expr { return Ult(b, a) }

// Slt builds a signed less-than test.
func Slt(a, b *Expr) *Expr {
	sameWidth(a, b, "slt")
	if a.IsConst() && b.IsConst() {
		return Bool(int64(signExt(a.Val, a.Width)) < int64(signExt(b.Val, b.Width)))
	}
	if structEq(a, b) {
		return Zero
	}
	return intern2(OpSlt, 1, a, b)
}

// Sle builds a signed less-or-equal test.
func Sle(a, b *Expr) *Expr { return Not(Slt(b, a)) }

// Ite builds if-then-else; cond must be 1 bit wide.
func Ite(cond, t, f *Expr) *Expr {
	if cond.Width != 1 {
		panic("expr: ite condition must be 1 bit")
	}
	sameWidth(t, f, "ite")
	if cond.IsConst() {
		if cond.Val == 1 {
			return t
		}
		return f
	}
	if structEq(t, f) {
		return t
	}
	// ite(c, 1, 0) = c and ite(c, 0, 1) = not c for 1-bit arms.
	if t.Width == 1 && t.IsConst() && f.IsConst() {
		if t.Val == 1 && f.Val == 0 {
			return cond
		}
		if t.Val == 0 && f.Val == 1 {
			return Not(cond)
		}
	}
	return intern3(OpIte, t.Width, cond, t, f)
}

// Extract selects bits [lo, lo+w-1] of a.
func Extract(a *Expr, lo, w uint8) *Expr {
	checkWidth(w)
	if uint16(lo)+uint16(w) > uint16(a.Width) {
		panic(fmt.Sprintf("expr: extract [%d:%d] out of range for width %d", lo, lo+w-1, a.Width))
	}
	if lo == 0 && w == a.Width {
		return a
	}
	if a.IsConst() {
		return Const(w, a.Val>>lo)
	}
	switch a.Op {
	case OpExtract:
		return Extract(a.Kids[0], a.Lo+lo, w)
	case OpConcat:
		lw := a.Kids[1].Width
		if lo+w <= lw {
			return Extract(a.Kids[1], lo, w)
		}
		if lo >= lw {
			return Extract(a.Kids[0], lo-lw, w)
		}
	case OpZExt:
		iw := a.Kids[0].Width
		if lo+w <= iw {
			return Extract(a.Kids[0], lo, w)
		}
		if lo >= iw {
			return Const(w, 0)
		}
	}
	return intern1(OpExtract, w, lo, a)
}

// Concat joins hi (upper bits) and lo (lower bits).
func Concat(hi, lo *Expr) *Expr {
	w := uint16(hi.Width) + uint16(lo.Width)
	if w > 64 {
		panic("expr: concat result wider than 64 bits")
	}
	if hi.IsConst() && lo.IsConst() {
		return Const(uint8(w), hi.Val<<lo.Width|lo.Val)
	}
	if hi.IsConst() && hi.Val == 0 {
		return ZExt(lo, uint8(w))
	}
	// concat(extract(x, k+n, m), extract(x, k, n)) = extract(x, k, n+m)
	if hi.Op == OpExtract && lo.Op == OpExtract && hi.Kids[0] == lo.Kids[0] &&
		hi.Lo == lo.Lo+lo.Width {
		return Extract(hi.Kids[0], lo.Lo, uint8(w))
	}
	return intern2(OpConcat, uint8(w), hi, lo)
}

// ZExt zero-extends a to width w.
func ZExt(a *Expr, w uint8) *Expr {
	checkWidth(w)
	if w < a.Width {
		panic("expr: zext narrows")
	}
	if w == a.Width {
		return a
	}
	if a.IsConst() {
		return Const(w, a.Val)
	}
	if a.Op == OpZExt {
		return ZExt(a.Kids[0], w)
	}
	return intern1(OpZExt, w, 0, a)
}

// SExt sign-extends a to width w.
func SExt(a *Expr, w uint8) *Expr {
	checkWidth(w)
	if w < a.Width {
		panic("expr: sext narrows")
	}
	if w == a.Width {
		return a
	}
	if a.IsConst() {
		return Const(w, signExt(a.Val, a.Width))
	}
	return intern1(OpSExt, w, 0, a)
}

// String renders the term in a compact s-expression form.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.Op {
	case OpConst:
		fmt.Fprintf(b, "0x%x:%d", e.Val, e.Width)
	case OpVar:
		fmt.Fprintf(b, "%s:%d", e.Name, e.Width)
	case OpExtract:
		fmt.Fprintf(b, "(extract %d %d ", e.Lo, e.Lo+e.Width-1)
		e.Kids[0].write(b)
		b.WriteByte(')')
	case OpZExt, OpSExt:
		fmt.Fprintf(b, "(%s %d ", e.Op, e.Width)
		e.Kids[0].write(b)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(e.Op.String())
		for _, k := range e.Kids {
			b.WriteByte(' ')
			k.write(b)
		}
		b.WriteByte(')')
	}
}

// Eval evaluates e under the variable assignment env. Missing variables
// evaluate to zero. The result is masked to e's width.
func Eval(e *Expr, env map[string]uint64) uint64 {
	switch e.Op {
	case OpConst:
		return e.Val
	case OpVar:
		return env[e.Name] & Mask(e.Width)
	}
	return evalNode(e, func(i int) uint64 { return Eval(e.Kids[i], env) })
}

// evalNode applies one operator given an evaluator for its children —
// shared by the plain recursive Eval and the DAG-memoized EvalMemo.
func evalNode(e *Expr, k func(int) uint64) uint64 {
	m := Mask(e.Width)
	switch e.Op {
	case OpNot:
		return ^k(0) & m
	case OpNeg:
		return -k(0) & m
	case OpAnd:
		return k(0) & k(1)
	case OpOr:
		return k(0) | k(1)
	case OpXor:
		return k(0) ^ k(1)
	case OpAdd:
		return (k(0) + k(1)) & m
	case OpSub:
		return (k(0) - k(1)) & m
	case OpMul:
		return (k(0) * k(1)) & m
	case OpUDiv:
		d := k(1)
		if d == 0 {
			return m
		}
		return k(0) / d
	case OpURem:
		a, d := k(0), k(1)
		if d == 0 {
			return a
		}
		return a % d
	case OpShl:
		n := k(1)
		if n >= uint64(e.Width) {
			return 0
		}
		return k(0) << n & m
	case OpLShr:
		n := k(1)
		if n >= uint64(e.Width) {
			return 0
		}
		return k(0) >> n
	case OpAShr:
		n := k(1)
		if n >= uint64(e.Width) {
			n = uint64(e.Width) - 1
		}
		return uint64(int64(signExt(k(0), e.Width))>>n) & m
	case OpEq:
		if k(0) == k(1) {
			return 1
		}
		return 0
	case OpUlt:
		if k(0) < k(1) {
			return 1
		}
		return 0
	case OpSlt:
		w := e.Kids[0].Width
		if int64(signExt(k(0), w)) < int64(signExt(k(1), w)) {
			return 1
		}
		return 0
	case OpIte:
		if k(0) == 1 {
			return k(1)
		}
		return k(2)
	case OpExtract:
		return k(0) >> e.Lo & m
	case OpConcat:
		return (k(0)<<e.Kids[1].Width | k(1)) & m
	case OpZExt:
		return k(0)
	case OpSExt:
		return signExt(k(0), e.Kids[0].Width) & m
	default:
		panic("expr: eval of unknown op")
	}
}

// EvalMemo is Eval with a caller-provided memo table keyed by node
// identity, so shared subterms of a hash-consed DAG evaluate once instead
// of once per reachable path. The memo is valid for exactly one env;
// callers must clear it whenever the assignment changes.
func EvalMemo(e *Expr, env map[string]uint64, memo map[*Expr]uint64) uint64 {
	if e.Op == OpConst {
		return e.Val
	}
	if v, ok := memo[e]; ok {
		return v
	}
	var v uint64
	if e.Op == OpVar {
		v = env[e.Name] & Mask(e.Width)
	} else {
		v = evalNode(e, func(i int) uint64 { return EvalMemo(e.Kids[i], env, memo) })
	}
	memo[e] = v
	return v
}

// CollectVars appends the names of all free variables in e to set.
func CollectVars(e *Expr, set map[string]uint8) {
	if e.Op == OpVar {
		set[e.Name] = e.Width
		return
	}
	for _, k := range e.Kids {
		CollectVars(k, set)
	}
}

// Vars returns the sorted names of all free variables in e.
func Vars(e *Expr) []string {
	set := make(map[string]uint8)
	CollectVars(e, set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Substitute replaces every variable named in sub with its replacement term
// (which must have the variable's width), rebuilding and re-simplifying the
// term bottom-up. Variables not in sub are kept.
func Substitute(e *Expr, sub map[string]*Expr) *Expr {
	switch e.Op {
	case OpConst:
		return e
	case OpVar:
		if r, ok := sub[e.Name]; ok {
			if r.Width != e.Width {
				panic("expr: substitute width mismatch for " + e.Name)
			}
			return r
		}
		return e
	}
	kids := make([]*Expr, len(e.Kids))
	changed := false
	for i, k := range e.Kids {
		kids[i] = Substitute(k, sub)
		if kids[i] != k {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return rebuild(e, kids)
}

func rebuild(e *Expr, kids []*Expr) *Expr {
	switch e.Op {
	case OpNot:
		return Not(kids[0])
	case OpNeg:
		return Neg(kids[0])
	case OpAnd:
		return And(kids[0], kids[1])
	case OpOr:
		return Or(kids[0], kids[1])
	case OpXor:
		return Xor(kids[0], kids[1])
	case OpAdd:
		return Add(kids[0], kids[1])
	case OpSub:
		return Sub(kids[0], kids[1])
	case OpMul:
		return Mul(kids[0], kids[1])
	case OpUDiv:
		return UDiv(kids[0], kids[1])
	case OpURem:
		return URem(kids[0], kids[1])
	case OpShl:
		return Shl(kids[0], kids[1])
	case OpLShr:
		return LShr(kids[0], kids[1])
	case OpAShr:
		return AShr(kids[0], kids[1])
	case OpEq:
		return Eq(kids[0], kids[1])
	case OpUlt:
		return Ult(kids[0], kids[1])
	case OpSlt:
		return Slt(kids[0], kids[1])
	case OpIte:
		return Ite(kids[0], kids[1], kids[2])
	case OpExtract:
		return Extract(kids[0], e.Lo, e.Width)
	case OpConcat:
		return Concat(kids[0], kids[1])
	case OpZExt:
		return ZExt(kids[0], e.Width)
	case OpSExt:
		return SExt(kids[0], e.Width)
	default:
		panic("expr: rebuild of unknown op")
	}
}

// Size returns the number of nodes in the term DAG counted as a tree.
func Size(e *Expr) int {
	n := 1
	for _, k := range e.Kids {
		n += Size(k)
	}
	return n
}
