package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstTruncation(t *testing.T) {
	if got := Const(8, 0x1ff).Val; got != 0xff {
		t.Errorf("Const(8, 0x1ff) = %#x, want 0xff", got)
	}
	if got := Const(64, ^uint64(0)).Val; got != ^uint64(0) {
		t.Errorf("Const(64, all-ones) = %#x", got)
	}
	if got := Const(1, 3).Val; got != 1 {
		t.Errorf("Const(1, 3) = %d, want 1", got)
	}
}

func TestSimplifyIdentities(t *testing.T) {
	x := Var(32, "x")
	zero := Const(32, 0)
	ones := Const(32, Mask(32))
	cases := []struct {
		name string
		got  *Expr
		want *Expr
	}{
		{"add0", Add(x, zero), x},
		{"add0l", Add(zero, x), x},
		{"sub0", Sub(x, zero), x},
		{"subself", Sub(x, x), zero},
		{"and0", And(x, zero), zero},
		{"andones", And(x, ones), x},
		{"andself", And(x, x), x},
		{"or0", Or(x, zero), x},
		{"orones", Or(x, ones), ones},
		{"orself", Or(x, x), x},
		{"xor0", Xor(x, zero), x},
		{"xorself", Xor(x, x), zero},
		{"mul1", Mul(x, Const(32, 1)), x},
		{"mul0", Mul(x, zero), zero},
		{"notnot", Not(Not(x)), x},
		{"negneg", Neg(Neg(x)), x},
		{"shl0", Shl(x, Const(8, 0)), x},
		{"shlwide", Shl(x, Const(8, 40)), zero},
		{"lshrwide", LShr(x, Const(8, 32)), zero},
		{"extractfull", Extract(x, 0, 32), x},
		{"zextsame", ZExt(x, 32), x},
		{"iteconst", Ite(One, x, zero), x},
		{"itesame", Ite(Var(1, "c"), x, x), x},
		{"udiv1", UDiv(x, Const(32, 1)), x},
	}
	for _, c := range cases {
		if !structEq(c.got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestEqSimplify(t *testing.T) {
	x := Var(32, "x")
	if !Eq(x, x).IsTrue() {
		t.Error("eq(x,x) should be true")
	}
	c := Var(1, "c")
	if got := Eq(One, c); got != c {
		t.Errorf("eq(1,c) = %v, want c", got)
	}
	if got := Eq(Zero, c); got.Op != OpNot {
		t.Errorf("eq(0,c) = %v, want not c", got)
	}
}

func TestIteBooleanForms(t *testing.T) {
	c := Var(1, "c")
	if got := Ite(c, One, Zero); got != c {
		t.Errorf("ite(c,1,0) = %v, want c", got)
	}
	if got := Ite(c, Zero, One); got.Op != OpNot || got.Kids[0] != c {
		t.Errorf("ite(c,0,1) = %v, want not c", got)
	}
}

func TestExtractComposition(t *testing.T) {
	x := Var(32, "x")
	e := Extract(Extract(x, 8, 16), 4, 8)
	if e.Op != OpExtract || e.Lo != 12 || e.Width != 8 || e.Kids[0] != x {
		t.Errorf("nested extract not flattened: %v", e)
	}
	// Extract over concat routes to the correct side.
	hi := Var(16, "h")
	lo := Var(16, "l")
	cc := Concat(hi, lo)
	if got := Extract(cc, 0, 16); got != lo {
		t.Errorf("extract low of concat = %v, want l", got)
	}
	if got := Extract(cc, 16, 16); got != hi {
		t.Errorf("extract high of concat = %v, want h", got)
	}
	// Extract over zext of the high zero region folds to 0.
	z := ZExt(Var(8, "b"), 32)
	if got := Extract(z, 16, 8); !got.IsConst() || got.Val != 0 {
		t.Errorf("extract of zext padding = %v, want 0", got)
	}
}

func TestConcatOfAdjacentExtracts(t *testing.T) {
	x := Var(32, "x")
	e := Concat(Extract(x, 16, 16), Extract(x, 0, 16))
	if e != x {
		t.Errorf("concat of adjacent extracts = %v, want x", e)
	}
}

func TestEvalBasics(t *testing.T) {
	env := map[string]uint64{"x": 0xfffffff0, "y": 0x20}
	x, y := Var(32, "x"), Var(32, "y")
	cases := []struct {
		e    *Expr
		want uint64
	}{
		{Add(x, y), 0x10},
		{Sub(y, x), 0x30},
		{Mul(y, Const(32, 3)), 0x60},
		{Ult(x, y), 0},
		{Slt(x, y), 1},
		{AShr(x, Const(8, 4)), 0xffffffff},
		{LShr(x, Const(8, 4)), 0x0fffffff},
		{SExt(Extract(x, 0, 8), 32), 0xfffffff0},
		{UDiv(y, Const(32, 0)), 0xffffffff},
		{URem(y, Const(32, 0)), 0x20},
	}
	for i, c := range cases {
		if got := Eval(c.e, env); got != c.want {
			t.Errorf("case %d: Eval(%v) = %#x, want %#x", i, c.e, got, c.want)
		}
	}
}

// randomExpr builds a random well-formed term over variables a, b (width w).
func randomExpr(r *rand.Rand, depth int, w uint8) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return Const(w, r.Uint64())
		case 1:
			return Var(w, "a")
		default:
			return Var(w, "b")
		}
	}
	sub := func() *Expr { return randomExpr(r, depth-1, w) }
	switch r.Intn(14) {
	case 0:
		return Add(sub(), sub())
	case 1:
		return Sub(sub(), sub())
	case 2:
		return Mul(sub(), sub())
	case 3:
		return And(sub(), sub())
	case 4:
		return Or(sub(), sub())
	case 5:
		return Xor(sub(), sub())
	case 6:
		return Not(sub())
	case 7:
		return Neg(sub())
	case 8:
		return Shl(sub(), Const(8, uint64(r.Intn(int(w)+2))))
	case 9:
		return LShr(sub(), Const(8, uint64(r.Intn(int(w)+2))))
	case 10:
		return AShr(sub(), Const(8, uint64(r.Intn(int(w)))))
	case 11:
		return Ite(Eq(sub(), sub()), sub(), sub())
	case 12:
		lo := uint8(r.Intn(int(w)))
		ew := uint8(r.Intn(int(w-lo))) + 1
		return ZExt(Extract(sub(), lo, ew), w)
	default:
		return UDiv(sub(), sub())
	}
}

// TestSimplifierPreservesEval is the core soundness property: rebuilding a
// term through the simplifying constructors (via Substitute with fresh
// variables) never changes its concrete value.
func TestSimplifierPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		e := randomExpr(r, 4, 32)
		env := map[string]uint64{"a": r.Uint64(), "b": r.Uint64()}
		want := Eval(e, env)
		// Substituting a→a', b→b' forces a full rebuild through the
		// simplifying constructors.
		sub := map[string]*Expr{"a": Var(32, "a2"), "b": Var(32, "b2")}
		e2 := Substitute(e, sub)
		env2 := map[string]uint64{"a2": env["a"], "b2": env["b"]}
		if got := Eval(e2, env2); got != want {
			t.Fatalf("iter %d: simplified eval %#x != original %#x\norig: %v\nsimp: %v",
				i, got, want, e, e2)
		}
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b uint32) bool {
		env := map[string]uint64{"a": uint64(a), "b": uint64(b)}
		x, y := Var(32, "a"), Var(32, "b")
		return Eval(Add(x, y), env) == Eval(Add(y, x), env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubAddInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		env := map[string]uint64{"a": uint64(a), "b": uint64(b)}
		x, y := Var(32, "a"), Var(32, "b")
		return Eval(Add(Sub(x, y), y), env) == uint64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickConcatExtractRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		x := Const(32, uint64(v))
		e := Concat(Extract(x, 16, 16), Extract(x, 0, 16))
		return e.IsConst() && e.Val == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarsAndCollect(t *testing.T) {
	e := Add(Var(32, "z"), Mul(Var(32, "a"), Var(32, "z")))
	vars := Vars(e)
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "z" {
		t.Errorf("Vars = %v, want [a z]", vars)
	}
}

func TestSubstitute(t *testing.T) {
	x := Var(32, "x")
	e := Add(x, Const(32, 5))
	got := Substitute(e, map[string]*Expr{"x": Const(32, 10)})
	if !got.IsConst() || got.Val != 15 {
		t.Errorf("substitute+fold = %v, want 15", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on width mismatch")
		}
	}()
	Add(Var(32, "x"), Var(16, "y"))
}

func TestExtractOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range extract")
		}
	}()
	Extract(Var(16, "x"), 8, 16)
}

func TestStringRendering(t *testing.T) {
	e := Add(Var(32, "x"), Const(32, 1))
	if s := e.String(); s == "" {
		t.Error("empty string rendering")
	}
}

func TestSize(t *testing.T) {
	e := Add(Var(32, "x"), Mul(Var(32, "y"), Const(32, 3)))
	if Size(e) != 5 {
		t.Errorf("Size = %d, want 5", Size(e))
	}
}

func TestComparisonWrappers(t *testing.T) {
	env := map[string]uint64{"a": 5, "b": 9}
	a, b := Var(32, "a"), Var(32, "b")
	cases := []struct {
		e    *Expr
		want uint64
	}{
		{Ule(a, b), 1},
		{Ule(b, a), 0},
		{Ule(a, a), 1},
		{Ugt(b, a), 1},
		{Sle(a, b), 1},
		{Ne(a, b), 1},
		{Ne(a, a), 0},
	}
	for i, c := range cases {
		if got := Eval(c.e, env); got != c.want {
			t.Errorf("case %d: %v = %d, want %d", i, c.e, got, c.want)
		}
	}
}

func TestSignedComparisonAcrossWidths(t *testing.T) {
	// -1 (8-bit) < 0 signed, but > 0 unsigned.
	m1 := Const(8, 0xff)
	z := Const(8, 0)
	if !Slt(m1, z).IsTrue() {
		t.Error("-1 <s 0")
	}
	if !Ult(z, m1).IsTrue() {
		t.Error("0 <u 0xff")
	}
}

func TestAddConstantChainFolding(t *testing.T) {
	x := Var(32, "x")
	e := Add(Add(x, Const(32, 3)), Const(32, 4))
	// (x+3)+4 → x+7 via the constant-reassociation rule.
	if Size(e) != 3 {
		t.Errorf("chain not folded: %v (size %d)", e, Size(e))
	}
	if Eval(e, map[string]uint64{"x": 10}) != 17 {
		t.Error("folded value wrong")
	}
}
