package expr

import (
	"sync"
	"unsafe"
)

// Hash-consing intern table. Every constructor funnels its final allocation
// through intern0/intern1/intern2/intern3, so structurally equal terms built
// anywhere in the process share one *Expr. Pointer identity then makes the
// solver's per-pointer caches (bit-blasting, hashing) hit across paths and
// across handlers, and lets simplifier pointer compares (a == b) succeed
// where they used to fall back to deep structural walks.
//
// The table is sharded to keep parallel exploration workers off a single
// lock, and each shard is bounded: when a shard fills, it is reset (an
// "epoch" change). Terms from an older epoch stay valid — they simply stop
// being canonical, and later structurally-equal terms may get a distinct
// pointer. Every consumer tolerates that: the solver falls back to
// hash+structural equality, and the simplifier's structEq is pointer-equality
// plus a deep walk. Interning is therefore purely an optimization layer; it
// can drop entries at any time without affecting semantics.

// internKey identifies a term up to pointer identity of its children. Kids
// are already interned when the key is built, so comparing child pointers is
// exactly structural comparison of the subtrees (within an epoch).
type internKey struct {
	op         Op
	width, lo  uint8
	val        uint64
	name       string
	k0, k1, k2 *Expr
}

const (
	internShards   = 64
	internShardCap = 1 << 13 // entries per shard before an epoch reset
)

type internShard struct {
	mu     sync.Mutex
	m      map[internKey]*Expr
	hits   int64
	misses int64
	resets int64
}

var internTab [internShards]internShard

func init() {
	for i := range internTab {
		internTab[i].m = make(map[internKey]*Expr)
	}
	// Seed the canonical 1-bit constants so Const(1, x) returns the same
	// pointers the package-level One/Zero variables hold.
	seed := func(e *Expr) {
		k := internKey{op: OpConst, width: e.Width, val: e.Val}
		internTab[shardOf(&k)].m[k] = e
	}
	seed(One)
	seed(Zero)
}

// InternStats reports cumulative intern-table hits, misses, and epoch
// resets for the whole process.
func InternStats() (hits, misses, resets int64) {
	for i := range internTab {
		s := &internTab[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		resets += s.resets
		s.mu.Unlock()
	}
	return
}

// InternSize returns the current number of interned terms across all
// shards. It exists so tests can assert the table stays bounded.
func InternSize() int {
	n := 0
	for i := range internTab {
		s := &internTab[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// shardOf picks the shard for a key with an FNV-1a mix over the scalar
// fields and the child pointers. Go's heap is non-moving, so a term's
// pointer — and therefore its parents' shard — is stable for its lifetime.
func shardOf(k *internKey) uint32 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.op) | uint64(k.width)<<8 | uint64(k.lo)<<16)
	mix(k.val)
	for i := 0; i < len(k.name); i++ {
		mix(uint64(k.name[i]))
	}
	mix(uint64(uintptr(unsafe.Pointer(k.k0))))
	mix(uint64(uintptr(unsafe.Pointer(k.k1))))
	mix(uint64(uintptr(unsafe.Pointer(k.k2))))
	return uint32(h % internShards)
}

func internGet(k internKey, make_ func() *Expr) *Expr {
	s := &internTab[shardOf(&k)]
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.hits++
		s.mu.Unlock()
		return e
	}
	s.misses++
	if len(s.m) >= internShardCap {
		s.m = make(map[internKey]*Expr)
		s.resets++
	}
	e := make_()
	s.m[k] = e
	s.mu.Unlock()
	return e
}

// intern0 interns leaves (constants and variables).
func intern0(op Op, w uint8, val uint64, name string) *Expr {
	return internGet(internKey{op: op, width: w, val: val, name: name}, func() *Expr {
		return &Expr{Op: op, Width: w, Val: val, Name: name}
	})
}

// intern1 interns unary nodes; lo carries OpExtract's low bit index.
func intern1(op Op, w, lo uint8, k0 *Expr) *Expr {
	return internGet(internKey{op: op, width: w, lo: lo, k0: k0}, func() *Expr {
		return &Expr{Op: op, Width: w, Lo: lo, Kids: []*Expr{k0}}
	})
}

func intern2(op Op, w uint8, k0, k1 *Expr) *Expr {
	return internGet(internKey{op: op, width: w, k0: k0, k1: k1}, func() *Expr {
		return &Expr{Op: op, Width: w, Kids: []*Expr{k0, k1}}
	})
}

func intern3(op Op, w uint8, k0, k1, k2 *Expr) *Expr {
	return internGet(internKey{op: op, width: w, k0: k0, k1: k1, k2: k2}, func() *Expr {
		return &Expr{Op: op, Width: w, Kids: []*Expr{k0, k1, k2}}
	})
}
