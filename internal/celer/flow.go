package celer

import (
	"strings"

	"pokeemu/internal/x86"
)

func (e *Emulator) movGeneric(inst *x86.Inst, form string, osz uint8) *fault {
	i := strings.IndexByte(form, '_')
	dstTok, srcTok := form[:i], form[i+1:]
	w := osz
	if strings.HasSuffix(dstTok, "8") || srcTok == "r8" || srcTok == "rm8" {
		w = 8
	}
	var v uint32
	switch srcTok {
	case "r8", "rv":
		v = e.gprRead(inst.RegField(), w)
	case "rm8", "rmv":
		p, f := e.resolveRM(inst, w, false)
		if f != nil {
			return f
		}
		var ff *fault
		v, ff = e.readPlace(p)
		if ff != nil {
			return ff
		}
	case "imm8", "immv":
		v = uint32(inst.Imm)
	}
	switch dstTok {
	case "r8", "rv":
		e.gprWrite(inst.RegField(), w, v)
	case "rm8", "rmv":
		p, f := e.resolveRM(inst, w, true)
		if f != nil {
			return f
		}
		if f := e.writePlace(p, v); f != nil {
			return f
		}
	}
	return e.finish(inst)
}

func (e *Emulator) movMoffs(inst *x86.Inst, name string, osz uint8) *fault {
	w := uint8(8)
	if strings.HasSuffix(name, "eax") || name == "mov_eax_moffs" {
		w = osz
	}
	seg := x86.DS
	if inst.SegOverride >= 0 {
		seg = x86.SegReg(inst.SegOverride)
	}
	if name == "mov_al_moffs" || name == "mov_eax_moffs" {
		v, f := e.memRead(seg, inst.Disp, w/8)
		if f != nil {
			return f
		}
		e.gprWrite(0, w, v)
	} else {
		if f := e.memWrite(seg, inst.Disp, e.gprRead(0, w), w/8); f != nil {
			return f
		}
	}
	return e.finish(inst)
}

func (e *Emulator) movExtend(inst *x86.Inst, name string, osz uint8) *fault {
	srcW := uint8(8)
	if strings.HasSuffix(name, "16") {
		srcW = 16
	}
	p, f := e.resolveRM(inst, srcW, false)
	if f != nil {
		return f
	}
	v, f := e.readPlace(p)
	if f != nil {
		return f
	}
	if strings.HasPrefix(name, "movsx") {
		v = uint32(signExt(v, srcW)) & mask(osz)
	}
	e.gprWrite(inst.RegField(), osz, v)
	return e.finish(inst)
}

// branchTarget computes the relative branch destination.
func (e *Emulator) branchTarget(inst *x86.Inst, osz uint8) (next, taken uint32) {
	next = e.m.EIP + uint32(inst.Len)
	var rel uint32
	if inst.ImmSize == 1 {
		rel = uint32(int32(int8(inst.Imm)))
	} else {
		rel = uint32(inst.Imm)
	}
	taken = next + rel
	if osz == 16 {
		taken &= 0xffff
	}
	return next, taken
}

// execStackFlow covers stack and control-flow instructions. The second
// return reports whether the name was handled.
func (e *Emulator) execStackFlow(inst *x86.Inst, name string, osz uint8) (*fault, bool) {
	m := e.m
	size := osz / 8
	switch name {
	case "push_r":
		return firstFault(e.push(e.gprRead(inst.Opcode&7, osz), size), e.finish(inst)), true
	case "pop_r":
		v, f := e.pop(size)
		if f != nil {
			return f, true
		}
		e.gprWrite(inst.Opcode&7, osz, v)
		return e.finish(inst), true
	case "push_immv", "push_imm8s":
		return firstFault(e.push(uint32(inst.Imm), size), e.finish(inst)), true
	case "push_rmv":
		p, f := e.resolveRM(inst, osz, false)
		if f != nil {
			return f, true
		}
		v, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		return firstFault(e.push(v, size), e.finish(inst)), true
	case "pop_rmv":
		// celer order: ESP moves before the destination write (QEMU-like).
		v, f := e.pop(size)
		if f != nil {
			return f, true
		}
		p, f := e.resolveRM(inst, osz, true)
		if f != nil {
			return f, true
		}
		return firstFault(e.writePlace(p, v), e.finish(inst)), true
	case "pusha":
		// Sequential pushes with no up-front range check: a fault partway
		// leaves earlier pushes and a partially-updated ESP (finding 2's
		// class applied to pusha).
		orig := m.GPR[x86.ESP]
		for i := 0; i < 8; i++ {
			var v uint32
			if i == int(x86.ESP) {
				v = orig
			} else {
				v = e.gprRead(uint8(i), osz)
			}
			if f := e.push(v, size); f != nil {
				return f, true
			}
		}
		return e.finish(inst), true
	case "popa":
		for i := 7; i >= 0; i-- {
			v, f := e.pop(size)
			if f != nil {
				return f, true
			}
			if i == int(x86.ESP) {
				continue
			}
			e.gprWrite(uint8(i), osz, v)
		}
		return e.finish(inst), true
	case "pushf":
		img := m.EFLAGS&x86.EflagsValidMask | x86.EflagsFixed1
		img &= 0x00fcffff
		return firstFault(e.push(img, size), e.finish(inst)), true
	case "popf":
		v, f := e.pop(size)
		if f != nil {
			return f, true
		}
		e.applyEFLAGS(v, osz)
		return e.finish(inst), true
	case "enter":
		return e.enter(inst, osz), true
	case "leave":
		// Finding 2: ESP is updated from EBP before the read is checked.
		ebp := m.GPR[x86.EBP]
		m.GPR[x86.ESP] = ebp
		v, f := e.memRead(x86.SS, ebp, size)
		if f != nil {
			return f, true
		}
		m.GPR[x86.ESP] = ebp + uint32(size)
		e.gprWrite(uint8(x86.EBP), osz, v)
		return e.finish(inst), true
	case "ret":
		v, f := e.pop(size)
		if f != nil {
			return f, true
		}
		m.EIP = v
		return nil, true
	case "ret_imm16":
		v, f := e.pop(size)
		if f != nil {
			return f, true
		}
		m.GPR[x86.ESP] += uint32(inst.Imm) & 0xffff
		m.EIP = v
		return nil, true
	case "call_relv":
		next, taken := e.branchTarget(inst, osz)
		if f := e.push(next&pushMask(osz), size); f != nil {
			return f, true
		}
		m.EIP = taken
		return nil, true
	case "call_rmv":
		p, f := e.resolveRM(inst, osz, false)
		if f != nil {
			return f, true
		}
		t, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		next := m.EIP + uint32(inst.Len)
		if f := e.push(next&pushMask(osz), size); f != nil {
			return f, true
		}
		m.EIP = t
		return nil, true
	case "jmp_rel8", "jmp_relv":
		_, taken := e.branchTarget(inst, osz)
		m.EIP = taken
		return nil, true
	case "jmp_rmv":
		p, f := e.resolveRM(inst, osz, false)
		if f != nil {
			return f, true
		}
		t, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		m.EIP = t
		return nil, true
	case "jecxz":
		next, taken := e.branchTarget(inst, osz)
		if m.GPR[x86.ECX] == 0 {
			m.EIP = taken
		} else {
			m.EIP = next
		}
		return nil, true
	case "loop", "loope", "loopne":
		m.GPR[x86.ECX]--
		cond := m.GPR[x86.ECX] != 0
		if name == "loope" {
			cond = cond && e.flag(x86.FlagZF) == 1
		}
		if name == "loopne" {
			cond = cond && e.flag(x86.FlagZF) == 0
		}
		next, taken := e.branchTarget(inst, osz)
		if cond {
			m.EIP = taken
		} else {
			m.EIP = next
		}
		return nil, true
	case "int3":
		m.EIP += uint32(inst.Len)
		return &fault{vec: x86.ExcBP, soft: true}, true
	case "int_imm8":
		m.EIP += uint32(inst.Len)
		return &fault{vec: uint8(inst.Imm), soft: true}, true
	case "into":
		if e.flag(x86.FlagOF) == 1 {
			m.EIP += uint32(inst.Len)
			return &fault{vec: x86.ExcOF, soft: true}, true
		}
		return e.finish(inst), true
	case "iret":
		return e.iret(osz), true
	}
	if strings.HasPrefix(name, "j") &&
		(strings.HasSuffix(name, "_rel8") || strings.HasSuffix(name, "_relv")) {
		cc := ccOf(name[1:strings.IndexByte(name, '_')])
		next, taken := e.branchTarget(inst, osz)
		if e.condValue(cc) {
			m.EIP = taken
		} else {
			m.EIP = next
		}
		return nil, true
	}
	if strings.HasPrefix(name, "cmov") {
		cc := ccOf(strings.TrimPrefix(name, "cmov"))
		p, f := e.resolveRM(inst, osz, false)
		if f != nil {
			return f, true
		}
		v, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		if e.condValue(cc) {
			e.gprWrite(inst.RegField(), osz, v)
		}
		return e.finish(inst), true
	}
	if strings.HasPrefix(name, "set") && len(name) <= 5 {
		cc := ccOf(strings.TrimPrefix(name, "set"))
		p, f := e.resolveRM(inst, 8, true)
		if f != nil {
			return f, true
		}
		var v uint32
		if e.condValue(cc) {
			v = 1
		}
		return firstFault(e.writePlace(p, v), e.finish(inst)), true
	}
	return nil, false
}

func pushMask(osz uint8) uint32 {
	if osz == 16 {
		return 0xffff
	}
	return 0xffffffff
}

var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func ccOf(s string) uint8 {
	for i, n := range ccNames {
		if n == s {
			return uint8(i)
		}
	}
	panic("celer: bad cc " + s)
}

// applyEFLAGS writes the popf-writable bits.
func (e *Emulator) applyEFLAGS(v uint32, osz uint8) {
	writable := uint32(1<<x86.FlagCF | 1<<x86.FlagPF | 1<<x86.FlagAF |
		1<<x86.FlagZF | 1<<x86.FlagSF | 1<<x86.FlagTF | 1<<x86.FlagDF |
		1<<x86.FlagOF | 1<<x86.FlagNT | 1<<x86.FlagIF | 3<<x86.FlagIOPL)
	if osz == 32 {
		writable |= 1<<x86.FlagAC | 1<<x86.FlagID
	} else {
		v = e.m.EFLAGS&0xffff0000 | v&0xffff
		writable |= 1<<x86.FlagAC | 1<<x86.FlagID
	}
	e.m.EFLAGS = e.m.EFLAGS&^writable | v&writable
	e.m.EFLAGS = e.m.EFLAGS&x86.EflagsValidMask | x86.EflagsFixed1
}

func (e *Emulator) enter(inst *x86.Inst, osz uint8) *fault {
	m := e.m
	size := osz / 8
	alloc := uint32(inst.Imm) & 0xffff
	level := uint8(inst.Imm2) & 0x1f

	ebp := m.GPR[x86.EBP]
	if f := e.push(e.gprRead(uint8(x86.EBP), osz), size); f != nil {
		return f
	}
	frameTemp := m.GPR[x86.ESP]
	for l := uint8(1); l < level; l++ {
		v, f := e.memRead(x86.SS, ebp-uint32(l)*uint32(size), size)
		if f != nil {
			return f
		}
		if f := e.push(v, size); f != nil {
			return f
		}
	}
	if level > 0 {
		if f := e.push(frameTemp&pushMask(osz), size); f != nil {
			return f
		}
	}
	e.gprWrite(uint8(x86.EBP), osz, frameTemp)
	m.GPR[x86.ESP] -= alloc
	return e.finish(inst)
}

// iret: finding 4 — celer reads the frame outermost-first (EFLAGS, then CS,
// then EIP), the reverse of the hardware order.
func (e *Emulator) iret(osz uint8) *fault {
	m := e.m
	size := uint32(osz / 8)
	esp := m.GPR[x86.ESP]
	flV, f := e.memRead(x86.SS, esp+2*size, uint8(size))
	if f != nil {
		return f
	}
	csV, f := e.memRead(x86.SS, esp+size, uint8(size))
	if f != nil {
		return f
	}
	eipV, f := e.memRead(x86.SS, esp, uint8(size))
	if f != nil {
		return f
	}
	sel := uint16(csV)
	if sel&3 != 0 {
		return gp(uint32(sel) & 0xfffc)
	}
	if f := e.loadSeg(x86.CS, sel, true); f != nil {
		return f
	}
	m.GPR[x86.ESP] = esp + 3*size
	m.EIP = eipV
	e.applyEFLAGS(flV, osz)
	return nil
}
