package celer

import (
	"strings"

	"pokeemu/internal/x86"
)

func lowerMovGeneric(inst *x86.Inst, form string, osz uint8) opFunc {
	i := strings.IndexByte(form, '_')
	dstTok, srcTok := form[:i], form[i+1:]
	w := osz
	if strings.HasSuffix(dstTok, "8") || srcTok == "r8" || srcTok == "rm8" {
		w = 8
	}
	srcK := parseOpd(srcTok, w).kind
	dstK := parseOpd(dstTok, w).kind
	imm := uint32(inst.Imm)
	return func(e *Emulator) *fault {
		var v uint32
		switch srcK {
		case opdReg:
			v = e.gprRead(inst.RegField(), w)
		case opdRM:
			p, f := e.resolveRM(inst, w, false)
			if f != nil {
				return f
			}
			var ff *fault
			v, ff = e.readPlace(p)
			if ff != nil {
				return ff
			}
		case opdImm:
			v = imm
		}
		switch dstK {
		case opdReg:
			e.gprWrite(inst.RegField(), w, v)
		case opdRM:
			p, f := e.resolveRM(inst, w, true)
			if f != nil {
				return f
			}
			if f := e.writePlace(p, v); f != nil {
				return f
			}
		}
		return e.finish(inst)
	}
}

func lowerMovMoffs(inst *x86.Inst, name string, osz uint8) opFunc {
	w := uint8(8)
	if strings.HasSuffix(name, "eax") || name == "mov_eax_moffs" {
		w = osz
	}
	seg := x86.DS
	if inst.SegOverride >= 0 {
		seg = x86.SegReg(inst.SegOverride)
	}
	load := name == "mov_al_moffs" || name == "mov_eax_moffs"
	disp := inst.Disp
	return func(e *Emulator) *fault {
		if load {
			v, f := e.memRead(seg, disp, w/8)
			if f != nil {
				return f
			}
			e.gprWrite(0, w, v)
		} else {
			if f := e.memWrite(seg, disp, e.gprRead(0, w), w/8); f != nil {
				return f
			}
		}
		return e.finish(inst)
	}
}

func lowerMovExtend(inst *x86.Inst, name string, osz uint8) opFunc {
	srcW := uint8(8)
	if strings.HasSuffix(name, "16") {
		srcW = 16
	}
	signed := strings.HasPrefix(name, "movsx")
	return func(e *Emulator) *fault {
		p, f := e.resolveRM(inst, srcW, false)
		if f != nil {
			return f
		}
		v, f := e.readPlace(p)
		if f != nil {
			return f
		}
		if signed {
			v = uint32(signExt(v, srcW)) & mask(osz)
		}
		e.gprWrite(inst.RegField(), osz, v)
		return e.finish(inst)
	}
}

// branchTarget computes the relative branch destination.
func (e *Emulator) branchTarget(inst *x86.Inst, osz uint8) (next, taken uint32) {
	next = e.m.EIP + uint32(inst.Len)
	var rel uint32
	if inst.ImmSize == 1 {
		rel = uint32(int32(int8(inst.Imm)))
	} else {
		rel = uint32(inst.Imm)
	}
	taken = next + rel
	if osz == 16 {
		taken &= 0xffff
	}
	return next, taken
}

// lowerStackFlow covers stack and control-flow instructions. The second
// return reports whether the name was handled.
func lowerStackFlow(inst *x86.Inst, name string, osz uint8) (opFunc, bool) {
	size := osz / 8
	switch name {
	case "push_r":
		r := inst.Opcode & 7
		return func(e *Emulator) *fault {
			return firstFault(e.push(e.gprRead(r, osz), size), e.finish(inst))
		}, true
	case "pop_r":
		r := inst.Opcode & 7
		return func(e *Emulator) *fault {
			v, f := e.pop(size)
			if f != nil {
				return f
			}
			e.gprWrite(r, osz, v)
			return e.finish(inst)
		}, true
	case "push_immv", "push_imm8s":
		imm := uint32(inst.Imm)
		return func(e *Emulator) *fault {
			return firstFault(e.push(imm, size), e.finish(inst))
		}, true
	case "push_rmv":
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, osz, false)
			if f != nil {
				return f
			}
			v, f := e.readPlace(p)
			if f != nil {
				return f
			}
			return firstFault(e.push(v, size), e.finish(inst))
		}, true
	case "pop_rmv":
		return func(e *Emulator) *fault {
			// celer order: ESP moves before the destination write (QEMU-like).
			v, f := e.pop(size)
			if f != nil {
				return f
			}
			p, f := e.resolveRM(inst, osz, true)
			if f != nil {
				return f
			}
			return firstFault(e.writePlace(p, v), e.finish(inst))
		}, true
	case "pusha":
		return func(e *Emulator) *fault {
			// Sequential pushes with no up-front range check: a fault partway
			// leaves earlier pushes and a partially-updated ESP (finding 2's
			// class applied to pusha).
			orig := e.m.GPR[x86.ESP]
			for i := 0; i < 8; i++ {
				var v uint32
				if i == int(x86.ESP) {
					v = orig
				} else {
					v = e.gprRead(uint8(i), osz)
				}
				if f := e.push(v, size); f != nil {
					return f
				}
			}
			return e.finish(inst)
		}, true
	case "popa":
		return func(e *Emulator) *fault {
			for i := 7; i >= 0; i-- {
				v, f := e.pop(size)
				if f != nil {
					return f
				}
				if i == int(x86.ESP) {
					continue
				}
				e.gprWrite(uint8(i), osz, v)
			}
			return e.finish(inst)
		}, true
	case "pushf":
		return func(e *Emulator) *fault {
			img := e.m.EFLAGS&x86.EflagsValidMask | x86.EflagsFixed1
			img &= 0x00fcffff
			return firstFault(e.push(img, size), e.finish(inst))
		}, true
	case "popf":
		return func(e *Emulator) *fault {
			v, f := e.pop(size)
			if f != nil {
				return f
			}
			e.applyEFLAGS(v, osz)
			return e.finish(inst)
		}, true
	case "enter":
		return func(e *Emulator) *fault { return e.enter(inst, osz) }, true
	case "leave":
		return func(e *Emulator) *fault {
			// Finding 2: ESP is updated from EBP before the read is checked.
			m := e.m
			ebp := m.GPR[x86.EBP]
			m.GPR[x86.ESP] = ebp
			v, f := e.memRead(x86.SS, ebp, size)
			if f != nil {
				return f
			}
			m.GPR[x86.ESP] = ebp + uint32(size)
			e.gprWrite(uint8(x86.EBP), osz, v)
			return e.finish(inst)
		}, true
	case "ret":
		return func(e *Emulator) *fault {
			v, f := e.pop(size)
			if f != nil {
				return f
			}
			e.m.EIP = v
			return nil
		}, true
	case "ret_imm16":
		imm := uint32(inst.Imm) & 0xffff
		return func(e *Emulator) *fault {
			v, f := e.pop(size)
			if f != nil {
				return f
			}
			e.m.GPR[x86.ESP] += imm
			e.m.EIP = v
			return nil
		}, true
	case "call_relv":
		return func(e *Emulator) *fault {
			next, taken := e.branchTarget(inst, osz)
			if f := e.push(next&pushMask(osz), size); f != nil {
				return f
			}
			e.m.EIP = taken
			return nil
		}, true
	case "call_rmv":
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, osz, false)
			if f != nil {
				return f
			}
			t, f := e.readPlace(p)
			if f != nil {
				return f
			}
			next := e.m.EIP + uint32(inst.Len)
			if f := e.push(next&pushMask(osz), size); f != nil {
				return f
			}
			e.m.EIP = t
			return nil
		}, true
	case "jmp_rel8", "jmp_relv":
		return func(e *Emulator) *fault {
			_, taken := e.branchTarget(inst, osz)
			e.m.EIP = taken
			return nil
		}, true
	case "jmp_rmv":
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, osz, false)
			if f != nil {
				return f
			}
			t, f := e.readPlace(p)
			if f != nil {
				return f
			}
			e.m.EIP = t
			return nil
		}, true
	case "jecxz":
		return func(e *Emulator) *fault {
			next, taken := e.branchTarget(inst, osz)
			if e.m.GPR[x86.ECX] == 0 {
				e.m.EIP = taken
			} else {
				e.m.EIP = next
			}
			return nil
		}, true
	case "loop", "loope", "loopne":
		needZF := name == "loope"
		needNZ := name == "loopne"
		return func(e *Emulator) *fault {
			m := e.m
			m.GPR[x86.ECX]--
			cond := m.GPR[x86.ECX] != 0
			if needZF {
				cond = cond && e.flag(x86.FlagZF) == 1
			}
			if needNZ {
				cond = cond && e.flag(x86.FlagZF) == 0
			}
			next, taken := e.branchTarget(inst, osz)
			if cond {
				m.EIP = taken
			} else {
				m.EIP = next
			}
			return nil
		}, true
	case "int3":
		return func(e *Emulator) *fault {
			e.m.EIP += uint32(inst.Len)
			return &fault{vec: x86.ExcBP, soft: true}
		}, true
	case "int_imm8":
		vec := uint8(inst.Imm)
		return func(e *Emulator) *fault {
			e.m.EIP += uint32(inst.Len)
			return &fault{vec: vec, soft: true}
		}, true
	case "into":
		return func(e *Emulator) *fault {
			if e.flag(x86.FlagOF) == 1 {
				e.m.EIP += uint32(inst.Len)
				return &fault{vec: x86.ExcOF, soft: true}
			}
			return e.finish(inst)
		}, true
	case "iret":
		return func(e *Emulator) *fault { return e.iret(osz) }, true
	}
	if strings.HasPrefix(name, "j") &&
		(strings.HasSuffix(name, "_rel8") || strings.HasSuffix(name, "_relv")) {
		cc := ccOf(name[1:strings.IndexByte(name, '_')])
		return func(e *Emulator) *fault {
			next, taken := e.branchTarget(inst, osz)
			if e.condValue(cc) {
				e.m.EIP = taken
			} else {
				e.m.EIP = next
			}
			return nil
		}, true
	}
	if strings.HasPrefix(name, "cmov") {
		cc := ccOf(strings.TrimPrefix(name, "cmov"))
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, osz, false)
			if f != nil {
				return f
			}
			v, f := e.readPlace(p)
			if f != nil {
				return f
			}
			if e.condValue(cc) {
				e.gprWrite(inst.RegField(), osz, v)
			}
			return e.finish(inst)
		}, true
	}
	if strings.HasPrefix(name, "set") && len(name) <= 5 {
		cc := ccOf(strings.TrimPrefix(name, "set"))
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, 8, true)
			if f != nil {
				return f
			}
			var v uint32
			if e.condValue(cc) {
				v = 1
			}
			return firstFault(e.writePlace(p, v), e.finish(inst))
		}, true
	}
	return nil, false
}

func pushMask(osz uint8) uint32 {
	if osz == 16 {
		return 0xffff
	}
	return 0xffffffff
}

var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func ccOf(s string) uint8 {
	for i, n := range ccNames {
		if n == s {
			return uint8(i)
		}
	}
	panic("celer: bad cc " + s)
}

// applyEFLAGS writes the popf-writable bits.
func (e *Emulator) applyEFLAGS(v uint32, osz uint8) {
	writable := uint32(1<<x86.FlagCF | 1<<x86.FlagPF | 1<<x86.FlagAF |
		1<<x86.FlagZF | 1<<x86.FlagSF | 1<<x86.FlagTF | 1<<x86.FlagDF |
		1<<x86.FlagOF | 1<<x86.FlagNT | 1<<x86.FlagIF | 3<<x86.FlagIOPL)
	if osz == 32 {
		writable |= 1<<x86.FlagAC | 1<<x86.FlagID
	} else {
		v = e.m.EFLAGS&0xffff0000 | v&0xffff
		writable |= 1<<x86.FlagAC | 1<<x86.FlagID
	}
	e.m.EFLAGS = e.m.EFLAGS&^writable | v&writable
	e.m.EFLAGS = e.m.EFLAGS&x86.EflagsValidMask | x86.EflagsFixed1
}

func (e *Emulator) enter(inst *x86.Inst, osz uint8) *fault {
	m := e.m
	size := osz / 8
	alloc := uint32(inst.Imm) & 0xffff
	level := uint8(inst.Imm2) & 0x1f

	ebp := m.GPR[x86.EBP]
	if f := e.push(e.gprRead(uint8(x86.EBP), osz), size); f != nil {
		return f
	}
	frameTemp := m.GPR[x86.ESP]
	for l := uint8(1); l < level; l++ {
		v, f := e.memRead(x86.SS, ebp-uint32(l)*uint32(size), size)
		if f != nil {
			return f
		}
		if f := e.push(v, size); f != nil {
			return f
		}
	}
	if level > 0 {
		if f := e.push(frameTemp&pushMask(osz), size); f != nil {
			return f
		}
	}
	e.gprWrite(uint8(x86.EBP), osz, frameTemp)
	m.GPR[x86.ESP] -= alloc
	return e.finish(inst)
}

// iret: finding 4 — celer reads the frame outermost-first (EFLAGS, then CS,
// then EIP), the reverse of the hardware order.
func (e *Emulator) iret(osz uint8) *fault {
	m := e.m
	size := uint32(osz / 8)
	esp := m.GPR[x86.ESP]
	flV, f := e.memRead(x86.SS, esp+2*size, uint8(size))
	if f != nil {
		return f
	}
	csV, f := e.memRead(x86.SS, esp+size, uint8(size))
	if f != nil {
		return f
	}
	eipV, f := e.memRead(x86.SS, esp, uint8(size))
	if f != nil {
		return f
	}
	sel := uint16(csV)
	if sel&3 != 0 {
		return gp(uint32(sel) & 0xfffc)
	}
	if f := e.loadSeg(x86.CS, sel, true); f != nil {
		return f
	}
	m.GPR[x86.ESP] = esp + 3*size
	m.EIP = eipV
	e.applyEFLAGS(flV, osz)
	return nil
}
