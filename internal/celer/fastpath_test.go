package celer

import (
	"sync"
	"testing"

	"pokeemu/internal/emu"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// TestCelerCacheKeyIncludesMode is the regression test for the TB cache
// aliasing bug: the same code bytes executed under a different effective
// operand-size default (CS.D) or CPU mode (CR0.PE) must re-translate, not
// reuse the translation installed under the other state. Decode itself is
// state-independent today, so the observable is the cache Miss counter —
// an aliased key would hit where a correct key misses.
func TestCelerCacheKeyIncludesMode(t *testing.T) {
	prog := cat(x86.AsmMovRegImm32(x86.EAX, 42), hlt)
	cache := NewCache()
	stepOne := func(setup func(*machine.Machine)) {
		t.Helper()
		m := machine.NewBaseline(nil)
		m.Mem.WriteBytes(machine.CodeBase, prog)
		if setup != nil {
			setup(m)
		}
		e := NewWithCache(m, cache)
		if ev := e.Step(); ev.Kind != emu.EventNone {
			t.Fatalf("first step event = %v", ev.Kind)
		}
	}

	stepOne(nil)
	if cache.Miss != 1 {
		t.Fatalf("baseline translation: miss = %d, want 1", cache.Miss)
	}
	stepOne(func(m *machine.Machine) { m.Seg[x86.CS].Attr &^= x86.AttrDB })
	if cache.Miss != 2 {
		t.Fatalf("same bytes under a 16-bit code segment reused the 32-bit translation (miss = %d, want 2)", cache.Miss)
	}
	stepOne(func(m *machine.Machine) { m.CR0 &^= 1 })
	if cache.Miss != 3 {
		t.Fatalf("same bytes with CR0.PE cleared reused the protected-mode translation (miss = %d, want 3)", cache.Miss)
	}
	// Back to the original state: the first translation is still cached.
	hits := cache.Hits
	stepOne(nil)
	if cache.Miss != 3 || cache.Hits != hits+1 {
		t.Fatalf("baseline re-run: miss = %d hits = %d, want miss 3 and one new hit", cache.Miss, cache.Hits)
	}
}

// TestCelerTransState pins the state byte itself so a future refactor that
// drops a bit from the key fails loudly.
func TestCelerTransState(t *testing.T) {
	m := machine.NewBaseline(nil)
	if got := transState(m); got != 3 {
		t.Fatalf("baseline transState = %d, want 3 (CS.D=1, PE=1)", got)
	}
	m.Seg[x86.CS].Attr &^= x86.AttrDB
	if got := transState(m); got != 2 {
		t.Fatalf("16-bit CS transState = %d, want 2", got)
	}
	m.CR0 &^= 1
	if got := transState(m); got != 0 {
		t.Fatalf("real-mode transState = %d, want 0", got)
	}
}

// TestCelerConcurrentGuestsSharedCache runs many guests concurrently over
// one shared translation cache (the campaign's configuration) with the fast
// path on. Run under -race this checks that the shared cache and the
// guest-local dispatch chains do not share mutable state across guests; the
// final state check verifies every guest computed the same result.
func TestCelerConcurrentGuestsSharedCache(t *testing.T) {
	cache := NewCache()
	// A hot loop so the dispatch chain's fall-through links get exercised:
	// sum 10..1 into EAX.
	prog := cat(
		x86.AsmMovRegImm32(x86.EAX, 0),
		x86.AsmMovRegImm32(x86.ECX, 10),
		[]byte{0x01, 0xc8}, // add eax, ecx
		[]byte{0xe2, 0xfc}, // loop -4
		hlt,
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := machine.NewBaseline(nil)
			m.Mem.WriteBytes(machine.CodeBase, prog)
			e := NewWithCache(m, cache)
			for i := 0; i < 10000; i++ {
				if ev := e.Step(); ev.Kind == emu.EventHalt {
					if m.GPR[x86.EAX] != 55 {
						t.Errorf("eax = %d, want 55", m.GPR[x86.EAX])
					}
					return
				}
			}
			t.Error("guest did not halt")
		}()
	}
	wg.Wait()
	if cache.Hits == 0 {
		t.Error("concurrent guests never shared a translation")
	}
}

// TestCelerFastSlowEvents runs a fault-heavy program on both dispatch paths
// and requires the event streams and final states to match exactly — the
// fast path must be invisible to everything the harness observes.
func TestCelerFastSlowEvents(t *testing.T) {
	prog := cat(
		x86.AsmMovRegImm32(x86.EAX, 7),
		[]byte{0xf7, 0xf0}, // div eax — fine
		x86.AsmMovRegImm32(x86.ECX, 0),
		[]byte{0xf7, 0xf1}, // div ecx — #DE
		hlt,
	)
	runPath := func(fast bool) (*machine.Machine, []emu.Event) {
		m := machine.NewBaseline(nil)
		m.Mem.WriteBytes(machine.CodeBase, prog)
		e := New(m)
		e.SetFastPath(fast)
		var events []emu.Event
		for i := 0; i < 10000; i++ {
			ev := e.Step()
			events = append(events, ev)
			if ev.Kind == emu.EventHalt || ev.Kind == emu.EventShutdown {
				return m, events
			}
		}
		t.Fatal("program did not terminate")
		return nil, nil
	}
	mf, ef := runPath(true)
	ms, es := runPath(false)
	if len(ef) != len(es) {
		t.Fatalf("event count: fast %d, slow %d", len(ef), len(es))
	}
	for i := range ef {
		if ef[i].Kind != es[i].Kind {
			t.Fatalf("event %d: fast %v, slow %v", i, ef[i].Kind, es[i].Kind)
		}
	}
	if mf.GPR[x86.EAX] != ms.GPR[x86.EAX] || mf.EIP != ms.EIP || mf.EFLAGS != ms.EFLAGS {
		t.Fatalf("final state diverged: fast eax=%#x eip=%#x efl=%#x, slow eax=%#x eip=%#x efl=%#x",
			mf.GPR[x86.EAX], mf.EIP, mf.EFLAGS, ms.GPR[x86.EAX], ms.EIP, ms.EFLAGS)
	}
}

// TestCelerSelfModifyingCodeFastPath: the dispatch chain revalidates raw
// bytes every step, so a loop that patches an instruction it already
// executed must run the new bytes on the next iteration, not the stale
// chained translation installed on the first pass.
func TestCelerSelfModifyingCodeFastPath(t *testing.T) {
	// mov eax,0 ; mov ecx,2
	// body: mov ebx,1 ; add eax,ebx ; mov byte [body+1],5 ; loop body
	// hlt
	// Iteration 1 adds 1 and patches the imm; iteration 2 must add 5.
	const bodyOff = 10
	prog := cat(
		x86.AsmMovRegImm32(x86.EAX, 0),
		x86.AsmMovRegImm32(x86.ECX, 2),
		x86.AsmMovRegImm32(x86.EBX, 1), // body (patched below)
		[]byte{0x01, 0xd8},             // add eax, ebx
		x86.AsmMovMemImm8(machine.CodeBase+bodyOff+1, 5),
		[]byte{0xe2, 0xf0}, // loop body (-16)
		hlt,
	)
	m, _ := run(t, prog, nil)
	if m.GPR[x86.EAX] != 6 {
		t.Fatalf("eax = %d, want 6 (stale translation executed after self-modification)", m.GPR[x86.EAX])
	}
}
