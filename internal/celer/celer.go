// Package celer is the low-fidelity emulator under test (the QEMU
// analogue). It is an independent implementation: instructions are
// translated once into closures and cached in a translation-block cache
// shared across guest instances (the DBT flavor), semantics are direct Go
// rather than the IR the Hi-Fi emulator executes, and it carries the bug
// classes the paper reports finding in QEMU:
//
//  1. Segment limits and rights are not enforced on ordinary data accesses
//     (only the base is applied) — the missing-security-feature finding.
//  2. leave is not atomic: ESP is updated before the stack read is checked,
//     so a fault corrupts ESP. Cross-page stores can also complete
//     partially before a fault on the second page.
//  3. cmpxchg updates the accumulator and flags before write permission is
//     checked on a memory destination.
//  4. iret pops outermost-to-innermost (EFLAGS, CS, EIP) — observable
//     through accessed bits and fault ordering across a page boundary.
//  5. rdmsr of an invalid MSR returns zero instead of raising #GP.
//  6. The descriptor "accessed" bit is never written back on segment loads.
//  7. Alias encodings (opcode 0x82, grp3 /1) are rejected with #UD, while
//     the undefined grp2 /6 encoding is accepted as shl.
//  8. Architecturally-undefined status flags are left unchanged where the
//     references compute or zero them.
package celer

import (
	"sync"

	"pokeemu/internal/emu"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// fault is an in-flight exception.
type fault struct {
	vec    uint8
	err    uint32
	hasErr bool
	soft   bool
}

func gp(err uint32) *fault { return &fault{vec: x86.ExcGP, err: err, hasErr: true} }

// opFunc executes one translated instruction; nil means completed.
type opFunc func(e *Emulator) *fault

// TB is a cached translation: the decoded instruction plus its two
// executables. fast is the direct-dispatch closure lowered once at
// translation time; run is the interpreter-flavored slow path that
// re-lowers on every execution. Both come from the same lowering, so a TB
// serves whichever path the owning guest has enabled.
type TB struct {
	inst *x86.Inst
	run  opFunc
	fast opFunc
}

// Cache is the translation-block cache, shared across guests created from
// the same Cache (the persistent structure a DBT keeps between runs). It is
// safe for concurrent guests.
type Cache struct {
	mu   sync.Mutex
	tbs  map[string]*TB
	Hits int64
	Miss int64
}

// NewCache returns an empty translation cache.
func NewCache() *Cache { return &Cache{tbs: make(map[string]*TB)} }

func (c *Cache) lookup(key string) (*TB, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tb, ok := c.tbs[key]
	if ok {
		c.Hits++
	} else {
		c.Miss++
	}
	return tb, ok
}

func (c *Cache) insert(key string, tb *TB) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tbs[key] = tb
}

// Emulator is one guest instance of the Lo-Fi emulator.
type Emulator struct {
	m        *machine.Machine
	cache    *Cache
	fastpath bool

	// Guest-local direct-dispatch chain (dispatch.go). The shared Cache
	// stays the source of truth; these are per-guest prediction structures.
	chain   [chainSlots]*chainEntry
	lastEnt *chainEntry
}

// New creates a guest with a private translation cache.
func New(m *machine.Machine) *Emulator { return NewWithCache(m, NewCache()) }

// NewWithCache creates a guest sharing a translation cache.
func NewWithCache(m *machine.Machine, c *Cache) *Emulator {
	return &Emulator{m: m, cache: c, fastpath: true}
}

// SetFastPath toggles the direct-dispatch fast path. Off means every Step
// goes through the shared-cache dispatcher and the re-lowering slow
// executable — the reference behavior the fast path must match exactly.
func (e *Emulator) SetFastPath(on bool) {
	e.fastpath = on
	e.lastEnt = nil
}

// Name implements emu.Emulator.
func (e *Emulator) Name() string { return "celer" }

// Machine implements emu.Emulator.
func (e *Emulator) Machine() *machine.Machine { return e.m }

// decode applies celer's own encoding acceptance rules on top of the byte
// parser: alias encodings are rejected, and grp2 /6 is accepted as shl.
func (e *Emulator) decode(code []byte) (*x86.Inst, error) {
	inst, err := x86.Decode(code)
	if err != nil {
		if de, ok := err.(*x86.DecodeError); ok && de.Kind == x86.ErrUndefined {
			if patched := decodeGrp2Slot6(code); patched != nil {
				return patched, nil
			}
		}
		return nil, err
	}
	if inst.Spec.AliasEnc {
		return nil, &x86.DecodeError{Kind: x86.ErrUndefined}
	}
	return inst, nil
}

// decodeGrp2Slot6 accepts the undefined /6 slot of the shift group as shl
// (the "accepts invalid encodings" side of finding 7). It rewrites the reg
// field to /4 and re-parses.
func decodeGrp2Slot6(code []byte) *x86.Inst {
	// Find the opcode position past any prefixes.
	i := 0
	for i < len(code) && i < x86.MaxInstLen {
		switch code[i] {
		case 0x26, 0x2e, 0x36, 0x3e, 0x64, 0x65, 0x66, 0xf0, 0xf2, 0xf3:
			i++
			continue
		}
		break
	}
	if i+1 >= len(code) {
		return nil
	}
	switch code[i] {
	case 0xc0, 0xc1, 0xd0, 0xd1, 0xd2, 0xd3:
	default:
		return nil
	}
	if code[i+1]>>3&7 != 6 {
		return nil
	}
	patched := append([]byte(nil), code...)
	patched[i+1] = patched[i+1]&^0x38 | 4<<3 // /6 → /4 (shl)
	inst, err := x86.Decode(patched)
	if err != nil {
		return nil
	}
	inst.Raw = append([]byte(nil), code[:inst.Len]...) // report original bytes
	return inst
}

// transState captures the machine state a translation depends on beyond
// the raw code bytes: the effective operand-size default (CS.D) and the
// CPU mode (CR0.PE). The same bytes under a different state must hit a
// different cache slot — keying by bytes alone aliased them.
func transState(m *machine.Machine) byte {
	var st byte
	if m.Seg[x86.CS].Attr&x86.AttrDB != 0 {
		st |= 1
	}
	if m.CR0&1 != 0 {
		st |= 2
	}
	return st
}

// tbKey builds the translation-cache key: the raw bytes plus the state
// byte they were decoded under.
func tbKey(code []byte, st byte) string {
	k := make([]byte, len(code)+1)
	copy(k, code)
	k[len(code)] = st
	return string(k)
}

// translateTB resolves one instruction to a TB through the shared cache,
// translating on a miss. Decode failures are mapped to the fault the
// architecture would raise; fexc is the pending fetch fault when the code
// bytes were truncated by it.
func (e *Emulator) translateTB(code []byte, st byte, fexc *machine.ExceptionInfo) (*TB, *fault) {
	key := tbKey(code, st)
	if tb, ok := e.cache.lookup(key); ok {
		return tb, nil
	}
	inst, err := e.decode(code)
	if err != nil {
		de, isDE := err.(*x86.DecodeError)
		switch {
		case isDE && de.Kind == x86.ErrTruncated && fexc != nil:
			return nil, &fault{vec: fexc.Vector, err: fexc.ErrCode, hasErr: fexc.HasErr}
		case isDE && de.Kind == x86.ErrTooLong:
			return nil, gp(0)
		default:
			return nil, &fault{vec: x86.ExcUD}
		}
	}
	run, fast := translate(inst)
	tb := &TB{inst: inst, run: run, fast: fast}
	e.cache.insert(key, tb)
	return tb, nil
}

// Step implements emu.Emulator.
func (e *Emulator) Step() emu.Event {
	if e.fastpath {
		return e.stepFast()
	}
	m := e.m
	if m.Halted {
		return emu.Event{Kind: emu.EventHalt}
	}
	code, fexc := m.FetchCode(x86.MaxInstLen)
	tb, f := e.translateTB(code, transState(m), fexc)
	if f != nil {
		return e.deliver(f)
	}
	return e.finishStep(tb.run(e))
}

// finishStep maps the executable's fault result to the step event.
func (e *Emulator) finishStep(f *fault) emu.Event {
	if f != nil {
		if f.vec == vecHalt {
			e.m.Halted = true
			return emu.Event{Kind: emu.EventHalt}
		}
		if f.vec == vecTimeout {
			return emu.Event{Kind: emu.EventTimeout}
		}
		return e.deliver(f)
	}
	return emu.Event{Kind: emu.EventNone}
}

// Pseudo-vectors used internally by translated code.
const (
	vecHalt    = 0xfe
	vecTimeout = 0xfd
)

// deliver implements celer's own IDT dispatch. The push order and flag
// handling match the architecture; the CS reload skips the accessed-bit
// write-back as everywhere else in celer.
func (e *Emulator) deliver(f *fault) emu.Event {
	m := e.m
	info := &machine.ExceptionInfo{Vector: f.vec, ErrCode: f.err, HasErr: f.hasErr}
	shutdown := func() emu.Event {
		m.Halted = true
		return emu.Event{Kind: emu.EventShutdown, Exception: info}
	}
	if uint32(f.vec)*8+7 > m.IDTRLimit {
		return shutdown()
	}
	gateLin := m.IDTRBase + uint32(f.vec)*8
	lo, ff := e.readLin(gateLin, 4)
	if ff != nil {
		return shutdown()
	}
	hi, ff := e.readLin(gateLin+4, 4)
	if ff != nil {
		return shutdown()
	}
	if hi>>15&1 == 0 {
		return shutdown()
	}
	gtype := hi >> 8 & 0xf
	if gtype != 0xe && gtype != 0xf {
		return shutdown()
	}
	if ff := e.push32(uint32(m.EFLAGS) & ^uint32(0) | x86.EflagsFixed1); ff != nil {
		return shutdown()
	}
	if ff := e.push32(uint32(m.Seg[x86.CS].Sel)); ff != nil {
		return shutdown()
	}
	if ff := e.push32(m.EIP); ff != nil {
		return shutdown()
	}
	if f.hasErr {
		if ff := e.push32(f.err); ff != nil {
			return shutdown()
		}
	}
	m.EFLAGS &^= 1<<x86.FlagTF | 1<<x86.FlagNT | 1<<x86.FlagVM | 1<<x86.FlagRF
	if gtype == 0xe {
		m.EFLAGS &^= 1 << x86.FlagIF
	}
	if ff := e.loadSeg(x86.CS, uint16(uint64(lo)>>16), true); ff != nil {
		return shutdown()
	}
	m.EIP = lo&0xffff | hi&0xffff0000
	return emu.Event{Kind: emu.EventException, Exception: info}
}
