package celer

import (
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// Memory access layer. The defining Lo-Fi property lives here: linAddr
// applies only the segment base — limits, types, and rights are never
// checked on ordinary data accesses (finding 1). Paging is implemented
// faithfully via the concrete walker.

// linAddr computes the linear address for a data access. No segment checks.
func (e *Emulator) linAddr(seg x86.SegReg, off uint32) uint32 {
	return e.m.Seg[seg].Base + off
}

func faultOf(exc *machine.ExceptionInfo) *fault {
	return &fault{vec: exc.Vector, err: exc.ErrCode, hasErr: exc.HasErr}
}

// readLin reads size bytes at a linear address through paging.
func (e *Emulator) readLin(lin uint32, size uint8) (uint32, *fault) {
	var v uint32
	for i := uint8(0); i < size; i++ {
		phys, exc := e.m.Translate(lin+uint32(i), false)
		if exc != nil {
			return 0, faultOf(exc)
		}
		v |= uint32(e.m.Mem.Read8(phys)) << (8 * i)
	}
	return v, nil
}

// writeLin writes size bytes at a linear address through paging. Bytes land
// as their pages translate, so a fault on a later page leaves earlier bytes
// written (the partial cross-page store of finding 2).
func (e *Emulator) writeLin(lin uint32, v uint32, size uint8) *fault {
	for i := uint8(0); i < size; i++ {
		phys, exc := e.m.Translate(lin+uint32(i), true)
		if exc != nil {
			return faultOf(exc)
		}
		e.m.Mem.Write8(phys, byte(v>>(8*i)))
	}
	return nil
}

// memRead reads through a segment (base only) and paging.
func (e *Emulator) memRead(seg x86.SegReg, off uint32, size uint8) (uint32, *fault) {
	return e.readLin(e.linAddr(seg, off), size)
}

// memWrite writes through a segment (base only) and paging.
func (e *Emulator) memWrite(seg x86.SegReg, off uint32, v uint32, size uint8) *fault {
	return e.writeLin(e.linAddr(seg, off), v, size)
}

// preparedWrite is a write-translated location for RMW instructions.
type preparedWrite struct {
	phys []uint32
}

// prepareWrite translates every byte of the destination for writing up
// front, so ordinary RMW instructions stay atomic (cmpxchg deliberately
// bypasses this, see exec.go).
func (e *Emulator) prepareWrite(lin uint32, size uint8) (*preparedWrite, *fault) {
	p := &preparedWrite{phys: make([]uint32, size)}
	for i := uint8(0); i < size; i++ {
		phys, exc := e.m.Translate(lin+uint32(i), true)
		if exc != nil {
			return nil, faultOf(exc)
		}
		p.phys[i] = phys
	}
	return p, nil
}

func (e *Emulator) readPrepared(p *preparedWrite) uint32 {
	var v uint32
	for i, phys := range p.phys {
		v |= uint32(e.m.Mem.Read8(phys)) << (8 * i)
	}
	return v
}

func (e *Emulator) writePrepared(p *preparedWrite, v uint32) {
	for i, phys := range p.phys {
		e.m.Mem.Write8(phys, byte(v>>(8*i)))
	}
}

// Stack helpers.

func (e *Emulator) push(v uint32, size uint8) *fault {
	m := e.m
	newESP := m.GPR[x86.ESP] - uint32(size)
	if f := e.memWrite(x86.SS, newESP, v, size); f != nil {
		return f
	}
	m.GPR[x86.ESP] = newESP
	return nil
}

func (e *Emulator) push32(v uint32) *fault { return e.push(v, 4) }

func (e *Emulator) pop(size uint8) (uint32, *fault) {
	m := e.m
	v, f := e.memRead(x86.SS, m.GPR[x86.ESP], size)
	if f != nil {
		return 0, f
	}
	m.GPR[x86.ESP] += uint32(size)
	return v, nil
}

// GPR sub-register access (ModRM index conventions).

func (e *Emulator) gprRead(idx uint8, w uint8) uint32 {
	m := e.m
	switch w {
	case 32:
		return m.GPR[idx]
	case 16:
		return m.GPR[idx] & 0xffff
	case 8:
		if idx < 4 {
			return m.GPR[idx] & 0xff
		}
		return m.GPR[idx-4] >> 8 & 0xff
	}
	panic("celer: bad width")
}

func (e *Emulator) gprWrite(idx uint8, w uint8, v uint32) {
	m := e.m
	switch w {
	case 32:
		m.GPR[idx] = v
	case 16:
		m.GPR[idx] = m.GPR[idx]&0xffff0000 | v&0xffff
	case 8:
		if idx < 4 {
			m.GPR[idx] = m.GPR[idx]&^uint32(0xff) | v&0xff
		} else {
			m.GPR[idx-4] = m.GPR[idx-4]&^uint32(0xff00) | (v&0xff)<<8
		}
	default:
		panic("celer: bad width")
	}
}

// effAddr computes the ModRM effective address and default segment
// (independent implementation of the 32-bit addressing forms).
func (e *Emulator) effAddr(inst *x86.Inst) (x86.SegReg, uint32) {
	m := e.m
	mod, rm := inst.Mod(), inst.RM()
	seg := x86.DS
	var addr uint32
	switch {
	case rm == 4:
		sib := inst.SIB
		base := sib & 7
		index := sib >> 3 & 7
		scale := sib >> 6
		if base == 5 && mod == 0 {
			addr = inst.Disp
		} else {
			addr = m.GPR[base] + inst.Disp
			if base == 4 || base == 5 {
				seg = x86.SS
			}
		}
		if index != 4 {
			addr += m.GPR[index] << scale
		}
	case mod == 0 && rm == 5:
		addr = inst.Disp
	default:
		addr = m.GPR[rm] + inst.Disp
		if rm == 5 {
			seg = x86.SS
		}
	}
	if inst.SegOverride >= 0 {
		seg = x86.SegReg(inst.SegOverride)
	}
	return seg, addr
}

// Flag computation (eager). Undefined flags are left unchanged (finding 8).

func mask(w uint8) uint32 {
	if w == 32 {
		return 0xffffffff
	}
	return 1<<w - 1
}

func (e *Emulator) flag(bit uint8) uint32 { return e.m.EFLAGS >> bit & 1 }

func (e *Emulator) setFlagBit(bit uint8, v uint32) {
	if v&1 == 1 {
		e.m.EFLAGS |= 1 << bit
	} else {
		e.m.EFLAGS &^= 1 << bit
	}
}

func parity8(v uint32) uint32 {
	x := v & 0xff
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return ^x & 1
}

func (e *Emulator) setSZP(r uint32, w uint8) {
	e.setFlagBit(x86.FlagSF, r>>(w-1)&1)
	if r&mask(w) == 0 {
		e.setFlagBit(x86.FlagZF, 1)
	} else {
		e.setFlagBit(x86.FlagZF, 0)
	}
	e.setFlagBit(x86.FlagPF, parity8(r))
}

func (e *Emulator) addFlags(a, b, cin, r uint32, w uint8) {
	wide := uint64(a&mask(w)) + uint64(b&mask(w)) + uint64(cin)
	e.setFlagBit(x86.FlagCF, uint32(wide>>w)&1)
	e.setFlagBit(x86.FlagOF, (^(a^b)&(a^r))>>(w-1)&1)
	e.setFlagBit(x86.FlagAF, (a^b^r)>>4&1)
	e.setSZP(r, w)
}

func (e *Emulator) subFlags(a, b, cin, r uint32, w uint8) {
	wide := uint64(a&mask(w)) - uint64(b&mask(w)) - uint64(cin)
	e.setFlagBit(x86.FlagCF, uint32(wide>>w)&1)
	e.setFlagBit(x86.FlagOF, ((a^b)&(a^r))>>(w-1)&1)
	e.setFlagBit(x86.FlagAF, (a^b^r)>>4&1)
	e.setSZP(r, w)
}

func (e *Emulator) logicFlags(r uint32, w uint8) {
	e.setFlagBit(x86.FlagCF, 0)
	e.setFlagBit(x86.FlagOF, 0)
	// AF deliberately left unchanged (undefined; references zero it).
	e.setSZP(r, w)
}

// condValue evaluates a condition code against EFLAGS.
func (e *Emulator) condValue(cc uint8) bool {
	var v bool
	switch cc >> 1 {
	case 0:
		v = e.flag(x86.FlagOF) == 1
	case 1:
		v = e.flag(x86.FlagCF) == 1
	case 2:
		v = e.flag(x86.FlagZF) == 1
	case 3:
		v = e.flag(x86.FlagCF) == 1 || e.flag(x86.FlagZF) == 1
	case 4:
		v = e.flag(x86.FlagSF) == 1
	case 5:
		v = e.flag(x86.FlagPF) == 1
	case 6:
		v = e.flag(x86.FlagSF) != e.flag(x86.FlagOF)
	case 7:
		v = e.flag(x86.FlagZF) == 1 || e.flag(x86.FlagSF) != e.flag(x86.FlagOF)
	}
	if cc&1 == 1 {
		v = !v
	}
	return v
}
