package celer

import (
	"testing"

	"pokeemu/internal/emu"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

func run(t *testing.T, code []byte, setup func(*machine.Machine)) (*machine.Machine, []emu.Event) {
	t.Helper()
	m := machine.NewBaseline(nil)
	m.Mem.WriteBytes(machine.CodeBase, code)
	if setup != nil {
		setup(m)
	}
	e := New(m)
	var events []emu.Event
	for i := 0; i < 10000; i++ {
		ev := e.Step()
		events = append(events, ev)
		if ev.Kind == emu.EventHalt || ev.Kind == emu.EventShutdown ||
			ev.Kind == emu.EventTimeout {
			return m, events
		}
	}
	t.Fatal("program did not halt")
	return nil, nil
}

func cat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

var hlt = []byte{0xf4}

func TestCelerBasicALU(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 40),
		x86.AsmMovRegImm32(x86.EBX, 2),
		[]byte{0x01, 0xd8}, // add
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 42 {
		t.Errorf("eax = %d", m.GPR[x86.EAX])
	}
}

func TestCelerTranslationCacheSharing(t *testing.T) {
	cache := NewCache()
	prog := cat(x86.AsmMovRegImm32(x86.EAX, 1), hlt)
	for i := 0; i < 3; i++ {
		m := machine.NewBaseline(nil)
		m.Mem.WriteBytes(machine.CodeBase, prog)
		e := NewWithCache(m, cache)
		for {
			if ev := e.Step(); ev.Kind == emu.EventHalt {
				break
			}
		}
	}
	if cache.Hits == 0 {
		t.Error("shared cache never hit across guests")
	}
	if cache.Miss == 0 {
		t.Error("cache miss counter never moved")
	}
}

func TestCelerGrp2Slot6Quirk(t *testing.T) {
	// celer accepts the undefined /6 slot of grp2 as shl — including under
	// prefixes.
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 3),
		[]byte{0xd1, 0xf0}, // grp2 /6, count 1 → shl
		hlt,
	)
	m, events := run(t, code, nil)
	for _, ev := range events {
		if ev.Kind == emu.EventException {
			t.Fatalf("raised %v", ev.Exception)
		}
	}
	if m.GPR[x86.EAX] != 6 {
		t.Errorf("eax = %d, want 6", m.GPR[x86.EAX])
	}
}

func TestCelerRejectsAliases(t *testing.T) {
	for _, enc := range [][]byte{
		{0x82, 0xc0, 0x01},       // 0x80 alias
		{0xf6, 0xc8, 0x01},       // grp3 /1 alias
		{0x66, 0xf7, 0xc8, 1, 0}, // grp3 /1 alias with a prefix
	} {
		_, events := run(t, cat(enc, hlt), nil)
		found := false
		for _, ev := range events {
			if ev.Kind == emu.EventException && ev.Exception.Vector == x86.ExcUD {
				found = true
			}
		}
		if !found {
			t.Errorf("% x: alias encoding not rejected", enc)
		}
	}
}

func TestCelerSegmentBaseStillApplied(t *testing.T) {
	// Missing limit checks must not mean missing base arithmetic.
	code := cat(
		x86.AsmMovMemImm32(0x301000, 0xaabbccdd),
		x86.AsmMovRegImm32(x86.EBX, 0x1000),
		[]byte{0x64, 0x8b, 0x03}, // mov %fs:(%ebx), %eax
		hlt,
	)
	m, _ := run(t, code, func(m *machine.Machine) {
		m.Seg[x86.FS].Base = 0x300000
	})
	if m.GPR[x86.EAX] != 0xaabbccdd {
		t.Errorf("eax = %#x; segment base ignored", m.GPR[x86.EAX])
	}
}

func TestCelerDeliveryMatchesFrameLayout(t *testing.T) {
	// int3 → handler: the exception frame layout must match the
	// architecture (EIP at esp, CS at esp+4, EFLAGS at esp+8).
	code := cat([]byte{0xcc}, hlt)
	m, _ := run(t, code, nil)
	esp := m.GPR[x86.ESP]
	if got := uint32(m.Mem.Read(esp, 4)); got != machine.CodeBase+1 {
		t.Errorf("pushed EIP = %#x", got)
	}
	if got := uint16(m.Mem.Read(esp+4, 2)); got != machine.SelCode {
		t.Errorf("pushed CS = %#x", got)
	}
	if fl := uint32(m.Mem.Read(esp+8, 4)); fl&x86.EflagsFixed1 == 0 {
		t.Errorf("pushed EFLAGS = %#x", fl)
	}
	if m.EFLAGS&(1<<x86.FlagIF) != 0 {
		t.Error("interrupt gate must clear IF")
	}
}

func TestCelerRepStringTimeout(t *testing.T) {
	// rep lodsb reads only, so a huge count cannot self-destruct the page
	// tables the way a huge rep movsb does (which ends in a triple fault);
	// it must hit the internal iteration budget instead.
	code := cat(
		x86.AsmMovRegImm32(x86.ECX, 0xffffffff),
		x86.AsmMovRegImm32(x86.ESI, 0x300000),
		[]byte{0xf3, 0xac}, // rep lodsb with a huge count
		hlt,
	)
	_, events := run(t, code, nil)
	last := events[len(events)-1]
	if last.Kind != emu.EventTimeout {
		t.Errorf("expected a timeout event, got %v", last.Kind)
	}
}

func TestCelerRepMovsSelfDestructMatchesReferences(t *testing.T) {
	// The runaway rep movsb tramples the page tables and triple-faults;
	// the Lo-Fi and Hi-Fi implementations must agree on that spectacle.
	code := cat(
		x86.AsmMovRegImm32(x86.ECX, 0xffffffff),
		x86.AsmMovRegImm32(x86.ESI, 0x300000),
		x86.AsmMovRegImm32(x86.EDI, 0x310000),
		[]byte{0xf3, 0xa4},
		hlt,
	)
	_, events := run(t, code, nil)
	last := events[len(events)-1]
	if last.Kind != emu.EventShutdown {
		t.Errorf("expected shutdown (triple fault), got %v", last.Kind)
	}
}

func TestCelerDivByZero(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 5),
		x86.AsmMovRegImm32(x86.ECX, 0),
		[]byte{0xf7, 0xf1},
		hlt,
	)
	_, events := run(t, code, nil)
	found := false
	for _, ev := range events {
		if ev.Kind == emu.EventException && ev.Exception.Vector == x86.ExcDE {
			found = true
		}
	}
	if !found {
		t.Error("expected #DE")
	}
}

func TestCelerIdivMinInt(t *testing.T) {
	// INT_MIN / -1 must raise #DE, not panic.
	code := cat(
		x86.AsmMovRegImm32(x86.EDX, 0x80000000),
		x86.AsmMovRegImm32(x86.EAX, 0),
		x86.AsmMovRegImm32(x86.ECX, 0xffffffff),
		[]byte{0xf7, 0xf9}, // idiv %ecx
		hlt,
	)
	_, events := run(t, code, nil)
	found := false
	for _, ev := range events {
		if ev.Kind == emu.EventException && ev.Exception.Vector == x86.ExcDE {
			found = true
		}
	}
	if !found {
		t.Error("expected #DE for the overflowing division")
	}
}
