package celer

import (
	"strings"

	"pokeemu/internal/x86"
)

// place is a resolved operand location.
type place struct {
	isReg bool
	reg   uint8
	seg   x86.SegReg
	off   uint32
	prep  *preparedWrite
	w     uint8
}

// resolveRM resolves the r/m operand; with write set, memory destinations
// are write-translated up front (ordinary RMW atomicity).
func (e *Emulator) resolveRM(inst *x86.Inst, w uint8, write bool) (place, *fault) {
	if inst.Mod() == 3 {
		return place{isReg: true, reg: inst.RM(), w: w}, nil
	}
	seg, off := e.effAddr(inst)
	p := place{seg: seg, off: off, w: w}
	if write {
		prep, f := e.prepareWrite(e.linAddr(seg, off), w/8)
		if f != nil {
			return place{}, f
		}
		p.prep = prep
	}
	return p, nil
}

func (e *Emulator) readPlace(p place) (uint32, *fault) {
	if p.isReg {
		return e.gprRead(p.reg, p.w), nil
	}
	if p.prep != nil {
		return e.readPrepared(p.prep), nil
	}
	return e.memRead(p.seg, p.off, p.w/8)
}

func (e *Emulator) writePlace(p place, v uint32) *fault {
	if p.isReg {
		e.gprWrite(p.reg, p.w, v)
		return nil
	}
	if p.prep != nil {
		e.writePrepared(p.prep, v)
		return nil
	}
	return e.memWrite(p.seg, p.off, v, p.w/8)
}

// finish advances EIP past the instruction.
func (e *Emulator) finish(inst *x86.Inst) *fault {
	e.m.EIP += uint32(inst.Len)
	return nil
}

// aluKind is the pre-lowered binary-ALU operation.
type aluKind uint8

const (
	aluAdd aluKind = iota
	aluOr
	aluAdc
	aluSbb
	aluAnd
	aluSub
	aluXor
	aluCmp
	aluTest
)

func aluOf(op string) aluKind {
	switch op {
	case "add":
		return aluAdd
	case "or":
		return aluOr
	case "adc":
		return aluAdc
	case "sbb":
		return aluSbb
	case "and":
		return aluAnd
	case "sub":
		return aluSub
	case "xor":
		return aluXor
	case "cmp":
		return aluCmp
	case "test":
		return aluTest
	}
	panic("celer: bad alu op " + op)
}

// opd is a pre-parsed operand form token.
type opd struct {
	kind opdKind
	w    uint8
}

type opdKind uint8

const (
	opdRM  opdKind = iota // the r/m operand, width w
	opdReg                // the reg field, width w
	opdAcc                // AL/eAX, width w
	opdImm                // an immediate
)

func parseOpd(tok string, osz uint8) opd {
	switch tok {
	case "rm8":
		return opd{opdRM, 8}
	case "rmv":
		return opd{opdRM, osz}
	case "r8":
		return opd{opdReg, 8}
	case "rv":
		return opd{opdReg, osz}
	case "al":
		return opd{opdAcc, 8}
	case "eax":
		return opd{opdAcc, osz}
	case "imm8", "immv", "imm8s":
		return opd{opdImm, 0}
	}
	panic("celer: bad form " + tok)
}

func lowerBinALU(inst *x86.Inst, opName, form string, osz uint8) opFunc {
	i := strings.IndexByte(form, '_')
	dst := parseOpd(form[:i], osz)
	src := parseOpd(form[i+1:], osz)
	op := aluOf(opName)
	readOnly := op == aluCmp || op == aluTest
	w := dst.w
	if w == 0 {
		w = osz
	}
	imm := uint32(inst.Imm)

	read := func(e *Emulator, o opd, isDst bool) (place, uint32, *fault) {
		switch o.kind {
		case opdRM:
			p, f := e.resolveRM(inst, o.w, isDst && !readOnly)
			if f != nil {
				return place{}, 0, f
			}
			v, f := e.readPlace(p)
			return p, v, f
		case opdReg:
			return place{isReg: true, reg: inst.RegField(), w: o.w},
				e.gprRead(inst.RegField(), o.w), nil
		case opdAcc:
			return place{isReg: true, reg: 0, w: o.w}, e.gprRead(0, o.w), nil
		}
		return place{}, imm, nil
	}
	return func(e *Emulator) *fault {
		dstP, a, f := read(e, dst, true)
		if f != nil {
			return f
		}
		_, b, f := read(e, src, false)
		if f != nil {
			return f
		}
		var r uint32
		switch op {
		case aluAdd:
			r = (a + b) & mask(w)
			e.addFlags(a, b, 0, r, w)
		case aluAdc:
			cin := e.flag(x86.FlagCF)
			r = (a + b + cin) & mask(w)
			e.addFlags(a, b, cin, r, w)
		case aluSub, aluCmp:
			r = (a - b) & mask(w)
			e.subFlags(a, b, 0, r, w)
		case aluSbb:
			cin := e.flag(x86.FlagCF)
			r = (a - b - cin) & mask(w)
			e.subFlags(a, b, cin, r, w)
		case aluAnd, aluTest:
			r = a & b
			e.logicFlags(r, w)
		case aluOr:
			r = a | b
			e.logicFlags(r, w)
		case aluXor:
			r = a ^ b
			e.logicFlags(r, w)
		}
		if !readOnly {
			if f := e.writePlace(dstP, r); f != nil {
				return f
			}
		}
		return e.finish(inst)
	}
}

func lowerIncDec(inst *x86.Inst, isInc bool, form string, osz uint8) opFunc {
	regForm := form == "r"
	reg := inst.Opcode & 7
	w := osz
	if form == "rm8" {
		w = 8
	}
	return func(e *Emulator) *fault {
		var p place
		var f *fault
		if regForm {
			p = place{isReg: true, reg: reg, w: osz}
		} else {
			p, f = e.resolveRM(inst, w, true)
			if f != nil {
				return f
			}
		}
		a, f := e.readPlace(p)
		if f != nil {
			return f
		}
		pw := p.w
		var r uint32
		if isInc {
			r = (a + 1) & mask(pw)
			e.setFlagBit(x86.FlagOF, (^(a^1)&(a^r))>>(pw-1)&1)
		} else {
			r = (a - 1) & mask(pw)
			e.setFlagBit(x86.FlagOF, ((a^1)&(a^r))>>(pw-1)&1)
		}
		e.setFlagBit(x86.FlagAF, (a^1^r)>>4&1)
		e.setSZP(r, pw)
		return firstFault(e.writePlace(p, r), e.finish(inst))
	}
}

func firstFault(fs ...*fault) *fault {
	for _, f := range fs {
		if f != nil {
			return f
		}
	}
	return nil
}

func lowerNotNeg(inst *x86.Inst, isNeg bool, form string, osz uint8) opFunc {
	w := osz
	if form == "rm8" {
		w = 8
	}
	return func(e *Emulator) *fault {
		p, f := e.resolveRM(inst, w, true)
		if f != nil {
			return f
		}
		a, f := e.readPlace(p)
		if f != nil {
			return f
		}
		if isNeg {
			r := (-a) & mask(w)
			e.subFlags(0, a, 0, r, w)
			return firstFault(e.writePlace(p, r), e.finish(inst))
		}
		return firstFault(e.writePlace(p, ^a&mask(w)), e.finish(inst))
	}
}

func lowerMulOne(inst *x86.Inst, signed bool, form string, osz uint8) opFunc {
	w := osz
	if form == "rm8" {
		w = 8
	}
	return func(e *Emulator) *fault {
		p, f := e.resolveRM(inst, w, false)
		if f != nil {
			return f
		}
		mv, f := e.readPlace(p)
		if f != nil {
			return f
		}
		a := e.gprRead(0, w)
		var wide uint64
		if signed {
			wide = uint64(int64(signExt(a, w)) * int64(signExt(mv, w)))
		} else {
			wide = uint64(a) * uint64(mv)
		}
		lo := uint32(wide) & mask(w)
		hi := uint32(wide>>w) & mask(w)
		if w == 8 {
			e.gprWrite(0, 16, uint32(wide)&0xffff)
		} else {
			e.gprWrite(0, w, lo)
			e.gprWrite(2, w, hi)
		}
		var over uint32
		if signed {
			full := int64(signExt(a, w)) * int64(signExt(mv, w))
			if signExt(lo, w) != full {
				over = 1
			}
		} else if hi != 0 {
			over = 1
		}
		e.setFlagBit(x86.FlagCF, over)
		e.setFlagBit(x86.FlagOF, over)
		// SF/ZF/AF/PF left unchanged (undefined).
		return e.finish(inst)
	}
}

func signExt(v uint32, w uint8) int64 {
	return int64(v&mask(w)) << (64 - uint(w)) >> (64 - uint(w))
}

func lowerImulMulti(inst *x86.Inst, threeOp bool, osz uint8) opFunc {
	imm := uint32(inst.Imm)
	return func(e *Emulator) *fault {
		p, f := e.resolveRM(inst, osz, false)
		if f != nil {
			return f
		}
		mv, f := e.readPlace(p)
		if f != nil {
			return f
		}
		var a uint32
		if threeOp {
			a = imm
		} else {
			a = e.gprRead(inst.RegField(), osz)
		}
		wide := int64(signExt(a, osz)) * int64(signExt(mv, osz))
		r := uint32(wide) & mask(osz)
		var over uint32
		if int64(signExt(r, osz)) != wide {
			over = 1
		}
		e.gprWrite(inst.RegField(), osz, r)
		e.setFlagBit(x86.FlagCF, over)
		e.setFlagBit(x86.FlagOF, over)
		return e.finish(inst)
	}
}

func lowerDivide(inst *x86.Inst, signed bool, form string, osz uint8) opFunc {
	w := osz
	if form == "rm8" {
		w = 8
	}
	return func(e *Emulator) *fault {
		p, f := e.resolveRM(inst, w, false)
		if f != nil {
			return f
		}
		d, f := e.readPlace(p)
		if f != nil {
			return f
		}
		if d&mask(w) == 0 {
			return &fault{vec: x86.ExcDE}
		}
		var dividend uint64
		if w == 8 {
			dividend = uint64(e.gprRead(0, 16))
		} else {
			dividend = uint64(e.gprRead(2, w))<<w | uint64(e.gprRead(0, w))
		}
		var q, r uint64
		if signed {
			sd := int64(dividend) << (64 - 2*uint(w)) >> (64 - 2*uint(w))
			sv := signExt(d, w)
			if sv == -1 && uint64(sd) == 1<<63 {
				return &fault{vec: x86.ExcDE} // MinInt64 / -1 overflows
			}
			sq := sd / sv
			sr := sd % sv
			// Quotient must fit signed in w bits.
			if sq != int64(signExt(uint32(sq)&mask(w), w)) {
				return &fault{vec: x86.ExcDE}
			}
			q, r = uint64(sq), uint64(sr)
		} else {
			q = dividend / uint64(d&mask(w))
			r = dividend % uint64(d&mask(w))
			if q > uint64(mask(w)) {
				return &fault{vec: x86.ExcDE}
			}
		}
		if w == 8 {
			e.gprWrite(0, 16, uint32(r&0xff)<<8|uint32(q&0xff))
		} else {
			e.gprWrite(0, w, uint32(q)&mask(w))
			e.gprWrite(2, w, uint32(r)&mask(w))
		}
		// All flags undefined: left unchanged (matches the hardware policy).
		return e.finish(inst)
	}
}

func lowerCmpxchg(inst *x86.Inst, byteForm bool, osz uint8) opFunc {
	w := osz
	if byteForm {
		w = 8
	}
	return func(e *Emulator) *fault {
		// Finding 3: the destination is read without write translation; the
		// accumulator and flags are updated before the write is attempted, so a
		// write fault leaves them corrupted.
		p, f := e.resolveRM(inst, w, false)
		if f != nil {
			return f
		}
		old, f := e.readPlace(p)
		if f != nil {
			return f
		}
		acc := e.gprRead(0, w)
		src := e.gprRead(inst.RegField(), w)
		e.subFlags(acc, old, 0, (acc-old)&mask(w), w)
		var toWrite uint32
		if acc == old {
			toWrite = src
		} else {
			e.gprWrite(0, w, old) // accumulator updated before the write check
			toWrite = old
		}
		if f := e.writePlace(p, toWrite); f != nil {
			return f
		}
		return e.finish(inst)
	}
}

// shrotOp is the pre-lowered shift/rotate operation.
type shrotOp uint8

const (
	srRol shrotOp = iota
	srRor
	srRcl
	srRcr
	srShl
	srShr
	srSar
)

func shrotOf(op string) shrotOp {
	switch op {
	case "rol":
		return srRol
	case "ror":
		return srRor
	case "rcl":
		return srRcl
	case "rcr":
		return srRcr
	case "shl":
		return srShl
	case "shr":
		return srShr
	case "sar":
		return srSar
	}
	panic("celer: bad shift op " + op)
}

// amtKind is the pre-lowered shift-count source.
type amtKind uint8

const (
	amtImm amtKind = iota
	amtOne
	amtCL
)

func lowerShiftRotate(inst *x86.Inst, opName, form string, osz uint8) opFunc {
	i := strings.IndexByte(form, '_')
	dstTok, amtTok := form[:i], form[i+1:]
	op := shrotOf(opName)
	w := osz
	if dstTok == "rm8" {
		w = 8
	}
	var ak amtKind
	switch amtTok {
	case "imm8":
		ak = amtImm
	case "1":
		ak = amtOne
	case "cl":
		ak = amtCL
	}
	immCount := uint32(inst.Imm) & 0x1f
	return func(e *Emulator) *fault {
		p, f := e.resolveRM(inst, w, true)
		if f != nil {
			return f
		}
		a, f := e.readPlace(p)
		if f != nil {
			return f
		}
		var count uint32
		switch ak {
		case amtImm:
			count = immCount
		case amtOne:
			count = 1
		case amtCL:
			count = e.gprRead(1, 8) & 0x1f
		}
		if count == 0 {
			return firstFault(e.writePlace(p, a), e.finish(inst))
		}
		one := count == 1
		setOF := func(v uint32) {
			if one {
				e.setFlagBit(x86.FlagOF, v)
			}
			// count > 1: OF undefined, left unchanged (finding 8).
		}
		var r uint32
		switch op {
		case srShl:
			wide := uint64(a&mask(w)) << count
			r = uint32(wide) & mask(w)
			cf := uint32(wide>>w) & 1
			if count > uint32(w) {
				cf = 0
			}
			e.setFlagBit(x86.FlagCF, cf)
			setOF(r>>(w-1)&1 ^ cf)
			e.setSZP(r, w)
		case srShr:
			am := a & mask(w)
			if count >= uint32(w) {
				r = 0
				// At count == w the last bit shifted out is the operand's MSB;
				// only counts beyond the width shift out nothing but zeros.
				cf := uint32(0)
				if count == uint32(w) {
					cf = am >> (w - 1) & 1
				}
				e.setFlagBit(x86.FlagCF, cf)
			} else {
				r = am >> count
				e.setFlagBit(x86.FlagCF, am>>(count-1)&1)
			}
			setOF(a >> (w - 1) & 1)
			e.setSZP(r, w)
		case srSar:
			s := signExt(a, w)
			n := count
			if n > uint32(w)-1 {
				n = uint32(w) - 1
				r = uint32(s>>n) & mask(w)
				e.setFlagBit(x86.FlagCF, uint32(s>>(w-1))&1)
			} else {
				r = uint32(s>>n) & mask(w)
				e.setFlagBit(x86.FlagCF, uint32(s>>(n-1))&1)
			}
			setOF(0)
			e.setSZP(r, w)
		case srRol, srRor:
			n := count % uint32(w)
			am := a & mask(w)
			if n == 0 {
				r = am
			} else if op == srRol {
				r = (am<<n | am>>(uint32(w)-n)) & mask(w)
			} else {
				r = (am>>n | am<<(uint32(w)-n)) & mask(w)
			}
			if op == srRol {
				e.setFlagBit(x86.FlagCF, r&1)
				setOF(r>>(w-1)&1 ^ r&1)
			} else {
				e.setFlagBit(x86.FlagCF, r>>(w-1)&1)
				setOF(r>>(w-1)&1 ^ r>>(w-2)&1)
			}
		case srRcl, srRcr:
			n := count % (uint32(w) + 1)
			x := uint64(a&mask(w)) | uint64(e.flag(x86.FlagCF))<<w
			wmask := uint64(1)<<(w+1) - 1
			var rx uint64
			if n == 0 {
				rx = x
			} else if op == srRcl {
				rx = (x<<n | x>>(uint64(w)+1-uint64(n))) & wmask
			} else {
				rx = (x>>n | x<<(uint64(w)+1-uint64(n))) & wmask
			}
			r = uint32(rx) & mask(w)
			ncf := uint32(rx>>w) & 1
			e.setFlagBit(x86.FlagCF, ncf)
			if op == srRcl {
				setOF(r>>(w-1)&1 ^ ncf)
			} else {
				setOF(r>>(w-1)&1 ^ r>>(w-2)&1)
			}
		}
		return firstFault(e.writePlace(p, r), e.finish(inst))
	}
}
