package celer

import (
	"strings"

	"pokeemu/internal/x86"
)

// translate builds the executable closure for one decoded instruction.
// Dispatch happens once per translation-cache miss.
func translate(inst *x86.Inst) opFunc {
	// LOCK prefix legality matches the architecture.
	if inst.Lock && (!inst.Spec.LockOK || inst.IsRegForm() || !inst.HasModRM) {
		return func(e *Emulator) *fault { return &fault{vec: x86.ExcUD} }
	}
	return func(e *Emulator) *fault { return e.exec(inst) }
}

// place is a resolved operand location.
type place struct {
	isReg bool
	reg   uint8
	seg   x86.SegReg
	off   uint32
	prep  *preparedWrite
	w     uint8
}

// resolveRM resolves the r/m operand; with write set, memory destinations
// are write-translated up front (ordinary RMW atomicity).
func (e *Emulator) resolveRM(inst *x86.Inst, w uint8, write bool) (place, *fault) {
	if inst.Mod() == 3 {
		return place{isReg: true, reg: inst.RM(), w: w}, nil
	}
	seg, off := e.effAddr(inst)
	p := place{seg: seg, off: off, w: w}
	if write {
		prep, f := e.prepareWrite(e.linAddr(seg, off), w/8)
		if f != nil {
			return place{}, f
		}
		p.prep = prep
	}
	return p, nil
}

func (e *Emulator) readPlace(p place) (uint32, *fault) {
	if p.isReg {
		return e.gprRead(p.reg, p.w), nil
	}
	if p.prep != nil {
		return e.readPrepared(p.prep), nil
	}
	return e.memRead(p.seg, p.off, p.w/8)
}

func (e *Emulator) writePlace(p place, v uint32) *fault {
	if p.isReg {
		e.gprWrite(p.reg, p.w, v)
		return nil
	}
	if p.prep != nil {
		e.writePrepared(p.prep, v)
		return nil
	}
	return e.memWrite(p.seg, p.off, v, p.w/8)
}

// finish advances EIP past the instruction.
func (e *Emulator) finish(inst *x86.Inst) *fault {
	e.m.EIP += uint32(inst.Len)
	return nil
}

func (e *Emulator) exec(inst *x86.Inst) *fault {
	name := inst.Spec.Name
	osz := uint8(inst.OpSize)
	m := e.m

	// Family parsing like the reference semantics.
	op := name
	form := ""
	if us := strings.IndexByte(name, '_'); us >= 0 {
		op, form = name[:us], name[us+1:]
	}

	switch op {
	case "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "test":
		return e.binALU(inst, op, form, osz)
	case "inc", "dec":
		return e.incDec(inst, op == "inc", form, osz)
	case "not", "neg":
		return e.notNeg(inst, op == "neg", form, osz)
	case "mul", "imul", "imul1":
		return e.mulOne(inst, op != "mul", form, osz)
	case "imul2", "imul3":
		return e.imulMulti(inst, op == "imul3", osz)
	case "div", "idiv":
		return e.divide(inst, op == "idiv", form, osz)
	case "rol", "ror", "rcl", "rcr", "shl", "shr", "sar":
		return e.shiftRotate(inst, op, form, osz)
	case "movs", "cmps", "stos", "lods", "scas":
		return e.stringOp(inst, op, form, osz)
	}

	switch name {
	case "nop":
		return e.finish(inst)
	case "ud2":
		return &fault{vec: x86.ExcUD}
	case "hlt":
		e.finish(inst)
		return &fault{vec: vecHalt}
	case "mov_rm8_r8", "mov_rmv_rv", "mov_r8_rm8", "mov_rv_rmv",
		"mov_rm8_imm8", "mov_rmv_immv":
		return e.movGeneric(inst, strings.TrimPrefix(name, "mov_"), osz)
	case "mov_r8_imm8":
		e.gprWrite(inst.Opcode&7, 8, uint32(inst.Imm))
		return e.finish(inst)
	case "mov_r_immv":
		e.gprWrite(inst.Opcode&7, osz, uint32(inst.Imm))
		return e.finish(inst)
	case "mov_al_moffs", "mov_eax_moffs", "mov_moffs_al", "mov_moffs_eax":
		return e.movMoffs(inst, name, osz)
	case "lea":
		_, off := e.effAddr(inst)
		e.gprWrite(inst.RegField(), osz, off)
		return e.finish(inst)
	case "movzx_rv_rm8", "movzx_rv_rm16", "movsx_rv_rm8", "movsx_rv_rm16":
		return e.movExtend(inst, name, osz)
	case "xlat":
		seg := x86.DS
		if inst.SegOverride >= 0 {
			seg = x86.SegReg(inst.SegOverride)
		}
		v, f := e.memRead(seg, m.GPR[x86.EBX]+e.gprRead(0, 8), 1)
		if f != nil {
			return f
		}
		e.gprWrite(0, 8, v)
		return e.finish(inst)
	case "xchg_eax_r":
		r := inst.Opcode & 7
		a, b := e.gprRead(0, osz), e.gprRead(r, osz)
		e.gprWrite(0, osz, b)
		e.gprWrite(r, osz, a)
		return e.finish(inst)
	case "xchg_rm8_r8", "xchg_rmv_rv":
		w := osz
		if name == "xchg_rm8_r8" {
			w = 8
		}
		dst, f := e.resolveRM(inst, w, true)
		if f != nil {
			return f
		}
		a, _ := e.readPlace(dst)
		b := e.gprRead(inst.RegField(), w)
		e.writePlace(dst, b)
		e.gprWrite(inst.RegField(), w, a)
		return e.finish(inst)
	case "xadd_rm8_r8", "xadd_rmv_rv":
		w := osz
		if name == "xadd_rm8_r8" {
			w = 8
		}
		dst, f := e.resolveRM(inst, w, true)
		if f != nil {
			return f
		}
		a, _ := e.readPlace(dst)
		b := e.gprRead(inst.RegField(), w)
		sum := (a + b) & mask(w)
		e.addFlags(a, b, 0, sum, w)
		e.gprWrite(inst.RegField(), w, a)
		e.writePlace(dst, sum)
		return e.finish(inst)
	case "cmpxchg_rm8_r8", "cmpxchg_rmv_rv":
		return e.cmpxchg(inst, name == "cmpxchg_rm8_r8", osz)
	case "bswap":
		r := inst.Opcode & 7
		v := m.GPR[r]
		m.GPR[r] = v<<24 | v>>24 | v<<8&0xff0000 | v>>8&0xff00
		return e.finish(inst)
	case "cwde":
		if osz == 32 {
			e.gprWrite(0, 32, uint32(int32(int16(e.gprRead(0, 16)))))
		} else {
			e.gprWrite(0, 16, uint32(int16(int8(e.gprRead(0, 8)))))
		}
		return e.finish(inst)
	case "cdq":
		a := e.gprRead(0, osz)
		if a>>(osz-1)&1 == 1 {
			e.gprWrite(2, osz, mask(osz))
		} else {
			e.gprWrite(2, osz, 0)
		}
		return e.finish(inst)
	case "lahf":
		v := e.flag(x86.FlagCF) | 2 | e.flag(x86.FlagPF)<<2 |
			e.flag(x86.FlagAF)<<4 | e.flag(x86.FlagZF)<<6 | e.flag(x86.FlagSF)<<7
		e.gprWrite(4, 8, v)
		return e.finish(inst)
	case "sahf":
		ah := e.gprRead(4, 8)
		e.setFlagBit(x86.FlagCF, ah)
		e.setFlagBit(x86.FlagPF, ah>>2)
		e.setFlagBit(x86.FlagAF, ah>>4)
		e.setFlagBit(x86.FlagZF, ah>>6)
		e.setFlagBit(x86.FlagSF, ah>>7)
		return e.finish(inst)
	case "clc":
		e.setFlagBit(x86.FlagCF, 0)
		return e.finish(inst)
	case "stc":
		e.setFlagBit(x86.FlagCF, 1)
		return e.finish(inst)
	case "cmc":
		e.setFlagBit(x86.FlagCF, e.flag(x86.FlagCF)^1)
		return e.finish(inst)
	case "cld":
		e.setFlagBit(x86.FlagDF, 0)
		return e.finish(inst)
	case "std":
		e.setFlagBit(x86.FlagDF, 1)
		return e.finish(inst)
	case "cli":
		e.setFlagBit(x86.FlagIF, 0)
		return e.finish(inst)
	case "sti":
		e.setFlagBit(x86.FlagIF, 1)
		return e.finish(inst)
	case "aam":
		imm := uint32(inst.Imm) & 0xff
		if imm == 0 {
			return &fault{vec: x86.ExcDE}
		}
		al := e.gprRead(0, 8)
		e.gprWrite(4, 8, al/imm)
		e.gprWrite(0, 8, al%imm)
		e.setSZP(al%imm, 8)
		e.setFlagBit(x86.FlagCF, 0)
		e.setFlagBit(x86.FlagOF, 0)
		e.setFlagBit(x86.FlagAF, 0)
		return e.finish(inst)
	case "aad":
		imm := uint32(inst.Imm) & 0xff
		r := (e.gprRead(0, 8) + e.gprRead(4, 8)*imm) & 0xff
		e.gprWrite(0, 16, r)
		e.setSZP(r, 8)
		e.setFlagBit(x86.FlagCF, 0)
		e.setFlagBit(x86.FlagOF, 0)
		e.setFlagBit(x86.FlagAF, 0)
		return e.finish(inst)
	}

	if f, handled := e.execStackFlow(inst, name, osz); handled {
		return f
	}
	if f, handled := e.execSystem(inst, name, osz); handled {
		return f
	}
	if f, handled := e.execBits(inst, name, osz); handled {
		return f
	}
	panic("celer: no implementation for handler " + name)
}

func (e *Emulator) binALU(inst *x86.Inst, op, form string, osz uint8) *fault {
	i := strings.IndexByte(form, '_')
	dstTok, srcTok := form[:i], form[i+1:]
	readOnly := op == "cmp" || op == "test"

	read := func(tok string) (place, uint32, *fault) {
		switch tok {
		case "rm8", "rmv":
			w := osz
			if tok == "rm8" {
				w = 8
			}
			p, f := e.resolveRM(inst, w, !readOnly && tok == dstTok)
			if f != nil {
				return place{}, 0, f
			}
			v, f := e.readPlace(p)
			return p, v, f
		case "r8":
			return place{isReg: true, reg: inst.RegField(), w: 8},
				e.gprRead(inst.RegField(), 8), nil
		case "rv":
			return place{isReg: true, reg: inst.RegField(), w: osz},
				e.gprRead(inst.RegField(), osz), nil
		case "al":
			return place{isReg: true, reg: 0, w: 8}, e.gprRead(0, 8), nil
		case "eax":
			return place{isReg: true, reg: 0, w: osz}, e.gprRead(0, osz), nil
		case "imm8":
			return place{}, uint32(inst.Imm), nil
		case "immv", "imm8s":
			return place{}, uint32(inst.Imm), nil
		}
		panic("celer: bad form " + tok)
	}
	dst, a, f := read(dstTok)
	if f != nil {
		return f
	}
	_, b, f := read(srcTok)
	if f != nil {
		return f
	}
	w := dst.w
	if w == 0 {
		w = osz
	}
	var r uint32
	switch op {
	case "add":
		r = (a + b) & mask(w)
		e.addFlags(a, b, 0, r, w)
	case "adc":
		cin := e.flag(x86.FlagCF)
		r = (a + b + cin) & mask(w)
		e.addFlags(a, b, cin, r, w)
	case "sub", "cmp":
		r = (a - b) & mask(w)
		e.subFlags(a, b, 0, r, w)
	case "sbb":
		cin := e.flag(x86.FlagCF)
		r = (a - b - cin) & mask(w)
		e.subFlags(a, b, cin, r, w)
	case "and", "test":
		r = a & b
		e.logicFlags(r, w)
	case "or":
		r = a | b
		e.logicFlags(r, w)
	case "xor":
		r = a ^ b
		e.logicFlags(r, w)
	}
	if !readOnly {
		if f := e.writePlace(dst, r); f != nil {
			return f
		}
	}
	return e.finish(inst)
}

func (e *Emulator) incDec(inst *x86.Inst, isInc bool, form string, osz uint8) *fault {
	var p place
	var f *fault
	if form == "r" {
		p = place{isReg: true, reg: inst.Opcode & 7, w: osz}
	} else {
		w := osz
		if form == "rm8" {
			w = 8
		}
		p, f = e.resolveRM(inst, w, true)
		if f != nil {
			return f
		}
	}
	a, f := e.readPlace(p)
	if f != nil {
		return f
	}
	w := p.w
	var r uint32
	if isInc {
		r = (a + 1) & mask(w)
		e.setFlagBit(x86.FlagOF, (^(a^1)&(a^r))>>(w-1)&1)
	} else {
		r = (a - 1) & mask(w)
		e.setFlagBit(x86.FlagOF, ((a^1)&(a^r))>>(w-1)&1)
	}
	e.setFlagBit(x86.FlagAF, (a^1^r)>>4&1)
	e.setSZP(r, w)
	return firstFault(e.writePlace(p, r), e.finish(inst))
}

func firstFault(fs ...*fault) *fault {
	for _, f := range fs {
		if f != nil {
			return f
		}
	}
	return nil
}

func (e *Emulator) notNeg(inst *x86.Inst, isNeg bool, form string, osz uint8) *fault {
	w := osz
	if form == "rm8" {
		w = 8
	}
	p, f := e.resolveRM(inst, w, true)
	if f != nil {
		return f
	}
	a, f := e.readPlace(p)
	if f != nil {
		return f
	}
	if isNeg {
		r := (-a) & mask(w)
		e.subFlags(0, a, 0, r, w)
		return firstFault(e.writePlace(p, r), e.finish(inst))
	}
	return firstFault(e.writePlace(p, ^a&mask(w)), e.finish(inst))
}

func (e *Emulator) mulOne(inst *x86.Inst, signed bool, form string, osz uint8) *fault {
	w := osz
	if form == "rm8" {
		w = 8
	}
	p, f := e.resolveRM(inst, w, false)
	if f != nil {
		return f
	}
	mv, f := e.readPlace(p)
	if f != nil {
		return f
	}
	a := e.gprRead(0, w)
	var wide uint64
	if signed {
		wide = uint64(int64(signExt(a, w)) * int64(signExt(mv, w)))
	} else {
		wide = uint64(a) * uint64(mv)
	}
	lo := uint32(wide) & mask(w)
	hi := uint32(wide>>w) & mask(w)
	if w == 8 {
		e.gprWrite(0, 16, uint32(wide)&0xffff)
	} else {
		e.gprWrite(0, w, lo)
		e.gprWrite(2, w, hi)
	}
	var over uint32
	if signed {
		full := int64(signExt(a, w)) * int64(signExt(mv, w))
		if signExt(lo, w) != full {
			over = 1
		}
	} else if hi != 0 {
		over = 1
	}
	e.setFlagBit(x86.FlagCF, over)
	e.setFlagBit(x86.FlagOF, over)
	// SF/ZF/AF/PF left unchanged (undefined).
	return e.finish(inst)
}

func signExt(v uint32, w uint8) int64 {
	return int64(v&mask(w)) << (64 - uint(w)) >> (64 - uint(w))
}

func (e *Emulator) imulMulti(inst *x86.Inst, threeOp bool, osz uint8) *fault {
	p, f := e.resolveRM(inst, osz, false)
	if f != nil {
		return f
	}
	mv, f := e.readPlace(p)
	if f != nil {
		return f
	}
	var a uint32
	if threeOp {
		a = uint32(inst.Imm)
	} else {
		a = e.gprRead(inst.RegField(), osz)
	}
	wide := int64(signExt(a, osz)) * int64(signExt(mv, osz))
	r := uint32(wide) & mask(osz)
	var over uint32
	if int64(signExt(r, osz)) != wide {
		over = 1
	}
	e.gprWrite(inst.RegField(), osz, r)
	e.setFlagBit(x86.FlagCF, over)
	e.setFlagBit(x86.FlagOF, over)
	return e.finish(inst)
}

func (e *Emulator) divide(inst *x86.Inst, signed bool, form string, osz uint8) *fault {
	w := osz
	if form == "rm8" {
		w = 8
	}
	p, f := e.resolveRM(inst, w, false)
	if f != nil {
		return f
	}
	d, f := e.readPlace(p)
	if f != nil {
		return f
	}
	if d&mask(w) == 0 {
		return &fault{vec: x86.ExcDE}
	}
	var dividend uint64
	if w == 8 {
		dividend = uint64(e.gprRead(0, 16))
	} else {
		dividend = uint64(e.gprRead(2, w))<<w | uint64(e.gprRead(0, w))
	}
	var q, r uint64
	if signed {
		sd := int64(dividend) << (64 - 2*uint(w)) >> (64 - 2*uint(w))
		sv := signExt(d, w)
		if sv == -1 && uint64(sd) == 1<<63 {
			return &fault{vec: x86.ExcDE} // MinInt64 / -1 overflows
		}
		sq := sd / sv
		sr := sd % sv
		// Quotient must fit signed in w bits.
		if sq != int64(signExt(uint32(sq)&mask(w), w)) {
			return &fault{vec: x86.ExcDE}
		}
		q, r = uint64(sq), uint64(sr)
	} else {
		q = dividend / uint64(d&mask(w))
		r = dividend % uint64(d&mask(w))
		if q > uint64(mask(w)) {
			return &fault{vec: x86.ExcDE}
		}
	}
	if w == 8 {
		e.gprWrite(0, 16, uint32(r&0xff)<<8|uint32(q&0xff))
	} else {
		e.gprWrite(0, w, uint32(q)&mask(w))
		e.gprWrite(2, w, uint32(r)&mask(w))
	}
	// All flags undefined: left unchanged (matches the hardware policy).
	return e.finish(inst)
}

func (e *Emulator) cmpxchg(inst *x86.Inst, byteForm bool, osz uint8) *fault {
	w := osz
	if byteForm {
		w = 8
	}
	// Finding 3: the destination is read without write translation; the
	// accumulator and flags are updated before the write is attempted, so a
	// write fault leaves them corrupted.
	p, f := e.resolveRM(inst, w, false)
	if f != nil {
		return f
	}
	old, f := e.readPlace(p)
	if f != nil {
		return f
	}
	acc := e.gprRead(0, w)
	src := e.gprRead(inst.RegField(), w)
	e.subFlags(acc, old, 0, (acc-old)&mask(w), w)
	var toWrite uint32
	if acc == old {
		toWrite = src
	} else {
		e.gprWrite(0, w, old) // accumulator updated before the write check
		toWrite = old
	}
	if f := e.writePlace(p, toWrite); f != nil {
		return f
	}
	return e.finish(inst)
}

func (e *Emulator) shiftRotate(inst *x86.Inst, op, form string, osz uint8) *fault {
	i := strings.IndexByte(form, '_')
	dstTok, amtTok := form[:i], form[i+1:]
	w := osz
	if dstTok == "rm8" {
		w = 8
	}
	p, f := e.resolveRM(inst, w, true)
	if f != nil {
		return f
	}
	a, f := e.readPlace(p)
	if f != nil {
		return f
	}
	var count uint32
	switch amtTok {
	case "imm8":
		count = uint32(inst.Imm) & 0x1f
	case "1":
		count = 1
	case "cl":
		count = e.gprRead(1, 8) & 0x1f
	}
	if count == 0 {
		return firstFault(e.writePlace(p, a), e.finish(inst))
	}
	one := count == 1
	setOF := func(v uint32) {
		if one {
			e.setFlagBit(x86.FlagOF, v)
		}
		// count > 1: OF undefined, left unchanged (finding 8).
	}
	var r uint32
	switch op {
	case "shl":
		wide := uint64(a&mask(w)) << count
		r = uint32(wide) & mask(w)
		cf := uint32(wide>>w) & 1
		if count > uint32(w) {
			cf = 0
		}
		e.setFlagBit(x86.FlagCF, cf)
		setOF(r>>(w-1)&1 ^ cf)
		e.setSZP(r, w)
	case "shr":
		am := a & mask(w)
		if count >= uint32(w) {
			r = 0
			// At count == w the last bit shifted out is the operand's MSB;
			// only counts beyond the width shift out nothing but zeros.
			cf := uint32(0)
			if count == uint32(w) {
				cf = am >> (w - 1) & 1
			}
			e.setFlagBit(x86.FlagCF, cf)
		} else {
			r = am >> count
			e.setFlagBit(x86.FlagCF, am>>(count-1)&1)
		}
		setOF(a >> (w - 1) & 1)
		e.setSZP(r, w)
	case "sar":
		s := signExt(a, w)
		n := count
		if n > uint32(w)-1 {
			n = uint32(w) - 1
			r = uint32(s>>n) & mask(w)
			e.setFlagBit(x86.FlagCF, uint32(s>>(w-1))&1)
		} else {
			r = uint32(s>>n) & mask(w)
			e.setFlagBit(x86.FlagCF, uint32(s>>(n-1))&1)
		}
		setOF(0)
		e.setSZP(r, w)
	case "rol", "ror":
		n := count % uint32(w)
		am := a & mask(w)
		if n == 0 {
			r = am
		} else if op == "rol" {
			r = (am<<n | am>>(uint32(w)-n)) & mask(w)
		} else {
			r = (am>>n | am<<(uint32(w)-n)) & mask(w)
		}
		if op == "rol" {
			e.setFlagBit(x86.FlagCF, r&1)
			setOF(r>>(w-1)&1 ^ r&1)
		} else {
			e.setFlagBit(x86.FlagCF, r>>(w-1)&1)
			setOF(r>>(w-1)&1 ^ r>>(w-2)&1)
		}
	case "rcl", "rcr":
		n := count % (uint32(w) + 1)
		x := uint64(a&mask(w)) | uint64(e.flag(x86.FlagCF))<<w
		wmask := uint64(1)<<(w+1) - 1
		var rx uint64
		if n == 0 {
			rx = x
		} else if op == "rcl" {
			rx = (x<<n | x>>(uint64(w)+1-uint64(n))) & wmask
		} else {
			rx = (x>>n | x<<(uint64(w)+1-uint64(n))) & wmask
		}
		r = uint32(rx) & mask(w)
		ncf := uint32(rx>>w) & 1
		e.setFlagBit(x86.FlagCF, ncf)
		if op == "rcl" {
			setOF(r>>(w-1)&1 ^ ncf)
		} else {
			setOF(r>>(w-1)&1 ^ r>>(w-2)&1)
		}
	}
	return firstFault(e.writePlace(p, r), e.finish(inst))
}
