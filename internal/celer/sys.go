package celer

import (
	"strings"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// loadSeg implements celer's protected-mode segment load. The check
// sequence matches the architecture, but the descriptor "accessed" bit is
// never written back (finding 6).
func (e *Emulator) loadSeg(sr x86.SegReg, sel uint16, forCS bool) *fault {
	m := e.m
	selErr := uint32(sel) & 0xfffc
	if sel&0xfffc == 0 {
		if sr == x86.SS || forCS {
			return gp(0)
		}
		m.Seg[sr] = machine.Segment{Sel: sel}
		return nil
	}
	if sel&4 != 0 { // TI: no LDT
		return gp(selErr)
	}
	off := uint32(sel & 0xfff8)
	if off+7 > m.GDTRLimit {
		return gp(selErr)
	}
	descLin := m.GDTRBase + off
	lo, f := e.readLin(descLin, 4)
	if f != nil {
		return f
	}
	hi, f := e.readLin(descLin+4, 4)
	if f != nil {
		return f
	}
	rpl := sel & 3
	if hi>>12&1 == 0 { // S
		return gp(selErr)
	}
	isCode := hi>>11&1 == 1
	bitRW := hi>>9&1 == 1
	conform := hi>>10&1 == 1
	dpl := uint16(hi >> 13 & 3)
	switch {
	case sr == x86.SS:
		if isCode || !bitRW || rpl != 0 || dpl != 0 {
			return gp(selErr)
		}
	case forCS:
		if !isCode {
			return gp(selErr)
		}
		if !conform && dpl != 0 {
			return gp(selErr)
		}
	default:
		if isCode && !bitRW {
			return gp(selErr)
		}
		if (!isCode || !conform) && uint16(dpl) < rpl {
			return gp(selErr)
		}
	}
	if hi>>15&1 == 0 { // P
		vec := uint8(x86.ExcNP)
		if sr == x86.SS {
			vec = x86.ExcSS
		}
		return &fault{vec: vec, err: selErr, hasErr: true}
	}
	// Finding 6: no accessed-bit write-back here.
	base, limit, attr := x86.DescriptorFields(lo, hi)
	attr |= x86.AttrAccessed // the cache still records accessed
	m.Seg[sr] = machine.Segment{Sel: sel, Base: base, Limit: limit, Attr: attr}
	return nil
}

var segByName = map[string]x86.SegReg{
	"es": x86.ES, "cs": x86.CS, "ss": x86.SS,
	"ds": x86.DS, "fs": x86.FS, "gs": x86.GS,
}

// execSystem covers segment-register instructions, control registers,
// MSRs, descriptor tables, and cpuid.
func (e *Emulator) execSystem(inst *x86.Inst, name string, osz uint8) (*fault, bool) {
	m := e.m
	size := osz / 8
	switch name {
	case "mov_sreg_rm16":
		sr := x86.SegReg(inst.RegField())
		if sr == x86.CS || sr > x86.GS {
			return &fault{vec: x86.ExcUD}, true
		}
		p, f := e.resolveRM(inst, 16, false)
		if f != nil {
			return f, true
		}
		v, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		if f := e.loadSeg(sr, uint16(v), false); f != nil {
			return f, true
		}
		return e.finish(inst), true
	case "mov_rmv_sreg":
		sr := x86.SegReg(inst.RegField())
		if sr > x86.GS {
			return &fault{vec: x86.ExcUD}, true
		}
		p, f := e.resolveRM(inst, 16, true)
		if f != nil {
			return f, true
		}
		return firstFault(e.writePlace(p, uint32(m.Seg[sr].Sel)), e.finish(inst)), true
	case "push_es", "push_cs", "push_ss", "push_ds", "push_fs", "push_gs":
		sr := segByName[name[5:]]
		return firstFault(e.push(uint32(m.Seg[sr].Sel), size), e.finish(inst)), true
	case "pop_es", "pop_ss", "pop_ds", "pop_fs", "pop_gs":
		sr := segByName[name[4:]]
		v, f := e.memRead(x86.SS, m.GPR[x86.ESP], size)
		if f != nil {
			return f, true
		}
		if f := e.loadSeg(sr, uint16(v), false); f != nil {
			return f, true
		}
		m.GPR[x86.ESP] += uint32(size)
		return e.finish(inst), true
	case "les", "lds", "lfs", "lgs", "lss":
		sr := segByName[name[1:]]
		seg, off := e.effAddr(inst)
		// Offset first, selector second — hardware order (Bochs differs).
		offV, f := e.memRead(seg, off, size)
		if f != nil {
			return f, true
		}
		selV, f := e.memRead(seg, off+uint32(size), 2)
		if f != nil {
			return f, true
		}
		if f := e.loadSeg(sr, uint16(selV), false); f != nil {
			return f, true
		}
		e.gprWrite(inst.RegField(), osz, offV)
		return e.finish(inst), true
	case "mov_cr_r":
		cr := inst.RegField()
		v := e.gprRead(inst.RM(), 32)
		switch cr {
		case 0:
			if v>>x86.CR0PG&1 == 1 && v>>x86.CR0PE&1 == 0 {
				return gp(0), true
			}
			if v>>x86.CR0NW&1 == 1 && v>>x86.CR0CD&1 == 0 {
				return gp(0), true
			}
			m.CR0 = v
		case 2:
			m.CR2 = v
		case 3:
			m.CR3 = v & 0xfffff018
		case 4:
			if v&^uint32(0x1ff) != 0 {
				return gp(0), true
			}
			m.CR4 = v
		default:
			return &fault{vec: x86.ExcUD}, true
		}
		return e.finish(inst), true
	case "mov_r_cr":
		cr := inst.RegField()
		var v uint32
		switch cr {
		case 0:
			v = m.CR0
		case 2:
			v = m.CR2
		case 3:
			v = m.CR3
		case 4:
			v = m.CR4
		default:
			return &fault{vec: x86.ExcUD}, true
		}
		e.gprWrite(inst.RM(), 32, v)
		return e.finish(inst), true
	case "rdmsr":
		// Finding 5: an invalid MSR index returns zero instead of #GP.
		slot := x86.MSRSlot(m.GPR[x86.ECX])
		var v uint64
		if slot >= 0 {
			v = m.MSR[slot]
		}
		m.GPR[x86.EAX] = uint32(v)
		m.GPR[x86.EDX] = uint32(v >> 32)
		return e.finish(inst), true
	case "wrmsr":
		slot := x86.MSRSlot(m.GPR[x86.ECX])
		if slot < 0 {
			return gp(0), true
		}
		m.MSR[slot] = uint64(m.GPR[x86.EDX])<<32 | uint64(m.GPR[x86.EAX])
		return e.finish(inst), true
	case "rdtsc":
		m.GPR[x86.EAX] = uint32(m.MSR[0])
		m.GPR[x86.EDX] = uint32(m.MSR[0] >> 32)
		return e.finish(inst), true
	case "cpuid":
		switch m.GPR[x86.EAX] {
		case 0:
			m.GPR[x86.EAX] = 1
			m.GPR[x86.EBX] = 0x656b6f50
			m.GPR[x86.EDX] = 0x554d4545
			m.GPR[x86.ECX] = 0x20555043
		case 1:
			m.GPR[x86.EAX] = 0x00000611
			m.GPR[x86.EBX] = 0
			m.GPR[x86.ECX] = 0
			m.GPR[x86.EDX] = 0x00000011
		default:
			m.GPR[x86.EAX], m.GPR[x86.EBX] = 0, 0
			m.GPR[x86.ECX], m.GPR[x86.EDX] = 0, 0
		}
		return e.finish(inst), true
	case "lgdt", "lidt":
		seg, off := e.effAddr(inst)
		limit, f := e.memRead(seg, off, 2)
		if f != nil {
			return f, true
		}
		base, f := e.memRead(seg, off+2, 4)
		if f != nil {
			return f, true
		}
		if name == "lgdt" {
			m.GDTRLimit, m.GDTRBase = limit, base
		} else {
			m.IDTRLimit, m.IDTRBase = limit, base
		}
		return e.finish(inst), true
	case "sgdt", "sidt":
		seg, off := e.effAddr(inst)
		var lim, base uint32
		if name == "sgdt" {
			lim, base = m.GDTRLimit, m.GDTRBase
		} else {
			lim, base = m.IDTRLimit, m.IDTRBase
		}
		if f := e.memWrite(seg, off, lim&0xffff, 2); f != nil {
			return f, true
		}
		return firstFault(e.memWrite(seg, off+2, base, 4), e.finish(inst)), true
	case "smsw":
		p, f := e.resolveRM(inst, osz, true)
		if f != nil {
			return f, true
		}
		v := m.CR0
		if osz == 16 {
			v &= 0xffff
		}
		return firstFault(e.writePlace(p, v), e.finish(inst)), true
	case "lmsw":
		p, f := e.resolveRM(inst, 16, false)
		if f != nil {
			return f, true
		}
		v, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		newPE := m.CR0&1 | v&1
		m.CR0 = m.CR0&^uint32(0xf) | v&0xe | newPE
		return e.finish(inst), true
	case "invlpg":
		e.effAddr(inst)
		return e.finish(inst), true
	case "clts":
		m.CR0 &^= 1 << x86.CR0TS
		return e.finish(inst), true
	case "verr", "verw":
		p, f := e.resolveRM(inst, 16, false)
		if f != nil {
			return f, true
		}
		v, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		ok, f := e.verifySelector(uint16(v), name == "verw")
		if f != nil {
			return f, true
		}
		if ok {
			e.setFlagBit(x86.FlagZF, 1)
		} else {
			e.setFlagBit(x86.FlagZF, 0)
		}
		return e.finish(inst), true
	}
	return nil, false
}

// verifySelector implements the verr/verw accessibility probe.
func (e *Emulator) verifySelector(sel uint16, forWrite bool) (bool, *fault) {
	m := e.m
	if sel&0xfffc == 0 || sel&4 != 0 {
		return false, nil
	}
	off := uint32(sel & 0xfff8)
	if off+7 > m.GDTRLimit {
		return false, nil
	}
	hi, f := e.readLin(m.GDTRBase+off+4, 4)
	if f != nil {
		return false, f
	}
	if hi>>12&1 == 0 || hi>>15&1 == 0 { // S, P
		return false, nil
	}
	isCode := hi>>11&1 == 1
	rw := hi>>9&1 == 1
	conform := hi>>10&1 == 1
	dpl := uint16(hi >> 13 & 3)
	rpl := sel & 3
	if (!isCode || !conform) && dpl < rpl {
		return false, nil
	}
	if forWrite {
		return !isCode && rw, nil
	}
	return !isCode || rw, nil
}

// execBits covers bt/bts/btr/btc, bsf/bsr, shld/shrd.
func (e *Emulator) execBits(inst *x86.Inst, name string, osz uint8) (*fault, bool) {
	m := e.m
	switch {
	case strings.HasPrefix(name, "bt_") || strings.HasPrefix(name, "bts_") ||
		strings.HasPrefix(name, "btr_") || strings.HasPrefix(name, "btc_"):
		op := name[:strings.IndexByte(name, '_')]
		immForm := strings.HasSuffix(name, "imm8")
		write := op != "bt"
		w := osz
		var bitIdx uint32
		if immForm {
			bitIdx = uint32(inst.Imm) & uint32(w-1)
		} else {
			bitIdx = e.gprRead(inst.RegField(), w)
		}
		apply := func(a uint32) uint32 {
			bm := uint32(1) << (bitIdx & uint32(w-1))
			switch op {
			case "bts":
				return a | bm
			case "btr":
				return a &^ bm
			case "btc":
				return a ^ bm
			}
			return a
		}
		if inst.IsRegForm() {
			a := e.gprRead(inst.RM(), w)
			e.setFlagBit(x86.FlagCF, a>>(bitIdx&uint32(w-1))&1)
			if write {
				e.gprWrite(inst.RM(), w, apply(a))
			}
			return e.finish(inst), true
		}
		seg, off := e.effAddr(inst)
		shift := uint8(5)
		if w == 16 {
			shift = 4
		}
		byteOff := uint32(int32(bitIdx)>>shift) * uint32(w/8)
		addr := off + byteOff
		var p place
		var f *fault
		if write {
			prep, ff := e.prepareWrite(e.linAddr(seg, addr), w/8)
			if ff != nil {
				return ff, true
			}
			p = place{prep: prep, w: w}
		} else {
			p = place{seg: seg, off: addr, w: w}
		}
		a, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		e.setFlagBit(x86.FlagCF, a>>(bitIdx&uint32(w-1))&1)
		if write {
			if f := e.writePlace(p, apply(a)); f != nil {
				return f, true
			}
		}
		return e.finish(inst), true
	case name == "bsf" || name == "bsr":
		w := osz
		p, f := e.resolveRM(inst, w, false)
		if f != nil {
			return f, true
		}
		v, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		v &= mask(w)
		if v == 0 {
			e.setFlagBit(x86.FlagZF, 1)
			// Destination undefined on zero: left unchanged (matches hw).
			return e.finish(inst), true
		}
		e.setFlagBit(x86.FlagZF, 0)
		var idx uint32
		if name == "bsf" {
			for idx = 0; v>>idx&1 == 0; idx++ {
			}
		} else {
			for idx = uint32(w) - 1; v>>idx&1 == 0; idx-- {
			}
		}
		e.gprWrite(inst.RegField(), w, idx)
		return e.finish(inst), true
	case strings.HasPrefix(name, "shld") || strings.HasPrefix(name, "shrd"):
		left := strings.HasPrefix(name, "shld")
		w := osz
		p, f := e.resolveRM(inst, w, true)
		if f != nil {
			return f, true
		}
		a, f := e.readPlace(p)
		if f != nil {
			return f, true
		}
		fill := e.gprRead(inst.RegField(), w)
		var count uint32
		if strings.HasSuffix(name, "cl") {
			count = e.gprRead(1, 8) & 0x1f
		} else {
			count = uint32(inst.Imm) & 0x1f
		}
		if count == 0 {
			return firstFault(e.writePlace(p, a), e.finish(inst)), true
		}
		am, fm := a&mask(w), fill&mask(w)
		var r, cf uint32
		if left {
			r = (am<<count | fm>>(uint32(w)-count)) & mask(w)
			cf = uint32(uint64(am)<<count>>w) & 1
		} else {
			r = (am>>count | fm<<(uint32(w)-count)) & mask(w)
			cf = am >> (count - 1) & 1
		}
		e.setFlagBit(x86.FlagCF, cf)
		if count == 1 {
			e.setFlagBit(x86.FlagOF, (r^am)>>(w-1)&1)
		}
		e.setSZP(r, w)
		if f := e.writePlace(p, r); f != nil {
			return f, true
		}
		return e.finish(inst), true
	}
	_ = m
	return nil, false
}

// stringOp covers movs/cmps/stos/lods/scas with optional rep prefixes.
func (e *Emulator) stringOp(inst *x86.Inst, op, form string, osz uint8) *fault {
	m := e.m
	w := uint8(8)
	if form == "v" {
		w = osz
	}
	size := uint32(w / 8)
	rep := inst.Rep || inst.RepNE
	srcSeg := x86.DS
	if inst.SegOverride >= 0 {
		srcSeg = x86.SegReg(inst.SegOverride)
	}
	delta := size
	if e.flag(x86.FlagDF) == 1 {
		delta = -size
	}
	iter := func() (stop bool, f *fault) {
		switch op {
		case "movs":
			v, f := e.memRead(srcSeg, m.GPR[x86.ESI], uint8(size))
			if f != nil {
				return false, f
			}
			if f := e.memWrite(x86.ES, m.GPR[x86.EDI], v, uint8(size)); f != nil {
				return false, f
			}
			m.GPR[x86.ESI] += delta
			m.GPR[x86.EDI] += delta
		case "stos":
			if f := e.memWrite(x86.ES, m.GPR[x86.EDI], e.gprRead(0, w), uint8(size)); f != nil {
				return false, f
			}
			m.GPR[x86.EDI] += delta
		case "lods":
			v, f := e.memRead(srcSeg, m.GPR[x86.ESI], uint8(size))
			if f != nil {
				return false, f
			}
			e.gprWrite(0, w, v)
			m.GPR[x86.ESI] += delta
		case "cmps":
			a, f := e.memRead(srcSeg, m.GPR[x86.ESI], uint8(size))
			if f != nil {
				return false, f
			}
			d, f := e.memRead(x86.ES, m.GPR[x86.EDI], uint8(size))
			if f != nil {
				return false, f
			}
			e.subFlags(a, d, 0, (a-d)&mask(w), w)
			m.GPR[x86.ESI] += delta
			m.GPR[x86.EDI] += delta
			return e.repStop(inst), nil
		case "scas":
			a := e.gprRead(0, w)
			d, f := e.memRead(x86.ES, m.GPR[x86.EDI], uint8(size))
			if f != nil {
				return false, f
			}
			e.subFlags(a, d, 0, (a-d)&mask(w), w)
			m.GPR[x86.EDI] += delta
			return e.repStop(inst), nil
		}
		return false, nil
	}
	if !rep {
		if _, f := iter(); f != nil {
			return f
		}
		return e.finish(inst)
	}
	for budget := 0; ; budget++ {
		if budget > 1<<22 {
			return &fault{vec: vecTimeout}
		}
		if m.GPR[x86.ECX] == 0 {
			break
		}
		stop, f := iter()
		if f != nil {
			return f
		}
		m.GPR[x86.ECX]--
		if stop {
			break
		}
	}
	return e.finish(inst)
}

func (e *Emulator) repStop(inst *x86.Inst) bool {
	zf := e.flag(x86.FlagZF) == 1
	if inst.RepNE {
		return zf
	}
	return !zf
}
