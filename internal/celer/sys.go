package celer

import (
	"strings"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// loadSeg implements celer's protected-mode segment load. The check
// sequence matches the architecture, but the descriptor "accessed" bit is
// never written back (finding 6).
func (e *Emulator) loadSeg(sr x86.SegReg, sel uint16, forCS bool) *fault {
	m := e.m
	selErr := uint32(sel) & 0xfffc
	if sel&0xfffc == 0 {
		if sr == x86.SS || forCS {
			return gp(0)
		}
		m.Seg[sr] = machine.Segment{Sel: sel}
		return nil
	}
	if sel&4 != 0 { // TI: no LDT
		return gp(selErr)
	}
	off := uint32(sel & 0xfff8)
	if off+7 > m.GDTRLimit {
		return gp(selErr)
	}
	descLin := m.GDTRBase + off
	lo, f := e.readLin(descLin, 4)
	if f != nil {
		return f
	}
	hi, f := e.readLin(descLin+4, 4)
	if f != nil {
		return f
	}
	rpl := sel & 3
	if hi>>12&1 == 0 { // S
		return gp(selErr)
	}
	isCode := hi>>11&1 == 1
	bitRW := hi>>9&1 == 1
	conform := hi>>10&1 == 1
	dpl := uint16(hi >> 13 & 3)
	switch {
	case sr == x86.SS:
		if isCode || !bitRW || rpl != 0 || dpl != 0 {
			return gp(selErr)
		}
	case forCS:
		if !isCode {
			return gp(selErr)
		}
		if !conform && dpl != 0 {
			return gp(selErr)
		}
	default:
		if isCode && !bitRW {
			return gp(selErr)
		}
		if (!isCode || !conform) && uint16(dpl) < rpl {
			return gp(selErr)
		}
	}
	if hi>>15&1 == 0 { // P
		vec := uint8(x86.ExcNP)
		if sr == x86.SS {
			vec = x86.ExcSS
		}
		return &fault{vec: vec, err: selErr, hasErr: true}
	}
	// Finding 6: no accessed-bit write-back here.
	base, limit, attr := x86.DescriptorFields(lo, hi)
	attr |= x86.AttrAccessed // the cache still records accessed
	m.Seg[sr] = machine.Segment{Sel: sel, Base: base, Limit: limit, Attr: attr}
	return nil
}

var segByName = map[string]x86.SegReg{
	"es": x86.ES, "cs": x86.CS, "ss": x86.SS,
	"ds": x86.DS, "fs": x86.FS, "gs": x86.GS,
}

// lowerSystem covers segment-register instructions, control registers,
// MSRs, descriptor tables, and cpuid. The second return reports whether
// the name was handled.
func lowerSystem(inst *x86.Inst, name string, osz uint8) (opFunc, bool) {
	size := osz / 8
	switch name {
	case "mov_sreg_rm16":
		sr := x86.SegReg(inst.RegField())
		return func(e *Emulator) *fault {
			if sr == x86.CS || sr > x86.GS {
				return &fault{vec: x86.ExcUD}
			}
			p, f := e.resolveRM(inst, 16, false)
			if f != nil {
				return f
			}
			v, f := e.readPlace(p)
			if f != nil {
				return f
			}
			if f := e.loadSeg(sr, uint16(v), false); f != nil {
				return f
			}
			return e.finish(inst)
		}, true
	case "mov_rmv_sreg":
		sr := x86.SegReg(inst.RegField())
		return func(e *Emulator) *fault {
			if sr > x86.GS {
				return &fault{vec: x86.ExcUD}
			}
			p, f := e.resolveRM(inst, 16, true)
			if f != nil {
				return f
			}
			return firstFault(e.writePlace(p, uint32(e.m.Seg[sr].Sel)), e.finish(inst))
		}, true
	case "push_es", "push_cs", "push_ss", "push_ds", "push_fs", "push_gs":
		sr := segByName[name[5:]]
		return func(e *Emulator) *fault {
			return firstFault(e.push(uint32(e.m.Seg[sr].Sel), size), e.finish(inst))
		}, true
	case "pop_es", "pop_ss", "pop_ds", "pop_fs", "pop_gs":
		sr := segByName[name[4:]]
		return func(e *Emulator) *fault {
			m := e.m
			v, f := e.memRead(x86.SS, m.GPR[x86.ESP], size)
			if f != nil {
				return f
			}
			if f := e.loadSeg(sr, uint16(v), false); f != nil {
				return f
			}
			m.GPR[x86.ESP] += uint32(size)
			return e.finish(inst)
		}, true
	case "les", "lds", "lfs", "lgs", "lss":
		sr := segByName[name[1:]]
		return func(e *Emulator) *fault {
			seg, off := e.effAddr(inst)
			// Offset first, selector second — hardware order (Bochs differs).
			offV, f := e.memRead(seg, off, size)
			if f != nil {
				return f
			}
			selV, f := e.memRead(seg, off+uint32(size), 2)
			if f != nil {
				return f
			}
			if f := e.loadSeg(sr, uint16(selV), false); f != nil {
				return f
			}
			e.gprWrite(inst.RegField(), osz, offV)
			return e.finish(inst)
		}, true
	case "mov_cr_r":
		cr := inst.RegField()
		return func(e *Emulator) *fault {
			m := e.m
			v := e.gprRead(inst.RM(), 32)
			switch cr {
			case 0:
				if v>>x86.CR0PG&1 == 1 && v>>x86.CR0PE&1 == 0 {
					return gp(0)
				}
				if v>>x86.CR0NW&1 == 1 && v>>x86.CR0CD&1 == 0 {
					return gp(0)
				}
				m.CR0 = v
			case 2:
				m.CR2 = v
			case 3:
				m.CR3 = v & 0xfffff018
			case 4:
				if v&^uint32(0x1ff) != 0 {
					return gp(0)
				}
				m.CR4 = v
			default:
				return &fault{vec: x86.ExcUD}
			}
			return e.finish(inst)
		}, true
	case "mov_r_cr":
		cr := inst.RegField()
		return func(e *Emulator) *fault {
			m := e.m
			var v uint32
			switch cr {
			case 0:
				v = m.CR0
			case 2:
				v = m.CR2
			case 3:
				v = m.CR3
			case 4:
				v = m.CR4
			default:
				return &fault{vec: x86.ExcUD}
			}
			e.gprWrite(inst.RM(), 32, v)
			return e.finish(inst)
		}, true
	case "rdmsr":
		return func(e *Emulator) *fault {
			m := e.m
			// Finding 5: an invalid MSR index returns zero instead of #GP.
			slot := x86.MSRSlot(m.GPR[x86.ECX])
			var v uint64
			if slot >= 0 {
				v = m.MSR[slot]
			}
			m.GPR[x86.EAX] = uint32(v)
			m.GPR[x86.EDX] = uint32(v >> 32)
			return e.finish(inst)
		}, true
	case "wrmsr":
		return func(e *Emulator) *fault {
			m := e.m
			slot := x86.MSRSlot(m.GPR[x86.ECX])
			if slot < 0 {
				return gp(0)
			}
			m.MSR[slot] = uint64(m.GPR[x86.EDX])<<32 | uint64(m.GPR[x86.EAX])
			return e.finish(inst)
		}, true
	case "rdtsc":
		return func(e *Emulator) *fault {
			m := e.m
			m.GPR[x86.EAX] = uint32(m.MSR[0])
			m.GPR[x86.EDX] = uint32(m.MSR[0] >> 32)
			return e.finish(inst)
		}, true
	case "cpuid":
		return func(e *Emulator) *fault {
			m := e.m
			switch m.GPR[x86.EAX] {
			case 0:
				m.GPR[x86.EAX] = 1
				m.GPR[x86.EBX] = 0x656b6f50
				m.GPR[x86.EDX] = 0x554d4545
				m.GPR[x86.ECX] = 0x20555043
			case 1:
				m.GPR[x86.EAX] = 0x00000611
				m.GPR[x86.EBX] = 0
				m.GPR[x86.ECX] = 0
				m.GPR[x86.EDX] = 0x00000011
			default:
				m.GPR[x86.EAX], m.GPR[x86.EBX] = 0, 0
				m.GPR[x86.ECX], m.GPR[x86.EDX] = 0, 0
			}
			return e.finish(inst)
		}, true
	case "lgdt", "lidt":
		isGDT := name == "lgdt"
		return func(e *Emulator) *fault {
			m := e.m
			seg, off := e.effAddr(inst)
			limit, f := e.memRead(seg, off, 2)
			if f != nil {
				return f
			}
			base, f := e.memRead(seg, off+2, 4)
			if f != nil {
				return f
			}
			if isGDT {
				m.GDTRLimit, m.GDTRBase = limit, base
			} else {
				m.IDTRLimit, m.IDTRBase = limit, base
			}
			return e.finish(inst)
		}, true
	case "sgdt", "sidt":
		isGDT := name == "sgdt"
		return func(e *Emulator) *fault {
			m := e.m
			seg, off := e.effAddr(inst)
			var lim, base uint32
			if isGDT {
				lim, base = m.GDTRLimit, m.GDTRBase
			} else {
				lim, base = m.IDTRLimit, m.IDTRBase
			}
			if f := e.memWrite(seg, off, lim&0xffff, 2); f != nil {
				return f
			}
			return firstFault(e.memWrite(seg, off+2, base, 4), e.finish(inst))
		}, true
	case "smsw":
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, osz, true)
			if f != nil {
				return f
			}
			v := e.m.CR0
			if osz == 16 {
				v &= 0xffff
			}
			return firstFault(e.writePlace(p, v), e.finish(inst))
		}, true
	case "lmsw":
		return func(e *Emulator) *fault {
			m := e.m
			p, f := e.resolveRM(inst, 16, false)
			if f != nil {
				return f
			}
			v, f := e.readPlace(p)
			if f != nil {
				return f
			}
			newPE := m.CR0&1 | v&1
			m.CR0 = m.CR0&^uint32(0xf) | v&0xe | newPE
			return e.finish(inst)
		}, true
	case "invlpg":
		return func(e *Emulator) *fault {
			e.effAddr(inst)
			return e.finish(inst)
		}, true
	case "clts":
		return func(e *Emulator) *fault {
			e.m.CR0 &^= 1 << x86.CR0TS
			return e.finish(inst)
		}, true
	case "verr", "verw":
		forWrite := name == "verw"
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, 16, false)
			if f != nil {
				return f
			}
			v, f := e.readPlace(p)
			if f != nil {
				return f
			}
			ok, f := e.verifySelector(uint16(v), forWrite)
			if f != nil {
				return f
			}
			if ok {
				e.setFlagBit(x86.FlagZF, 1)
			} else {
				e.setFlagBit(x86.FlagZF, 0)
			}
			return e.finish(inst)
		}, true
	}
	return nil, false
}

// verifySelector implements the verr/verw accessibility probe.
func (e *Emulator) verifySelector(sel uint16, forWrite bool) (bool, *fault) {
	m := e.m
	if sel&0xfffc == 0 || sel&4 != 0 {
		return false, nil
	}
	off := uint32(sel & 0xfff8)
	if off+7 > m.GDTRLimit {
		return false, nil
	}
	hi, f := e.readLin(m.GDTRBase+off+4, 4)
	if f != nil {
		return false, f
	}
	if hi>>12&1 == 0 || hi>>15&1 == 0 { // S, P
		return false, nil
	}
	isCode := hi>>11&1 == 1
	rw := hi>>9&1 == 1
	conform := hi>>10&1 == 1
	dpl := uint16(hi >> 13 & 3)
	rpl := sel & 3
	if (!isCode || !conform) && dpl < rpl {
		return false, nil
	}
	if forWrite {
		return !isCode && rw, nil
	}
	return !isCode || rw, nil
}

// btOp is the pre-lowered bit-test operation.
type btOp uint8

const (
	btTest btOp = iota
	btSet
	btReset
	btFlip
)

// lowerBits covers bt/bts/btr/btc, bsf/bsr, shld/shrd.
func lowerBits(inst *x86.Inst, name string, osz uint8) (opFunc, bool) {
	switch {
	case strings.HasPrefix(name, "bt_") || strings.HasPrefix(name, "bts_") ||
		strings.HasPrefix(name, "btr_") || strings.HasPrefix(name, "btc_"):
		var op btOp
		switch name[:strings.IndexByte(name, '_')] {
		case "bt":
			op = btTest
		case "bts":
			op = btSet
		case "btr":
			op = btReset
		case "btc":
			op = btFlip
		}
		immForm := strings.HasSuffix(name, "imm8")
		write := op != btTest
		w := osz
		immIdx := uint32(inst.Imm) & uint32(w-1)
		regForm := inst.IsRegForm()
		return func(e *Emulator) *fault {
			var bitIdx uint32
			if immForm {
				bitIdx = immIdx
			} else {
				bitIdx = e.gprRead(inst.RegField(), w)
			}
			apply := func(a uint32) uint32 {
				bm := uint32(1) << (bitIdx & uint32(w-1))
				switch op {
				case btSet:
					return a | bm
				case btReset:
					return a &^ bm
				case btFlip:
					return a ^ bm
				}
				return a
			}
			if regForm {
				a := e.gprRead(inst.RM(), w)
				e.setFlagBit(x86.FlagCF, a>>(bitIdx&uint32(w-1))&1)
				if write {
					e.gprWrite(inst.RM(), w, apply(a))
				}
				return e.finish(inst)
			}
			seg, off := e.effAddr(inst)
			shift := uint8(5)
			if w == 16 {
				shift = 4
			}
			byteOff := uint32(int32(bitIdx)>>shift) * uint32(w/8)
			addr := off + byteOff
			var p place
			var f *fault
			if write {
				prep, ff := e.prepareWrite(e.linAddr(seg, addr), w/8)
				if ff != nil {
					return ff
				}
				p = place{prep: prep, w: w}
			} else {
				p = place{seg: seg, off: addr, w: w}
			}
			a, f := e.readPlace(p)
			if f != nil {
				return f
			}
			e.setFlagBit(x86.FlagCF, a>>(bitIdx&uint32(w-1))&1)
			if write {
				if f := e.writePlace(p, apply(a)); f != nil {
					return f
				}
			}
			return e.finish(inst)
		}, true
	case name == "bsf" || name == "bsr":
		forward := name == "bsf"
		w := osz
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, w, false)
			if f != nil {
				return f
			}
			v, f := e.readPlace(p)
			if f != nil {
				return f
			}
			v &= mask(w)
			if v == 0 {
				e.setFlagBit(x86.FlagZF, 1)
				// Destination undefined on zero: left unchanged (matches hw).
				return e.finish(inst)
			}
			e.setFlagBit(x86.FlagZF, 0)
			var idx uint32
			if forward {
				for idx = 0; v>>idx&1 == 0; idx++ {
				}
			} else {
				for idx = uint32(w) - 1; v>>idx&1 == 0; idx-- {
				}
			}
			e.gprWrite(inst.RegField(), w, idx)
			return e.finish(inst)
		}, true
	case strings.HasPrefix(name, "shld") || strings.HasPrefix(name, "shrd"):
		left := strings.HasPrefix(name, "shld")
		useCL := strings.HasSuffix(name, "cl")
		w := osz
		immCount := uint32(inst.Imm) & 0x1f
		return func(e *Emulator) *fault {
			p, f := e.resolveRM(inst, w, true)
			if f != nil {
				return f
			}
			a, f := e.readPlace(p)
			if f != nil {
				return f
			}
			fill := e.gprRead(inst.RegField(), w)
			var count uint32
			if useCL {
				count = e.gprRead(1, 8) & 0x1f
			} else {
				count = immCount
			}
			if count == 0 {
				return firstFault(e.writePlace(p, a), e.finish(inst))
			}
			am, fm := a&mask(w), fill&mask(w)
			var r, cf uint32
			if left {
				r = (am<<count | fm>>(uint32(w)-count)) & mask(w)
				cf = uint32(uint64(am)<<count>>w) & 1
			} else {
				r = (am>>count | fm<<(uint32(w)-count)) & mask(w)
				cf = am >> (count - 1) & 1
			}
			e.setFlagBit(x86.FlagCF, cf)
			if count == 1 {
				e.setFlagBit(x86.FlagOF, (r^am)>>(w-1)&1)
			}
			e.setSZP(r, w)
			if f := e.writePlace(p, r); f != nil {
				return f
			}
			return e.finish(inst)
		}, true
	}
	return nil, false
}

// strOp is the pre-lowered string operation.
type strOp uint8

const (
	strMovs strOp = iota
	strCmps
	strStos
	strLods
	strScas
)

// lowerStringOp covers movs/cmps/stos/lods/scas with optional rep prefixes.
func lowerStringOp(inst *x86.Inst, opName, form string, osz uint8) opFunc {
	var op strOp
	switch opName {
	case "movs":
		op = strMovs
	case "cmps":
		op = strCmps
	case "stos":
		op = strStos
	case "lods":
		op = strLods
	case "scas":
		op = strScas
	}
	w := uint8(8)
	if form == "v" {
		w = osz
	}
	size := uint32(w / 8)
	rep := inst.Rep || inst.RepNE
	srcSeg := x86.DS
	if inst.SegOverride >= 0 {
		srcSeg = x86.SegReg(inst.SegOverride)
	}
	return func(e *Emulator) *fault {
		m := e.m
		delta := size
		if e.flag(x86.FlagDF) == 1 {
			delta = -size
		}
		iter := func() (stop bool, f *fault) {
			switch op {
			case strMovs:
				v, f := e.memRead(srcSeg, m.GPR[x86.ESI], uint8(size))
				if f != nil {
					return false, f
				}
				if f := e.memWrite(x86.ES, m.GPR[x86.EDI], v, uint8(size)); f != nil {
					return false, f
				}
				m.GPR[x86.ESI] += delta
				m.GPR[x86.EDI] += delta
			case strStos:
				if f := e.memWrite(x86.ES, m.GPR[x86.EDI], e.gprRead(0, w), uint8(size)); f != nil {
					return false, f
				}
				m.GPR[x86.EDI] += delta
			case strLods:
				v, f := e.memRead(srcSeg, m.GPR[x86.ESI], uint8(size))
				if f != nil {
					return false, f
				}
				e.gprWrite(0, w, v)
				m.GPR[x86.ESI] += delta
			case strCmps:
				a, f := e.memRead(srcSeg, m.GPR[x86.ESI], uint8(size))
				if f != nil {
					return false, f
				}
				d, f := e.memRead(x86.ES, m.GPR[x86.EDI], uint8(size))
				if f != nil {
					return false, f
				}
				e.subFlags(a, d, 0, (a-d)&mask(w), w)
				m.GPR[x86.ESI] += delta
				m.GPR[x86.EDI] += delta
				return e.repStop(inst), nil
			case strScas:
				a := e.gprRead(0, w)
				d, f := e.memRead(x86.ES, m.GPR[x86.EDI], uint8(size))
				if f != nil {
					return false, f
				}
				e.subFlags(a, d, 0, (a-d)&mask(w), w)
				m.GPR[x86.EDI] += delta
				return e.repStop(inst), nil
			}
			return false, nil
		}
		if !rep {
			if _, f := iter(); f != nil {
				return f
			}
			return e.finish(inst)
		}
		for budget := 0; ; budget++ {
			if budget > 1<<22 {
				return &fault{vec: vecTimeout}
			}
			if m.GPR[x86.ECX] == 0 {
				break
			}
			stop, f := iter()
			if f != nil {
				return f
			}
			m.GPR[x86.ECX]--
			if stop {
				break
			}
		}
		return e.finish(inst)
	}
}

func (e *Emulator) repStop(inst *x86.Inst) bool {
	zf := e.flag(x86.FlagZF) == 1
	if inst.RepNE {
		return zf
	}
	return !zf
}
