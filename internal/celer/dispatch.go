package celer

import (
	"pokeemu/internal/emu"
	"pokeemu/internal/x86"
)

// chainSlots sizes the guest-local direct-mapped dispatch table. Must be a
// power of two.
const chainSlots = 512

// chainEntry is one node of the guest-local dispatch chain: a translation
// pinned to the eip and state it was installed under, plus the raw bytes
// for revalidation and a fall-through link to its straight-line successor.
// The raw-byte compare on every dispatch makes the entry self-validating:
// self-modifying code or a remap at the same eip misses and re-translates.
type chainEntry struct {
	eip   uint32
	state byte
	raw   string
	tb    *TB
	next  *chainEntry
}

func entMatches(c *chainEntry, eip uint32, st byte, code []byte) bool {
	return c.eip == eip && c.state == st && c.raw == string(code)
}

// stepFast is the direct-dispatch fast path. The common case touches no
// shared state: the previous entry's fall-through link (or the guest-local
// table) predicts the next translation, the raw fetched bytes revalidate
// it, and the pre-lowered closure runs. Only a prediction miss re-enters
// the shared-cache dispatcher. Instruction fetch still happens every step,
// so paging faults and accessed-bit maintenance keep their timing.
func (e *Emulator) stepFast() emu.Event {
	m := e.m
	if m.Halted {
		return emu.Event{Kind: emu.EventHalt}
	}
	code, fexc := m.FetchCode(x86.MaxInstLen)
	st := transState(m)
	eip := m.EIP

	var ent *chainEntry
	if p := e.lastEnt; p != nil && p.next != nil && entMatches(p.next, eip, st, code) {
		ent = p.next
	} else if c := e.chain[eip&(chainSlots-1)]; c != nil && entMatches(c, eip, st, code) {
		ent = c
	}
	if ent == nil {
		tb, f := e.translateTB(code, st, fexc)
		if f != nil {
			e.lastEnt = nil
			return e.deliver(f)
		}
		ent = &chainEntry{eip: eip, state: st, raw: string(code), tb: tb}
		e.chain[eip&(chainSlots-1)] = ent
	}
	// Chain straight-line predecessors: if the previous step fell through
	// to this entry, link it so hot loops skip the table lookup entirely.
	if p := e.lastEnt; p != nil && p.next != ent &&
		eip == p.eip+uint32(p.tb.inst.Len) {
		p.next = ent
	}

	f := ent.tb.fast(e)
	if f != nil {
		e.lastEnt = nil
		return e.finishStep(f)
	}
	e.lastEnt = ent
	return emu.Event{Kind: emu.EventNone}
}
