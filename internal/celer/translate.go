package celer

import (
	"strings"

	"pokeemu/internal/x86"
)

// translate builds both executables for one decoded instruction. fast is
// lowered exactly once at translation time: all name parsing and form
// dispatch happens here, and the returned closure touches no strings. run
// re-lowers on every execution — the interpreter-flavored slow path kept
// for differential testing. Both are thin wrappers over lower(), so their
// semantics cannot drift apart.
func translate(inst *x86.Inst) (run, fast opFunc) {
	// LOCK prefix legality matches the architecture.
	if inst.Lock && (!inst.Spec.LockOK || inst.IsRegForm() || !inst.HasModRM) {
		ud := func(e *Emulator) *fault { return &fault{vec: x86.ExcUD} }
		return ud, ud
	}
	return func(e *Emulator) *fault { return lower(inst)(e) }, lower(inst)
}

// lower dispatches one decoded instruction to its lowering constructor.
// Dispatch cost (string splits, form token parsing, condition-code lookup)
// is paid once per translation-cache miss, never per executed instruction.
func lower(inst *x86.Inst) opFunc {
	name := inst.Spec.Name
	osz := uint8(inst.OpSize)

	// Family parsing like the reference semantics.
	op := name
	form := ""
	if us := strings.IndexByte(name, '_'); us >= 0 {
		op, form = name[:us], name[us+1:]
	}

	switch op {
	case "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "test":
		return lowerBinALU(inst, op, form, osz)
	case "inc", "dec":
		return lowerIncDec(inst, op == "inc", form, osz)
	case "not", "neg":
		return lowerNotNeg(inst, op == "neg", form, osz)
	case "mul", "imul", "imul1":
		return lowerMulOne(inst, op != "mul", form, osz)
	case "imul2", "imul3":
		return lowerImulMulti(inst, op == "imul3", osz)
	case "div", "idiv":
		return lowerDivide(inst, op == "idiv", form, osz)
	case "rol", "ror", "rcl", "rcr", "shl", "shr", "sar":
		return lowerShiftRotate(inst, op, form, osz)
	case "movs", "cmps", "stos", "lods", "scas":
		return lowerStringOp(inst, op, form, osz)
	}

	switch name {
	case "nop":
		return func(e *Emulator) *fault { return e.finish(inst) }
	case "ud2":
		return func(e *Emulator) *fault { return &fault{vec: x86.ExcUD} }
	case "hlt":
		return func(e *Emulator) *fault {
			e.finish(inst)
			return &fault{vec: vecHalt}
		}
	case "mov_rm8_r8", "mov_rmv_rv", "mov_r8_rm8", "mov_rv_rmv",
		"mov_rm8_imm8", "mov_rmv_immv":
		return lowerMovGeneric(inst, strings.TrimPrefix(name, "mov_"), osz)
	case "mov_r8_imm8":
		r, v := inst.Opcode&7, uint32(inst.Imm)
		return func(e *Emulator) *fault {
			e.gprWrite(r, 8, v)
			return e.finish(inst)
		}
	case "mov_r_immv":
		r, v := inst.Opcode&7, uint32(inst.Imm)
		return func(e *Emulator) *fault {
			e.gprWrite(r, osz, v)
			return e.finish(inst)
		}
	case "mov_al_moffs", "mov_eax_moffs", "mov_moffs_al", "mov_moffs_eax":
		return lowerMovMoffs(inst, name, osz)
	case "lea":
		return func(e *Emulator) *fault {
			_, off := e.effAddr(inst)
			e.gprWrite(inst.RegField(), osz, off)
			return e.finish(inst)
		}
	case "movzx_rv_rm8", "movzx_rv_rm16", "movsx_rv_rm8", "movsx_rv_rm16":
		return lowerMovExtend(inst, name, osz)
	case "xlat":
		seg := x86.DS
		if inst.SegOverride >= 0 {
			seg = x86.SegReg(inst.SegOverride)
		}
		return func(e *Emulator) *fault {
			v, f := e.memRead(seg, e.m.GPR[x86.EBX]+e.gprRead(0, 8), 1)
			if f != nil {
				return f
			}
			e.gprWrite(0, 8, v)
			return e.finish(inst)
		}
	case "xchg_eax_r":
		r := inst.Opcode & 7
		return func(e *Emulator) *fault {
			a, b := e.gprRead(0, osz), e.gprRead(r, osz)
			e.gprWrite(0, osz, b)
			e.gprWrite(r, osz, a)
			return e.finish(inst)
		}
	case "xchg_rm8_r8", "xchg_rmv_rv":
		w := osz
		if name == "xchg_rm8_r8" {
			w = 8
		}
		return func(e *Emulator) *fault {
			dst, f := e.resolveRM(inst, w, true)
			if f != nil {
				return f
			}
			a, _ := e.readPlace(dst)
			b := e.gprRead(inst.RegField(), w)
			e.writePlace(dst, b)
			e.gprWrite(inst.RegField(), w, a)
			return e.finish(inst)
		}
	case "xadd_rm8_r8", "xadd_rmv_rv":
		w := osz
		if name == "xadd_rm8_r8" {
			w = 8
		}
		return func(e *Emulator) *fault {
			dst, f := e.resolveRM(inst, w, true)
			if f != nil {
				return f
			}
			a, _ := e.readPlace(dst)
			b := e.gprRead(inst.RegField(), w)
			sum := (a + b) & mask(w)
			e.addFlags(a, b, 0, sum, w)
			e.gprWrite(inst.RegField(), w, a)
			e.writePlace(dst, sum)
			return e.finish(inst)
		}
	case "cmpxchg_rm8_r8", "cmpxchg_rmv_rv":
		return lowerCmpxchg(inst, name == "cmpxchg_rm8_r8", osz)
	case "bswap":
		r := inst.Opcode & 7
		return func(e *Emulator) *fault {
			v := e.m.GPR[r]
			e.m.GPR[r] = v<<24 | v>>24 | v<<8&0xff0000 | v>>8&0xff00
			return e.finish(inst)
		}
	case "cwde":
		if osz == 32 {
			return func(e *Emulator) *fault {
				e.gprWrite(0, 32, uint32(int32(int16(e.gprRead(0, 16)))))
				return e.finish(inst)
			}
		}
		return func(e *Emulator) *fault {
			e.gprWrite(0, 16, uint32(int16(int8(e.gprRead(0, 8)))))
			return e.finish(inst)
		}
	case "cdq":
		return func(e *Emulator) *fault {
			a := e.gprRead(0, osz)
			if a>>(osz-1)&1 == 1 {
				e.gprWrite(2, osz, mask(osz))
			} else {
				e.gprWrite(2, osz, 0)
			}
			return e.finish(inst)
		}
	case "lahf":
		return func(e *Emulator) *fault {
			v := e.flag(x86.FlagCF) | 2 | e.flag(x86.FlagPF)<<2 |
				e.flag(x86.FlagAF)<<4 | e.flag(x86.FlagZF)<<6 | e.flag(x86.FlagSF)<<7
			e.gprWrite(4, 8, v)
			return e.finish(inst)
		}
	case "sahf":
		return func(e *Emulator) *fault {
			ah := e.gprRead(4, 8)
			e.setFlagBit(x86.FlagCF, ah)
			e.setFlagBit(x86.FlagPF, ah>>2)
			e.setFlagBit(x86.FlagAF, ah>>4)
			e.setFlagBit(x86.FlagZF, ah>>6)
			e.setFlagBit(x86.FlagSF, ah>>7)
			return e.finish(inst)
		}
	case "clc":
		return lowerSetFlag(inst, x86.FlagCF, 0)
	case "stc":
		return lowerSetFlag(inst, x86.FlagCF, 1)
	case "cmc":
		return func(e *Emulator) *fault {
			e.setFlagBit(x86.FlagCF, e.flag(x86.FlagCF)^1)
			return e.finish(inst)
		}
	case "cld":
		return lowerSetFlag(inst, x86.FlagDF, 0)
	case "std":
		return lowerSetFlag(inst, x86.FlagDF, 1)
	case "cli":
		return lowerSetFlag(inst, x86.FlagIF, 0)
	case "sti":
		return lowerSetFlag(inst, x86.FlagIF, 1)
	case "aam":
		imm := uint32(inst.Imm) & 0xff
		if imm == 0 {
			return func(e *Emulator) *fault { return &fault{vec: x86.ExcDE} }
		}
		return func(e *Emulator) *fault {
			al := e.gprRead(0, 8)
			e.gprWrite(4, 8, al/imm)
			e.gprWrite(0, 8, al%imm)
			e.setSZP(al%imm, 8)
			e.setFlagBit(x86.FlagCF, 0)
			e.setFlagBit(x86.FlagOF, 0)
			e.setFlagBit(x86.FlagAF, 0)
			return e.finish(inst)
		}
	case "aad":
		imm := uint32(inst.Imm) & 0xff
		return func(e *Emulator) *fault {
			r := (e.gprRead(0, 8) + e.gprRead(4, 8)*imm) & 0xff
			e.gprWrite(0, 16, r)
			e.setSZP(r, 8)
			e.setFlagBit(x86.FlagCF, 0)
			e.setFlagBit(x86.FlagOF, 0)
			e.setFlagBit(x86.FlagAF, 0)
			return e.finish(inst)
		}
	}

	if fn, handled := lowerStackFlow(inst, name, osz); handled {
		return fn
	}
	if fn, handled := lowerSystem(inst, name, osz); handled {
		return fn
	}
	if fn, handled := lowerBits(inst, name, osz); handled {
		return fn
	}
	panic("celer: no implementation for handler " + name)
}

func lowerSetFlag(inst *x86.Inst, bit uint8, v uint32) opFunc {
	return func(e *Emulator) *fault {
		e.setFlagBit(bit, v)
		return e.finish(inst)
	}
}
