package celer

import (
	"testing"

	"pokeemu/internal/emu"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// BenchmarkCelerDispatch prices one guest step on each dispatch path with a
// hot counted loop — the workload shape where direct dispatch matters:
// every step hits code that is already translated, so the whole cost is
// finding and entering the translation, not producing it. E16 quotes the
// fast/slow ratio from this benchmark; campaign-scale test programs are too
// short for the difference to be visible there.
func BenchmarkCelerDispatch(b *testing.B) {
	const iters = 1 << 15
	prog := cat(
		x86.AsmMovRegImm32(x86.EAX, 0),
		x86.AsmMovRegImm32(x86.ECX, iters),
		[]byte{0x01, 0xc8}, // body: add eax, ecx
		[]byte{0xe2, 0xfc}, // loop body
		hlt,
	)
	for _, bc := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"slow", false}} {
		b.Run(bc.name, func(b *testing.B) {
			cache := NewCache()
			steps := 0
			for i := 0; i < b.N; i++ {
				m := machine.NewBaseline(nil)
				m.Mem.WriteBytes(machine.CodeBase, prog)
				e := NewWithCache(m, cache)
				e.SetFastPath(bc.fast)
				for {
					ev := e.Step()
					steps++
					if ev.Kind == emu.EventHalt {
						break
					}
					if ev.Kind != emu.EventNone {
						b.Fatalf("unexpected event %v", ev.Kind)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
		})
	}
}
