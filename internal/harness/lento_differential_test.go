package harness

import (
	"reflect"
	"testing"

	"pokeemu/internal/core"
	"pokeemu/internal/x86"
)

// TestLentoDifferential runs every unique instruction the decoder
// exploration finds — the full handler matrix, exception paths included —
// on lento (the direct-decode interpreter) and fidelis (the IR evaluator),
// and requires the event stream, the step count, and the full final
// snapshot (CPU and memory) to be identical. This is the contract that
// makes lento a usable voting peer: any observable divergence from the
// hi-fi reference would turn majority verdicts into noise.
func TestLentoDifferential(t *testing.T) {
	uniq := core.ExploreInstructionSet().Unique
	if len(uniq) == 0 {
		t.Fatal("instruction-set exploration found nothing")
	}
	lf := LentoFactory()
	ff := FidelisFactory()

	// Varied register state so data-dependent paths (shift counts, string
	// counts, divisors, memory addresses) do something; ECX small keeps rep
	// prefixes cheap. ESP stays at the baseline for sane fault delivery.
	pre := []byte{}
	for _, ri := range []struct {
		r x86.Reg
		v uint32
	}{
		{x86.EAX, 0x00010203}, {x86.ECX, 3}, {x86.EDX, 0x00000080},
		{x86.EBX, 0x00002000}, {x86.EBP, 0x00003000},
		{x86.ESI, 0x00002100}, {x86.EDI, 0x00002200},
	} {
		pre = append(pre, x86.AsmMovRegImm32(ri.r, ri.v)...)
	}
	// Status flags set to a mixed pattern (CF|PF|AF|ZF|SF|OF), DF clear.
	pre = append(pre, x86.AsmPushImm32(0x8d5)...)
	pre = append(pre, x86.AsmPopf()...)

	for _, u := range uniq {
		prog := append(append([]byte{}, pre...), u.Repr...)
		prog = append(prog, x86.AsmHlt()...)
		rl := Run(lf, nil, prog, 256)
		rf := Run(ff, nil, prog, 256)
		if !reflect.DeepEqual(rl.Events, rf.Events) {
			t.Errorf("%s (% x): event streams differ: lento %v, fidelis %v",
				u.Key(), u.Repr, rl.Events, rf.Events)
			continue
		}
		if rl.Steps != rf.Steps {
			t.Errorf("%s (% x): steps differ: lento %d, fidelis %d",
				u.Key(), u.Repr, rl.Steps, rf.Steps)
			continue
		}
		if !reflect.DeepEqual(rl.Snapshot, rf.Snapshot) {
			t.Errorf("%s (% x): final snapshots differ", u.Key(), u.Repr)
		}
	}
}
