package harness

import (
	"reflect"
	"testing"

	"pokeemu/internal/core"
	"pokeemu/internal/x86"
)

// TestCelerFastSlowDifferential runs every unique instruction the decoder
// exploration finds on both celer dispatch paths — direct-dispatch fast and
// re-lowering slow — and requires the event stream and the full final
// snapshot (CPU and memory) to be identical. Both factories keep their
// translation caches across the whole sweep, so the fast path is exercised
// warm, with chain links carrying over between programs at the same
// addresses.
func TestCelerFastSlowDifferential(t *testing.T) {
	uniq := core.ExploreInstructionSet().Unique
	if len(uniq) == 0 {
		t.Fatal("instruction-set exploration found nothing")
	}
	fast := CelerFactoryFast(true)
	slow := CelerFactoryFast(false)

	// Varied register state so data-dependent paths (shift counts, string
	// counts, divisors, memory addresses) do something; ECX small keeps rep
	// prefixes cheap. ESP stays at the baseline for sane fault delivery.
	pre := []byte{}
	for _, ri := range []struct {
		r x86.Reg
		v uint32
	}{
		{x86.EAX, 0x00010203}, {x86.ECX, 3}, {x86.EDX, 0x00000080},
		{x86.EBX, 0x00002000}, {x86.EBP, 0x00003000},
		{x86.ESI, 0x00002100}, {x86.EDI, 0x00002200},
	} {
		pre = append(pre, x86.AsmMovRegImm32(ri.r, ri.v)...)
	}
	// Status flags set to a mixed pattern (CF|PF|AF|ZF|SF|OF), DF clear.
	pre = append(pre, x86.AsmPushImm32(0x8d5)...)
	pre = append(pre, x86.AsmPopf()...)

	for _, u := range uniq {
		prog := append(append([]byte{}, pre...), u.Repr...)
		prog = append(prog, x86.AsmHlt()...)
		rf := Run(fast, nil, prog, 256)
		rs := Run(slow, nil, prog, 256)
		if !reflect.DeepEqual(rf.Events, rs.Events) {
			t.Errorf("%s (% x): event streams differ: fast %v, slow %v",
				u.Key(), u.Repr, rf.Events, rs.Events)
			continue
		}
		if rf.Steps != rs.Steps {
			t.Errorf("%s (% x): steps differ: fast %d, slow %d",
				u.Key(), u.Repr, rf.Steps, rs.Steps)
			continue
		}
		if !reflect.DeepEqual(rf.Snapshot, rs.Snapshot) {
			t.Errorf("%s (% x): final snapshots differ", u.Key(), u.Repr)
		}
	}
}
