package harness

import (
	"testing"

	"pokeemu/internal/diff"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// The central cross-validation property: on ordinary programs, the Hi-Fi
// emulator, the Lo-Fi emulator, and the hardware oracle must produce
// identical final states (after the undefined-behavior filter). The Lo-Fi
// emulator may diverge only through its documented defect classes, and
// dedicated tests below confirm each of those fires.

func cat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

var hlt = []byte{0xf4}

// agreementPrograms is a battery of concrete programs touching most of the
// instruction subset in benign ways.
func agreementPrograms() map[string][]byte {
	progs := map[string][]byte{}
	mov := func(r x86.Reg, v uint32) []byte { return x86.AsmMovRegImm32(r, v) }

	progs["alu-mix"] = cat(
		mov(x86.EAX, 0x12345678), mov(x86.EBX, 0x9abcdef0),
		[]byte{0x01, 0xd8}, // add
		[]byte{0x11, 0xd8}, // adc
		[]byte{0x29, 0xd8}, // sub
		[]byte{0x19, 0xd8}, // sbb
		[]byte{0x21, 0xd8}, // and
		[]byte{0x09, 0xd8}, // or
		[]byte{0x31, 0xd8}, // xor
		[]byte{0x39, 0xd8}, // cmp
		[]byte{0x85, 0xd8}, // test
		hlt,
	)
	progs["alu-imm"] = cat(
		mov(x86.ECX, 77),
		[]byte{0x83, 0xc1, 0x7f},                   // add $0x7f, %ecx
		[]byte{0x81, 0xe9, 0x10, 0x00, 0x00, 0x00}, // sub $16, %ecx
		[]byte{0x83, 0xc9, 0x0f},                   // or
		[]byte{0x80, 0xc1, 0x05},                   // add $5, %cl
		hlt,
	)
	progs["inc-dec-neg"] = cat(
		mov(x86.EDX, 0xffffffff),
		[]byte{0x42},       // inc %edx
		[]byte{0x4a},       // dec %edx
		[]byte{0xf7, 0xda}, // neg %edx
		[]byte{0xf7, 0xd2}, // not %edx
		[]byte{0xfe, 0xc2}, // inc %dl
		hlt,
	)
	progs["mul-div"] = cat(
		mov(x86.EDX, 0), mov(x86.EAX, 1000), mov(x86.ECX, 37),
		[]byte{0xf7, 0xe1}, // mul %ecx
		mov(x86.EDX, 0), mov(x86.EAX, 1000),
		[]byte{0xf7, 0xf1},       // div %ecx
		[]byte{0x0f, 0xaf, 0xc1}, // imul %ecx, %eax
		[]byte{0x6b, 0xd8, 0x11}, // imul $17, %eax, %ebx
		[]byte{0xf6, 0xe9},       // imul %cl
		hlt,
	)
	progs["shifts"] = cat(
		mov(x86.EAX, 0x80000001), mov(x86.ECX, 4),
		[]byte{0xd3, 0xe0},       // shl %cl
		[]byte{0xd3, 0xe8},       // shr %cl
		[]byte{0xd3, 0xf8},       // sar %cl
		[]byte{0xc1, 0xc0, 0x03}, // rol $3
		[]byte{0xc1, 0xc8, 0x05}, // ror $5
		[]byte{0xd1, 0xd0},       // rcl $1
		[]byte{0xd1, 0xd8},       // rcr $1
		hlt,
	)
	progs["shift-one-forms"] = cat(
		mov(x86.EBX, 0xc0000003),
		[]byte{0xd1, 0xe3}, // shl $1, %ebx
		[]byte{0xd1, 0xeb}, // shr $1
		[]byte{0xd1, 0xfb}, // sar $1
		hlt,
	)
	progs["stack"] = cat(
		mov(x86.EAX, 0x1111), mov(x86.EBX, 0x2222),
		[]byte{0x50, 0x53},       // push push
		[]byte{0x59, 0x5a},       // pop ecx, pop edx
		[]byte{0x60},             // pusha
		[]byte{0x61},             // popa
		[]byte{0x68, 1, 2, 3, 4}, // push imm
		[]byte{0x8f, 0x05, 0x00, 0x00, 0x30, 0x00}, // pop to mem
		hlt,
	)
	progs["memory-forms"] = cat(
		mov(x86.EBX, 0x300000), mov(x86.ESI, 0x10),
		x86.AsmMovMemImm32(0x300010, 0xcafebabe),
		[]byte{0x8b, 0x04, 0x33},       // mov (%ebx,%esi), %eax
		[]byte{0x89, 0x44, 0x33, 0x04}, // mov %eax, 4(%ebx,%esi)
		[]byte{0x8b, 0x4c, 0xb3, 0x08}, // mov 8(%ebx,%esi,4), %ecx
		[]byte{0x8d, 0x54, 0x73, 0x7f}, // lea 127(%ebx,%esi,2), %edx
		[]byte{0x0f, 0xb6, 0x03},       // movzx (%ebx), %eax
		[]byte{0x0f, 0xbe, 0x43, 0x01}, // movsx 1(%ebx), %eax
		hlt,
	)
	progs["branches"] = cat(
		mov(x86.ECX, 3),
		[]byte{0x49},             // dec
		[]byte{0x75, 0xfd},       // jnz loop
		[]byte{0x83, 0xf9, 0x00}, // cmp $0
		[]byte{0x0f, 0x94, 0xc0}, // sete %al
		[]byte{0x0f, 0x44, 0xd9}, // cmove %ecx, %ebx
		hlt,
	)
	progs["strings"] = cat(
		mov(x86.ESI, 0x300000), mov(x86.EDI, 0x300040), mov(x86.ECX, 8),
		x86.AsmMovMemImm32(0x300000, 0x04030201),
		x86.AsmMovMemImm32(0x300004, 0x08070605),
		[]byte{0xf3, 0xa4}, // rep movsb
		mov(x86.ESI, 0x300000), mov(x86.EDI, 0x300040), mov(x86.ECX, 8),
		[]byte{0xf3, 0xa6}, // repe cmpsb
		mov(x86.EDI, 0x300080), mov(x86.ECX, 4), mov(x86.EAX, 0x5a),
		[]byte{0xf3, 0xaa}, // rep stosb
		[]byte{0xad},       // lodsd
		[]byte{0xaf},       // scasd
		hlt,
	)
	progs["bitops"] = cat(
		mov(x86.EAX, 0x00010000), mov(x86.EBX, 16),
		[]byte{0x0f, 0xa3, 0xd8},       // bt %ebx, %eax
		[]byte{0x0f, 0xab, 0xd8},       // bts
		[]byte{0x0f, 0xb3, 0xd8},       // btr
		[]byte{0x0f, 0xbb, 0xd8},       // btc
		[]byte{0x0f, 0xbc, 0xc8},       // bsf %eax, %ecx
		[]byte{0x0f, 0xbd, 0xd0},       // bsr %eax, %edx
		[]byte{0x0f, 0xba, 0xe0, 0x07}, // bt $7, %eax
		hlt,
	)
	progs["shld-shrd"] = cat(
		mov(x86.EAX, 0xf000000f), mov(x86.EBX, 0x12345678),
		[]byte{0x0f, 0xa4, 0xd8, 0x08}, // shld $8, %ebx, %eax
		[]byte{0x0f, 0xac, 0xd8, 0x04}, // shrd $4, %ebx, %eax
		hlt,
	)
	progs["flags-misc"] = cat(
		[]byte{0xf9, 0xf5, 0xf8}, // stc cmc clc
		[]byte{0xfd, 0xfc},       // std cld
		[]byte{0x9f},             // lahf
		[]byte{0x9e},             // sahf
		x86.AsmPushf(), x86.AsmPopf(),
		hlt,
	)
	progs["xchg-xadd"] = cat(
		mov(x86.EAX, 1), mov(x86.EBX, 2),
		[]byte{0x93},             // xchg %eax, %ebx
		[]byte{0x87, 0xd9},       // xchg %ebx, %ecx
		[]byte{0x0f, 0xc1, 0xc3}, // xadd %eax, %ebx
		x86.AsmMovMemImm32(0x300000, 5),
		[]byte{0x87, 0x1d, 0x00, 0x00, 0x30, 0x00}, // xchg %ebx, mem
		hlt,
	)
	progs["cmpxchg-equal"] = cat(
		x86.AsmMovMemImm32(0x300000, 5),
		mov(x86.EAX, 5), mov(x86.ECX, 9),
		[]byte{0x0f, 0xb1, 0x0d, 0x00, 0x00, 0x30, 0x00},
		hlt,
	)
	progs["convert"] = cat(
		mov(x86.EAX, 0x8001),
		[]byte{0x98},       // cwde
		[]byte{0x99},       // cdq
		[]byte{0x0f, 0xc8}, // bswap %eax
		hlt,
	)
	progs["enter-leave"] = cat(
		[]byte{0xc8, 0x20, 0x00, 0x00}, // enter $32, $0
		[]byte{0xc9},                   // leave
		[]byte{0xc8, 0x08, 0x00, 0x02}, // enter $8, $2
		[]byte{0xc9},
		hlt,
	)
	progs["call-ret"] = cat(
		[]byte{0xe8, 6, 0, 0, 0},
		x86.AsmMovRegImm32(x86.EBX, 7),
		hlt,
		x86.AsmMovRegImm32(x86.EAX, 5),
		[]byte{0xc3},
	)
	progs["seg-load"] = cat(
		x86.AsmMovRegImm16(x86.EAX, machine.SelData),
		x86.AsmMovSregReg(x86.ES, x86.EAX),
		x86.AsmMovRegSreg(x86.EBX, x86.ES),
		[]byte{0x06, 0x07}, // push %es / pop %es
		hlt,
	)
	progs["segment-override"] = cat(
		mov(x86.EBX, 0x300000),
		x86.AsmMovMemImm32(0x300000, 0x77),
		[]byte{0x64, 0x8b, 0x03}, // mov %fs:(%ebx), %eax
		[]byte{0x36, 0x8b, 0x0b}, // mov %ss:(%ebx), %ecx
		hlt,
	)
	progs["sys-regs"] = cat(
		x86.AsmMovRegCR(x86.EAX, 0),
		x86.AsmMovRegCR(x86.EBX, 3),
		x86.AsmMovRegCR(x86.ECX, 4),
		[]byte{0x0f, 0x01, 0x25, 0x00, 0x00, 0x30, 0x00}, // smsw mem... (grp7/4)
		hlt,
	)
	progs["gdt-idt"] = cat(
		[]byte{0x0f, 0x01, 0x05, 0x00, 0x00, 0x30, 0x00}, // sgdt mem
		[]byte{0x0f, 0x01, 0x0d, 0x08, 0x00, 0x30, 0x00}, // sidt mem+8
		hlt,
	)
	progs["msr-tsc"] = cat(
		mov(x86.ECX, 0x174),
		mov(x86.EAX, 0x1234), mov(x86.EDX, 0),
		x86.AsmWrmsr(),
		[]byte{0x0f, 0x32}, // rdmsr
		[]byte{0x0f, 0x31}, // rdtsc
		[]byte{0x0f, 0xa2}, // cpuid
		hlt,
	)
	progs["int3-into"] = cat(
		[]byte{0xcc}, // int3 → handler halts
	)
	progs["int-n"] = cat(
		[]byte{0xcd, 0x40}, // int $0x40
	)
	progs["aam-aad"] = cat(
		mov(x86.EAX, 123),
		[]byte{0xd4, 0x0a}, // aam
		[]byte{0xd5, 0x0a}, // aad
		hlt,
	)
	progs["xlat"] = cat(
		mov(x86.EBX, 0x300000), mov(x86.EAX, 3),
		x86.AsmMovMemImm32(0x300000, 0x44332211),
		[]byte{0xd7}, // xlat
		hlt,
	)
	progs["op16-mix"] = cat(
		mov(x86.EAX, 0xdead0000),
		[]byte{0x66, 0x05, 0x34, 0x12}, // add $0x1234, %ax
		[]byte{0x66, 0x50},             // push %ax
		[]byte{0x66, 0x5b},             // pop %bx
		[]byte{0x66, 0xc1, 0xc0, 0x04}, // rol $4, %ax
		hlt,
	)
	progs["loops"] = cat(
		mov(x86.ECX, 5), mov(x86.EAX, 0),
		[]byte{0x40},       // inc %eax
		[]byte{0xe2, 0xfd}, // loop
		[]byte{0xe3, 0x02}, // jecxz +2
		[]byte{0x40},       // skipped? ecx==0 so jumped
		[]byte{0x90},
		hlt,
	)
	progs["pf-read"] = cat(
		// Touch a page whose PTE we cleared: all implementations must
		// deliver the same #PF with the same CR2.
		x86.AsmMovRegMem32(x86.EAX, 0x00350000),
		hlt,
	)
	return progs
}

func clearPTE(image *machine.Memory, lin uint32) {
	pteAddr := uint32(machine.PTBase + (lin>>12&0x3ff)*4)
	pte := image.Read(pteAddr, 4)
	image.Write(pteAddr, pte&^uint64(x86.PteP), 4)
}

func TestThreeWayAgreementOnBenignPrograms(t *testing.T) {
	image := machine.BaselineImage()
	clearPTE(image, 0x00350000) // for the pf-read program
	factories := []Factory{FidelisFactory(), CelerFactory(), HardwareFactory()}
	for name, prog := range agreementPrograms() {
		results := RunAll(factories, image, prog, 0)
		filter := diff.Filter{EFLAGSMask: x86.StatusFlags} // benign battery:
		// flag-precision is compared separately below; here we check
		// architecture state, memory, and exceptions.
		for i := 1; i < len(results); i++ {
			ds := diff.Compare(results[0].Snapshot, results[i].Snapshot, filter)
			if len(ds) > 0 {
				t.Errorf("%s: %s vs %s differ: %v", name,
					results[0].Impl, results[i].Impl, ds[:minInt(len(ds), 8)])
			}
		}
	}
}

// TestDefinedFlagsAgree compares EFLAGS with only the per-instruction
// undefined bits masked, on programs whose final flags come from a single
// known instruction class.
func TestDefinedFlagsAgree(t *testing.T) {
	image := machine.BaselineImage()
	factories := []Factory{FidelisFactory(), CelerFactory(), HardwareFactory()}
	cases := []struct {
		name    string
		handler string
		prog    []byte
	}{
		{"add", "add_rmv_rv", cat(x86.AsmMovRegImm32(x86.EAX, 0xffffffff),
			x86.AsmMovRegImm32(x86.EBX, 1), []byte{0x01, 0xd8}, hlt)},
		{"and", "and_rmv_rv", cat(x86.AsmMovRegImm32(x86.EAX, 0xf0),
			x86.AsmMovRegImm32(x86.EBX, 0x1f), []byte{0x21, 0xd8}, hlt)},
		{"shl-multi", "shl_rmv_imm8", cat(x86.AsmMovRegImm32(x86.EAX, 0x40000001),
			[]byte{0xc1, 0xe0, 0x07}, hlt)},
		{"mul", "mul_rmv", cat(x86.AsmMovRegImm32(x86.EAX, 0x10000),
			x86.AsmMovRegImm32(x86.ECX, 0x10000), []byte{0xf7, 0xe1}, hlt)},
		{"div", "div_rmv", cat(x86.AsmMovRegImm32(x86.EDX, 0),
			x86.AsmMovRegImm32(x86.EAX, 100), x86.AsmMovRegImm32(x86.ECX, 9),
			[]byte{0xf7, 0xf1}, hlt)},
	}
	for _, c := range cases {
		results := RunAll(factories, image, c.prog, 0)
		filter := diff.UndefFilterFor(c.handler)
		for i := 1; i < len(results); i++ {
			ds := diff.Compare(results[0].Snapshot, results[i].Snapshot, filter)
			if len(ds) > 0 {
				t.Errorf("%s: %s vs %s: %v", c.name, results[0].Impl,
					results[i].Impl, ds)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- The documented Lo-Fi defects must actually fire. ---

func TestCelerMissesSegmentLimit(t *testing.T) {
	image := machine.BaselineImage()
	// Shrink the DS limit via a fresh descriptor, reload DS, then read
	// beyond the limit: references raise #GP, celer reads happily.
	lo, hi := x86.MakeDescriptor(0, 0x0ffff, x86.AttrP|x86.AttrS|x86.AttrWritable) // 64 KiB limit
	prog := cat(
		x86.AsmMovMemImm32(machine.GDTBase+12*8, uint32(lo)),
		x86.AsmMovMemImm32(machine.GDTBase+12*8+4, uint32(hi)),
		x86.AsmMovRegImm16(x86.EAX, 12<<3),
		x86.AsmMovSregReg(x86.DS, x86.EAX),
		x86.AsmMovRegMem32(x86.EBX, 0x300000), // beyond the 64 KiB limit
		hlt,
	)
	fi := Run(FidelisFactory(), image, prog, 0)
	hw := Run(HardwareFactory(), image, prog, 0)
	ce := Run(CelerFactory(), image, prog, 0)
	if fi.Snapshot.Exception == nil || fi.Snapshot.Exception.Vector != x86.ExcGP {
		t.Fatalf("fidelis should #GP, got %v", fi.Snapshot.Exception)
	}
	if hw.Snapshot.Exception == nil || hw.Snapshot.Exception.Vector != x86.ExcGP {
		t.Fatalf("hardware should #GP, got %v", hw.Snapshot.Exception)
	}
	if ce.Snapshot.Exception != nil {
		t.Fatalf("celer should not enforce the limit, got %v", ce.Snapshot.Exception)
	}
}

func TestCelerLeaveNotAtomic(t *testing.T) {
	image := machine.BaselineImage()
	clearPTE(image, 0x00350000)
	prog := cat(
		x86.AsmMovRegImm32(x86.EBP, 0x00350000),
		[]byte{0xc9}, // leave → #PF on the read
		hlt,
	)
	fi := Run(FidelisFactory(), image, prog, 0)
	ce := Run(CelerFactory(), image, prog, 0)
	// Both fault; fidelis leaves ESP at the delivery-adjusted baseline,
	// celer has clobbered ESP with EBP before faulting.
	fiESP := fi.Snapshot.CPU.GPR[x86.ESP]
	ceESP := ce.Snapshot.CPU.GPR[x86.ESP]
	if fiESP == ceESP {
		t.Fatalf("expected divergent ESP, both %#x", fiESP)
	}
}

func TestCelerCmpxchgNotAtomic(t *testing.T) {
	image := machine.BaselineImage()
	// Write-protect the destination page and set WP so a supervisor write
	// faults. The values are unequal so the accumulator gets reloaded (in
	// celer, before the failed write).
	prog := cat(
		x86.AsmMovMemImm32(0x300000, 7), // before protection kicks in? No:
		// the page is writable; we instead flip WP+RO via CR0 and the PTE.
		hlt,
	)
	_ = prog
	// Build the scenario directly: protect page, enable WP, run cmpxchg.
	pteAddr := uint32(machine.PTBase + (0x00350000>>12&0x3ff)*4)
	pte := image.Read(pteAddr, 4)
	image.Write(pteAddr, pte&^uint64(x86.PteRW), 4)
	image.Write(0x00350000, 7, 4) // destination value
	test := cat(
		// Enable CR0.WP.
		x86.AsmMovRegCR(x86.EAX, 0),
		[]byte{0x0d, 0x00, 0x00, 0x01, 0x00}, // or $0x10000, %eax
		x86.AsmMovCRReg(0, x86.EAX),
		x86.AsmMovRegImm32(x86.EAX, 5), // accumulator ≠ dest
		x86.AsmMovRegImm32(x86.ECX, 9),
		[]byte{0x0f, 0xb1, 0x0d, 0x00, 0x00, 0x35, 0x00}, // cmpxchg %ecx, mem
		hlt,
	)
	fi := Run(FidelisFactory(), image, test, 0)
	ce := Run(CelerFactory(), image, test, 0)
	if fi.Snapshot.Exception == nil || ce.Snapshot.Exception == nil {
		t.Fatalf("both should #PF: fi=%v ce=%v",
			fi.Snapshot.Exception, ce.Snapshot.Exception)
	}
	fiEAX := fi.Snapshot.CPU.GPR[x86.EAX]
	ceEAX := ce.Snapshot.CPU.GPR[x86.EAX]
	if fiEAX != 5 {
		t.Errorf("fidelis corrupted the accumulator: %#x", fiEAX)
	}
	if ceEAX != 7 {
		t.Errorf("celer should have corrupted the accumulator to 7, got %#x", ceEAX)
	}
}

func TestCelerIretPopOrder(t *testing.T) {
	image := machine.BaselineImage()
	// Place the iret frame across a page boundary with the *lower* page
	// (holding EIP and CS) not present and EFLAGS on the next, present
	// page. The references read EIP first and fault with CR2 = &EIP,
	// never touching the upper page; celer reads EFLAGS first (setting the
	// upper page's accessed bit) and then faults on CS with CR2 = &CS —
	// exactly the paper's "significant only across pages" observation.
	const frameBase = 0x00351ff8 // EIP at +0, CS at +4 (missing page), EFLAGS at +8
	clearPTE(image, 0x00351000)
	prog := cat(
		x86.AsmMovRegImm32(x86.ESP, frameBase),
		[]byte{0xcf}, // iret
		hlt,
	)
	fi := Run(FidelisFactory(), image, prog, 0)
	ce := Run(CelerFactory(), image, prog, 0)
	hw := Run(HardwareFactory(), image, prog, 0)
	// CR2 ends up reflecting the delivery fault (the exception frame lands
	// on the same missing page), so the observable signal is the accessed
	// bit of the EFLAGS page: only celer touches it before faulting.
	pteUpper := func(r *Result) uint64 {
		return r.Snapshot.Mem.Read(machine.PTBase+(0x00352000>>12)*4, 4)
	}
	if pteUpper(fi)&x86.PteA != 0 || pteUpper(hw)&x86.PteA != 0 {
		t.Error("references must not touch the EFLAGS page before faulting")
	}
	if pteUpper(ce)&x86.PteA == 0 {
		t.Error("celer reads EFLAGS first and must touch its page")
	}
}

func TestCelerRdmsrNoGP(t *testing.T) {
	image := machine.BaselineImage()
	prog := cat(
		x86.AsmMovRegImm32(x86.ECX, 0xdead),
		[]byte{0x0f, 0x32},
		hlt,
	)
	fi := Run(FidelisFactory(), image, prog, 0)
	ce := Run(CelerFactory(), image, prog, 0)
	if fi.Snapshot.Exception == nil || fi.Snapshot.Exception.Vector != x86.ExcGP {
		t.Errorf("fidelis should #GP, got %v", fi.Snapshot.Exception)
	}
	if ce.Snapshot.Exception != nil {
		t.Errorf("celer should not raise, got %v", ce.Snapshot.Exception)
	}
}

func TestCelerAccessedBitNotSet(t *testing.T) {
	image := machine.BaselineImage()
	lo, hi := x86.MakeDescriptor(0, 0xfffff,
		x86.AttrP|x86.AttrS|x86.AttrWritable|x86.AttrG|x86.AttrDB) // A clear
	prog := cat(
		x86.AsmMovMemImm32(machine.GDTBase+12*8, uint32(lo)),
		x86.AsmMovMemImm32(machine.GDTBase+12*8+4, uint32(hi)),
		x86.AsmMovRegImm16(x86.EAX, 12<<3),
		x86.AsmMovSregReg(x86.GS, x86.EAX),
		hlt,
	)
	fi := Run(FidelisFactory(), image, prog, 0)
	ce := Run(CelerFactory(), image, prog, 0)
	descHi := func(r *Result) uint64 {
		return r.Snapshot.Mem.Read(machine.GDTBase+12*8+4, 4)
	}
	if descHi(fi)&(1<<8) == 0 {
		t.Error("fidelis should set the accessed bit")
	}
	if descHi(ce)&(1<<8) != 0 {
		t.Error("celer should not set the accessed bit")
	}
}

func TestCelerEncodingAcceptance(t *testing.T) {
	image := machine.BaselineImage()
	alias := cat([]byte{0x82, 0xc0, 0x01}, hlt) // 0x80 alias
	fi := Run(FidelisFactory(), image, alias, 0)
	ce := Run(CelerFactory(), image, alias, 0)
	if fi.Snapshot.Exception != nil {
		t.Errorf("fidelis should accept 0x82, got %v", fi.Snapshot.Exception)
	}
	if ce.Snapshot.Exception == nil || ce.Snapshot.Exception.Vector != x86.ExcUD {
		t.Errorf("celer should reject 0x82, got %v", ce.Snapshot.Exception)
	}
	// grp2 /6: references #UD, celer executes it as shl.
	slot6 := cat(x86.AsmMovRegImm32(x86.EAX, 1), []byte{0xc1, 0xf0, 0x03}, hlt)
	fi = Run(FidelisFactory(), image, slot6, 0)
	ce = Run(CelerFactory(), image, slot6, 0)
	if fi.Snapshot.Exception == nil || fi.Snapshot.Exception.Vector != x86.ExcUD {
		t.Errorf("fidelis should reject grp2 /6, got %v", fi.Snapshot.Exception)
	}
	if ce.Snapshot.Exception != nil {
		t.Errorf("celer should accept grp2 /6, got %v", ce.Snapshot.Exception)
	}
	if ce.Snapshot.CPU.GPR[x86.EAX] != 8 {
		t.Errorf("celer grp2/6 as shl: eax = %#x, want 8", ce.Snapshot.CPU.GPR[x86.EAX])
	}
}

func TestFidelisLfsFetchOrderQuirk(t *testing.T) {
	image := machine.BaselineImage()
	// Far pointer straddling a page boundary: offset dword on the missing
	// lower page? Arrange: offset at 0x351ffc (present), selector at
	// 0x352000 (not present). Hardware reads the offset first (touches the
	// lower page, then faults); Bochs-like fidelis reads the selector first
	// and faults before touching the lower page.
	clearPTE(image, 0x00352000)
	prog := cat(
		[]byte{0x0f, 0xb4, 0x1d, 0xfc, 0x1f, 0x35, 0x00}, // lfs mem, %ebx
		hlt,
	)
	fi := Run(FidelisFactory(), image, prog, 0)
	hw := Run(HardwareFactory(), image, prog, 0)
	pteLower := func(r *Result) uint64 {
		return r.Snapshot.Mem.Read(machine.PTBase+(0x00351000>>12)*4, 4)
	}
	if pteLower(hw)&x86.PteA == 0 {
		t.Error("hardware reads the offset first: lower page should be accessed")
	}
	if pteLower(fi)&x86.PteA != 0 {
		t.Error("fidelis reads the selector first: lower page should be untouched")
	}
}

func TestVerrVerwAgreeAcrossImplementations(t *testing.T) {
	image := machine.BaselineImage()
	// Install a read-only data descriptor at slot 12 and a non-present one
	// at slot 13; verr/verw must report the same ZF on every implementation.
	lo, hi := x86.MakeDescriptor(0, 0xfffff, x86.AttrP|x86.AttrS) // RO data
	image.Write(machine.GDTBase+12*8, uint64(lo), 4)
	image.Write(machine.GDTBase+12*8+4, uint64(hi), 4)
	lo2, hi2 := x86.MakeDescriptor(0, 0xfffff, x86.AttrS|x86.AttrWritable) // not present
	image.Write(machine.GDTBase+13*8, uint64(lo2), 4)
	image.Write(machine.GDTBase+13*8+4, uint64(hi2), 4)

	cases := []struct {
		name   string
		sel    uint16
		opcode byte // /4 verr, /5 verw
		wantZF bool
	}{
		{"verr-ro-data", 12 << 3, 4, true},
		{"verw-ro-data", 12 << 3, 5, false},
		{"verr-not-present", 13 << 3, 4, false},
		{"verw-flat-data", machine.SelData, 5, true},
		{"verr-null", 0, 4, false},
		{"verr-ldt", 12<<3 | 4, 4, false},
		{"verr-beyond-limit", 15 << 3, 4, false},
		{"verw-code", machine.SelCode, 5, false},
	}
	factories := []Factory{FidelisFactory(), CelerFactory(), HardwareFactory()}
	for _, c := range cases {
		prog := cat(
			x86.AsmMovRegImm16(x86.EAX, c.sel),
			[]byte{0x0f, 0x00, 0xc0 | c.opcode<<3}, // verr/verw %ax
			hlt,
		)
		for _, f := range factories {
			r := Run(f, image, prog, 0)
			if r.Snapshot.Exception != nil {
				t.Fatalf("%s/%s: raised %v", c.name, r.Impl, r.Snapshot.Exception)
			}
			zf := r.Snapshot.CPU.EFLAGS&(1<<x86.FlagZF) != 0
			if zf != c.wantZF {
				t.Errorf("%s/%s: ZF=%v, want %v", c.name, r.Impl, zf, c.wantZF)
			}
		}
	}
}
