package harness

import (
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/machine"
	"pokeemu/internal/solver"
	"pokeemu/internal/x86"
)

// The cross-validation oracle is only as good as the agreement between its
// five independent implementations of the bit-vector semantics: the pure
// evaluator (expr.Eval), the bit-blaster (solver.BV), and the three
// emulators — fidelis, celer, and lento, the direct-decode voting peer.
// This table drives the same shift/div/extend edge-case vectors through all
// five and requires one answer.
//
// Shift counts are given raw (pre-mask): the emulators mask CL to 5 bits
// in the instruction, so the expr/solver terms shift by count&0x1f — the
// point where the two layers historically disagreed.

type oracleVector struct {
	name string
	w    uint8  // operand width: 8, 16, or 32
	op   string // shl | shr | sar | div | zext | sext
	a, b uint64 // operands; b is the raw CL count, the divisor, or unused
}

var oracleVectors = []oracleVector{
	// Counts below, at, and beyond the operand width (after the 5-bit mask).
	{"shl-w8-count7", 8, "shl", 0x81, 7},
	{"shl-w8-count8", 8, "shl", 0x81, 8},
	{"shl-w8-count40", 8, "shl", 0xff, 40}, // CL=40 masks to 8 == width
	{"shl-w32-count31", 32, "shl", 0x80000001, 31},
	{"shl-w32-count63", 32, "shl", 0x80000001, 63}, // masks to 31
	{"shr-w8-count8-msb1", 8, "shr", 0x80, 8},
	{"shr-w8-count40-msb1", 8, "shr", 0x80, 40}, // masks to 8 == width
	{"shr-w8-count9", 8, "shr", 0xff, 9},
	{"shr-w16-count48", 16, "shr", 0x8000, 48}, // masks to 16 == width
	{"shr-w32-count1", 32, "shr", 0xffffffff, 1},
	{"sar-w8-count8", 8, "sar", 0x80, 8},
	{"sar-w8-count31", 8, "sar", 0x80, 31},
	{"sar-w8-count31-pos", 8, "sar", 0x7f, 31},
	{"sar-w16-count16", 16, "sar", 0x8000, 48},
	{"sar-w32-count31", 32, "sar", 0x80000000, 31},
	// Unsigned division and remainder (32-bit instruction form).
	{"div-exact", 32, "div", 1000, 8},
	{"div-rem", 32, "div", 1000, 37},
	{"div-small-by-large", 32, "div", 3, 1000},
	{"div-max", 32, "div", 0xffffffff, 1},
	// Widening moves.
	{"zext-8-to-32", 32, "zext", 0xabcdef85, 0},
	{"sext-8-to-32-neg", 32, "sext", 0xabcdef85, 0},
	{"sext-8-to-32-pos", 32, "sext", 0xabcdef75, 0},
	{"sext-16-to-32", 32, "sext16", 0x1234f234, 0},
}

// term builds the expr-level form of a vector over the variable x.
func (v *oracleVector) term(x *expr.Expr) *expr.Expr {
	switch v.op {
	case "shl":
		return expr.Shl(x, expr.Const(v.w, v.b&0x1f))
	case "shr":
		return expr.LShr(x, expr.Const(v.w, v.b&0x1f))
	case "sar":
		return expr.AShr(x, expr.Const(v.w, v.b&0x1f))
	case "div":
		return expr.UDiv(x, expr.Const(v.w, v.b))
	case "zext":
		return expr.ZExt(expr.Extract(x, 0, 8), 32)
	case "sext":
		return expr.SExt(expr.Extract(x, 0, 8), 32)
	case "sext16":
		return expr.SExt(expr.Extract(x, 0, 16), 32)
	}
	panic("unknown op " + v.op)
}

// program assembles the x86 form: operand in EAX, count/divisor in ECX,
// result left in EAX (and the remainder in EDX for div).
func (v *oracleVector) program() []byte {
	mov := func(r x86.Reg, val uint64) []byte { return x86.AsmMovRegImm32(r, uint32(val)) }
	switch v.op {
	case "shl", "shr", "sar":
		grp2 := map[string]byte{"shl": 0xe0, "shr": 0xe8, "sar": 0xf8}[v.op]
		var sh []byte
		switch v.w {
		case 8:
			sh = []byte{0xd2, grp2} // group2 rm8, CL
		case 16:
			sh = []byte{0x66, 0xd3, grp2}
		default:
			sh = []byte{0xd3, grp2}
		}
		return cat(mov(x86.ECX, v.b), mov(x86.EAX, v.a), sh, hlt)
	case "div":
		return cat(mov(x86.EDX, 0), mov(x86.EAX, v.a), mov(x86.ECX, v.b),
			[]byte{0xf7, 0xf1}, hlt) // div %ecx
	case "zext":
		return cat(mov(x86.EAX, v.a), []byte{0x0f, 0xb6, 0xc0}, hlt) // movzx %al, %eax
	case "sext":
		return cat(mov(x86.EAX, v.a), []byte{0x0f, 0xbe, 0xc0}, hlt) // movsx %al, %eax
	case "sext16":
		return cat(mov(x86.EAX, v.a), []byte{0x0f, 0xbf, 0xc0}, hlt) // movsx %ax, %eax
	}
	panic("unknown op " + v.op)
}

func TestOracleVectorsFourWay(t *testing.T) {
	image := machine.BaselineImage()
	emulators := []Factory{FidelisFactory(), CelerFactory(), LentoFactory()}
	for _, v := range oracleVectors {
		v := v
		t.Run(v.name, func(t *testing.T) {
			x := expr.Var(v.w, "x")
			term := v.term(x)
			env := map[string]uint64{"x": v.a & expr.Mask(v.w)}

			// Oracle 1: the pure evaluator defines the expected value.
			want := expr.Eval(term, env)

			// Oracle 2: the bit-blaster, with x pinned by assumption. The
			// term must be encoded before the solve: ValueOf reads the
			// solved model, and bits encoded afterwards are unassigned.
			b := solver.NewBV()
			b.Bits(term)
			rem := expr.URem(x, expr.Const(v.w, v.b))
			if v.op == "div" {
				b.Bits(rem)
			}
			pin := b.LitFor(expr.Eq(x, expr.Const(v.w, v.a&expr.Mask(v.w))))
			if st := b.CheckLits([]solver.Lit{pin}); st != solver.Sat {
				t.Fatalf("pin check = %v", st)
			}
			if got := b.ValueOf(term); got != want {
				t.Errorf("bit-blaster: %#x, evaluator: %#x", got, want)
			}
			if v.op == "div" {
				if got, w := b.ValueOf(rem), expr.Eval(rem, env); got != w {
					t.Errorf("bit-blaster remainder: %#x, evaluator: %#x", got, w)
				}
			}

			// Oracles 3 and 4: the emulators executing the instruction form.
			prog := v.program()
			for _, res := range RunAll(emulators, image, prog, 0) {
				if res.Snapshot.Exception != nil {
					t.Fatalf("%s raised %v", res.Impl, res.Snapshot.Exception)
				}
				got := uint64(res.Snapshot.CPU.GPR[x86.EAX]) & expr.Mask(v.w)
				// The shift result occupies only the low w bits of EAX; the
				// high bits keep their pre-shift value and are not part of
				// the vector's contract.
				if got != want {
					t.Errorf("%s: %#x, evaluator: %#x", res.Impl, got, want)
				}
				if v.op == "div" {
					wantRem := expr.Eval(rem, env)
					if gr := uint64(res.Snapshot.CPU.GPR[x86.EDX]); gr != wantRem {
						t.Errorf("%s remainder: %#x, evaluator: %#x", res.Impl, gr, wantRem)
					}
				}
			}
		})
	}
}

// rotVector is one rotate edge case driven through the same four oracles.
// b is the raw CL count (pre-mask); cin is the carry-in the program sets via
// popf before rotating. OF is asserted only where it is architecturally
// defined — count == 1, or a masked count of zero, where no flag may change
// at all (for count > 1 the Lo-Fi emulator deliberately leaves OF alone,
// finding 8, so the implementations are allowed to disagree there).
type rotVector struct {
	name string
	w    uint8
	op   string // rol | ror | rcl | rcr
	a    uint64
	b    uint64 // raw CL count
	cin  uint64 // carry-in (0 or 1)
}

var rotateVectors = []rotVector{
	// Count 0, raw and via the 5-bit mask: nothing changes, flags included.
	{"rol-w8-count0", 8, "rol", 0xa5, 0, 1},
	{"rol-w8-count32-masks-to-0", 8, "rol", 0xa5, 32, 0},
	{"ror-w8-count0", 8, "ror", 0xa5, 0, 1},
	{"rcl-w8-count0", 8, "rcl", 0xa5, 0, 1},
	{"rcr-w8-count32-masks-to-0", 8, "rcr", 0xa5, 32, 1},
	// Masked count == width: the value is unchanged but CF is still written
	// from the (full) rotation — the corner where a fast path that treats
	// "rotation by zero bits" as "count zero" would skip the flag update.
	{"rol-w8-count8-full-rotate", 8, "rol", 0x81, 8, 0},
	{"ror-w8-count8-full-rotate", 8, "ror", 0x81, 8, 0},
	{"ror-w16-count16-full-rotate", 16, "ror", 0x8001, 16, 0},
	// rcl/rcr rotate through a w+1-bit register: count w rotates the
	// carry-in into the value, count w+1 (mod w+1 = 0) is the no-op that
	// still rewrites CF with its own value.
	{"rcl-w8-count8", 8, "rcl", 0x81, 8, 1},
	{"rcl-w8-count9-full-rotate", 8, "rcl", 0x81, 9, 1},
	{"rcr-w8-count8", 8, "rcr", 0x81, 8, 1},
	{"rcr-w8-count9-full-rotate", 8, "rcr", 0x81, 9, 0},
	// Count 1: OF is defined, assert it through the formulas.
	{"rol-w8-count1", 8, "rol", 0x81, 1, 0},
	{"ror-w32-count33-masks-to-1", 32, "ror", 0x80000001, 33, 0},
	{"rcl-w8-count1", 8, "rcl", 0x80, 1, 0},
	{"rcr-w32-count1", 32, "rcr", 1, 1, 1},
	// Larger masked counts for the wide widths.
	{"rol-w32-count40-masks-to-8", 32, "rol", 0x80000001, 40, 0},
	{"rcr-w16-count12", 16, "rcr", 0x8001, 12, 1},
}

// terms builds the expr-level result and carry-out of a rotate vector over
// the operand variable x, mirroring the IR construction: plain rotates as a
// shift pair over w bits, through-carry rotates over the concatenated
// (w+1)-bit register.
func (v *rotVector) terms(x *expr.Expr) (val, cf *expr.Expr) {
	w := uint64(v.w)
	count := v.b & 0x1f
	switch v.op {
	case "rol", "ror":
		if count == 0 {
			return x, expr.Const(1, v.cin)
		}
		n := count % w
		r := x
		if n != 0 {
			if v.op == "rol" {
				r = expr.Or(expr.Shl(x, expr.Const(v.w, n)), expr.LShr(x, expr.Const(v.w, w-n)))
			} else {
				r = expr.Or(expr.LShr(x, expr.Const(v.w, n)), expr.Shl(x, expr.Const(v.w, w-n)))
			}
		}
		if v.op == "rol" {
			return r, expr.Extract(r, 0, 1)
		}
		return r, expr.Extract(r, v.w-1, 1)
	case "rcl", "rcr":
		xw := expr.Concat(expr.Const(1, v.cin), x) // bit w = CF
		if count == 0 {
			return x, expr.Const(1, v.cin)
		}
		n := count % (w + 1)
		rx := xw
		if n != 0 {
			if v.op == "rcl" {
				rx = expr.Or(expr.Shl(xw, expr.Const(v.w+1, n)), expr.LShr(xw, expr.Const(v.w+1, w+1-n)))
			} else {
				rx = expr.Or(expr.LShr(xw, expr.Const(v.w+1, n)), expr.Shl(xw, expr.Const(v.w+1, w+1-n)))
			}
		}
		return expr.Extract(rx, 0, v.w), expr.Extract(rx, v.w, 1)
	}
	panic("unknown rotate " + v.op)
}

// program assembles the x86 form: flags (CF=cin, OF=1) via popf, count in
// CL, operand in EAX, rotate, halt. OF starts at 1 so a zero-count rotate
// that clobbers it is caught.
func (v *rotVector) program() []byte {
	modrm := map[string]byte{"rol": 0xc0, "ror": 0xc8, "rcl": 0xd0, "rcr": 0xd8}[v.op]
	var rot []byte
	switch v.w {
	case 8:
		rot = []byte{0xd2, modrm}
	case 16:
		rot = []byte{0x66, 0xd3, modrm}
	default:
		rot = []byte{0xd3, modrm}
	}
	return cat(
		x86.AsmPushImm32(uint32(v.cin)|0x800),
		x86.AsmPopf(),
		x86.AsmMovRegImm32(x86.ECX, uint32(v.b)),
		x86.AsmMovRegImm32(x86.EAX, uint32(v.a)),
		rot, hlt,
	)
}

func TestOracleVectorsRotate(t *testing.T) {
	image := machine.BaselineImage()
	emulators := []Factory{FidelisFactory(), CelerFactory(), LentoFactory()}
	for _, v := range rotateVectors {
		v := v
		t.Run(v.name, func(t *testing.T) {
			x := expr.Var(v.w, "x")
			val, cf := v.terms(x)
			env := map[string]uint64{"x": v.a & expr.Mask(v.w)}
			wantVal := expr.Eval(val, env)
			wantCF := expr.Eval(cf, env)

			b := solver.NewBV()
			b.Bits(val)
			b.Bits(cf)
			pin := b.LitFor(expr.Eq(x, expr.Const(v.w, v.a&expr.Mask(v.w))))
			if st := b.CheckLits([]solver.Lit{pin}); st != solver.Sat {
				t.Fatalf("pin check = %v", st)
			}
			if got := b.ValueOf(val); got != wantVal {
				t.Errorf("bit-blaster value: %#x, evaluator: %#x", got, wantVal)
			}
			if got := b.ValueOf(cf); got != wantCF {
				t.Errorf("bit-blaster CF: %d, evaluator: %d", got, wantCF)
			}

			masked := v.b & 0x1f
			for _, res := range RunAll(emulators, image, v.program(), 0) {
				if res.Snapshot.Exception != nil {
					t.Fatalf("%s raised %v", res.Impl, res.Snapshot.Exception)
				}
				efl := uint64(res.Snapshot.CPU.EFLAGS)
				if got := uint64(res.Snapshot.CPU.GPR[x86.EAX]) & expr.Mask(v.w); got != wantVal {
					t.Errorf("%s value: %#x, evaluator: %#x", res.Impl, got, wantVal)
				}
				if got := efl & 1; got != wantCF {
					t.Errorf("%s CF: %d, evaluator: %d", res.Impl, got, wantCF)
				}
				if masked == 0 {
					// Count zero after masking: no flag may change, so the
					// OF=1 planted by popf must survive.
					if efl>>11&1 != 1 {
						t.Errorf("%s: zero-count rotate cleared OF", res.Impl)
					}
				}
				if masked == 1 {
					// Count one: OF is architecturally defined.
					var wantOF uint64
					msb := wantVal >> (v.w - 1) & 1
					switch v.op {
					case "rol":
						wantOF = msb ^ wantVal&1
					case "rcl":
						wantOF = msb ^ wantCF
					case "ror", "rcr":
						wantOF = msb ^ wantVal>>(v.w-2)&1
					}
					if got := efl >> 11 & 1; got != wantOF {
						t.Errorf("%s OF: %d, want %d", res.Impl, got, wantOF)
					}
				}
			}
		})
	}
}

// adjVector drives the BCD adjust instructions (aam/aad) through the four
// oracles: the quotient/remainder split and the multiply-accumulate over AL
// and AH are exactly the term shapes the symbolic layer emits for them.
type adjVector struct {
	name string
	op   string // aam | aad
	a    uint64 // initial EAX (AX is the operand)
	imm  uint8
}

var adjVectors = []adjVector{
	{"aam-10", "aam", 0x1237, 10},
	{"aam-1", "aam", 0x1237, 1},     // AH=AL, AL=0
	{"aam-255", "aam", 0x12fe, 255}, // q=0, r=254
	{"aad-10", "aad", 0x0507, 10},
	{"aad-0", "aad", 0x0507, 0},     // AL unchanged, AH cleared
	{"aad-255", "aad", 0xff02, 255}, // 8-bit wraparound in the accumulate
}

func (v *adjVector) term(x *expr.Expr) *expr.Expr {
	al := expr.Extract(x, 0, 8)
	ah := expr.Extract(x, 8, 8)
	imm := expr.Const(8, uint64(v.imm))
	if v.op == "aam" {
		return expr.Concat(expr.UDiv(al, imm), expr.URem(al, imm))
	}
	return expr.ZExt(expr.Add(al, expr.Mul(ah, imm)), 16)
}

func (v *adjVector) program() []byte {
	op := byte(0xd4)
	if v.op == "aad" {
		op = 0xd5
	}
	return cat(x86.AsmMovRegImm32(x86.EAX, uint32(v.a)), []byte{op, v.imm}, hlt)
}

func TestOracleVectorsAdjust(t *testing.T) {
	image := machine.BaselineImage()
	emulators := []Factory{FidelisFactory(), CelerFactory(), LentoFactory()}
	for _, v := range adjVectors {
		v := v
		t.Run(v.name, func(t *testing.T) {
			x := expr.Var(16, "x")
			term := v.term(x)
			env := map[string]uint64{"x": v.a & 0xffff}
			want := expr.Eval(term, env)

			b := solver.NewBV()
			b.Bits(term)
			pin := b.LitFor(expr.Eq(x, expr.Const(16, v.a&0xffff)))
			if st := b.CheckLits([]solver.Lit{pin}); st != solver.Sat {
				t.Fatalf("pin check = %v", st)
			}
			if got := b.ValueOf(term); got != want {
				t.Errorf("bit-blaster: %#x, evaluator: %#x", got, want)
			}

			for _, res := range RunAll(emulators, image, v.program(), 0) {
				if res.Snapshot.Exception != nil {
					t.Fatalf("%s raised %v", res.Impl, res.Snapshot.Exception)
				}
				if got := uint64(res.Snapshot.CPU.GPR[x86.EAX]) & 0xffff; got != want {
					t.Errorf("%s: AX %#x, evaluator: %#x", res.Impl, got, want)
				}
			}
		})
	}
}

// TestOracleVectorsAamZero pins the adjust-instruction boundary the same way
// the divide-by-zero test does: aam 0 divides AL by zero, so the term layer
// keeps SMT-LIB total-function semantics while both emulators raise #DE.
func TestOracleVectorsAamZero(t *testing.T) {
	x := expr.Var(16, "x")
	v := adjVector{op: "aam", a: 0x1237, imm: 0}
	term := v.term(x)
	env := map[string]uint64{"x": v.a}
	// AL/0 = all-ones (0xff), AL%0 = AL.
	if got, want := expr.Eval(term, env), uint64(0xff37); got != want {
		t.Errorf("eval aam 0 = %#x, want %#x", got, want)
	}
	image := machine.BaselineImage()
	for _, res := range RunAll([]Factory{FidelisFactory(), CelerFactory(), LentoFactory()}, image, v.program(), 0) {
		ex := res.Snapshot.Exception
		if ex == nil || ex.Vector != 0 {
			t.Errorf("%s: aam 0 raised %v, want #DE (vector 0)", res.Impl, ex)
		}
	}
}

// TestOracleVectorsDivideByZero pins the deliberate disagreement at the
// boundary: SMT-LIB total-function semantics (x/0 = all-ones, x%0 = x) for
// the evaluator and bit-blaster, a #DE exception for both emulators.
func TestOracleVectorsDivideByZero(t *testing.T) {
	x := expr.Var(32, "x")
	env := map[string]uint64{"x": 1234}
	q := expr.UDiv(x, expr.Const(32, 0))
	r := expr.URem(x, expr.Const(32, 0))
	if got := expr.Eval(q, env); got != expr.Mask(32) {
		t.Errorf("eval x/0 = %#x, want all-ones", got)
	}
	if got := expr.Eval(r, env); got != 1234 {
		t.Errorf("eval x%%0 = %#x, want the dividend", got)
	}
	b := solver.NewBV()
	b.Bits(q)
	b.Bits(r)
	pin := b.LitFor(expr.Eq(x, expr.Const(32, 1234)))
	if st := b.CheckLits([]solver.Lit{pin}); st != solver.Sat {
		t.Fatalf("pin check = %v", st)
	}
	if got := b.ValueOf(q); got != expr.Mask(32) {
		t.Errorf("bit-blaster x/0 = %#x, want all-ones", got)
	}
	if got := b.ValueOf(r); got != 1234 {
		t.Errorf("bit-blaster x%%0 = %#x, want the dividend", got)
	}

	image := machine.BaselineImage()
	prog := cat(x86.AsmMovRegImm32(x86.EDX, 0), x86.AsmMovRegImm32(x86.EAX, 1234),
		x86.AsmMovRegImm32(x86.ECX, 0), []byte{0xf7, 0xf1}, hlt)
	for _, res := range RunAll([]Factory{FidelisFactory(), CelerFactory(), LentoFactory()}, image, prog, 0) {
		ex := res.Snapshot.Exception
		if ex == nil || ex.Vector != 0 {
			t.Errorf("%s: divide by zero raised %v, want #DE (vector 0)", res.Impl, ex)
		}
	}
}
