package harness

import (
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/machine"
	"pokeemu/internal/solver"
	"pokeemu/internal/x86"
)

// The cross-validation oracle is only as good as the agreement between its
// four independent implementations of the bit-vector semantics: the pure
// evaluator (expr.Eval), the bit-blaster (solver.BV), and the two
// emulators. This table drives the same shift/div/extend edge-case vectors
// through all four and requires one answer.
//
// Shift counts are given raw (pre-mask): the emulators mask CL to 5 bits
// in the instruction, so the expr/solver terms shift by count&0x1f — the
// point where the two layers historically disagreed.

type oracleVector struct {
	name string
	w    uint8  // operand width: 8, 16, or 32
	op   string // shl | shr | sar | div | zext | sext
	a, b uint64 // operands; b is the raw CL count, the divisor, or unused
}

var oracleVectors = []oracleVector{
	// Counts below, at, and beyond the operand width (after the 5-bit mask).
	{"shl-w8-count7", 8, "shl", 0x81, 7},
	{"shl-w8-count8", 8, "shl", 0x81, 8},
	{"shl-w8-count40", 8, "shl", 0xff, 40}, // CL=40 masks to 8 == width
	{"shl-w32-count31", 32, "shl", 0x80000001, 31},
	{"shl-w32-count63", 32, "shl", 0x80000001, 63}, // masks to 31
	{"shr-w8-count8-msb1", 8, "shr", 0x80, 8},
	{"shr-w8-count40-msb1", 8, "shr", 0x80, 40}, // masks to 8 == width
	{"shr-w8-count9", 8, "shr", 0xff, 9},
	{"shr-w16-count48", 16, "shr", 0x8000, 48}, // masks to 16 == width
	{"shr-w32-count1", 32, "shr", 0xffffffff, 1},
	{"sar-w8-count8", 8, "sar", 0x80, 8},
	{"sar-w8-count31", 8, "sar", 0x80, 31},
	{"sar-w8-count31-pos", 8, "sar", 0x7f, 31},
	{"sar-w16-count16", 16, "sar", 0x8000, 48},
	{"sar-w32-count31", 32, "sar", 0x80000000, 31},
	// Unsigned division and remainder (32-bit instruction form).
	{"div-exact", 32, "div", 1000, 8},
	{"div-rem", 32, "div", 1000, 37},
	{"div-small-by-large", 32, "div", 3, 1000},
	{"div-max", 32, "div", 0xffffffff, 1},
	// Widening moves.
	{"zext-8-to-32", 32, "zext", 0xabcdef85, 0},
	{"sext-8-to-32-neg", 32, "sext", 0xabcdef85, 0},
	{"sext-8-to-32-pos", 32, "sext", 0xabcdef75, 0},
	{"sext-16-to-32", 32, "sext16", 0x1234f234, 0},
}

// term builds the expr-level form of a vector over the variable x.
func (v *oracleVector) term(x *expr.Expr) *expr.Expr {
	switch v.op {
	case "shl":
		return expr.Shl(x, expr.Const(v.w, v.b&0x1f))
	case "shr":
		return expr.LShr(x, expr.Const(v.w, v.b&0x1f))
	case "sar":
		return expr.AShr(x, expr.Const(v.w, v.b&0x1f))
	case "div":
		return expr.UDiv(x, expr.Const(v.w, v.b))
	case "zext":
		return expr.ZExt(expr.Extract(x, 0, 8), 32)
	case "sext":
		return expr.SExt(expr.Extract(x, 0, 8), 32)
	case "sext16":
		return expr.SExt(expr.Extract(x, 0, 16), 32)
	}
	panic("unknown op " + v.op)
}

// program assembles the x86 form: operand in EAX, count/divisor in ECX,
// result left in EAX (and the remainder in EDX for div).
func (v *oracleVector) program() []byte {
	mov := func(r x86.Reg, val uint64) []byte { return x86.AsmMovRegImm32(r, uint32(val)) }
	switch v.op {
	case "shl", "shr", "sar":
		grp2 := map[string]byte{"shl": 0xe0, "shr": 0xe8, "sar": 0xf8}[v.op]
		var sh []byte
		switch v.w {
		case 8:
			sh = []byte{0xd2, grp2} // group2 rm8, CL
		case 16:
			sh = []byte{0x66, 0xd3, grp2}
		default:
			sh = []byte{0xd3, grp2}
		}
		return cat(mov(x86.ECX, v.b), mov(x86.EAX, v.a), sh, hlt)
	case "div":
		return cat(mov(x86.EDX, 0), mov(x86.EAX, v.a), mov(x86.ECX, v.b),
			[]byte{0xf7, 0xf1}, hlt) // div %ecx
	case "zext":
		return cat(mov(x86.EAX, v.a), []byte{0x0f, 0xb6, 0xc0}, hlt) // movzx %al, %eax
	case "sext":
		return cat(mov(x86.EAX, v.a), []byte{0x0f, 0xbe, 0xc0}, hlt) // movsx %al, %eax
	case "sext16":
		return cat(mov(x86.EAX, v.a), []byte{0x0f, 0xbf, 0xc0}, hlt) // movsx %ax, %eax
	}
	panic("unknown op " + v.op)
}

func TestOracleVectorsFourWay(t *testing.T) {
	image := machine.BaselineImage()
	emulators := []Factory{FidelisFactory(), CelerFactory()}
	for _, v := range oracleVectors {
		v := v
		t.Run(v.name, func(t *testing.T) {
			x := expr.Var(v.w, "x")
			term := v.term(x)
			env := map[string]uint64{"x": v.a & expr.Mask(v.w)}

			// Oracle 1: the pure evaluator defines the expected value.
			want := expr.Eval(term, env)

			// Oracle 2: the bit-blaster, with x pinned by assumption. The
			// term must be encoded before the solve: ValueOf reads the
			// solved model, and bits encoded afterwards are unassigned.
			b := solver.NewBV()
			b.Bits(term)
			rem := expr.URem(x, expr.Const(v.w, v.b))
			if v.op == "div" {
				b.Bits(rem)
			}
			pin := b.LitFor(expr.Eq(x, expr.Const(v.w, v.a&expr.Mask(v.w))))
			if st := b.CheckLits([]solver.Lit{pin}); st != solver.Sat {
				t.Fatalf("pin check = %v", st)
			}
			if got := b.ValueOf(term); got != want {
				t.Errorf("bit-blaster: %#x, evaluator: %#x", got, want)
			}
			if v.op == "div" {
				if got, w := b.ValueOf(rem), expr.Eval(rem, env); got != w {
					t.Errorf("bit-blaster remainder: %#x, evaluator: %#x", got, w)
				}
			}

			// Oracles 3 and 4: the emulators executing the instruction form.
			prog := v.program()
			for _, res := range RunAll(emulators, image, prog, 0) {
				if res.Snapshot.Exception != nil {
					t.Fatalf("%s raised %v", res.Impl, res.Snapshot.Exception)
				}
				got := uint64(res.Snapshot.CPU.GPR[x86.EAX]) & expr.Mask(v.w)
				// The shift result occupies only the low w bits of EAX; the
				// high bits keep their pre-shift value and are not part of
				// the vector's contract.
				if got != want {
					t.Errorf("%s: %#x, evaluator: %#x", res.Impl, got, want)
				}
				if v.op == "div" {
					wantRem := expr.Eval(rem, env)
					if gr := uint64(res.Snapshot.CPU.GPR[x86.EDX]); gr != wantRem {
						t.Errorf("%s remainder: %#x, evaluator: %#x", res.Impl, gr, wantRem)
					}
				}
			}
		})
	}
}

// TestOracleVectorsDivideByZero pins the deliberate disagreement at the
// boundary: SMT-LIB total-function semantics (x/0 = all-ones, x%0 = x) for
// the evaluator and bit-blaster, a #DE exception for both emulators.
func TestOracleVectorsDivideByZero(t *testing.T) {
	x := expr.Var(32, "x")
	env := map[string]uint64{"x": 1234}
	q := expr.UDiv(x, expr.Const(32, 0))
	r := expr.URem(x, expr.Const(32, 0))
	if got := expr.Eval(q, env); got != expr.Mask(32) {
		t.Errorf("eval x/0 = %#x, want all-ones", got)
	}
	if got := expr.Eval(r, env); got != 1234 {
		t.Errorf("eval x%%0 = %#x, want the dividend", got)
	}
	b := solver.NewBV()
	b.Bits(q)
	b.Bits(r)
	pin := b.LitFor(expr.Eq(x, expr.Const(32, 1234)))
	if st := b.CheckLits([]solver.Lit{pin}); st != solver.Sat {
		t.Fatalf("pin check = %v", st)
	}
	if got := b.ValueOf(q); got != expr.Mask(32) {
		t.Errorf("bit-blaster x/0 = %#x, want all-ones", got)
	}
	if got := b.ValueOf(r); got != 1234 {
		t.Errorf("bit-blaster x%%0 = %#x, want the dividend", got)
	}

	image := machine.BaselineImage()
	prog := cat(x86.AsmMovRegImm32(x86.EDX, 0), x86.AsmMovRegImm32(x86.EAX, 1234),
		x86.AsmMovRegImm32(x86.ECX, 0), []byte{0xf7, 0xf1}, hlt)
	for _, res := range RunAll([]Factory{FidelisFactory(), CelerFactory()}, image, prog, 0) {
		ex := res.Snapshot.Exception
		if ex == nil || ex.Vector != 0 {
			t.Errorf("%s: divide by zero raised %v, want #DE (vector 0)", res.Impl, ex)
		}
	}
}
