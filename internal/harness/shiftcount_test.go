package harness

import (
	"testing"

	"pokeemu/internal/diff"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// Shift counts at or beyond the operand width are only reachable through
// the CL form on 8- and 16-bit operands (the count is masked to 5 bits
// first, so e.g. CL=40 shifts an 8-bit operand by 8). The tricky case is
// count == width: the result is 0 (or the sign fill for SAR), but SHR's CF
// is the operand's MSB — the last bit actually shifted out — not 0. All
// three implementations must agree on the defined flags.
func TestShiftCountAtAndBeyondWidth(t *testing.T) {
	image := machine.BaselineImage()
	factories := []Factory{FidelisFactory(), CelerFactory(), HardwareFactory()}
	cases := []struct {
		name    string
		handler string
		cl, a   uint32
		shift   []byte
	}{
		// CL=40 → masked count 8 == width of AL.
		{"shr-al-count-eq-width-msb1", "shr_rm8_cl", 40, 0x80, []byte{0xd2, 0xe8}},
		{"shr-al-count-eq-width-msb0", "shr_rm8_cl", 40, 0x7f, []byte{0xd2, 0xe8}},
		// CL=20 → masked count 20 > 8: everything shifted out is zero.
		{"shr-al-count-gt-width", "shr_rm8_cl", 20, 0xff, []byte{0xd2, 0xe8}},
		// CL=48 → masked count 16 == width of AX.
		{"shr-ax-count-eq-width", "shr_rmv_cl", 48, 0x8000, []byte{0x66, 0xd3, 0xe8}},
		{"shr-ax-count-gt-width", "shr_rmv_cl", 17, 0xffff, []byte{0x66, 0xd3, 0xe8}},
		// SHL and SAR at the same masked counts (regression guard: these
		// already agreed, and must keep agreeing).
		{"shl-al-count-eq-width", "shl_rm8_cl", 40, 0x01, []byte{0xd2, 0xe0}},
		{"shl-al-count-gt-width", "shl_rm8_cl", 20, 0xff, []byte{0xd2, 0xe0}},
		{"sar-al-count-eq-width", "sar_rm8_cl", 40, 0x80, []byte{0xd2, 0xf8}},
		{"sar-ax-count-gt-width", "sar_rmv_cl", 31, 0x8000, []byte{0x66, 0xd3, 0xf8}},
	}
	for _, c := range cases {
		prog := cat(
			x86.AsmMovRegImm32(x86.ECX, c.cl),
			x86.AsmMovRegImm32(x86.EAX, c.a),
			c.shift,
			hlt,
		)
		results := RunAll(factories, image, prog, 0)
		filter := diff.UndefFilterFor(c.handler)
		for i := 1; i < len(results); i++ {
			ds := diff.Compare(results[0].Snapshot, results[i].Snapshot, filter)
			if len(ds) > 0 {
				t.Errorf("%s: %s vs %s: %v", c.name, results[0].Impl,
					results[i].Impl, ds)
			}
		}
	}
}
