// Package harness executes test programs on emulators and captures final
// states (paper Section 5): boot a fresh guest from the shared baseline
// image, load the test program at the entry point, run to completion while
// intercepting exceptions and halts, and snapshot the CPU and physical
// memory in a common format.
package harness

import (
	"time"

	"pokeemu/internal/celer"
	"pokeemu/internal/coverage"
	"pokeemu/internal/emu"
	"pokeemu/internal/fidelis"
	"pokeemu/internal/hwsim"
	"pokeemu/internal/lento"
	"pokeemu/internal/machine"
)

// DefaultMaxSteps bounds a single test-program run.
const DefaultMaxSteps = 4096

// wallCheckInterval is how many steps run between wall-clock budget checks;
// checking every step would put a clock read on the hot path.
const wallCheckInterval = 128

// Budget bounds a single test execution. MaxSteps is the deterministic
// budget (same result on every run); Wall is an optional safety net against
// pathological slowness — a campaign that wants byte-identical reports
// across runs should leave Wall at zero.
type Budget struct {
	MaxSteps int           // 0 = DefaultMaxSteps
	Wall     time.Duration // 0 = unlimited
}

// Factory creates one emulator implementation over a guest machine.
type Factory struct {
	Name string
	New  func(m *machine.Machine) emu.Emulator
}

// FidelisFactory builds the Hi-Fi interpreter (fresh translation state per
// guest, as an interpreter re-decodes everything).
func FidelisFactory() Factory {
	return Factory{Name: "fidelis", New: func(m *machine.Machine) emu.Emulator {
		return fidelis.New(m)
	}}
}

// CoverageFactory builds the Hi-Fi interpreter with an edge-coverage map
// attached: the run's IR control-flow edges accumulate into cov. The
// snapshot is identical to an uninstrumented fidelis run, so hybrid
// campaigns diff the instrumented leg directly.
func CoverageFactory(cov *coverage.Map) Factory {
	return Factory{Name: "fidelis", New: func(m *machine.Machine) emu.Emulator {
		e := fidelis.New(m)
		e.SetCoverage(cov)
		return e
	}}
}

// CelerFactory builds the Lo-Fi emulator with a translation-block cache
// persistent across guests — the DBT speed advantage.
func CelerFactory() Factory {
	return CelerFactoryFast(true)
}

// CelerFactoryFast is CelerFactory with the direct-dispatch fast path
// explicitly on or off; off forces every step through the shared-cache
// dispatcher and the re-lowering slow executable.
func CelerFactoryFast(fast bool) Factory {
	cache := celer.NewCache()
	return Factory{Name: "celer", New: func(m *machine.Machine) emu.Emulator {
		e := celer.NewWithCache(m, cache)
		e.SetFastPath(fast)
		return e
	}}
}

// LentoFactory builds the third, deliberately independent backend: the
// naive direct-decode interpreter. It shares no translation or evaluation
// machinery with fidelis or celer, which is what makes 3-way majority
// voting meaningful. No cache exists to share — every step re-decodes.
func LentoFactory() Factory {
	return Factory{Name: "lento", New: func(m *machine.Machine) emu.Emulator {
		return lento.New(m)
	}}
}

// HardwareFactory builds the hardware oracle guest. Its per-test cost is the
// lowest: hardware needs no translation, modeled as a program cache shared
// across every guest — mirroring native execution under KVM.
func HardwareFactory() Factory {
	cache := fidelis.NewCache()
	return Factory{Name: "hardware", New: func(m *machine.Machine) emu.Emulator {
		return hwsim.NewHardwareShared(m, cache)
	}}
}

// Result is a completed test execution.
type Result struct {
	Impl     string
	Snapshot *machine.Snapshot
	Events   []emu.Event
	Steps    int
	// BaselineFault is set if the guest faulted or halted before the
	// baseline initializer completed (never expected).
	BaselineFault bool
	// TimedOut is set if the wall-clock budget expired before the guest
	// reached a terminal event; the snapshot is then a partial state and
	// must not be diffed.
	TimedOut bool
}

// ByName returns a fresh factory for an implementation name. Every call
// builds new translation caches, so callers that need scheduling-independent
// results (the triage minimizer re-running oracles per case) get isolated
// state.
func ByName(name string) (Factory, bool) {
	switch name {
	case "fidelis":
		return FidelisFactory(), true
	case "celer":
		return CelerFactory(), true
	case "hardware":
		return HardwareFactory(), true
	case "lento":
		return LentoFactory(), true
	}
	return Factory{}, false
}

// Run executes a test the way the paper does (Figure 4): boot the guest
// from the shared image, run the fixed baseline state initializer as guest
// code, then the test program; interception of exceptions and halts is
// enabled only once the baseline initialization has completed, and the
// final CPU + memory state is snapshotted at the terminal event.
//
// bootCode is the baseline initializer (testgen.BaselineInit()); pass nil
// to start directly in the baseline state (used by unit tests).
func Run(f Factory, image *machine.Memory, program []byte, maxSteps int) *Result {
	return RunBoot(f, image, nil, program, maxSteps)
}

// RunBoot is Run with an explicit baseline initializer.
func RunBoot(f Factory, image *machine.Memory, bootCode, program []byte, maxSteps int) *Result {
	return RunBootBudget(f, image, bootCode, program, Budget{MaxSteps: maxSteps})
}

// RunBootBudget is RunBoot under an explicit execution budget (the
// campaign's per-test step and wall-time caps).
func RunBootBudget(f Factory, image *machine.Memory, bootCode, program []byte, budget Budget) *Result {
	maxSteps := budget.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	var start time.Time
	if budget.Wall > 0 {
		start = time.Now()
	}
	var m *machine.Machine
	if bootCode == nil {
		m = machine.NewBaseline(image)
	} else {
		m = machine.NewBoot(image)
		m.Mem.WriteBytes(machine.BootBase, bootCode)
	}
	m.Mem.WriteBytes(machine.CodeBase, program)
	e := f.New(m)

	res := &Result{Impl: f.Name}
	var lastExc *machine.ExceptionInfo
	baselineDone := bootCode == nil
	for res.Steps = 0; res.Steps < maxSteps; res.Steps++ {
		if budget.Wall > 0 && res.Steps%wallCheckInterval == wallCheckInterval-1 &&
			time.Since(start) > budget.Wall {
			res.TimedOut = true
			break
		}
		if !baselineDone && m.EIP == machine.CodeBase {
			baselineDone = true
		}
		ev := e.Step()
		if !baselineDone && ev.Kind != emu.EventNone {
			res.BaselineFault = true
		}
		if baselineDone || res.BaselineFault {
			res.Events = append(res.Events, ev)
			switch ev.Kind {
			case emu.EventException, emu.EventShutdown:
				lastExc = ev.Exception
			}
		}
		if ev.Kind == emu.EventHalt || ev.Kind == emu.EventShutdown ||
			ev.Kind == emu.EventTimeout {
			break
		}
	}
	res.Snapshot = m.Snapshot(lastExc)
	return res
}

// RunAll executes the program on every implementation.
func RunAll(factories []Factory, image *machine.Memory, program []byte, maxSteps int) []*Result {
	out := make([]*Result, len(factories))
	for i, f := range factories {
		out[i] = Run(f, image, program, maxSteps)
	}
	return out
}

// RunAllBoot executes a bootable test (baseline initializer + program) on
// every implementation.
func RunAllBoot(factories []Factory, image *machine.Memory, bootCode, program []byte, maxSteps int) []*Result {
	out := make([]*Result, len(factories))
	for i, f := range factories {
		out[i] = RunBoot(f, image, bootCode, program, maxSteps)
	}
	return out
}
