package harness

import (
	"testing"
	"time"

	"pokeemu/internal/emu"
	"pokeemu/internal/machine"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
)

// TestFigure4Timeline verifies the execution structure of the paper's
// Figure 4: bootstrap → baseline initializer → test program, with event
// interception enabled only after the baseline init completes and the
// snapshot taken at the terminal event.
func TestFigure4Timeline(t *testing.T) {
	image := machine.BaselineImage()
	boot := testgen.BaselineInit()
	prog := append(x86.AsmMovRegImm32(x86.EAX, 42), x86.AsmHlt()...)

	for _, f := range []Factory{FidelisFactory(), CelerFactory(), HardwareFactory()} {
		res := RunBoot(f, image, boot, prog, 0)
		if res.BaselineFault {
			t.Fatalf("%s: baseline init faulted", res.Impl)
		}
		// Only post-baseline events are recorded: the mov and the hlt.
		if len(res.Events) != 2 {
			t.Errorf("%s: %d recorded events, want 2 (init events suppressed)",
				res.Impl, len(res.Events))
		}
		last := res.Events[len(res.Events)-1]
		if last.Kind != emu.EventHalt {
			t.Errorf("%s: terminal event %v, want halt", res.Impl, last.Kind)
		}
		if res.Snapshot.CPU.GPR[x86.EAX] != 42 || !res.Snapshot.CPU.Halted {
			t.Errorf("%s: snapshot not taken at the halt", res.Impl)
		}
	}
}

// TestRunWithoutBootStartsAtBaseline covers the direct-state mode used by
// unit tests: no boot code, machine already in the baseline state.
func TestRunWithoutBootStartsAtBaseline(t *testing.T) {
	image := machine.BaselineImage()
	prog := append(x86.AsmMovRegImm32(x86.EBX, 7), x86.AsmHlt()...)
	res := Run(FidelisFactory(), image, prog, 0)
	if res.Snapshot.CPU.GPR[x86.EBX] != 7 {
		t.Error("program did not run")
	}
}

// TestExceptionDuringTestIsRecorded: the terminal exception must land in
// the snapshot (the state the difference analysis compares).
func TestExceptionDuringTestIsRecorded(t *testing.T) {
	image := machine.BaselineImage()
	boot := testgen.BaselineInit()
	prog := append([]byte{0xf7, 0xf1}, x86.AsmHlt()...) // div %ecx with ecx=0 → #DE
	res := RunBoot(CelerFactory(), image, boot, prog, 0)
	if res.Snapshot.Exception == nil || res.Snapshot.Exception.Vector != x86.ExcDE {
		t.Errorf("snapshot exception = %v, want #DE", res.Snapshot.Exception)
	}
}

// TestMaxStepsTerminates: a runaway guest is cut off.
func TestMaxStepsTerminates(t *testing.T) {
	image := machine.BaselineImage()
	prog := []byte{0xeb, 0xfe} // jmp self
	res := Run(FidelisFactory(), image, prog, 50)
	if res.Steps != 50 {
		t.Errorf("steps = %d, want the cap", res.Steps)
	}
}

// TestWallClockBudget verifies the campaign's per-test safety net: a
// program that spins forever is cut off by Budget.Wall and flagged as
// timed out (its partial snapshot must not be diffed), while the same
// program under a pure step budget is not flagged.
func TestWallClockBudget(t *testing.T) {
	image := machine.BaselineImage()
	spin := []byte{0xeb, 0xfe} // jmp -2
	res := RunBootBudget(FidelisFactory(), image, nil, spin,
		Budget{MaxSteps: 1 << 30, Wall: time.Millisecond})
	if !res.TimedOut {
		t.Fatalf("spinning program not flagged: %d steps", res.Steps)
	}
	res = RunBootBudget(FidelisFactory(), image, nil, spin, Budget{MaxSteps: 500})
	if res.TimedOut {
		t.Error("step-capped run must not be flagged as timed out")
	}
	if res.Steps != 500 {
		t.Errorf("step budget ran %d steps, want 500", res.Steps)
	}
}
