package fidelis

import (
	"math/rand"
	"testing"

	"pokeemu/internal/emu"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// run loads code at the entry point and steps until halt/shutdown.
func run(t *testing.T, code []byte, setup func(*machine.Machine)) (*machine.Machine, []emu.Event) {
	t.Helper()
	m := machine.NewBaseline(nil)
	m.Mem.WriteBytes(machine.CodeBase, code)
	if setup != nil {
		setup(m)
	}
	e := New(m)
	var events []emu.Event
	for i := 0; i < 10000; i++ {
		ev := e.Step()
		events = append(events, ev)
		if ev.Kind == emu.EventHalt || ev.Kind == emu.EventShutdown ||
			ev.Kind == emu.EventTimeout {
			return m, events
		}
	}
	t.Fatal("program did not halt")
	return nil, nil
}

// firstException returns the first raised exception, whether delivery
// succeeded (exception event) or itself failed (shutdown event).
func firstException(events []emu.Event) *machine.ExceptionInfo {
	for _, ev := range events {
		if ev.Kind == emu.EventException || ev.Kind == emu.EventShutdown {
			return ev.Exception
		}
	}
	return nil
}

func cat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

var hlt = []byte{0xf4}

func TestMovAndALU(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 10),
		x86.AsmMovRegImm32(x86.EBX, 32),
		[]byte{0x01, 0xd8}, // add %ebx, %eax
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 42 {
		t.Errorf("eax = %d, want 42", m.GPR[x86.EAX])
	}
	if m.EFLAGS&(1<<x86.FlagZF) != 0 || m.EFLAGS&(1<<x86.FlagCF) != 0 {
		t.Errorf("flags = %#x", m.EFLAGS)
	}
}

func TestAddFlags(t *testing.T) {
	cases := []struct {
		a, b       uint32
		cf, zf, of bool
		af, sf     bool
	}{
		{0xffffffff, 1, true, true, false, true, false},
		{0x7fffffff, 1, false, false, true, true, true},
		{0, 0, false, true, false, false, false},
		{0x80000000, 0x80000000, true, true, true, false, false},
	}
	for _, c := range cases {
		code := cat(
			x86.AsmMovRegImm32(x86.EAX, c.a),
			x86.AsmMovRegImm32(x86.EBX, c.b),
			[]byte{0x01, 0xd8},
			hlt,
		)
		m, _ := run(t, code, nil)
		check := func(bit uint8, want bool, name string) {
			got := m.EFLAGS&(1<<bit) != 0
			if got != want {
				t.Errorf("add(%#x,%#x): %s = %v, want %v", c.a, c.b, name, got, want)
			}
		}
		check(x86.FlagCF, c.cf, "CF")
		check(x86.FlagZF, c.zf, "ZF")
		check(x86.FlagOF, c.of, "OF")
		check(x86.FlagAF, c.af, "AF")
		check(x86.FlagSF, c.sf, "SF")
	}
}

func TestSubCmpFlags(t *testing.T) {
	// cmp $5, %eax with eax=3: borrow → CF, SF.
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 3),
		[]byte{0x83, 0xf8, 0x05}, // cmp $5, %eax
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.EFLAGS&(1<<x86.FlagCF) == 0 || m.EFLAGS&(1<<x86.FlagSF) == 0 {
		t.Errorf("cmp flags = %#x", m.EFLAGS)
	}
	if m.GPR[x86.EAX] != 3 {
		t.Error("cmp must not write its destination")
	}
}

func TestPushPop(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 0xdeadbeef),
		[]byte{0x50}, // push %eax
		[]byte{0x5b}, // pop %ebx
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EBX] != 0xdeadbeef {
		t.Errorf("ebx = %#x", m.GPR[x86.EBX])
	}
	if m.GPR[x86.ESP] != machine.StackTop {
		t.Errorf("esp = %#x, want restored", m.GPR[x86.ESP])
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	code := cat(
		x86.AsmMovMemImm32(0x300000, 0x11223344),
		x86.AsmMovRegMem32(x86.ECX, 0x300000),
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.ECX] != 0x11223344 {
		t.Errorf("ecx = %#x", m.GPR[x86.ECX])
	}
	if got := m.Mem.Read(0x300000, 4); got != 0x11223344 {
		t.Errorf("mem = %#x", got)
	}
}

func TestConditionalJump(t *testing.T) {
	// xor %eax,%eax ; jz +5 (over mov ebx,1) ; mov ebx,1 ; hlt
	code := cat(
		[]byte{0x31, 0xc0}, // xor %eax,%eax → ZF
		[]byte{0x74, 0x05}, // jz over the mov
		x86.AsmMovRegImm32(x86.EBX, 1),
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EBX] != 0 {
		t.Error("jz should have skipped the mov")
	}
}

func TestCallRet(t *testing.T) {
	// call +1 (to the hlt-preceded routine) … layout:
	// 0: call rel32 (+6) → 11
	// 5: mov ebx, 7
	// 10: hlt
	// 11: mov eax, 5
	// 16: ret
	code := cat(
		[]byte{0xe8, 6, 0, 0, 0},
		x86.AsmMovRegImm32(x86.EBX, 7),
		hlt,
		x86.AsmMovRegImm32(x86.EAX, 5),
		[]byte{0xc3},
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 5 || m.GPR[x86.EBX] != 7 {
		t.Errorf("eax=%d ebx=%d", m.GPR[x86.EAX], m.GPR[x86.EBX])
	}
	if m.GPR[x86.ESP] != machine.StackTop {
		t.Error("esp not balanced")
	}
}

func TestLeave(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EBP, machine.StackTop-8),
		x86.AsmMovMemImm32(machine.StackTop-8, 0x1234), // saved EBP value
		[]byte{0xc9}, // leave
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EBP] != 0x1234 {
		t.Errorf("ebp = %#x", m.GPR[x86.EBP])
	}
	if m.GPR[x86.ESP] != machine.StackTop-4 {
		t.Errorf("esp = %#x", m.GPR[x86.ESP])
	}
}

func TestLeaveAtomicOnFault(t *testing.T) {
	// Point EBP at a not-present page: leave must fault without touching
	// ESP or EBP (the atomicity property QEMU violates).
	const badLin = 0x00350000
	code := cat(
		x86.AsmMovRegImm32(x86.EBP, badLin),
		[]byte{0xc9},
		hlt,
	)
	m, events := run(t, code, func(m *machine.Machine) {
		// Clear P on the PTE for badLin.
		pteAddr := uint32(machine.PTBase + (badLin>>12&0x3ff)*4)
		pte := m.Mem.Read(pteAddr, 4)
		m.Mem.Write(pteAddr, pte&^uint64(x86.PteP), 4)
	})
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcPF {
		t.Fatalf("expected #PF, got %v", exc)
	}
	if m.CR2 != badLin {
		t.Errorf("cr2 = %#x, want %#x", m.CR2, badLin)
	}
	if m.GPR[x86.EBP] != badLin {
		t.Error("ebp was modified despite the fault")
	}
	// ESP: the fault delivery pushed 16 bytes (eflags, cs, eip, err) below
	// the original top, so compare against StackTop-16.
	if m.GPR[x86.ESP] != machine.StackTop-16 {
		t.Errorf("esp = %#x; leave must not move esp before the fault",
			m.GPR[x86.ESP])
	}
}

func TestDivideByZero(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 100),
		x86.AsmMovRegImm32(x86.ECX, 0),
		[]byte{0xf7, 0xf1}, // div %ecx
		hlt,
	)
	m, events := run(t, code, nil)
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcDE {
		t.Fatalf("expected #DE, got %v", exc)
	}
	// The handler halts; EIP must be inside the #DE stub.
	if m.EIP < machine.HandlerBase || m.EIP > machine.HandlerBase+8 {
		t.Errorf("eip = %#x, want inside the #DE handler", m.EIP)
	}
}

func TestDivision(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EDX, 0),
		x86.AsmMovRegImm32(x86.EAX, 100),
		x86.AsmMovRegImm32(x86.ECX, 7),
		[]byte{0xf7, 0xf1}, // div %ecx
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 14 || m.GPR[x86.EDX] != 2 {
		t.Errorf("div: q=%d r=%d", m.GPR[x86.EAX], m.GPR[x86.EDX])
	}
}

func TestIDivNegative(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EDX, 0xffffffff), // sign extension of -100
		x86.AsmMovRegImm32(x86.EAX, uint32(-100&0xffffffff)),
		x86.AsmMovRegImm32(x86.ECX, 7),
		[]byte{0xf7, 0xf9}, // idiv %ecx
		hlt,
	)
	m, _ := run(t, code, nil)
	if int32(m.GPR[x86.EAX]) != -14 || int32(m.GPR[x86.EDX]) != -2 {
		t.Errorf("idiv: q=%d r=%d", int32(m.GPR[x86.EAX]), int32(m.GPR[x86.EDX]))
	}
}

func TestMul(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 0x10000000),
		x86.AsmMovRegImm32(x86.ECX, 0x100),
		[]byte{0xf7, 0xe1}, // mul %ecx
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 0 || m.GPR[x86.EDX] != 0x10 {
		t.Errorf("mul: lo=%#x hi=%#x", m.GPR[x86.EAX], m.GPR[x86.EDX])
	}
	if m.EFLAGS&(1<<x86.FlagCF) == 0 {
		t.Error("CF should be set for a wide product")
	}
}

func TestCmpxchg(t *testing.T) {
	// Equal case: [mem]=5, eax=5, ecx=9 → [mem]=9, ZF=1.
	code := cat(
		x86.AsmMovMemImm32(0x300000, 5),
		x86.AsmMovRegImm32(x86.EAX, 5),
		x86.AsmMovRegImm32(x86.ECX, 9),
		[]byte{0x0f, 0xb1, 0x0d, 0x00, 0x00, 0x30, 0x00}, // cmpxchg %ecx, mem
		hlt,
	)
	m, _ := run(t, code, nil)
	if got := m.Mem.Read(0x300000, 4); got != 9 {
		t.Errorf("mem = %d, want 9", got)
	}
	if m.EFLAGS&(1<<x86.FlagZF) == 0 {
		t.Error("ZF should be set")
	}
	// Unequal case: accumulator reloaded.
	code = cat(
		x86.AsmMovMemImm32(0x300000, 7),
		x86.AsmMovRegImm32(x86.EAX, 5),
		x86.AsmMovRegImm32(x86.ECX, 9),
		[]byte{0x0f, 0xb1, 0x0d, 0x00, 0x00, 0x30, 0x00},
		hlt,
	)
	m, _ = run(t, code, nil)
	if m.GPR[x86.EAX] != 7 {
		t.Errorf("eax = %d, want 7 (reloaded)", m.GPR[x86.EAX])
	}
	if got := m.Mem.Read(0x300000, 4); got != 7 {
		t.Errorf("mem = %d, want 7 (written back)", got)
	}
}

func TestStackSegmentLimitViolation(t *testing.T) {
	// Shrink the SS descriptor cache limit so the push target is outside.
	code := cat(
		[]byte{0x50}, // push %eax
		hlt,
	)
	_, events := run(t, code, func(m *machine.Machine) {
		m.Seg[x86.SS].Limit = 0x1000 // ESP is 0x200800: push lands above limit
	})
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcSS {
		t.Fatalf("expected #SS, got %v", exc)
	}
}

func TestSegmentNotWritable(t *testing.T) {
	// Make DS read-only; a store through it must #GP.
	code := cat(
		x86.AsmMovMemImm32(0x300000, 1),
		hlt,
	)
	_, events := run(t, code, func(m *machine.Machine) {
		m.Seg[x86.DS].Attr &^= x86.AttrWritable
	})
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcGP {
		t.Fatalf("expected #GP, got %v", exc)
	}
}

func TestMovSregLoadsDescriptorAndSetsAccessed(t *testing.T) {
	// Install a fresh descriptor (accessed clear) at GDT index 12, then
	// load it into FS: the cache must be filled and the accessed bit set.
	lo, hi := x86.MakeDescriptor(0x1000, 0x0ffff, x86.AttrP|x86.AttrS|x86.AttrWritable)
	sel := uint16(12 << 3)
	code := cat(
		x86.AsmMovRegImm16(x86.EAX, sel),
		x86.AsmMovSregReg(x86.FS, x86.EAX),
		hlt,
	)
	m, _ := run(t, code, func(m *machine.Machine) {
		m.Mem.Write(machine.GDTBase+12*8, uint64(lo), 4)
		m.Mem.Write(machine.GDTBase+12*8+4, uint64(hi), 4)
	})
	fs := m.Seg[x86.FS]
	if fs.Sel != sel || fs.Base != 0x1000 || fs.Limit != 0xffff {
		t.Errorf("fs = %+v", fs)
	}
	if fs.Attr&x86.AttrAccessed == 0 {
		t.Error("cache attr should record accessed")
	}
	gotHi := uint32(m.Mem.Read(machine.GDTBase+12*8+4, 4))
	if gotHi&(1<<8) == 0 {
		t.Error("descriptor accessed bit not written back")
	}
}

func TestMovSregNotPresent(t *testing.T) {
	lo, hi := x86.MakeDescriptor(0, 0xfffff, x86.AttrS|x86.AttrWritable) // P clear
	sel := uint16(12 << 3)
	code := cat(
		x86.AsmMovRegImm16(x86.EAX, sel),
		x86.AsmMovSregReg(x86.FS, x86.EAX),
		hlt,
	)
	_, events := run(t, code, func(m *machine.Machine) {
		m.Mem.Write(machine.GDTBase+12*8, uint64(lo), 4)
		m.Mem.Write(machine.GDTBase+12*8+4, uint64(hi), 4)
	})
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcNP || exc.ErrCode != uint32(sel) {
		t.Fatalf("expected #NP(sel), got %v", exc)
	}
}

func TestRdmsrInvalidRaisesGP(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.ECX, 0x12345),
		[]byte{0x0f, 0x32}, // rdmsr
		hlt,
	)
	_, events := run(t, code, nil)
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcGP {
		t.Fatalf("expected #GP, got %v", exc)
	}
}

func TestWrmsrRdmsrRoundTrip(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.ECX, 0x174), // SYSENTER_CS
		x86.AsmMovRegImm32(x86.EAX, 0xabcd),
		x86.AsmMovRegImm32(x86.EDX, 0x1234),
		x86.AsmWrmsr(),
		x86.AsmMovRegImm32(x86.EAX, 0),
		x86.AsmMovRegImm32(x86.EDX, 0),
		[]byte{0x0f, 0x32}, // rdmsr
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 0xabcd || m.GPR[x86.EDX] != 0x1234 {
		t.Errorf("rdmsr: eax=%#x edx=%#x", m.GPR[x86.EAX], m.GPR[x86.EDX])
	}
}

func TestInt3DeliversThroughIDT(t *testing.T) {
	code := cat([]byte{0xcc}, hlt)
	m, events := run(t, code, nil)
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcBP {
		t.Fatalf("expected #BP, got %v", exc)
	}
	// The pushed return EIP must point after int3.
	// Frame: [esp]=EIP, [esp+4]=CS, [esp+8]=EFLAGS at the handler.
	retEIP := uint32(m.Mem.Read(uint64ToAddr(m.GPR[x86.ESP]), 4))
	if retEIP != machine.CodeBase+1 {
		t.Errorf("pushed EIP = %#x, want %#x", retEIP, machine.CodeBase+1)
	}
}

func uint64ToAddr(v uint32) uint32 { return v }

func TestIretRoundTrip(t *testing.T) {
	// Build an iret frame by pushing EFLAGS, CS, and a return EIP, then
	// iret to the hlt at the target.
	target := uint32(machine.CodeBase + 20)
	code := cat(
		x86.AsmPushf(), // EFLAGS
		x86.AsmMovRegImm32(x86.EAX, machine.SelCode),
		[]byte{0x50},             // push CS selector
		x86.AsmPushImm32(target), // EIP
		[]byte{0xcf},             // iret
	)
	for len(code) < 20 {
		code = append(code, 0x90)
	}
	code = append(code, 0xf4)
	m, _ := run(t, code, nil)
	if m.EIP != target+1 {
		t.Errorf("eip = %#x, want after hlt at %#x", m.EIP, target)
	}
	if m.GPR[x86.ESP] != machine.StackTop {
		t.Errorf("esp = %#x, not rebalanced", m.GPR[x86.ESP])
	}
}

func TestRepMovsb(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.ESI, 0x300000),
		x86.AsmMovRegImm32(x86.EDI, 0x300100),
		x86.AsmMovRegImm32(x86.ECX, 4),
		[]byte{0xf3, 0xa4}, // rep movsb
		hlt,
	)
	m, _ := run(t, code, func(m *machine.Machine) {
		m.Mem.WriteBytes(0x300000, []byte{1, 2, 3, 4})
	})
	for i := uint32(0); i < 4; i++ {
		if m.Mem.Read8(0x300100+i) != byte(i+1) {
			t.Fatalf("byte %d not copied", i)
		}
	}
	if m.GPR[x86.ECX] != 0 || m.GPR[x86.ESI] != 0x300004 || m.GPR[x86.EDI] != 0x300104 {
		t.Errorf("regs: ecx=%d esi=%#x edi=%#x", m.GPR[x86.ECX], m.GPR[x86.ESI], m.GPR[x86.EDI])
	}
}

func TestShiftFlags(t *testing.T) {
	// shl $1, %eax with eax=0x80000000 → result 0, CF=1, ZF=1, OF=1 (msb^cf).
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 0x80000000),
		[]byte{0xd1, 0xe0}, // shl $1, %eax
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 0 {
		t.Errorf("eax = %#x", m.GPR[x86.EAX])
	}
	for _, f := range []struct {
		bit  uint8
		name string
	}{{x86.FlagCF, "CF"}, {x86.FlagZF, "ZF"}, {x86.FlagOF, "OF"}} {
		if m.EFLAGS&(1<<f.bit) == 0 {
			t.Errorf("%s should be set", f.name)
		}
	}
}

func TestPushfPopf(t *testing.T) {
	code := cat(
		[]byte{0xf9}, // stc
		x86.AsmPushf(),
		[]byte{0xf8}, // clc
		x86.AsmPopf(),
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.EFLAGS&(1<<x86.FlagCF) == 0 {
		t.Error("popf should restore CF")
	}
}

func TestEnter(t *testing.T) {
	code := cat(
		[]byte{0xc8, 0x10, 0x00, 0x00}, // enter $16, $0
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EBP] != machine.StackTop-4 {
		t.Errorf("ebp = %#x", m.GPR[x86.EBP])
	}
	if m.GPR[x86.ESP] != machine.StackTop-4-16 {
		t.Errorf("esp = %#x", m.GPR[x86.ESP])
	}
}

func TestUndefinedOpcode(t *testing.T) {
	_, events := run(t, cat([]byte{0xd8, 0x00}, hlt), nil) // x87: outside subset
	exc := firstException(events)
	if exc == nil || exc.Vector != x86.ExcUD {
		t.Fatalf("expected #UD, got %v", exc)
	}
}

func TestAliasEncodingAccepted(t *testing.T) {
	// 0x82 is the undocumented alias of 0x80; the Hi-Fi emulator accepts it.
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 40),
		[]byte{0x82, 0xc0, 0x02}, // add $2, %al (alias form)
		hlt,
	)
	m, events := run(t, code, nil)
	if exc := firstException(events); exc != nil {
		t.Fatalf("alias encoding raised %v", exc)
	}
	if m.GPR[x86.EAX]&0xff != 42 {
		t.Errorf("al = %d", m.GPR[x86.EAX]&0xff)
	}
}

func TestOperandSizePrefix(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 0xffff0000),
		[]byte{0x66, 0x05, 0x34, 0x12}, // add $0x1234, %ax
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 0xffff1234 {
		t.Errorf("eax = %#x (16-bit add must preserve the high half)", m.GPR[x86.EAX])
	}
}

func TestHighByteRegisters(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 0),
		[]byte{0xb4, 0x7f},       // mov $0x7f, %ah
		[]byte{0x80, 0xc4, 0x01}, // add $1, %ah
		hlt,
	)
	m, _ := run(t, code, nil)
	if m.GPR[x86.EAX] != 0x8000 {
		t.Errorf("eax = %#x, want 0x8000", m.GPR[x86.EAX])
	}
	if m.EFLAGS&(1<<x86.FlagOF) == 0 {
		t.Error("OF should be set (0x7f+1 signed overflow)")
	}
}

func TestLfsLoadsFarPointer(t *testing.T) {
	// Far pointer at 0x300000: offset 0x11223344, selector = flat data.
	code := cat(
		[]byte{0x0f, 0xb4, 0x1d, 0x00, 0x00, 0x30, 0x00}, // lfs mem, %ebx
		hlt,
	)
	m, _ := run(t, code, func(m *machine.Machine) {
		m.Mem.Write(0x300000, 0x11223344, 4)
		m.Mem.Write(0x300004, machine.SelData, 2)
	})
	if m.GPR[x86.EBX] != 0x11223344 {
		t.Errorf("ebx = %#x", m.GPR[x86.EBX])
	}
	if m.Seg[x86.FS].Sel != machine.SelData {
		t.Errorf("fs.sel = %#x", m.Seg[x86.FS].Sel)
	}
}

func TestMovCr(t *testing.T) {
	code := cat(
		x86.AsmMovRegCR(x86.EAX, 0), // read CR0
		x86.AsmMovMemReg32(0x300000, x86.EAX),
		hlt,
	)
	m, _ := run(t, code, nil)
	want := uint64(1<<x86.CR0PE | 1<<x86.CR0ET | 1<<x86.CR0PG)
	if got := m.Mem.Read(0x300000, 4); got != want {
		t.Errorf("cr0 read = %#x, want %#x", got, want)
	}
}

func TestBtsMemory(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.EAX, 35),                  // bit 35 → dword 1, bit 3
		[]byte{0x0f, 0xab, 0x05, 0x00, 0x00, 0x30, 0x00}, // bts %eax, mem
		hlt,
	)
	m, _ := run(t, code, nil)
	if got := m.Mem.Read(0x300004, 4); got != 8 {
		t.Errorf("mem+4 = %#x, want bit 3 set", got)
	}
	if m.EFLAGS&(1<<x86.FlagCF) != 0 {
		t.Error("CF should be clear (bit was 0)")
	}
}

func TestTranslationCache(t *testing.T) {
	code := cat(
		x86.AsmMovRegImm32(x86.ECX, 5),
		// loop body: dec %ecx; jnz -3
		[]byte{0x49},       // dec %ecx
		[]byte{0x75, 0xfd}, // jnz back to dec
		hlt,
	)
	m := machine.NewBaseline(nil)
	m.Mem.WriteBytes(machine.CodeBase, code)
	e := New(m)
	for i := 0; i < 100; i++ {
		if ev := e.Step(); ev.Kind == emu.EventHalt {
			break
		}
	}
	if e.CacheHits() == 0 {
		t.Error("translation cache never hit in a loop")
	}
	if m.GPR[x86.ECX] != 0 {
		t.Errorf("ecx = %d", m.GPR[x86.ECX])
	}
}

func TestAccessedBitsSetByPageWalk(t *testing.T) {
	m, _ := run(t, cat(x86.AsmMovMemImm32(0x300000, 1), hlt), nil)
	pte := uint32(m.Mem.Read(machine.PTBase+(0x300000>>12)*4, 4))
	if pte&x86.PteA == 0 || pte&x86.PteD == 0 {
		t.Errorf("pte = %#x: A and D should be set after a write", pte)
	}
	// The code page was only read: A set, D clear.
	ptec := uint32(m.Mem.Read(machine.PTBase+(machine.CodeBase>>12)*4, 4))
	if ptec&x86.PteA == 0 {
		t.Error("code page A bit should be set by fetch")
	}
	if ptec&x86.PteD != 0 {
		t.Error("code page D bit must not be set by fetch")
	}
}

// TestWalkMatchesConcreteTranslate cross-checks the IR page walk emitted by
// the semantics compiler against the direct Go walker (machine.Translate)
// on randomized PTE/PDE flag bytes: same fault-or-success decision, same
// accessed/dirty maintenance.
func TestWalkMatchesConcreteTranslate(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const lin = 0x00455000 // PDE index 1: does not alias the code/stack mappings
	for iter := 0; iter < 200; iter++ {
		pdeFlags := uint64(r.Intn(256))
		pteFlags := uint64(r.Intn(256))
		wp := r.Intn(2) == 1
		write := r.Intn(2) == 1
		pse := r.Intn(2) == 1

		setup := func(m *machine.Machine) {
			pdeAddr := uint32(machine.PDBase + (lin>>22)*4)
			pteAddr := uint32(machine.PTBase + (lin>>12&0x3ff)*4)
			m.Mem.Write(pdeAddr, uint64(machine.PTBase)|pdeFlags&^uint64(x86.PdePS), 4)
			if pse && pdeFlags&x86.PdePS != 0 {
				// Large page: the PDE maps 4 MiB directly at 0.
				m.Mem.Write(pdeAddr, pdeFlags, 4)
			}
			m.Mem.Write(pteAddr, uint64(lin&0xfffff000)|pteFlags, 4)
			if wp {
				m.CR0 |= 1 << x86.CR0WP
			}
			if pse {
				m.CR4 |= 1 << x86.CR4PSE
			}
		}

		// Direct walker.
		mA := machine.NewBaseline(nil)
		setup(mA)
		_, excA := mA.Translate(lin, write)

		// IR walk, by executing a load/store through fidelis.
		mB := machine.NewBaseline(nil)
		setup(mB)
		var code []byte
		code = append(code, x86.AsmMovRegImm32(x86.EBX, lin)...)
		if write {
			code = append(code, 0x89, 0x03) // mov %eax, (%ebx)
		} else {
			code = append(code, 0x8b, 0x03) // mov (%ebx), %eax
		}
		code = append(code, 0xf4)
		mB.Mem.WriteBytes(machine.CodeBase, code)
		e := New(mB)
		var excB *machine.ExceptionInfo
		for i := 0; i < 50; i++ {
			ev := e.Step()
			if ev.Kind == emu.EventException || ev.Kind == emu.EventShutdown {
				excB = ev.Exception
			}
			if ev.Kind != emu.EventNone {
				break
			}
		}

		faultA := excA != nil
		faultB := excB != nil && excB.Vector == x86.ExcPF
		if faultA != faultB {
			t.Fatalf("iter %d (pde %#x pte %#x wp=%v write=%v pse=%v): direct fault=%v, IR fault=%v",
				iter, pdeFlags, pteFlags, wp, write, pse, faultA, faultB)
		}
		if faultA && excB != nil && excA.ErrCode != excB.ErrCode {
			t.Fatalf("iter %d: error code %#x vs %#x", iter, excA.ErrCode, excB.ErrCode)
		}
		// A/D maintenance agrees on the PTE when the walk succeeded.
		if !faultA {
			pteAddr := uint32(machine.PTBase + (lin>>12&0x3ff)*4)
			a := mA.Mem.Read(pteAddr, 4)
			b := mB.Mem.Read(pteAddr, 4)
			if a != b {
				t.Fatalf("iter %d: PTE after walk %#x vs %#x", iter, a, b)
			}
		}
	}
}
