// Package fidelis is the high-fidelity reference emulator (the Bochs
// analogue): a careful interpreter that decodes each instruction through the
// shared tables, compiles it to IR via the semantics compiler, caches the
// compiled body, and evaluates it concretely. It enforces every
// architectural check and commits instruction effects in the hardware
// order, so instructions are atomic with respect to faults.
//
// Its IR bodies are the artifact the symbolic exploration executes: testing
// fidelis symbolically and lifting the results onto the Lo-Fi emulator is
// the paper's core loop.
//
// Two deliberate low-level divergences from the hardware oracle are
// configured via sem.BochsConfig, mirroring real Bochs-vs-CPU differences
// the paper observed: far-pointer loads fetch the selector word first, and
// a few undefined status flags are zeroed rather than computed.
package fidelis

import (
	"sync"

	"pokeemu/internal/coverage"
	"pokeemu/internal/emu"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// stepBudget bounds one instruction's micro-op count (rep with a huge count).
const stepBudget = 1 << 22

// Cache holds compiled IR bodies keyed by instruction bytes. The
// interpreter itself uses a private cache per guest (like Bochs, it owns no
// persistent translations); the hardware simulator shares one across guests
// since silicon needs no translation at all — this is what gives the
// hardware its per-test cost advantage in the cost-profile benchmarks.
type Cache struct {
	mu    sync.Mutex
	progs map[string]*ir.Program
	Hits  int64
}

// NewCache returns an empty program cache.
func NewCache() *Cache { return &Cache{progs: make(map[string]*ir.Program)} }

func (c *Cache) lookup(key string) (*ir.Program, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.progs[key]
	if ok {
		c.Hits++
	}
	return p, ok
}

func (c *Cache) insert(key string, p *ir.Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.progs[key] = p
}

// Emulator is the Hi-Fi interpreter.
type Emulator struct {
	m     *machine.Machine
	cfg   sem.Config
	cache *Cache
	cov   *coverage.Map

	// Decoded counts instructions executed.
	Decoded int64
}

// New wraps a machine with the Hi-Fi interpreter using the Bochs-like
// configuration.
func New(m *machine.Machine) *Emulator {
	return NewWithConfig(m, sem.BochsConfig)
}

// NewWithConfig allows a custom semantics configuration (used by hwsim).
func NewWithConfig(m *machine.Machine, cfg sem.Config) *Emulator {
	return &Emulator{m: m, cfg: cfg, cache: NewCache()}
}

// NewShared wraps a machine sharing a program cache across guests.
func NewShared(m *machine.Machine, cfg sem.Config, cache *Cache) *Emulator {
	return &Emulator{m: m, cfg: cfg, cache: cache}
}

// CacheHits reports translation-cache reuse.
func (e *Emulator) CacheHits() int64 { return e.cache.Hits }

// SetCoverage attaches an edge-coverage map: every subsequent instruction
// and delivery body records its IR control-flow edges into cov. With no map
// attached, execution takes the uninstrumented ir.Run path and pays nothing.
func (e *Emulator) SetCoverage(cov *coverage.Map) { e.cov = cov }

// runProg executes an IR body, instrumented only when a coverage map is
// attached.
func (e *Emulator) runProg(prog *ir.Program, maxSteps int) (ir.Outcome, error) {
	if e.cov == nil {
		return ir.Run(prog, e.m, maxSteps)
	}
	pid := coverage.ProgID(prog.Name)
	return ir.RunEdges(prog, e.m, maxSteps, func(from, to int) {
		e.cov.Add(pid, from, to)
	})
}

// Name implements emu.Emulator.
func (e *Emulator) Name() string { return "fidelis" }

// Machine implements emu.Emulator.
func (e *Emulator) Machine() *machine.Machine { return e.m }

// Config returns the semantics configuration in use.
func (e *Emulator) Config() sem.Config { return e.cfg }

// Program returns the compiled IR for an instruction, using the translation
// cache. Exposed so the exploration engine can execute exactly the bodies
// this emulator runs.
func (e *Emulator) Program(inst *x86.Inst) *ir.Program {
	key := string(inst.Raw)
	if p, ok := e.cache.lookup(key); ok {
		return p
	}
	p := sem.Compile(inst, e.cfg)
	e.cache.insert(key, p)
	return p
}

// Step implements emu.Emulator: fetch, decode, execute, deliver.
func (e *Emulator) Step() emu.Event {
	m := e.m
	if m.Halted {
		return emu.Event{Kind: emu.EventHalt}
	}

	code, fexc := m.FetchCode(x86.MaxInstLen)
	inst, derr := x86.Decode(code)
	if derr != nil {
		de := derr.(*x86.DecodeError)
		switch {
		case de.Kind == x86.ErrTruncated && fexc != nil:
			// The decoder ran into the faulting byte.
			return e.deliver(fexc)
		case de.Kind == x86.ErrTooLong:
			return e.deliver(&machine.ExceptionInfo{Vector: x86.ExcGP, HasErr: true})
		default:
			return e.deliver(&machine.ExceptionInfo{Vector: x86.ExcUD})
		}
	}
	e.Decoded++

	prog := e.Program(inst)
	out, err := e.runProg(prog, stepBudget)
	if err != nil {
		return emu.Event{Kind: emu.EventTimeout}
	}
	switch out.Kind {
	case ir.OutHalt:
		m.Halted = true
		return emu.Event{Kind: emu.EventHalt}
	case ir.OutRaise:
		return e.deliver(&machine.ExceptionInfo{
			Vector: out.Vector, ErrCode: out.ErrCode, HasErr: out.HasErr,
		})
	default:
		return emu.Event{Kind: emu.EventNone}
	}
}

// deliver runs the IDT delivery program for the exception. If delivery
// itself raises, the machine is shut down (triple-fault analogue).
func (e *Emulator) deliver(exc *machine.ExceptionInfo) emu.Event {
	prog := sem.CompileDelivery(exc.Vector, exc.ErrCode, exc.HasErr, e.cfg)
	out, err := e.runProg(prog, stepBudget)
	if err != nil || out.Kind == ir.OutRaise {
		e.m.Halted = true
		return emu.Event{Kind: emu.EventShutdown, Exception: exc}
	}
	return emu.Event{Kind: emu.EventException, Exception: exc}
}
