// Package campaign orchestrates the end-to-end PokeEMU evaluation (paper
// Section 6): instruction-set exploration, per-instruction machine
// state-space exploration, test-program generation, three-way execution
// (Hi-Fi emulator, Lo-Fi emulator, hardware oracle), difference analysis
// with undefined-behavior filtering, and root-cause clustering. It also
// records per-stage costs, reproducing the paper's cost-profile table as
// relative throughput.
package campaign

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pokeemu/internal/core"
	"pokeemu/internal/diff"
	"pokeemu/internal/harness"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
)

// Config scopes a campaign. The full instruction set at the paper's path
// cap takes minutes; benchmarks use subsets.
type Config struct {
	MaxPathsPerInstr int
	MaxInstrs        int      // 0 = all unique instructions
	Handlers         []string // restrict to these handler keys (nil = all)
	Seed             int64
	MaxSteps         int // per-path IR step cap
	// Workers parallelizes exploration+generation across instructions and
	// execution across tests (the paper: "generation is highly
	// parallelizable … test execution is also highly parallel"). 0 or 1 is
	// sequential.
	Workers int
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{MaxPathsPerInstr: 8192, Seed: 1}
}

// InstrReport summarizes one instruction's exploration and testing.
type InstrReport struct {
	Key       string
	Paths     int
	Exhausted bool
	Generated int
	GenFailed int
	InitFault int
	Queries   int64
}

// StageTiming records wall-clock cost per pipeline stage.
type StageTiming struct {
	Explore  time.Duration
	Generate time.Duration
	ExecHiFi time.Duration
	ExecLoFi time.Duration
	ExecHW   time.Duration
	Compare  time.Duration
}

// Result aggregates a campaign.
type Result struct {
	InstrSet *core.InstrSetResult
	Reports  []*InstrReport

	TotalPaths     int
	TotalTests     int
	ExhaustedCount int
	ExploredInstrs int
	SummaryPaths   int

	// Difference counts against the hardware oracle (the Section 6.2
	// headline numbers: tests distinguishing QEMU, tests distinguishing
	// Bochs).
	LoFiDiffTests int
	HiFiDiffTests int

	Differences []*diff.Difference
	RootCauses  map[string]int

	Timing StageTiming
}

// Run executes a campaign.
func Run(cfg Config) (*Result, error) {
	if cfg.MaxPathsPerInstr == 0 {
		cfg.MaxPathsPerInstr = 8192
	}
	res := &Result{RootCauses: make(map[string]int)}

	// Stage 1a: instruction-set exploration.
	t0 := time.Now()
	res.InstrSet = core.ExploreInstructionSet()
	instrs := res.InstrSet.Unique
	if cfg.Handlers != nil {
		want := make(map[string]bool, len(cfg.Handlers))
		for _, h := range cfg.Handlers {
			want[h] = true
		}
		var filtered []*core.UniqueInstr
		for _, u := range instrs {
			if want[u.Key()] {
				filtered = append(filtered, u)
			}
		}
		instrs = filtered
	}
	if cfg.MaxInstrs > 0 && len(instrs) > cfg.MaxInstrs {
		instrs = instrs[:cfg.MaxInstrs]
	}

	// Stage 1b: machine state-space exploration per instruction.
	opts := symex.DefaultOptions()
	opts.MaxPaths = cfg.MaxPathsPerInstr
	opts.Seed = cfg.Seed
	if cfg.MaxSteps > 0 {
		opts.MaxSteps = cfg.MaxSteps
	}
	ex, err := core.NewExplorer(opts)
	if err != nil {
		return nil, err
	}
	res.SummaryPaths = ex.SummaryPaths

	type builtTest struct {
		tc   *core.TestCase
		prog []byte
	}
	boot := testgen.BaselineInit()

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}

	// Per-instruction exploration and generation, fanned out over workers.
	type instrOut struct {
		rep   *InstrReport
		tests []builtTest
		gen   time.Duration
		err   error
	}
	outs := make([]instrOut, len(instrs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for idx, u := range instrs {
		wg.Add(1)
		go func(idx int, u *core.UniqueInstr) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			er, err := ex.ExploreState(u)
			if err != nil {
				outs[idx].err = fmt.Errorf("campaign: exploring %s: %w", u.Key(), err)
				return
			}
			rep := &InstrReport{
				Key:       u.Key(),
				Paths:     len(er.Tests),
				Exhausted: er.Exhausted,
				Queries:   er.Stats.SolverQueries,
			}
			tGen := time.Now()
			var tests []builtTest
			for _, tc := range er.Tests {
				p, err := testgen.Build(tc)
				if err != nil {
					rep.GenFailed++
					continue
				}
				if !testgen.Verify(p, ex.Image()) {
					rep.InitFault++
					continue
				}
				rep.Generated++
				tests = append(tests, builtTest{tc: tc, prog: p.Code})
			}
			outs[idx] = instrOut{rep: rep, tests: tests, gen: time.Since(tGen)}
		}(idx, u)
	}
	wg.Wait()

	var tests []builtTest
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.Reports = append(res.Reports, o.rep)
		res.TotalPaths += o.rep.Paths
		if o.rep.Exhausted {
			res.ExhaustedCount++
		}
		res.ExploredInstrs++
		res.Timing.Generate += o.gen
		tests = append(tests, o.tests...)
	}
	res.Timing.Explore = time.Since(t0) - res.Timing.Generate
	res.TotalTests = len(tests)

	// Stage 3: execution on the three implementations.
	fiF := harness.FidelisFactory()
	ceF := harness.CelerFactory()
	hwF := harness.HardwareFactory()
	image := ex.Image()

	type trio struct {
		fi, ce, hw    *harness.Result
		tFi, tCe, tHw time.Duration
	}
	outcomes := make([]trio, len(tests))
	var ewg sync.WaitGroup
	for i := range tests {
		ewg.Add(1)
		go func(i int) {
			defer ewg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t := time.Now()
			outcomes[i].fi = harness.RunBoot(fiF, image, boot, tests[i].prog, 0)
			outcomes[i].tFi = time.Since(t)
			t = time.Now()
			outcomes[i].ce = harness.RunBoot(ceF, image, boot, tests[i].prog, 0)
			outcomes[i].tCe = time.Since(t)
			t = time.Now()
			outcomes[i].hw = harness.RunBoot(hwF, image, boot, tests[i].prog, 0)
			outcomes[i].tHw = time.Since(t)
		}(i)
	}
	ewg.Wait()
	for i := range outcomes {
		res.Timing.ExecHiFi += outcomes[i].tFi
		res.Timing.ExecLoFi += outcomes[i].tCe
		res.Timing.ExecHW += outcomes[i].tHw
	}

	// Stage 4: difference analysis.
	t1 := time.Now()
	for i, bt := range tests {
		filter := diff.UndefFilterFor(bt.tc.Handler)
		o := outcomes[i]
		if ds := diff.Compare(o.hw.Snapshot, o.ce.Snapshot, filter); len(ds) > 0 {
			res.LoFiDiffTests++
			d := &diff.Difference{
				TestID: bt.tc.ID, Handler: bt.tc.Handler, Mnemonic: bt.tc.Mnemonic,
				ImplA: "hardware", ImplB: "celer", Fields: ds,
			}
			res.Differences = append(res.Differences, d)
			res.RootCauses[diff.RootCause(d)]++
		}
		if ds := diff.Compare(o.hw.Snapshot, o.fi.Snapshot, filter); len(ds) > 0 {
			res.HiFiDiffTests++
			d := &diff.Difference{
				TestID: bt.tc.ID, Handler: bt.tc.Handler, Mnemonic: bt.tc.Mnemonic,
				ImplA: "hardware", ImplB: "fidelis", Fields: ds,
			}
			res.Differences = append(res.Differences, d)
			res.RootCauses[diff.RootCause(d)]++
		}
	}
	res.Timing.Compare = time.Since(t1)
	return res, nil
}

// Summary renders the campaign like the paper's Section 6 numbers.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instruction-set exploration: %d decoder paths, %d candidates, %d unique instructions\n",
		r.InstrSet.ExploredPaths, len(r.InstrSet.Candidates), len(r.InstrSet.Unique))
	fmt.Fprintf(&b, "state-space exploration: %d instructions, %d paths, %d/%d exhaustively explored (%.1f%%)\n",
		r.ExploredInstrs, r.TotalPaths, r.ExhaustedCount, r.ExploredInstrs,
		100*float64(r.ExhaustedCount)/float64(max(1, r.ExploredInstrs)))
	fmt.Fprintf(&b, "descriptor-parse summary: %d paths\n", r.SummaryPaths)
	fmt.Fprintf(&b, "test programs: %d\n", r.TotalTests)
	fmt.Fprintf(&b, "differences vs hardware: lo-fi %d tests, hi-fi %d tests\n",
		r.LoFiDiffTests, r.HiFiDiffTests)
	causes := make([]string, 0, len(r.RootCauses))
	for c := range r.RootCauses {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Fprintf(&b, "  root cause: %-55s %6d tests\n", c, r.RootCauses[c])
	}
	fmt.Fprintf(&b, "timing: explore %v, generate %v, exec hifi %v / lofi %v / hw %v, compare %v\n",
		r.Timing.Explore.Round(time.Millisecond),
		r.Timing.Generate.Round(time.Millisecond),
		r.Timing.ExecHiFi.Round(time.Millisecond),
		r.Timing.ExecLoFi.Round(time.Millisecond),
		r.Timing.ExecHW.Round(time.Millisecond),
		r.Timing.Compare.Round(time.Millisecond))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
