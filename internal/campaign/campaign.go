// Package campaign orchestrates the end-to-end PokeEMU evaluation (paper
// Section 6): instruction-set exploration, per-instruction machine
// state-space exploration, test-program generation, three-way execution
// (Hi-Fi emulator, Lo-Fi emulator, hardware oracle), difference analysis
// with undefined-behavior filtering, and root-cause clustering. It also
// records per-stage costs, reproducing the paper's cost-profile table as
// relative throughput.
//
// The pipeline is corpus-driven: with a persistent corpus configured, the
// exploration and generation stages resolve each instruction against the
// content-addressed on-disk cache (internal/corpus), so a warm re-run skips
// symbolic exploration entirely and goes straight to execution and diffing.
// All fan-out runs on bounded worker pools with panic isolation and
// deterministic index-ordered merges: the Result and the rendered report are
// byte-identical for any Workers value.
package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pokeemu/internal/core"
	"pokeemu/internal/corpus"
	"pokeemu/internal/coverage"
	"pokeemu/internal/diff"
	"pokeemu/internal/expr"
	"pokeemu/internal/faults"
	"pokeemu/internal/harness"
	"pokeemu/internal/hybrid"
	"pokeemu/internal/machine"
	"pokeemu/internal/solver"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
	"pokeemu/internal/triage"
	"pokeemu/internal/x86/sem"
)

// configLabel names the semantics configuration the campaign explores; it is
// part of every corpus cache key.
const configLabel = "bochs"

// Config scopes a campaign. The full instruction set at the paper's path
// cap takes minutes; benchmarks use subsets.
type Config struct {
	MaxPathsPerInstr int
	MaxInstrs        int      // 0 = all unique instructions
	Handlers         []string // restrict to these handler keys (nil = all)
	Seed             int64
	MaxSteps         int // per-path IR step cap
	// Workers parallelizes exploration+generation across instructions and
	// execution across tests (the paper: "generation is highly
	// parallelizable … test execution is also highly parallel"). 0 or 1 is
	// sequential. The worker count never affects the Result: merges are
	// index-ordered and deterministic.
	Workers int
	// ExploreWorkers bounds the pool inside each instruction's symbolic
	// exploration (symex.Options.Workers): independent decision subtrees are
	// explored in parallel and merged in canonical path order, so — like
	// Workers — the value changes wall-clock time only, never the Result.
	// It is deliberately excluded from corpus cache keys.
	ExploreWorkers int

	// NoSolverBatch disables the batched solver front-end (incremental
	// assumption-trail reuse across sibling path queries). The zero value
	// enables batching. The setting changes which models the solver
	// returns, so it is part of the corpus cache namespace.
	NoSolverBatch bool
	// NoFastPath disables celer's direct-dispatch fast path, forcing every
	// step through the shared-cache dispatcher and the per-execution
	// re-lowering slow path. The zero value enables the fast path. Reports
	// are byte-identical either way.
	NoFastPath bool
	// Vote enables N-way voted verdicts: every test additionally runs on
	// lento (the independent direct-decode interpreter), and the three
	// emulators — fidelis, celer, lento — are partitioned into equivalence
	// classes per test. A majority pinpoints the outlier emulator; a 3-way
	// split is surfaced as its own class. The pairwise hardware-oracle
	// numbers are unchanged, and with Vote off the Result and report are
	// byte-identical to a vote-free campaign. Voting bypasses the -resume
	// execution cache (cached outcomes hold only the classic trio).
	Vote bool
	// Portfolio races that many deterministically-seeded solver clones
	// against the primary solver on conflict-budgeted queries (0 disables).
	// The portfolio verdict is a pure function of the query sequence, but
	// it can resolve queries the primary gives up on, so — like
	// NoSolverBatch — it is part of the corpus cache namespace.
	Portfolio int
	// NoSubsume disables the solver's model-subsumption fast path (a
	// sibling query whose assumptions all hold under the last Sat model is
	// answered Sat without solving). Verdicts and the explored path set
	// are identical either way, but the models a query returns move, so —
	// like NoSolverBatch — it is part of the corpus cache namespace.
	NoSubsume bool
	// NoReduceDB freezes the solver's learned-clause database, disabling
	// the periodic LBD-based reduceDB pass. Part of the corpus cache
	// namespace for the same model-movement reason.
	NoReduceDB bool
	// RestartBase overrides the solver's Luby restart unit (0 = default
	// 100). Part of the corpus cache namespace.
	RestartBase int

	// CorpusDir roots the persistent test corpus; "" disables it.
	CorpusDir string
	// NoCache ignores cached artifacts (they are still refreshed on disk),
	// forcing a cold run.
	NoCache bool
	// Resume additionally reuses cached execution outcomes, so an
	// interrupted campaign picks up where it stopped instead of re-running
	// finished tests.
	Resume bool

	// Baseline, when non-nil, partitions divergences into known (suppressed
	// by the baseline) and new; the counts land in Result.KnownDiffs /
	// NewDiffs and the Summary gains a baseline line. The Result's difference
	// list is unaffected — the baseline classifies, never hides.
	Baseline *triage.Baseline

	// Hybrid configures the coverage-guided hybrid fuzzing stage that runs
	// after comparison, seeded with this campaign's tests and divergence
	// verdicts. Budget 0 disables the stage entirely: the Result and report
	// are byte-identical to a hybrid-free campaign.
	Hybrid HybridConfig

	// TestMaxSteps caps emulator steps per test execution (deterministic
	// budget; 0 = harness.DefaultMaxSteps).
	TestMaxSteps int
	// TestTimeout caps wall-clock time per test execution (safety net; 0 =
	// unlimited). A nonzero value can make reports run-dependent — a test
	// that times out records a fault and is excluded from diffing.
	TestTimeout time.Duration
	// StageTimeout caps wall-clock time per fan-out stage (explore,
	// execute); 0 = unlimited. When a stage deadline expires, in-flight
	// units finish, queued units are skipped, and the campaign degrades
	// gracefully instead of failing: every skipped unit is counted in
	// Result.Degraded with an explicit reason, so the report is never
	// silently short. Like TestTimeout, a nonzero value can make reports
	// run-dependent (which units were in flight at the deadline depends on
	// scheduling).
	StageTimeout time.Duration

	// Progress, when non-nil, receives an Event as each pipeline stage
	// starts and as each unit of work within it completes. It is called
	// concurrently from worker goroutines and must be safe for concurrent
	// use; it should return quickly, or it stalls the pool. Progress never
	// affects the Result.
	Progress func(Event)

	// testHookInstr, when set, runs at the start of each instruction task
	// (test seam for fault injection).
	testHookInstr func(key string)
	// testHookExec, when set, runs at the start of each execution task.
	testHookExec func(id string)
}

// HybridConfig scopes the optional coverage-guided fuzzing stage
// (internal/hybrid): a deterministic mutational fuzzer over the campaign's
// test initializers, with promising inputs handed back to symbolic
// exploration as concrete path seeds.
type HybridConfig struct {
	// Budget is the number of mutated-input executions to spend; 0 disables
	// the stage.
	Budget int
	// Seed is the fuzzer's RNG seed (0 = the campaign Seed). The stage is a
	// pure function of it.
	Seed int64
	// MutatorWorkers sizes the fuzzer's worker pool (0 = Workers). Like
	// Workers, it never affects the Result.
	MutatorWorkers int
}

// Pipeline stages reported through Config.Progress.
const (
	StageExplore = "explore" // per-instruction exploration + generation
	StageExecute = "execute" // three-way test execution
	StageCompare = "compare" // difference analysis
	StageHybrid  = "hybrid"  // coverage-guided hybrid fuzzing
)

// Event is one progress notification: Done of Total units of Stage are
// finished. Key names the unit that just completed (an instruction key for
// StageExplore, a test ID for StageExecute); it is empty on the Done=0
// stage-entry event and for StageCompare.
type Event struct {
	Stage string
	Key   string
	Done  int
	Total int
}

// Validate rejects configurations that cannot run sensibly: negative
// counts, worker pools, and budgets error up front instead of hanging or
// silently misbehaving downstream.
func (c *Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"MaxPathsPerInstr", c.MaxPathsPerInstr},
		{"MaxInstrs", c.MaxInstrs},
		{"Workers", c.Workers},
		{"ExploreWorkers", c.ExploreWorkers},
		{"MaxSteps", c.MaxSteps},
		{"TestMaxSteps", c.TestMaxSteps},
		{"RestartBase", c.RestartBase},
	} {
		if f.v < 0 {
			return fmt.Errorf("campaign: %s must be >= 0 (got %d)", f.name, f.v)
		}
	}
	if c.TestTimeout < 0 {
		return fmt.Errorf("campaign: TestTimeout must be >= 0 (got %v)", c.TestTimeout)
	}
	if c.StageTimeout < 0 {
		return fmt.Errorf("campaign: StageTimeout must be >= 0 (got %v)", c.StageTimeout)
	}
	if c.Hybrid.Budget < 0 {
		return fmt.Errorf("campaign: Hybrid.Budget must be >= 0 (got %d)", c.Hybrid.Budget)
	}
	if c.Hybrid.MutatorWorkers < 0 {
		return fmt.Errorf("campaign: Hybrid.MutatorWorkers must be >= 0 (got %d)", c.Hybrid.MutatorWorkers)
	}
	return nil
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{MaxPathsPerInstr: 8192, Seed: 1}
}

// InstrReport summarizes one instruction's exploration and testing.
type InstrReport struct {
	Key       string
	Paths     int
	Exhausted bool
	Generated int
	GenFailed int
	InitFault int
	Queries   int64
	// ExploreWall is the wall-clock cost of this instruction's symbolic
	// exploration (zero when it was served from the corpus). Run-dependent:
	// rendered by TimingTable, never by Summary.
	ExploreWall time.Duration
	// Fault carries the panic message if exploration or generation crashed;
	// the instruction then contributes a fault record instead of tests.
	Fault string
}

// StageTiming records wall-clock cost per pipeline stage. Timings are the
// only run-dependent part of a Result; they are rendered by TimingTable, not
// Summary, so the deterministic report stays byte-identical across runs.
type StageTiming struct {
	Explore   time.Duration
	Generate  time.Duration
	ExecHiFi  time.Duration
	ExecLoFi  time.Duration
	ExecLento time.Duration // zero unless Config.Vote ran the lento leg
	ExecHW    time.Duration
	Compare   time.Duration
	Hybrid    time.Duration
}

// SolverStats snapshots the solver/expression hot-path counters for one
// run: deltas of the process-wide totals between campaign start and end.
// Concurrent campaigns in one process (the service) see each other's
// traffic, so treat these as throughput indicators, not exact attributions.
type SolverStats struct {
	Queries      int64 // solver CheckLits calls
	MemoHits     int64 // answered by the assumption-set memo
	MemoMisses   int64
	InternHits   int64 // expression constructions served by the intern table
	InternMisses int64
	// ReusedLevels counts assumption trail levels the batched front-end
	// carried over between sibling queries instead of re-deciding them.
	ReusedLevels int64
	// SubsumeHits counts queries answered by the model-subsumption fast
	// path (assumptions already true under the last Sat model).
	SubsumeHits int64
	// Restarts/ReduceRuns/ReduceRemoved surface the CDCL core's restart
	// and learned-clause-reduction activity.
	Restarts      int64
	ReduceRuns    int64
	ReduceRemoved int64
	// PortfolioRaces/PortfolioCloneWins count budgeted queries raced by the
	// solver portfolio and the races a seeded clone decided.
	PortfolioRaces     int64
	PortfolioCloneWins int64
}

// CacheStats counts corpus traffic per pipeline stage.
type CacheStats struct {
	Enabled    bool
	SummaryHit bool // descriptor-parse summaries served from the corpus

	InstrHits   int // instructions resolved from the corpus
	InstrMisses int // instructions explored symbolically

	TestsCached    int // test programs loaded from the corpus
	TestsGenerated int // test programs generated this run

	ExecHits   int // executions replayed from cached outcomes (-resume)
	ExecMisses int // executions actually run
	// FuzzHit reports that the whole hybrid fuzzing stage was served from a
	// cached result (same seeds, budget, seed, and versions).
	FuzzHit bool
	// ExecDecodeFailed counts cached outcomes that were present but
	// undecodable (corrupt or stale entries); each was re-executed, so it
	// also counts as a miss. Non-zero means the corpus needs attention.
	ExecDecodeFailed int

	// Corpus I/O resilience counters (deltas for this run's corpus handle):
	// retries are extra attempts that then succeeded; failures exhausted
	// every attempt.
	ReadRetries   int64
	WriteRetries  int64
	ReadFailures  int64
	WriteFailures int64
}

// Degradation reason strings. Fixed text, never raw error messages:
// organic I/O errors carry run-dependent details (temp file names, errno
// phrasing), and the degraded section is part of the deterministic report.
const (
	ReasonStageDeadline = "stage deadline exceeded (unit skipped)"
	ReasonCorpusWrite   = "corpus write failed (entry not persisted)"
	ReasonCorpusRead    = "corpus read failed (recomputed)"
	ReasonCorpusOpen    = "corpus unavailable (ran uncached)"
	ReasonHybridMutate  = "hybrid mutation skipped (budget spent, no candidate)"
)

// Degraded is the campaign's graceful-degradation ledger: everything the
// run lost or had to recompute, counted per kind with aggregate reasons. A
// campaign that loses units still terminates with a complete report — this
// section is what makes the loss explicit instead of silently shortening
// the test count. Empty (all zeros) on a healthy run, and then omitted
// from Summary entirely, so healthy reports are byte-identical to the
// pre-degradation format.
//
// Determinism: counts are derived from index-ordered merges and keyed
// fault decisions, so for a seed-deterministic fault plan the section is
// byte-identical for any Workers value.
type Degraded struct {
	Instrs       int `json:"instrs,omitempty"`        // instructions that contributed a fault instead of tests
	Execs        int `json:"execs,omitempty"`         // test executions lost (crash, budget, deadline)
	CorpusWrites int `json:"corpus_writes,omitempty"` // cache entries that failed to persist (results still in-memory)
	CorpusReads  int `json:"corpus_reads,omitempty"`  // cache reads that failed and were recomputed
	HybridExecs  int `json:"hybrid_execs,omitempty"`  // hybrid mutation jobs that spent budget without a candidate

	// Reasons aggregates why, keyed by fixed reason strings (or the
	// deterministic fault message for crashed units).
	Reasons map[string]int `json:"reasons,omitempty"`
}

// Empty reports whether the run lost nothing.
func (d *Degraded) Empty() bool {
	return d.Instrs == 0 && d.Execs == 0 && d.CorpusWrites == 0 && d.CorpusReads == 0 &&
		d.HybridExecs == 0
}

// Total is the number of degraded units across all kinds.
func (d *Degraded) Total() int {
	return d.Instrs + d.Execs + d.CorpusWrites + d.CorpusReads + d.HybridExecs
}

func (d *Degraded) note(reason string) {
	if d.Reasons == nil {
		d.Reasons = make(map[string]int)
	}
	d.Reasons[reason]++
}

// Fault is one isolated failure: a worker that panicked or a test that
// exceeded its budget. Faults are merged in pipeline order, so the list is
// deterministic for any worker count.
type Fault struct {
	Stage string // "explore" or "execute"
	Key   string // instruction key or test ID
	Err   string
}

// Result aggregates a campaign.
type Result struct {
	InstrSet *core.InstrSetResult
	Reports  []*InstrReport

	TotalPaths     int
	TotalTests     int
	ExhaustedCount int
	ExploredInstrs int
	SummaryPaths   int

	// Difference counts against the hardware oracle (the Section 6.2
	// headline numbers: tests distinguishing QEMU, tests distinguishing
	// Bochs).
	LoFiDiffTests int
	HiFiDiffTests int

	Differences []*diff.Difference
	RootCauses  map[string]int

	// Voted-verdict tallies (populated when Config.Vote was set). The vote
	// runs over the three emulators — fidelis, celer, lento — per test;
	// VoteBlame counts, per emulator, the tests where the majority outvoted
	// it. A blame count is the campaign's per-emulator wrongness column.
	VoteUsed     bool
	VoteAgree    int
	VoteMajority int
	VoteSplits   int
	VoteBlame    map[string]int

	// TriageCases mirrors Differences in the triage engine's input shape:
	// one CaseInfo per divergent test, carrying the runnable program and its
	// test-instruction offset so the ddmin minimizer can reproduce and shrink
	// the case later without re-running the campaign.
	TriageCases []triage.CaseInfo

	// Baseline partition (populated when Config.Baseline was set).
	BaselineUsed    bool
	BaselineEntries int
	KnownDiffs      int // divergent tests matching a baseline entry
	NewDiffs        int // divergent tests not in the baseline — the regressions

	// Hybrid fuzzing outcome (populated when Config.Hybrid.Budget > 0).
	// Divergences found on mutated inputs stay here, deliberately separate
	// from Differences: the symex-generated headline numbers keep their
	// meaning, and the hybrid yield is reported on its own.
	HybridUsed  bool
	HybridStats hybrid.Stats
	HybridDivs  []hybrid.Divergence

	// Isolated failures (crashed handlers, budget overruns).
	InstrFaults  int
	ExecFaults   int
	ExecTimeouts int
	Faults       []Fault

	// Degraded is the graceful-degradation ledger: what the run lost and
	// why. Empty on a healthy run.
	Degraded Degraded

	Timing StageTiming
	Cache  CacheStats
	Solver SolverStats
}

// execTest is one runnable test in the execution stage, whether generated
// this run or loaded from the corpus.
type execTest struct {
	id       string
	handler  string // semantics handler name (drives the undef filter)
	mnemonic string
	prog     []byte
	testOff  int // offset of the test instruction in prog (triage split point)
}

// instrOut is one instruction's contribution, filled by its worker and
// merged in index order.
type instrOut struct {
	rep    *InstrReport
	tests  []execTest
	gen    time.Duration
	cached bool
	err    error
	putErr error // corpus write failure for this instruction's entry
}

// trio is one test's execution outcome across the three implementations,
// plus the optional lento voting leg.
type trio struct {
	fi, ce, hw    *harness.Result
	le            *harness.Result // lento leg, nil unless Config.Vote
	tFi, tCe, tHw time.Duration
	tLe           time.Duration
	cached        bool
	fault         string
	putErr        error // corpus write failure for this test's exec entry
	decodeFailed  bool  // cached entry present but undecodable; re-executed
}

func (t *trio) timedOut() bool {
	if t.fi.TimedOut || t.ce.TimedOut || t.hw.TimedOut {
		return true
	}
	return t.le != nil && t.le.TimedOut
}

// Run executes a campaign.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes a campaign under a context. Cancellation stops the
// worker pools promptly — in-flight tasks finish, queued ones are skipped —
// and RunContext returns an error wrapping the context's error instead of a
// partial Result. With Resume enabled, every test executed before the
// cancellation has already been checkpointed in the corpus, so re-running
// the same Config picks up where the canceled run stopped.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign: canceled before start: %w", err)
	}
	emit := func(stage, key string, done, total int) {
		if cfg.Progress != nil {
			cfg.Progress(Event{Stage: stage, Key: key, Done: done, Total: total})
		}
	}
	if cfg.MaxPathsPerInstr == 0 {
		cfg.MaxPathsPerInstr = 8192
	}
	testBudget := harness.Budget{MaxSteps: cfg.TestMaxSteps, Wall: cfg.TestTimeout}
	if testBudget.MaxSteps == 0 {
		testBudget.MaxSteps = harness.DefaultMaxSteps
	}
	res := &Result{RootCauses: make(map[string]int)}
	queries0 := solver.QueriesTotal()
	memoHits0, memoMisses0 := solver.MemoTotals()
	internHits0, internMisses0, _ := expr.InternStats()
	reused0 := solver.ReusedLevelsTotal()
	races0, cloneWins0 := solver.PortfolioTotals()
	core0 := solver.StatsSnapshot()
	defer func() {
		res.Solver.Queries = solver.QueriesTotal() - queries0
		mh, mm := solver.MemoTotals()
		res.Solver.MemoHits, res.Solver.MemoMisses = mh-memoHits0, mm-memoMisses0
		ih, im, _ := expr.InternStats()
		res.Solver.InternHits, res.Solver.InternMisses = ih-internHits0, im-internMisses0
		res.Solver.ReusedLevels = solver.ReusedLevelsTotal() - reused0
		ra, cw := solver.PortfolioTotals()
		res.Solver.PortfolioRaces, res.Solver.PortfolioCloneWins = ra-races0, cw-cloneWins0
		core1 := solver.StatsSnapshot()
		res.Solver.SubsumeHits = core1.SubsumeHits - core0.SubsumeHits
		res.Solver.Restarts = core1.Restarts - core0.Restarts
		res.Solver.ReduceRuns = core1.ReduceRuns - core0.ReduceRuns
		res.Solver.ReduceRemoved = core1.ReduceRemoved - core0.ReduceRemoved
	}()

	var crp *corpus.Corpus
	if cfg.CorpusDir != "" {
		var err error
		if crp, err = corpus.Open(cfg.CorpusDir); err != nil {
			// A version mismatch means the on-disk data is unsafe to reuse
			// or overwrite — refuse. Anything else (I/O failure initializing
			// the root) degrades the run to cache-disabled: the campaign
			// still completes, and the ledger makes the loss explicit.
			if errors.Is(err, corpus.ErrVersionMismatch) {
				return nil, err
			}
			crp = nil
			res.Degraded.CorpusWrites++
			res.Degraded.note(ReasonCorpusOpen)
		} else {
			res.Cache.Enabled = true
		}
	}

	// Stage 1a: instruction-set exploration.
	t0 := time.Now()
	res.InstrSet = core.ExploreInstructionSet()
	instrs := res.InstrSet.Unique
	if cfg.Handlers != nil {
		want := make(map[string]bool, len(cfg.Handlers))
		for _, h := range cfg.Handlers {
			want[h] = true
		}
		var filtered []*core.UniqueInstr
		matched := make(map[string]bool, len(want))
		for _, u := range instrs {
			if want[u.Key()] {
				filtered = append(filtered, u)
				matched[u.Key()] = true
			}
		}
		// A typo'd handler key used to be dropped silently, turning the
		// campaign into an empty run that "passed". Refuse it instead.
		var unknown []string
		for h := range want {
			if !matched[h] {
				unknown = append(unknown, h)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return nil, fmt.Errorf("campaign: unknown handler key(s): %s", strings.Join(unknown, ", "))
		}
		instrs = filtered
	}
	if cfg.MaxInstrs > 0 && len(instrs) > cfg.MaxInstrs {
		instrs = instrs[:cfg.MaxInstrs]
	}

	// Stage 1b+2: per-instruction state-space exploration and generation,
	// corpus-first. The explorer (and its descriptor-parse summaries, the
	// expensive Section 3.3.2 summarization) is built lazily: a fully warm
	// run never constructs it.
	opts := symex.DefaultOptions()
	opts.MaxPaths = cfg.MaxPathsPerInstr
	opts.Seed = cfg.Seed
	opts.Workers = cfg.ExploreWorkers
	opts.NoSolverBatch = cfg.NoSolverBatch
	opts.Portfolio = cfg.Portfolio
	opts.NoSubsume = cfg.NoSubsume
	opts.NoReduceDB = cfg.NoReduceDB
	opts.RestartBase = cfg.RestartBase
	if cfg.MaxSteps > 0 {
		opts.MaxSteps = cfg.MaxSteps
	}
	// Solver-mode settings change which models the solver returns, so
	// non-default modes get their own corpus namespace; the default label
	// is unchanged so existing corpora stay warm.
	solverLabel := configLabel
	if cfg.NoSolverBatch {
		solverLabel += "+nobatch"
	}
	if cfg.Portfolio > 0 {
		solverLabel += fmt.Sprintf("+portfolio%d", cfg.Portfolio)
	}
	if cfg.NoSubsume {
		solverLabel += "+nosub"
	}
	if cfg.NoReduceDB {
		solverLabel += "+noreduce"
	}
	if cfg.RestartBase > 0 {
		solverLabel += fmt.Sprintf("+rb%d", cfg.RestartBase)
	}
	sumKey := corpus.SummaryKey{Config: solverLabel, SymexVersion: symex.SerialVersion}
	var (
		exOnce        sync.Once
		ex            *core.Explorer
		exErr         error
		summaryHit    bool
		summaryPutErr error
	)
	buildExplorer := func() (*core.Explorer, error) {
		exOnce.Do(func() {
			if crp != nil && !cfg.NoCache {
				if se, ok := crp.GetSummary(sumKey); ok {
					data, derr := symex.DecodeSummary(se.Data)
					ss, serr := symex.DecodeSummary(se.SS)
					if derr == nil && serr == nil {
						ex, exErr = core.NewExplorerWithSummaries(opts, sem.BochsConfig,
							core.ExplorerSummaries{Data: data, SS: ss})
						if exErr == nil {
							summaryHit = true
							return
						}
					}
				}
			}
			ex, exErr = core.NewExplorer(opts)
			if exErr == nil && crp != nil {
				sums := ex.Summaries()
				// A failed summary write only costs the next cold run a
				// re-summarization, but it must not be silent: it lands in
				// the degraded ledger after the pool drains.
				summaryPutErr = crp.PutSummary(&corpus.SummaryEntry{
					Key:   sumKey,
					Paths: ex.SummaryPaths,
					Data:  symex.EncodeSummary(sums.Data),
					SS:    symex.EncodeSummary(sums.SS),
				})
			}
		})
		return ex, exErr
	}

	// stageCtx derives a per-stage deadline when configured; expiry skips
	// queued units (counted in the degraded ledger) without failing the
	// campaign, while parent-context cancellation stays fatal.
	stageCtx := func() (context.Context, context.CancelFunc) {
		if cfg.StageTimeout > 0 {
			return context.WithTimeout(ctx, cfg.StageTimeout)
		}
		return ctx, func() {}
	}

	workers := cfg.Workers
	outs := make([]instrOut, len(instrs))
	emit(StageExplore, "", 0, len(instrs))
	var exploreDone atomic.Int64
	exploreCtx, exploreCancel := stageCtx()
	instrFaults, instrRan := runPool(exploreCtx, workers, len(instrs), func(i int) {
		defer func() {
			emit(StageExplore, instrs[i].Key(), int(exploreDone.Add(1)), len(instrs))
		}()
		u := instrs[i]
		if cfg.testHookInstr != nil {
			cfg.testHookInstr(u.Key())
		}
		// Injected worker crash, keyed by instruction: the panic rides the
		// pool's per-index isolation into a deterministic fault record.
		if err := faults.Hit(faults.CampaignExplore, u.Key()); err != nil {
			panic(err)
		}
		key := corpus.InstrKey{
			Handler: u.Key(), PathCap: cfg.MaxPathsPerInstr, MaxSteps: cfg.MaxSteps,
			Seed: cfg.Seed, Config: solverLabel,
			SymexVersion: symex.SerialVersion, GenVersion: testgen.Version,
		}
		if crp != nil && !cfg.NoCache {
			if ent, ok := crp.GetInstr(key); ok {
				outs[i] = outFromEntry(ent)
				return
			}
		}
		e, err := buildExplorer()
		if err != nil {
			outs[i].err = err
			return
		}
		tExp := time.Now()
		er, err := e.ExploreState(u)
		if err != nil {
			outs[i].err = fmt.Errorf("campaign: exploring %s: %w", u.Key(), err)
			return
		}
		rep := &InstrReport{
			Key:         u.Key(),
			Paths:       len(er.Tests),
			Exhausted:   er.Exhausted,
			Queries:     er.Stats.SolverQueries,
			ExploreWall: time.Since(tExp),
		}
		tGen := time.Now()
		var tests []execTest
		var cachedTests []corpus.CachedTest
		for _, tc := range er.Tests {
			p, err := testgen.Build(tc)
			if err != nil {
				rep.GenFailed++
				continue
			}
			if !testgen.Verify(p, e.Image()) {
				rep.InitFault++
				continue
			}
			rep.Generated++
			tests = append(tests, execTest{
				id: tc.ID, handler: tc.Handler, mnemonic: tc.Mnemonic,
				prog: p.Code, testOff: p.TestOffset,
			})
			cachedTests = append(cachedTests, corpus.CachedTest{
				ID: tc.ID, PathIndex: tc.PathIndex,
				Outcome: corpus.Outcome{
					Kind: uint8(tc.Outcome.Kind), Vector: tc.Outcome.Vector,
					ErrCode: tc.Outcome.ErrCode, HasErr: tc.Outcome.HasErr,
					Soft: tc.Outcome.Soft,
				},
				Diffs: tc.Diffs(), Prog: p.Code, TestOffset: p.TestOffset,
			})
		}
		outs[i] = instrOut{rep: rep, tests: tests, gen: time.Since(tGen)}
		if crp != nil {
			// This run keeps its in-memory tests either way, but a failed
			// write means the next run re-explores; record it instead of
			// dropping it on the floor.
			outs[i].putErr = crp.PutInstr(&corpus.InstrEntry{
				Key: key, HandlerName: u.Spec.Name, Mnemonic: u.Spec.Mn,
				Paths: rep.Paths, Exhausted: rep.Exhausted, Queries: rep.Queries,
				Generated: rep.Generated, GenFailed: rep.GenFailed,
				InitFault: rep.InitFault, Tests: cachedTests,
			})
		}
	})
	exploreCancel()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign: canceled during exploration: %w", err)
	}

	// Deterministic index-ordered merge.
	if summaryPutErr != nil {
		res.Degraded.CorpusWrites++
		res.Degraded.note(ReasonCorpusWrite)
	}
	var tests []execTest
	for i := range outs {
		o := &outs[i]
		if !instrRan[i] {
			// Stage deadline expired before this unit was claimed: it is a
			// fault (the instruction contributed nothing) and a degraded
			// unit, never a silent omission.
			*o = instrOut{rep: &InstrReport{Key: instrs[i].Key(), Fault: ReasonStageDeadline}}
		} else if msg := instrFaults[i]; msg != "" {
			*o = instrOut{rep: &InstrReport{Key: instrs[i].Key(), Fault: msg}}
		}
		if o.err != nil {
			return nil, o.err
		}
		if o.putErr != nil {
			res.Degraded.CorpusWrites++
			res.Degraded.note(ReasonCorpusWrite)
		}
		if o.rep.Fault != "" {
			res.InstrFaults++
			res.Faults = append(res.Faults, Fault{Stage: "explore", Key: o.rep.Key, Err: o.rep.Fault})
			res.Degraded.Instrs++
			res.Degraded.note(o.rep.Fault)
		}
		res.Reports = append(res.Reports, o.rep)
		res.TotalPaths += o.rep.Paths
		if o.rep.Exhausted {
			res.ExhaustedCount++
		}
		res.ExploredInstrs++
		res.Timing.Generate += o.gen
		if o.cached {
			res.Cache.InstrHits++
			res.Cache.TestsCached += len(o.tests)
		} else {
			res.Cache.InstrMisses++
			res.Cache.TestsGenerated += o.rep.Generated
		}
		tests = append(tests, o.tests...)
	}
	res.Timing.Explore = time.Since(t0) - res.Timing.Generate
	res.TotalTests = len(tests)
	res.Cache.SummaryHit = summaryHit

	// The descriptor-parse path count for the report: from the explorer if
	// one was built, else from the cached summary entry, so cold and warm
	// reports agree byte for byte.
	if ex != nil {
		res.SummaryPaths = ex.SummaryPaths
	} else if crp != nil && !cfg.NoCache {
		if se, ok := crp.GetSummary(sumKey); ok {
			res.SummaryPaths = se.Paths
			res.Cache.SummaryHit = true
		}
	}

	// Stage 3: execution on the three implementations, fanned out with
	// per-test budgets and panic isolation.
	image := machine.BaselineImage()
	if ex != nil {
		image = ex.Image()
	}
	boot := testgen.BaselineInit()
	fiF := harness.FidelisFactory()
	ceF := harness.CelerFactoryFast(!cfg.NoFastPath)
	hwF := harness.HardwareFactory()
	leF := harness.LentoFactory()
	// The -resume execution cache stores the classic trio only; a voting
	// campaign needs the fourth leg, so it bypasses the cache entirely
	// rather than replaying three-legged outcomes it cannot vote over.
	execCache := cfg.Resume && !cfg.Vote

	outcomes := make([]trio, len(tests))
	emit(StageExecute, "", 0, len(tests))
	var execDone atomic.Int64
	execCtx, execCancel := stageCtx()
	execFaults, execRan := runPool(execCtx, workers, len(tests), func(i int) {
		defer func() {
			emit(StageExecute, tests[i].id, int(execDone.Add(1)), len(tests))
		}()
		if cfg.testHookExec != nil {
			cfg.testHookExec(tests[i].id)
		}
		// Injected worker crash, keyed by test ID (stable across runs and
		// worker counts).
		if err := faults.Hit(faults.CampaignExec, tests[i].id); err != nil {
			panic(err)
		}
		var ek corpus.ExecKey
		if crp != nil && execCache {
			ek = corpus.ExecKey{
				ProgSHA:  corpus.ExecProgSHA(boot, tests[i].prog),
				MaxSteps: testBudget.MaxSteps,
				SnapVer:  machine.SnapVersion,
			}
			if !cfg.NoCache {
				if ent, ok := crp.GetExec(ek); ok {
					if tr, err := decodeExecEntry(ent, image); err == nil {
						outcomes[i] = *tr
						outcomes[i].cached = true
						return
					}
					// Present but undecodable: fall through to a real
					// execution, and count the corrupt entry.
					outcomes[i].decodeFailed = true
				}
			}
		}
		t := time.Now()
		outcomes[i].fi = harness.RunBootBudget(fiF, image, boot, tests[i].prog, testBudget)
		outcomes[i].tFi = time.Since(t)
		t = time.Now()
		outcomes[i].ce = harness.RunBootBudget(ceF, image, boot, tests[i].prog, testBudget)
		outcomes[i].tCe = time.Since(t)
		t = time.Now()
		outcomes[i].hw = harness.RunBootBudget(hwF, image, boot, tests[i].prog, testBudget)
		outcomes[i].tHw = time.Since(t)
		if cfg.Vote {
			t = time.Now()
			outcomes[i].le = harness.RunBootBudget(leF, image, boot, tests[i].prog, testBudget)
			outcomes[i].tLe = time.Since(t)
		}
		if crp != nil && execCache && !outcomes[i].timedOut() {
			if ent, err := encodeExecEntry(ek, &outcomes[i], image); err == nil {
				outcomes[i].putErr = crp.PutExec(ent)
			}
		}
	})
	execCancel()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign: canceled during execution: %w", err)
	}

	for i := range outcomes {
		o := &outcomes[i]
		if !execRan[i] {
			o.fault = ReasonStageDeadline
		} else if msg := execFaults[i]; msg != "" {
			o.fault = msg
		}
		if o.putErr != nil {
			res.Degraded.CorpusWrites++
			res.Degraded.note(ReasonCorpusWrite)
		}
		if o.decodeFailed {
			res.Cache.ExecDecodeFailed++
			res.Degraded.CorpusReads++
			res.Degraded.note(ReasonCorpusRead)
		}
		if o.fault != "" {
			res.ExecFaults++
			res.Faults = append(res.Faults, Fault{Stage: "execute", Key: tests[i].id, Err: o.fault})
			res.Degraded.Execs++
			res.Degraded.note(o.fault)
			continue
		}
		res.Timing.ExecHiFi += o.tFi
		res.Timing.ExecLoFi += o.tCe
		res.Timing.ExecLento += o.tLe
		res.Timing.ExecHW += o.tHw
		if o.cached {
			res.Cache.ExecHits++
		} else {
			res.Cache.ExecMisses++
		}
		if o.timedOut() {
			res.ExecTimeouts++
			res.Faults = append(res.Faults, Fault{Stage: "execute", Key: tests[i].id,
				Err: fmt.Sprintf("wall-clock budget %v exceeded", cfg.TestTimeout)})
			res.Degraded.Execs++
			res.Degraded.note("wall-clock budget exceeded (excluded from diffing)")
		}
	}

	// Stage 4: difference analysis (sequential; inherently deterministic).
	// Every divergence also becomes a triage CaseInfo (identity + runnable
	// program), and — with a baseline configured — is classified known/new.
	emit(StageCompare, "", 0, 1)
	t1 := time.Now()
	res.BaselineUsed = cfg.Baseline != nil
	res.BaselineEntries = cfg.Baseline.Len()
	res.VoteUsed = cfg.Vote
	if cfg.Vote {
		res.VoteBlame = make(map[string]int)
	}
	record := func(i int, implB string, ds []diff.FieldDiff) {
		d := &diff.Difference{
			TestID: tests[i].id, Handler: tests[i].handler, Mnemonic: tests[i].mnemonic,
			ImplA: "hardware", ImplB: implB, Fields: ds,
		}
		res.Differences = append(res.Differences, d)
		res.RootCauses[diff.RootCause(d)]++
		sig := d.Signature()
		res.TriageCases = append(res.TriageCases, triage.CaseInfo{
			TestID: tests[i].id, Handler: tests[i].handler, Mnemonic: tests[i].mnemonic,
			ImplA: "hardware", ImplB: implB,
			Signature: sig, RootCause: diff.RootCause(d),
			Prog: tests[i].prog, TestOffset: tests[i].testOff,
		})
		if cfg.Baseline.Match(implB, sig) {
			res.KnownDiffs++
		} else {
			res.NewDiffs++
		}
	}
	for i := range tests {
		if i&1023 == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("campaign: canceled during comparison: %w", ctx.Err())
		}
		o := &outcomes[i]
		if o.fault != "" || o.timedOut() {
			continue
		}
		filter := diff.UndefFilterFor(tests[i].handler)
		if ds := diff.Compare(o.hw.Snapshot, o.ce.Snapshot, filter); len(ds) > 0 {
			res.LoFiDiffTests++
			record(i, "celer", ds)
		}
		if ds := diff.Compare(o.hw.Snapshot, o.fi.Snapshot, filter); len(ds) > 0 {
			res.HiFiDiffTests++
			record(i, "fidelis", ds)
		}
		// N-way vote over the three independent emulators. Hardware stays
		// the pairwise oracle above; the vote turns emulator-vs-emulator
		// divergences into blame assignments without any oracle at all.
		if cfg.Vote {
			v := diff.Vote([]diff.VoteRun{
				{Impl: "fidelis", Snap: o.fi.Snapshot},
				{Impl: "celer", Snap: o.ce.Snapshot},
				{Impl: "lento", Snap: o.le.Snapshot},
			}, filter)
			switch v.Class {
			case diff.VerdictAgree:
				res.VoteAgree++
			case diff.VerdictMajority:
				res.VoteMajority++
				for _, impl := range v.Outliers {
					res.VoteBlame[impl]++
				}
			default:
				res.VoteSplits++
			}
		}
	}
	res.Timing.Compare = time.Since(t1)
	emit(StageCompare, "", 1, 1)

	// Stage 5 (optional): coverage-guided hybrid fuzzing, seeded with this
	// campaign's tests and their divergence verdicts. The whole stage result
	// is content-addressed in the corpus (seeds + budget + seed + versions),
	// so a warm re-run replays it without executing a single mutation.
	if cfg.Hybrid.Budget > 0 {
		emit(StageHybrid, "", 0, 1)
		tH := time.Now()
		divsByTest := make(map[string][]hybrid.Divergence)
		for _, d := range res.Differences {
			divsByTest[d.TestID] = append(divsByTest[d.TestID], hybrid.Divergence{
				InputID: d.TestID, Handler: d.Handler, Mnemonic: d.Mnemonic,
				Impl: d.ImplB, Signature: d.Signature(),
			})
		}
		var seeds []hybrid.Seed
		for i := range tests {
			o := &outcomes[i]
			if o.fault != "" || o.timedOut() {
				continue
			}
			seeds = append(seeds, hybrid.Seed{
				ID: tests[i].id, Handler: tests[i].handler, Mnemonic: tests[i].mnemonic,
				Prog: tests[i].prog, TestOff: tests[i].testOff,
				Divs: divsByTest[tests[i].id],
			})
		}
		hseed := cfg.Hybrid.Seed
		if hseed == 0 {
			hseed = cfg.Seed
		}
		hworkers := cfg.Hybrid.MutatorWorkers
		if hworkers == 0 {
			hworkers = workers
		}
		fk := corpus.FuzzInputKey{
			SeedsSHA: hybrid.SeedsSHA(boot, seeds),
			Budget:   cfg.Hybrid.Budget, Seed: hseed,
			MaxSteps: testBudget.MaxSteps, RoundSize: hybrid.DefaultRoundSize,
			ReseedPaths: hybrid.DefaultReseedPaths, MaxReseeds: hybrid.DefaultMaxReseeds,
			Config: solverLabel, CovVersion: coverage.Version,
			HybridVersion: hybrid.Version, GenVersion: testgen.Version,
		}
		var hres *hybrid.Result
		if crp != nil && !cfg.NoCache {
			if ent, ok := crp.GetFuzz(fk); ok {
				var dec hybrid.Result
				if json.Unmarshal(ent.Result, &dec) == nil {
					hres = &dec
					res.Cache.FuzzHit = true
				}
			}
		}
		if hres == nil {
			var err error
			hres, err = hybrid.Run(ctx, hybrid.Config{
				Budget: cfg.Hybrid.Budget, Seed: hseed, Workers: hworkers,
				MaxSteps: testBudget.MaxSteps, Image: image, Boot: boot,
				Explorer: buildExplorer, Instrs: instrs,
			}, seeds)
			if err != nil {
				return nil, fmt.Errorf("campaign: hybrid fuzzing: %w", err)
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("campaign: canceled during hybrid fuzzing: %w", err)
			}
			if crp != nil {
				if raw, err := json.Marshal(hres); err == nil {
					if perr := crp.PutFuzz(&corpus.FuzzEntry{Key: fk, Result: raw}); perr != nil {
						res.Degraded.CorpusWrites++
						res.Degraded.note(ReasonCorpusWrite)
					}
				}
			}
		}
		res.HybridUsed = true
		res.HybridStats = hres.Stats
		res.HybridDivs = hres.Divergences
		// Skipped mutation jobs spent budget without producing a candidate
		// (injected faults, chaos runs): ledger them like any other loss.
		if n := hres.Stats.Skipped; n > 0 {
			res.Degraded.HybridExecs = n
			for i := 0; i < n; i++ {
				res.Degraded.note(ReasonHybridMutate)
			}
		}
		res.Timing.Hybrid = time.Since(tH)
		emit(StageHybrid, "", 1, 1)
	}

	// Harvest corpus resilience counters. The handle was opened by this run,
	// so its counters are this campaign's own traffic. A read that exhausted
	// every retry degraded to a recompute — correct output, lost cache — and
	// is ledgered like any other loss.
	if crp != nil {
		st := crp.Stats()
		res.Cache.ReadRetries, res.Cache.WriteRetries = st.ReadRetries, st.WriteRetries
		res.Cache.ReadFailures, res.Cache.WriteFailures = st.ReadFailures, st.WriteFailures
		res.Degraded.CorpusReads += int(st.ReadFailures)
		for i := int64(0); i < st.ReadFailures; i++ {
			res.Degraded.note(ReasonCorpusRead)
		}
	}
	return res, nil
}

// outFromEntry converts a corpus entry into the same instrOut shape a cold
// exploration produces.
func outFromEntry(ent *corpus.InstrEntry) instrOut {
	rep := &InstrReport{
		Key:       ent.Key.Handler,
		Paths:     ent.Paths,
		Exhausted: ent.Exhausted,
		Generated: ent.Generated,
		GenFailed: ent.GenFailed,
		InitFault: ent.InitFault,
		Queries:   ent.Queries,
	}
	tests := make([]execTest, 0, len(ent.Tests))
	for _, ct := range ent.Tests {
		tests = append(tests, execTest{
			id: ct.ID, handler: ent.HandlerName, mnemonic: ent.Mnemonic,
			prog: ct.Prog, testOff: ct.TestOffset,
		})
	}
	return instrOut{rep: rep, tests: tests, cached: true}
}

// implOrder is the serialization order of the execution trio.
var implOrder = []string{"fidelis", "celer", "hardware"}

// encodeExecEntry serializes a trio outcome relative to the shared baseline
// image for the -resume cache.
func encodeExecEntry(key corpus.ExecKey, o *trio, image *machine.Memory) (*corpus.ExecEntry, error) {
	ent := &corpus.ExecEntry{Key: key}
	for _, r := range []*harness.Result{o.fi, o.ce, o.hw} {
		var buf bytes.Buffer
		if err := r.Snapshot.WriteTo(&buf, image); err != nil {
			return nil, err
		}
		ent.Impls = append(ent.Impls, corpus.ExecOutcome{
			Impl: r.Impl, Steps: r.Steps, BaselineFault: r.BaselineFault,
			Snap: buf.Bytes(),
		})
	}
	return ent, nil
}

// decodeExecEntry rebuilds a trio from a cached outcome.
func decodeExecEntry(ent *corpus.ExecEntry, image *machine.Memory) (*trio, error) {
	if len(ent.Impls) != len(implOrder) {
		return nil, fmt.Errorf("campaign: exec entry has %d outcomes, want %d",
			len(ent.Impls), len(implOrder))
	}
	results := make([]*harness.Result, len(implOrder))
	for i, impl := range ent.Impls {
		if impl.Impl != implOrder[i] {
			return nil, fmt.Errorf("campaign: exec entry order %q, want %q", impl.Impl, implOrder[i])
		}
		snap, err := machine.ReadSnapshot(bytes.NewReader(impl.Snap), image)
		if err != nil {
			return nil, err
		}
		results[i] = &harness.Result{
			Impl: impl.Impl, Snapshot: snap, Steps: impl.Steps,
			BaselineFault: impl.BaselineFault,
		}
	}
	return &trio{fi: results[0], ce: results[1], hw: results[2]}, nil
}

// Summary renders the campaign like the paper's Section 6 numbers. The
// output is fully deterministic: same Config (and corpus contents) → same
// bytes, for any Workers value and on every run. Wall-clock costs live in
// TimingTable.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instruction-set exploration: %d decoder paths, %d candidates, %d unique instructions\n",
		r.InstrSet.ExploredPaths, len(r.InstrSet.Candidates), len(r.InstrSet.Unique))
	fmt.Fprintf(&b, "state-space exploration: %d instructions, %d paths, %d/%d exhaustively explored (%.1f%%)\n",
		r.ExploredInstrs, r.TotalPaths, r.ExhaustedCount, r.ExploredInstrs,
		100*float64(r.ExhaustedCount)/float64(max(1, r.ExploredInstrs)))
	fmt.Fprintf(&b, "descriptor-parse summary: %d paths\n", r.SummaryPaths)
	fmt.Fprintf(&b, "test programs: %d\n", r.TotalTests)
	fmt.Fprintf(&b, "differences vs hardware: lo-fi %d tests, hi-fi %d tests\n",
		r.LoFiDiffTests, r.HiFiDiffTests)
	// Baseline partition: rendered only when a baseline was configured, so
	// baseline-free reports keep the historical byte format.
	if r.BaselineUsed {
		fmt.Fprintf(&b, "baseline: %d suppressed clusters; known %d tests, new %d tests\n",
			r.BaselineEntries, r.KnownDiffs, r.NewDiffs)
	}
	causes := make([]string, 0, len(r.RootCauses))
	for c := range r.RootCauses {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Fprintf(&b, "  root cause: %-55s %6d tests\n", c, r.RootCauses[c])
	}
	// Voted-verdict block: rendered only when the vote ran, so vote-free
	// reports keep the historical byte format. The blame column is sorted
	// by emulator name for determinism.
	if r.VoteUsed {
		fmt.Fprintf(&b, "vote (fidelis/celer/lento): %d agree, %d majority, %d split\n",
			r.VoteAgree, r.VoteMajority, r.VoteSplits)
		impls := make([]string, 0, len(r.VoteBlame))
		for impl := range r.VoteBlame {
			impls = append(impls, impl)
		}
		sort.Strings(impls)
		for _, impl := range impls {
			fmt.Fprintf(&b, "  blame: %-59s %6d tests\n", impl, r.VoteBlame[impl])
		}
	}
	// Hybrid fuzzing block: rendered only when the stage ran, so
	// hybrid-free reports keep the historical byte format. Every number is
	// deterministic (worker-count independent).
	if r.HybridUsed {
		st := r.HybridStats
		fmt.Fprintf(&b, "hybrid: %d execs (%d skipped), %d deduped, %d new-coverage, %d divergent, %d promising\n",
			st.Execs, st.Skipped, st.Deduped, st.NewCoverage, st.Divergent, st.Promising)
		fmt.Fprintf(&b, "hybrid corpus: %d signatures (seeds %d/%d), %d edges, reseeds %d (+%d tests)\n",
			st.Signatures, st.SeedSignatures, st.Seeds, st.Edges, st.Reseeds, st.ReseedTests)
		divSigs := make(map[string]int)
		for _, d := range r.HybridDivs {
			divSigs[d.Impl+" "+d.Signature]++
		}
		keys := make([]string, 0, len(divSigs))
		for k := range divSigs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  hybrid divergence: %-53s %6d inputs\n", k, divSigs[k])
		}
	}
	fmt.Fprintf(&b, "faults: explore %d, execute %d, timeouts %d\n",
		r.InstrFaults, r.ExecFaults, r.ExecTimeouts)
	for _, f := range r.Faults {
		fmt.Fprintf(&b, "  fault: %-8s %-24s %s\n", f.Stage, f.Key, f.Err)
	}
	// The graceful-degradation ledger. Omitted entirely on a healthy run,
	// so healthy reports are byte-identical to the pre-degradation format;
	// when present, reasons render in sorted order for determinism.
	if !r.Degraded.Empty() {
		d := &r.Degraded
		// The hybrid count is appended only when nonzero, keeping
		// hybrid-free degraded reports byte-identical to the prior format.
		hyb := ""
		if d.HybridExecs > 0 {
			hyb = fmt.Sprintf(", hybrid %d", d.HybridExecs)
		}
		fmt.Fprintf(&b, "degraded: %d units (instrs %d, execs %d, corpus writes %d, corpus reads %d%s)\n",
			d.Total(), d.Instrs, d.Execs, d.CorpusWrites, d.CorpusReads, hyb)
		reasons := make([]string, 0, len(d.Reasons))
		for reason := range d.Reasons {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			fmt.Fprintf(&b, "  degraded: %-55s %6d units\n", reason, d.Reasons[reason])
		}
	}
	return b.String()
}

// TimingTable renders the per-stage cost profile (the paper's CPU-hour
// table) together with corpus cache traffic per stage. This is the
// run-dependent half of the report.
func (r *Result) TimingTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %9s\n", "stage", "wall", "cached", "computed", "hit-rate")
	row := func(stage string, d time.Duration, hits, misses int, unit string) {
		rate := "-"
		if hits+misses > 0 && r.Cache.Enabled {
			rate = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
		}
		cached := "-"
		if r.Cache.Enabled {
			cached = fmt.Sprintf("%d %s", hits, unit)
		}
		fmt.Fprintf(&b, "%-12s %10s %10s %10s %9s\n",
			stage, d.Round(time.Millisecond), cached,
			fmt.Sprintf("%d %s", misses, unit), rate)
	}
	row("explore", r.Timing.Explore, r.Cache.InstrHits, r.Cache.InstrMisses, "instr")
	row("generate", r.Timing.Generate, r.Cache.TestsCached, r.Cache.TestsGenerated, "test")
	execWall := r.Timing.ExecHiFi + r.Timing.ExecLoFi + r.Timing.ExecLento + r.Timing.ExecHW
	row("execute", execWall, r.Cache.ExecHits, r.Cache.ExecMisses, "test")
	fmt.Fprintf(&b, "%-12s %10s\n", "  hi-fi", r.Timing.ExecHiFi.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-12s %10s\n", "  lo-fi", r.Timing.ExecLoFi.Round(time.Millisecond))
	if r.VoteUsed {
		fmt.Fprintf(&b, "%-12s %10s\n", "  lento", r.Timing.ExecLento.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "%-12s %10s\n", "  hardware", r.Timing.ExecHW.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %9s\n", "compare", r.Timing.Compare.Round(time.Millisecond),
		"-", fmt.Sprintf("%d test", r.LoFiDiffTests+r.HiFiDiffTests), "-")
	if r.HybridUsed {
		cached := "-"
		if r.Cache.FuzzHit {
			cached = "1 stage"
		}
		fmt.Fprintf(&b, "%-12s %10s %10s %10s %9s\n", "hybrid",
			r.Timing.Hybrid.Round(time.Millisecond), cached,
			fmt.Sprintf("%d exec", r.HybridStats.Execs), "-")
		for _, hc := range r.HybridStats.PerHandler {
			fmt.Fprintf(&b, "  coverage %-26s %6d edges %6d sigs\n", hc.Handler, hc.Edges, hc.Sigs)
		}
	}
	if r.BaselineUsed {
		fmt.Fprintf(&b, "baseline: %d entries; %d known, %d new divergent tests\n",
			r.BaselineEntries, r.KnownDiffs, r.NewDiffs)
	}
	if r.Cache.Enabled {
		fmt.Fprintf(&b, "descriptor-parse summary cached: %v\n", r.Cache.SummaryHit)
	}
	// Corpus I/O resilience: printed only when something retried or failed,
	// so healthy-run output is unchanged.
	if c := r.Cache; c.ReadRetries+c.WriteRetries+c.ReadFailures+c.WriteFailures > 0 ||
		c.ExecDecodeFailed > 0 {
		fmt.Fprintf(&b, "corpus io: read retries %d, failures %d; write retries %d, failures %d; undecodable exec entries %d\n",
			c.ReadRetries, c.ReadFailures, c.WriteRetries, c.WriteFailures, c.ExecDecodeFailed)
	}
	rate := func(hits, misses int64) string {
		if hits+misses == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	fmt.Fprintf(&b, "solver: %d queries, memo %d/%d hit (%s)\n",
		r.Solver.Queries, r.Solver.MemoHits, r.Solver.MemoHits+r.Solver.MemoMisses,
		rate(r.Solver.MemoHits, r.Solver.MemoMisses))
	fmt.Fprintf(&b, "expr intern: %d/%d hit (%s)\n",
		r.Solver.InternHits, r.Solver.InternHits+r.Solver.InternMisses,
		rate(r.Solver.InternHits, r.Solver.InternMisses))
	if r.Solver.ReusedLevels > 0 {
		fmt.Fprintf(&b, "solver batch: %d assumption levels reused\n", r.Solver.ReusedLevels)
	}
	if r.Solver.SubsumeHits > 0 {
		fmt.Fprintf(&b, "solver subsume: %d queries answered by model subsumption\n", r.Solver.SubsumeHits)
	}
	if r.Solver.ReduceRuns > 0 {
		fmt.Fprintf(&b, "solver reduce: %d passes dropped %d learned clauses (%d restarts)\n",
			r.Solver.ReduceRuns, r.Solver.ReduceRemoved, r.Solver.Restarts)
	}
	if r.Solver.PortfolioRaces > 0 {
		fmt.Fprintf(&b, "solver portfolio: %d races, %d clone wins\n",
			r.Solver.PortfolioRaces, r.Solver.PortfolioCloneWins)
	}
	var explored []*InstrReport
	for _, rep := range r.Reports {
		if rep.ExploreWall > 0 {
			explored = append(explored, rep)
		}
	}
	if len(explored) > 0 {
		sort.Slice(explored, func(i, j int) bool {
			if explored[i].ExploreWall != explored[j].ExploreWall {
				return explored[i].ExploreWall > explored[j].ExploreWall
			}
			return explored[i].Key < explored[j].Key
		})
		fmt.Fprintf(&b, "explore wall by handler:\n")
		for i, rep := range explored {
			if i == 10 {
				fmt.Fprintf(&b, "  … %d more\n", len(explored)-i)
				break
			}
			fmt.Fprintf(&b, "  %-28s %10s %6d paths\n",
				rep.Key, rep.ExploreWall.Round(time.Millisecond), rep.Paths)
		}
	}
	return b.String()
}

// Report renders the full campaign report: the deterministic summary
// followed by the timing/cache table.
func (r *Result) Report() string {
	return r.Summary() + "\n" + r.TimingTable()
}
