package campaign

import (
	"path/filepath"
	"strings"
	"testing"
)

// voteGateHandlers is the seeded handler set the voting gate campaign runs:
// the alias encodings celer deliberately rejects (the known injected
// decoder divergence — fidelis and lento accept them, so the majority must
// blame celer on every divergent test) plus ordinary handlers that vote
// unanimously.
var voteGateHandlers = []string{
	"add_rm8_imm8_alias",
	"sbb_rm8_imm8_alias",
	"test_rmv_immv_alias",
	"add_rmv_rv",
	"shl_rmv_imm8",
	"push_r",
}

func voteGateConfig(workers int) Config {
	return Config{
		MaxPathsPerInstr: 24,
		Handlers:         voteGateHandlers,
		Seed:             1,
		Workers:          workers,
		Vote:             true,
	}
}

// TestVoteBlamesCeler is the voting acceptance property: over the gate
// handler set, every majority verdict blames celer — never fidelis, never
// lento — because the only emulator-vs-emulator divergences are celer's
// injected bugs (here, the rejected alias encodings).
func TestVoteBlamesCeler(t *testing.T) {
	res, err := Run(voteGateConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.VoteUsed {
		t.Fatal("VoteUsed = false on a voting campaign")
	}
	total := res.VoteAgree + res.VoteMajority + res.VoteSplits
	if total == 0 {
		t.Fatal("no voted verdicts recorded")
	}
	if res.VoteMajority == 0 {
		t.Fatal("no majority verdicts: the alias handlers should diverge on celer")
	}
	if res.VoteSplits != 0 {
		t.Errorf("VoteSplits = %d, want 0 (no 3-way splits expected here)", res.VoteSplits)
	}
	if n := res.VoteBlame["fidelis"]; n != 0 {
		t.Errorf("VoteBlame[fidelis] = %d, want 0", n)
	}
	if n := res.VoteBlame["lento"]; n != 0 {
		t.Errorf("VoteBlame[lento] = %d, want 0", n)
	}
	if n := res.VoteBlame["celer"]; n != res.VoteMajority {
		t.Errorf("VoteBlame[celer] = %d, want every majority (%d)", n, res.VoteMajority)
	}
	if !strings.Contains(res.Summary(), "vote (fidelis/celer/lento):") {
		t.Error("Summary() lacks the vote section")
	}
	if !strings.Contains(res.TimingTable(), "lento") {
		t.Error("TimingTable() lacks the lento execution row")
	}
}

// TestVoteWorkerDeterminism: with voting on, the report stays byte-identical
// for any worker count — the vote tallies ride the same index-ordered merge
// as everything else.
func TestVoteWorkerDeterminism(t *testing.T) {
	seq, err := Run(voteGateConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(voteGateConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if s1, s8 := seq.Summary(), par.Summary(); s1 != s8 {
		t.Errorf("summaries differ between Workers=1 and Workers=8:\n--- 1:\n%s\n--- 8:\n%s", s1, s8)
	}
	if seq.VoteAgree != par.VoteAgree || seq.VoteMajority != par.VoteMajority ||
		seq.VoteSplits != par.VoteSplits {
		t.Errorf("vote tallies differ: %d/%d/%d vs %d/%d/%d",
			seq.VoteAgree, seq.VoteMajority, seq.VoteSplits,
			par.VoteAgree, par.VoteMajority, par.VoteSplits)
	}
}

// TestVoteOffUnchanged: without Vote, the result carries no vote state and
// the summary has no vote section — the pre-voting byte format (also pinned
// by TestSummaryGolden) is untouched.
func TestVoteOffUnchanged(t *testing.T) {
	cfg := voteGateConfig(4)
	cfg.Vote = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VoteUsed || res.VoteBlame != nil {
		t.Errorf("vote state populated with Vote off: used=%v blame=%v", res.VoteUsed, res.VoteBlame)
	}
	if strings.Contains(res.Summary(), "vote") {
		t.Error("Summary() mentions voting with Vote off")
	}
	if strings.Contains(res.TimingTable(), "lento") {
		t.Error("TimingTable() has a lento row with Vote off")
	}
}

// TestVoteSummaryGolden pins the voting campaign report byte for byte — the
// `make vote` gate. Regenerate intentionally with:
// go test ./internal/campaign -run TestVoteSummaryGolden -update
func TestVoteSummaryGolden(t *testing.T) {
	res, err := Run(voteGateConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "vote_summary.golden"), []byte(res.Summary()))
}
