package campaign

import (
	"strings"
	"testing"
)

// TestCampaignEndToEnd runs the pipeline on a handler mix covering every
// injected defect class and checks the Section 6 shape claims.
func TestCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	res, err := Run(Config{
		MaxPathsPerInstr: 96,
		Handlers: []string{
			"push_r", "leave", "cmpxchg_rmv_rv", "iret", "rdmsr",
			"lfs", "mov_sreg_rm16", "add_rmv_rv", "add_rm8_imm8_alias",
			"shl_rmv_imm8",
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTests < 100 {
		t.Fatalf("only %d tests generated", res.TotalTests)
	}
	// Headline shape: the Lo-Fi emulator diverges from hardware far more
	// often than the Hi-Fi one (paper: 60,770 vs 15,219).
	if res.LoFiDiffTests <= res.HiFiDiffTests {
		t.Errorf("lo-fi diffs (%d) should exceed hi-fi diffs (%d)",
			res.LoFiDiffTests, res.HiFiDiffTests)
	}
	if res.LoFiDiffTests == 0 {
		t.Error("campaign found no lo-fi differences at all")
	}
	// Every targeted root cause must be identified.
	for _, cause := range []string{
		"leave: non-atomic ESP update",
		"cmpxchg: accumulator/flags updated before write check",
		"iret: stack pop order",
		"rdmsr: missing #GP on invalid MSR",
		"far load: operand fetch order",
		"segmentation: limits/rights not enforced",
		"decoder: encoding acceptance difference",
	} {
		if res.RootCauses[cause] == 0 {
			t.Errorf("root cause %q not found", cause)
		}
	}
	// Nearly everything should classify into a known class.
	other := 0
	for cause, n := range res.RootCauses {
		if strings.HasPrefix(cause, "other") {
			other += n
		}
	}
	if total := len(res.Differences); other*10 > total {
		t.Errorf("%d of %d differences unclassified", other, total)
	}
	if s := res.Summary(); !strings.Contains(s, "root cause") {
		t.Error("summary missing the root-cause section")
	}
	// Cost shape: the Hi-Fi interpreter is the most expensive executor.
	if res.Timing.ExecHiFi <= res.Timing.ExecLoFi {
		t.Error("hi-fi execution should cost more than lo-fi")
	}
}

func TestCampaignInstrLimit(t *testing.T) {
	res, err := Run(Config{MaxPathsPerInstr: 8, MaxInstrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExploredInstrs != 3 {
		t.Errorf("explored %d instructions, want 3", res.ExploredInstrs)
	}
}
