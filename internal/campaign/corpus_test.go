package campaign

import (
	"strings"
	"sync"
	"testing"
)

// smallConfig is a fast two-handler campaign used by the corpus and
// determinism tests.
func smallConfig() Config {
	return Config{
		MaxPathsPerInstr: 24,
		Handlers:         []string{"push_r", "add_rmv_rv"},
		Seed:             1,
	}
}

// TestCorpusColdWarm checks the tentpole contract: a warm re-run resolves
// every instruction (and the descriptor-parse summaries) from the corpus,
// skips exploration entirely, and still renders a byte-identical report.
func TestCorpusColdWarm(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CorpusDir = dir

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Cache.Enabled {
		t.Fatal("cache not enabled with CorpusDir set")
	}
	if cold.Cache.InstrMisses != 2 || cold.Cache.InstrHits != 0 {
		t.Fatalf("cold run cache = %+v, want 2 misses", cold.Cache)
	}
	if cold.Cache.SummaryHit {
		t.Error("cold run claims a summary hit")
	}
	if cold.Cache.TestsGenerated == 0 {
		t.Fatal("cold run generated no tests")
	}

	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.InstrHits != 2 || warm.Cache.InstrMisses != 0 {
		t.Fatalf("warm run cache = %+v, want 2 hits", warm.Cache)
	}
	if warm.Cache.TestsCached != cold.Cache.TestsGenerated {
		t.Errorf("warm run loaded %d tests, cold generated %d",
			warm.Cache.TestsCached, cold.Cache.TestsGenerated)
	}
	// Fully warm: the explorer is never built, so exploration cost only the
	// corpus lookups.
	if !warm.Cache.SummaryHit {
		t.Error("warm run missed the descriptor-parse summaries")
	}
	if cs, ws := cold.Summary(), warm.Summary(); cs != ws {
		t.Errorf("cold and warm summaries differ:\ncold:\n%s\nwarm:\n%s", cs, ws)
	}
	if cold.SummaryPaths == 0 || cold.SummaryPaths != warm.SummaryPaths {
		t.Errorf("summary paths: cold %d, warm %d", cold.SummaryPaths, warm.SummaryPaths)
	}
}

// TestNoCacheForcesCold checks that -no-cache bypasses reads on a warm
// corpus but still refreshes it.
func TestNoCacheForcesCold(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CorpusDir = dir
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.NoCache = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.InstrHits != 0 || res.Cache.InstrMisses != 2 {
		t.Errorf("no-cache run cache = %+v, want all misses", res.Cache)
	}
	if res.Cache.SummaryHit {
		t.Error("no-cache run used cached summaries")
	}
}

// TestResumeCachesExecution checks that -resume replays cached trio
// outcomes: the second run executes nothing and reports identically.
func TestResumeCachesExecution(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CorpusDir = dir
	cfg.Resume = true

	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache.ExecHits != 0 || first.Cache.ExecMisses != first.TotalTests {
		t.Fatalf("first run exec cache = %+v over %d tests", first.Cache, first.TotalTests)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache.ExecHits != second.TotalTests || second.Cache.ExecMisses != 0 {
		t.Fatalf("resumed run exec cache = %+v over %d tests", second.Cache, second.TotalTests)
	}
	if fs, ss := first.Summary(), second.Summary(); fs != ss {
		t.Errorf("resumed summary differs:\nfirst:\n%s\nsecond:\n%s", fs, ss)
	}
	if first.LoFiDiffTests != second.LoFiDiffTests || first.HiFiDiffTests != second.HiFiDiffTests {
		t.Errorf("diff counts changed across resume: %d/%d vs %d/%d",
			first.LoFiDiffTests, first.HiFiDiffTests,
			second.LoFiDiffTests, second.HiFiDiffTests)
	}
}

// TestPanicIsolation checks that a crashing handler costs one fault record,
// not the campaign: the other instructions still produce tests, and the
// fault appears deterministically in the summary.
func TestPanicIsolation(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.testHookInstr = func(key string) {
		if key == "push_r" {
			panic("injected explorer crash")
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InstrFaults != 1 {
		t.Fatalf("InstrFaults = %d, want 1", res.InstrFaults)
	}
	if len(res.Faults) != 1 || res.Faults[0].Stage != "explore" ||
		res.Faults[0].Key != "push_r" ||
		!strings.Contains(res.Faults[0].Err, "injected explorer crash") {
		t.Fatalf("fault record = %+v", res.Faults)
	}
	if res.TotalTests == 0 {
		t.Error("surviving instruction generated no tests")
	}
	if s := res.Summary(); !strings.Contains(s, "injected explorer crash") {
		t.Errorf("summary does not surface the fault:\n%s", s)
	}
}

// TestExecPanicIsolation checks the same for the execution stage: a test
// whose worker panics is excluded from diffing but the campaign completes.
func TestExecPanicIsolation(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	var mu sync.Mutex
	crashed := false
	cfg.testHookExec = func(id string) {
		mu.Lock()
		mine := !crashed
		crashed = true
		mu.Unlock()
		if mine { // exactly one victim; any test will do
			panic("injected executor crash")
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecFaults != 1 {
		t.Fatalf("ExecFaults = %d, want 1", res.ExecFaults)
	}
	if res.LoFiDiffTests == 0 && res.HiFiDiffTests == 0 && res.TotalTests < 2 {
		t.Error("no surviving tests were compared")
	}
}
