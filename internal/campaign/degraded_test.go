package campaign

// Silent-drop pin tests (the PR's bug-class audit): every place the
// pipeline used to swallow an error with `continue` or `_ =` must now
// land in the degraded ledger with an exact, pinned count.

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"pokeemu/internal/corpus"
	"pokeemu/internal/faults"
)

// TestCorpusWriteFailuresArePinned pins the exact ledger count for a cold
// run whose every corpus write fails: one descriptor-summary entry plus
// one instruction entry, formerly both dropped via `_ = crp.Put...`.
func TestCorpusWriteFailuresArePinned(t *testing.T) {
	t.Cleanup(faults.Disarm)
	res := runChaosCase(t, chaosCase{
		spec:     "corpus.write:p=1:err",
		handlers: []string{"push_r"},
		prewarm:  nil,
	}, 2)
	if res.Degraded.CorpusWrites != 2 {
		t.Errorf("Degraded.CorpusWrites = %d, want 2 (summary + instr entry)", res.Degraded.CorpusWrites)
	}
	if res.Degraded.Instrs != 0 || res.Degraded.Execs != 0 || res.Degraded.CorpusReads != 0 {
		t.Errorf("unexpected non-write degradation: %+v", res.Degraded)
	}
	if res.TotalTests == 0 || res.LoFiDiffTests == 0 {
		t.Error("write failures must not cost the run its in-memory results")
	}
}

// TestUnopenableCorpusDegradesToUncached: when the corpus root cannot even
// be initialized (every write fails before Open succeeds), the campaign
// runs uncached and ledgers the loss instead of failing outright.
func TestUnopenableCorpusDegradesToUncached(t *testing.T) {
	t.Cleanup(faults.Disarm)
	if _, err := faults.ArmSpec("corpus.write:p=1:err"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		MaxPathsPerInstr: 8,
		Handlers:         []string{"push_r"},
		Seed:             1,
		Workers:          2,
		CorpusDir:        t.TempDir(), // fresh: the VERSION write must fail
	})
	faults.Disarm()
	if err != nil {
		t.Fatalf("campaign failed instead of degrading: %v", err)
	}
	if res.Cache.Enabled {
		t.Error("cache reported enabled without an opened corpus")
	}
	if res.Degraded.CorpusWrites != 1 || res.Degraded.Reasons[ReasonCorpusOpen] != 1 {
		t.Errorf("degraded ledger = %+v, want exactly one %q unit", res.Degraded, ReasonCorpusOpen)
	}
	if res.TotalTests == 0 || res.LoFiDiffTests == 0 {
		t.Error("uncached run lost its results")
	}
}

// TestVersionMismatchStillRefuses: an incompatible corpus is a hard error,
// never a degradation — its data is unsafe to reuse or overwrite.
func TestVersionMismatchStillRefuses(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{
		MaxPathsPerInstr: 8,
		Handlers:         []string{"push_r"},
		Seed:             1,
		Workers:          1,
		CorpusDir:        dir,
	})
	if !errors.Is(err, corpus.ErrVersionMismatch) {
		t.Fatalf("err = %v, want corpus.ErrVersionMismatch", err)
	}
}

// TestUndecodableExecEntriesArePinned corrupts every cached execution
// outcome (decodable JSON, wrong impl order — the shape decodeExecEntry
// used to skip silently) and requires the resumed run to re-execute each
// one, counting every corrupt entry in both the cache stats and the
// degraded ledger.
func TestUndecodableExecEntriesArePinned(t *testing.T) {
	t.Cleanup(faults.Disarm)
	faults.Disarm()
	dir := t.TempDir()
	cfg := Config{
		MaxPathsPerInstr: 8,
		Handlers:         []string{"push_r"},
		Seed:             1,
		Workers:          2,
		CorpusDir:        dir,
		Resume:           true,
	}
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.ExecMisses != cold.TotalTests || cold.TotalTests == 0 {
		t.Fatalf("cold resume run: %d tests, %d exec misses", cold.TotalTests, cold.Cache.ExecMisses)
	}

	// Corrupt in place: every exec entry keeps valid corpus JSON but an
	// impl name the campaign cannot map back to a harness result.
	corrupted := 0
	err = filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !bytes.Contains(b, []byte(`"impl":"fidelis"`)) {
			return nil // not an exec entry
		}
		corrupted++
		return os.WriteFile(path, bytes.ReplaceAll(b,
			[]byte(`"impl":"fidelis"`), []byte(`"impl":"fidelib"`)), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted != cold.TotalTests {
		t.Fatalf("corrupted %d exec entries, want %d", corrupted, cold.TotalTests)
	}

	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.ExecDecodeFailed != cold.TotalTests {
		t.Errorf("ExecDecodeFailed = %d, want %d", warm.Cache.ExecDecodeFailed, cold.TotalTests)
	}
	if warm.Cache.ExecHits != 0 || warm.Cache.ExecMisses != cold.TotalTests {
		t.Errorf("exec cache hits/misses = %d/%d, want 0/%d (every entry re-executed)",
			warm.Cache.ExecHits, warm.Cache.ExecMisses, cold.TotalTests)
	}
	if warm.Degraded.CorpusReads != cold.TotalTests {
		t.Errorf("Degraded.CorpusReads = %d, want %d", warm.Degraded.CorpusReads, cold.TotalTests)
	}
	if got := warm.Degraded.Reasons[ReasonCorpusRead]; got != cold.TotalTests {
		t.Errorf("reason %q counted %d times, want %d", ReasonCorpusRead, got, cold.TotalTests)
	}
	// The re-execution repaired the corpus: a third run replays cleanly.
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cache.ExecHits != cold.TotalTests || again.Cache.ExecDecodeFailed != 0 {
		t.Errorf("after repair: hits %d, decode failures %d, want %d/0",
			again.Cache.ExecHits, again.Cache.ExecDecodeFailed, cold.TotalTests)
	}
	if cs, ws := cold.Summary(), again.Summary(); cs != ws {
		t.Errorf("repaired summary drifted:\ncold:\n%s\nrepaired:\n%s", cs, ws)
	}
}
