package campaign

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// eventLog collects progress events safely across worker goroutines.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) record(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) final(stage string) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var last Event
	found := false
	for _, ev := range l.events {
		if ev.Stage == stage {
			last, found = ev, true
		}
	}
	return last, found
}

// TestProgressEvents checks the event stream a campaign emits: each stage
// announces itself with a Done=0 entry event and counts every unit of work
// up to its total, and the counts agree with the Result.
func TestProgressEvents(t *testing.T) {
	var log eventLog
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Progress = log.record

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	explore, ok := log.final(StageExplore)
	if !ok || explore.Done != 2 || explore.Total != 2 {
		t.Errorf("final explore event = %+v, want 2/2", explore)
	}
	execute, ok := log.final(StageExecute)
	if !ok || execute.Done != res.TotalTests || execute.Total != res.TotalTests {
		t.Errorf("final execute event = %+v, want %d/%d", execute, res.TotalTests, res.TotalTests)
	}
	compare, ok := log.final(StageCompare)
	if !ok || compare.Done != 1 {
		t.Errorf("final compare event = %+v, want 1/1", compare)
	}
	// Stage-entry events lead each stage with Done=0 and an empty key.
	log.mu.Lock()
	defer log.mu.Unlock()
	entries := map[string]bool{}
	for _, ev := range log.events {
		if ev.Done == 0 && ev.Key == "" {
			entries[ev.Stage] = true
		}
	}
	for _, stage := range []string{StageExplore, StageExecute, StageCompare} {
		if !entries[stage] {
			t.Errorf("no stage-entry event for %q", stage)
		}
	}
}

// TestRunContextCancel cancels mid-execution and checks that RunContext
// returns promptly with the context error instead of finishing the test
// list.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := smallConfig()
	cfg.Workers = 2
	var once sync.Once
	cfg.Progress = func(ev Event) {
		if ev.Stage == StageExecute && ev.Key != "" {
			once.Do(cancel)
		}
	}
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = RunContext(ctx, cfg)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("canceled campaign did not return")
	}
	if res != nil || err == nil {
		t.Fatalf("RunContext = (%v, %v), want (nil, error)", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestRunContextCanceledBeforeStart: a dead context fails immediately.
func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, smallConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelCheckpointsExecution: cancel an executing campaign with Resume
// on, then re-run the same config — the finished tests must replay from the
// corpus, and the completed report must match an uninterrupted run.
func TestCancelCheckpointsExecution(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.CorpusDir = dir
	cfg.Resume = true
	cfg.Workers = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var execEvents int
	var mu sync.Mutex
	cfg.Progress = func(ev Event) {
		if ev.Stage == StageExecute && ev.Key != "" {
			mu.Lock()
			execEvents++
			if execEvents == 3 {
				cancel()
			}
			mu.Unlock()
		}
	}
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	cfg.Progress = nil
	resumed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Cache.ExecHits == 0 {
		t.Error("resumed run replayed no checkpointed executions")
	}
	// The checkpointed-then-resumed report matches a clean run end to end.
	clean, err := Run(Config{
		MaxPathsPerInstr: cfg.MaxPathsPerInstr,
		Handlers:         cfg.Handlers,
		Seed:             cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs, cs := resumed.Summary(), clean.Summary(); rs != cs {
		t.Errorf("resumed summary differs from clean run:\nresumed:\n%s\nclean:\n%s", rs, cs)
	}
}

// TestConfigValidate rejects negative knobs up front.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MaxPathsPerInstr: -1},
		{MaxInstrs: -2},
		{Workers: -1},
		{MaxSteps: -5},
		{TestMaxSteps: -1},
		{TestTimeout: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v) accepted an invalid config", cfg)
		}
	}
	good := Config{}
	if err := good.Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// TestUnknownHandlerRejected pins the fix for silently-empty campaigns: a
// handler key that matches no unique instruction must fail the run, not
// filter everything out and report success over nothing.
func TestUnknownHandlerRejected(t *testing.T) {
	_, err := Run(Config{
		MaxPathsPerInstr: 4,
		Handlers:         []string{"push_r", "no_such_handler"},
		Seed:             1,
	})
	if err == nil {
		t.Fatal("Run accepted an unknown handler key")
	}
	if !strings.Contains(err.Error(), "no_such_handler") {
		t.Errorf("error %q does not name the unknown handler", err)
	}
}
