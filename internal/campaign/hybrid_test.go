package campaign

import (
	"path/filepath"
	"strings"
	"testing"
)

// hybridGoldenConfig is the seeded short hybrid campaign the `make hybrid`
// smoke gate pins: the golden-test handler set plus a small fuzzing budget.
func hybridGoldenConfig() Config {
	return Config{
		MaxPathsPerInstr: 24,
		Handlers:         []string{"push_r", "leave", "add_rmv_rv"},
		Seed:             1,
		Workers:          4,
		Hybrid:           HybridConfig{Budget: 32},
	}
}

// TestHybridSummaryGolden pins the hybrid campaign report byte for byte and
// asserts the two acceptance properties of the hybrid loop: the fuzzed
// corpus reaches strictly more distinct coverage signatures than the
// pure-symex seed corpus, and every divergence the symex pipeline found is
// reproduced in the hybrid stage's divergence set.
func TestHybridSummaryGolden(t *testing.T) {
	res, err := Run(hybridGoldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.HybridUsed {
		t.Fatal("hybrid stage did not run")
	}
	st := res.HybridStats
	if st.Execs != 32 {
		t.Errorf("hybrid spent %d execs, want the full budget 32", st.Execs)
	}
	if st.Signatures <= st.SeedSignatures {
		t.Errorf("hybrid corpus has %d signatures, seeds alone %d: fuzzing beat nothing",
			st.Signatures, st.SeedSignatures)
	}
	known := make(map[string]bool)
	for _, d := range res.HybridDivs {
		known[d.Impl+" "+d.Signature] = true
	}
	for _, d := range res.Differences {
		if !known[d.ImplB+" "+d.Signature()] {
			t.Errorf("campaign divergence %s %s not reproduced by the hybrid stage",
				d.ImplB, d.Signature())
		}
	}
	if len(st.PerHandler) == 0 {
		t.Error("per-handler coverage rollup missing")
	}
	if !strings.Contains(res.TimingTable(), "coverage ") {
		t.Error("timing table omits the per-handler coverage section")
	}
	compareGolden(t, filepath.Join("testdata", "summary_hybrid.golden"), []byte(res.Summary()))
}

// TestHybridSummaryDeterministic pins worker-count independence end to end:
// Workers/MutatorWorkers 1 vs 8 must render byte-identical reports.
func TestHybridSummaryDeterministic(t *testing.T) {
	var sums [2]string
	for i, workers := range []int{1, 8} {
		cfg := hybridGoldenConfig()
		cfg.Workers = workers
		cfg.Hybrid.MutatorWorkers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sums[i] = res.Summary()
	}
	if sums[0] != sums[1] {
		t.Errorf("hybrid summaries differ between Workers=1 and Workers=8:\n--- 1 worker:\n%s\n--- 8 workers:\n%s",
			sums[0], sums[1])
	}
}

// TestHybridCorpusCache pins the stage-level cache: a warm re-run serves
// the whole fuzzing stage from the corpus and renders the identical report.
func TestHybridCorpusCache(t *testing.T) {
	dir := t.TempDir()
	cfg := hybridGoldenConfig()
	cfg.Handlers = []string{"push_r"}
	cfg.Hybrid.Budget = 16
	cfg.CorpusDir = dir
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.FuzzHit {
		t.Error("cold run claims a fuzz cache hit")
	}
	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cache.FuzzHit {
		t.Error("warm run did not serve the hybrid stage from the corpus")
	}
	if cold.Summary() != warm.Summary() {
		t.Errorf("cached hybrid stage changed the report:\n--- cold:\n%s\n--- warm:\n%s",
			cold.Summary(), warm.Summary())
	}
}

func TestHybridValidate(t *testing.T) {
	cfg := Config{Hybrid: HybridConfig{Budget: -1}}
	if err := cfg.Validate(); err == nil {
		t.Error("negative hybrid budget accepted")
	}
	cfg = Config{Hybrid: HybridConfig{MutatorWorkers: -1}}
	if err := cfg.Validate(); err == nil {
		t.Error("negative mutator workers accepted")
	}
}
