package campaign

import (
	"reflect"
	"testing"
)

// TestWorkerDeterminism is the campaign's determinism property: the Result
// summary and every deterministic field are byte-identical whether the
// pipeline runs sequentially or over eight workers. Timings and cache
// counters are the only run-dependent state, and they are rendered by
// TimingTable, never Summary.
func TestWorkerDeterminism(t *testing.T) {
	cfg := Config{
		MaxPathsPerInstr: 24,
		Handlers:         []string{"push_r", "leave", "add_rmv_rv", "shl_rmv_imm8"},
		Seed:             7,
	}
	cfg.Workers = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if s1, s8 := seq.Summary(), par.Summary(); s1 != s8 {
		t.Errorf("summaries differ between Workers=1 and Workers=8:\n--- 1:\n%s\n--- 8:\n%s", s1, s8)
	}
	// ExploreWall is the one run-dependent InstrReport field (rendered only
	// by TimingTable); pin it before comparing.
	for _, r := range append(append([]*InstrReport(nil), seq.Reports...), par.Reports...) {
		r.ExploreWall = 0
	}
	if !reflect.DeepEqual(seq.Reports, par.Reports) {
		t.Error("per-instruction reports differ across worker counts")
	}
	if !reflect.DeepEqual(seq.RootCauses, par.RootCauses) {
		t.Error("root-cause clustering differs across worker counts")
	}
	if seq.TotalPaths != par.TotalPaths || seq.TotalTests != par.TotalTests ||
		seq.LoFiDiffTests != par.LoFiDiffTests || seq.HiFiDiffTests != par.HiFiDiffTests {
		t.Errorf("headline counts differ: %d/%d/%d/%d vs %d/%d/%d/%d",
			seq.TotalPaths, seq.TotalTests, seq.LoFiDiffTests, seq.HiFiDiffTests,
			par.TotalPaths, par.TotalTests, par.LoFiDiffTests, par.HiFiDiffTests)
	}
	if len(seq.Differences) != len(par.Differences) {
		t.Fatalf("difference lists: %d vs %d", len(seq.Differences), len(par.Differences))
	}
	for i := range seq.Differences {
		if !reflect.DeepEqual(seq.Differences[i], par.Differences[i]) {
			t.Errorf("difference %d diverges across worker counts", i)
			break
		}
	}
}

// TestFastPathDeterminism: the Lo-Fi direct-dispatch fast path is a pure
// execution-speed knob — the campaign report must be byte-identical with it
// on (the default) and off, at any worker count. The solver configuration is
// held fixed, so any drift here is a fast-path semantics bug, not a model
// change.
func TestFastPathDeterminism(t *testing.T) {
	cfg := Config{
		MaxPathsPerInstr: 24,
		Handlers:         []string{"push_r", "leave", "add_rmv_rv", "shl_rmv_imm8"},
		Seed:             7,
	}
	cfg.Workers = 1
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoFastPath = true
	cfg.Workers = 8
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sf, ss := fast.Summary(), slow.Summary(); sf != ss {
		t.Errorf("summaries differ between fast and slow dispatch:\n--- fast:\n%s\n--- slow:\n%s", sf, ss)
	}
	for _, r := range append(append([]*InstrReport(nil), fast.Reports...), slow.Reports...) {
		r.ExploreWall = 0
	}
	if !reflect.DeepEqual(fast.Reports, slow.Reports) {
		t.Error("per-instruction reports differ between fast and slow dispatch")
	}
	if !reflect.DeepEqual(fast.RootCauses, slow.RootCauses) {
		t.Error("root-cause clustering differs between fast and slow dispatch")
	}
	if !reflect.DeepEqual(fast.Differences, slow.Differences) {
		t.Error("difference lists diverge between fast and slow dispatch")
	}
}

// TestSolverBatchDeterminism: batching only changes which model the solver
// returns for satisfiable queries, never satisfiability itself — so a
// batched and an unbatched campaign must agree on every verdict-level
// headline even when the concrete test programs differ. The per-test
// artifacts are allowed to drift (that is why the corpus key carries the
// solver label); the divergence findings are not.
func TestSolverBatchDeterminism(t *testing.T) {
	cfg := Config{
		MaxPathsPerInstr: 24,
		Handlers:         []string{"push_r", "leave", "add_rmv_rv", "shl_rmv_imm8"},
		Seed:             7,
		Workers:          4,
	}
	batched, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoSolverBatch = true
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batched.TotalPaths != plain.TotalPaths {
		t.Errorf("path counts differ: batched %d, plain %d", batched.TotalPaths, plain.TotalPaths)
	}
	causes := func(r *Result) map[string]bool {
		m := make(map[string]bool)
		for c := range r.RootCauses {
			m[c] = true
		}
		return m
	}
	if !reflect.DeepEqual(causes(batched), causes(plain)) {
		t.Errorf("root-cause sets differ: batched %v, plain %v", causes(batched), causes(plain))
	}
}
