package campaign

import (
	"testing"

	"pokeemu/internal/core"
	"pokeemu/internal/diff"
	"pokeemu/internal/harness"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// TestReverseLifting exercises the opposite lifting direction the paper
// proposes in Section 7: explore the *hardware* semantics and use the
// lifted tests to evaluate the Hi-Fi emulator. The far-pointer fetch-order
// quirk of the Bochs-like emulator must surface from this direction too.
func TestReverseLifting(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	opts := symex.DefaultOptions()
	opts.MaxPaths = 256
	ex, err := core.NewExplorerWithConfig(opts, sem.HardwareConfig)
	if err != nil {
		t.Fatal(err)
	}
	var target *core.UniqueInstr
	for _, u := range core.ExploreInstructionSet().Unique {
		if u.Key() == "lfs" {
			target = u
			break
		}
	}
	if target == nil {
		t.Fatal("lfs not found")
	}
	res, err := ex.ExploreState(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) == 0 {
		t.Fatal("no paths explored from the hardware side")
	}

	boot := testgen.BaselineInit()
	fiF := harness.FidelisFactory()
	hwF := harness.HardwareFactory()
	found := false
	ran := 0
	for _, tc := range res.Tests {
		p, err := testgen.Build(tc)
		if err != nil || !testgen.Verify(p, ex.Image()) {
			continue
		}
		ran++
		fi := harness.RunBoot(fiF, ex.Image(), boot, p.Code, 0)
		hw := harness.RunBoot(hwF, ex.Image(), boot, p.Code, 0)
		ds := diff.Compare(hw.Snapshot, fi.Snapshot, diff.UndefFilterFor(tc.Handler))
		if len(ds) == 0 {
			continue
		}
		d := &diff.Difference{Handler: tc.Handler, Mnemonic: tc.Mnemonic,
			ImplA: "hardware", ImplB: "fidelis", Fields: ds}
		if diff.RootCause(d) == "far load: operand fetch order" {
			found = true
		}
	}
	if ran == 0 {
		t.Fatal("no reverse-lifted tests ran")
	}
	if !found {
		t.Errorf("reverse lifting across %d tests did not surface the Hi-Fi fetch-order quirk", ran)
	}
	t.Logf("reverse lifting: %d paths, %d tests run, fetch-order quirk found=%v",
		len(res.Tests), ran, found)
}

// TestForwardAndReverseAgreeOnDefinedBehavior: for a fully defined
// instruction, lifting from either side must produce tests on which the
// Hi-Fi emulator and the hardware agree.
func TestForwardAndReverseAgreeOnDefinedBehavior(t *testing.T) {
	opts := symex.DefaultOptions()
	opts.MaxPaths = 64
	for _, cfg := range []sem.Config{sem.BochsConfig, sem.HardwareConfig} {
		ex, err := core.NewExplorerWithConfig(opts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := x86.Decode(append([]byte{0x01, 0xd8},
			make([]byte, 13)...)) // add %ebx, %eax
		if err != nil {
			t.Fatal(err)
		}
		u := &core.UniqueInstr{Spec: inst.Spec, OpSize: 32, Repr: []byte{0x01, 0xd8}}
		res, err := ex.ExploreState(u)
		if err != nil {
			t.Fatal(err)
		}
		boot := testgen.BaselineInit()
		for _, tc := range res.Tests {
			p, err := testgen.Build(tc)
			if err != nil {
				continue
			}
			fi := harness.RunBoot(harness.FidelisFactory(), ex.Image(), boot, p.Code, 0)
			hw := harness.RunBoot(harness.HardwareFactory(), ex.Image(), boot, p.Code, 0)
			ds := diff.Compare(hw.Snapshot, fi.Snapshot, diff.UndefFilterFor(tc.Handler))
			if len(ds) != 0 {
				t.Errorf("defined instruction differs on a lifted test: %v", ds)
			}
		}
	}
}
