package campaign

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSummaryGolden pins the rendered campaign report byte for byte. The
// report is a deterministic function of the Config, so any drift — path
// counts, diff counts, clustering, formatting — shows up as a golden
// mismatch. Regenerate intentionally with: go test ./internal/campaign
// -run TestSummaryGolden -update
func TestSummaryGolden(t *testing.T) {
	res, err := Run(Config{
		MaxPathsPerInstr: 24,
		Handlers:         []string{"push_r", "leave", "add_rmv_rv"},
		Seed:             1,
		Workers:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "summary.golden"), []byte(res.Summary()))
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != string(got) {
		t.Errorf("output differs from %s (run with -update to regenerate):\n--- want:\n%s\n--- got:\n%s",
			path, want, got)
	}
}
