package campaign

// Chaos harness: every fault point the campaign engine crosses is armed in
// turn (corpus read/write EIO, solver decision timeout, worker crash in
// both fan-out stages, stage deadline), and each armed campaign must
// terminate with an accurate degraded ledger — no hang, no escaped panic,
// no silently shortened report — and render a byte-identical Summary for
// Workers=1 and Workers=8. That last property is the whole point of the
// seed-deterministic fault registry: keyed fault decisions are a pure
// function of unit identity, so degradation commutes with scheduling
// exactly like healthy results do.

import (
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"pokeemu/internal/corpus"
	"pokeemu/internal/faults"
)

var chaosSeeds = flag.Int("chaos-seeds", 3,
	"fault-plan seeds swept by TestChaosSeedSweep (EXPERIMENTS.md E12 uses 100)")

// chaosCase is one row of the chaos matrix.
type chaosCase struct {
	name string
	spec string // fault plan; "" = config-only chaos (stage deadline)

	handlers       []string
	prewarm        []string // handlers cached healthily first; nil = open the corpus only
	noCorpus       bool     // run without a corpus at all
	exploreWorkers int
	stageTimeout   time.Duration
	hybrid         HybridConfig

	check func(t *testing.T, res *Result)
}

func chaosMatrix() []chaosCase {
	return []chaosCase{
		{
			// Transient read errors on a warm corpus: the keyed p=0.6 rule
			// fails a deterministic subset of object reads three attempts
			// deep; every failure degrades to a recompute, never to a
			// short report.
			name:     "corpus-read-eio",
			spec:     "seed=1;corpus.read:p=0.6:err=EIO",
			handlers: []string{"push_r", "leave"},
			prewarm:  []string{"push_r", "leave"},
			check: func(t *testing.T, res *Result) {
				if res.Degraded.CorpusReads == 0 {
					t.Error("no corpus reads degraded under p=0.6 EIO")
				}
				if res.ExploredInstrs != 2 || res.InstrFaults != 0 {
					t.Errorf("explored %d instrs with %d faults, want 2 with 0 (reads must degrade to recomputes)",
						res.ExploredInstrs, res.InstrFaults)
				}
				if res.TotalTests == 0 {
					t.Error("report silently lost every test")
				}
				if !strings.Contains(res.Summary(), ReasonCorpusRead) {
					t.Error("summary omits the corpus-read degradation reason")
				}
			},
		},
		{
			// Every corpus write fails: the campaign still finishes from
			// its in-memory results, and each of the three lost entries
			// (descriptor summary + two instruction entries) is ledgered.
			// This pins the silent-drop fix: these Put errors used to be
			// discarded with `_ =`.
			name:     "corpus-write-lost",
			spec:     "corpus.write:p=1:err",
			handlers: []string{"push_r", "leave"},
			prewarm:  nil, // VERSION must exist before arming, nothing else
			check: func(t *testing.T, res *Result) {
				if res.Degraded.CorpusWrites != 3 {
					t.Errorf("Degraded.CorpusWrites = %d, want 3 (summary + 2 instr entries)",
						res.Degraded.CorpusWrites)
				}
				if res.Cache.WriteFailures != 3 {
					t.Errorf("Cache.WriteFailures = %d, want 3", res.Cache.WriteFailures)
				}
				if res.TotalTests == 0 {
					t.Error("campaign lost its in-memory tests to cache-write failures")
				}
				if got := res.Degraded.Reasons[ReasonCorpusWrite]; got != 3 {
					t.Errorf("reason %q counted %d times, want 3", ReasonCorpusWrite, got)
				}
			},
		},
		{
			// A decision-procedure timeout on the 5th solver query of the
			// (single) cold instruction: the panic rides the worker's
			// isolation into one instruction fault.
			name:           "solver-timeout",
			spec:           "solver.query:n=5:err=decision timeout",
			handlers:       []string{"leave"},
			prewarm:        []string{"push_r"}, // summaries cached; leave stays cold
			exploreWorkers: 0,
			check: func(t *testing.T, res *Result) {
				if res.InstrFaults != 1 || res.Degraded.Instrs != 1 {
					t.Errorf("instr faults/degraded = %d/%d, want 1/1", res.InstrFaults, res.Degraded.Instrs)
				}
				if len(res.Faults) != 1 || !strings.Contains(res.Faults[0].Err, "injected: solver.query: decision timeout") {
					t.Errorf("faults = %+v, want one injected solver timeout", res.Faults)
				}
				if res.TotalTests != 0 {
					t.Errorf("TotalTests = %d, want 0 (the only instruction timed out)", res.TotalTests)
				}
			},
		},
		{
			// A keyed 30% of execution workers crash: every lost test is
			// counted, everything else still diffs.
			name:     "exec-worker-panic",
			spec:     "seed=2;campaign.exec:p=0.3:panic=injected worker crash",
			handlers: []string{"push_r"},
			prewarm:  []string{"push_r"},
			check: func(t *testing.T, res *Result) {
				if res.ExecFaults == 0 {
					t.Error("no exec workers crashed under p=0.3")
				}
				if res.Degraded.Execs != res.ExecFaults {
					t.Errorf("Degraded.Execs = %d, ExecFaults = %d; every lost execution must be ledgered",
						res.Degraded.Execs, res.ExecFaults)
				}
				if res.ExecFaults == res.TotalTests {
					t.Error("every test crashed; expected a keyed subset")
				}
				if !strings.Contains(res.Summary(), "injected: campaign.exec: injected worker crash") {
					t.Error("summary omits the injected exec crash")
				}
			},
		},
		{
			// One instruction's exploration worker crashes (key-gated):
			// exactly that instruction degrades, the other ships tests.
			name:     "explore-worker-panic",
			spec:     "campaign.explore:key=leave:panic=injected worker crash",
			handlers: []string{"push_r", "leave"},
			prewarm:  []string{"push_r", "leave"},
			check: func(t *testing.T, res *Result) {
				if res.InstrFaults != 1 || res.Degraded.Instrs != 1 {
					t.Errorf("instr faults/degraded = %d/%d, want 1/1", res.InstrFaults, res.Degraded.Instrs)
				}
				if res.TotalTests == 0 {
					t.Error("healthy instruction lost its tests too")
				}
				if len(res.Faults) != 1 || !strings.Contains(res.Faults[0].Key, "leave") {
					t.Errorf("faults = %+v, want exactly the leave instruction", res.Faults)
				}
			},
		},
		{
			// A keyed half of the hybrid fuzzer's mutation jobs is skipped:
			// the budget is still fully spent, every skip lands in the
			// degraded ledger under the fixed reason, and the degraded
			// hybrid summary stays byte-identical across worker counts.
			name:     "hybrid-mutate-skip",
			spec:     "seed=3;hybrid.mutate:p=0.5:err",
			handlers: []string{"push_r"},
			prewarm:  []string{"push_r"},
			hybrid:   HybridConfig{Budget: 24},
			check: func(t *testing.T, res *Result) {
				if !res.HybridUsed {
					t.Fatal("hybrid stage did not run")
				}
				st := res.HybridStats
				if st.Execs != 24 {
					t.Errorf("hybrid spent %d execs, want the full budget 24", st.Execs)
				}
				if st.Skipped == 0 {
					t.Error("no mutation jobs skipped under p=0.5")
				}
				if st.Skipped == st.Execs {
					t.Error("every mutation skipped; expected a keyed subset")
				}
				if res.Degraded.HybridExecs != st.Skipped {
					t.Errorf("Degraded.HybridExecs = %d, Skipped = %d; every lost job must be ledgered",
						res.Degraded.HybridExecs, st.Skipped)
				}
				if got := res.Degraded.Reasons[ReasonHybridMutate]; got != st.Skipped {
					t.Errorf("reason %q counted %d times, want %d", ReasonHybridMutate, got, st.Skipped)
				}
				if !strings.Contains(res.Summary(), ", hybrid ") {
					t.Error("degraded summary omits the hybrid count")
				}
			},
		},
		{
			// Stage deadline in the past: every unit is skipped, every
			// skip is ledgered, and the campaign still terminates with a
			// complete (if empty) report instead of hanging or erroring.
			name:         "stage-deadline",
			handlers:     []string{"push_r", "leave"},
			prewarm:      []string{"push_r", "leave"},
			stageTimeout: time.Nanosecond,
			check: func(t *testing.T, res *Result) {
				if res.Degraded.Instrs != 2 {
					t.Errorf("Degraded.Instrs = %d, want 2 (all units skipped)", res.Degraded.Instrs)
				}
				if res.TotalTests != 0 {
					t.Errorf("TotalTests = %d, want 0", res.TotalTests)
				}
				for _, rep := range res.Reports {
					if rep.Fault != ReasonStageDeadline {
						t.Errorf("report %s fault = %q, want %q", rep.Key, rep.Fault, ReasonStageDeadline)
					}
				}
				if got := res.Degraded.Reasons[ReasonStageDeadline]; got != 2 {
					t.Errorf("reason %q counted %d times, want 2", ReasonStageDeadline, got)
				}
			},
		},
	}
}

// runChaosCase prepares a fresh corpus (prewarmed healthily), arms the
// case's fault plan, and runs the campaign at the given worker count. The
// fresh-directory-per-run discipline is what makes the Workers=1 and
// Workers=8 summaries comparable: both start from byte-identical corpus
// state, so any summary divergence is a scheduling leak.
func runChaosCase(t *testing.T, tc chaosCase, workers int) *Result {
	t.Helper()
	faults.Disarm()
	cfg := Config{
		MaxPathsPerInstr: 8,
		Handlers:         tc.handlers,
		Seed:             1,
		Workers:          workers,
		ExploreWorkers:   tc.exploreWorkers,
		StageTimeout:     tc.stageTimeout,
		Hybrid:           tc.hybrid,
	}
	if !tc.noCorpus {
		dir := t.TempDir()
		cfg.CorpusDir = dir
		if tc.prewarm != nil {
			pre := cfg
			pre.Handlers = tc.prewarm
			pre.StageTimeout = 0
			// Prewarm only the symex pipeline: a cached hybrid stage would
			// let the armed run replay it and dodge the fault entirely.
			pre.Hybrid = HybridConfig{}
			if _, err := Run(pre); err != nil {
				t.Fatalf("prewarm: %v", err)
			}
		} else if _, err := corpus.Open(dir); err != nil {
			t.Fatalf("corpus open: %v", err)
		}
	}
	if tc.spec != "" {
		if _, err := faults.ArmSpec(tc.spec); err != nil {
			t.Fatalf("arming %q: %v", tc.spec, err)
		}
	}
	defer faults.Disarm()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos campaign errored instead of degrading: %v", err)
	}
	return res
}

// TestChaosMatrix drives every fault point and asserts the two acceptance
// properties per case: the degraded ledger is accurate (case-specific
// checks), and the rendered Summary is byte-identical for Workers=1 vs 8.
func TestChaosMatrix(t *testing.T) {
	t.Cleanup(faults.Disarm)
	for _, tc := range chaosMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			var sums [2]string
			for i, workers := range []int{1, 8} {
				res := runChaosCase(t, tc, workers)
				tc.check(t, res)
				sums[i] = res.Summary()
			}
			if sums[0] != sums[1] {
				t.Errorf("degraded summaries differ between Workers=1 and Workers=8:\n--- 1 worker:\n%s\n--- 8 workers:\n%s",
					sums[0], sums[1])
			}
		})
	}
}

// TestChaosSeedSweep reruns a crash-heavy fault plan across -chaos-seeds
// plan seeds, requiring a byte-identical degraded summary for Workers=1 vs
// Workers=5 at every seed (EXPERIMENTS.md E12 runs this at 100 seeds via
// `make chaos-full`). The corpus is prewarmed once and only read afterward
// — crashed workers panic before any write — so every armed run starts
// from identical corpus state.
func TestChaosSeedSweep(t *testing.T) {
	t.Cleanup(faults.Disarm)
	faults.Disarm()
	dir := t.TempDir()
	base := Config{
		MaxPathsPerInstr: 8,
		Handlers:         []string{"push_r", "leave"},
		Seed:             1,
		CorpusDir:        dir,
	}
	if _, err := Run(base); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	degradedTotal := 0
	for seed := 1; seed <= *chaosSeeds; seed++ {
		spec := fmt.Sprintf(
			"seed=%d;campaign.explore:p=0.25:panic=injected worker crash;campaign.exec:p=0.25:panic=injected worker crash",
			seed)
		var sums [2]string
		for i, workers := range []int{1, 5} {
			if _, err := faults.ArmSpec(spec); err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Workers = workers
			res, err := Run(cfg)
			faults.Disarm()
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if res.Degraded.Total() != res.Degraded.Instrs+res.Degraded.Execs {
				t.Fatalf("seed %d: unexpected non-crash degradation: %+v", seed, res.Degraded)
			}
			sums[i] = res.Summary()
			degradedTotal += res.Degraded.Total()
		}
		if sums[0] != sums[1] {
			t.Errorf("seed %d: summaries differ between Workers=1 and Workers=5:\n--- 1 worker:\n%s\n--- 5 workers:\n%s",
				seed, sums[0], sums[1])
		}
	}
	if degradedTotal == 0 {
		t.Errorf("no degradation across %d fault-plan seeds; the sweep is vacuous", *chaosSeeds)
	}
}

// TestChaosSummaryGolden pins the degraded report format byte for byte: a
// campaign that loses an instruction to a crash and every corpus write to
// EIO must render exactly this summary, with the degraded section after
// the fault list. The healthy-run golden (testdata/summary.golden, which
// predates fault injection) doubles as proof that an empty ledger renders
// nothing.
func TestChaosSummaryGolden(t *testing.T) {
	t.Cleanup(faults.Disarm)
	faults.Disarm()
	dir := t.TempDir()
	if _, err := corpus.Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.ArmSpec("corpus.write:p=1:err;campaign.explore:key=leave:panic=injected worker crash"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	res, err := Run(Config{
		MaxPathsPerInstr: 8,
		Handlers:         []string{"push_r", "leave"},
		Seed:             1,
		Workers:          4,
		CorpusDir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "testdata/summary_degraded.golden", []byte(res.Summary()))
}
