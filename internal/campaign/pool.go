package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// runPool executes n index-addressed tasks over a bounded pool of workers
// and isolates panics: a task that panics is recorded (per index) instead of
// killing the campaign, so one crashing handler costs one fault result, not
// the whole run.
//
// Cancellation: once ctx is done, workers stop pulling new indices and
// drain; tasks already in flight run to completion. Unstarted indices keep
// their zero-value slots and ran[i]==false, so the caller can either abort
// (parent cancellation) or degrade gracefully (stage deadline), counting
// exactly which units were skipped.
//
// The determinism contract: tasks communicate results only through
// caller-owned, index-disjoint slots, and the caller merges them in index
// order afterward. Task scheduling order is therefore unobservable, which is
// what makes the final Result byte-identical for any worker count.
func runPool(ctx context.Context, workers, n int, task func(i int)) (faults []string, ran []bool) {
	faults = make([]string, n)
	ran = make([]bool, n)
	if n == 0 {
		return faults, ran
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	run := func(i int) {
		ran[i] = true
		defer func() {
			if r := recover(); r != nil {
				// Record the panic value only (stack traces contain
				// addresses, which would break report determinism).
				faults[i] = fmt.Sprintf("panic: %v", r)
			}
		}()
		task(i)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return faults, ran
}
