package diff

import (
	"fmt"
	"sort"
	"strings"

	"pokeemu/internal/machine"
)

// Voted-verdict classes. A two-way diff can only say "these disagree"; with
// three or more independent implementations the majority pinpoints WHICH one
// is wrong, turning a divergence into a blame assignment.
const (
	// VerdictAgree: every implementation produced the same filtered state.
	VerdictAgree = "agree"
	// VerdictMajority: all but the outliers agree; the majority state is
	// taken as ground truth and the outliers are blamed.
	VerdictMajority = "majority"
	// VerdictSplit: no strict majority — e.g. a 3-way split where every
	// implementation disagrees with every other. Surfaced as its own class
	// because no single emulator can be blamed without an external oracle.
	VerdictSplit = "split"
)

// VoteRun is one implementation's final state, as input to Vote.
type VoteRun struct {
	Impl string
	Snap *machine.Snapshot
}

// Verdict is the outcome of an N-way vote over final states.
type Verdict struct {
	// Class is VerdictAgree, VerdictMajority, or VerdictSplit.
	Class string
	// Groups are the equivalence classes of implementation names, largest
	// first (ties broken by input order of the first member). Implementations
	// within a group produced identical filtered states.
	Groups [][]string
	// Outliers names the blamed implementations when Class is
	// VerdictMajority: every implementation outside the majority group.
	Outliers []string
	// Fields are the differences between the first outlier and a majority
	// representative (Class VerdictMajority), or between the first two groups
	// (Class VerdictSplit). Empty on agreement.
	Fields []FieldDiff
}

// Vote partitions the runs into equivalence classes under the filtered
// state comparison and classifies the partition. The partition is built
// deterministically from input order, so verdicts are stable for a fixed
// run ordering regardless of scheduling.
func Vote(runs []VoteRun, f Filter) *Verdict {
	if len(runs) == 0 {
		return &Verdict{Class: VerdictAgree}
	}
	// reps[i] indexes the run representing equivalence class i.
	var reps []int
	groups := [][]string{}
	for i, r := range runs {
		placed := false
		for g, rep := range reps {
			if len(Compare(runs[rep].Snap, r.Snap, f)) == 0 {
				groups[g] = append(groups[g], r.Impl)
				placed = true
				break
			}
		}
		if !placed {
			reps = append(reps, i)
			groups = append(groups, []string{r.Impl})
		}
	}

	// Order groups largest-first; stable sort keeps input order among ties.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(groups[order[a]]) > len(groups[order[b]])
	})
	sortedGroups := make([][]string, len(groups))
	sortedReps := make([]int, len(groups))
	for i, g := range order {
		sortedGroups[i] = groups[g]
		sortedReps[i] = reps[g]
	}

	v := &Verdict{Groups: sortedGroups}
	switch {
	case len(sortedGroups) == 1:
		v.Class = VerdictAgree
	case len(sortedGroups[0])*2 > len(runs):
		v.Class = VerdictMajority
		for _, g := range sortedGroups[1:] {
			v.Outliers = append(v.Outliers, g...)
		}
		v.Fields = Compare(runs[sortedReps[1]].Snap, runs[sortedReps[0]].Snap, f)
	default:
		v.Class = VerdictSplit
		v.Fields = Compare(runs[sortedReps[0]].Snap, runs[sortedReps[1]].Snap, f)
	}
	return v
}

// String renders a verdict compactly, e.g.
// "majority: celer vs {fidelis,lento}" or "split: {fidelis}|{celer}|{lento}".
func (v *Verdict) String() string {
	switch v.Class {
	case VerdictAgree:
		return VerdictAgree
	case VerdictMajority:
		return fmt.Sprintf("majority: %s vs {%s}",
			strings.Join(v.Outliers, ","), strings.Join(v.Groups[0], ","))
	default:
		parts := make([]string, len(v.Groups))
		for i, g := range v.Groups {
			parts[i] = "{" + strings.Join(g, ",") + "}"
		}
		return "split: " + strings.Join(parts, "|")
	}
}
