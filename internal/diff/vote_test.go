package diff

import (
	"reflect"
	"testing"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// voteSnaps builds n baseline snapshots, mutated by the given functions
// (nil = untouched baseline).
func voteSnaps(muts ...func(m *machine.Machine)) []*machine.Snapshot {
	img := machine.BaselineImage()
	out := make([]*machine.Snapshot, len(muts))
	for i, mut := range muts {
		m := machine.NewBaseline(img)
		if mut != nil {
			mut(m)
		}
		out[i] = m.Snapshot(nil)
	}
	return out
}

func TestVoteAgree(t *testing.T) {
	s := voteSnaps(nil, nil, nil)
	v := Vote([]VoteRun{
		{Impl: "fidelis", Snap: s[0]},
		{Impl: "celer", Snap: s[1]},
		{Impl: "lento", Snap: s[2]},
	}, Filter{})
	if v.Class != VerdictAgree {
		t.Fatalf("class = %q, want agree", v.Class)
	}
	if len(v.Groups) != 1 || len(v.Groups[0]) != 3 {
		t.Errorf("groups = %v, want one group of three", v.Groups)
	}
	if len(v.Outliers) != 0 || len(v.Fields) != 0 {
		t.Errorf("agree verdict carries outliers %v / fields %v", v.Outliers, v.Fields)
	}
	if v.String() != "agree" {
		t.Errorf("String() = %q", v.String())
	}
}

func TestVoteMajorityBlamesOutlier(t *testing.T) {
	s := voteSnaps(nil, func(m *machine.Machine) { m.GPR[x86.EAX] = 7 }, nil)
	v := Vote([]VoteRun{
		{Impl: "fidelis", Snap: s[0]},
		{Impl: "celer", Snap: s[1]},
		{Impl: "lento", Snap: s[2]},
	}, Filter{})
	if v.Class != VerdictMajority {
		t.Fatalf("class = %q, want majority", v.Class)
	}
	if !reflect.DeepEqual(v.Outliers, []string{"celer"}) {
		t.Errorf("outliers = %v, want [celer]", v.Outliers)
	}
	if !reflect.DeepEqual(v.Groups[0], []string{"fidelis", "lento"}) {
		t.Errorf("majority group = %v, want [fidelis lento]", v.Groups[0])
	}
	if len(v.Fields) != 1 || v.Fields[0].Field != "eax" {
		t.Errorf("fields = %v, want the eax delta", v.Fields)
	}
	if got := v.String(); got != "majority: celer vs {fidelis,lento}" {
		t.Errorf("String() = %q", got)
	}
}

// The majority group leads even when the outlier comes first in input
// order — the partition is about sizes, not positions.
func TestVoteMajorityOutlierFirst(t *testing.T) {
	s := voteSnaps(func(m *machine.Machine) { m.EIP = 0x1234 }, nil, nil)
	v := Vote([]VoteRun{
		{Impl: "fidelis", Snap: s[0]},
		{Impl: "celer", Snap: s[1]},
		{Impl: "lento", Snap: s[2]},
	}, Filter{})
	if v.Class != VerdictMajority {
		t.Fatalf("class = %q, want majority", v.Class)
	}
	if !reflect.DeepEqual(v.Outliers, []string{"fidelis"}) {
		t.Errorf("outliers = %v, want [fidelis]", v.Outliers)
	}
	if !reflect.DeepEqual(v.Groups[0], []string{"celer", "lento"}) {
		t.Errorf("majority group = %v", v.Groups[0])
	}
}

func TestVoteThreeWaySplit(t *testing.T) {
	s := voteSnaps(
		func(m *machine.Machine) { m.GPR[x86.EAX] = 1 },
		func(m *machine.Machine) { m.GPR[x86.EAX] = 2 },
		func(m *machine.Machine) { m.GPR[x86.EAX] = 3 },
	)
	v := Vote([]VoteRun{
		{Impl: "fidelis", Snap: s[0]},
		{Impl: "celer", Snap: s[1]},
		{Impl: "lento", Snap: s[2]},
	}, Filter{})
	if v.Class != VerdictSplit {
		t.Fatalf("class = %q, want split", v.Class)
	}
	if len(v.Groups) != 3 {
		t.Fatalf("groups = %v, want three singletons", v.Groups)
	}
	if len(v.Outliers) != 0 {
		t.Errorf("split verdict names outliers %v; no single emulator is blamable", v.Outliers)
	}
	if len(v.Fields) == 0 {
		t.Error("split verdict carries no field delta")
	}
	if got := v.String(); got != "split: {fidelis}|{celer}|{lento}" {
		t.Errorf("String() = %q", got)
	}
}

// A filtered difference must not split the vote: if the only delta is an
// architecturally-undefined flag, the implementations agree.
func TestVoteFilterApplies(t *testing.T) {
	s := voteSnaps(nil, func(m *machine.Machine) { m.EFLAGS |= 1 << x86.FlagAF }, nil)
	runs := []VoteRun{
		{Impl: "fidelis", Snap: s[0]},
		{Impl: "celer", Snap: s[1]},
		{Impl: "lento", Snap: s[2]},
	}
	if v := Vote(runs, Filter{}); v.Class != VerdictMajority {
		t.Errorf("unfiltered class = %q, want majority", v.Class)
	}
	if v := Vote(runs, Filter{EFLAGSMask: 1 << x86.FlagAF}); v.Class != VerdictAgree {
		t.Errorf("filtered class = %q, want agree", v.Class)
	}
}

func TestVoteDegenerateInputs(t *testing.T) {
	if v := Vote(nil, Filter{}); v.Class != VerdictAgree {
		t.Errorf("empty vote class = %q, want agree", v.Class)
	}
	s := voteSnaps(nil)
	if v := Vote([]VoteRun{{Impl: "fidelis", Snap: s[0]}}, Filter{}); v.Class != VerdictAgree {
		t.Errorf("single-run vote class = %q, want agree", v.Class)
	}
	// Two runs that disagree have no majority: {1,1} is a split.
	s2 := voteSnaps(nil, func(m *machine.Machine) { m.GPR[x86.EBX] = 9 })
	v := Vote([]VoteRun{
		{Impl: "fidelis", Snap: s2[0]},
		{Impl: "celer", Snap: s2[1]},
	}, Filter{})
	if v.Class != VerdictSplit {
		t.Errorf("two-way disagreement class = %q, want split", v.Class)
	}
}

// Five-way vote: a 3-vs-2 partition is a majority blaming both members of
// the minority group.
func TestVoteFiveWayMajority(t *testing.T) {
	bad := func(m *machine.Machine) { m.GPR[x86.ECX] = 0xdead }
	s := voteSnaps(nil, bad, nil, bad, nil)
	v := Vote([]VoteRun{
		{Impl: "a", Snap: s[0]},
		{Impl: "b", Snap: s[1]},
		{Impl: "c", Snap: s[2]},
		{Impl: "d", Snap: s[3]},
		{Impl: "e", Snap: s[4]},
	}, Filter{})
	if v.Class != VerdictMajority {
		t.Fatalf("class = %q, want majority", v.Class)
	}
	if !reflect.DeepEqual(v.Outliers, []string{"b", "d"}) {
		t.Errorf("outliers = %v, want [b d]", v.Outliers)
	}
	// 2-2-1 has no strict majority.
	s2 := voteSnaps(nil, bad, nil, bad, func(m *machine.Machine) { m.EIP = 5 })
	v2 := Vote([]VoteRun{
		{Impl: "a", Snap: s2[0]},
		{Impl: "b", Snap: s2[1]},
		{Impl: "c", Snap: s2[2]},
		{Impl: "d", Snap: s2[3]},
		{Impl: "e", Snap: s2[4]},
	}, Filter{})
	if v2.Class != VerdictSplit {
		t.Errorf("2-2-1 class = %q, want split", v2.Class)
	}
}
