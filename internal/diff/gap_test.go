package diff

import (
	"strings"
	"testing"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// TestFlagOnlyBoundaryDivergence: a divergence confined to OF and CF at the
// signed-overflow boundary (0x7fffffff + 1) — the shape celer's count>1
// shift bug and equivcheck's flag counterexamples produce. It must compare
// as a single eflags field, classify as undefined status flags, and vanish
// under the shift filter that masks OF.
func TestFlagOnlyBoundaryDivergence(t *testing.T) {
	img := machine.BaselineImage()
	ma := machine.NewBaseline(img)
	mb := machine.NewBaseline(img)
	// Both sides computed 0x7fffffff+1; one sets OF (signed overflow), the
	// other left it stale — and they also disagree on CF.
	ma.GPR[x86.EAX] = 0x80000000
	mb.GPR[x86.EAX] = 0x80000000
	ma.EFLAGS |= 1 << x86.FlagOF
	mb.EFLAGS |= 1 << x86.FlagCF

	ds := Compare(ma.Snapshot(nil), mb.Snapshot(nil), Filter{})
	if len(ds) != 1 || ds[0].Field != "eflags" {
		t.Fatalf("diffs = %v, want only eflags", ds)
	}
	d := &Difference{TestID: "t", Handler: "shl_rmv_imm8", Mnemonic: "shl", Fields: ds}
	if got := RootCause(d); got != "undefined status flags" {
		t.Errorf("RootCause = %q, want undefined status flags", got)
	}
	if !strings.Contains(d.Signature(), "eflags") {
		t.Errorf("Signature = %q, want an eflags kind", d.Signature())
	}

	// The shift filter masks OF but not CF: the CF half of the divergence
	// must survive filtering.
	shiftFilter := UndefFilterFor("shl_rmv_imm8")
	if shiftFilter.EFLAGSMask&(1<<x86.FlagOF) == 0 {
		t.Fatal("shift filter does not mask OF")
	}
	if ds := Compare(ma.Snapshot(nil), mb.Snapshot(nil), shiftFilter); len(ds) != 1 {
		t.Errorf("OF-masked compare = %v, want the CF delta to survive", ds)
	}
	// Masking both undefined-ish bits removes the divergence entirely.
	both := Filter{EFLAGSMask: 1<<x86.FlagOF | 1<<x86.FlagCF}
	if ds := Compare(ma.Snapshot(nil), mb.Snapshot(nil), both); len(ds) != 0 {
		t.Errorf("fully masked compare = %v, want none", ds)
	}
}

// TestMemoryOnlyDivergence: a divergence confined to plain data memory must
// survive any EFLAGS filter, produce mem[...] fields in address order, and
// cluster under the plain "mem" kind.
func TestMemoryOnlyDivergence(t *testing.T) {
	img := machine.BaselineImage()
	ma := machine.NewBaseline(img)
	mb := machine.NewBaseline(img)
	mb.Mem.Write8(0x300010, 0xaa)
	mb.Mem.Write8(0x300004, 0x55)

	f := UndefFilterFor("div_rm8") // masks every status flag
	ds := Compare(ma.Snapshot(nil), mb.Snapshot(nil), f)
	if len(ds) != 2 {
		t.Fatalf("diffs = %v, want two memory bytes", ds)
	}
	if ds[0].Field != "mem[0x300004]" || ds[1].Field != "mem[0x300010]" {
		t.Errorf("memory fields out of address order: %v", ds)
	}
	d := &Difference{TestID: "t", Handler: "mov_rmv_rv", Mnemonic: "mov", Fields: ds}
	if sig := d.Signature(); sig != "mov|mem" {
		t.Errorf("Signature = %q, want mov|mem", sig)
	}
	if got := RootCause(d); got == "undefined status flags" {
		t.Errorf("memory-only divergence misclassified as %q", got)
	}
}
