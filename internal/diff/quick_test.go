package diff

import (
	"testing"
	"testing/quick"

	"pokeemu/internal/machine"
)

// randomizeCPU applies generated values to a machine's CPU state.
func randomizeCPU(m *machine.Machine, gpr [8]uint32, eflags, cr2 uint32, msr uint64) {
	m.GPR = gpr
	m.EFLAGS = eflags
	m.CR2 = cr2
	m.MSR[3] = msr
}

// TestQuickCompareReflexive: any state compared against itself is clean.
func TestQuickCompareReflexive(t *testing.T) {
	img := machine.BaselineImage()
	f := func(gpr [8]uint32, eflags, cr2 uint32, msr uint64) bool {
		m := machine.NewBaseline(img)
		randomizeCPU(m, gpr, eflags, cr2, msr)
		s := m.Snapshot(nil)
		return len(Compare(s, s, Filter{})) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareSymmetricCount: A-vs-B and B-vs-A find the same number of
// differing fields.
func TestQuickCompareSymmetricCount(t *testing.T) {
	img := machine.BaselineImage()
	f := func(g1, g2 [8]uint32, e1, e2 uint32) bool {
		ma := machine.NewBaseline(img)
		mb := machine.NewBaseline(img)
		randomizeCPU(ma, g1, e1, 0, 0)
		randomizeCPU(mb, g2, e2, 0, 0)
		ab := Compare(ma.Snapshot(nil), mb.Snapshot(nil), Filter{})
		ba := Compare(mb.Snapshot(nil), ma.Snapshot(nil), Filter{})
		return len(ab) == len(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickFilterMonotone: masking more EFLAGS bits never increases the
// number of reported differences.
func TestQuickFilterMonotone(t *testing.T) {
	img := machine.BaselineImage()
	f := func(e1, e2, mask uint32) bool {
		ma := machine.NewBaseline(img)
		mb := machine.NewBaseline(img)
		ma.EFLAGS, mb.EFLAGS = e1, e2
		loose := Compare(ma.Snapshot(nil), mb.Snapshot(nil), Filter{EFLAGSMask: mask})
		strict := Compare(ma.Snapshot(nil), mb.Snapshot(nil), Filter{})
		return len(loose) <= len(strict)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
