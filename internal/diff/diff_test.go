package diff

import (
	"strings"
	"testing"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

func snapPair() (*machine.Snapshot, *machine.Snapshot, *machine.Memory) {
	img := machine.BaselineImage()
	a := machine.NewBaseline(img)
	b := machine.NewBaseline(img)
	return a.Snapshot(nil), b.Snapshot(nil), img
}

func TestCompareIdentical(t *testing.T) {
	a, b, _ := snapPair()
	if ds := Compare(a, b, Filter{}); len(ds) != 0 {
		t.Errorf("identical snapshots differ: %v", ds)
	}
}

func TestCompareRegisterAndMemory(t *testing.T) {
	img := machine.BaselineImage()
	ma := machine.NewBaseline(img)
	mb := machine.NewBaseline(img)
	mb.GPR[x86.EAX] = 7
	mb.Mem.Write8(0x300000, 0x55)
	ds := Compare(ma.Snapshot(nil), mb.Snapshot(nil), Filter{})
	if len(ds) != 2 {
		t.Fatalf("diffs = %v, want eax + one byte", ds)
	}
	if ds[0].Field != "eax" || ds[1].Field != "mem[0x300000]" {
		t.Errorf("fields = %v", ds)
	}
}

func TestCompareEFLAGSFilter(t *testing.T) {
	img := machine.BaselineImage()
	ma := machine.NewBaseline(img)
	mb := machine.NewBaseline(img)
	mb.EFLAGS |= 1 << x86.FlagAF
	// Unfiltered: a diff; with AF masked: none.
	if ds := Compare(ma.Snapshot(nil), mb.Snapshot(nil), Filter{}); len(ds) != 1 {
		t.Errorf("unfiltered: %v", ds)
	}
	f := Filter{EFLAGSMask: 1 << x86.FlagAF}
	if ds := Compare(ma.Snapshot(nil), mb.Snapshot(nil), f); len(ds) != 0 {
		t.Errorf("filtered: %v", ds)
	}
}

func TestCompareExceptionDelta(t *testing.T) {
	img := machine.BaselineImage()
	ma := machine.NewBaseline(img)
	mb := machine.NewBaseline(img)
	exc := &machine.ExceptionInfo{Vector: x86.ExcGP, ErrCode: 0x50, HasErr: true}
	ds := Compare(ma.Snapshot(exc), mb.Snapshot(nil), Filter{})
	kinds := map[string]bool{}
	for _, d := range ds {
		kinds[d.Field] = true
	}
	if !kinds["exc.vector"] || !kinds["exc.err"] {
		t.Errorf("missing exception fields: %v", ds)
	}
}

func TestUndefFilterFor(t *testing.T) {
	cases := []struct {
		handler string
		bit     uint8
		masked  bool
	}{
		{"and_rmv_rv", x86.FlagAF, true},
		{"and_rmv_rv", x86.FlagZF, false},
		{"mul_rmv", x86.FlagSF, true},
		{"mul_rmv", x86.FlagCF, false},
		{"shl_rmv_imm8", x86.FlagOF, true},
		{"div_rmv", x86.FlagZF, true},
		{"add_rmv_rv", x86.FlagAF, false},
		{"add_rm8_imm8_alias", x86.FlagAF, false},
		{"bsf", x86.FlagZF, false},
		{"bsf", x86.FlagCF, true},
	}
	for _, c := range cases {
		f := UndefFilterFor(c.handler)
		got := f.EFLAGSMask&(1<<c.bit) != 0
		if got != c.masked {
			t.Errorf("%s bit %d: masked=%v, want %v", c.handler, c.bit, got, c.masked)
		}
	}
}

func TestSignatureAndCluster(t *testing.T) {
	d1 := &Difference{Mnemonic: "leave", Fields: []FieldDiff{{Field: "esp"}}}
	d2 := &Difference{Mnemonic: "leave", Fields: []FieldDiff{{Field: "esp"}}}
	d3 := &Difference{Mnemonic: "leave", Fields: []FieldDiff{{Field: "ebp"}}}
	if d1.Signature() != d2.Signature() {
		t.Error("same-shape differences must share a signature")
	}
	if d1.Signature() == d3.Signature() {
		t.Error("different shapes must not share a signature")
	}
	clusters := Cluster([]*Difference{d1, d2, d3})
	if len(clusters) != 2 {
		t.Errorf("clusters = %d, want 2", len(clusters))
	}
}

func TestRootCauseClassification(t *testing.T) {
	cases := []struct {
		d    *Difference
		want string
	}{
		{&Difference{Mnemonic: "rdmsr", Fields: []FieldDiff{
			{Field: "exc.vector", A: 13, B: 0xffff}}},
			"rdmsr: missing #GP on invalid MSR"},
		{&Difference{Mnemonic: "leave", Fields: []FieldDiff{{Field: "esp"}}},
			"leave: non-atomic ESP update"},
		{&Difference{Mnemonic: "cmpxchg", Fields: []FieldDiff{{Field: "eax"}}},
			"cmpxchg: accumulator/flags updated before write check"},
		{&Difference{Mnemonic: "iret", Fields: []FieldDiff{{Field: "cr2"}}},
			"iret: stack pop order"},
		{&Difference{Mnemonic: "lfs", Fields: []FieldDiff{
			{Field: "mem[0x3010]"}}}, // inside the page table
			"far load: operand fetch order"},
		{&Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "mem[0x208055]"}}}, // inside the GDT
			"segment load: accessed bit not written back"},
		{&Difference{Mnemonic: "add", Fields: []FieldDiff{
			{Field: "exc.vector", A: 6, B: 0xffff}}},
			"decoder: encoding acceptance difference"},
		{&Difference{Mnemonic: "push", Fields: []FieldDiff{
			{Field: "exc.vector", A: 12, B: 0xffff}}},
			"segmentation: limits/rights not enforced"},
		{&Difference{Mnemonic: "add", Fields: []FieldDiff{{Field: "eflags"}}},
			"undefined status flags"},
		{&Difference{Mnemonic: "add", Fields: []FieldDiff{{Field: "cr2"}}},
			"memory access order across a page boundary"},
	}
	for _, c := range cases {
		if got := RootCause(c.d); got != c.want {
			t.Errorf("%s %v: got %q, want %q", c.d.Mnemonic, c.d.Fields, got, c.want)
		}
	}
}

func TestFieldKindMemoryRegions(t *testing.T) {
	cases := map[string]string{
		"mem[0x208010]": "mem.gdt",
		"mem[0x3010]":   "mem.pt",
		"mem[0x2010]":   "mem.pd",
		"mem[0x300000]": "mem",
		"ss.attr":       "ss.attr",
		"eax":           "eax",
		"msr3":          "msr",
	}
	for field, want := range cases {
		if got := fieldKind(field); got != want {
			t.Errorf("fieldKind(%q) = %q, want %q", field, got, want)
		}
	}
}

func TestFieldDiffString(t *testing.T) {
	f := FieldDiff{Field: "eax", A: 1, B: 2}
	if !strings.Contains(f.String(), "eax") {
		t.Error("rendering misses the field name")
	}
}
