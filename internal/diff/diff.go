// Package diff implements the difference-analysis step (paper Section 6.2):
// final-state comparison between implementations, filters that discard
// differences attributable to architecturally-undefined behavior (the
// paper's filter scripts), clustering of the remaining differences by
// root-cause signature, and human-readable classification.
package diff

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// FieldDiff is a single state component that differs between two runs.
type FieldDiff struct {
	Field string
	A, B  uint64
}

func (f FieldDiff) String() string {
	return fmt.Sprintf("%s: %#x vs %#x", f.Field, f.A, f.B)
}

// Filter removes differences caused by undefined behavior. EFLAGSMask bits
// are ignored in the EFLAGS comparison.
type Filter struct {
	EFLAGSMask uint32
}

// UndefFilterFor builds the undefined-behavior filter for a test whose test
// instruction has the given handler name. This encodes the same knowledge
// as the paper's reused filter scripts: which status flags the architecture
// leaves undefined per instruction class.
func UndefFilterFor(handler string) Filter {
	base := strings.TrimSuffix(handler, "_alias")
	op := base
	if i := strings.IndexByte(base, '_'); i >= 0 {
		op = base[:i]
	}
	var m uint32
	af := uint32(1 << x86.FlagAF)
	of := uint32(1 << x86.FlagOF)
	all := x86.StatusFlags
	switch op {
	case "and", "or", "xor", "test":
		m = af
	case "mul", "imul", "imul1", "imul2", "imul3":
		m = all &^ (1<<x86.FlagCF | 1<<x86.FlagOF)
	case "shl", "shr", "sar", "shld", "shrd":
		m = af | of
	case "rol", "ror", "rcl", "rcr":
		m = of
	case "div", "idiv":
		m = all
	case "bsf", "bsr":
		m = all &^ (1 << x86.FlagZF)
	case "aam", "aad":
		m = 1<<x86.FlagCF | of | af
	}
	return Filter{EFLAGSMask: m}
}

// Compare reports the state components that differ between two snapshots,
// after applying the filter. Memory is compared over the union of pages
// either run touched (both runs start from the same shared image).
func Compare(a, b *machine.Snapshot, f Filter) []FieldDiff {
	var out []FieldDiff
	add := func(field string, av, bv uint64) {
		if av != bv {
			out = append(out, FieldDiff{Field: field, A: av, B: bv})
		}
	}

	for i := 0; i < 8; i++ {
		add(x86.Reg(i).String(), uint64(a.CPU.GPR[i]), uint64(b.CPU.GPR[i]))
	}
	add("eip", uint64(a.CPU.EIP), uint64(b.CPU.EIP))
	maskOut := f.EFLAGSMask
	add("eflags", uint64(a.CPU.EFLAGS&^maskOut), uint64(b.CPU.EFLAGS&^maskOut))
	for s := 0; s < x86.NumSegRegs; s++ {
		sa, sb := a.CPU.Seg[s], b.CPU.Seg[s]
		name := x86.SegReg(s).String()
		add(name+".sel", uint64(sa.Sel), uint64(sb.Sel))
		add(name+".base", uint64(sa.Base), uint64(sb.Base))
		add(name+".limit", uint64(sa.Limit), uint64(sb.Limit))
		add(name+".attr", uint64(sa.Attr), uint64(sb.Attr))
	}
	add("cr0", uint64(a.CPU.CR0), uint64(b.CPU.CR0))
	add("cr2", uint64(a.CPU.CR2), uint64(b.CPU.CR2))
	add("cr3", uint64(a.CPU.CR3), uint64(b.CPU.CR3))
	add("cr4", uint64(a.CPU.CR4), uint64(b.CPU.CR4))
	add("gdtr.base", uint64(a.CPU.GDTRBase), uint64(b.CPU.GDTRBase))
	add("gdtr.limit", uint64(a.CPU.GDTRLimit), uint64(b.CPU.GDTRLimit))
	add("idtr.base", uint64(a.CPU.IDTRBase), uint64(b.CPU.IDTRBase))
	add("idtr.limit", uint64(a.CPU.IDTRLimit), uint64(b.CPU.IDTRLimit))
	for i := range a.CPU.MSR {
		add(fmt.Sprintf("msr%d", i), a.CPU.MSR[i], b.CPU.MSR[i])
	}
	add("halted", boolU(a.CPU.Halted), boolU(b.CPU.Halted))

	// Terminal exception.
	add("exc.vector", excVec(a.Exception), excVec(b.Exception))
	add("exc.err", excErr(a.Exception), excErr(b.Exception))

	// Memory: union of touched pages relative to the shared root.
	rootA, rootB := a.Mem.Root(), b.Mem.Root()
	pages := a.Mem.Touched(rootA)
	for pn := range b.Mem.Touched(rootB) {
		pages[pn] = true
	}
	pns := make([]uint32, 0, len(pages))
	for pn := range pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		base := pn * machine.PageSize
		for off := uint32(0); off < machine.PageSize; off++ {
			av, bv := a.Mem.Read8(base+off), b.Mem.Read8(base+off)
			if av != bv {
				out = append(out, FieldDiff{
					Field: fmt.Sprintf("mem[%#x]", base+off),
					A:     uint64(av), B: uint64(bv),
				})
			}
		}
	}
	return out
}

func boolU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func excVec(e *machine.ExceptionInfo) uint64 {
	if e == nil {
		return 0xffff // "no exception" sentinel distinct from vector 0
	}
	return uint64(e.Vector)
}

func excErr(e *machine.ExceptionInfo) uint64 {
	if e == nil || !e.HasErr {
		return 0xffffffff
	}
	return uint64(e.ErrCode)
}

// Difference is one behavioral difference: a test that produced divergent
// final states on a pair of implementations.
type Difference struct {
	TestID   string
	Handler  string // test instruction handler name
	Mnemonic string
	ImplA    string
	ImplB    string
	Fields   []FieldDiff
}

// Signature produces a stable clustering key: the set of differing field
// kinds (memory collapsed by region) plus the exception delta. Tests that
// diverge the same way land in the same cluster — the paper's root-cause
// grouping.
func (d *Difference) Signature() string {
	kinds := map[string]bool{}
	for _, f := range d.Fields {
		kinds[fieldKind(f.Field)] = true
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	return d.Mnemonic + "|" + strings.Join(names, ",")
}

func fieldKind(field string) string {
	switch {
	case strings.HasPrefix(field, "mem["):
		addr := strings.TrimSuffix(strings.TrimPrefix(field, "mem["), "]")
		a, _ := strconv.ParseUint(addr, 0, 64)
		switch {
		case a >= machine.GDTBase && a < machine.GDTBase+machine.GDTEntries*8:
			return "mem.gdt"
		case a >= machine.PTBase && a < machine.PTBase+machine.PageSize:
			return "mem.pt"
		case a >= machine.PDBase && a < machine.PDBase+machine.PageSize:
			return "mem.pd"
		default:
			return "mem"
		}
	case strings.HasPrefix(field, "msr"):
		return "msr"
	case strings.Contains(field, "."):
		return field[:strings.IndexByte(field, '.')] + "." +
			field[strings.IndexByte(field, '.')+1:]
	default:
		return field
	}
}

// Cluster groups differences by signature.
func Cluster(diffs []*Difference) map[string][]*Difference {
	out := make(map[string][]*Difference)
	for _, d := range diffs {
		out[d.Signature()] = append(out[d.Signature()], d)
	}
	return out
}

// RootCause labels a difference with the most likely cause class, using the
// instruction and the shape of the divergence — the analysis step the paper
// performed on representative tests of each cluster.
func RootCause(d *Difference) string {
	has := func(kind string) bool {
		for _, f := range d.Fields {
			if fieldKind(f.Field) == kind {
				return true
			}
		}
		return false
	}
	pagingTrace := has("cr2") || has("mem.pt") || has("mem.pd")
	excDelta := has("exc.vector")
	op := d.Mnemonic
	switch {
	case isUDDelta(d):
		return "decoder: encoding acceptance difference"
	case op == "rdmsr":
		return "rdmsr: missing #GP on invalid MSR"
	case op == "leave":
		return "leave: non-atomic ESP update"
	case op == "cmpxchg":
		return "cmpxchg: accumulator/flags updated before write check"
	case op == "iret" && pagingTrace:
		return "iret: stack pop order"
	case (op == "lfs" || op == "lgs" || op == "lss" || op == "lds" || op == "les") &&
		pagingTrace:
		return "far load: operand fetch order"
	case has("mem.gdt") && !excDelta:
		return "segment load: accessed bit not written back"
	case excDelta:
		return "segmentation: limits/rights not enforced"
	case onlyEFLAGS(d):
		return "undefined status flags"
	case has("eip") || has("esp") || has("halted"):
		// Control or stack divergence without an exception delta: one side
		// took a fault path the other never checked for.
		return "segmentation: limits/rights not enforced"
	case pagingTrace && !excDelta:
		return "memory access order across a page boundary"
	default:
		return "other: " + d.Signature()
	}
}

func isUDDelta(d *Difference) bool {
	for _, f := range d.Fields {
		if f.Field == "exc.vector" &&
			(f.A == uint64(x86.ExcUD) || f.B == uint64(x86.ExcUD)) {
			return true
		}
	}
	return false
}

func onlyEFLAGS(d *Difference) bool {
	for _, f := range d.Fields {
		if f.Field != "eflags" {
			return false
		}
	}
	return len(d.Fields) > 0
}
