package diff

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// TestRootCauseExceptionVectorOnly pins the classification of deltas whose
// only divergence is the terminal exception: a #UD on either side is a
// decoder acceptance difference regardless of mnemonic, any other vector
// delta is a segmentation-enforcement difference.
func TestRootCauseExceptionVectorOnly(t *testing.T) {
	cases := []struct {
		name string
		d    *Difference
		want string
	}{
		{"ud on side A", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "exc.vector", A: uint64(x86.ExcUD), B: 0xffff}}},
			"decoder: encoding acceptance difference"},
		{"ud on side B", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "exc.vector", A: 0xffff, B: uint64(x86.ExcUD)}}},
			"decoder: encoding acceptance difference"},
		{"gp vs none", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "exc.vector", A: uint64(x86.ExcGP), B: 0xffff}}},
			"segmentation: limits/rights not enforced"},
		{"gp vs pf", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "exc.vector", A: uint64(x86.ExcGP), B: uint64(x86.ExcPF)}}},
			"segmentation: limits/rights not enforced"},
		{"vector with error code", &Difference{Mnemonic: "pop", Fields: []FieldDiff{
			{Field: "exc.vector", A: uint64(x86.ExcSS), B: 0xffff},
			{Field: "exc.err", A: 0x10, B: 0xffffffff}}},
			"segmentation: limits/rights not enforced"},
	}
	for _, c := range cases {
		if got := RootCause(c.d); got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
	}
}

// TestRootCauseMemoryOnly pins the classification of deltas confined to
// memory, which depends entirely on which region the bytes fall in.
func TestRootCauseMemoryOnly(t *testing.T) {
	cases := []struct {
		name string
		d    *Difference
		want string
	}{
		{"page table only", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "mem[0x3040]", A: 1, B: 0}}},
			"memory access order across a page boundary"},
		{"page directory only", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "mem[0x2040]", A: 1, B: 0}}},
			"memory access order across a page boundary"},
		{"gdt only", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "mem[0x208008]", A: 1, B: 0}}},
			"segment load: accessed bit not written back"},
		{"plain memory only", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "mem[0x300000]", A: 1, B: 0}}},
			"other: mov|mem"},
		{"gdt beats paging region", &Difference{Mnemonic: "mov", Fields: []FieldDiff{
			{Field: "mem[0x208008]", A: 1, B: 0},
			{Field: "mem[0x3040]", A: 1, B: 0}}},
			"segment load: accessed bit not written back"},
	}
	for _, c := range cases {
		if got := RootCause(c.d); got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
	}
}

// TestClusterPermutationStability feeds Cluster every ordering of the same
// difference set and requires identical cluster keys and identical per-key
// membership — clustering must depend on the set, not the input order.
func TestClusterPermutationStability(t *testing.T) {
	diffs := []*Difference{
		{TestID: "a#0", Mnemonic: "leave", Fields: []FieldDiff{{Field: "esp"}}},
		{TestID: "a#1", Mnemonic: "leave", Fields: []FieldDiff{{Field: "esp"}}},
		{TestID: "b#0", Mnemonic: "leave", Fields: []FieldDiff{{Field: "ebp"}}},
		{TestID: "c#0", Mnemonic: "mov", Fields: []FieldDiff{{Field: "exc.vector"}}},
	}
	shape := func(clusters map[string][]*Difference) map[string][]string {
		out := make(map[string][]string, len(clusters))
		for sig, ds := range clusters {
			ids := make([]string, 0, len(ds))
			for _, d := range ds {
				ids = append(ids, d.TestID)
			}
			sort.Strings(ids)
			out[sig] = ids
		}
		return out
	}
	want := shape(Cluster(diffs))
	if len(want) != 3 {
		t.Fatalf("clusters = %d, want 3", len(want))
	}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 24; trial++ {
		perm := make([]*Difference, len(diffs))
		for i, j := range rng.Perm(len(diffs)) {
			perm[i] = diffs[j]
		}
		if got := shape(Cluster(perm)); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: clusters changed under permutation:\ngot  %v\nwant %v",
				trial, got, want)
		}
	}
}

// TestCompareFieldOrderDeterministic pins Compare's output ordering: on a
// snapshot pair differing in registers, flags, an exception, and bytes on
// several memory pages, repeated comparisons must produce the identical
// field sequence — the ordering the triage report and golden files rely on.
func TestCompareFieldOrderDeterministic(t *testing.T) {
	img := machine.BaselineImage()
	ma := machine.NewBaseline(img)
	mb := machine.NewBaseline(img)
	mb.GPR[x86.EAX] = 7
	mb.GPR[x86.ESP] -= 4
	mb.EFLAGS |= 1 << x86.FlagCF
	// Bytes on three distinct pages, written in descending address order so
	// a map-iteration bug cannot accidentally present them sorted.
	mb.Mem.Write8(0x305000, 0xaa)
	mb.Mem.Write8(0x300004, 0xbb)
	mb.Mem.Write8(0x208008, 0xcc)
	exc := &machine.ExceptionInfo{Vector: x86.ExcGP, ErrCode: 0x50, HasErr: true}
	sa, sb := ma.Snapshot(nil), mb.Snapshot(exc)

	first := Compare(sa, sb, Filter{})
	if len(first) < 7 {
		t.Fatalf("expected a multi-field delta, got %v", first)
	}
	for i := 0; i < 50; i++ {
		if got := Compare(sa, sb, Filter{}); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: field order changed:\ngot  %v\nwant %v", i, got, first)
		}
	}
	// Memory fields must come last and in ascending address order.
	var memAt []int
	for i, f := range first {
		if len(f.Field) > 4 && f.Field[:4] == "mem[" {
			memAt = append(memAt, i)
		}
	}
	if len(memAt) != 3 {
		t.Fatalf("memory fields = %d, want 3: %v", len(memAt), first)
	}
	if memAt[len(memAt)-1] != len(first)-1 {
		t.Errorf("memory fields are not trailing: %v", first)
	}
	for i := 1; i < len(memAt); i++ {
		if first[memAt[i-1]].Field >= first[memAt[i]].Field {
			t.Errorf("memory fields out of order: %s before %s",
				first[memAt[i-1]].Field, first[memAt[i]].Field)
		}
	}
}
