// Package ir defines the streamlined intermediate representation that
// instruction semantics compile into (the role VEX/Vine play for FuzzBALL).
// A Program is a flat statement list with labeled jumps. The same program is
// executed two ways: concretely by the Hi-Fi emulator and the hardware
// simulator (eval.go), and symbolically by internal/symex — which makes
// "symbolic execution of the Hi-Fi emulator" literal: the paths explored are
// the paths of the very programs the emulator runs.
package ir

import (
	"fmt"
	"strings"

	"pokeemu/internal/expr"
	"pokeemu/internal/x86"
)

// Temp identifies an SSA-ish temporary within one Program.
type Temp uint32

// Operand is either a temporary or an immediate constant.
type Operand struct {
	IsConst bool
	Temp    Temp
	Val     uint64
	Width   uint8
}

// C builds a constant operand.
func C(w uint8, v uint64) Operand {
	return Operand{IsConst: true, Val: v & expr.Mask(w), Width: w}
}

// Kind discriminates statement types.
type Kind uint8

// Statement kinds.
const (
	KAssign Kind = iota // Dst = EOp(Args[:NArgs]); Lo used by extract
	KMove               // Dst = Args[0] (same width)
	KGet                // Dst = machine state at Loc
	KSet                // machine state at Loc = Args[0]
	KLoad               // Dst = physical memory at Args[0], Width bytes
	KStore              // physical memory at Args[0] = Args[1], Width bytes
	KCJump              // if Args[0] (1 bit) goto Target
	KJump               // goto Target
	KRaise              // raise exception Vector; error code Args[0] if HasErr
	KEnd                // normal completion
	KHalt               // hlt: completion with the CPU halted
)

// Stmt is one IR statement. Target holds a label id until Build resolves it
// to a statement index.
type Stmt struct {
	Kind   Kind
	EOp    expr.Op
	Dst    Temp
	Args   [3]Operand
	NArgs  uint8
	Lo     uint8 // extract low bit
	Width  uint8 // KAssign: result bits; KLoad/KStore: bytes (1, 2 or 4)
	Loc    x86.Loc
	Target int
	Vector uint8
	HasErr bool
	Soft   bool // software interrupt (INT n): no error code, EIP advanced
}

// Program is a compiled instruction semantics body.
type Program struct {
	Name       string
	Stmts      []Stmt
	TempWidths []uint8
}

// NumTemps returns the number of temporaries the program uses.
func (p *Program) NumTemps() int { return len(p.TempWidths) }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("0x%x:%d", o.Val, o.Width)
	}
	return fmt.Sprintf("t%d", o.Temp)
}

// String renders the program for debugging.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (%d temps)\n", p.Name, len(p.TempWidths))
	for i, s := range p.Stmts {
		fmt.Fprintf(&b, "%4d: ", i)
		switch s.Kind {
		case KAssign:
			fmt.Fprintf(&b, "t%d = %s", s.Dst, s.EOp)
			for _, a := range s.Args[:s.NArgs] {
				fmt.Fprintf(&b, " %s", a)
			}
			if s.EOp == expr.OpExtract {
				fmt.Fprintf(&b, " [lo=%d w=%d]", s.Lo, s.Width)
			}
		case KMove:
			fmt.Fprintf(&b, "t%d = %s", s.Dst, s.Args[0])
		case KGet:
			fmt.Fprintf(&b, "t%d = get %s", s.Dst, s.Loc)
		case KSet:
			fmt.Fprintf(&b, "set %s = %s", s.Loc, s.Args[0])
		case KLoad:
			fmt.Fprintf(&b, "t%d = load%d [%s]", s.Dst, s.Width, s.Args[0])
		case KStore:
			fmt.Fprintf(&b, "store%d [%s] = %s", s.Width, s.Args[0], s.Args[1])
		case KCJump:
			fmt.Fprintf(&b, "if %s goto %d", s.Args[0], s.Target)
		case KJump:
			fmt.Fprintf(&b, "goto %d", s.Target)
		case KRaise:
			fmt.Fprintf(&b, "raise #%d", s.Vector)
			if s.HasErr {
				fmt.Fprintf(&b, " err=%s", s.Args[0])
			}
			if s.Soft {
				b.WriteString(" soft")
			}
		case KEnd:
			b.WriteString("end")
		case KHalt:
			b.WriteString("halt")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Label identifies a jump target during construction.
type Label int

// Builder incrementally constructs a Program. Value-producing methods return
// Operands so semantics code composes like expressions.
type Builder struct {
	p      *Program
	labels []int // label → stmt index, -1 while unbound
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Program{Name: name}}
}

// NewTemp allocates a fresh temporary of width w bits.
func (b *Builder) NewTemp(w uint8) Operand {
	t := Temp(len(b.p.TempWidths))
	b.p.TempWidths = append(b.p.TempWidths, w)
	return Operand{Temp: t, Width: w}
}

func (b *Builder) emit(s Stmt) {
	b.p.Stmts = append(b.p.Stmts, s)
}

func (b *Builder) widthOf(o Operand) uint8 {
	if o.IsConst {
		return o.Width
	}
	return b.p.TempWidths[o.Temp]
}

// Const builds a constant operand (no statement emitted).
func (b *Builder) Const(w uint8, v uint64) Operand { return C(w, v) }

// Get reads a machine-state location into a fresh temp.
func (b *Builder) Get(loc x86.Loc) Operand {
	d := b.NewTemp(loc.Width())
	b.emit(Stmt{Kind: KGet, Dst: d.Temp, Loc: loc})
	return d
}

// Set writes a machine-state location.
func (b *Builder) Set(loc x86.Loc, v Operand) {
	if b.widthOf(v) != loc.Width() {
		panic(fmt.Sprintf("ir: set %s width %d with %d-bit value", loc, loc.Width(), b.widthOf(v)))
	}
	b.emit(Stmt{Kind: KSet, Loc: loc, Args: [3]Operand{v}, NArgs: 1})
}

// Bin applies a binary operator.
func (b *Builder) Bin(op expr.Op, x, y Operand) Operand {
	wx, wy := b.widthOf(x), b.widthOf(y)
	if wx != wy && op != expr.OpConcat {
		panic(fmt.Sprintf("ir: %s width mismatch %d vs %d", op, wx, wy))
	}
	w := wx
	switch op {
	case expr.OpEq, expr.OpUlt, expr.OpSlt:
		w = 1
	case expr.OpConcat:
		w = wx + wy
	}
	d := b.NewTemp(w)
	b.emit(Stmt{Kind: KAssign, EOp: op, Dst: d.Temp, Args: [3]Operand{x, y}, NArgs: 2, Width: w})
	return d
}

// Un applies a unary operator (not/neg).
func (b *Builder) Un(op expr.Op, x Operand) Operand {
	d := b.NewTemp(b.widthOf(x))
	b.emit(Stmt{Kind: KAssign, EOp: op, Dst: d.Temp, Args: [3]Operand{x}, NArgs: 1, Width: d.Width})
	return d
}

// Convenience operator wrappers.

func (b *Builder) Add(x, y Operand) Operand  { return b.Bin(expr.OpAdd, x, y) }
func (b *Builder) Sub(x, y Operand) Operand  { return b.Bin(expr.OpSub, x, y) }
func (b *Builder) Mul(x, y Operand) Operand  { return b.Bin(expr.OpMul, x, y) }
func (b *Builder) And(x, y Operand) Operand  { return b.Bin(expr.OpAnd, x, y) }
func (b *Builder) Or(x, y Operand) Operand   { return b.Bin(expr.OpOr, x, y) }
func (b *Builder) Xor(x, y Operand) Operand  { return b.Bin(expr.OpXor, x, y) }
func (b *Builder) Shl(x, y Operand) Operand  { return b.binShift(expr.OpShl, x, y) }
func (b *Builder) Shr(x, y Operand) Operand  { return b.binShift(expr.OpLShr, x, y) }
func (b *Builder) Sar(x, y Operand) Operand  { return b.binShift(expr.OpAShr, x, y) }
func (b *Builder) Not(x Operand) Operand     { return b.Un(expr.OpNot, x) }
func (b *Builder) Neg(x Operand) Operand     { return b.Un(expr.OpNeg, x) }
func (b *Builder) Eq(x, y Operand) Operand   { return b.Bin(expr.OpEq, x, y) }
func (b *Builder) Ne(x, y Operand) Operand   { return b.Not(b.Eq(x, y)) }
func (b *Builder) Ult(x, y Operand) Operand  { return b.Bin(expr.OpUlt, x, y) }
func (b *Builder) Ule(x, y Operand) Operand  { return b.Not(b.Ult(y, x)) }
func (b *Builder) Ugt(x, y Operand) Operand  { return b.Ult(y, x) }
func (b *Builder) Slt(x, y Operand) Operand  { return b.Bin(expr.OpSlt, x, y) }
func (b *Builder) UDiv(x, y Operand) Operand { return b.Bin(expr.OpUDiv, x, y) }
func (b *Builder) URem(x, y Operand) Operand { return b.Bin(expr.OpURem, x, y) }

// binShift allows a narrower shift-amount operand.
func (b *Builder) binShift(op expr.Op, x, y Operand) Operand {
	d := b.NewTemp(b.widthOf(x))
	b.emit(Stmt{Kind: KAssign, EOp: op, Dst: d.Temp, Args: [3]Operand{x, y}, NArgs: 2, Width: d.Width})
	return d
}

// Ite builds a conditional value; cond must be 1 bit wide.
func (b *Builder) Ite(cond, t, f Operand) Operand {
	if b.widthOf(cond) != 1 {
		panic("ir: ite condition must be 1 bit")
	}
	if b.widthOf(t) != b.widthOf(f) {
		panic("ir: ite arm width mismatch")
	}
	d := b.NewTemp(b.widthOf(t))
	b.emit(Stmt{Kind: KAssign, EOp: expr.OpIte, Dst: d.Temp,
		Args: [3]Operand{cond, t, f}, NArgs: 3, Width: d.Width})
	return d
}

// Extract selects bits [lo, lo+w-1].
func (b *Builder) Extract(x Operand, lo, w uint8) Operand {
	d := b.NewTemp(w)
	b.emit(Stmt{Kind: KAssign, EOp: expr.OpExtract, Dst: d.Temp,
		Args: [3]Operand{x}, NArgs: 1, Lo: lo, Width: w})
	return d
}

// Concat joins hi and lo bit vectors.
func (b *Builder) Concat(hi, lo Operand) Operand { return b.Bin(expr.OpConcat, hi, lo) }

// ZExt zero-extends to w bits.
func (b *Builder) ZExt(x Operand, w uint8) Operand {
	if b.widthOf(x) == w {
		return x
	}
	d := b.NewTemp(w)
	b.emit(Stmt{Kind: KAssign, EOp: expr.OpZExt, Dst: d.Temp,
		Args: [3]Operand{x}, NArgs: 1, Width: w})
	return d
}

// SExt sign-extends to w bits.
func (b *Builder) SExt(x Operand, w uint8) Operand {
	if b.widthOf(x) == w {
		return x
	}
	d := b.NewTemp(w)
	b.emit(Stmt{Kind: KAssign, EOp: expr.OpSExt, Dst: d.Temp,
		Args: [3]Operand{x}, NArgs: 1, Width: w})
	return d
}

// Move copies src into the existing temp dst (used to merge control flow).
func (b *Builder) Move(dst, src Operand) {
	if dst.IsConst {
		panic("ir: move into constant")
	}
	if b.widthOf(dst) != b.widthOf(src) {
		panic("ir: move width mismatch")
	}
	b.emit(Stmt{Kind: KMove, Dst: dst.Temp, Args: [3]Operand{src}, NArgs: 1})
}

// Load reads bytes (1, 2 or 4) of physical memory at addr (32-bit operand).
func (b *Builder) Load(addr Operand, bytes uint8) Operand {
	d := b.NewTemp(bytes * 8)
	b.emit(Stmt{Kind: KLoad, Dst: d.Temp, Args: [3]Operand{addr}, NArgs: 1, Width: bytes})
	return d
}

// Store writes bytes of physical memory at addr.
func (b *Builder) Store(addr, val Operand, bytes uint8) {
	if b.widthOf(val) != bytes*8 {
		panic("ir: store width mismatch")
	}
	b.emit(Stmt{Kind: KStore, Args: [3]Operand{addr, val}, NArgs: 2, Width: bytes})
}

// NewLabel allocates an unbound jump target.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind attaches the label to the next emitted statement.
func (b *Builder) Bind(l Label) {
	if b.labels[l] != -1 {
		panic("ir: label bound twice")
	}
	b.labels[l] = len(b.p.Stmts)
}

// CJump branches to l when cond (1-bit) is true.
func (b *Builder) CJump(cond Operand, l Label) {
	if b.widthOf(cond) != 1 {
		panic("ir: cjump condition must be 1 bit")
	}
	b.emit(Stmt{Kind: KCJump, Args: [3]Operand{cond}, NArgs: 1, Target: int(l)})
}

// Jump branches unconditionally to l.
func (b *Builder) Jump(l Label) {
	b.emit(Stmt{Kind: KJump, Target: int(l)})
}

// Raise ends the path with exception vector vec and error code err.
func (b *Builder) Raise(vec uint8, err Operand) {
	if b.widthOf(err) != 32 {
		panic("ir: error code must be 32 bits")
	}
	b.emit(Stmt{Kind: KRaise, Vector: vec, Args: [3]Operand{err}, NArgs: 1, HasErr: true})
}

// RaiseNoErr ends the path with an exception that has no error code.
func (b *Builder) RaiseNoErr(vec uint8) {
	b.emit(Stmt{Kind: KRaise, Vector: vec})
}

// RaiseSoft ends the path with a software interrupt (INT n semantics).
func (b *Builder) RaiseSoft(vec uint8) {
	b.emit(Stmt{Kind: KRaise, Vector: vec, Soft: true})
}

// End terminates the program normally.
func (b *Builder) End() { b.emit(Stmt{Kind: KEnd}) }

// Halt terminates with the CPU halted.
func (b *Builder) Halt() { b.emit(Stmt{Kind: KHalt}) }

// Concat chains programs into one: temporaries and jump targets are
// renumbered, and each non-final program's End statements fall through to
// the next program. Raise and Halt still terminate immediately, exactly
// like a fault or hlt between the instructions of a real sequence.
func Concat(name string, progs ...*Program) *Program {
	out := &Program{Name: name}
	for i, p := range progs {
		tempBase := Temp(len(out.TempWidths))
		stmtBase := len(out.Stmts)
		out.TempWidths = append(out.TempWidths, p.TempWidths...)
		next := stmtBase + len(p.Stmts) // start of the following program
		for _, s := range p.Stmts {
			ns := s
			if !ns.Args[0].IsConst && ns.NArgs >= 1 {
				ns.Args[0].Temp += tempBase
			}
			if !ns.Args[1].IsConst && ns.NArgs >= 2 {
				ns.Args[1].Temp += tempBase
			}
			if !ns.Args[2].IsConst && ns.NArgs >= 3 {
				ns.Args[2].Temp += tempBase
			}
			switch ns.Kind {
			case KAssign, KMove, KGet, KLoad:
				ns.Dst += tempBase
			}
			switch ns.Kind {
			case KCJump, KJump:
				ns.Target += stmtBase
			case KEnd:
				if i < len(progs)-1 {
					ns = Stmt{Kind: KJump, Target: next}
				}
			}
			out.Stmts = append(out.Stmts, ns)
		}
	}
	return out
}

// Build resolves labels and returns the finished program.
func (b *Builder) Build() *Program {
	for i := range b.p.Stmts {
		s := &b.p.Stmts[i]
		if s.Kind == KCJump || s.Kind == KJump {
			tgt := b.labels[s.Target]
			if tgt == -1 {
				panic(fmt.Sprintf("ir: unbound label %d in %s", s.Target, b.p.Name))
			}
			s.Target = tgt
		}
	}
	return b.p
}
