package ir

import (
	"errors"
	"fmt"

	"pokeemu/internal/expr"
	"pokeemu/internal/x86"
)

// State is the machine-state surface an IR program executes against.
// Addresses passed to Load/Store are physical.
type State interface {
	Get(loc x86.Loc) uint64
	Set(loc x86.Loc, v uint64)
	Load(phys uint32, bytes uint8) uint64
	Store(phys uint32, v uint64, bytes uint8)
}

// OutKind classifies how a program run ended.
type OutKind uint8

// Run outcomes.
const (
	OutEnd OutKind = iota
	OutRaise
	OutHalt
)

// Outcome describes the termination of a program run.
type Outcome struct {
	Kind    OutKind
	Vector  uint8
	ErrCode uint32
	HasErr  bool
	Soft    bool
}

func (o Outcome) String() string {
	switch o.Kind {
	case OutRaise:
		if o.HasErr {
			return fmt.Sprintf("raise #%d err=%#x", o.Vector, o.ErrCode)
		}
		return fmt.Sprintf("raise #%d", o.Vector)
	case OutHalt:
		return "halt"
	default:
		return "end"
	}
}

// ErrStepLimit is returned when a program exceeds its step budget
// (a diverging loop in the semantics, e.g. rep with a huge count).
var ErrStepLimit = errors.New("ir: step limit exceeded")

func signExtTo64(v uint64, w uint8) uint64 {
	if w >= 64 || v&(uint64(1)<<(w-1)) == 0 {
		return v
	}
	return v | ^expr.Mask(w)
}

// Run executes the program concretely against st. maxSteps bounds the number
// of executed statements (0 means a generous default).
func Run(p *Program, st State, maxSteps int) (Outcome, error) {
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	temps := make([]uint64, len(p.TempWidths))
	val := func(o Operand) uint64 {
		if o.IsConst {
			return o.Val
		}
		return temps[o.Temp]
	}
	widthOf := func(o Operand) uint8 {
		if o.IsConst {
			return o.Width
		}
		return p.TempWidths[o.Temp]
	}

	pc := 0
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return Outcome{}, ErrStepLimit
		}
		if pc < 0 || pc >= len(p.Stmts) {
			return Outcome{}, fmt.Errorf("ir: pc %d out of range in %s", pc, p.Name)
		}
		s := &p.Stmts[pc]
		switch s.Kind {
		case KAssign:
			temps[s.Dst] = evalOp(s, val, widthOf)
		case KMove:
			temps[s.Dst] = val(s.Args[0])
		case KGet:
			temps[s.Dst] = st.Get(s.Loc) & expr.Mask(s.Loc.Width())
		case KSet:
			st.Set(s.Loc, val(s.Args[0]))
		case KLoad:
			temps[s.Dst] = st.Load(uint32(val(s.Args[0])), s.Width)
		case KStore:
			st.Store(uint32(val(s.Args[0])), val(s.Args[1]), s.Width)
		case KCJump:
			if val(s.Args[0])&1 == 1 {
				pc = s.Target
				continue
			}
		case KJump:
			pc = s.Target
			continue
		case KRaise:
			out := Outcome{Kind: OutRaise, Vector: s.Vector, HasErr: s.HasErr, Soft: s.Soft}
			if s.HasErr {
				out.ErrCode = uint32(val(s.Args[0]))
			}
			return out, nil
		case KEnd:
			return Outcome{Kind: OutEnd}, nil
		case KHalt:
			return Outcome{Kind: OutHalt}, nil
		default:
			return Outcome{}, fmt.Errorf("ir: unknown stmt kind %d", s.Kind)
		}
		pc++
	}
}

// EdgeFunc observes one control-flow edge during concrete evaluation. It
// fires on program entry (from = -1), on every jump — taken and
// fall-through sides of KCJump, and KJump — and on termination (to = -1),
// i.e. roughly once per executed basic block. Straight-line statements never
// reach it.
type EdgeFunc func(from, to int)

// RunEdges is Run with an edge observer for coverage instrumentation. The
// loop is deliberately a separate copy of Run's: the non-coverage path pays
// nothing for the hook, not even a nil check. Keep the two loops in sync.
func RunEdges(p *Program, st State, maxSteps int, edge EdgeFunc) (Outcome, error) {
	if edge == nil {
		return Run(p, st, maxSteps)
	}
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	temps := make([]uint64, len(p.TempWidths))
	val := func(o Operand) uint64 {
		if o.IsConst {
			return o.Val
		}
		return temps[o.Temp]
	}
	widthOf := func(o Operand) uint8 {
		if o.IsConst {
			return o.Width
		}
		return p.TempWidths[o.Temp]
	}

	pc := 0
	edge(-1, 0)
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return Outcome{}, ErrStepLimit
		}
		if pc < 0 || pc >= len(p.Stmts) {
			return Outcome{}, fmt.Errorf("ir: pc %d out of range in %s", pc, p.Name)
		}
		s := &p.Stmts[pc]
		switch s.Kind {
		case KAssign:
			temps[s.Dst] = evalOp(s, val, widthOf)
		case KMove:
			temps[s.Dst] = val(s.Args[0])
		case KGet:
			temps[s.Dst] = st.Get(s.Loc) & expr.Mask(s.Loc.Width())
		case KSet:
			st.Set(s.Loc, val(s.Args[0]))
		case KLoad:
			temps[s.Dst] = st.Load(uint32(val(s.Args[0])), s.Width)
		case KStore:
			st.Store(uint32(val(s.Args[0])), val(s.Args[1]), s.Width)
		case KCJump:
			if val(s.Args[0])&1 == 1 {
				edge(pc, s.Target)
				pc = s.Target
				continue
			}
			edge(pc, pc+1)
		case KJump:
			edge(pc, s.Target)
			pc = s.Target
			continue
		case KRaise:
			out := Outcome{Kind: OutRaise, Vector: s.Vector, HasErr: s.HasErr, Soft: s.Soft}
			if s.HasErr {
				out.ErrCode = uint32(val(s.Args[0]))
			}
			edge(pc, -1)
			return out, nil
		case KEnd:
			edge(pc, -1)
			return Outcome{Kind: OutEnd}, nil
		case KHalt:
			edge(pc, -1)
			return Outcome{Kind: OutHalt}, nil
		default:
			return Outcome{}, fmt.Errorf("ir: unknown stmt kind %d", s.Kind)
		}
		pc++
	}
}

func evalOp(s *Stmt, val func(Operand) uint64, widthOf func(Operand) uint8) uint64 {
	m := expr.Mask(s.Width)
	a := val(s.Args[0])
	switch s.EOp {
	case expr.OpNot:
		return ^a & m
	case expr.OpNeg:
		return -a & m
	case expr.OpZExt:
		return a
	case expr.OpSExt:
		return signExtTo64(a, widthOf(s.Args[0])) & m
	case expr.OpExtract:
		return a >> s.Lo & m
	}
	bw := widthOf(s.Args[1])
	b := val(s.Args[1])
	switch s.EOp {
	case expr.OpAnd:
		return a & b
	case expr.OpOr:
		return a | b
	case expr.OpXor:
		return a ^ b
	case expr.OpAdd:
		return (a + b) & m
	case expr.OpSub:
		return (a - b) & m
	case expr.OpMul:
		return (a * b) & m
	case expr.OpUDiv:
		if b == 0 {
			return m
		}
		return a / b
	case expr.OpURem:
		if b == 0 {
			return a
		}
		return a % b
	case expr.OpShl:
		if b >= uint64(s.Width) {
			return 0
		}
		return a << b & m
	case expr.OpLShr:
		if b >= uint64(s.Width) {
			return 0
		}
		return a >> b
	case expr.OpAShr:
		if b >= uint64(s.Width) {
			b = uint64(s.Width) - 1
		}
		return uint64(int64(signExtTo64(a, s.Width))>>b) & m
	case expr.OpEq:
		if a == b {
			return 1
		}
		return 0
	case expr.OpUlt:
		if a < b {
			return 1
		}
		return 0
	case expr.OpSlt:
		aw := widthOf(s.Args[0])
		if int64(signExtTo64(a, aw)) < int64(signExtTo64(b, bw)) {
			return 1
		}
		return 0
	case expr.OpConcat:
		return (a<<bw | b) & m
	case expr.OpIte:
		if a&1 == 1 {
			return val(s.Args[1])
		}
		return val(s.Args[2])
	default:
		panic(fmt.Sprintf("ir: eval of op %s", s.EOp))
	}
}
