package ir

import (
	"strings"
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/x86"
)

// mapState is a trivial State for tests.
type mapState struct {
	locs map[x86.Loc]uint64
	mem  map[uint32]byte
}

func newMapState() *mapState {
	return &mapState{locs: make(map[x86.Loc]uint64), mem: make(map[uint32]byte)}
}

func (m *mapState) Get(l x86.Loc) uint64    { return m.locs[l] }
func (m *mapState) Set(l x86.Loc, v uint64) { m.locs[l] = v & expr.Mask(l.Width()) }
func (m *mapState) Load(p uint32, n uint8) uint64 {
	var v uint64
	for i := uint8(0); i < n; i++ {
		v |= uint64(m.mem[p+uint32(i)]) << (8 * i)
	}
	return v
}
func (m *mapState) Store(p uint32, v uint64, n uint8) {
	for i := uint8(0); i < n; i++ {
		m.mem[p+uint32(i)] = byte(v >> (8 * i))
	}
}

func TestBuilderStraightLine(t *testing.T) {
	b := NewBuilder("t")
	x := b.Get(x86.GPR(x86.EAX))
	y := b.Add(x, b.Const(32, 10))
	b.Set(x86.GPR(x86.EBX), y)
	b.End()
	p := b.Build()

	st := newMapState()
	st.Set(x86.GPR(x86.EAX), 32)
	out, err := Run(p, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != OutEnd {
		t.Fatalf("outcome %v", out)
	}
	if got := st.Get(x86.GPR(x86.EBX)); got != 42 {
		t.Errorf("ebx = %d, want 42", got)
	}
}

func TestBuilderBranchAndLoop(t *testing.T) {
	// Sum 1..n with a loop: tests labels, cjump, move.
	b := NewBuilder("loop")
	n := b.Get(x86.GPR(x86.ECX))
	sum := b.NewTemp(32)
	i := b.NewTemp(32)
	b.Move(sum, b.Const(32, 0))
	b.Move(i, b.Const(32, 0))
	top := b.NewLabel()
	done := b.NewLabel()
	b.Bind(top)
	b.CJump(b.Eq(i, n), done)
	b.Move(i, b.Add(i, b.Const(32, 1)))
	b.Move(sum, b.Add(sum, i))
	b.Jump(top)
	b.Bind(done)
	b.Set(x86.GPR(x86.EAX), sum)
	b.End()
	p := b.Build()

	st := newMapState()
	st.Set(x86.GPR(x86.ECX), 10)
	if _, err := Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(x86.GPR(x86.EAX)); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestRunStepLimit(t *testing.T) {
	b := NewBuilder("diverge")
	top := b.NewLabel()
	b.Bind(top)
	b.Jump(top)
	p := b.Build()
	if _, err := Run(p, newMapState(), 100); err != ErrStepLimit {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestRaiseOutcome(t *testing.T) {
	b := NewBuilder("gp")
	b.Raise(x86.ExcGP, b.Const(32, 0x50))
	p := b.Build()
	out, err := Run(p, newMapState(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != OutRaise || out.Vector != x86.ExcGP || out.ErrCode != 0x50 || !out.HasErr {
		t.Errorf("outcome %+v", out)
	}
}

func TestMemoryOps(t *testing.T) {
	b := NewBuilder("mem")
	addr := b.Const(32, 0x1000)
	b.Store(addr, b.Const(32, 0x11223344), 4)
	lo := b.Load(addr, 2)
	hi := b.Load(b.Add(addr, b.Const(32, 2)), 2)
	b.Set(x86.GPR(x86.EAX), b.Concat(lo, hi)) // deliberately swapped halves
	b.End()
	p := b.Build()
	st := newMapState()
	if _, err := Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(x86.GPR(x86.EAX)); got != 0x33441122 {
		t.Errorf("eax = %#x, want 0x33441122", got)
	}
}

func TestEvalOpsMatchExpr(t *testing.T) {
	// Each IR operator must agree with the expr package's evaluator.
	ops := []expr.Op{
		expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpAnd, expr.OpOr, expr.OpXor,
		expr.OpUDiv, expr.OpURem, expr.OpEq, expr.OpUlt, expr.OpSlt,
	}
	vals := []uint64{0, 1, 5, 0x7fffffff, 0x80000000, 0xffffffff}
	for _, op := range ops {
		for _, av := range vals {
			for _, bv := range vals {
				b := NewBuilder("op")
				r := b.Bin(op, b.Const(32, av), b.Const(32, bv))
				b.Set(x86.GPR(x86.EAX), b.ZExt(r, 32))
				b.End()
				p := b.Build()
				st := newMapState()
				if _, err := Run(p, st, 0); err != nil {
					t.Fatal(err)
				}
				var want *expr.Expr
				x, y := expr.Const(32, av), expr.Const(32, bv)
				switch op {
				case expr.OpAdd:
					want = expr.Add(x, y)
				case expr.OpSub:
					want = expr.Sub(x, y)
				case expr.OpMul:
					want = expr.Mul(x, y)
				case expr.OpAnd:
					want = expr.And(x, y)
				case expr.OpOr:
					want = expr.Or(x, y)
				case expr.OpXor:
					want = expr.Xor(x, y)
				case expr.OpUDiv:
					want = expr.UDiv(x, y)
				case expr.OpURem:
					want = expr.URem(x, y)
				case expr.OpEq:
					want = expr.Eq(x, y)
				case expr.OpUlt:
					want = expr.Ult(x, y)
				case expr.OpSlt:
					want = expr.Slt(x, y)
				}
				if got := st.Get(x86.GPR(x86.EAX)); got != want.ConstVal() {
					t.Errorf("%s(%#x,%#x) = %#x, want %#x", op, av, bv, got, want.ConstVal())
				}
			}
		}
	}
}

func TestExtractConcatZExtSExt(t *testing.T) {
	b := NewBuilder("bits")
	x := b.Const(32, 0x8000ff00)
	hi := b.Extract(x, 16, 16)
	sx := b.SExt(hi, 32)
	b.Set(x86.GPR(x86.EAX), sx)
	lo8 := b.Extract(x, 8, 8)
	b.Set(x86.GPR(x86.EBX), b.ZExt(lo8, 32))
	b.End()
	st := newMapState()
	if _, err := Run(b.Build(), st, 0); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(x86.GPR(x86.EAX)); got != 0xffff8000 {
		t.Errorf("sext = %#x", got)
	}
	if got := st.Get(x86.GPR(x86.EBX)); got != 0xff {
		t.Errorf("zext = %#x", got)
	}
}

func TestUnboundLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unbound label")
		}
	}()
	b := NewBuilder("bad")
	l := b.NewLabel()
	b.Jump(l)
	b.Build()
}

func TestShiftSemantics(t *testing.T) {
	// Variable shifts with oversized amounts: shl/lshr → 0, ashr → sign fill.
	cases := []struct {
		op   expr.Op
		v    uint64
		n    uint64
		want uint64
	}{
		{expr.OpShl, 1, 31, 0x80000000},
		{expr.OpShl, 1, 32, 0},
		{expr.OpLShr, 0x80000000, 31, 1},
		{expr.OpLShr, 0x80000000, 40, 0},
		{expr.OpAShr, 0x80000000, 31, 0xffffffff},
		{expr.OpAShr, 0x80000000, 99, 0xffffffff},
	}
	for _, c := range cases {
		b := NewBuilder("sh")
		r := b.binShift(c.op, b.Const(32, c.v), b.Const(8, c.n))
		b.Set(x86.GPR(x86.EAX), r)
		b.End()
		st := newMapState()
		if _, err := Run(b.Build(), st, 0); err != nil {
			t.Fatal(err)
		}
		if got := st.Get(x86.GPR(x86.EAX)); got != c.want {
			t.Errorf("%s(%#x, %d) = %#x, want %#x", c.op, c.v, c.n, got, c.want)
		}
	}
}

func TestConcatRaiseStopsSequence(t *testing.T) {
	b1 := NewBuilder("p1")
	b1.Raise(x86.ExcGP, b1.Const(32, 7))
	b2 := NewBuilder("p2")
	b2.Set(x86.GPR(x86.EAX), b2.Const(32, 99))
	b2.End()
	cat := Concat("seq", b1.Build(), b2.Build())
	st := newMapState()
	out, err := Run(cat, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != OutRaise || out.ErrCode != 7 {
		t.Errorf("outcome %v, want the first program's raise", out)
	}
	if st.Get(x86.GPR(x86.EAX)) != 0 {
		t.Error("second program ran after a raise")
	}
}

func TestConcatTempIsolation(t *testing.T) {
	// Temps of the two programs must not alias after renumbering.
	b1 := NewBuilder("p1")
	v1 := b1.Add(b1.Const(32, 1), b1.Const(32, 2))
	b1.Set(x86.GPR(x86.EAX), v1)
	b1.End()
	b2 := NewBuilder("p2")
	v2 := b2.Add(b2.Get(x86.GPR(x86.EAX)), b2.Const(32, 10))
	b2.Set(x86.GPR(x86.EBX), v2)
	b2.End()
	cat := Concat("seq", b1.Build(), b2.Build())
	if cat.NumTemps() != b1.p.NumTemps()+b2.p.NumTemps() {
		t.Errorf("temps = %d", cat.NumTemps())
	}
	st := newMapState()
	if _, err := Run(cat, st, 0); err != nil {
		t.Fatal(err)
	}
	if st.Get(x86.GPR(x86.EBX)) != 13 {
		t.Errorf("ebx = %d, want 13", st.Get(x86.GPR(x86.EBX)))
	}
}

func TestProgramString(t *testing.T) {
	b := NewBuilder("render")
	x := b.Get(x86.GPR(x86.EAX))
	l := b.NewLabel()
	b.CJump(b.Eq(x, b.Const(32, 0)), l)
	b.Store(b.Const(32, 16), b.Extract(x, 0, 8), 1)
	v := b.Load(b.Const(32, 16), 1)
	b.Move(x, b.ZExt(v, 32))
	b.Set(x86.GPR(x86.EAX), x)
	b.Raise(x86.ExcGP, b.Const(32, 0))
	b.Bind(l)
	b.Halt()
	s := b.Build().String()
	for _, frag := range []string{"get", "store1", "load1", "if", "raise", "halt"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, s)
		}
	}
}
