package hwsim

import (
	"testing"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

func TestMonitorRunTest(t *testing.T) {
	mon := NewMonitor(nil)
	prog := append(x86.AsmMovRegImm32(x86.EAX, 42), x86.AsmHlt()...)
	snap := mon.RunTest(prog, 100)
	if snap.CPU.GPR[x86.EAX] != 42 {
		t.Errorf("eax = %d", snap.CPU.GPR[x86.EAX])
	}
	if !snap.CPU.Halted {
		t.Error("guest should have halted")
	}
	if snap.Exception != nil {
		t.Errorf("unexpected exception %v", snap.Exception)
	}
	if mon.Exits == 0 {
		t.Error("the monitor must observe at least the halt exit")
	}
}

func TestMonitorInterceptsException(t *testing.T) {
	mon := NewMonitor(nil)
	// div-by-zero → #DE, handled by the halting stub; the monitor records
	// the exception and the terminal snapshot.
	prog := append(x86.AsmMovRegImm32(x86.ECX, 0),
		append([]byte{0xf7, 0xf1}, x86.AsmHlt()...)...)
	snap := mon.RunTest(prog, 100)
	if snap.Exception == nil || snap.Exception.Vector != x86.ExcDE {
		t.Errorf("exception = %v, want #DE", snap.Exception)
	}
}

func TestMonitorMediationCounting(t *testing.T) {
	mon := NewMonitor(nil)
	prog := append(x86.AsmMovRegCR(x86.EAX, 0), x86.AsmHlt()...)
	mon.RunTest(prog, 100)
	if mon.Mediated == 0 {
		t.Error("control-register reads require VMM mediation")
	}
}

func TestMonitorGuestsAreIsolated(t *testing.T) {
	mon := NewMonitor(nil)
	dirty := append(x86.AsmMovMemImm32(0x300000, 0xdead), x86.AsmHlt()...)
	mon.RunTest(dirty, 100)
	probe := append(x86.AsmMovRegMem32(x86.EAX, 0x300000), x86.AsmHlt()...)
	snap := mon.RunTest(probe, 100)
	if snap.CPU.GPR[x86.EAX] != 0 {
		t.Error("guest state leaked across monitor resets")
	}
}

func TestHardwareName(t *testing.T) {
	hw := NewHardware(machine.NewBaseline(nil))
	if hw.Name() != "hardware" {
		t.Errorf("name = %q", hw.Name())
	}
}
