// Package hwsim simulates the real-hardware reference of the paper's
// three-way comparison: an Intel workstation virtualized by a customized
// KVM. The "hardware" executes the ideal architectural semantics with the
// hardware undefined-flag policy; the Monitor reproduces the KVM workflow
// of Section 5.2 — run the guest, intercept traps (exceptions, halts),
// snapshot the guest CPU and physical memory, and reset the guest between
// tests without a physical reboot.
package hwsim

import (
	"pokeemu/internal/emu"
	"pokeemu/internal/fidelis"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// Hardware is the bare-metal CPU model: the architectural semantics with
// the hardware's undefined-behavior choices (sem.HardwareConfig), and no
// emulator-specific quirks.
type Hardware struct {
	*fidelis.Emulator
}

// NewHardware builds the hardware model on a machine.
func NewHardware(m *machine.Machine) *Hardware {
	return &Hardware{fidelis.NewWithConfig(m, sem.HardwareConfig)}
}

// NewHardwareShared builds the hardware model with a shared program cache
// (hardware executes natively; nothing needs per-guest translation).
func NewHardwareShared(m *machine.Machine, cache *fidelis.Cache) *Hardware {
	return &Hardware{fidelis.NewShared(m, sem.HardwareConfig, cache)}
}

// Name implements emu.Emulator.
func (h *Hardware) Name() string { return "hardware" }

// Monitor is the KVM-like virtual machine monitor: it owns the shared boot
// image, creates a fresh guest per test, supervises execution, and
// classifies traps. Mediated counts the privileged instructions that would
// require VMM mediation on real silicon (the small set the paper verified
// by hand); Exits counts all traps taken.
type Monitor struct {
	image *machine.Memory

	Exits    int64
	Mediated int64
}

// NewMonitor creates a monitor over a shared baseline image.
func NewMonitor(image *machine.Memory) *Monitor {
	if image == nil {
		image = machine.BaselineImage()
	}
	return &Monitor{image: image}
}

// Image returns the shared boot image.
func (mon *Monitor) Image() *machine.Memory { return mon.image }

// RunTest boots a fresh guest with the test program loaded at the entry
// point, supervises it to termination, and returns the final-state snapshot.
// maxSteps bounds runaway guests (returned snapshot notes a timeout via a
// nil exception and Halted=false).
func (mon *Monitor) RunTest(program []byte, maxSteps int) *machine.Snapshot {
	m := machine.NewBaseline(mon.image)
	m.Mem.WriteBytes(machine.CodeBase, program)
	hw := NewHardware(m)

	var lastExc *machine.ExceptionInfo
	for i := 0; i < maxSteps; i++ {
		if wouldMediate(m) {
			mon.Mediated++
		}
		ev := hw.Step()
		switch ev.Kind {
		case emu.EventHalt:
			mon.Exits++
			return m.Snapshot(lastExc)
		case emu.EventException, emu.EventShutdown:
			mon.Exits++
			lastExc = ev.Exception
			if ev.Kind == emu.EventShutdown {
				return m.Snapshot(lastExc)
			}
		case emu.EventTimeout:
			return m.Snapshot(lastExc)
		}
	}
	return m.Snapshot(lastExc)
}

// wouldMediate reports whether the next instruction is one of the few that
// a hardware-assisted VMM must intercept (control-register and descriptor-
// table loads); everything else runs natively.
func wouldMediate(m *machine.Machine) bool {
	code, exc := m.FetchCode(x86.MaxInstLen)
	if exc != nil {
		return false
	}
	inst, err := x86.Decode(code)
	if err != nil {
		return false
	}
	switch inst.Spec.Name {
	case "mov_cr_r", "mov_r_cr", "lgdt", "lidt", "lmsw", "clts", "invlpg",
		"rdmsr", "wrmsr":
		return true
	}
	return false
}
