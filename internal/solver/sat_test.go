package solver

import (
	"math/rand"
	"testing"
)

func TestSatTrivial(t *testing.T) {
	s := NewSat()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if got := s.Solve(nil); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if !s.Value(a) {
		t.Error("a should be true")
	}
}

func TestSatUnsatPair(t *testing.T) {
	s := NewSat()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Error("adding contradictory unit should report failure")
	}
	if got := s.Solve(nil); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestSatImplicationChain(t *testing.T) {
	// a, a→b, b→c, c→d; check d is forced true.
	s := NewSat()
	vs := make([]int, 4)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	s.AddClause(MkLit(vs[0], false))
	for i := 0; i < 3; i++ {
		s.AddClause(MkLit(vs[i], true), MkLit(vs[i+1], false))
	}
	if s.Solve(nil) != Sat {
		t.Fatal("want sat")
	}
	for i, v := range vs {
		if !s.Value(v) {
			t.Errorf("var %d should be true", i)
		}
	}
}

func TestSatPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — classically unsat, requires real search.
	s := NewSat()
	const P, H = 4, 3
	x := [P][H]int{}
	for p := 0; p < P; p++ {
		for h := 0; h < H; h++ {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < P; p++ {
		lits := make([]Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = MkLit(x[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(MkLit(x[p1][h], true), MkLit(x[p2][h], true))
			}
		}
	}
	if got := s.Solve(nil); got != Unsat {
		t.Fatalf("pigeonhole Solve = %v, want unsat", got)
	}
}

func TestSatAssumptions(t *testing.T) {
	s := NewSat()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a → b
	// Assume a: b must be true.
	if s.Solve([]Lit{MkLit(a, false)}) != Sat {
		t.Fatal("want sat under a")
	}
	if !s.Value(b) {
		t.Error("b should be true under assumption a")
	}
	// Assume a ∧ ¬b: unsat.
	if got := s.Solve([]Lit{MkLit(a, false), MkLit(b, true)}); got != Unsat {
		t.Fatalf("Solve(a, ¬b) = %v, want unsat", got)
	}
	// The solver must remain reusable after an assumption-unsat result.
	if s.Solve(nil) != Sat {
		t.Fatal("solver should still be sat with no assumptions")
	}
	if s.Solve([]Lit{MkLit(b, true)}) != Sat {
		t.Fatal("¬b alone should be sat")
	}
}

func TestSatContradictoryAssumptions(t *testing.T) {
	s := NewSat()
	a := s.NewVar()
	if got := s.Solve([]Lit{MkLit(a, false), MkLit(a, true)}); got != Unsat {
		t.Fatalf("Solve(a, ¬a) = %v, want unsat", got)
	}
	if s.Solve(nil) != Sat {
		t.Fatal("solver should recover")
	}
}

// solveBrute does exhaustive enumeration over n variables.
func solveBrute(n int, clauses [][]Lit) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>l.Var()&1 == 1
				if bit != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestSatRandomAgainstBruteForce cross-checks CDCL against exhaustive search
// on many small random 3-SAT instances around the phase-transition density.
func TestSatRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 4 + r.Intn(8)
		m := int(float64(n)*4.2) + r.Intn(5)
		clauses := make([][]Lit, 0, m)
		for i := 0; i < m; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(r.Intn(n), r.Intn(2) == 1)
			}
			clauses = append(clauses, c)
		}
		s := NewSat()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		okAdd := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				okAdd = false
				break
			}
		}
		var got bool
		if !okAdd {
			got = false
		} else {
			got = s.Solve(nil) == Sat
		}
		want := solveBrute(n, clauses)
		if got != want {
			t.Fatalf("iter %d (n=%d m=%d): CDCL=%v brute=%v", iter, n, m, got, want)
		}
		// If SAT, verify the model satisfies every clause.
		if got {
			for ci, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates clause %d", iter, ci)
				}
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestSatDuplicateAndTautologyClauses(t *testing.T) {
	s := NewSat()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(a, false), MkLit(b, false)) // dup literal
	s.AddClause(MkLit(a, false), MkLit(a, true))                   // tautology
	if s.Solve(nil) != Sat {
		t.Fatal("want sat")
	}
}
