package solver

import (
	"testing"
)

// fuzzLit decodes one byte into a literal over nVars variables.
func fuzzLit(b byte, nVars int) Lit {
	return MkLit(int(b>>1)%nVars, b&1 == 1)
}

// FuzzArenaCompact drives arbitrary interleavings of clause additions and
// assumption queries through a solver tuned to reduce and compact its
// arena as aggressively as possible (ReduceBase=1, RestartBase=1), and
// checks two properties after every query: (1) watcher integrity — every
// clause watched exactly on its first two literals, no dangling refs, no
// lost propagations (validateArena panics otherwise); and (2) the verdict
// matches a scratch oracle that re-adds every clause to a fresh solver and
// re-watches from nothing, so no compaction pass can silently change what
// the clause database means.
func FuzzArenaCompact(f *testing.F) {
	f.Add([]byte{0, 2, 5, 9, 255, 1})
	f.Add([]byte{1, 3, 3, 3, 254, 2, 4, 6, 8, 255, 7})
	f.Add([]byte{0, 10, 11, 12, 2, 13, 14, 15, 254, 1, 3, 255, 5, 7})
	f.Add([]byte{1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		const nVars = 12
		s := NewSat()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		s.Reuse = data[0]&1 == 1
		s.ReduceBase = 1
		s.RestartBase = 1
		var clauses [][]Lit
		queries := 0
		i := 1
		for i < len(data) && queries < 16 {
			switch data[i] {
			case 255: // query: up to 2 assumption literals follow
				i++
				var assumps []Lit
				for len(assumps) < 2 && i < len(data) && data[i] < 254 {
					assumps = append(assumps, fuzzLit(data[i], nVars))
					i++
				}
				got := s.Solve(assumps)
				s.validateArena()
				// Re-watch-from-scratch oracle: a fresh solver over the
				// same original clauses, no reduction, no prior state.
				o := NewSat()
				for v := 0; v < nVars; v++ {
					o.NewVar()
				}
				o.NoReduce = true
				for _, c := range clauses {
					if !o.AddClause(c...) {
						break
					}
				}
				want := o.Solve(assumps)
				if got != want {
					t.Fatalf("query %d (assumps %v): compacting solver says %v, scratch oracle says %v",
						queries, assumps, got, want)
				}
				queries++
			case 254: // skip byte, lets the fuzzer splice op boundaries
				i++
			default: // add a ternary clause from the next 3 bytes
				if i+3 > len(data) || len(clauses) >= 64 {
					i = len(data)
					break
				}
				c := []Lit{
					fuzzLit(data[i], nVars),
					fuzzLit(data[i+1], nVars),
					fuzzLit(data[i+2], nVars),
				}
				i += 3
				clauses = append(clauses, c)
				s.AddClause(c...)
			}
		}
	})
}

// FuzzLubyRestart checks the restart machinery: with any Seed and an
// aggressive restart schedule (RestartBase=1), (1) two identically
// configured solvers produce bit-identical verdicts, models, and search
// statistics over the same query sequence — the Luby schedule is a pure
// function of the seed, never of wall clock or memory layout; and (2) the
// verdicts match a restart-free run of the same formula, so restarting can
// reorder the search but never change an answer.
func FuzzLubyRestart(f *testing.F) {
	f.Add(uint64(1), []byte{2, 5, 9, 11, 14, 3, 7, 21, 8})
	f.Add(uint64(42), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint64(0), []byte{0, 1, 0, 3, 2, 5, 255, 254, 253, 6, 6, 6})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) < 3 {
			return
		}
		const nVars = 10
		var clauses [][]Lit
		for i := 0; i+3 <= len(data) && len(clauses) < 48; i += 3 {
			clauses = append(clauses, []Lit{
				fuzzLit(data[i], nVars),
				fuzzLit(data[i+1], nVars),
				fuzzLit(data[i+2], nVars),
			})
		}
		build := func(restartBase int64) *CDCL {
			s := NewSat()
			for v := 0; v < nVars; v++ {
				s.NewVar()
			}
			s.Seed = seed
			s.RestartBase = restartBase
			s.ReduceBase = 4
			for _, c := range clauses {
				if !s.AddClause(c...) {
					break
				}
			}
			return s
		}
		// Query sequence: whole formula, then a few assumption sets
		// derived from the data so the fuzzer can steer them.
		queries := [][]Lit{nil}
		for i := 0; i+2 <= len(data) && len(queries) < 6; i += 2 {
			queries = append(queries, []Lit{
				fuzzLit(data[i], nVars),
				fuzzLit(data[i+1], nVars),
			})
		}
		a, b := build(1), build(1)
		noRestart := build(1 << 30)
		for qi, q := range queries {
			ra, rb := a.Solve(q), b.Solve(q)
			if ra != rb {
				t.Fatalf("query %d: identical solvers disagree (%v vs %v) — restart schedule is nondeterministic", qi, ra, rb)
			}
			if ra == Sat {
				ma, mb := a.Model(), b.Model()
				for v := range ma {
					if ma[v] != mb[v] {
						t.Fatalf("query %d: identical solvers produced different models at var %d", qi, v)
					}
				}
			}
			if a.Conflicts != b.Conflicts || a.Decisions != b.Decisions || a.Restarts != b.Restarts {
				t.Fatalf("query %d: identical solvers diverged in search stats (%d/%d/%d vs %d/%d/%d)",
					qi, a.Conflicts, a.Decisions, a.Restarts, b.Conflicts, b.Decisions, b.Restarts)
			}
			if rn := noRestart.Solve(q); rn != ra {
				t.Fatalf("query %d: restarting run says %v, restart-free run says %v", qi, ra, rn)
			}
		}
	})
}
