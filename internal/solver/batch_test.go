package solver

import (
	"testing"

	"pokeemu/internal/expr"
)

// randCNF builds a deterministic pseudo-random 3-SAT instance over nVars
// variables (which must already be allocated by the caller).
func randCNF(seed uint64, nVars, nClauses int) [][]Lit {
	state := seed
	next := func(n int) int {
		state = splitmix64(state)
		return int(state % uint64(n))
	}
	out := make([][]Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		c := make([]Lit, 3)
		for j := range c {
			c[j] = MkLit(next(nVars), next(2) == 1)
		}
		out = append(out, c)
	}
	return out
}

// randAssumps draws a deterministic assumption sequence: each step either
// extends the previous assumption list by one literal over an untouched
// variable or truncates it, mimicking the grow/backtrack pattern of sibling
// path queries.
func randAssumps(seed uint64, nVars, steps int) [][]Lit {
	state := seed ^ 0xabcdef
	next := func(n int) int {
		state = splitmix64(state)
		return int(state % uint64(n))
	}
	var cur []Lit
	out := make([][]Lit, 0, steps)
	for i := 0; i < steps; i++ {
		switch {
		case len(cur) > 0 && next(4) == 0:
			cur = cur[:next(len(cur))]
		case len(cur) < nVars/2:
			cur = append(cur, MkLit(next(nVars), next(2) == 1))
		}
		out = append(out, append([]Lit(nil), cur...))
	}
	return out
}

// TestReuseMatchesFreshVerdicts is the soundness gate for the batched
// front-end: one Reuse solver answering an incremental assumption sequence —
// with clauses injected mid-sequence, above decision level 0 — must agree
// with a fresh solver rebuilt from scratch for every single query.
func TestReuseMatchesFreshVerdicts(t *testing.T) {
	const nVars = 30
	for seed := uint64(1); seed <= 12; seed++ {
		clauses := randCNF(seed, nVars, 60)
		extra := randCNF(seed^0x55aa, nVars, 40)

		reuse := NewSat()
		for i := 0; i < nVars; i++ {
			reuse.NewVar()
		}
		reuse.Reuse = true
		added := 0
		for _, c := range clauses {
			reuse.AddClause(c...)
		}

		for qi, assumps := range randAssumps(seed, nVars, 50) {
			// Inject some clauses between queries: with Reuse on, the trail
			// may be standing above level 0 here, exercising the safe-attach
			// path in AddClause.
			if qi%3 == 0 && added < len(extra) {
				reuse.AddClause(extra[added]...)
				added++
			}
			got := reuse.Solve(assumps)

			fresh := NewSat()
			for i := 0; i < nVars; i++ {
				fresh.NewVar()
			}
			for _, c := range clauses {
				fresh.AddClause(c...)
			}
			for _, c := range extra[:added] {
				fresh.AddClause(c...)
			}
			want := fresh.Solve(assumps)
			if got != want {
				t.Fatalf("seed %d query %d (%d assumps): reuse=%v fresh=%v",
					seed, qi, len(assumps), got, want)
			}
			// A Sat model must actually satisfy the assumptions.
			if got == Sat {
				for _, l := range assumps {
					if reuse.Value(l.Var()) == l.Sign() {
						t.Fatalf("seed %d query %d: model violates assumption %v", seed, qi, l)
					}
				}
			}
		}
	}
}

// TestReuseBVPathPrefixes drives the BV front-end the way the explorer
// does — a growing path-condition prefix with new terms encoded between
// queries — and checks every verdict against an independent solver.
func TestReuseBVPathPrefixes(t *testing.T) {
	batched := NewBV()
	batched.Reuse = true
	x := expr.Var(16, "x")
	y := expr.Var(16, "y")

	conds := []*expr.Expr{
		expr.Ugt(x, expr.Const(16, 100)),
		expr.Ult(x, expr.Const(16, 5000)),
		expr.Eq(expr.And(x, expr.Const(16, 1)), expr.Const(16, 0)),
		expr.Ugt(expr.Add(x, y), expr.Const(16, 200)),
		expr.Ult(y, expr.Const(16, 50)),
		expr.Eq(expr.And(y, expr.Const(16, 3)), expr.Const(16, 2)),
		// Contradicts the first condition: the full prefix is Unsat.
		expr.Ult(x, expr.Const(16, 90)),
	}
	var prefix []Lit
	for i, c := range conds {
		prefix = append(prefix, batched.LitFor(c))
		got := batched.CheckLits(prefix)

		fresh := NewBV()
		var fl []Lit
		for _, fc := range conds[:i+1] {
			fl = append(fl, fresh.LitFor(fc))
		}
		want := fresh.CheckLits(fl)
		if got != want {
			t.Fatalf("prefix length %d: batched=%v fresh=%v", i+1, got, want)
		}
		if got == Sat {
			// The model must satisfy every condition in the prefix.
			m := map[string]uint64{"x": batched.ModelVal("x"), "y": batched.ModelVal("y")}
			for j, fc := range conds[:i+1] {
				if v := expr.Eval(fc, m); v != 1 {
					t.Fatalf("prefix length %d: model %v violates cond %d (v=%d)",
						i+1, m, j, v)
				}
			}
		}
	}
	if batched.sat.ReusedLevels == 0 {
		t.Fatal("batched front-end never reused a trail level on a growing prefix")
	}
}

// TestBatchedUnknownNotMemoized pins the memo × MaxConflicts interaction on
// the batched path: Unknown must never enter the assumption-set memo, so
// lifting the budget re-solves instead of replaying the give-up.
func TestBatchedUnknownNotMemoized(t *testing.T) {
	b := NewBV()
	b.Reuse = true
	b.MaxConflicts = 3
	lit := b.LitFor(hardUnsat())
	if st := b.CheckLits([]Lit{lit}); st != Unknown {
		t.Fatalf("budgeted hard query = %v, want Unknown", st)
	}
	hits := b.MemoHits
	if st := b.CheckLits([]Lit{lit}); st != Unknown {
		t.Fatalf("repeat budgeted hard query = %v, want Unknown", st)
	}
	if b.MemoHits != hits {
		t.Fatalf("Unknown verdict was served from the memo (hits %d -> %d)", hits, b.MemoHits)
	}
	b.MaxConflicts = 0
	if st := b.CheckLits([]Lit{lit}); st != Unsat {
		t.Fatalf("lifted budget = %v, want Unsat", st)
	}
}

// TestBudgetLearntsPreserveVerdicts pins the second half of the memo ×
// budget contract: clauses learned during a budget-exhausted batched query
// are implied, so keeping them must not change any later verdict relative
// to a solver that never ran the exhausted query.
func TestBudgetLearntsPreserveVerdicts(t *testing.T) {
	x := expr.Var(8, "px")
	y := expr.Var(8, "py")
	followups := []*expr.Expr{
		expr.Ugt(x, expr.Const(8, 0xf0)),
		expr.Eq(expr.Mul(x, y), expr.Const(8, 0)),
		expr.Ne(expr.Add(x, y), expr.Add(y, x)),
		expr.Ult(expr.ZExt(x, 9), expr.Const(9, 0)),
	}

	poisoned := NewBV()
	poisoned.Reuse = true
	poisoned.MaxConflicts = 3
	if st := poisoned.CheckLits([]Lit{poisoned.LitFor(hardUnsat())}); st != Unknown {
		t.Fatalf("hard query = %v, want Unknown", st)
	}
	poisoned.MaxConflicts = 0

	clean := NewBV()
	clean.Reuse = true

	for i, f := range followups {
		got := poisoned.CheckLits([]Lit{poisoned.LitFor(f)})
		want := clean.CheckLits([]Lit{clean.LitFor(f)})
		if got != want {
			t.Fatalf("follow-up %d: after exhausted budget %v, clean solver %v", i, got, want)
		}
	}
}

// TestPortfolioDeterministic: the portfolio race must be a pure function of
// the query sequence — two identical instances agree on every verdict, and
// decisive verdicts match an unbudgeted reference solver.
func TestPortfolioDeterministic(t *testing.T) {
	queries := []*expr.Expr{
		hardUnsat(),
		expr.Ugt(expr.Var(8, "qa"), expr.Const(8, 7)),
		expr.Ne(expr.Mul(expr.Var(5, "qm"), expr.Const(5, 3)),
			expr.Mul(expr.Const(5, 3), expr.Var(5, "qm"))),
	}
	run := func() []Status {
		b := NewBV()
		b.Reuse = true
		b.MaxConflicts = 40
		b.Portfolio = 3
		var out []Status
		for _, q := range queries {
			out = append(out, b.CheckLits([]Lit{b.LitFor(q)}))
		}
		return out
	}
	first := run()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("query %d: run1=%v run2=%v", i, first[i], second[i])
		}
	}
	for i, q := range queries {
		if first[i] == Unknown {
			continue
		}
		ref := NewBV()
		if want := ref.CheckLits([]Lit{ref.LitFor(q)}); first[i] != want {
			t.Fatalf("query %d: portfolio=%v reference=%v", i, first[i], want)
		}
	}
}
