package solver

import "sync/atomic"

// Process-wide CDCL core counters, aggregated across every solver instance
// — including portfolio clones, which add their deltas when their Solve
// call returns. Everything here is atomic so the pokeemud /metrics
// endpoint can snapshot mid-campaign without racing the workers (a clone
// may still be mutating its own non-atomic per-instance fields, but those
// are never read across goroutines; only these totals are).
var (
	conflictsTotal     atomic.Int64
	decisionsTotal     atomic.Int64
	propsTotal         atomic.Int64
	restartsTotal      atomic.Int64
	reduceRunsTotal    atomic.Int64
	reduceRemovedTotal atomic.Int64
	subsumeHitsTotal   atomic.Int64
)

// Stats is a consistent-enough snapshot of the process-wide solver
// counters: each field is individually exact at some instant (all reads
// are atomic), which is the contract /metrics needs.
type Stats struct {
	Queries            int64 // CheckLits calls
	MemoHits           int64 // answered from the assumption-set memo
	MemoMisses         int64 // reached the SAT core
	SubsumeHits        int64 // answered by the model-subsumption fast path
	ReusedLevels       int64 // assumption levels kept alive by the batched front-end
	Conflicts          int64
	Decisions          int64
	Propagations       int64
	Restarts           int64
	ReduceRuns         int64 // reduceDB passes
	ReduceRemoved      int64 // learned clauses dropped by reduceDB
	PortfolioRaces     int64
	PortfolioCloneWins int64
}

// StatsSnapshot returns the process-wide solver counters. Safe to call
// concurrently with in-flight solves; every field is loaded atomically.
func StatsSnapshot() Stats {
	return Stats{
		Queries:            internalQueries.Load(),
		MemoHits:           memoHitsTotal.Load(),
		MemoMisses:         memoMissesTotal.Load(),
		SubsumeHits:        subsumeHitsTotal.Load(),
		ReusedLevels:       reusedLevelsTotal.Load(),
		Conflicts:          conflictsTotal.Load(),
		Decisions:          decisionsTotal.Load(),
		Propagations:       propsTotal.Load(),
		Restarts:           restartsTotal.Load(),
		ReduceRuns:         reduceRunsTotal.Load(),
		ReduceRemoved:      reduceRemovedTotal.Load(),
		PortfolioRaces:     portfolioRaces.Load(),
		PortfolioCloneWins: portfolioCloneWins.Load(),
	}
}

// SubsumeHitsTotal reports process-wide model-subsumption fast-path hits.
func SubsumeHitsTotal() int64 { return subsumeHitsTotal.Load() }
