package solver

import (
	"testing"

	"pokeemu/internal/expr"
)

// hardUnsat builds a query that needs real search: commutativity of 6-bit
// multiplication, a*b != b*a. Unsatisfiable, but the bit-blasted proof
// costs far more than a handful of conflicts.
func hardUnsat() *expr.Expr {
	a, b := expr.Var(6, "a"), expr.Var(6, "b")
	return expr.Ne(expr.Mul(a, b), expr.Mul(b, a))
}

// TestMaxConflictsUnknown: a tiny conflict budget must degrade the hard
// query to Unknown — deterministically, on every call — while the same
// query without a budget proves Unsat.
func TestMaxConflictsUnknown(t *testing.T) {
	ne := hardUnsat()

	limited := NewBV()
	limited.MaxConflicts = 3
	lit := limited.LitFor(ne)
	if st := limited.CheckLits([]Lit{lit}); st != Unknown {
		t.Fatalf("CheckLits with MaxConflicts=3 = %v, want Unknown", st)
	}
	// Determinism: the same budget gives the same answer again (and the
	// Unknown must not have been memoized as a final verdict).
	if st := limited.CheckLits([]Lit{lit}); st != Unknown {
		t.Fatalf("second CheckLits with MaxConflicts=3 = %v, want Unknown", st)
	}

	// Lifting the budget on the same instance must now prove Unsat — if the
	// earlier Unknown had been memoized, this would wrongly repeat it.
	limited.MaxConflicts = 0
	if st := limited.CheckLits([]Lit{lit}); st != Unsat {
		t.Fatalf("CheckLits after lifting the budget = %v, want Unsat", st)
	}

	unlimited := NewBV()
	if st := unlimited.CheckLits([]Lit{unlimited.LitFor(ne)}); st != Unsat {
		t.Fatalf("CheckLits without a budget = %v, want Unsat", st)
	}
}

// TestMaxConflictsSatUnaffected: easy queries stay decidable under a small
// budget, and Sat answers still come with models.
func TestMaxConflictsSatUnaffected(t *testing.T) {
	b := NewBV()
	b.MaxConflicts = 1
	a := expr.Var(8, "a")
	eq := expr.Eq(a, expr.Const(8, 0x42))
	if st := b.CheckLits([]Lit{b.LitFor(eq)}); st != Sat {
		t.Fatalf("trivial Sat query under MaxConflicts=1 = %v, want Sat", st)
	}
	if got := b.Model()["a"]; got != 0x42 {
		t.Fatalf("model[a] = %#x, want 0x42", got)
	}
}

// TestMaxConflictsSoundAfterUnknown: an aborted search must leave the
// solver usable — subsequent unrelated queries answer correctly (learned
// clauses from the aborted run are sound to keep).
func TestMaxConflictsSoundAfterUnknown(t *testing.T) {
	b := NewBV()
	b.MaxConflicts = 3
	if st := b.CheckLits([]Lit{b.LitFor(hardUnsat())}); st != Unknown {
		t.Fatalf("hard query = %v, want Unknown", st)
	}
	b.MaxConflicts = 0
	a := expr.Var(8, "x")
	sat := b.LitFor(expr.Ugt(a, expr.Const(8, 0xf0)))
	if st := b.CheckLits([]Lit{sat}); st != Sat {
		t.Fatalf("follow-up Sat query = %v, want Sat", st)
	}
	if m := b.Model()["x"]; m <= 0xf0 {
		t.Fatalf("model[x] = %#x, want > 0xf0", m)
	}
	unsat := b.LitFor(expr.Ult(expr.ZExt(a, 9), expr.Const(9, 0)))
	if st := b.CheckLits([]Lit{unsat}); st != Unsat {
		t.Fatalf("follow-up Unsat query = %v, want Unsat", st)
	}
}
