package solver

import (
	"os"
	"testing"
)

// TestMain turns on the debug-build validation gate for the whole package:
// every Sat verdict any test produces is re-checked against the full
// clause set and assumptions, and every reduceDB pass re-checks watcher
// integrity. Production builds leave Validate off.
func TestMain(m *testing.M) {
	Validate = true
	os.Exit(m.Run())
}
