package solver

import (
	"testing"

	"pokeemu/internal/expr"
)

// TestCheckLitsMemo verifies the assumption-set memo: a repeated query is
// answered from the cache (order-insensitively), the restored model is as
// usable as a freshly solved one, and Assert invalidates everything.
func TestCheckLitsMemo(t *testing.T) {
	b := NewBV()
	x := expr.Var(8, "x")
	la := b.LitFor(expr.Eq(x, expr.Const(8, 5)))
	lb := b.LitFor(expr.Ult(expr.Const(8, 1), x))

	if st := b.CheckLits([]Lit{la, lb}); st != Sat {
		t.Fatalf("first query = %v, want Sat", st)
	}
	if b.MemoHits != 0 || b.MemoMisses != 1 {
		t.Fatalf("after miss: hits=%d misses=%d", b.MemoHits, b.MemoMisses)
	}
	// Same set, reversed order: must hit, and the model must still say x=5.
	if st := b.CheckLits([]Lit{lb, la}); st != Sat {
		t.Fatalf("repeat query = %v, want Sat", st)
	}
	if b.MemoHits != 1 {
		t.Fatalf("reordered repeat did not hit the memo: hits=%d", b.MemoHits)
	}
	if v := b.ModelVal("x"); v != 5 {
		t.Fatalf("model after memo hit: x=%d, want 5", v)
	}

	// Sign-aware: the negated assumption is a different query.
	if st := b.CheckLits([]Lit{la.Neg(), lb}); st != Sat {
		t.Fatalf("negated query = %v, want Sat", st)
	}
	if b.MemoHits != 1 || b.MemoMisses != 2 {
		t.Fatalf("negated literal reused an entry: hits=%d misses=%d", b.MemoHits, b.MemoMisses)
	}
	if v := b.ModelVal("x"); v == 5 || v <= 1 {
		t.Fatalf("model for negated query: x=%d, want x!=5 && x>1", v)
	}

	// A new hard constraint can flip Sat answers; the memo must not survive.
	b.Assert(expr.Ne(x, expr.Const(8, 5)))
	if st := b.CheckLits([]Lit{la, lb}); st != Unsat {
		t.Fatalf("post-Assert query = %v, want Unsat", st)
	}
	if b.MemoHits != 1 {
		t.Fatalf("memo served a stale entry across Assert: hits=%d", b.MemoHits)
	}
}

// TestCheckLitsMemoModelRestoredForLaterVars checks the documented edge:
// after a memo hit restores an older model snapshot, variables encoded
// after the snapshot read as zero instead of garbage.
func TestCheckLitsMemoModelRestoredForLaterVars(t *testing.T) {
	b := NewBV()
	x := expr.Var(8, "x")
	l := b.LitFor(expr.Eq(x, expr.Const(8, 7)))
	if st := b.CheckLits([]Lit{l}); st != Sat {
		t.Fatal("seed query not Sat")
	}
	// Encode a new variable, then re-ask the memoized query.
	y := expr.Var(8, "y")
	ly := b.LitFor(expr.Eq(y, expr.Const(8, 200)))
	if st := b.CheckLits([]Lit{ly}); st != Sat {
		t.Fatal("y query not Sat")
	}
	if st := b.CheckLits([]Lit{l}); st != Sat {
		t.Fatal("memoized query not Sat")
	}
	if b.MemoHits != 1 {
		t.Fatalf("expected one memo hit, got %d", b.MemoHits)
	}
	if v := b.ModelVal("x"); v != 7 {
		t.Fatalf("restored model: x=%d, want 7", v)
	}
	if v := b.ModelVal("y"); v != 0 {
		t.Fatalf("variable newer than the snapshot: y=%d, want 0", v)
	}
}

// TestSolverCachesBounded is the regression test for unbounded cache
// growth: flooding one BV with far more distinct terms and queries than
// the cache caps must leave every cache at or under its bound.
func TestSolverCachesBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("floods caches")
	}
	b := NewBV()
	x := expr.Var(32, "x")
	// A few hundred base literals combined pairwise give tens of thousands
	// of distinct assumption sets over one small CNF, so the flood is cheap.
	base := make([]Lit, 220)
	for i := range base {
		base[i] = b.LitFor(expr.Ult(x, expr.Const(32, uint64(i)+1)))
	}
	queries := 0
	for i := 0; i < len(base) && queries < checkMemoCap+checkMemoCap/2; i++ {
		for j := i + 1; j < len(base) && queries < checkMemoCap+checkMemoCap/2; j++ {
			if st := b.CheckLits([]Lit{base[i], base[j]}); st != Sat {
				t.Fatalf("query (%d,%d) = %v, want Sat", i, j, st)
			}
			queries++
		}
	}
	if len(b.memo) > checkMemoCap {
		t.Fatalf("check memo exceeded its cap: %d > %d", len(b.memo), checkMemoCap)
	}
	if len(b.ptr) > encodeCacheCap || len(b.hmemo) > encodeCacheCap {
		t.Fatalf("translation caches exceeded their cap: ptr=%d hmemo=%d > %d",
			len(b.ptr), len(b.hmemo), encodeCacheCap)
	}
}
