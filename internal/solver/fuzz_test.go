package solver

import (
	"encoding/binary"
	"testing"

	"pokeemu/internal/expr"
)

// buildFuzzTerm interprets data as a little stack machine over three
// variables, producing one term of a width chosen by the first byte. Every
// opcode keeps the stack at width w (comparisons are folded back through
// Ite), so arbitrary byte strings yield well-formed terms. Returns nil when
// the data is too short to build anything interesting.
func buildFuzzTerm(data []byte) (*expr.Expr, map[string]uint8) {
	if len(data) < 3 {
		return nil, nil
	}
	widths := []uint8{1, 4, 8, 16, 32, 64}
	w := widths[int(data[0])%len(widths)]
	vars := map[string]uint8{"a": w, "b": w, "c": w}
	stack := []*expr.Expr{expr.Var(w, "a")}
	pop := func() *expr.Expr {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	ops := 0
	for i := 1; i < len(data) && ops < 24; i++ {
		ops++
		switch op := data[i] % 26; {
		case op == 0:
			var v uint64
			if i+8 < len(data) {
				v = binary.LittleEndian.Uint64(data[i+1:])
				i += 8
			}
			stack = append(stack, expr.Const(w, v))
		case op == 1:
			stack = append(stack, expr.Var(w, "b"))
		case op == 2:
			stack = append(stack, expr.Var(w, "c"))
		case op < 16: // binary
			if len(stack) < 2 {
				continue
			}
			y, x := pop(), pop()
			var e *expr.Expr
			switch op {
			case 3:
				e = expr.Add(x, y)
			case 4:
				e = expr.Sub(x, y)
			case 5:
				e = expr.Mul(x, y)
			case 6:
				e = expr.And(x, y)
			case 7:
				e = expr.Or(x, y)
			case 8:
				e = expr.Xor(x, y)
			case 9:
				e = expr.Shl(x, y)
			case 10:
				e = expr.LShr(x, y)
			case 11:
				e = expr.AShr(x, y)
			case 12:
				e = expr.UDiv(x, y)
			case 13:
				e = expr.URem(x, y)
			case 14: // comparison folded back to width w
				e = expr.Ite(expr.Ult(x, y), x, y)
			default: // 15
				e = expr.Ite(expr.Slt(x, y), y, x)
			}
			stack = append(stack, e)
		case op == 16:
			stack = append(stack, expr.Not(pop()))
		case op == 17:
			stack = append(stack, expr.Neg(pop()))
		case op == 18 && w > 1: // narrow then zero-extend back
			half := w / 2
			stack = append(stack, expr.ZExt(expr.Extract(pop(), 0, half), w))
		case op == 19 && w > 1: // narrow high half then sign-extend back
			half := w / 2
			stack = append(stack, expr.SExt(expr.Extract(pop(), w-half, half), w))
		case op == 20 && w > 1 && w%2 == 0: // split and reconcatenate swapped
			x := pop()
			half := w / 2
			stack = append(stack, expr.Concat(
				expr.Extract(x, 0, half), expr.Extract(x, half, half)))
		case op == 21:
			if len(stack) < 2 {
				continue
			}
			y, x := pop(), pop()
			stack = append(stack, expr.Ite(expr.Eq(x, y), expr.Xor(x, y), expr.Or(x, y)))
		// Opcodes 22-25 mirror the term shapes the equivcheck celer lifter
		// emits, so the oracle covers the lifting path's simplifier rewrites.
		case op == 22 && w < 64: // rcl/rcr: rotate through a w+1-bit concat
			x := pop()
			wide := expr.Concat(expr.Extract(x, 0, 1), x)
			n := expr.URem(expr.ZExt(x, w+1), expr.Const(w+1, uint64(w)+1))
			comp := expr.Sub(expr.Const(w+1, uint64(w)+1), n)
			rx := expr.Or(expr.Shl(wide, n), expr.LShr(wide, comp))
			stack = append(stack, expr.Extract(rx, 0, w))
		case op == 23: // aam: division/remainder by a small constant
			x := pop()
			d := expr.Const(w, uint64(data[i]%9)+1)
			stack = append(stack, expr.Xor(expr.UDiv(x, d), expr.URem(x, d)))
		case op == 24: // ror: shift by the width-complement of a masked count
			x := pop()
			n := expr.And(x, expr.Const(w, uint64(w)-1))
			comp := expr.Sub(expr.Const(w, uint64(w)), n)
			stack = append(stack, expr.Or(expr.LShr(x, n), expr.Shl(x, comp)))
		case op == 25: // idiv magnitude fix-up: sign-guarded negation chain
			x := pop()
			neg := expr.Extract(x, w-1, 1)
			absX := expr.Ite(neg, expr.Neg(x), x)
			stack = append(stack, expr.Ite(neg, expr.Neg(absX), absX))
		}
	}
	return stack[len(stack)-1], vars
}

// FuzzSemanticsOracle cross-checks the bit-blaster against the pure
// evaluator (the Tamarin-style disequivalence check): build a random term,
// solve for any model, and require that (1) the value the solver's model
// assigns to the term equals expr.Eval under the same assignment, and (2)
// pinning every variable to that assignment and asserting the term differs
// from the evaluator's answer is Unsat. The two implementations of the
// bit-vector semantics must be extensionally equal.
func FuzzSemanticsOracle(f *testing.F) {
	f.Add([]byte{0, 9, 1})                              // a << b at width 1
	f.Add([]byte{2, 1, 9, 2, 10, 11})                   // shifts at width 8
	f.Add([]byte{3, 1, 12, 2, 13})                      // div/rem at width 16
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 12})     // division by zero
	f.Add([]byte{5, 18, 19, 1, 14, 2, 15, 20})          // ext/extract at width 64
	f.Add([]byte{1, 1, 21, 16, 17, 5})                  // ite/eq chain at width 4
	f.Add([]byte{2, 1, 3, 2, 4, 5, 6, 7, 8, 9, 10, 11}) // everything, width 8
	f.Add([]byte{2, 22, 23, 24, 25})                    // lifted celer shapes, width 8
	f.Add([]byte{4, 1, 22, 2, 24, 25})                  // lifted shapes at width 32
	f.Add([]byte{0, 22, 25, 23})                        // lifted shapes at width 1
	f.Fuzz(func(t *testing.T, data []byte) {
		e, vars := buildFuzzTerm(data)
		if e == nil {
			return
		}
		b := NewBV()
		bits := b.Bits(e)
		if len(bits) != int(e.Width) {
			t.Fatalf("encoded %d bits for a width-%d term", len(bits), e.Width)
		}
		if st := b.CheckLits(nil); st != Sat {
			t.Fatalf("unconstrained check = %v, want Sat", st)
		}
		model := b.Model()
		got := b.ValueOf(e)
		want := expr.Eval(e, model)
		if got != want {
			t.Fatalf("model disagreement on %v:\n  model %v\n  solver %#x\n  eval   %#x",
				e, model, got, want)
		}
		// Pin the variables and assert the term differs from the evaluator's
		// answer: if the bit-blaster implements the same function, this is
		// unsatisfiable.
		var lits []Lit
		for name, vw := range vars {
			lits = append(lits, b.LitFor(
				expr.Eq(expr.Var(vw, name), expr.Const(vw, model[name]))))
		}
		lits = append(lits, b.LitFor(expr.Ne(e, expr.Const(e.Width, want))))
		if st := b.CheckLits(lits); st != Unsat {
			t.Fatalf("bit-blaster diverges from expr.Eval on %v under %v (status %v)",
				e, model, st)
		}
	})
}
