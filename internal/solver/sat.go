// Package solver implements the decision procedure used by symbolic
// execution: a CDCL SAT solver (two-watched literals over a flat clause
// arena, first-UIP clause learning, VSIDS-style variable activity, phase
// saving, Luby restarts, LBD-scored learned-clause reduction, incremental
// solving under assumptions) plus a bit-blaster that lowers bit-vector
// terms from package expr to CNF. Together they play the role STP and Z3
// play for FuzzBALL: quantifier-free bit-vector satisfiability with model
// generation.
package solver

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Lit is a SAT literal: variable index v encoded as 2v (positive) or
// 2v+1 (negated).
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

const (
	valUnassigned int8 = -1
	valFalse      int8 = 0
	valTrue       int8 = 1
)

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

const noReason int32 = -1

// Validate, when true, makes every Sat result re-check the full clause set
// plus assumptions against the returned model, and every reduceDB pass
// re-check watcher integrity and level-0 trail consistency for the
// retained clauses, panicking on any violation. It is a debug-build knob:
// test mains switch it on so correctness is machine-checked on every run,
// while production binaries leave it off. Set it before solving starts —
// it is read without synchronization.
var Validate bool

// Clause arena layout. All clause literals live in one contiguous []int32
// slab; a clause reference is the offset of its header in the slab:
//
//	arena[ref+0] = size<<1 | learntFlag
//	arena[ref+1] = lbd       (0 for problem clauses)
//	arena[ref+2 .. ref+2+size) = literals
//
// clauseHdr is the header size in words. Refs are always >= 0, so
// noReason (-1) stays a valid sentinel.
const clauseHdr = 2

// CDCL is a conflict-driven clause-learning SAT solver. The zero value is not usable; call NewSat.
type CDCL struct {
	arena      []int32 // flat clause slab; see the layout comment above
	nclauses   int
	learntRefs []int32 // arena refs of learned clauses, in learn order
	watches    [][]watcher
	// assign is literal-indexed: assign[l] is the value of literal l, so
	// the propagate inner loop is a single unconditional array load with
	// no sign branch. enqueue writes both polarities.
	assign   []int8
	level    []int32
	reason   []int32
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap
	phase    []bool
	seen     []bool

	lbdStamp []int64 // per-level stamp used to count distinct levels
	lbdToken int64

	ok    bool   // false once a top-level conflict is found
	model []bool // assignment snapshot from the last Sat result; a
	// fresh slice per Sat, never mutated afterwards, so callers may share
	// it without copying
	Conflicts int64
	Decisions int64
	Props     int64
	Restarts  int64
	Reduces   int64 // reduceDB passes run
	Removed   int64 // learned clauses dropped by reduceDB

	// MaxConflicts bounds the conflicts a single Solve call may spend
	// before giving up with Unknown (0 = unlimited). Unlike a wall-clock
	// timeout this budget is deterministic: the same query sequence yields
	// the same answer on every run and every machine, which is what lets
	// the equivalence checker report a reproducible UNKNOWN verdict
	// instead of a machine-speed-dependent one.
	MaxConflicts int64

	// Reuse keeps the assumption-decision prefix of the trail alive
	// between Solve calls. Sibling queries from one explore task share a
	// long path-condition prefix; with Reuse on, a call only backtracks to
	// the longest common prefix with the previous call's assumptions and
	// re-decides the suffix, instead of re-deciding and re-propagating the
	// whole prefix from level 0 every time.
	Reuse       bool
	keptAssumps []Lit
	// ReusedLevels counts assumption decision levels carried over between
	// Solve calls by Reuse (a measure of re-decide work avoided).
	ReusedLevels int64

	// NoReduce disables the periodic reduceDB pass, freezing the learned
	// clause database exactly as the pre-reduction solver kept it. The
	// equivalence checker pins its counterexample models with this.
	NoReduce bool
	// ReduceBase is the conflict count at which the first reduceDB pass
	// triggers; each pass pushes the next trigger out by ReduceBase plus a
	// growing increment. 0 means the default (2000).
	ReduceBase int64
	reduceNext int64

	// RestartBase scales the Luby restart sequence (0 = default 100).
	RestartBase int64

	// Seed perturbs the decision heuristic and restart schedule
	// deterministically — portfolio clones run the same query under
	// different seeds so at least one may escape a hard search region.
	// Zero means the unperturbed default heuristics.
	Seed uint64
	rng  uint64

	// Stop, when non-nil, is polled once per conflict; setting it to a
	// non-zero value makes Solve return Unknown at the next conflict. The
	// portfolio front-end uses it to retire losing clones early.
	Stop *int32
}

// NewSat returns an empty solver.
func NewSat() *CDCL {
	return &CDCL{ok: true, varInc: 1.0}
}

// NumVars returns the number of allocated variables.
func (s *CDCL) NumVars() int { return len(s.assign) / 2 }

// NumClauses returns the number of clauses currently attached (problem
// plus retained learned clauses).
func (s *CDCL) NumClauses() int { return s.nclauses }

// Clone deep-copies the solver — the clause arena included, since
// propagate reorders literals in place — so a portfolio clone can search
// the same formula under a different Seed without sharing any mutable
// state with the primary. The model snapshot is shared: it is immutable
// once taken.
func (s *CDCL) Clone() *CDCL {
	c := &CDCL{
		nclauses:     s.nclauses,
		qhead:        s.qhead,
		varInc:       s.varInc,
		lbdToken:     s.lbdToken,
		ok:           s.ok,
		model:        s.model,
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Props:        s.Props,
		Restarts:     s.Restarts,
		Reduces:      s.Reduces,
		Removed:      s.Removed,
		MaxConflicts: s.MaxConflicts,
		Reuse:        s.Reuse,
		ReusedLevels: s.ReusedLevels,
		NoReduce:     s.NoReduce,
		ReduceBase:   s.ReduceBase,
		reduceNext:   s.reduceNext,
		RestartBase:  s.RestartBase,
		Seed:         s.Seed,
		rng:          s.rng,
	}
	c.arena = append([]int32(nil), s.arena...)
	c.learntRefs = append([]int32(nil), s.learntRefs...)
	c.watches = make([][]watcher, len(s.watches))
	for i, w := range s.watches {
		c.watches[i] = append([]watcher(nil), w...)
	}
	c.assign = append([]int8(nil), s.assign...)
	c.level = append([]int32(nil), s.level...)
	c.reason = append([]int32(nil), s.reason...)
	c.trail = append([]Lit(nil), s.trail...)
	c.trailLim = append([]int(nil), s.trailLim...)
	c.activity = append([]float64(nil), s.activity...)
	c.phase = append([]bool(nil), s.phase...)
	c.seen = append([]bool(nil), s.seen...)
	c.lbdStamp = append([]int64(nil), s.lbdStamp...)
	c.keptAssumps = append([]Lit(nil), s.keptAssumps...)
	c.heap.heap = append([]int(nil), s.heap.heap...)
	c.heap.pos = append([]int(nil), s.heap.pos...)
	return c
}

// NewVar allocates a fresh variable and returns its index.
func (s *CDCL) NewVar() int {
	v := len(s.assign) / 2
	s.assign = append(s.assign, valUnassigned, valUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v, s.activity)
	return v
}

func (s *CDCL) value(l Lit) int8 { return s.assign[l] }

// varValue returns the assignment of variable v (the positive literal's
// value).
func (s *CDCL) varValue(v int) int8 { return s.assign[Lit(v)<<1] }

// Value reports the model value of variable v after a Sat result.
func (s *CDCL) Value(v int) bool { return v < len(s.model) && s.model[v] }

// Model returns the last Sat model. The slice is immutable: Solve takes a
// fresh snapshot per Sat result, so holding onto it is safe and free.
func (s *CDCL) Model() []bool { return s.model }

// SetModel installs a model snapshot (used by the memoizing front-end to
// restore a cached result). The caller must not mutate the slice.
func (s *CDCL) SetModel(m []bool) { s.model = m }

func (s *CDCL) decisionLevel() int { return len(s.trailLim) }

// clauseLits returns the literal window of the clause at ref, aliasing
// the arena (propagate reorders it in place).
func (s *CDCL) clauseLits(ref int32) []int32 {
	size := s.arena[ref] >> 1
	return s.arena[ref+clauseHdr : ref+clauseHdr+size : ref+clauseHdr+size]
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state at level 0. With Reuse the
// call may arrive while an assumption trail is still standing; the clause
// is then attached without disturbing the kept levels whenever possible.
func (s *CDCL) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Normalize using level-0 assignments only. Dropping a literal that is
	// false merely under the standing assumptions would strengthen the
	// clause unsoundly, and a clause satisfied only above level 0 must
	// still be attached for when that level is undone.
	out := lits[:0:0]
	for _, l := range lits {
		if s.varValue(l.Var()) != valUnassigned && s.level[l.Var()] == 0 {
			switch s.value(l) {
			case valTrue:
				return true
			case valFalse:
				continue
			}
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		// A unit must take effect at level 0 or it would be lost on the
		// next backtrack.
		s.cancelUntil(0)
		if s.value(out[0]) != valTrue {
			s.enqueue(out[0], noReason)
			if s.propagate() != noReason {
				s.ok = false
				return false
			}
		}
		return true
	}
	if s.decisionLevel() > 0 {
		// Watch two currently-non-false literals so the watcher invariant
		// holds without touching the kept trail. Every bit-blaster clause
		// carries a fresh gate literal, so this nearly always succeeds; the
		// fallback full backtrack is rare and always sound.
		w := 0
		for i := 0; i < len(out) && w < 2; i++ {
			if s.value(out[i]) != valFalse {
				out[i], out[w] = out[w], out[i]
				w++
			}
		}
		if w < 2 {
			s.cancelUntil(0)
		}
	}
	s.attachClause(out, false, 0)
	return true
}

// watcher pairs a watched clause reference with a blocker — a literal of the
// clause (initially the other watch) whose truth proves the clause satisfied
// without loading the clause itself. Blockers are a pure memory-traffic
// optimization: they only short-circuit clauses propagate would have kept
// anyway, so the search — decisions, conflicts, learned clauses, models — is
// bit-for-bit unchanged.
type watcher struct {
	ref     int32
	blocker Lit
}

// attachClause appends the clause to the arena and installs its two
// watchers. The literal order is preserved: lits[0] and lits[1] become the
// watched pair, exactly as the pre-arena solver watched c[0] and c[1].
func (s *CDCL) attachClause(c []Lit, learnt bool, lbd int32) int32 {
	ref := int32(len(s.arena))
	hdr := int32(len(c)) << 1
	if learnt {
		hdr |= 1
	}
	s.arena = append(s.arena, hdr, lbd)
	for _, l := range c {
		s.arena = append(s.arena, int32(l))
	}
	s.nclauses++
	s.watches[c[0]] = append(s.watches[c[0]], watcher{ref, c[1]})
	s.watches[c[1]] = append(s.watches[c[1]], watcher{ref, c[0]})
	if learnt {
		s.learntRefs = append(s.learntRefs, ref)
	}
	return ref
}

func (s *CDCL) enqueue(l Lit, from int32) {
	v := l.Var()
	s.assign[l] = valTrue
	s.assign[l^1] = valFalse
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the reference of a
// conflicting clause, or noReason if none.
func (s *CDCL) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; scan watchers of ¬p
		s.qhead++
		s.Props++
		fp := p.Neg()
		ws := s.watches[fp]
		kept := ws[:0]
		var confl int32 = noReason
		for i := 0; i < len(ws); i++ {
			// A true blocker proves the clause satisfied without loading it.
			if s.assign[ws[i].blocker] == valTrue {
				kept = append(kept, ws[i])
				continue
			}
			ref := ws[i].ref
			c := s.clauseLits(ref)
			// Ensure the false literal is at position 1.
			if Lit(c[0]) == fp {
				c[0], c[1] = c[1], c[0]
			}
			first := Lit(c[0])
			// If the other watch is true, the clause is satisfied; refresh
			// the blocker so the next visit can skip the clause load.
			if s.assign[first] == valTrue {
				kept = append(kept, watcher{ref, first})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c); k++ {
				if s.assign[Lit(c[k])] != valFalse {
					c[1], c[k] = c[k], c[1]
					nw := Lit(c[1])
					s.watches[nw] = append(s.watches[nw], watcher{ref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{ref, first})
			if s.assign[first] == valFalse {
				confl = ref
				// Copy remaining watchers and stop.
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.enqueue(first, ref)
		}
		s.watches[fp] = kept
		if confl != noReason {
			return confl
		}
	}
	return noReason
}

func (s *CDCL) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

// analyze derives a first-UIP learned clause from the conflict and returns it
// with the backtrack level. learnt[0] is the asserting literal.
func (s *CDCL) analyze(confl int32) (learnt []Lit, backLevel int32) {
	counter := 0
	p := Lit(-1)
	learnt = append(learnt, 0) // slot for the asserting literal
	idx := len(s.trail) - 1
	for {
		c := s.clauseLits(confl)
		start := 0
		if p != Lit(-1) {
			start = 1 // skip the asserting literal itself
		}
		for _, qi := range c[start:] {
			q := Lit(qi)
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == int32(s.decisionLevel()) {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
		idx--
	}
	learnt[0] = p.Neg()
	// Compute backtrack level: the highest level among the other literals.
	backLevel = 0
	swapPos := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > backLevel {
			backLevel = lv
			swapPos = i
		}
	}
	if swapPos != 0 {
		learnt[1], learnt[swapPos] = learnt[swapPos], learnt[1]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	s.varInc /= 0.95
	return learnt, backLevel
}

// computeLBD counts the distinct non-zero decision levels among the
// clause's literals — the "glue" of the learned clause. Low-LBD clauses
// chain propagations across few levels and are the ones worth keeping.
// Must be called before backtracking, while the literals' levels stand.
func (s *CDCL) computeLBD(lits []Lit) int32 {
	s.lbdToken++
	var n int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv == 0 {
			continue
		}
		for int(lv) >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, 0)
		}
		if s.lbdStamp[lv] != s.lbdToken {
			s.lbdStamp[lv] = s.lbdToken
			n++
		}
	}
	return n
}

// cancelUntil undoes assignments above the given decision level. Any kept
// assumption record beyond the surviving levels is invalidated here, so
// restarts, backjumps, and learned units automatically shrink the reusable
// prefix instead of leaving it stale.
func (s *CDCL) cancelUntil(lvl int) {
	if lvl < len(s.keptAssumps) {
		s.keptAssumps = s.keptAssumps[:lvl]
	}
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		// The trail literal was enqueued true, so the variable's saved
		// phase is simply the literal's polarity.
		s.phase[v] = !l.Sign()
		s.assign[l] = valUnassigned
		s.assign[l^1] = valUnassigned
		s.reason[v] = noReason
		if !s.heap.contains(v) {
			s.heap.push(v, s.activity)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *CDCL) pickBranchVar() int {
	for s.heap.size() > 0 {
		v := s.heap.pop(s.activity)
		if s.varValue(v) == valUnassigned {
			return v
		}
	}
	return -1
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// maybeReduce runs a reduceDB pass when the conflict count has crossed the
// next trigger. It must be called at a restart point: decision level 0,
// propagation complete, so the trail holds only level-0 assignments (whose
// clause reasons are handled as locked clauses).
func (s *CDCL) maybeReduce() {
	if s.NoReduce || len(s.learntRefs) == 0 {
		return
	}
	base := s.ReduceBase
	if base == 0 {
		base = defaultReduceBase
	}
	if s.reduceNext == 0 {
		s.reduceNext = base
	}
	if s.Conflicts < s.reduceNext {
		return
	}
	s.reduceDB()
	s.Reduces++
	// Each pass pushes the trigger out by the base plus a growing
	// increment, so reduction stays periodic but less frequent as the
	// clause database proves its keep.
	s.reduceNext = s.Conflicts + base + reduceIncrement*s.Reduces
	reduceRunsTotal.Add(1)
	if Validate {
		s.validateArena()
	}
}

const (
	defaultReduceBase = 2000
	reduceIncrement   = 300
	keepLBD           = 2 // learned clauses at or below this glue are kept forever
)

// reduceDB drops the worst half of the removable learned clauses (by LBD,
// ties by age) and compacts the arena in place, rewriting every watcher
// ref, reason ref, and learnt ref to the clause's new offset. Clauses that
// are locked — the reason of a currently-assigned variable — and low-glue
// clauses are always kept.
func (s *CDCL) reduceDB() {
	locked := make(map[int32]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != noReason {
			locked[r] = true
		}
	}
	// Collect removal candidates: learned, high glue, not locked, not
	// binary (binary clauses are cheap to keep and expensive to relearn).
	type cand struct {
		ref int32
		lbd int32
	}
	var cands []cand
	for _, ref := range s.learntRefs {
		size := s.arena[ref] >> 1
		lbd := s.arena[ref+1]
		if size <= 2 || lbd <= keepLBD || locked[ref] {
			continue
		}
		cands = append(cands, cand{ref, lbd})
	}
	if len(cands) < 2 {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lbd != cands[j].lbd {
			return cands[i].lbd < cands[j].lbd
		}
		return cands[i].ref < cands[j].ref
	})
	removed := make(map[int32]bool, len(cands)/2)
	for _, c := range cands[len(cands)/2:] {
		removed[c.ref] = true
	}
	s.Removed += int64(len(removed))
	reduceRemovedTotal.Add(int64(len(removed)))

	// Compact the slab: slide every surviving clause down, recording its
	// new offset. Relative clause order is preserved, so watcher-list
	// order — and with it the propagation visit order — is unchanged for
	// the survivors.
	remap := make(map[int32]int32, s.nclauses)
	var dst int32
	for src := int32(0); src < int32(len(s.arena)); {
		total := clauseHdr + s.arena[src]>>1
		if removed[src] {
			src += total
			continue
		}
		remap[src] = dst
		copy(s.arena[dst:dst+total], s.arena[src:src+total])
		src += total
		dst += total
	}
	s.arena = s.arena[:dst]
	s.nclauses -= len(removed)

	for li := range s.watches {
		ws := s.watches[li]
		kept := ws[:0]
		for _, w := range ws {
			if nr, ok := remap[w.ref]; ok {
				w.ref = nr
				kept = append(kept, w)
			}
		}
		s.watches[li] = kept
	}
	for _, l := range s.trail {
		v := l.Var()
		if r := s.reason[v]; r != noReason {
			s.reason[v] = remap[r]
		}
	}
	kept := s.learntRefs[:0]
	for _, ref := range s.learntRefs {
		if nr, ok := remap[ref]; ok {
			kept = append(kept, nr)
		}
	}
	s.learntRefs = kept
}

// validateArena checks the post-reduceDB invariants: every clause is
// watched exactly on its first two literals, every watcher points at a
// live clause, and no retained clause is falsified on its watched pair at
// level 0 (which would mean a propagation was lost in compaction). It
// panics on violation — this is the Validate debug gate, not a recovery
// path.
func (s *CDCL) validateArena() {
	watchCount := make(map[int32]int, s.nclauses)
	for li := range s.watches {
		for _, w := range s.watches[li] {
			if w.ref < 0 || w.ref+clauseHdr > int32(len(s.arena)) {
				panic(fmt.Sprintf("solver: watcher ref %d out of arena bounds", w.ref))
			}
			c := s.clauseLits(w.ref)
			if Lit(c[0]) != Lit(li) && Lit(c[1]) != Lit(li) {
				panic(fmt.Sprintf("solver: watcher for lit %d not on clause %d watch pair", li, w.ref))
			}
			watchCount[w.ref]++
		}
	}
	for ref := int32(0); ref < int32(len(s.arena)); {
		size := s.arena[ref] >> 1
		if size < 2 {
			panic(fmt.Sprintf("solver: clause %d has size %d in arena", ref, size))
		}
		if watchCount[ref] != 2 {
			panic(fmt.Sprintf("solver: clause %d has %d watchers, want 2", ref, watchCount[ref]))
		}
		c := s.clauseLits(ref)
		// A fully-falsified watch pair at level 0 means compaction lost a
		// propagation — unless the solver has already derived a level-0
		// conflict (!ok), where a falsified clause is exactly the point.
		if s.ok && s.decisionLevel() == 0 && s.qhead == len(s.trail) {
			if s.assign[Lit(c[0])] == valFalse && s.assign[Lit(c[1])] == valFalse {
				panic(fmt.Sprintf("solver: clause %d watch pair falsified at level 0", ref))
			}
		}
		ref += clauseHdr + size
	}
}

// validateModel checks a Sat model against the full clause set and the
// assumptions, panicking on any falsified clause. This is the Validate
// debug gate; it runs after the model snapshot and before Solve returns.
func (s *CDCL) validateModel(assumps []Lit) {
	litTrue := func(l Lit) bool {
		v := l.Var()
		return v < len(s.model) && s.model[v] != l.Sign()
	}
	for ref := int32(0); ref < int32(len(s.arena)); {
		size := s.arena[ref] >> 1
		sat := false
		for _, li := range s.clauseLits(ref) {
			if litTrue(Lit(li)) {
				sat = true
				break
			}
		}
		if !sat {
			panic(fmt.Sprintf("solver: model falsifies clause at ref %d", ref))
		}
		ref += clauseHdr + size
	}
	for _, l := range assumps {
		if !litTrue(l) {
			panic(fmt.Sprintf("solver: model falsifies assumption %d", l))
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
func (s *CDCL) Solve(assumps []Lit) Status {
	c0, d0, p0, r0 := s.Conflicts, s.Decisions, s.Props, s.Restarts
	defer func() {
		conflictsTotal.Add(s.Conflicts - c0)
		decisionsTotal.Add(s.Decisions - d0)
		propsTotal.Add(s.Props - p0)
		restartsTotal.Add(s.Restarts - r0)
	}()
	if !s.ok {
		return Unsat
	}
	if s.Reuse {
		// Backtrack only to the longest common prefix with the previous
		// call's assumptions; the shared levels and their propagations
		// survive intact and only the suffix is re-decided below.
		n := 0
		for n < len(s.keptAssumps) && n < len(assumps) && s.keptAssumps[n] == assumps[n] {
			n++
		}
		s.ReusedLevels += int64(n)
		s.cancelUntil(n)
	} else {
		s.cancelUntil(0)
	}
	restartBase := s.RestartBase
	if restartBase == 0 {
		restartBase = 100
	}
	if s.Seed != 0 {
		restartBase += int64(s.Seed % 97)
	}
	restartNum := int64(1)
	conflictBudget := restartBase * luby(restartNum)
	conflictsHere := int64(0)
	conflictsTotalHere := int64(0)
	for {
		confl := s.propagate()
		if confl != noReason {
			s.Conflicts++
			conflictsHere++
			conflictsTotalHere++
			if s.Stop != nil && atomic.LoadInt32(s.Stop) != 0 {
				s.cancelUntil(0)
				return Unknown
			}
			if s.MaxConflicts > 0 && conflictsTotalHere > s.MaxConflicts {
				// Budget exhausted: back out cleanly. Clauses learned so
				// far stay attached (they are implied, so later calls
				// remain sound and still deterministic).
				s.cancelUntil(0)
				return Unknown
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, backLevel := s.analyze(confl)
			// LBD must be computed before backtracking erases the levels.
			lbd := s.computeLBD(learnt)
			// Never backtrack into the assumption prefix incorrectly: the
			// assumption levels are re-decided below as needed.
			s.cancelUntil(int(backLevel))
			if len(learnt) == 1 {
				s.cancelUntil(0)
				s.enqueue(learnt[0], noReason)
			} else {
				ref := s.attachClause(learnt, true, lbd)
				s.enqueue(learnt[0], ref)
			}
			if conflictsHere >= conflictBudget {
				restartNum++
				conflictBudget = restartBase * luby(restartNum)
				conflictsHere = 0
				s.Restarts++
				s.cancelUntil(0)
				// Restart points are the only safe moment to reduce: the
				// trail holds level-0 assignments only, so locked-clause
				// bookkeeping is minimal and the Reuse prefix (already
				// dropped by the cancel above) cannot go stale.
				s.maybeReduce()
			}
			continue
		}
		// Decide: first the assumptions in order, then free variables.
		if dl := s.decisionLevel(); dl < len(assumps) {
			p := assumps[dl]
			switch s.value(p) {
			case valTrue:
				// Already satisfied; open an empty level to keep the
				// level-to-assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case valFalse:
				// The assumptions are jointly inconsistent with the clauses.
				s.cancelUntil(0)
				return Unsat
			default:
				s.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, noReason)
				continue
			}
		}
		v := s.pickBranchVar()
		if v < 0 {
			// Complete assignment: snapshot the model into a fresh slice —
			// snapshots are immutable, so the memoizing front-end shares
			// them instead of copying. Without Reuse the solver restores
			// to level 0 so clauses can be added afterwards; with Reuse
			// only the free-search levels are undone and the assumption
			// levels stay standing for the next sibling query (AddClause
			// knows how to attach above level 0).
			m := make([]bool, len(s.assign)/2)
			for i := range m {
				m[i] = s.assign[Lit(i)<<1] == valTrue
			}
			s.model = m
			if Validate {
				s.validateModel(assumps)
			}
			if s.Reuse {
				s.cancelUntil(len(assumps))
				s.keptAssumps = append(s.keptAssumps[:0], assumps...)
			} else {
				s.cancelUntil(0)
			}
			return Sat
		}
		s.Decisions++
		pol := !s.phase[v]
		if s.Seed != 0 {
			s.rng = splitmix64(s.rng + s.Seed)
			if s.rng&31 == 0 {
				pol = !pol
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, pol), noReason)
	}
}

// splitmix64 advances a splitmix64 PRNG state; used only for the seeded
// portfolio heuristic perturbation, never on the default path.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// varHeap is a binary max-heap of variables ordered by activity.
type varHeap struct {
	heap []int
	pos  []int // pos[v] = index in heap, -1 if absent
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) contains(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) push(v int, act []float64) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v], act)
}

func (h *varHeap) pop(act []float64) int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0, act)
	}
	return v
}

func (h *varHeap) update(v int, act []float64) {
	if h.contains(v) {
		h.up(h.pos[v], act)
	}
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if act[h.heap[p]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && act[h.heap[c+1]] > act[h.heap[c]] {
			c++
		}
		if act[h.heap[c]] <= act[v] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
