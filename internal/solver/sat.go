// Package solver implements the decision procedure used by symbolic
// execution: a CDCL SAT solver (two-watched literals, first-UIP clause
// learning, VSIDS-style variable activity, phase saving, Luby restarts,
// incremental solving under assumptions) plus a bit-blaster that lowers
// bit-vector terms from package expr to CNF. Together they play the role
// STP and Z3 play for FuzzBALL: quantifier-free bit-vector satisfiability
// with model generation.
package solver

// Lit is a SAT literal: variable index v encoded as 2v (positive) or
// 2v+1 (negated).
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

const (
	valUnassigned int8 = -1
	valFalse      int8 = 0
	valTrue       int8 = 1
)

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

const noReason int32 = -1

// CDCL is a conflict-driven clause-learning SAT solver. The zero value is not usable; call NewSat.
type CDCL struct {
	clauses  [][]Lit // clause storage; index is the clause reference
	learnts  int     // number of learned clauses (suffix of clauses)
	watches  [][]int32
	assign   []int8
	level    []int32
	reason   []int32
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap
	phase    []bool
	seen     []bool

	ok        bool   // false once a top-level conflict is found
	model     []bool // assignment snapshot from the last Sat result
	Conflicts int64
	Decisions int64
	Props     int64

	// MaxConflicts bounds the conflicts a single Solve call may spend
	// before giving up with Unknown (0 = unlimited). Unlike a wall-clock
	// timeout this budget is deterministic: the same query sequence yields
	// the same answer on every run and every machine, which is what lets
	// the equivalence checker report a reproducible UNKNOWN verdict
	// instead of a machine-speed-dependent one.
	MaxConflicts int64
}

// NewSat returns an empty solver.
func NewSat() *CDCL {
	return &CDCL{ok: true, varInc: 1.0}
}

// NumVars returns the number of allocated variables.
func (s *CDCL) NumVars() int { return len(s.assign) }

// NewVar allocates a fresh variable and returns its index.
func (s *CDCL) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, valUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v, s.activity)
	return v
}

func (s *CDCL) value(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == valUnassigned {
		return valUnassigned
	}
	if l.Sign() {
		return 1 - a
	}
	return a
}

// Value reports the model value of variable v after a Sat result.
func (s *CDCL) Value(v int) bool { return v < len(s.model) && s.model[v] }

func (s *CDCL) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state at level 0.
func (s *CDCL) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("solver: AddClause above decision level 0")
	}
	// Normalize: drop duplicate and false literals; detect tautologies and
	// already-true clauses.
	out := lits[:0:0]
	for _, l := range lits {
		switch s.value(l) {
		case valTrue:
			return true
		case valFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.enqueue(out[0], noReason)
		if s.propagate() != noReason {
			s.ok = false
			return false
		}
		return true
	}
	s.attachClause(out)
	return true
}

func (s *CDCL) attachClause(c []Lit) int32 {
	ref := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.watches[c[0]] = append(s.watches[c[0]], ref)
	s.watches[c[1]] = append(s.watches[c[1]], ref)
	return ref
}

func (s *CDCL) enqueue(l Lit, from int32) {
	v := l.Var()
	s.assign[v] = boolToVal(!l.Sign())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func boolToVal(b bool) int8 {
	if b {
		return valTrue
	}
	return valFalse
}

// propagate performs unit propagation; it returns the reference of a
// conflicting clause, or noReason if none.
func (s *CDCL) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; scan watchers of ¬p
		s.qhead++
		s.Props++
		fp := p.Neg()
		ws := s.watches[fp]
		kept := ws[:0]
		var confl int32 = noReason
		for i := 0; i < len(ws); i++ {
			ref := ws[i]
			c := s.clauses[ref]
			// Ensure the false literal is at position 1.
			if c[0] == fp {
				c[0], c[1] = c[1], c[0]
			}
			// If the other watch is true, the clause is satisfied.
			if s.value(c[0]) == valTrue {
				kept = append(kept, ref)
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != valFalse {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ref)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, ref)
			if s.value(c[0]) == valFalse {
				confl = ref
				// Copy remaining watchers and stop.
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.enqueue(c[0], ref)
		}
		s.watches[fp] = kept
		if confl != noReason {
			return confl
		}
	}
	return noReason
}

func (s *CDCL) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

// analyze derives a first-UIP learned clause from the conflict and returns it
// with the backtrack level. learnt[0] is the asserting literal.
func (s *CDCL) analyze(confl int32) (learnt []Lit, backLevel int32) {
	counter := 0
	p := Lit(-1)
	learnt = append(learnt, 0) // slot for the asserting literal
	idx := len(s.trail) - 1
	for {
		c := s.clauses[confl]
		start := 0
		if p != Lit(-1) {
			start = 1 // skip the asserting literal itself
		}
		for _, q := range c[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == int32(s.decisionLevel()) {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
		idx--
	}
	learnt[0] = p.Neg()
	// Compute backtrack level: the highest level among the other literals.
	backLevel = 0
	swapPos := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > backLevel {
			backLevel = lv
			swapPos = i
		}
	}
	if swapPos != 0 {
		learnt[1], learnt[swapPos] = learnt[swapPos], learnt[1]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	s.varInc /= 0.95
	return learnt, backLevel
}

// cancelUntil undoes assignments above the given decision level.
func (s *CDCL) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == valTrue
		s.assign[v] = valUnassigned
		s.reason[v] = noReason
		if !s.heap.contains(v) {
			s.heap.push(v, s.activity)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *CDCL) pickBranchVar() int {
	for s.heap.size() > 0 {
		v := s.heap.pop(s.activity)
		if s.assign[v] == valUnassigned {
			return v
		}
	}
	return -1
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
func (s *CDCL) Solve(assumps []Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != noReason {
		s.ok = false
		return Unsat
	}
	restartNum := int64(1)
	conflictBudget := 100 * luby(restartNum)
	conflictsHere := int64(0)
	conflictsTotal := int64(0)
	for {
		confl := s.propagate()
		if confl != noReason {
			s.Conflicts++
			conflictsHere++
			conflictsTotal++
			if s.MaxConflicts > 0 && conflictsTotal > s.MaxConflicts {
				// Budget exhausted: back out cleanly. Clauses learned so
				// far stay attached (they are implied, so later calls
				// remain sound and still deterministic).
				s.cancelUntil(0)
				return Unknown
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, backLevel := s.analyze(confl)
			// Never backtrack into the assumption prefix incorrectly: the
			// assumption levels are re-decided below as needed.
			s.cancelUntil(int(backLevel))
			if len(learnt) == 1 {
				s.cancelUntil(0)
				s.enqueue(learnt[0], noReason)
			} else {
				ref := s.attachClause(learnt)
				s.learnts++
				s.enqueue(learnt[0], ref)
			}
			if conflictsHere >= conflictBudget {
				restartNum++
				conflictBudget = 100 * luby(restartNum)
				conflictsHere = 0
				s.cancelUntil(0)
			}
			continue
		}
		// Decide: first the assumptions in order, then free variables.
		if dl := s.decisionLevel(); dl < len(assumps) {
			p := assumps[dl]
			switch s.value(p) {
			case valTrue:
				// Already satisfied; open an empty level to keep the
				// level-to-assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case valFalse:
				// The assumptions are jointly inconsistent with the clauses.
				s.cancelUntil(0)
				return Unsat
			default:
				s.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, noReason)
				continue
			}
		}
		v := s.pickBranchVar()
		if v < 0 {
			// Complete assignment: snapshot the model, then restore the
			// solver to level 0 so clauses can be added afterwards.
			if cap(s.model) < len(s.assign) {
				s.model = make([]bool, len(s.assign))
			}
			s.model = s.model[:len(s.assign)]
			for i, a := range s.assign {
				s.model[i] = a == valTrue
			}
			s.cancelUntil(0)
			return Sat
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.phase[v]), noReason)
	}
}

// varHeap is a binary max-heap of variables ordered by activity.
type varHeap struct {
	heap []int
	pos  []int // pos[v] = index in heap, -1 if absent
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) contains(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) push(v int, act []float64) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v], act)
}

func (h *varHeap) pop(act []float64) int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0, act)
	}
	return v
}

func (h *varHeap) update(v int, act []float64) {
	if h.contains(v) {
		h.up(h.pos[v], act)
	}
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if act[h.heap[p]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && act[h.heap[c+1]] > act[h.heap[c]] {
			c++
		}
		if act[h.heap[c]] <= act[v] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
