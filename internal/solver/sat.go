// Package solver implements the decision procedure used by symbolic
// execution: a CDCL SAT solver (two-watched literals, first-UIP clause
// learning, VSIDS-style variable activity, phase saving, Luby restarts,
// incremental solving under assumptions) plus a bit-blaster that lowers
// bit-vector terms from package expr to CNF. Together they play the role
// STP and Z3 play for FuzzBALL: quantifier-free bit-vector satisfiability
// with model generation.
package solver

import "sync/atomic"

// Lit is a SAT literal: variable index v encoded as 2v (positive) or
// 2v+1 (negated).
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

const (
	valUnassigned int8 = -1
	valFalse      int8 = 0
	valTrue       int8 = 1
)

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

const noReason int32 = -1

// CDCL is a conflict-driven clause-learning SAT solver. The zero value is not usable; call NewSat.
type CDCL struct {
	clauses  [][]Lit // clause storage; index is the clause reference
	learnts  int     // number of learned clauses (suffix of clauses)
	watches  [][]watcher
	assign   []int8
	level    []int32
	reason   []int32
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap
	phase    []bool
	seen     []bool

	ok        bool   // false once a top-level conflict is found
	model     []bool // assignment snapshot from the last Sat result
	Conflicts int64
	Decisions int64
	Props     int64

	// MaxConflicts bounds the conflicts a single Solve call may spend
	// before giving up with Unknown (0 = unlimited). Unlike a wall-clock
	// timeout this budget is deterministic: the same query sequence yields
	// the same answer on every run and every machine, which is what lets
	// the equivalence checker report a reproducible UNKNOWN verdict
	// instead of a machine-speed-dependent one.
	MaxConflicts int64

	// Reuse keeps the assumption-decision prefix of the trail alive
	// between Solve calls. Sibling queries from one explore task share a
	// long path-condition prefix; with Reuse on, a call only backtracks to
	// the longest common prefix with the previous call's assumptions and
	// re-decides the suffix, instead of re-deciding and re-propagating the
	// whole prefix from level 0 every time.
	Reuse       bool
	keptAssumps []Lit
	// ReusedLevels counts assumption decision levels carried over between
	// Solve calls by Reuse (a measure of re-decide work avoided).
	ReusedLevels int64

	// Seed perturbs the decision heuristic and restart schedule
	// deterministically — portfolio clones run the same query under
	// different seeds so at least one may escape a hard search region.
	// Zero means the unperturbed default heuristics.
	Seed uint64
	rng  uint64

	// Stop, when non-nil, is polled once per conflict; setting it to a
	// non-zero value makes Solve return Unknown at the next conflict. The
	// portfolio front-end uses it to retire losing clones early.
	Stop *int32
}

// NewSat returns an empty solver.
func NewSat() *CDCL {
	return &CDCL{ok: true, varInc: 1.0}
}

// NumVars returns the number of allocated variables.
func (s *CDCL) NumVars() int { return len(s.assign) }

// Clone deep-copies the solver — clause storage included, since propagate
// reorders literals in place — so a portfolio clone can search the same
// formula under a different Seed without sharing any mutable state with
// the primary.
func (s *CDCL) Clone() *CDCL {
	c := &CDCL{
		learnts:      s.learnts,
		qhead:        s.qhead,
		varInc:       s.varInc,
		ok:           s.ok,
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Props:        s.Props,
		MaxConflicts: s.MaxConflicts,
		Reuse:        s.Reuse,
		ReusedLevels: s.ReusedLevels,
		Seed:         s.Seed,
		rng:          s.rng,
	}
	c.clauses = make([][]Lit, len(s.clauses))
	for i, cl := range s.clauses {
		c.clauses[i] = append([]Lit(nil), cl...)
	}
	c.watches = make([][]watcher, len(s.watches))
	for i, w := range s.watches {
		c.watches[i] = append([]watcher(nil), w...)
	}
	c.assign = append([]int8(nil), s.assign...)
	c.level = append([]int32(nil), s.level...)
	c.reason = append([]int32(nil), s.reason...)
	c.trail = append([]Lit(nil), s.trail...)
	c.trailLim = append([]int(nil), s.trailLim...)
	c.activity = append([]float64(nil), s.activity...)
	c.phase = append([]bool(nil), s.phase...)
	c.seen = append([]bool(nil), s.seen...)
	c.model = append([]bool(nil), s.model...)
	c.keptAssumps = append([]Lit(nil), s.keptAssumps...)
	c.heap.heap = append([]int(nil), s.heap.heap...)
	c.heap.pos = append([]int(nil), s.heap.pos...)
	return c
}

// NewVar allocates a fresh variable and returns its index.
func (s *CDCL) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, valUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v, s.activity)
	return v
}

func (s *CDCL) value(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == valUnassigned {
		return valUnassigned
	}
	if l.Sign() {
		return 1 - a
	}
	return a
}

// Value reports the model value of variable v after a Sat result.
func (s *CDCL) Value(v int) bool { return v < len(s.model) && s.model[v] }

func (s *CDCL) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state at level 0. With Reuse the
// call may arrive while an assumption trail is still standing; the clause
// is then attached without disturbing the kept levels whenever possible.
func (s *CDCL) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Normalize using level-0 assignments only. Dropping a literal that is
	// false merely under the standing assumptions would strengthen the
	// clause unsoundly, and a clause satisfied only above level 0 must
	// still be attached for when that level is undone.
	out := lits[:0:0]
	for _, l := range lits {
		if s.assign[l.Var()] != valUnassigned && s.level[l.Var()] == 0 {
			switch s.value(l) {
			case valTrue:
				return true
			case valFalse:
				continue
			}
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		// A unit must take effect at level 0 or it would be lost on the
		// next backtrack.
		s.cancelUntil(0)
		if s.value(out[0]) != valTrue {
			s.enqueue(out[0], noReason)
			if s.propagate() != noReason {
				s.ok = false
				return false
			}
		}
		return true
	}
	if s.decisionLevel() > 0 {
		// Watch two currently-non-false literals so the watcher invariant
		// holds without touching the kept trail. Every bit-blaster clause
		// carries a fresh gate literal, so this nearly always succeeds; the
		// fallback full backtrack is rare and always sound.
		w := 0
		for i := 0; i < len(out) && w < 2; i++ {
			if s.value(out[i]) != valFalse {
				out[i], out[w] = out[w], out[i]
				w++
			}
		}
		if w < 2 {
			s.cancelUntil(0)
		}
	}
	s.attachClause(out)
	return true
}

// watcher pairs a watched clause reference with a blocker — a literal of the
// clause (initially the other watch) whose truth proves the clause satisfied
// without loading the clause itself. Blockers are a pure memory-traffic
// optimization: they only short-circuit clauses propagate would have kept
// anyway, so the search — decisions, conflicts, learned clauses, models — is
// bit-for-bit unchanged.
type watcher struct {
	ref     int32
	blocker Lit
}

func (s *CDCL) attachClause(c []Lit) int32 {
	ref := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	s.watches[c[0]] = append(s.watches[c[0]], watcher{ref, c[1]})
	s.watches[c[1]] = append(s.watches[c[1]], watcher{ref, c[0]})
	return ref
}

func (s *CDCL) enqueue(l Lit, from int32) {
	v := l.Var()
	s.assign[v] = boolToVal(!l.Sign())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func boolToVal(b bool) int8 {
	if b {
		return valTrue
	}
	return valFalse
}

// propagate performs unit propagation; it returns the reference of a
// conflicting clause, or noReason if none.
func (s *CDCL) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; scan watchers of ¬p
		s.qhead++
		s.Props++
		fp := p.Neg()
		ws := s.watches[fp]
		kept := ws[:0]
		var confl int32 = noReason
		for i := 0; i < len(ws); i++ {
			// A true blocker proves the clause satisfied without loading it.
			if s.value(ws[i].blocker) == valTrue {
				kept = append(kept, ws[i])
				continue
			}
			ref := ws[i].ref
			c := s.clauses[ref]
			// Ensure the false literal is at position 1.
			if c[0] == fp {
				c[0], c[1] = c[1], c[0]
			}
			// If the other watch is true, the clause is satisfied; refresh
			// the blocker so the next visit can skip the clause load.
			if s.value(c[0]) == valTrue {
				kept = append(kept, watcher{ref, c[0]})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != valFalse {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], watcher{ref, c[0]})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{ref, c[0]})
			if s.value(c[0]) == valFalse {
				confl = ref
				// Copy remaining watchers and stop.
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.enqueue(c[0], ref)
		}
		s.watches[fp] = kept
		if confl != noReason {
			return confl
		}
	}
	return noReason
}

func (s *CDCL) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

// analyze derives a first-UIP learned clause from the conflict and returns it
// with the backtrack level. learnt[0] is the asserting literal.
func (s *CDCL) analyze(confl int32) (learnt []Lit, backLevel int32) {
	counter := 0
	p := Lit(-1)
	learnt = append(learnt, 0) // slot for the asserting literal
	idx := len(s.trail) - 1
	for {
		c := s.clauses[confl]
		start := 0
		if p != Lit(-1) {
			start = 1 // skip the asserting literal itself
		}
		for _, q := range c[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == int32(s.decisionLevel()) {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
		idx--
	}
	learnt[0] = p.Neg()
	// Compute backtrack level: the highest level among the other literals.
	backLevel = 0
	swapPos := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > backLevel {
			backLevel = lv
			swapPos = i
		}
	}
	if swapPos != 0 {
		learnt[1], learnt[swapPos] = learnt[swapPos], learnt[1]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	s.varInc /= 0.95
	return learnt, backLevel
}

// cancelUntil undoes assignments above the given decision level. Any kept
// assumption record beyond the surviving levels is invalidated here, so
// restarts, backjumps, and learned units automatically shrink the reusable
// prefix instead of leaving it stale.
func (s *CDCL) cancelUntil(lvl int) {
	if lvl < len(s.keptAssumps) {
		s.keptAssumps = s.keptAssumps[:lvl]
	}
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == valTrue
		s.assign[v] = valUnassigned
		s.reason[v] = noReason
		if !s.heap.contains(v) {
			s.heap.push(v, s.activity)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *CDCL) pickBranchVar() int {
	for s.heap.size() > 0 {
		v := s.heap.pop(s.activity)
		if s.assign[v] == valUnassigned {
			return v
		}
	}
	return -1
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
func (s *CDCL) Solve(assumps []Lit) Status {
	if !s.ok {
		return Unsat
	}
	if s.Reuse {
		// Backtrack only to the longest common prefix with the previous
		// call's assumptions; the shared levels and their propagations
		// survive intact and only the suffix is re-decided below.
		n := 0
		for n < len(s.keptAssumps) && n < len(assumps) && s.keptAssumps[n] == assumps[n] {
			n++
		}
		s.ReusedLevels += int64(n)
		s.cancelUntil(n)
	} else {
		s.cancelUntil(0)
	}
	restartBase := int64(100)
	if s.Seed != 0 {
		restartBase += int64(s.Seed % 97)
	}
	restartNum := int64(1)
	conflictBudget := restartBase * luby(restartNum)
	conflictsHere := int64(0)
	conflictsTotal := int64(0)
	for {
		confl := s.propagate()
		if confl != noReason {
			s.Conflicts++
			conflictsHere++
			conflictsTotal++
			if s.Stop != nil && atomic.LoadInt32(s.Stop) != 0 {
				s.cancelUntil(0)
				return Unknown
			}
			if s.MaxConflicts > 0 && conflictsTotal > s.MaxConflicts {
				// Budget exhausted: back out cleanly. Clauses learned so
				// far stay attached (they are implied, so later calls
				// remain sound and still deterministic).
				s.cancelUntil(0)
				return Unknown
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, backLevel := s.analyze(confl)
			// Never backtrack into the assumption prefix incorrectly: the
			// assumption levels are re-decided below as needed.
			s.cancelUntil(int(backLevel))
			if len(learnt) == 1 {
				s.cancelUntil(0)
				s.enqueue(learnt[0], noReason)
			} else {
				ref := s.attachClause(learnt)
				s.learnts++
				s.enqueue(learnt[0], ref)
			}
			if conflictsHere >= conflictBudget {
				restartNum++
				conflictBudget = restartBase * luby(restartNum)
				conflictsHere = 0
				s.cancelUntil(0)
			}
			continue
		}
		// Decide: first the assumptions in order, then free variables.
		if dl := s.decisionLevel(); dl < len(assumps) {
			p := assumps[dl]
			switch s.value(p) {
			case valTrue:
				// Already satisfied; open an empty level to keep the
				// level-to-assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case valFalse:
				// The assumptions are jointly inconsistent with the clauses.
				s.cancelUntil(0)
				return Unsat
			default:
				s.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, noReason)
				continue
			}
		}
		v := s.pickBranchVar()
		if v < 0 {
			// Complete assignment: snapshot the model. Without Reuse the
			// solver restores to level 0 so clauses can be added afterwards;
			// with Reuse only the free-search levels are undone and the
			// assumption levels stay standing for the next sibling query
			// (AddClause knows how to attach above level 0).
			if cap(s.model) < len(s.assign) {
				s.model = make([]bool, len(s.assign))
			}
			s.model = s.model[:len(s.assign)]
			for i, a := range s.assign {
				s.model[i] = a == valTrue
			}
			if s.Reuse {
				s.cancelUntil(len(assumps))
				s.keptAssumps = append(s.keptAssumps[:0], assumps...)
			} else {
				s.cancelUntil(0)
			}
			return Sat
		}
		s.Decisions++
		pol := !s.phase[v]
		if s.Seed != 0 {
			s.rng = splitmix64(s.rng + s.Seed)
			if s.rng&31 == 0 {
				pol = !pol
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, pol), noReason)
	}
}

// splitmix64 advances a splitmix64 PRNG state; used only for the seeded
// portfolio heuristic perturbation, never on the default path.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// varHeap is a binary max-heap of variables ordered by activity.
type varHeap struct {
	heap []int
	pos  []int // pos[v] = index in heap, -1 if absent
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) contains(v int) bool {
	return v < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) push(v int, act []float64) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v], act)
}

func (h *varHeap) pop(act []float64) int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0, act)
	}
	return v
}

func (h *varHeap) update(v int, act []float64) {
	if h.contains(v) {
		h.up(h.pos[v], act)
	}
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if act[h.heap[p]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && act[h.heap[c+1]] > act[h.heap[c]] {
			c++
		}
		if act[h.heap[c]] <= act[v] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
