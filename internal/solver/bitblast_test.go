package solver

import (
	"math/rand"
	"testing"

	"pokeemu/internal/expr"
)

func TestBVConstEquality(t *testing.T) {
	b := NewBV()
	x := expr.Var(32, "x")
	if got := b.Check([]*expr.Expr{expr.Eq(x, expr.Const(32, 0xdeadbeef))}); got != Sat {
		t.Fatalf("Check = %v, want sat", got)
	}
	if v := b.ModelVal("x"); v != 0xdeadbeef {
		t.Errorf("model x = %#x, want 0xdeadbeef", v)
	}
}

func TestBVUnsatRange(t *testing.T) {
	b := NewBV()
	x := expr.Var(32, "x")
	lt5 := expr.Ult(x, expr.Const(32, 5))
	gt10 := expr.Ult(expr.Const(32, 10), x)
	if got := b.Check([]*expr.Expr{lt5, gt10}); got != Unsat {
		t.Fatalf("x<5 ∧ x>10 = %v, want unsat", got)
	}
	// Incremental reuse: each side alone is satisfiable.
	if b.Check([]*expr.Expr{lt5}) != Sat {
		t.Error("x<5 alone should be sat")
	}
	if b.Check([]*expr.Expr{gt10}) != Sat {
		t.Error("x>10 alone should be sat")
	}
}

func TestBVArithmetic(t *testing.T) {
	b := NewBV()
	x := expr.Var(16, "x")
	y := expr.Var(16, "y")
	// x + y = 100, x - y = 40  →  x = 70, y = 30.
	c1 := expr.Eq(expr.Add(x, y), expr.Const(16, 100))
	c2 := expr.Eq(expr.Sub(x, y), expr.Const(16, 40))
	if b.Check([]*expr.Expr{c1, c2}) != Sat {
		t.Fatal("want sat")
	}
	xv, yv := b.ModelVal("x"), b.ModelVal("y")
	if (xv+yv)&0xffff != 100 || (xv-yv)&0xffff != 40 {
		t.Errorf("model (x,y) = (%d,%d) violates the system", xv, yv)
	}
}

func TestBVMultiplication(t *testing.T) {
	b := NewBV()
	x := expr.Var(16, "x")
	// x * 7 = 91 → x = 13 (mod 2^16 has a unique odd-multiplier solution).
	c := expr.Eq(expr.Mul(x, expr.Const(16, 7)), expr.Const(16, 91))
	if b.Check([]*expr.Expr{c}) != Sat {
		t.Fatal("want sat")
	}
	if v := b.ModelVal("x"); v != 13 {
		t.Errorf("model x = %d, want 13", v)
	}
}

func TestBVDivision(t *testing.T) {
	b := NewBV()
	x := expr.Var(8, "x")
	c1 := expr.Eq(expr.UDiv(x, expr.Const(8, 10)), expr.Const(8, 7))
	c2 := expr.Eq(expr.URem(x, expr.Const(8, 10)), expr.Const(8, 3))
	if b.Check([]*expr.Expr{c1, c2}) != Sat {
		t.Fatal("want sat")
	}
	if v := b.ModelVal("x"); v != 73 {
		t.Errorf("model x = %d, want 73", v)
	}
}

func TestBVDivisionByZeroSemantics(t *testing.T) {
	b := NewBV()
	x := expr.Var(8, "x")
	z := expr.Var(8, "z")
	pin := expr.Eq(z, expr.Const(8, 0))
	// x/0 = 0xff and x%0 = x must hold for all x; check one pinned case.
	pinX := expr.Eq(x, expr.Const(8, 42))
	c1 := expr.Eq(expr.UDiv(x, z), expr.Const(8, 0xff))
	c2 := expr.Eq(expr.URem(x, z), expr.Const(8, 42))
	if b.Check([]*expr.Expr{pin, pinX, c1, c2}) != Sat {
		t.Fatal("division-by-zero semantics violated")
	}
	// And the negation must be unsat.
	if b.Check([]*expr.Expr{pin, pinX, expr.Not(c1)}) != Unsat {
		t.Fatal("udiv by zero must be all-ones")
	}
}

func TestBVShifts(t *testing.T) {
	b := NewBV()
	x := expr.Var(32, "x")
	n := expr.Var(8, "n")
	pinX := expr.Eq(x, expr.Const(32, 0x80000001))
	cases := []struct {
		e    *expr.Expr
		amt  uint64
		want uint64
	}{
		{expr.Shl(x, n), 4, 0x00000010},
		{expr.LShr(x, n), 4, 0x08000000},
		{expr.AShr(x, n), 4, 0xf8000000},
		{expr.Shl(x, n), 40, 0},
		{expr.LShr(x, n), 40, 0},
		{expr.AShr(x, n), 40, 0xffffffff},
	}
	for i, c := range cases {
		pinN := expr.Eq(n, expr.Const(8, c.amt))
		ok := expr.Eq(c.e, expr.Const(32, c.want))
		if b.Check([]*expr.Expr{pinX, pinN, ok}) != Sat {
			t.Errorf("case %d: expected value %#x not derivable", i, c.want)
		}
		if b.Check([]*expr.Expr{pinX, pinN, expr.Not(ok)}) != Unsat {
			t.Errorf("case %d: shift result not unique", i)
		}
	}
}

func TestBVSignedComparison(t *testing.T) {
	b := NewBV()
	x := expr.Var(8, "x")
	// Signed: x < 0 and x > -5 → x in {-4..-1} = {0xfc..0xff}.
	c1 := expr.Slt(x, expr.Const(8, 0))
	c2 := expr.Slt(expr.Const(8, 0xfb), x)
	if b.Check([]*expr.Expr{c1, c2}) != Sat {
		t.Fatal("want sat")
	}
	v := b.ModelVal("x")
	if v < 0xfc {
		t.Errorf("model x = %#x, want in [0xfc,0xff]", v)
	}
}

// TestBVAgainstEval is the central soundness property: for random terms and a
// random pinned environment, the solver must (a) accept the true value and
// (b) reject any other value.
func TestBVAgainstEval(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		e := randomBVExpr(r, 3, 16)
		env := map[string]uint64{"a": r.Uint64() & 0xffff, "b": r.Uint64() & 0xffff}
		want := expr.Eval(e, env)
		b := NewBV()
		pinA := expr.Eq(expr.Var(16, "a"), expr.Const(16, env["a"]))
		pinB := expr.Eq(expr.Var(16, "b"), expr.Const(16, env["b"]))
		okC := expr.Eq(e, expr.Const(e.Width, want))
		if got := b.Check([]*expr.Expr{pinA, pinB, okC}); got != Sat {
			t.Fatalf("iter %d: true value rejected\nexpr: %v\nenv: %#v want %#x",
				iter, e, env, want)
		}
		if got := b.Check([]*expr.Expr{pinA, pinB, expr.Not(okC)}); got != Unsat {
			t.Fatalf("iter %d: wrong value accepted (model %#x)\nexpr: %v\nenv: %#v want %#x",
				iter, b.ModelVal("a"), e, env, want)
		}
	}
}

// TestBVModelSatisfies: whenever Check returns Sat, evaluating the assumptions
// under the returned model must yield true.
func TestBVModelSatisfies(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for iter := 0; iter < 60; iter++ {
		e := randomBVExpr(r, 3, 16)
		target := expr.Const(e.Width, r.Uint64()&expr.Mask(e.Width))
		cond := expr.Eq(e, target)
		b := NewBV()
		if b.Check([]*expr.Expr{cond}) != Sat {
			continue // this target value may genuinely be infeasible
		}
		m := b.Model()
		if expr.Eval(cond, m) != 1 {
			t.Fatalf("iter %d: model does not satisfy condition\nexpr: %v\nmodel: %#v",
				iter, cond, m)
		}
	}
}

func randomBVExpr(r *rand.Rand, depth int, w uint8) *expr.Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return expr.Const(w, r.Uint64())
		case 1:
			return expr.Var(w, "a")
		default:
			return expr.Var(w, "b")
		}
	}
	sub := func() *expr.Expr { return randomBVExpr(r, depth-1, w) }
	switch r.Intn(13) {
	case 0:
		return expr.Add(sub(), sub())
	case 1:
		return expr.Sub(sub(), sub())
	case 2:
		return expr.Mul(sub(), sub())
	case 3:
		return expr.And(sub(), sub())
	case 4:
		return expr.Or(sub(), sub())
	case 5:
		return expr.Xor(sub(), sub())
	case 6:
		return expr.Not(sub())
	case 7:
		return expr.Neg(sub())
	case 8:
		return expr.Ite(expr.Ult(sub(), sub()), sub(), sub())
	case 9:
		return expr.UDiv(sub(), sub())
	case 10:
		return expr.URem(sub(), sub())
	case 11:
		return expr.ZExt(expr.Extract(sub(), 0, w/2), w)
	default:
		return expr.Shl(sub(), expr.ZExt(expr.Extract(sub(), 0, 4), 8))
	}
}

func TestBVCacheHitsAcrossRebuiltTerms(t *testing.T) {
	b := NewBV()
	mk := func() *expr.Expr {
		return expr.Eq(expr.Add(expr.Var(32, "x"), expr.Const(32, 5)), expr.Const(32, 9))
	}
	b.Check([]*expr.Expr{mk()})
	before := b.Encoded
	b.Check([]*expr.Expr{mk()}) // structurally equal, different pointers
	if b.Encoded != before {
		t.Errorf("re-encoded structurally equal term: %d → %d", before, b.Encoded)
	}
}

func TestBVWidthConflictPanics(t *testing.T) {
	b := NewBV()
	b.Bits(expr.Var(8, "w"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on width conflict")
		}
	}()
	b.Bits(expr.Var(16, "w"))
}
