package solver

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pokeemu/internal/expr"
	"pokeemu/internal/faults"
)

// BV is the bit-vector decision procedure: it lowers expr terms to CNF via
// Tseitin encoding over a CDCL core and answers incremental satisfiability
// queries under assumptions, returning models as variable assignments.
//
// Translation is cached both by term pointer and by structural hash, so a
// branch condition rebuilt on a re-executed path (as the online exploration
// strategy does) does not get re-encoded.
type BV struct {
	sat   *CDCL
	tru   Lit
	fls   Lit
	ptr   map[*expr.Expr][]Lit
	hash  map[uint64][]hashEntry
	vars  map[string][]Lit
	hmemo map[*expr.Expr]uint64
	memo  map[string]memoEntry

	// Queries counts Check calls; Encoded counts encoded term nodes.
	// MemoHits/MemoMisses/SubsumeHits split Queries by whether the
	// assumption-set memo or the model-subsumption fast path answered
	// without running the SAT core.
	Queries     int64
	Encoded     int64
	MemoHits    int64
	MemoMisses  int64
	SubsumeHits int64

	// MaxConflicts bounds each Check's SAT search (0 = unlimited); an
	// exhausted budget returns Unknown deterministically. Unknown results
	// are never memoized, so raising the budget on the same instance
	// re-solves instead of replaying the give-up.
	MaxConflicts int64

	// Reuse turns on the batched front-end: sibling queries keep the
	// shared assumption-prefix trail alive inside the CDCL core (one
	// incremental CNF, learned clauses reused across the whole task), so a
	// query that extends the previous path by one branch only decides the
	// new suffix. Off, every query re-decides its assumptions from level 0.
	Reuse bool

	// Portfolio, when positive and a conflict budget is set, races that
	// many deterministically-seeded solver clones against the primary on
	// each memo miss. Adjudication is deterministic: a decisive primary
	// always wins (clones are stopped and discarded); only when the
	// primary returns Unknown are the clones joined and the first decisive
	// one by index used. Scheduling therefore never changes answers, only
	// wall-clock.
	Portfolio int

	// Subsume turns on the model-subsumption fast path between sibling
	// path-condition queries: a query whose assumption literals all
	// evaluate true under the last Sat model is answered Sat without
	// touching the SAT core. This is sound because every clause added
	// after a model snapshot is a definitional Tseitin gate over fresh
	// output variables (only Assert adds non-definitional constraints, and
	// Assert invalidates the snapshot), so the old model always extends to
	// a full satisfying assignment. The answered model is the old
	// snapshot, which is why exploration configs that flip this knob go
	// through the SerialVersion dance: verdicts never change, models may.
	Subsume    bool
	modelValid bool

	// NoReduce and RestartBase pass through to the CDCL core on every
	// check (see the CDCL fields of the same names).
	NoReduce    bool
	RestartBase int64
}

// memoEntry caches the outcome of one assumption set: the status, and for
// Sat the full model snapshot so a hit can restore it for Model() callers.
type memoEntry struct {
	st    Status
	model []bool
}

const (
	// checkMemoCap bounds the assumption-set memo; encodeCacheCap bounds the
	// translation caches (ptr/hash/hmemo). Both are cleared wholesale when
	// full: dropping entries only costs re-solving/re-encoding, never
	// soundness, and a hard cap is what keeps an 8192-path exploration from
	// growing memory without bound.
	checkMemoCap   = 1 << 14
	encodeCacheCap = 1 << 16
)

// Process-wide solver counters, aggregated across every BV instance (the
// parallel explorer gives each worker its own BV). The campaign timing table
// and the pokeemud /metrics endpoint read these.
var (
	memoHitsTotal      atomic.Int64
	memoMissesTotal    atomic.Int64
	internalQueries    atomic.Int64
	reusedLevelsTotal  atomic.Int64
	portfolioRaces     atomic.Int64
	portfolioCloneWins atomic.Int64
)

// MemoTotals reports process-wide CheckLits memo hits and misses.
func MemoTotals() (hits, misses int64) {
	return memoHitsTotal.Load(), memoMissesTotal.Load()
}

// QueriesTotal reports process-wide CheckLits calls.
func QueriesTotal() int64 { return internalQueries.Load() }

// ReusedLevelsTotal reports process-wide assumption decision levels kept
// alive across queries by the batched front-end (levels the solver did not
// have to re-decide and re-propagate).
func ReusedLevelsTotal() int64 { return reusedLevelsTotal.Load() }

// PortfolioTotals reports process-wide portfolio races run and the races a
// seeded clone (rather than the primary) decided.
func PortfolioTotals() (races, cloneWins int64) {
	return portfolioRaces.Load(), portfolioCloneWins.Load()
}

type hashEntry struct {
	e    *expr.Expr
	lits []Lit
}

// NewBV returns an empty bit-vector solver.
func NewBV() *BV {
	b := &BV{
		sat:   NewSat(),
		ptr:   make(map[*expr.Expr][]Lit),
		hash:  make(map[uint64][]hashEntry),
		vars:  make(map[string][]Lit),
		hmemo: make(map[*expr.Expr]uint64),
		memo:  make(map[string]memoEntry),
	}
	t := b.sat.NewVar()
	b.tru = MkLit(t, false)
	b.fls = b.tru.Neg()
	b.sat.AddClause(b.tru)
	return b
}

// lit constant helpers

func (b *BV) constLit(bit bool) Lit {
	if bit {
		return b.tru
	}
	return b.fls
}

func (b *BV) isTrue(l Lit) bool  { return l == b.tru }
func (b *BV) isFalse(l Lit) bool { return l == b.fls }

// fresh allocates a new gate output literal.
func (b *BV) fresh() Lit { return MkLit(b.sat.NewVar(), false) }

// and encodes o ↔ x ∧ y.
func (b *BV) and(x, y Lit) Lit {
	if b.isFalse(x) || b.isFalse(y) {
		return b.fls
	}
	if b.isTrue(x) {
		return y
	}
	if b.isTrue(y) {
		return x
	}
	if x == y {
		return x
	}
	if x == y.Neg() {
		return b.fls
	}
	o := b.fresh()
	b.sat.AddClause(o.Neg(), x)
	b.sat.AddClause(o.Neg(), y)
	b.sat.AddClause(o, x.Neg(), y.Neg())
	return o
}

// or encodes o ↔ x ∨ y.
func (b *BV) or(x, y Lit) Lit {
	return b.and(x.Neg(), y.Neg()).Neg()
}

// xor encodes o ↔ x ⊕ y.
func (b *BV) xor(x, y Lit) Lit {
	if b.isFalse(x) {
		return y
	}
	if b.isFalse(y) {
		return x
	}
	if b.isTrue(x) {
		return y.Neg()
	}
	if b.isTrue(y) {
		return x.Neg()
	}
	if x == y {
		return b.fls
	}
	if x == y.Neg() {
		return b.tru
	}
	o := b.fresh()
	b.sat.AddClause(o.Neg(), x, y)
	b.sat.AddClause(o.Neg(), x.Neg(), y.Neg())
	b.sat.AddClause(o, x.Neg(), y)
	b.sat.AddClause(o, x, y.Neg())
	return o
}

// mux encodes o ↔ (c ? t : f).
func (b *BV) mux(c, t, f Lit) Lit {
	if b.isTrue(c) {
		return t
	}
	if b.isFalse(c) {
		return f
	}
	if t == f {
		return t
	}
	if b.isTrue(t) && b.isFalse(f) {
		return c
	}
	if b.isFalse(t) && b.isTrue(f) {
		return c.Neg()
	}
	o := b.fresh()
	b.sat.AddClause(c.Neg(), t.Neg(), o)
	b.sat.AddClause(c.Neg(), t, o.Neg())
	b.sat.AddClause(c, f.Neg(), o)
	b.sat.AddClause(c, f, o.Neg())
	return o
}

// adder computes sum and carry-out of x + y + cin for one bit.
func (b *BV) adder(x, y, cin Lit) (sum, cout Lit) {
	xy := b.xor(x, y)
	sum = b.xor(xy, cin)
	cout = b.or(b.and(x, y), b.and(cin, xy))
	return sum, cout
}

// addVec adds two bit vectors with carry-in; LSB first.
func (b *BV) addVec(x, y []Lit, cin Lit) []Lit {
	out := make([]Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.adder(x[i], y[i], c)
	}
	return out
}

func (b *BV) negVec(x []Lit) []Lit {
	inv := make([]Lit, len(x))
	zero := make([]Lit, len(x))
	for i := range x {
		inv[i] = x[i].Neg()
		zero[i] = b.fls
	}
	return b.addVec(inv, zero, b.tru)
}

// ultVec returns the literal for unsigned x < y (LSB-first vectors).
func (b *BV) ultVec(x, y []Lit) Lit {
	lt := b.fls
	for i := range x { // ripple from LSB to MSB
		xn := x[i].Neg()
		biLT := b.and(xn, y[i])
		eqi := b.xor(x[i], y[i]).Neg()
		lt = b.mux(eqi, lt, biLT)
	}
	return lt
}

// eqVec returns the literal for x = y.
func (b *BV) eqVec(x, y []Lit) Lit {
	acc := b.tru
	for i := range x {
		acc = b.and(acc, b.xor(x[i], y[i]).Neg())
	}
	return acc
}

// muxVec selects between two vectors.
func (b *BV) muxVec(c Lit, t, f []Lit) []Lit {
	out := make([]Lit, len(t))
	for i := range t {
		out[i] = b.mux(c, t[i], f[i])
	}
	return out
}

func (b *BV) constVec(w uint8, v uint64) []Lit {
	out := make([]Lit, w)
	for i := range out {
		out[i] = b.constLit(v>>uint(i)&1 == 1)
	}
	return out
}

// structural hash for cache lookups across rebuilt terms.
func (b *BV) hashOf(e *expr.Expr) uint64 {
	if h, ok := b.hmemo[e]; ok {
		return h
	}
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(e.Op))
	mix(uint64(e.Width))
	mix(e.Val)
	mix(uint64(e.Lo))
	for i := 0; i < len(e.Name); i++ {
		mix(uint64(e.Name[i]))
	}
	for _, k := range e.Kids {
		mix(b.hashOf(k))
	}
	b.hmemo[e] = h
	return h
}

func structuralEq(a, c *expr.Expr) bool {
	if a == c {
		return true
	}
	if a.Op != c.Op || a.Width != c.Width || a.Val != c.Val ||
		a.Name != c.Name || a.Lo != c.Lo || len(a.Kids) != len(c.Kids) {
		return false
	}
	for i := range a.Kids {
		if !structuralEq(a.Kids[i], c.Kids[i]) {
			return false
		}
	}
	return true
}

// Bits translates e into a bit vector of literals, LSB first.
func (b *BV) Bits(e *expr.Expr) []Lit {
	if lits, ok := b.ptr[e]; ok {
		return lits
	}
	h := b.hashOf(e)
	for _, ent := range b.hash[h] {
		if structuralEq(ent.e, e) {
			b.ptr[e] = ent.lits
			return ent.lits
		}
	}
	lits := b.encode(e)
	if len(b.ptr) >= encodeCacheCap {
		// The translation caches are pure memoization over an append-only
		// CNF; dropping them re-encodes future terms but loses nothing.
		// b.vars must survive: it carries variable identity.
		b.ptr = make(map[*expr.Expr][]Lit)
		b.hash = make(map[uint64][]hashEntry)
		b.hmemo = make(map[*expr.Expr]uint64)
	}
	b.ptr[e] = lits
	b.hash[h] = append(b.hash[h], hashEntry{e, lits})
	b.Encoded++
	return lits
}

func (b *BV) encode(e *expr.Expr) []Lit {
	switch e.Op {
	case expr.OpConst:
		return b.constVec(e.Width, e.Val)
	case expr.OpVar:
		if lits, ok := b.vars[e.Name]; ok {
			if len(lits) != int(e.Width) {
				panic(fmt.Sprintf("solver: variable %s used at widths %d and %d",
					e.Name, len(lits), e.Width))
			}
			return lits
		}
		lits := make([]Lit, e.Width)
		for i := range lits {
			lits[i] = b.fresh()
		}
		b.vars[e.Name] = lits
		return lits
	}
	k := make([][]Lit, len(e.Kids))
	for i, kid := range e.Kids {
		k[i] = b.Bits(kid)
	}
	switch e.Op {
	case expr.OpNot:
		out := make([]Lit, len(k[0]))
		for i, l := range k[0] {
			out[i] = l.Neg()
		}
		return out
	case expr.OpNeg:
		return b.negVec(k[0])
	case expr.OpAnd, expr.OpOr, expr.OpXor:
		out := make([]Lit, len(k[0]))
		for i := range out {
			switch e.Op {
			case expr.OpAnd:
				out[i] = b.and(k[0][i], k[1][i])
			case expr.OpOr:
				out[i] = b.or(k[0][i], k[1][i])
			default:
				out[i] = b.xor(k[0][i], k[1][i])
			}
		}
		return out
	case expr.OpAdd:
		return b.addVec(k[0], k[1], b.fls)
	case expr.OpSub:
		inv := make([]Lit, len(k[1]))
		for i, l := range k[1] {
			inv[i] = l.Neg()
		}
		return b.addVec(k[0], inv, b.tru)
	case expr.OpMul:
		return b.mulVec(k[0], k[1])
	case expr.OpUDiv:
		q, _ := b.divRem(k[0], k[1])
		return q
	case expr.OpURem:
		_, r := b.divRem(k[0], k[1])
		return r
	case expr.OpShl:
		return b.shift(k[0], k[1], shlKind)
	case expr.OpLShr:
		return b.shift(k[0], k[1], lshrKind)
	case expr.OpAShr:
		return b.shift(k[0], k[1], ashrKind)
	case expr.OpEq:
		return []Lit{b.eqVec(k[0], k[1])}
	case expr.OpUlt:
		return []Lit{b.ultVec(k[0], k[1])}
	case expr.OpSlt:
		// Signed comparison = unsigned comparison with sign bits flipped.
		x := append([]Lit(nil), k[0]...)
		y := append([]Lit(nil), k[1]...)
		x[len(x)-1] = x[len(x)-1].Neg()
		y[len(y)-1] = y[len(y)-1].Neg()
		return []Lit{b.ultVec(x, y)}
	case expr.OpIte:
		return b.muxVec(k[0][0], k[1], k[2])
	case expr.OpExtract:
		return k[0][e.Lo : int(e.Lo)+int(e.Width)]
	case expr.OpConcat:
		out := make([]Lit, 0, e.Width)
		out = append(out, k[1]...) // low part first (LSB order)
		out = append(out, k[0]...)
		return out
	case expr.OpZExt:
		out := make([]Lit, e.Width)
		copy(out, k[0])
		for i := len(k[0]); i < int(e.Width); i++ {
			out[i] = b.fls
		}
		return out
	case expr.OpSExt:
		out := make([]Lit, e.Width)
		copy(out, k[0])
		sign := k[0][len(k[0])-1]
		for i := len(k[0]); i < int(e.Width); i++ {
			out[i] = sign
		}
		return out
	default:
		panic("solver: cannot encode op " + e.Op.String())
	}
}

func (b *BV) mulVec(x, y []Lit) []Lit {
	w := len(x)
	acc := b.constVec(uint8(w), 0)
	for i := 0; i < w; i++ {
		// Partial product: (x << i) & replicate(y[i]), added when y[i].
		pp := make([]Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				pp[j] = b.fls
			} else {
				pp[j] = b.and(x[j-i], y[i])
			}
		}
		acc = b.addVec(acc, pp, b.fls)
	}
	return acc
}

// divRem encodes restoring division. SMT-LIB semantics for zero divisors:
// udiv → all-ones, urem → dividend.
func (b *BV) divRem(x, y []Lit) (q, r []Lit) {
	w := len(x)
	q = make([]Lit, w)
	// rem holds w+1 bits to absorb the shift before comparison.
	rem := b.constVec(uint8(w+1), 0)
	yw := make([]Lit, w+1)
	copy(yw, y)
	yw[w] = b.fls
	for i := w - 1; i >= 0; i-- {
		// rem = rem << 1 | x[i]
		shifted := make([]Lit, w+1)
		shifted[0] = x[i]
		copy(shifted[1:], rem[:w])
		lt := b.ultVec(shifted, yw)
		q[i] = lt.Neg()
		diff := b.addVec(shifted, b.negLits(yw), b.fls)
		rem = b.muxVec(lt, shifted, diff)
	}
	r = rem[:w]
	// Zero-divisor handling.
	zero := b.constVec(uint8(w), 0)
	isZ := b.eqVec(y, zero)
	ones := make([]Lit, w)
	for i := range ones {
		ones[i] = b.tru
	}
	q = b.muxVec(isZ, ones, q)
	r = b.muxVec(isZ, x, r)
	return q, r
}

func (b *BV) negLits(x []Lit) []Lit {
	return b.negVec(x)
}

type shiftKind int

const (
	shlKind shiftKind = iota
	lshrKind
	ashrKind
)

// shift encodes a barrel shifter for a variable shift amount. Amounts at or
// beyond the width yield zero (shl/lshr) or sign fill (ashr).
func (b *BV) shift(x, amt []Lit, kind shiftKind) []Lit {
	w := len(x)
	fill := b.fls
	if kind == ashrKind {
		fill = x[w-1]
	}
	cur := append([]Lit(nil), x...)
	for k := 0; k < len(amt) && (1<<k) < w; k++ {
		sh := 1 << k
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			var src Lit
			switch kind {
			case shlKind:
				if i-sh >= 0 {
					src = cur[i-sh]
				} else {
					src = b.fls
				}
			default:
				if i+sh < w {
					src = cur[i+sh]
				} else {
					src = fill
				}
			}
			next[i] = b.mux(amt[k], src, cur[i])
		}
		cur = next
	}
	// If the amount value ≥ w, the result saturates to fill bits.
	ovf := b.geConst(amt, uint64(w))
	out := make([]Lit, w)
	for i := range out {
		out[i] = b.mux(ovf, fill, cur[i])
	}
	return out
}

// geConst returns the literal for (unsigned value of bits) >= c.
func (b *BV) geConst(bits []Lit, c uint64) Lit {
	if c == 0 {
		return b.tru
	}
	if len(bits) < 64 && c > (uint64(1)<<len(bits))-1 {
		return b.fls
	}
	cv := b.constVec(uint8(len(bits)), c)
	return b.ultVec(bits, cv).Neg()
}

// Assert permanently adds the 1-bit term e as a hard constraint.
func (b *BV) Assert(e *expr.Expr) {
	if e.Width != 1 {
		panic("solver: Assert requires a 1-bit term")
	}
	l := b.Bits(e)[0]
	b.sat.AddClause(l)
	// A new hard constraint can flip any memoized answer from Sat to Unsat,
	// and invalidates the model snapshot the subsumption fast path tests
	// against: the old model need not satisfy the new constraint.
	b.memo = make(map[string]memoEntry)
	b.modelValid = false
}

// LitFor translates the 1-bit term e and returns its literal, for use as an
// assumption in CheckLits.
func (b *BV) LitFor(e *expr.Expr) Lit {
	if e.Width != 1 {
		panic("solver: LitFor requires a 1-bit term")
	}
	return b.Bits(e)[0]
}

// Check decides satisfiability of the hard constraints plus the given 1-bit
// assumption terms.
func (b *BV) Check(assumps []*expr.Expr) Status {
	lits := make([]Lit, len(assumps))
	for i, e := range assumps {
		lits[i] = b.LitFor(e)
	}
	return b.CheckLits(lits)
}

// CheckLits decides satisfiability under pre-translated assumption literals.
//
// Results are memoized per assumption *set* (the key is order-insensitive
// and sign-aware: the sign bit lives inside each Lit). A Sat hit restores
// the model snapshot taken when the entry was stored, so Model()/ModelVal()
// behave exactly as after a real solve; variables first encoded after the
// snapshot read as zero, which is a legal assignment for variables the
// memoized query never constrained. Assert invalidates the memo.
func (b *BV) CheckLits(lits []Lit) Status {
	b.Queries++
	internalQueries.Add(1)
	key := memoKey(lits)
	// Injected decision-procedure timeout. The solver has no error return
	// (Unsat/Sat/Unknown are all answers), so an injected timeout panics and
	// rides the same per-instruction isolation that absorbs organic solver
	// bugs; the key is the assumption-set memo key, so n=/every= triggers
	// count queries and key= can target one assumption set.
	if err := faults.Hit(faults.SolverQuery, key); err != nil {
		panic(err)
	}
	if ent, ok := b.memo[key]; ok {
		b.MemoHits++
		memoHitsTotal.Add(1)
		if ent.st == Sat {
			// Model snapshots are immutable, so restoring a cached result
			// is a pointer swap, not an O(vars) copy. The entry postdates
			// the last Assert (which clears the memo), so its model is
			// still a valid snapshot for the subsumption fast path.
			b.sat.SetModel(ent.model)
			b.modelValid = true
			if Validate {
				b.validateHit(lits, ent.model, "memo")
			}
		}
		return ent.st
	}
	if b.Subsume && b.modelValid && modelCovers(b.sat.Model(), lits) {
		// Every assumption already holds under the last Sat model: answer
		// Sat without solving (see the Subsume field comment for why this
		// is sound). The current model stays current.
		b.SubsumeHits++
		subsumeHitsTotal.Add(1)
		if Validate {
			b.validateHit(lits, b.sat.Model(), "subsume")
		}
		if len(b.memo) >= checkMemoCap {
			b.memo = make(map[string]memoEntry)
		}
		b.memo[key] = memoEntry{st: Sat, model: b.sat.Model()}
		return Sat
	}
	b.MemoMisses++
	memoMissesTotal.Add(1)
	b.sat.MaxConflicts = b.MaxConflicts
	b.sat.Reuse = b.Reuse
	b.sat.NoReduce = b.NoReduce
	b.sat.RestartBase = b.RestartBase
	prevReused := b.sat.ReusedLevels
	var st Status
	if b.Portfolio > 0 && b.MaxConflicts > 0 {
		st = b.solvePortfolio(lits)
	} else {
		st = b.sat.Solve(lits)
	}
	reusedLevelsTotal.Add(b.sat.ReusedLevels - prevReused)
	if st == Unknown {
		// Unknown is a statement about the budget, not the formula: it must
		// never enter the memo, or a later call with a bigger budget (or a
		// richer learned-clause set) would replay the give-up instead of
		// deciding.
		return st
	}
	ent := memoEntry{st: st}
	if st == Sat {
		ent.model = b.sat.Model()
		b.modelValid = true
	}
	if len(b.memo) >= checkMemoCap {
		b.memo = make(map[string]memoEntry)
	}
	b.memo[key] = ent
	return st
}

// modelCovers reports whether every assumption literal is inside the model
// (its variable predates the snapshot) and evaluates true under it.
func modelCovers(m []bool, lits []Lit) bool {
	for _, l := range lits {
		v := l.Var()
		if v >= len(m) || m[v] == l.Sign() {
			return false
		}
	}
	return true
}

// validateHit is the Validate debug gate for the memo and subsumption fast
// paths: the returned model must make every assumption true. The full
// clause-set check from CDCL.Solve does not apply here — definitional
// gates encoded after the snapshot legitimately involve variables beyond
// the model's length — but the assumptions themselves must hold.
func (b *BV) validateHit(lits []Lit, m []bool, path string) {
	for _, l := range lits {
		v := l.Var()
		if v >= len(m) || m[v] == l.Sign() {
			panic(fmt.Sprintf("solver: %s hit model falsifies assumption %d", path, l))
		}
	}
}

// solvePortfolio runs one query as a race: the primary solver plus
// b.Portfolio deep clones, each clone searching under a distinct
// deterministic Seed (different restart cadence and decision-polarity
// perturbation). The primary's verdict wins whenever it is decisive — the
// clones are stopped via their Stop flag and their results discarded, so
// the primary's state trajectory is exactly what it would have been
// without the portfolio. Only when the primary exhausts its conflict
// budget are the clones joined, and the first decisive clone by index
// supplies the verdict (and model, for Sat). Every clone runs a
// deterministic bounded search, so the adjudicated answer is a pure
// function of the query sequence — independent of scheduling.
func (b *BV) solvePortfolio(lits []Lit) Status {
	n := b.Portfolio
	portfolioRaces.Add(1)
	var stop int32
	sts := make([]Status, n)
	clones := make([]*CDCL, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c := b.sat.Clone()
		c.Seed = splitmix64(uint64(i) + 1)
		c.Stop = &stop
		clones[i] = c
		wg.Add(1)
		go func(i int, c *CDCL) {
			defer wg.Done()
			sts[i] = c.Solve(lits)
		}(i, c)
	}
	st := b.sat.Solve(lits)
	if st != Unknown {
		atomic.StoreInt32(&stop, 1)
		wg.Wait()
		return st
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if sts[i] != Unknown {
			portfolioCloneWins.Add(1)
			if sts[i] == Sat {
				// The clone's snapshot is immutable like the primary's, so
				// adopting it is a pointer swap.
				b.sat.SetModel(clones[i].Model())
			}
			return sts[i]
		}
	}
	return Unknown
}

// memoKey canonicalizes an assumption set into a map key: sort a copy (the
// caller's slice is never reordered) and pack the raw literals. Two queries
// with the same literals in any order share one entry; a literal and its
// negation differ in the packed value, so the key is sign-aware.
func memoKey(lits []Lit) string {
	s := make([]Lit, len(lits))
	copy(s, lits)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	buf := make([]byte, 4*len(s))
	for i, l := range s {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(l))
	}
	return string(buf)
}

// Model extracts values for every bit-blasted variable after a Sat result.
// Variables never mentioned in any query are absent.
func (b *BV) Model() map[string]uint64 {
	m := make(map[string]uint64, len(b.vars))
	for name, lits := range b.vars {
		m[name] = b.valueOf(lits)
	}
	return m
}

// ModelVal returns the model value of one variable (zero if never encoded).
func (b *BV) ModelVal(name string) uint64 {
	lits, ok := b.vars[name]
	if !ok {
		return 0
	}
	return b.valueOf(lits)
}

// ValueOf returns the value of an already-encoded term under the current
// SAT model. Callers must encode the term (Bits) before solving; bits
// allocated after the model was produced read as zero.
func (b *BV) ValueOf(e *expr.Expr) uint64 { return b.valueOf(b.Bits(e)) }

func (b *BV) valueOf(lits []Lit) uint64 {
	var v uint64
	for i, l := range lits {
		bit := b.sat.Value(l.Var())
		if l.Sign() {
			bit = !bit
		}
		if bit {
			v |= uint64(1) << uint(i)
		}
	}
	return v
}

// NumClauses reports the size of the underlying CNF, for diagnostics.
func (b *BV) NumClauses() int { return b.sat.NumClauses() }

// NumVarsSAT reports the number of SAT variables allocated.
func (b *BV) NumVarsSAT() int { return b.sat.NumVars() }
