// Package selfcheck is the solver self-verification harness: it
// differentially tests the production CDCL configuration (clause arena,
// LBD reduceDB, Luby restarts, model subsumption) against a frozen
// reference configuration and against an independent DPLL solver, over
// seeded random CNF instances and replayed campaign query workloads.
// Verdicts must agree everywhere; models are validated by the
// solver.Validate debug gate, which the harness switches on.
package selfcheck

import "pokeemu/internal/solver"

// refDPLL is an independent plain DPLL solver: recursive backtracking with
// unit propagation, no learning, no restarts, no watched literals, no
// heuristics. It shares nothing with the CDCL implementation but the Lit
// encoding, so an agreement between the two is meaningful evidence. It is
// exponential and meant only for the harness's small instances.
type refDPLL struct {
	nvars   int
	clauses [][]solver.Lit
}

func newRefDPLL(nvars int, clauses [][]solver.Lit) *refDPLL {
	return &refDPLL{nvars: nvars, clauses: clauses}
}

// solve decides satisfiability of the clause set with the assumptions
// conjoined as unit clauses. Never returns Unknown.
func (r *refDPLL) solve(assumps []solver.Lit) solver.Status {
	cls := make([][]solver.Lit, 0, len(r.clauses)+len(assumps))
	cls = append(cls, r.clauses...)
	for _, a := range assumps {
		cls = append(cls, []solver.Lit{a})
	}
	assign := make([]int8, r.nvars) // 0 unassigned, 1 true, -1 false
	if r.dpll(cls, assign) {
		return solver.Sat
	}
	return solver.Unsat
}

func litVal(assign []int8, l solver.Lit) int8 {
	v := assign[l.Var()]
	if v == 0 {
		return 0
	}
	if l.Sign() {
		return -v
	}
	return v
}

// dpll is the recursive search. assign is copied at each branch, which is
// wasteful and fine: instances are tiny by construction.
func (r *refDPLL) dpll(cls [][]solver.Lit, assign []int8) bool {
	// Unit propagation to fixpoint.
	for {
		progress := false
		for _, c := range cls {
			var unit solver.Lit = -1
			sat, unassigned := false, 0
			for _, l := range c {
				switch litVal(assign, l) {
				case 1:
					sat = true
				case 0:
					unassigned++
					unit = l
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				return false // falsified clause
			}
			if unassigned == 1 {
				v := unit.Var()
				if unit.Sign() {
					assign[v] = -1
				} else {
					assign[v] = 1
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Branch on the first unassigned variable.
	branch := -1
	for v := 0; v < r.nvars; v++ {
		if assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch < 0 {
		return true // complete assignment, no clause falsified
	}
	for _, val := range []int8{1, -1} {
		next := append([]int8(nil), assign...)
		next[branch] = val
		if r.dpll(cls, next) {
			return true
		}
	}
	return false
}
