package selfcheck

import (
	"fmt"
	"reflect"
	"sort"

	"pokeemu/internal/core"
	"pokeemu/internal/solver"
	"pokeemu/internal/symex"
)

// splitmix64 mirrors the solver's deterministic PRNG so the harness's
// random instances are reproducible from a seed alone.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func randCNF(seed uint64, nVars, nClauses int) [][]solver.Lit {
	state := seed
	next := func(n int) int {
		state = splitmix64(state)
		return int(state % uint64(n))
	}
	out := make([][]solver.Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		c := make([]solver.Lit, 3)
		for j := range c {
			c[j] = solver.MkLit(next(nVars), next(2) == 1)
		}
		out = append(out, c)
	}
	return out
}

func randAssumps(seed uint64, nVars, steps int) [][]solver.Lit {
	state := seed ^ 0xabcdef
	next := func(n int) int {
		state = splitmix64(state)
		return int(state % uint64(n))
	}
	var cur []solver.Lit
	out := make([][]solver.Lit, 0, steps)
	for i := 0; i < steps; i++ {
		switch {
		case len(cur) > 0 && next(4) == 0:
			cur = cur[:next(len(cur))]
		case len(cur) < nVars/2:
			cur = append(cur, solver.MkLit(next(nVars), next(2) == 1))
		}
		out = append(out, append([]solver.Lit(nil), cur...))
	}
	return out
}

// configuration is one CDCL setup under differential test.
type configuration struct {
	name  string
	build func() *solver.CDCL
}

// newCDCL allocates a solver with nVars variables and the given clauses.
func newCDCL(nVars int, clauses [][]solver.Lit, tune func(*solver.CDCL)) *solver.CDCL {
	s := solver.NewSat()
	for v := 0; v < nVars; v++ {
		s.NewVar()
	}
	if tune != nil {
		tune(s)
	}
	for _, c := range clauses {
		if !s.AddClause(c...) {
			break
		}
	}
	return s
}

// RandomDifferential cross-checks the production configuration (reduceDB
// forced aggressive, restarts, optionally seeded), the frozen reference
// configuration (no reduction — the pre-overhaul solver behavior), and the
// independent DPLL solver over seeded random 3-SAT instances and
// incremental assumption-sequence workloads. Every verdict must agree.
// With solver.Validate on (the harness tests enable it), every Sat model
// is additionally checked against the full clause set.
func RandomDifferential(seeds int) error {
	const nVars = 30
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		clauses := randCNF(seed, nVars, 120)
		ref := newRefDPLL(nVars, clauses)
		configs := []configuration{
			// Production shape, reduction forced to trigger on these small
			// instances so arena compaction is actually exercised.
			{"arena+reduce", func() *solver.CDCL {
				return newCDCL(nVars, clauses, func(s *solver.CDCL) { s.ReduceBase = 20 })
			}},
			// Production shape under a portfolio-style seed (perturbed
			// restarts and polarities).
			{"arena+reduce+seed", func() *solver.CDCL {
				return newCDCL(nVars, clauses, func(s *solver.CDCL) {
					s.ReduceBase = 20
					s.Seed = splitmix64(seed)
				})
			}},
			// Frozen reference: learned clauses are never dropped.
			{"reference", func() *solver.CDCL {
				return newCDCL(nVars, clauses, func(s *solver.CDCL) { s.NoReduce = true })
			}},
		}
		// Whole-formula verdicts.
		want := ref.solve(nil)
		for _, cf := range configs {
			if got := cf.build().Solve(nil); got != want {
				return fmt.Errorf("seed %d: %s solved %v, reference DPLL says %v", seed, cf.name, got, want)
			}
		}
		// Incremental assumption sequences, batched and unbatched.
		for _, reuse := range []bool{false, true} {
			solvers := make([]*solver.CDCL, len(configs))
			for i, cf := range configs {
				solvers[i] = cf.build()
				solvers[i].Reuse = reuse
			}
			for qi, assumps := range randAssumps(seed, nVars, 40) {
				want := ref.solve(assumps)
				for i, cf := range configs {
					if got := solvers[i].Solve(assumps); got != want {
						return fmt.Errorf("seed %d query %d (reuse=%v): %s solved %v, reference DPLL says %v",
							seed, qi, reuse, cf.name, got, want)
					}
				}
			}
		}
	}
	return nil
}

// keysOf returns the sorted variable names of an assignment.
func keysOf(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CampaignReplay replays a slice of the real campaign query workload: it
// symbolically explores the given handlers twice — once under the
// production solver configuration (reduceDB + model subsumption + batched
// front-end) and once under the frozen reference configuration — and
// requires the explored path structure (path order, outcomes, exhaustion,
// per-test variable sets) to be identical. Feasibility verdicts are
// budget-free, so any disagreement means one configuration answered a
// query wrongly.
func CampaignReplay(handlers []string, maxPaths int) error {
	wantSet := make(map[string]bool, len(handlers))
	for _, h := range handlers {
		wantSet[h] = true
	}
	instrSet := core.ExploreInstructionSet()
	var picked []*core.UniqueInstr
	for _, u := range instrSet.Unique {
		if wantSet[u.Spec.Name] {
			picked = append(picked, u)
			wantSet[u.Spec.Name] = false
		}
	}
	if len(picked) == 0 {
		return fmt.Errorf("selfcheck: no instructions matched handlers %v", handlers)
	}

	explore := func(opts symex.Options) ([]*core.ExploreResult, error) {
		ex, err := core.NewExplorer(opts)
		if err != nil {
			return nil, err
		}
		out := make([]*core.ExploreResult, 0, len(picked))
		for _, u := range picked {
			r, err := ex.ExploreState(u)
			if err != nil {
				return nil, fmt.Errorf("explore %s: %w", u.Key(), err)
			}
			out = append(out, r)
		}
		return out, nil
	}

	prod := symex.DefaultOptions()
	prod.MaxPaths = maxPaths
	refOpts := prod
	refOpts.NoSubsume = true
	refOpts.NoReduceDB = true
	refOpts.NoSolverBatch = true

	got, err := explore(prod)
	if err != nil {
		return err
	}
	want, err := explore(refOpts)
	if err != nil {
		return err
	}
	for i := range picked {
		g, w := got[i], want[i]
		key := picked[i].Key()
		if len(g.Tests) != len(w.Tests) {
			return fmt.Errorf("%s: production explored %d paths, reference %d", key, len(g.Tests), len(w.Tests))
		}
		if g.Exhausted != w.Exhausted {
			return fmt.Errorf("%s: exhausted %v vs %v", key, g.Exhausted, w.Exhausted)
		}
		for j := range g.Tests {
			gt, wt := g.Tests[j], w.Tests[j]
			// Path structure — which paths exist, in which order, with
			// which outcomes — is a pure function of budget-free
			// feasibility verdicts, so it must be identical across solver
			// configurations. The assignments are NOT compared: their
			// unpinned tail comes from whichever model the solver
			// returned, and moving models is exactly the versioned
			// freedom SerialVersion grants a solver change.
			if gt.PathIndex != wt.PathIndex || gt.Outcome != wt.Outcome || gt.Aborted != wt.Aborted {
				return fmt.Errorf("%s test %d: path structure diverged (%d/%v vs %d/%v)",
					key, j, gt.PathIndex, gt.Outcome, wt.PathIndex, wt.Outcome)
			}
			if !reflect.DeepEqual(keysOf(gt.Assignment), keysOf(wt.Assignment)) {
				return fmt.Errorf("%s test %d: assignment variable set diverged between solver configs", key, j)
			}
		}
	}
	return nil
}
