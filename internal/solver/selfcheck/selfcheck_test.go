package selfcheck

import (
	"os"
	"testing"

	"pokeemu/internal/solver"
)

// TestMain switches on the solver's debug-build model validation, so every
// Sat result the harness produces is re-checked against the full clause
// set and every reduceDB pass re-checks watcher integrity.
func TestMain(m *testing.M) {
	solver.Validate = true
	os.Exit(m.Run())
}

func TestRandomDifferential(t *testing.T) {
	if err := RandomDifferential(25); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignReplay replays real campaign exploration queries for a
// handler slice: verdicts (and hence the explored path set and canonical
// test assignments) must be identical between the production solver
// configuration and the frozen reference configuration.
func TestCampaignReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign replay explores real handlers")
	}
	if err := CampaignReplay([]string{"add", "push", "leave"}, 48); err != nil {
		t.Fatal(err)
	}
}
