package symex

import (
	"fmt"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// Summary is a precomputed formula for a common multi-path computation
// (Section 3.3.2): for each output location, an if-then-else chain over the
// per-path conditions (p1 ? v1 : p2 ? v2 : …), plus the disjunction of the
// success-path conditions. Substituting a summary in place of re-exploring
// the computation removes its multiplicative effect on the search space —
// the paper's descriptor-cache example would otherwise multiply the state
// space by 23 per segment.
type Summary struct {
	Outputs map[x86.Loc]*expr.Expr
	Success *expr.Expr
	Paths   int
}

// Summarize explores every path of prog starting from a state where each
// input location holds the given term, and folds the results into a
// Summary over the named outputs. The program must be loop-free and free
// of memory accesses with symbolic addresses.
func Summarize(base *SymState, prog *ir.Program,
	inputs map[x86.Loc]*expr.Expr, outputs []x86.Loc) (*Summary, error) {

	init := base.Clone()
	for loc, e := range inputs {
		init.Set(loc, e)
	}
	en := NewEngine(init, nil, Options{MaxPaths: 1 << 16, MaxSteps: 1 << 16, Seed: 1})

	type pathInfo struct {
		cond    *expr.Expr
		outs    map[x86.Loc]*expr.Expr
		success bool
	}
	var paths []pathInfo
	en.Explore(prog, func(r *PathResult) {
		cond := expr.One
		for _, c := range r.Cond {
			cond = expr.And(cond, c)
		}
		info := pathInfo{cond: cond, success: r.Outcome.Kind == ir.OutEnd}
		if info.success {
			info.outs = make(map[x86.Loc]*expr.Expr, len(outputs))
			for _, loc := range outputs {
				info.outs[loc] = r.Final.Get(loc)
			}
		}
		paths = append(paths, info)
	})
	if !en.Stats().Exhausted {
		return nil, fmt.Errorf("symex: summary target not exhaustively explorable")
	}

	s := &Summary{Outputs: make(map[x86.Loc]*expr.Expr), Paths: len(paths)}
	s.Success = expr.Zero
	for _, loc := range outputs {
		var chain *expr.Expr
		for i := len(paths) - 1; i >= 0; i-- {
			p := paths[i]
			if !p.success {
				continue
			}
			if chain == nil {
				chain = p.outs[loc]
			} else {
				chain = expr.Ite(p.cond, p.outs[loc], chain)
			}
		}
		if chain == nil {
			return nil, fmt.Errorf("symex: summary has no success paths")
		}
		s.Outputs[loc] = chain
	}
	for _, p := range paths {
		if p.success {
			s.Success = expr.Or(s.Success, p.cond)
		}
	}
	return s, nil
}
