package symex

import (
	"encoding/json"
	"math/rand"
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/x86"
)

// buildTestSummary constructs a small summary with shared subterms and every
// operator class the descriptor parse actually produces.
func buildTestSummary() *Summary {
	lo := expr.Var(32, "d_lo")
	hi := expr.Var(32, "d_hi")
	sel := expr.ZExt(expr.Var(16, "d_sel"), 32)
	base := expr.Or(expr.Shl(expr.ZExt(expr.Extract(hi, 24, 8), 32), expr.Const(32, 24)),
		expr.And(lo, expr.Const(32, 0x00ffffff)))
	limit := expr.Ite(expr.Eq(expr.Extract(hi, 23, 1), expr.One),
		expr.Or(expr.Shl(expr.And(hi, expr.Const(32, 0xf)), expr.Const(32, 12)),
			expr.Const(32, 0xfff)),
		expr.And(hi, expr.Const(32, 0xf)))
	attr := expr.Extract(expr.Add(hi, sel), 8, 16)
	success := expr.And(expr.Ult(sel, expr.Const(32, 0x80)),
		expr.Not(expr.Eq(base, expr.Const(32, 0))))
	return &Summary{
		Outputs: map[x86.Loc]*expr.Expr{
			{Kind: x86.LocSegBase, Index: 2}:  base,
			{Kind: x86.LocSegLimit, Index: 2}: limit,
			{Kind: x86.LocSegAttr, Index: 2}:  expr.ZExt(attr, 32),
		},
		Success: success,
		Paths:   23,
	}
}

func randEnv(r *rand.Rand) map[string]uint64 {
	return map[string]uint64{
		"d_lo":  r.Uint64(),
		"d_hi":  r.Uint64(),
		"d_sel": r.Uint64(),
	}
}

func TestSummarySerializationRoundtrip(t *testing.T) {
	s := buildTestSummary()
	rec := EncodeSummary(s)

	// Through JSON, as the corpus stores it.
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var rec2 SummaryRecord
	if err := json.Unmarshal(blob, &rec2); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSummary(&rec2)
	if err != nil {
		t.Fatal(err)
	}

	if got.Paths != s.Paths {
		t.Errorf("paths: got %d want %d", got.Paths, s.Paths)
	}
	if len(got.Outputs) != len(s.Outputs) {
		t.Fatalf("outputs: got %d want %d", len(got.Outputs), len(s.Outputs))
	}
	// Semantic equality under random environments (the decoded term may be a
	// distinct but equivalent canonical form).
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		env := randEnv(r)
		if a, b := expr.Eval(s.Success, env), expr.Eval(got.Success, env); a != b {
			t.Fatalf("success mismatch under %v: %d vs %d", env, a, b)
		}
		for loc, e := range s.Outputs {
			e2, ok := got.Outputs[loc]
			if !ok {
				t.Fatalf("missing output %v", loc)
			}
			if a, b := expr.Eval(e, env), expr.Eval(e2, env); a != b {
				t.Fatalf("output %v mismatch under %v: %#x vs %#x", loc, env, a, b)
			}
		}
	}
}

func TestSummaryDedupSharedSubterms(t *testing.T) {
	x := expr.Var(32, "x")
	shared := expr.Add(x, expr.Const(32, 1))
	s := &Summary{
		Outputs: map[x86.Loc]*expr.Expr{
			{Kind: x86.LocSegBase, Index: 0}:  expr.Mul(shared, shared),
			{Kind: x86.LocSegLimit, Index: 0}: expr.Xor(shared, x),
		},
		Success: expr.Ult(shared, x),
		Paths:   1,
	}
	rec := EncodeSummary(s)
	// x, 1, x+1 appear once each; plus mul, xor, ult roots = 6 nodes.
	if len(rec.Nodes) != 6 {
		t.Errorf("expected 6 deduplicated nodes, got %d", len(rec.Nodes))
	}
	if _, err := DecodeSummary(rec); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryDecodeRejectsCorrupt(t *testing.T) {
	cases := []*SummaryRecord{
		nil,
		{Version: SerialVersion + 1},
		{Version: SerialVersion, Success: 5}, // root out of range
		{Version: SerialVersion, Nodes: []ExprNode{{Op: "bogus", W: 8}}},
		{Version: SerialVersion, Nodes: []ExprNode{{Op: "add", W: 8, Kids: []int32{0, 0}}}}, // forward/self ref
		{Version: SerialVersion, Nodes: []ExprNode{{Op: "const", W: 99}}},                   // invalid width
	}
	for i, rec := range cases {
		if _, err := DecodeSummary(rec); err == nil {
			t.Errorf("case %d: corrupt record decoded without error", i)
		}
	}
}

// TestExplorerSummaryRecordRoundtrip drives the real descriptor-parse
// summaries through encode/decode and checks they still agree with the
// originals on random inputs.
func TestExprEncoderStability(t *testing.T) {
	s := buildTestSummary()
	a := EncodeSummary(s)
	b := EncodeSummary(s)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("encoding the same summary twice produced different bytes")
	}
}
