package symex

import (
	"math/rand"
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

func newState(t *testing.T) *SymState {
	t.Helper()
	return NewSymState(machine.NewBaseline(nil))
}

// branchProg: if eax < 10 → ebx = 1 else ebx = 2.
func branchProg() *ir.Program {
	b := ir.NewBuilder("branch")
	x := b.Get(x86.GPR(x86.EAX))
	lt := b.Ult(x, b.Const(32, 10))
	l := b.NewLabel()
	b.CJump(lt, l)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 2))
	b.End()
	b.Bind(l)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 1))
	b.End()
	return b.Build()
}

func TestExploreTwoPaths(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	en := NewEngine(st, nil, DefaultOptions())
	var results []*PathResult
	en.Explore(branchProg(), func(r *PathResult) { results = append(results, r) })
	if len(results) != 2 {
		t.Fatalf("paths = %d, want 2", len(results))
	}
	if !en.Stats().Exhausted {
		t.Error("exploration should be exhaustive")
	}
	// Each model must satisfy its own path condition.
	seen := map[uint64]bool{}
	for _, r := range results {
		for _, c := range r.Cond {
			if expr.Eval(c, r.Model) != 1 {
				t.Errorf("model does not satisfy path condition %v", c)
			}
		}
		ebx := r.Final.Get(x86.GPR(x86.EBX))
		seen[ebx.ConstVal()] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("expected both outcomes, got %v", seen)
	}
}

// nestedProg has 3 feasible paths (x>5 ∧ x<3 is infeasible).
func nestedProg() *ir.Program {
	b := ir.NewBuilder("nested")
	x := b.Get(x86.GPR(x86.EAX))
	outer := b.NewLabel()
	inner := b.NewLabel()
	b.CJump(b.Ugt(x, b.Const(32, 5)), outer)
	// x <= 5
	b.CJump(b.Ult(x, b.Const(32, 3)), inner)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 10)) // 3 <= x <= 5
	b.End()
	b.Bind(inner)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 11)) // x < 3
	b.End()
	b.Bind(outer)
	b.CJump(b.Ult(x, b.Const(32, 3)), inner) // infeasible with x > 5
	b.Set(x86.GPR(x86.EBX), b.Const(32, 12)) // x > 5
	b.End()
	return b.Build()
}

func TestInfeasiblePathPruned(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	en := NewEngine(st, nil, DefaultOptions())
	var got []uint64
	en.Explore(nestedProg(), func(r *PathResult) {
		got = append(got, r.Final.Get(x86.GPR(x86.EBX)).ConstVal())
	})
	if len(got) != 3 {
		t.Fatalf("paths = %d, want 3 (infeasible path must be pruned): %v", len(got), got)
	}
	if !en.Stats().Exhausted {
		t.Error("should be exhausted")
	}
}

func TestSideConditionsRestrictPaths(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	// Pin eax ≥ 10: only one branch of branchProg is feasible.
	side := expr.Not(expr.Ult(expr.Var(32, "st_eax"), expr.Const(32, 10)))
	en := NewEngine(st, []*expr.Expr{side}, DefaultOptions())
	count := 0
	en.Explore(branchProg(), func(r *PathResult) { count++ })
	if count != 1 {
		t.Fatalf("paths = %d, want 1 under the side condition", count)
	}
}

func TestPartialSymbolicMask(t *testing.T) {
	st := newState(t)
	// Only the low byte of EAX symbolic; the rest pinned to baseline (0).
	side := st.MarkLocSymbolic(x86.GPR(x86.EAX), 0xff)
	if side == nil {
		t.Fatal("expected a side constraint for the pinned bits")
	}
	en := NewEngine(st, []*expr.Expr{side}, DefaultOptions())
	// Branch on a high bit: must be concrete-false only → 1 path.
	b := ir.NewBuilder("hibit")
	x := b.Get(x86.GPR(x86.EAX))
	hi := b.Extract(x, 31, 1)
	l := b.NewLabel()
	b.CJump(hi, l)
	b.End()
	b.Bind(l)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 1))
	b.End()
	count := 0
	en.Explore(b.Build(), func(r *PathResult) { count++ })
	if count != 1 {
		t.Fatalf("paths = %d, want 1 (high bits pinned)", count)
	}
}

func TestMinimizationKeepsBaselineBits(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0)) // baseline eax = 0
	en := NewEngine(st, nil, DefaultOptions())
	// Condition: bit 17 of eax must be 1. All other bits should minimize
	// back to baseline zero.
	b := ir.NewBuilder("bit17")
	x := b.Get(x86.GPR(x86.EAX))
	l := b.NewLabel()
	b.CJump(b.Extract(x, 17, 1), l)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 1))
	b.End()
	b.Bind(l)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 2))
	b.End()
	var models []map[string]uint64
	en.Explore(b.Build(), func(r *PathResult) {
		models = append(models, r.Model)
	})
	if len(models) != 2 {
		t.Fatalf("want 2 paths, got %d", len(models))
	}
	for _, m := range models {
		v := m["st_eax"]
		if v != 0 && v != 1<<17 {
			t.Errorf("minimized eax = %#x, want 0 or 1<<17", v)
		}
	}
}

func TestMinimizationAblation(t *testing.T) {
	// Without minimization, models usually carry arbitrary unconstrained
	// bits; with it, the Hamming distance to baseline is minimal.
	mkEngine := func(skip bool) (int, *SymState) {
		st := newState(t)
		st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
		st.MarkLocSymbolic(x86.GPR(x86.ECX), ^uint64(0))
		opts := DefaultOptions()
		opts.SkipMinimize = skip
		en := NewEngine(st, nil, opts)
		b := ir.NewBuilder("p")
		x := b.Get(x86.GPR(x86.EAX))
		c := b.Get(x86.GPR(x86.ECX))
		l := b.NewLabel()
		// Condition touches both vars: eax + ecx == 100.
		b.CJump(b.Eq(b.Add(x, c), b.Const(32, 100)), l)
		b.End()
		b.Bind(l)
		b.End()
		total := 0
		en.Explore(b.Build(), func(r *PathResult) {
			total += HammingToBaseline(r.Model, st.Baseline, st.Vars)
		})
		return total, st
	}
	minimized, _ := mkEngine(false)
	raw, _ := mkEngine(true)
	if minimized > raw {
		t.Errorf("minimization increased distance: %d > %d", minimized, raw)
	}
}

func TestSymbolicMemoryLoadConcretization(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	en := NewEngine(st, nil, DefaultOptions())
	// Load from [eax]: the address is concretized, the loaded unused-memory
	// byte becomes an on-demand symbolic variable.
	b := ir.NewBuilder("ldsym")
	x := b.Get(x86.GPR(x86.EAX))
	v := b.Load(x, 1)
	l := b.NewLabel()
	b.CJump(b.Eq(v, b.Const(8, 0x5a)), l)
	b.End()
	b.Bind(l)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 1))
	b.End()
	count := 0
	en.Explore(b.Build(), func(r *PathResult) { count++ })
	if count != 2 {
		t.Fatalf("paths = %d, want 2 (one per byte-value branch)", count)
	}
	// Concretization must not enumerate addresses: the tree stays small.
	if en.Stats().TreeNodes > 8 {
		t.Errorf("tree nodes = %d; address enumeration leaked into the tree",
			en.Stats().TreeNodes)
	}
}

func TestRaiseOutcomeRecorded(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	en := NewEngine(st, nil, DefaultOptions())
	b := ir.NewBuilder("raise")
	x := b.Get(x86.GPR(x86.EAX))
	l := b.NewLabel()
	b.CJump(b.Eq(x, b.Const(32, 0)), l)
	b.Raise(x86.ExcGP, b.Const(32, 0x50))
	b.Bind(l)
	b.End()
	var raises, ends int
	en.Explore(b.Build(), func(r *PathResult) {
		switch r.Outcome.Kind {
		case ir.OutRaise:
			raises++
			if r.Outcome.Vector != x86.ExcGP || r.Outcome.ErrCode != 0x50 {
				t.Errorf("bad raise outcome %+v", r.Outcome)
			}
		case ir.OutEnd:
			ends++
		}
	})
	if raises != 1 || ends != 1 {
		t.Errorf("raises=%d ends=%d, want 1/1", raises, ends)
	}
}

func TestLoopPathsBoundedByCap(t *testing.T) {
	// while (ecx != 0) ecx--: with symbolic ECX there is one path per
	// feasible iteration count; the cap stops exploration like the
	// paper's 8192 limit does for rep instructions.
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.ECX), ^uint64(0))
	opts := DefaultOptions()
	opts.MaxPaths = 20
	en := NewEngine(st, nil, opts)
	b := ir.NewBuilder("loop")
	top := b.NewLabel()
	done := b.NewLabel()
	b.Bind(top)
	c := b.Get(x86.GPR(x86.ECX))
	b.CJump(b.Eq(c, b.Const(32, 0)), done)
	b.Set(x86.GPR(x86.ECX), b.Sub(c, b.Const(32, 1)))
	b.Jump(top)
	b.Bind(done)
	b.End()
	count := 0
	en.Explore(b.Build(), func(r *PathResult) { count++ })
	if count != 20 {
		t.Fatalf("paths = %d, want the cap 20", count)
	}
	if en.Stats().Exhausted {
		t.Error("loop over a 32-bit counter cannot be exhausted at cap 20")
	}
}

func TestConcretizeEnumCoversAllValues(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	side := expr.Ult(expr.Var(32, "st_eax"), expr.Const(32, 4))
	en := NewEngine(st, []*expr.Expr{side}, DefaultOptions())

	seen := map[uint64]bool{}
	for i := 0; i < 64 && !en.tree.FullyExplored(); i++ {
		en.pathCond = en.pathCond[:0]
		en.pathLits = en.pathLits[:0]
		en.walker = en.tree.walk()
		en.st = en.initial.Clone()
		v, err := en.ConcretizeEnum(expr.Extract(expr.Var(32, "st_eax"), 0, 3))
		if err == errDeadEnd {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[v] = true
		en.walker.complete()
	}
	for want := uint64(0); want < 4; want++ {
		if !seen[want] {
			t.Errorf("value %d never enumerated (seen %v)", want, seen)
		}
	}
	if seen[4] || seen[5] || seen[6] || seen[7] {
		t.Errorf("enumerated infeasible values: %v", seen)
	}
}

func TestSummarizeDescriptorParse(t *testing.T) {
	st := newState(t)
	prog := sem.DescriptorParseProgram(false)
	p := sem.DescriptorParsePorts
	inputs := map[x86.Loc]*expr.Expr{
		p.Lo:  expr.Var(32, "d_lo"),
		p.Hi:  expr.Var(32, "d_hi"),
		p.Sel: expr.ZExt(expr.Var(16, "d_sel"), 32),
	}
	sum, err := Summarize(st, prog, inputs, []x86.Loc{p.Base, p.Limit, p.Attr})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Paths < 8 || sum.Paths > 64 {
		t.Errorf("descriptor parse paths = %d, want a couple dozen", sum.Paths)
	}
	t.Logf("descriptor parse: %d paths", sum.Paths)

	// Cross-check the summary formula against the concrete helper on random
	// valid data descriptors.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		base := uint32(r.Uint64())
		limit20 := uint32(r.Uint64()) & 0xfffff
		attr := uint16(r.Uint64())&0x0fff | x86.AttrP | x86.AttrS
		attr &^= x86.AttrCode // data segment
		lo, hi := x86.MakeDescriptor(base, limit20, attr)
		env := map[string]uint64{
			"d_lo": uint64(lo), "d_hi": uint64(hi), "d_sel": 8, // RPL 0, GDT
		}
		if expr.Eval(sum.Success, env) != 1 {
			t.Fatalf("valid descriptor rejected by summary (attr %#x)", attr)
		}
		wantBase, wantLimit, wantAttr := x86.DescriptorFields(lo, hi)
		if got := expr.Eval(sum.Outputs[p.Base], env); uint32(got) != wantBase {
			t.Errorf("summary base %#x, want %#x", got, wantBase)
		}
		if got := expr.Eval(sum.Outputs[p.Limit], env); uint32(got) != wantLimit {
			t.Errorf("summary limit %#x, want %#x", got, wantLimit)
		}
		if got := expr.Eval(sum.Outputs[p.Attr], env); uint16(got) != wantAttr|x86.AttrAccessed {
			t.Errorf("summary attr %#x, want %#x", got, wantAttr|x86.AttrAccessed)
		}
	}
	// Not-present descriptors must fail.
	lo, hi := x86.MakeDescriptor(0, 0xfffff, x86.AttrS|x86.AttrWritable)
	env := map[string]uint64{"d_lo": uint64(lo), "d_hi": uint64(hi), "d_sel": 8}
	if expr.Eval(sum.Success, env) == 1 {
		t.Error("not-present descriptor accepted by summary")
	}
}

func TestSymbolicWritesVisibleInFinalState(t *testing.T) {
	st := newState(t)
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	en := NewEngine(st, nil, DefaultOptions())
	b := ir.NewBuilder("store")
	x := b.Get(x86.GPR(x86.EAX))
	b.Store(b.Const(32, 0x1234), b.Extract(x, 0, 8), 1)
	b.End()
	en.Explore(b.Build(), func(r *PathResult) {
		got := r.Final.LoadByte(0x1234)
		if got.IsConst() {
			t.Error("stored byte should be symbolic")
		}
	})
}
