package symex

import (
	"sort"
	"sync"
	"sync/atomic"

	"pokeemu/internal/faults"
	"pokeemu/internal/ir"
)

// Parallel deterministic exploration.
//
// Explore always runs the same two-phase algorithm, whatever Options.Workers
// says; the pool size changes wall-clock time and nothing else.
//
// Phase 1 enumerates the decision tree sequentially down to a fixed split
// depth. Paths that complete above that depth are emitted directly ("short
// paths"); every subtree reached at the split depth is closed in the root
// tree and recorded as a task identified by its direction prefix.
//
// Phase 2 explores each task in its own engine — private solver, tree, RNG
// (seeded from the task prefix), and a deep-forked symbolic state — on a
// bounded worker pool. The engine replays the forced prefix without solver
// queries or randomness: execution is deterministic given branch directions
// because concretization pins are canonical (see pickConcrete).
//
// The merge is what makes the result worker-count-independent, mirroring
// campaign/pool.go's contract: tasks write only into their own slots, and
// the final path list is ordered by each path's full branch-direction
// string. Direction strings are prefix-free across units, so this order is
// total and scheduling-independent. The list is trimmed to MaxPaths and
// only then are visit callbacks fired.
//
// Budgets: a naive per-task cap of MaxPaths would explore up to
// tasks×MaxPaths paths on capped trees. Instead tasks are granted budgets
// in deterministic rounds: each round computes the global deficit (cap
// minus every unit's current contribution) and splits it evenly across
// the unfinished tasks, so the over-exploration discarded by the final
// trim is at most tasks−1 paths. Grants depend only on collected counts,
// so the schedule — and therefore every engine's RNG stream — is
// identical for any pool size.

// defaultSplitDepth is the frontier depth in genuine forks (branch nodes
// whose other side is not known infeasible). 4 bounds the task count to 16
// whatever the raw branch depth of the program.
const defaultSplitDepth = 4

// keyedPath pairs a completed path with its canonical sort key.
type keyedPath struct {
	key string
	res *PathResult
}

// dirKey renders a branch-direction sequence as a sortable string.
func dirKey(dirs []int) string {
	b := make([]byte, len(dirs))
	for i, d := range dirs {
		b[i] = byte('0' + d)
	}
	return string(b)
}

// taskSeed derives a task engine's RNG seed from the base seed and the
// task's direction prefix, so its random choices depend only on the task's
// identity, never on scheduling.
func taskSeed(seed int64, prefix []int) int64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(seed))
	for _, d := range prefix {
		mix(uint64(d) + 1)
	}
	return int64(h)
}

// Explore enumerates execution paths of prog until the space is exhausted
// or the path cap is reached, invoking visit for each kept path in
// canonical order. It is single-shot per Engine.
func (en *Engine) Explore(prog *ir.Program, visit func(*PathResult)) {
	// Phase 1: frontier enumeration on this engine.
	en.splitDepth = defaultSplitDepth
	var short []keyedPath
	for len(short) < en.opts.MaxPaths && !en.tree.FullyExplored() {
		res, err := en.runOnce(prog)
		if err == errDeadEnd || err == errSplit {
			continue // the tree has been updated; retry from the root
		}
		if res == nil {
			break
		}
		short = append(short, keyedPath{dirKey(en.curDirs), res})
	}
	en.splitDepth = 0
	frontierComplete := en.tree.FullyExplored()

	// Phase 2: task engines over the delegated subtrees, canonical order.
	prefixes := en.tasks
	en.tasks = nil
	sort.Slice(prefixes, func(i, j int) bool {
		return dirKey(prefixes[i]) < dirKey(prefixes[j])
	})
	subs := make([]*Engine, len(prefixes))
	for i, p := range prefixes {
		o := en.opts
		o.MaxPaths = 0 // granted per round
		o.Seed = taskSeed(en.opts.Seed, p)
		sub := NewEngine(en.initial.fork(), en.sideCond, o)
		sub.forced = p
		subs[i] = sub
	}
	en.subs = subs

	// Canonical unit order: short paths and tasks interleaved by key.
	type unitRef struct {
		key  string
		task int // -1 for a short path
		path *keyedPath
	}
	units := make([]unitRef, 0, len(short)+len(subs))
	for i := range short {
		units = append(units, unitRef{short[i].key, -1, &short[i]})
	}
	for i, p := range prefixes {
		units = append(units, unitRef{dirKey(p), i, nil})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].key < units[j].key })

	for {
		// Deficit accounting: how many more paths the global cap still
		// needs, counting every unit's current contribution. The deficit is
		// split evenly (ceil) across unfinished tasks in canonical order, so
		// each round over-explores by at most open-1 paths — and only on the
		// final round, since earlier rounds end with the deficit still
		// positive. Grants remain a pure function of collected counts, so
		// the schedule is identical for any pool size.
		total := 0
		for _, u := range units {
			if u.task < 0 {
				total++
			} else {
				total += len(subs[u.task].collected)
			}
		}
		deficit := en.opts.MaxPaths - total
		if deficit <= 0 {
			break
		}
		var open []int
		for _, u := range units {
			if u.task >= 0 && !subs[u.task].tree.FullyExplored() {
				open = append(open, u.task)
			}
		}
		if len(open) == 0 {
			break
		}
		share := (deficit + len(open) - 1) / len(open)
		type grant struct{ task, budget int }
		grants := make([]grant, 0, len(open))
		for _, t := range open {
			grants = append(grants, grant{t, len(subs[t].collected) + share})
		}
		workers := en.opts.Workers
		if workers < 1 {
			workers = 1
		}
		if workers > len(grants) {
			workers = len(grants)
		}
		panics := make([]any, len(grants))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(grants) {
						return
					}
					func() {
						defer func() {
							if r := recover(); r != nil {
								panics[i] = r
							}
						}()
						sub := subs[grants[i].task]
						sub.opts.MaxPaths = grants[i].budget
						sub.exploreSeq(prog)
					}()
				}
			}()
		}
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				// Re-panic the canonically first failure so the campaign's
				// per-instruction fault isolation records a deterministic
				// message for any worker count.
				panic(p)
			}
		}
	}

	// Join: merge task-created variables and coverage into the root state
	// before any visit callback can observe them.
	for _, sub := range subs {
		en.mergeFork(sub)
		if sub.stmtHits != nil {
			if en.stmtHits == nil {
				en.stmtHits = make([]bool, len(sub.stmtHits))
			}
			for i, hit := range sub.stmtHits {
				if hit {
					en.stmtHits[i] = true
				}
			}
		}
	}

	// Merge paths in canonical order and trim to the cap: a single global
	// sort by full branch-direction string — total, because every key is a
	// distinct complete root-to-leaf path, and scheduling-independent.
	final := make([]keyedPath, 0, len(short))
	final = append(final, short...)
	for _, sub := range subs {
		final = append(final, sub.collected...)
	}
	sort.Slice(final, func(i, j int) bool { return final[i].key < final[j].key })
	trimmed := false
	if len(final) > en.opts.MaxPaths {
		final = final[:en.opts.MaxPaths]
		trimmed = true
	}

	exhausted := frontierComplete && !trimmed
	for _, sub := range subs {
		if !sub.tree.FullyExplored() {
			exhausted = false
		}
	}
	en.explored = true
	en.exhausted = exhausted
	en.stats.Paths = len(final)
	en.stats.AbortedPaths = 0
	for _, kp := range final {
		if kp.res.Aborted {
			en.stats.AbortedPaths++
		}
	}
	if visit != nil {
		for _, kp := range final {
			visit(kp.res)
		}
	}
}

// exploreSeq is the classic sequential loop, used by task engines: explore
// until the engine's own cap or its subtree is exhausted, accumulating
// keyed paths.
func (en *Engine) exploreSeq(prog *ir.Program) {
	// Injected task crash: keyed by the direction prefix, so the same task
	// units fault whatever the pool size — phase 2's canonical re-panic then
	// reports it identically for any worker count.
	if err := faults.Hit(faults.SymexTask, dirKey(en.forced)); err != nil {
		panic(err)
	}
	for len(en.collected) < en.opts.MaxPaths && !en.tree.FullyExplored() {
		res, err := en.runOnce(prog)
		if err != nil {
			continue
		}
		en.collected = append(en.collected, keyedPath{dirKey(en.curDirs), res})
	}
}

// mergeFork copies variables a task's forked state created (lazily touched
// memory bytes) back into the root registries. Entries are a deterministic
// function of the variable name, so insertion order does not matter and
// collisions across tasks are idempotent.
func (en *Engine) mergeFork(sub *Engine) {
	root, f := en.initial, sub.initial
	for name, w := range f.Vars {
		if _, ok := root.Vars[name]; ok {
			continue
		}
		root.Vars[name] = w
		root.Baseline[name] = f.Baseline[name]
		if l, ok := f.VarLoc[name]; ok {
			root.VarLoc[name] = l
		}
		if a, ok := f.VarMem[name]; ok {
			root.VarMem[name] = a
		}
	}
}
