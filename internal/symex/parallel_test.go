package symex

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// branchyProg builds a program whose decision tree is deeper than the split
// depth: one independent branch per low bit of EAX, accumulating into EBX.
// Every path is feasible, so exploring bit-depth d yields exactly 2^d paths.
func branchyProg(depth int) *ir.Program {
	b := ir.NewBuilder("branchy")
	eax := b.Get(x86.GPR(x86.EAX))
	b.Set(x86.GPR(x86.EBX), b.Const(32, 0))
	for i := 0; i < depth; i++ {
		bit := b.Extract(eax, uint8(i), 1)
		skip := b.NewLabel()
		b.CJump(b.Eq(bit, b.Const(1, 0)), skip)
		b.Set(x86.GPR(x86.EBX),
			b.Add(b.Get(x86.GPR(x86.EBX)), b.Const(32, uint64(1)<<uint(i))))
		b.Bind(skip)
	}
	b.End()
	return b.Build()
}

func exploreWith(t *testing.T, workers, maxPaths, depth int) ([]string, Stats) {
	t.Helper()
	st := NewSymState(machine.NewBaseline(nil))
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	en := NewEngine(st, nil, Options{
		MaxPaths: maxPaths, MaxSteps: 1 << 14, Seed: 7, Workers: workers,
	})
	var got []string
	en.Explore(branchyProg(depth), func(res *PathResult) {
		// Fingerprint everything a campaign report could depend on: the
		// outcome, the path-condition length, the final EBX value, and the
		// full (minimized) model in sorted order.
		names := make([]string, 0, len(res.Model))
		for n := range res.Model {
			names = append(names, n)
		}
		sort.Strings(names)
		fp := fmt.Sprintf("out=%v conds=%d ebx=%#x",
			res.Outcome, len(res.Cond), res.Final.Get(x86.GPR(x86.EBX)).ConstVal())
		for _, n := range names {
			fp += fmt.Sprintf(" %s=%#x", n, res.Model[n])
		}
		got = append(got, fp)
	})
	return got, en.Stats()
}

// TestParallelExploreDeterministic is the symex analogue of the campaign
// worker-determinism test: the visited path sequence and all statistics must
// be identical for every worker count, both when the space is exhausted and
// when the path cap trims it.
func TestParallelExploreDeterministic(t *testing.T) {
	for _, tc := range []struct {
		depth, maxPaths int
		wantExhausted   bool
	}{
		{depth: 7, maxPaths: 1 << 10, wantExhausted: true}, // 128 paths, exhausted
		{depth: 8, maxPaths: 60, wantExhausted: false},     // 256 feasible, trimmed
	} {
		base, baseStats := exploreWith(t, 1, tc.maxPaths, tc.depth)
		if baseStats.Exhausted != tc.wantExhausted {
			t.Fatalf("depth=%d cap=%d: exhausted=%v, want %v",
				tc.depth, tc.maxPaths, baseStats.Exhausted, tc.wantExhausted)
		}
		want := tc.maxPaths
		if tc.wantExhausted {
			want = 1 << tc.depth
		}
		if len(base) != want {
			t.Fatalf("depth=%d cap=%d: explored %d paths, want %d",
				tc.depth, tc.maxPaths, len(base), want)
		}
		for _, workers := range []int{2, 4, 8} {
			got, stats := exploreWith(t, workers, tc.maxPaths, tc.depth)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("depth=%d cap=%d: workers=%d path sequence differs from workers=1 (len %d vs %d)",
					tc.depth, tc.maxPaths, workers, len(got), len(base))
			}
			if stats.Paths != baseStats.Paths ||
				stats.AbortedPaths != baseStats.AbortedPaths ||
				stats.Exhausted != baseStats.Exhausted ||
				stats.SolverQueries != baseStats.SolverQueries ||
				stats.MinimizedBits != baseStats.MinimizedBits ||
				stats.FlippedBits != baseStats.FlippedBits ||
				stats.StmtsCovered != baseStats.StmtsCovered {
				t.Fatalf("workers=%d stats differ:\n%+v\nvs workers=1:\n%+v",
					workers, stats, baseStats)
			}
		}
	}
}

// TestParallelExploreModelsSatisfyConds re-checks, for a parallel run, the
// engine's core contract: every emitted model satisfies its own path
// condition under the pure evaluator.
func TestParallelExploreModelsSatisfyConds(t *testing.T) {
	st := NewSymState(machine.NewBaseline(nil))
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	en := NewEngine(st, nil, Options{MaxPaths: 1 << 10, MaxSteps: 1 << 14, Seed: 3, Workers: 4})
	paths := 0
	en.Explore(branchyProg(6), func(res *PathResult) {
		paths++
		for _, c := range res.Cond {
			if expr.Eval(c, res.Model) != 1 {
				t.Fatalf("path %d: model does not satisfy %v", paths, c)
			}
		}
	})
	if paths != 64 {
		t.Fatalf("explored %d paths, want 64", paths)
	}
	if !en.Stats().Exhausted {
		t.Fatal("expected exhaustion")
	}
}
