package symex

import (
	"math/rand"
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// randomProgram emits a random straight-line IR program over two GPR inputs
// with occasional conditional values, ending in a write to EBX.
func randomProgram(r *rand.Rand) *ir.Program {
	b := ir.NewBuilder("rnd")
	vals := []ir.Operand{
		b.Get(x86.GPR(x86.EAX)),
		b.Get(x86.GPR(x86.ECX)),
		b.Const(32, r.Uint64()),
	}
	pick := func() ir.Operand { return vals[r.Intn(len(vals))] }
	for i := 0; i < 12; i++ {
		var v ir.Operand
		switch r.Intn(10) {
		case 0:
			v = b.Add(pick(), pick())
		case 1:
			v = b.Sub(pick(), pick())
		case 2:
			v = b.Mul(pick(), pick())
		case 3:
			v = b.And(pick(), pick())
		case 4:
			v = b.Or(pick(), pick())
		case 5:
			v = b.Xor(pick(), pick())
		case 6:
			v = b.Not(pick())
		case 7:
			v = b.Ite(b.Ult(pick(), pick()), pick(), pick())
		case 8:
			v = b.ZExt(b.Extract(pick(), uint8(r.Intn(24)), 8), 32)
		default:
			v = b.Shl(pick(), b.Const(8, uint64(r.Intn(33))))
		}
		vals = append(vals, v)
	}
	b.Set(x86.GPR(x86.EBX), vals[len(vals)-1])
	b.End()
	return b.Build()
}

// TestSymbolicMatchesConcreteEvaluation is the central engine-soundness
// property: running a program symbolically with inputs marked symbolic and
// then evaluating the final-state terms under a random assignment must give
// the same result as running the program concretely with those values.
func TestSymbolicMatchesConcreteEvaluation(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	image := machine.BaselineImage()
	for iter := 0; iter < 100; iter++ {
		prog := randomProgram(r)
		a, c := uint32(r.Uint64()), uint32(r.Uint64())

		// Concrete run.
		m := machine.NewBaseline(image)
		m.GPR[x86.EAX] = a
		m.GPR[x86.ECX] = c
		if _, err := ir.Run(prog, m, 0); err != nil {
			t.Fatal(err)
		}
		want := m.GPR[x86.EBX]

		// Symbolic run (one path suffices; the program is branch-free).
		st := NewSymState(machine.NewBaseline(image))
		st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
		st.MarkLocSymbolic(x86.GPR(x86.ECX), ^uint64(0))
		en := NewEngine(st, nil, DefaultOptions())
		var final *expr.Expr
		en.Explore(prog, func(res *PathResult) {
			final = res.Final.Get(x86.GPR(x86.EBX))
		})
		if final == nil {
			t.Fatal("no path explored")
		}
		env := map[string]uint64{"st_eax": uint64(a), "st_ecx": uint64(c)}
		if got := uint32(expr.Eval(final, env)); got != want {
			t.Fatalf("iter %d: symbolic %#x != concrete %#x\n%s",
				iter, got, want, prog)
		}
	}
}

// TestSymbolicBranchingMatchesConcrete extends the property across branches:
// for each explored path, running the program concretely on the path's own
// (minimized) model must reproduce the path's outcome.
func TestSymbolicBranchingMatchesConcrete(t *testing.T) {
	image := machine.BaselineImage()
	b := ir.NewBuilder("br")
	x := b.Get(x86.GPR(x86.EAX))
	y := b.Get(x86.GPR(x86.ECX))
	big := b.NewLabel()
	b.CJump(b.Ugt(b.Add(x, y), b.Const(32, 1000)), big)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 1))
	b.End()
	b.Bind(big)
	gp := b.NewLabel()
	b.CJump(b.Eq(y, b.Const(32, 0)), gp)
	b.Set(x86.GPR(x86.EBX), b.Const(32, 2))
	b.End()
	b.Bind(gp)
	b.Raise(x86.ExcGP, b.Const(32, 0))
	prog := b.Build()

	st := NewSymState(machine.NewBaseline(image))
	st.MarkLocSymbolic(x86.GPR(x86.EAX), ^uint64(0))
	st.MarkLocSymbolic(x86.GPR(x86.ECX), ^uint64(0))
	en := NewEngine(st, nil, DefaultOptions())
	paths := 0
	en.Explore(prog, func(res *PathResult) {
		paths++
		m := machine.NewBaseline(image)
		m.GPR[x86.EAX] = uint32(res.Model["st_eax"])
		m.GPR[x86.ECX] = uint32(res.Model["st_ecx"])
		out, err := ir.Run(prog, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Kind != res.Outcome.Kind || out.Vector != res.Outcome.Vector {
			t.Errorf("path outcome %v, concrete replay %v (model %v)",
				res.Outcome, out, res.Model)
		}
	})
	if paths != 3 {
		t.Errorf("paths = %d, want 3", paths)
	}
}
