package symex

import (
	"fmt"
	"math/rand"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/solver"
)

// Options tunes one exploration run.
type Options struct {
	MaxPaths     int   // cap on explored paths (the paper uses 8192)
	MaxSteps     int   // cap on IR statements per path
	Seed         int64 // RNG seed for the random frontier choice
	SkipMinimize bool  // keep raw solver models (ablation)
	// Workers bounds the pool exploring independent subtrees in parallel
	// (≤ 1 means a pool of one). The explored path set, its order, and all
	// deterministic statistics are byte-identical for every worker count:
	// the split/merge algorithm is the same, only the pool size changes.
	Workers int
	// Guide steers exploration toward the concrete path a given variable
	// assignment would take: at every symbolic branch the direction the
	// assignment satisfies is tried first (instead of the random frontier
	// choice), so a small MaxPaths explores the immediate neighborhood of
	// that path. Used by hybrid campaigns to hand fuzzer-found inputs back
	// to symex as path seeds. Deterministic: a pure function of the
	// assignment, never of scheduling.
	Guide map[string]uint64
	// NoSolverBatch disables the batched solver front-end (assumption-trail
	// reuse across the sibling queries of one task). The negative sense
	// keeps the zero-value Options on the fast default.
	NoSolverBatch bool
	// NoSubsume disables the model-subsumption fast path between sibling
	// path-condition queries (a query whose assumptions all hold under the
	// last Sat model is answered Sat without solving). Verdicts — and
	// hence the explored path set — are identical either way; only the
	// emitted models move, which SerialVersion 4 accounts for. The
	// negative sense keeps the zero-value Options on the fast default.
	NoSubsume bool
	// NoReduceDB freezes the solver's learned-clause database (disables
	// the periodic LBD-based reduceDB pass).
	NoReduceDB bool
	// RestartBase overrides the solver's Luby restart unit (0 = default).
	RestartBase int
	// Portfolio races that many deterministically-seeded solver clones
	// against the primary on budgeted queries (0 = off). Answers are a pure
	// function of the query sequence; only wall-clock changes.
	Portfolio int
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{MaxPaths: 8192, MaxSteps: 1 << 16, Seed: 1}
}

// PathResult is one explored execution path: its outcome, path condition,
// and a (minimized) satisfying assignment for the symbolic variables.
type PathResult struct {
	Outcome ir.Outcome
	Cond    []*expr.Expr
	Model   map[string]uint64
	Final   *SymState
	Steps   int
	Aborted bool // hit the per-path step cap
}

// Stats aggregates exploration effort.
type Stats struct {
	Paths             int
	AbortedPaths      int
	SolverQueries     int64
	SolverMemoHits    int64 // queries answered by the solver's assumption memo
	SolverSubsumeHits int64 // queries answered by the model-subsumption fast path
	TreeNodes         int64
	Exhausted         bool // every feasible path was explored
	MinimizedBits     int64
	FlippedBits       int64
	// StmtsCovered / StmtsTotal measure static IR statement coverage across
	// all explored paths — the paper's observation that exhaustive path
	// exploration yields very high static coverage of the per-instruction
	// code (modulo statements guarding other operating modes).
	StmtsCovered int
	StmtsTotal   int
}

// Coverage returns the fraction of IR statements executed on some path.
func (s Stats) Coverage() float64 {
	if s.StmtsTotal == 0 {
		return 0
	}
	return float64(s.StmtsCovered) / float64(s.StmtsTotal)
}

// Engine explores one IR program over a symbolic initial state.
type Engine struct {
	bv   *solver.BV
	tree *DecisionTree
	rng  *rand.Rand
	opts Options

	initial  *SymState
	sideCond []*expr.Expr // constraints always in force (Fig. 3 pinned bits)
	sideLits []solver.Lit

	// per-path state
	pathCond []*expr.Expr
	pathLits []solver.Lit
	walker   *walker
	st       *SymState
	steps    int
	curDirs  []int // branch directions taken on the current path
	curForks int   // genuine forks among them (sibling not known infeasible)

	// split exploration (see parallel.go)
	splitDepth int     // > 0: delegate subtrees below this many forks as tasks
	forced     []int   // direction prefix this engine replays before exploring
	tasks      [][]int // subtree prefixes recorded at the split depth
	collected  []keyedPath
	subs       []*Engine // task engines, canonical order, after Explore
	explored   bool      // Explore ran; exhausted holds the global verdict
	exhausted  bool

	stmtHits []bool // statement coverage across all paths
	stats    Stats
}

// NewEngine prepares exploration of paths from the given initial state.
// sideConds are constraints that always hold (e.g. concrete-bit pins).
func NewEngine(initial *SymState, sideConds []*expr.Expr, opts Options) *Engine {
	en := &Engine{
		bv:      solver.NewBV(),
		tree:    NewDecisionTree(),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		opts:    opts,
		initial: initial,
	}
	en.bv.Reuse = !opts.NoSolverBatch
	en.bv.Portfolio = opts.Portfolio
	en.bv.Subsume = !opts.NoSubsume
	en.bv.NoReduce = opts.NoReduceDB
	en.bv.RestartBase = int64(opts.RestartBase)
	for _, c := range sideConds {
		if c == nil {
			continue
		}
		en.sideCond = append(en.sideCond, c)
		en.sideLits = append(en.sideLits, en.bv.LitFor(c))
	}
	return en
}

// Stats returns exploration statistics so far, aggregated over any
// subtree task engines.
func (en *Engine) Stats() Stats {
	s := en.stats
	s.SolverQueries = en.bv.Queries
	s.SolverMemoHits = en.bv.MemoHits
	s.SolverSubsumeHits = en.bv.SubsumeHits
	s.TreeNodes = en.tree.Nodes
	s.Exhausted = en.tree.FullyExplored()
	for _, sub := range en.subs {
		s.SolverQueries += sub.bv.Queries
		s.SolverMemoHits += sub.bv.MemoHits
		s.SolverSubsumeHits += sub.bv.SubsumeHits
		s.TreeNodes += sub.tree.Nodes
		s.MinimizedBits += sub.stats.MinimizedBits
		s.FlippedBits += sub.stats.FlippedBits
	}
	if en.explored {
		s.Exhausted = en.exhausted
	}
	s.StmtsTotal = len(en.stmtHits)
	for _, hit := range en.stmtHits {
		if hit {
			s.StmtsCovered++
		}
	}
	return s
}

// assumptions returns the current solver assumption set.
func (en *Engine) assumptions(extra ...solver.Lit) []solver.Lit {
	out := make([]solver.Lit, 0, len(en.sideLits)+len(en.pathLits)+len(extra))
	out = append(out, en.sideLits...)
	out = append(out, en.pathLits...)
	out = append(out, extra...)
	return out
}

// errDeadEnd signals an exhausted subtree reached mid-path.
var errDeadEnd = fmt.Errorf("symex: dead end")

// errStepCap signals the per-path step budget was hit.
var errStepCap = fmt.Errorf("symex: step cap")

// errSplit signals the path crossed the split depth; the subtree has been
// recorded as a task for the parallel phase and closed in this tree.
var errSplit = fmt.Errorf("symex: split frontier")

// branch decides a symbolic two-way branch through the decision tree,
// returning the direction taken.
func (en *Engine) branch(cond *expr.Expr) (bool, error) {
	w := en.walker
	condLit := en.bv.LitFor(cond)
	litFor := func(dir int) solver.Lit {
		if dir == 1 {
			return condLit
		}
		return condLit.Neg()
	}
	take := func(dir int) {
		en.pathLits = append(en.pathLits, litFor(dir))
		if dir == 1 {
			en.pathCond = append(en.pathCond, cond)
		} else {
			en.pathCond = append(en.pathCond, expr.Not(cond))
		}
		w.descend(dir)
		en.curDirs = append(en.curDirs, dir)
	}
	// Forced-prefix replay: a task engine retraces its subtree's spine
	// without consuming randomness or solver queries. The sibling of each
	// spine edge is closed ("another task's responsibility"), so this
	// tree's FullyExplored means the delegated subtree is exhausted.
	if n := len(en.curDirs); n < len(en.forced) {
		dir := en.forced[n]
		if w.known(dir) == feasUnknown {
			w.setFeasibility(dir, true)
			w.markSkipped(1 - dir)
		}
		take(dir)
		return dir == 1, nil
	}
	// Frontier split: delegate the subtree as a task once the path has
	// crossed splitDepth genuine forks. Depth in raw branch decisions does
	// not work here — instruction programs open with long one-sided runs
	// (side conditions, summary guards), so a raw-depth frontier degenerates
	// to one or two tasks and the parallel phase has nothing to schedule.
	if en.splitDepth > 0 && en.curForks >= en.splitDepth {
		en.tasks = append(en.tasks, append([]int(nil), en.curDirs...))
		w.abandon()
		return false, errSplit
	}
	dirs := w.candidates()
	if en.opts.Guide != nil {
		// Try the direction the guiding assignment takes first; its sibling
		// only once the guided side closes.
		want := int(expr.Eval(cond, en.opts.Guide) & 1)
		if len(dirs) == 2 && dirs[0] != want {
			dirs[0], dirs[1] = dirs[1], dirs[0]
		}
	} else {
		shuffle(en.rng, dirs)
	}
	for _, dir := range dirs {
		if w.known(dir) == feasUnknown {
			ok := en.bv.CheckLits(en.assumptions(litFor(dir))) == solver.Sat
			w.setFeasibility(dir, ok)
			if !ok {
				continue
			}
		}
		// A fork is a node whose other side is not known infeasible. The
		// count can only shrink as verdicts arrive (unknown -> infeasible),
		// so later paths split at the same node or deeper, never at an
		// ancestor of an already-delegated subtree — prefixes stay
		// prefix-free.
		if w.known(1-dir) != feasNo {
			en.curForks++
		}
		take(dir)
		return dir == 1, nil
	}
	w.deadEnd()
	return false, errDeadEnd
}

// pickConcrete chooses one feasible concrete value for a term and pins it
// on the path condition — the on-the-fly concretization used for memory and
// table indexes ("all 2³² locations are equivalent").
//
// The choice is canonical: a pure function of the path condition and the
// baseline, never of solver internals such as the last model. That is what
// lets a parallel task replay a path prefix in a fresh solver and land on
// the same concrete pins — and it biases pins toward the baseline, which
// helps minimization.
func (en *Engine) pickConcrete(e *expr.Expr) (uint64, error) {
	if e.IsConst() {
		return e.Val, nil
	}
	pinTo := func(val uint64) {
		pin := expr.Eq(e, expr.Const(e.Width, val))
		en.pathCond = append(en.pathCond, pin)
		en.pathLits = append(en.pathLits, en.bv.LitFor(pin))
	}
	// Fast path: the baseline value is usually feasible.
	baseVal := expr.Eval(e, en.st.Baseline)
	basePin := en.bv.LitFor(expr.Eq(e, expr.Const(e.Width, baseVal)))
	if en.bv.CheckLits(en.assumptions(basePin)) == solver.Sat {
		pinTo(baseVal)
		return baseVal, nil
	}
	if en.bv.CheckLits(en.assumptions()) != solver.Sat {
		return 0, errDeadEnd // cannot happen on a consistent path
	}
	// Fix bits MSB-first, keeping each baseline bit unless the solver
	// forces its complement.
	var val uint64
	picked := en.assumptions()
	for i := int(e.Width) - 1; i >= 0; i-- {
		bit := expr.Extract(e, uint8(i), 1)
		want := baseVal >> uint(i) & 1
		lit := en.bv.LitFor(expr.Eq(bit, expr.Const(1, want)))
		if en.bv.CheckLits(append(picked, lit)) != solver.Sat {
			want ^= 1
			lit = en.bv.LitFor(expr.Eq(bit, expr.Const(1, want)))
		}
		picked = append(picked, lit)
		val |= want << uint(i)
	}
	pinTo(val)
	return val, nil
}

// ConcretizeEnum resolves a word-sized term to a concrete value through the
// decision tree, bit by bit from the most significant end (Section 3.1.2's
// extension): re-executions eventually enumerate every feasible value.
func (en *Engine) ConcretizeEnum(e *expr.Expr) (uint64, error) {
	if e.IsConst() {
		return e.Val, nil
	}
	var val uint64
	for i := int(e.Width) - 1; i >= 0; i-- {
		bit := expr.Extract(e, uint8(i), 1)
		if bit.IsConst() {
			val |= bit.Val << uint(i)
			continue
		}
		taken, err := en.branch(expr.Eq(bit, expr.One))
		if err != nil {
			return 0, err
		}
		if taken {
			val |= 1 << uint(i)
		}
	}
	return val, nil
}

// runOnce executes one path of the program symbolically.
func (en *Engine) runOnce(prog *ir.Program) (*PathResult, error) {
	en.pathCond = en.pathCond[:0]
	en.pathLits = en.pathLits[:0]
	en.curDirs = en.curDirs[:0]
	en.curForks = 0
	en.walker = en.tree.walk()
	en.st = en.initial.Clone()
	en.steps = 0
	if en.stmtHits == nil {
		en.stmtHits = make([]bool, len(prog.Stmts))
	}

	temps := make([]*expr.Expr, prog.NumTemps())
	val := func(o ir.Operand) *expr.Expr {
		if o.IsConst {
			return expr.Const(o.Width, o.Val)
		}
		return temps[o.Temp]
	}

	var outcome ir.Outcome
	aborted := false
	pc := 0
loop:
	for {
		if en.steps >= en.opts.MaxSteps {
			aborted = true
			en.walker.abandon()
			break
		}
		en.steps++
		en.stmtHits[pc] = true
		s := &prog.Stmts[pc]
		switch s.Kind {
		case ir.KAssign:
			temps[s.Dst] = applyOp(s, val)
		case ir.KMove:
			temps[s.Dst] = val(s.Args[0])
		case ir.KGet:
			temps[s.Dst] = en.st.Get(s.Loc)
		case ir.KSet:
			en.st.Set(s.Loc, val(s.Args[0]))
		case ir.KLoad:
			addr, err := en.pickConcrete(val(s.Args[0]))
			if err != nil {
				return nil, err
			}
			temps[s.Dst] = en.loadBytes(uint32(addr), s.Width)
		case ir.KStore:
			addr, err := en.pickConcrete(val(s.Args[0]))
			if err != nil {
				return nil, err
			}
			en.storeBytes(uint32(addr), val(s.Args[1]), s.Width)
		case ir.KCJump:
			c := val(s.Args[0])
			if c.IsConst() {
				if c.Val == 1 {
					pc = s.Target
					continue
				}
			} else {
				taken, err := en.branch(c)
				if err != nil {
					return nil, err
				}
				if taken {
					pc = s.Target
					continue
				}
			}
		case ir.KJump:
			pc = s.Target
			continue
		case ir.KRaise:
			outcome = ir.Outcome{Kind: ir.OutRaise, Vector: s.Vector,
				HasErr: s.HasErr, Soft: s.Soft}
			if s.HasErr {
				ec, err := en.pickConcrete(val(s.Args[0]))
				if err != nil {
					return nil, err
				}
				outcome.ErrCode = uint32(ec)
			}
			en.walker.complete()
			break loop
		case ir.KEnd:
			outcome = ir.Outcome{Kind: ir.OutEnd}
			en.walker.complete()
			break loop
		case ir.KHalt:
			outcome = ir.Outcome{Kind: ir.OutHalt}
			en.walker.complete()
			break loop
		}
		pc++
	}

	// Solve for a witness of this path and minimize it toward the baseline.
	if en.bv.CheckLits(en.assumptions()) != solver.Sat {
		return nil, fmt.Errorf("symex: completed path is unsat (engine bug)")
	}
	model := en.fullModel()
	if !en.opts.SkipMinimize {
		en.minimize(model)
	}
	return &PathResult{
		Outcome: outcome,
		Cond:    append([]*expr.Expr(nil), en.pathCond...),
		Model:   model,
		Final:   en.st,
		Steps:   en.steps,
		Aborted: aborted,
	}, nil
}

// fullModel combines the solver model with baseline values for variables
// the CNF never saw (they are unconstrained).
func (en *Engine) fullModel() map[string]uint64 {
	m := en.bv.Model()
	out := make(map[string]uint64, len(en.st.Vars))
	for name := range en.st.Vars {
		if v, ok := m[name]; ok {
			out[name] = v
		} else {
			out[name] = en.st.Baseline[name]
		}
	}
	return out
}

// loadBytes assembles a little-endian value from symbolic memory.
func (en *Engine) loadBytes(addr uint32, n uint8) *expr.Expr {
	v := en.st.LoadByte(addr)
	for i := uint8(1); i < n; i++ {
		v = expr.Concat(en.st.LoadByte(addr+uint32(i)), v)
	}
	return v
}

func (en *Engine) storeBytes(addr uint32, v *expr.Expr, n uint8) {
	for i := uint8(0); i < n; i++ {
		en.st.StoreByte(addr+uint32(i), expr.Extract(v, i*8, 8))
	}
}

// applyOp mirrors the IR operator set onto expr constructors.
func applyOp(s *ir.Stmt, val func(ir.Operand) *expr.Expr) *expr.Expr {
	a := val(s.Args[0])
	switch s.EOp {
	case expr.OpNot:
		return expr.Not(a)
	case expr.OpNeg:
		return expr.Neg(a)
	case expr.OpZExt:
		return expr.ZExt(a, s.Width)
	case expr.OpSExt:
		return expr.SExt(a, s.Width)
	case expr.OpExtract:
		return expr.Extract(a, s.Lo, s.Width)
	case expr.OpIte:
		return expr.Ite(a, val(s.Args[1]), val(s.Args[2]))
	}
	b := val(s.Args[1])
	switch s.EOp {
	case expr.OpAnd:
		return expr.And(a, b)
	case expr.OpOr:
		return expr.Or(a, b)
	case expr.OpXor:
		return expr.Xor(a, b)
	case expr.OpAdd:
		return expr.Add(a, b)
	case expr.OpSub:
		return expr.Sub(a, b)
	case expr.OpMul:
		return expr.Mul(a, b)
	case expr.OpUDiv:
		return expr.UDiv(a, b)
	case expr.OpURem:
		return expr.URem(a, b)
	case expr.OpShl:
		return expr.Shl(a, b)
	case expr.OpLShr:
		return expr.LShr(a, b)
	case expr.OpAShr:
		return expr.AShr(a, b)
	case expr.OpEq:
		return expr.Eq(a, b)
	case expr.OpUlt:
		return expr.Ult(a, b)
	case expr.OpSlt:
		return expr.Slt(a, b)
	case expr.OpConcat:
		return expr.Concat(a, b)
	}
	panic("symex: unknown op " + s.EOp.String())
}
