package symex

import (
	"os"
	"testing"

	"pokeemu/internal/solver"
)

// TestMain turns on the solver's debug-build validation gate: every Sat
// verdict produced while exploring under test is re-checked against the
// full clause set, and every reduceDB pass re-checks watcher integrity.
func TestMain(m *testing.M) {
	solver.Validate = true
	os.Exit(m.Run())
}
