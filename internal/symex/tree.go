package symex

import "math/rand"

// DecisionTree records the symbolic branches taken on every execution path
// (Section 3.1.2). Each node is one occurrence of a symbolic branch; each
// edge records whether that direction has been checked for feasibility and
// whether the subtree below it is fully explored. The tree both prevents
// re-exploring a path and saves decision-procedure calls for directions
// whose feasibility is already known.
type DecisionTree struct {
	root *treeNode
	// Nodes counts allocated nodes (diagnostics).
	Nodes int64
}

type feas int8

const (
	feasUnknown feas = iota
	feasYes
	feasNo
)

type treeNode struct {
	kids [2]*treeNode
	feas [2]feas
	done [2]bool
}

// NewDecisionTree returns an empty tree.
func NewDecisionTree() *DecisionTree {
	return &DecisionTree{root: &treeNode{}, Nodes: 1}
}

// walker tracks one execution's position in the tree.
type walker struct {
	t    *DecisionTree
	cur  *treeNode
	path []edge // edges taken this run, for completion propagation
}

type edge struct {
	n   *treeNode
	dir int
}

// walk starts a new traversal from the root.
func (t *DecisionTree) walk() *walker {
	return &walker{t: t, cur: t.root}
}

// FullyExplored reports whether no unexplored feasible paths remain.
func (t *DecisionTree) FullyExplored() bool {
	r := t.root
	return r.edgeClosed(0) && r.edgeClosed(1)
}

// edgeClosed reports that nothing remains to explore through this edge.
func (n *treeNode) edgeClosed(dir int) bool {
	return n.done[dir] || n.feas[dir] == feasNo
}

// candidates returns the directions still worth trying at the walker's
// position, preferring a deterministic slice (0, 1) that the caller
// shuffles.
func (w *walker) candidates() []int {
	var out []int
	for dir := 0; dir < 2; dir++ {
		if !w.cur.edgeClosed(dir) {
			out = append(out, dir)
		}
	}
	return out
}

// setFeasibility records a feasibility verdict for a direction.
func (w *walker) setFeasibility(dir int, ok bool) {
	if ok {
		w.cur.feas[dir] = feasYes
	} else {
		w.cur.feas[dir] = feasNo
	}
}

// known returns the recorded feasibility of a direction.
func (w *walker) known(dir int) feas { return w.cur.feas[dir] }

// markSkipped closes a direction that is another engine's responsibility
// (the sibling of a forced-prefix edge), so FullyExplored of a task's
// sub-tree means "this task's subtree is exhausted", not the whole space.
func (w *walker) markSkipped(dir int) { w.cur.done[dir] = true }

// descend commits to a direction and moves to (creating if needed) the
// child node.
func (w *walker) descend(dir int) {
	w.path = append(w.path, edge{w.cur, dir})
	if w.cur.kids[dir] == nil {
		w.cur.kids[dir] = &treeNode{}
		w.t.Nodes++
	}
	w.cur = w.cur.kids[dir]
}

// complete marks the just-finished path fully explored and propagates the
// "done" bit up while both directions of an ancestor are closed.
func (w *walker) complete() {
	// Mark the leaf: both directions of the final node are vacuously done
	// (no branch occurred below the last edge).
	for i := len(w.path) - 1; i >= 0; i-- {
		e := w.path[i]
		child := e.n.kids[e.dir]
		if i == len(w.path)-1 {
			e.n.done[e.dir] = true
		} else if child.edgeClosed(0) && child.edgeClosed(1) {
			e.n.done[e.dir] = true
		}
		if !e.n.edgeClosed(e.dir) {
			break // nothing more propagates
		}
	}
	if len(w.path) == 0 {
		// A path with no symbolic branches: the whole tree is explored.
		w.t.root.done[0], w.t.root.done[1] = true, true
	}
}

// abandon marks the current path as terminated without full exploration
// (path-length cap): treated as explored so the search moves on.
func (w *walker) abandon() { w.complete() }

// deadEnd handles an exhausted subtree discovered mid-path (both remaining
// directions infeasible or done): closure propagates up so the search does
// not revisit this region.
func (w *walker) deadEnd() {
	for i := len(w.path) - 1; i >= 0; i-- {
		e := w.path[i]
		child := e.n.kids[e.dir]
		if child != nil && child.edgeClosed(0) && child.edgeClosed(1) {
			e.n.done[e.dir] = true
		}
		if !e.n.edgeClosed(e.dir) {
			break
		}
	}
	if len(w.path) == 0 {
		w.t.root.done[0], w.t.root.done[1] = true, true
	}
}

// shuffle permutes candidate directions using the engine's RNG, giving the
// random frontier choice the paper describes.
func shuffle(r *rand.Rand, dirs []int) {
	if len(dirs) == 2 && r.Intn(2) == 1 {
		dirs[0], dirs[1] = dirs[1], dirs[0]
	}
}
