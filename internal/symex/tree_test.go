package symex

import (
	"math/rand"
	"testing"
)

// simulate explores a synthetic binary program of fixed depth where
// feasibility is given by an oracle; it returns the distinct leaves visited.
func simulate(t *testing.T, depth int, feasible func(path []int) bool) map[string]int {
	t.Helper()
	tree := NewDecisionTree()
	r := rand.New(rand.NewSource(2))
	leaves := map[string]int{}
	for iter := 0; iter < 1<<uint(depth+4) && !tree.FullyExplored(); iter++ {
		w := tree.walk()
		var path []int
		dead := false
		for level := 0; level < depth; level++ {
			dirs := w.candidates()
			shuffle(r, dirs)
			chosen := -1
			for _, dir := range dirs {
				if w.known(dir) == feasUnknown {
					ok := feasible(append(path, dir))
					w.setFeasibility(dir, ok)
					if !ok {
						continue
					}
				}
				chosen = dir
				break
			}
			if chosen < 0 {
				w.deadEnd()
				dead = true
				break
			}
			path = append(path, chosen)
			w.descend(chosen)
		}
		if dead {
			continue
		}
		key := ""
		for _, d := range path {
			key += string(rune('0' + d))
		}
		leaves[key]++
		w.complete()
	}
	return leaves
}

// TestTreeVisitsEveryFeasiblePathOnce: with everything feasible, a depth-n
// exploration visits each of the 2^n leaves exactly once and then reports
// full exploration.
func TestTreeVisitsEveryFeasiblePathOnce(t *testing.T) {
	leaves := simulate(t, 5, func([]int) bool { return true })
	if len(leaves) != 32 {
		t.Fatalf("visited %d leaves, want 32", len(leaves))
	}
	for k, n := range leaves {
		if n != 1 {
			t.Errorf("leaf %s visited %d times", k, n)
		}
	}
}

// TestTreePrunesInfeasibleSubtrees: forbidding any path through "true at
// level 0" halves the leaf set.
func TestTreePrunesInfeasibleSubtrees(t *testing.T) {
	leaves := simulate(t, 4, func(path []int) bool {
		return path[0] == 0
	})
	if len(leaves) != 8 {
		t.Fatalf("visited %d leaves, want 8", len(leaves))
	}
	for k := range leaves {
		if k[0] != '0' {
			t.Errorf("infeasible leaf %s visited", k)
		}
	}
}

// TestTreeFeasibilityQueriedOnce: the oracle is consulted at most once per
// (node, direction) — the decision tree's solver-call-saving property.
func TestTreeFeasibilityQueriedOnce(t *testing.T) {
	queries := map[string]int{}
	simulate(t, 5, func(path []int) bool {
		key := ""
		for _, d := range path {
			key += string(rune('0' + d))
		}
		queries[key]++
		return true
	})
	for k, n := range queries {
		if n != 1 {
			t.Errorf("feasibility of %s queried %d times", k, n)
		}
	}
}

// TestTreeDeadEndClosure: a subtree that turns out fully infeasible midway
// propagates closure so exploration terminates.
func TestTreeDeadEndClosure(t *testing.T) {
	// Level 1 is always infeasible under prefix "1": walkers entering "1"
	// hit a dead end; the tree must still become fully explored.
	leaves := simulate(t, 3, func(path []int) bool {
		if len(path) >= 2 && path[0] == 1 {
			return false
		}
		return true
	})
	// Feasible leaves: all under "0" (4 of them).
	if len(leaves) != 4 {
		t.Fatalf("visited %d leaves, want 4: %v", len(leaves), leaves)
	}
}

// TestTreeNodeAccounting: node count grows with distinct branches only.
func TestTreeNodeAccounting(t *testing.T) {
	tree := NewDecisionTree()
	w := tree.walk()
	w.setFeasibility(0, true)
	w.descend(0)
	w.complete()
	if tree.Nodes != 2 {
		t.Errorf("nodes = %d, want 2", tree.Nodes)
	}
	w2 := tree.walk()
	if len(w2.candidates()) != 1 {
		t.Errorf("candidates = %v, want the unexplored direction only", w2.candidates())
	}
}
