package symex

import (
	"sort"

	"pokeemu/internal/expr"
)

// minimize implements the state-difference minimization of Section 3.4: a
// greedy pass over every bit of the assignment that differs from the
// baseline state, resetting it to the baseline value whenever the full path
// condition still evaluates to true under the modified (total) assignment.
// Because the assignment is total, "still satisfies" is a concrete
// evaluation — no decision-procedure call is needed, exactly the simple
// evaluation-based approach the paper settled on.
//
// Two facts keep the inner loop cheap without changing a single decision:
// every condition holds before each tested flip, so only conditions that
// mention the flipped variable can become false; and the conditions are
// hash-consed DAGs, so evaluation memoized on node identity visits each
// shared subterm once instead of once per path.
func (en *Engine) minimize(model map[string]uint64) {
	conds := make([]*expr.Expr, 0, len(en.sideCond)+len(en.pathCond))
	conds = append(conds, en.sideCond...)
	conds = append(conds, en.pathCond...)

	// deps[name] lists the conditions whose truth can depend on name.
	deps := make(map[string][]int)
	visited := make(map[*expr.Expr]bool)
	var walk func(e *expr.Expr, i int)
	walk = func(e *expr.Expr, i int) {
		if visited[e] {
			return
		}
		visited[e] = true
		if e.Op == expr.OpVar {
			deps[e.Name] = append(deps[e.Name], i)
			return
		}
		for _, kid := range e.Kids {
			walk(kid, i)
		}
	}
	for i, c := range conds {
		clear(visited)
		walk(c, i)
	}

	memo := make(map[*expr.Expr]uint64)
	satisfied := func(name string) bool {
		clear(memo)
		for _, i := range deps[name] {
			if expr.EvalMemo(conds[i], model, memo) != 1 {
				return false
			}
		}
		return true
	}

	// The greedy pass is order-dependent (resetting one variable's bit can
	// make another's load-bearing), so visit variables in sorted name order:
	// the minimized witness must be a pure function of the path, never of
	// map iteration order, or campaign reports would differ run to run.
	names := make([]string, 0, len(en.st.Vars))
	for name := range en.st.Vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := en.st.Vars[name]
		base := en.st.Baseline[name]
		cur, ok := model[name]
		if !ok || cur == base {
			continue
		}
		diffBits := (cur ^ base) & expr.Mask(w)
		for bit := uint8(0); bit < w; bit++ {
			m := uint64(1) << bit
			if diffBits&m == 0 {
				continue
			}
			model[name] = model[name]&^m | base&m
			if satisfied(name) {
				en.stats.MinimizedBits++
			} else {
				// Revert: this bit is load-bearing for the path.
				model[name] ^= m
				en.stats.FlippedBits++
			}
		}
	}
}

// HammingToBaseline counts the assignment bits that differ from the
// baseline — the metric the minimization benchmark (E7) reports.
func HammingToBaseline(model, baseline map[string]uint64, widths map[string]uint8) int {
	n := 0
	for name, v := range model {
		d := (v ^ baseline[name]) & expr.Mask(widths[name])
		for d != 0 {
			n += int(d & 1)
			d >>= 1
		}
	}
	return n
}
