// Package symex is the symbolic execution engine (the FuzzBALL analogue):
// an online executor for IR programs in which machine-state locations and
// memory hold bit-vector terms instead of concrete values. It contributes
// the decision tree that makes every explored path distinct (Section 3.1.2),
// feasibility checking through the bit-vector solver, on-the-fly index
// concretization for large tables (Section 3.3.2), word-size concretization
// bit-by-bit MSB-first, path summaries for common multi-path computations,
// and greedy state-difference minimization against a baseline (Section 3.4).
package symex

import (
	"fmt"

	"pokeemu/internal/expr"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// SymState is a symbolic machine state layered over a concrete baseline:
// locations and memory bytes read before being written yield either their
// concrete baseline value or, where the exploration marked them symbolic,
// a term.
type SymState struct {
	base *machine.Machine
	locs map[x86.Loc]*expr.Expr
	mem  *SymMemory

	// Vars records every symbolic variable introduced, with its width.
	Vars map[string]uint8
	// Baseline records the concrete baseline value of each variable, used
	// by minimization.
	Baseline map[string]uint64
	// VarLoc and VarMem map variable names back to the machine state they
	// represent, so the test-program generator can lift an assignment into
	// state initializers.
	VarLoc map[string]x86.Loc
	VarMem map[string]uint32
}

// NewSymState wraps a concrete baseline machine.
func NewSymState(base *machine.Machine) *SymState {
	s := &SymState{
		base:     base,
		locs:     make(map[x86.Loc]*expr.Expr),
		Vars:     make(map[string]uint8),
		Baseline: make(map[string]uint64),
		VarLoc:   make(map[string]x86.Loc),
		VarMem:   make(map[string]uint32),
	}
	s.mem = newSymMemory(base.Mem, s)
	return s
}

// Clone returns an independent copy sharing the baseline (used to re-run
// the program on a fresh state for each explored path).
func (s *SymState) Clone() *SymState {
	c := &SymState{
		base:     s.base,
		locs:     make(map[x86.Loc]*expr.Expr, len(s.locs)),
		Vars:     s.Vars,     // shared: variable identities persist across paths
		Baseline: s.Baseline, // shared
		VarLoc:   s.VarLoc,
		VarMem:   s.VarMem,
	}
	for k, v := range s.locs {
		c.locs[k] = v
	}
	c.mem = s.mem.clone(c)
	return c
}

// fork returns a deep copy for a parallel exploration task. Unlike Clone,
// the variable registries (Vars/Baseline/VarLoc/VarMem) are copied rather
// than shared, so the lazy creation of memory variables in SymMemory.read
// cannot race between tasks running on different goroutines. The explore
// orchestrator merges newly created names back into the root state after
// every task has joined.
func (s *SymState) fork() *SymState {
	c := &SymState{
		base:     s.base,
		locs:     make(map[x86.Loc]*expr.Expr, len(s.locs)),
		Vars:     make(map[string]uint8, len(s.Vars)),
		Baseline: make(map[string]uint64, len(s.Baseline)),
		VarLoc:   make(map[string]x86.Loc, len(s.VarLoc)),
		VarMem:   make(map[string]uint32, len(s.VarMem)),
	}
	for k, v := range s.locs {
		c.locs[k] = v
	}
	for k, v := range s.Vars {
		c.Vars[k] = v
	}
	for k, v := range s.Baseline {
		c.Baseline[k] = v
	}
	for k, v := range s.VarLoc {
		c.VarLoc[k] = v
	}
	for k, v := range s.VarMem {
		c.VarMem[k] = v
	}
	c.mem = s.mem.clone(c)
	return c
}

// MarkLocSymbolic replaces the location's value with a fresh variable and
// records its baseline value. The mask selects which bits are symbolic;
// concrete mask bits are pinned to the baseline via the returned side
// constraint (nil when the whole location is symbolic). This is exactly
// the Figure 3 mechanism: whole-location variables with side constraints
// fixing the concrete bits.
func (s *SymState) MarkLocSymbolic(loc x86.Loc, mask uint64) *expr.Expr {
	w := loc.Width()
	name := "st_" + loc.String()
	v := expr.Var(w, name)
	baseVal := s.base.Get(loc)
	s.Vars[name] = w
	s.Baseline[name] = baseVal
	s.VarLoc[name] = loc
	s.locs[loc] = v
	mask &= expr.Mask(w)
	if mask == expr.Mask(w) {
		return nil
	}
	fixed := ^mask & expr.Mask(w)
	return expr.Eq(
		expr.And(v, expr.Const(w, fixed)),
		expr.Const(w, baseVal&fixed),
	)
}

// MarkMemSymbolic replaces one physical memory byte with a fresh variable.
func (s *SymState) MarkMemSymbolic(addr uint32) {
	name := fmt.Sprintf("gm_%06x", addr&machine.PhysMask)
	v := expr.Var(8, name)
	s.Vars[name] = 8
	s.Baseline[name] = uint64(s.base.Mem.Read8(addr))
	s.VarMem[name] = addr & machine.PhysMask
	s.mem.write(addr, v)
}

// Get reads a location: symbolic if marked or written, else the concrete
// baseline value.
func (s *SymState) Get(loc x86.Loc) *expr.Expr {
	if e, ok := s.locs[loc]; ok {
		return e
	}
	return expr.Const(loc.Width(), s.base.Get(loc))
}

// Set writes a location.
func (s *SymState) Set(loc x86.Loc, e *expr.Expr) {
	if e.Width != loc.Width() {
		panic("symex: set width mismatch")
	}
	s.locs[loc] = e
}

// LoadByte reads one physical memory byte as a term.
func (s *SymState) LoadByte(addr uint32) *expr.Expr { return s.mem.read(addr) }

// StoreByte writes one physical memory byte.
func (s *SymState) StoreByte(addr uint32, e *expr.Expr) {
	if e.Width != 8 {
		panic("symex: byte store width mismatch")
	}
	s.mem.write(addr, e)
}

// TouchedLocs returns the locations written (or marked) on this path.
func (s *SymState) TouchedLocs() map[x86.Loc]*expr.Expr { return s.locs }

// TouchedMem returns the memory bytes written on this path.
func (s *SymState) TouchedMem() map[uint32]*expr.Expr { return s.mem.overlay }

// SymMemory is the two-level symbolic memory: an overlay of terms above the
// concrete baseline image, with fresh variables created on demand for bytes
// the image never populated (the paper's "all unused bytes of physical
// memory are symbolic", created lazily).
type SymMemory struct {
	overlay  map[uint32]*expr.Expr
	base     *machine.Memory
	popPages map[uint32]bool // pages the baseline image populated
	owner    *SymState
}

func newSymMemory(base *machine.Memory, owner *SymState) *SymMemory {
	return &SymMemory{
		overlay:  make(map[uint32]*expr.Expr),
		base:     base,
		popPages: base.Touched(nil),
		owner:    owner,
	}
}

func (m *SymMemory) clone(owner *SymState) *SymMemory {
	c := &SymMemory{
		overlay:  make(map[uint32]*expr.Expr, len(m.overlay)),
		base:     m.base,
		popPages: m.popPages,
		owner:    owner,
	}
	for k, v := range m.overlay {
		c.overlay[k] = v
	}
	return c
}

func (m *SymMemory) read(addr uint32) *expr.Expr {
	addr &= machine.PhysMask
	if e, ok := m.overlay[addr]; ok {
		return e
	}
	if m.popPages[addr/machine.PageSize] {
		return expr.Const(8, uint64(m.base.Read8(addr)))
	}
	// Unused physical memory: symbolic on first touch.
	name := fmt.Sprintf("gm_%06x", addr)
	v := expr.Var(8, name)
	m.owner.Vars[name] = 8
	m.owner.Baseline[name] = 0
	m.owner.VarMem[name] = addr
	m.overlay[addr] = v
	return v
}

func (m *SymMemory) write(addr uint32, e *expr.Expr) {
	m.overlay[addr&machine.PhysMask] = e
}
