package symex

import (
	"fmt"

	"pokeemu/internal/expr"
	"pokeemu/internal/x86"
)

// SerialVersion identifies the on-disk encoding of exploration artifacts
// (summary records and, transitively, the expression node table). Any change
// to the expr term language, the summary construction, or the record layout
// below must bump it so persistent corpora are invalidated rather than
// misread. Version 2: canonical concretization pins, canonical path order,
// and solver query memoization changed which models exploration emits.
// Version 3: the batched solver front-end (incremental solving with shared
// assumption prefixes) became the default, changing which models exploration
// emits on budget-free queries.
// Version 4: the SAT core's learned-clause reduction (LBD reduceDB) and the
// model-subsumption fast path became the defaults; both answer the same
// verdicts but change which satisfying model a Sat query returns, so
// exploration emits different (equally valid) models.
const SerialVersion = 4

// SummaryRecord is the serializable form of a Summary: the expression DAG
// flattened into a node table (shared subterms appear once and are
// referenced by index), the per-output root indexes, and the success-
// condition root. It is plain data, suitable for JSON encoding in a
// persistent corpus.
type SummaryRecord struct {
	Version int             `json:"version"`
	Paths   int             `json:"paths"`
	Success int32           `json:"success"`
	Outputs []SummaryOutput `json:"outputs"`
	Nodes   []ExprNode      `json:"nodes"`
}

// SummaryOutput names one output location and its term's root node.
type SummaryOutput struct {
	Kind  uint8 `json:"kind"`  // x86.LocKind
	Index uint8 `json:"index"` // location index within the kind
	Root  int32 `json:"root"`
}

// ExprNode is one flattened expression term. Kids reference earlier entries
// of the node table (the encoding is a postorder, so references always point
// backward).
type ExprNode struct {
	Op   string  `json:"op"`
	W    uint8   `json:"w"`
	Val  uint64  `json:"val,omitempty"`
	Name string  `json:"name,omitempty"`
	Lo   uint8   `json:"lo,omitempty"`
	Kids []int32 `json:"kids,omitempty"`
}

// exprEncoder flattens expression DAGs into a shared node table,
// deduplicating by pointer identity (subterms are shared freely and never
// mutated after construction, so identity dedup is sound).
type exprEncoder struct {
	nodes []ExprNode
	index map[*expr.Expr]int32
}

func newExprEncoder() *exprEncoder {
	return &exprEncoder{index: make(map[*expr.Expr]int32)}
}

func (enc *exprEncoder) encode(e *expr.Expr) int32 {
	if i, ok := enc.index[e]; ok {
		return i
	}
	n := ExprNode{Op: e.Op.String(), W: e.Width, Val: e.Val, Name: e.Name, Lo: e.Lo}
	for _, k := range e.Kids {
		n.Kids = append(n.Kids, enc.encode(k))
	}
	i := int32(len(enc.nodes))
	enc.nodes = append(enc.nodes, n)
	enc.index[e] = i
	return i
}

// opByName inverts Op.String(); built lazily on first decode.
var opByName map[string]expr.Op

func init() {
	opByName = make(map[string]expr.Op)
	for op := expr.OpConst; op <= expr.OpSExt; op++ {
		opByName[op.String()] = op
	}
}

// decodeNodes rebuilds the expression DAG from a node table by re-running
// the smart constructors, so the decoded terms are in the same canonical
// (simplified, shared) form the encoder saw. Malformed tables (bad widths,
// forward references, unknown operators) return an error rather than
// panicking.
func decodeNodes(nodes []ExprNode) (built []*expr.Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("symex: corrupt expression table: %v", r)
		}
	}()
	built = make([]*expr.Expr, len(nodes))
	kid := func(i int, refs []int32, which int) (*expr.Expr, error) {
		if which >= len(refs) {
			return nil, fmt.Errorf("symex: node %d: missing operand %d", i, which)
		}
		r := refs[which]
		if r < 0 || int(r) >= i {
			return nil, fmt.Errorf("symex: node %d: bad reference %d", i, r)
		}
		return built[r], nil
	}
	for i, n := range nodes {
		op, ok := opByName[n.Op]
		if !ok {
			return nil, fmt.Errorf("symex: node %d: unknown op %q", i, n.Op)
		}
		var a, b, c *expr.Expr
		arity := opArity(op)
		if arity >= 1 {
			if a, err = kid(i, n.Kids, 0); err != nil {
				return nil, err
			}
		}
		if arity >= 2 {
			if b, err = kid(i, n.Kids, 1); err != nil {
				return nil, err
			}
		}
		if arity >= 3 {
			if c, err = kid(i, n.Kids, 2); err != nil {
				return nil, err
			}
		}
		switch op {
		case expr.OpConst:
			built[i] = expr.Const(n.W, n.Val)
		case expr.OpVar:
			built[i] = expr.Var(n.W, n.Name)
		case expr.OpNot:
			built[i] = expr.Not(a)
		case expr.OpNeg:
			built[i] = expr.Neg(a)
		case expr.OpAnd:
			built[i] = expr.And(a, b)
		case expr.OpOr:
			built[i] = expr.Or(a, b)
		case expr.OpXor:
			built[i] = expr.Xor(a, b)
		case expr.OpAdd:
			built[i] = expr.Add(a, b)
		case expr.OpSub:
			built[i] = expr.Sub(a, b)
		case expr.OpMul:
			built[i] = expr.Mul(a, b)
		case expr.OpUDiv:
			built[i] = expr.UDiv(a, b)
		case expr.OpURem:
			built[i] = expr.URem(a, b)
		case expr.OpShl:
			built[i] = expr.Shl(a, b)
		case expr.OpLShr:
			built[i] = expr.LShr(a, b)
		case expr.OpAShr:
			built[i] = expr.AShr(a, b)
		case expr.OpEq:
			built[i] = expr.Eq(a, b)
		case expr.OpUlt:
			built[i] = expr.Ult(a, b)
		case expr.OpSlt:
			built[i] = expr.Slt(a, b)
		case expr.OpIte:
			built[i] = expr.Ite(a, b, c)
		case expr.OpExtract:
			built[i] = expr.Extract(a, n.Lo, n.W)
		case expr.OpConcat:
			built[i] = expr.Concat(a, b)
		case expr.OpZExt:
			built[i] = expr.ZExt(a, n.W)
		case expr.OpSExt:
			built[i] = expr.SExt(a, n.W)
		default:
			return nil, fmt.Errorf("symex: node %d: unhandled op %q", i, n.Op)
		}
	}
	return built, nil
}

func opArity(op expr.Op) int {
	switch op {
	case expr.OpConst, expr.OpVar:
		return 0
	case expr.OpNot, expr.OpNeg, expr.OpExtract, expr.OpZExt, expr.OpSExt:
		return 1
	case expr.OpIte:
		return 3
	default:
		return 2
	}
}

// EncodeSummary flattens a Summary into its serializable record.
func EncodeSummary(s *Summary) *SummaryRecord {
	enc := newExprEncoder()
	rec := &SummaryRecord{Version: SerialVersion, Paths: s.Paths}
	rec.Success = enc.encode(s.Success)
	// Deterministic output order: by (kind, index).
	locs := make([]x86.Loc, 0, len(s.Outputs))
	for loc := range s.Outputs {
		locs = append(locs, loc)
	}
	for i := 1; i < len(locs); i++ {
		for j := i; j > 0 && lessLoc(locs[j], locs[j-1]); j-- {
			locs[j], locs[j-1] = locs[j-1], locs[j]
		}
	}
	for _, loc := range locs {
		rec.Outputs = append(rec.Outputs, SummaryOutput{
			Kind: uint8(loc.Kind), Index: loc.Index, Root: enc.encode(s.Outputs[loc]),
		})
	}
	rec.Nodes = enc.nodes
	return rec
}

func lessLoc(a, b x86.Loc) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Index < b.Index
}

// DecodeSummary rebuilds a Summary from its record, validating the version
// and the node table.
func DecodeSummary(rec *SummaryRecord) (*Summary, error) {
	if rec == nil {
		return nil, fmt.Errorf("symex: nil summary record")
	}
	if rec.Version != SerialVersion {
		return nil, fmt.Errorf("symex: summary record version %d, want %d",
			rec.Version, SerialVersion)
	}
	built, err := decodeNodes(rec.Nodes)
	if err != nil {
		return nil, err
	}
	ref := func(r int32) (*expr.Expr, error) {
		if r < 0 || int(r) >= len(built) {
			return nil, fmt.Errorf("symex: summary root %d out of range", r)
		}
		return built[r], nil
	}
	s := &Summary{Outputs: make(map[x86.Loc]*expr.Expr), Paths: rec.Paths}
	if s.Success, err = ref(rec.Success); err != nil {
		return nil, err
	}
	for _, o := range rec.Outputs {
		e, err := ref(o.Root)
		if err != nil {
			return nil, err
		}
		s.Outputs[x86.Loc{Kind: x86.LocKind(o.Kind), Index: o.Index}] = e
	}
	return s, nil
}
