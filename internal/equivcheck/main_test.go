package equivcheck

import (
	"os"
	"testing"

	"pokeemu/internal/solver"
)

// TestMain turns on the solver's debug-build validation gate for the whole
// package: the equivalence gate below runs with every Sat model re-checked
// against the full clause set, pinning that validation never fires across
// the gate's handler subset.
func TestMain(m *testing.M) {
	solver.Validate = true
	os.Exit(m.Run())
}
