package equivcheck

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestReportRoundTrip: Encode/DecodeReport must be lossless for everything
// the report pins (verdicts, counterexamples, counters) — it is the format
// `-json` writes and `pokeemu equivcheck`'s consumers parse back.
func TestReportRoundTrip(t *testing.T) {
	rep := gateReport()
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("Encode -> Decode -> Encode is not a fixed point")
	}
	if back.Render() != rep.Render() {
		t.Error("decoded report renders differently")
	}
	if _, err := DecodeReport([]byte("{not json")); err == nil {
		t.Error("DecodeReport accepted malformed input")
	}
}

// TestTimingTable: the -timing side channel renders its counters.
func TestTimingTable(t *testing.T) {
	tm := &Timing{Wall: 1500 * time.Millisecond, CacheHits: 3, CacheMisses: 4}
	got := tm.Table()
	for _, want := range []string{"1.5s", "3 hit", "4 miss"} {
		if !strings.Contains(got, want) {
			t.Errorf("Table() = %q, missing %q", got, want)
		}
	}
}

// TestRenderBudgetHeader: a finite query budget appears in the header (the
// unlimited form is covered by the report golden).
func TestRenderBudgetHeader(t *testing.T) {
	rep := &Report{Config: ConfigLabel, PathCap: 1, Budget: 42}
	if got := rep.Render(); !strings.Contains(got, "budget 42") {
		t.Errorf("Render() header = %q, want a budget 42 line", got)
	}
}

// TestLoadKnownDiverges: the seeded file parses, an empty path means an
// empty set, and missing/malformed files fail loudly.
func TestLoadKnownDiverges(t *testing.T) {
	known, err := LoadKnownDiverges(filepath.Join("testdata", "known_diverges.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(known.Handlers) != 20 {
		t.Errorf("seeded known-diverges file lists %d handlers, want 20", len(known.Handlers))
	}
	empty, err := LoadKnownDiverges("")
	if err != nil || len(empty.Handlers) != 0 {
		t.Errorf(`LoadKnownDiverges("") = %v handlers, err %v; want empty, nil`, empty, err)
	}
	// A nonexistent path is documented as "empty set", not an error.
	missing, err := LoadKnownDiverges(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(missing.Handlers) != 0 {
		t.Errorf("missing file = %v handlers, err %v; want empty, nil", missing, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKnownDiverges(bad); err == nil {
		t.Error("malformed file did not error")
	}
}

// TestUnsupportedError: lift failures carry the handler context in their
// message — it becomes the UNKNOWN stage string users see.
func TestUnsupportedError(t *testing.T) {
	err := unsupported("handler %s", "shld_cl")
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("unsupported() did not produce an UnsupportedError: %v", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "shld_cl") {
		t.Errorf("Error() = %q, want the handler name", msg)
	}
}
