package equivcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Render produces the deterministic text report: the verdict table in
// input order, one detail block per counterexample, and the degradation
// ledger. It never includes wall-clock or cache information, so renders
// are byte-identical across worker counts and cache temperatures.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "equivcheck: config %s, %d handlers, path cap %d, budget %s\n",
		r.Config, len(r.Handlers), r.PathCap, budgetString(r.Budget))
	fmt.Fprintf(&b, "%-26s %-9s %5s %5s %6s %8s  %s\n",
		"HANDLER", "VERDICT", "HIFI", "LOFI", "PAIRS", "QUERIES", "DETAIL")
	for _, v := range r.Handlers {
		detail := ""
		switch {
		case v.Verdict == VerdictUnknown:
			detail = v.Stage
		case v.CE != nil:
			detail = "output " + v.CE.Output
		}
		fmt.Fprintf(&b, "%-26s %-9s %5d %5d %6d %8d  %s\n",
			v.Handler, v.Verdict, v.PathsFidelis, v.PathsCeler,
			v.Pairs, v.Queries, detail)
	}
	fmt.Fprintf(&b, "summary: %d EQUIV, %d DIVERGES, %d UNKNOWN; %d solver queries\n",
		r.Equiv, r.Diverges, r.Unknown, r.Queries)

	for _, v := range r.Handlers {
		if v.CE == nil {
			continue
		}
		ce := v.CE
		fmt.Fprintf(&b, "\ndiverges: %s\n", v.Handler)
		fmt.Fprintf(&b, "  output: %s (fidelis path %d %s vs celer path %d %s)\n",
			ce.Output, ce.PathFidelis, ce.OutcomeFidelis,
			ce.PathCeler, ce.OutcomeCeler)
		fmt.Fprintf(&b, "  witness: %s\n", assignmentString(ce.Assignment))
		switch {
		case ce.BuildErr != "":
			fmt.Fprintf(&b, "  replay: test generation failed: %s\n", ce.BuildErr)
		case ce.Replayed:
			fmt.Fprintf(&b, "  replay: reproduced (%s), root cause: %s\n",
				strings.Join(ce.Fields, " "), ce.RootCause)
		default:
			fmt.Fprintf(&b, "  replay: NOT reproduced (prover bug?)\n")
		}
	}

	if r.Unknown > 0 {
		fmt.Fprintf(&b, "\ndegraded:\n")
		for _, v := range r.Handlers {
			if v.Verdict == VerdictUnknown {
				fmt.Fprintf(&b, "  %-26s %s\n", v.Handler, v.Stage)
			}
		}
	}
	return b.String()
}

func budgetString(budget int64) string {
	if budget <= 0 {
		return "unlimited"
	}
	return fmt.Sprint(budget)
}

// assignmentString renders a witness assignment with sorted variable names.
func assignmentString(asn map[string]uint64) string {
	names := make([]string, 0, len(asn))
	for n := range asn {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%#x", n, asn[n]))
	}
	return strings.Join(parts, " ")
}

// Encode serializes the report as indented JSON (the -json file format and
// the shape embedded in the service response).
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeReport parses a report produced by Encode.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("equivcheck: decoding report: %w", err)
	}
	return &r, nil
}

// KnownDiverges is the pinned set of expected DIVERGES handlers (the
// alias-encoding findings): the gate fails only on divergences outside it.
type KnownDiverges struct {
	Handlers []string `json:"handlers"`
}

// LoadKnownDiverges reads a known-diverges file. A missing path ("" or
// nonexistent) means an empty set: every divergence is new.
func LoadKnownDiverges(path string) (*KnownDiverges, error) {
	if path == "" {
		return &KnownDiverges{}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &KnownDiverges{}, nil
		}
		return nil, err
	}
	var k KnownDiverges
	if err := json.Unmarshal(data, &k); err != nil {
		return nil, fmt.Errorf("equivcheck: %s: %w", path, err)
	}
	return &k, nil
}

// Gate evaluates the CI gate: any UNKNOWN verdict or any DIVERGES handler
// outside the known set is a violation. An empty return passes.
func (r *Report) Gate(known *KnownDiverges) []string {
	knownSet := make(map[string]bool)
	if known != nil {
		for _, h := range known.Handlers {
			knownSet[h] = true
		}
	}
	var violations []string
	for _, v := range r.Handlers {
		switch v.Verdict {
		case VerdictUnknown:
			violations = append(violations,
				fmt.Sprintf("%s: UNKNOWN (%s)", v.Handler, v.Stage))
		case VerdictDiverges:
			if !knownSet[v.Handler] {
				violations = append(violations,
					fmt.Sprintf("%s: new DIVERGES (output %s)", v.Handler, v.CE.Output))
			}
		}
	}
	return violations
}
