// Package equivcheck implements symbolic disequivalence checking between
// the Hi-Fi (fidelis) and Lo-Fi (celer) emulators, in the style of
// Tamarin's concolic disequivalence checking: both implementations of one
// instruction are executed over a single shared symbolic pre-state, their
// path conditions are conjoined pairwise, and the solver is asked whether
// any input makes a pair of final states differ on some output. UNSAT on
// every pair and output certifies equivalence over the symbolic state
// space; a SAT model is decoded into a ready-to-run counterexample test
// case that feeds the existing concrete triage pipeline.
//
// The fidelis side reuses the symbolic execution engine over the compiled
// IR. The celer side has no IR — it is concrete Go code — so this file
// lifts celer's translation by hand: a symbolic interpreter that mirrors
// internal/celer/exec.go statement by statement over internal/expr terms,
// including celer's deliberate bug classes (alias encodings rejected with
// #UD, undefined flags left unchanged, and so on). Only register and
// immediate operand forms are lifted; memory, stack, string, and system
// forms report an UnsupportedError and surface as UNKNOWN verdicts with
// the lift stage named in the degradation ledger.
package equivcheck

import (
	"fmt"
	"strings"

	"pokeemu/internal/expr"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// symFlagBits are the EFLAGS bits treated as symbolic inputs — the same
// set internal/equiv marks, so both sides share the st_* variables.
var symFlagBits = []uint8{x86.FlagCF, x86.FlagPF, x86.FlagAF, x86.FlagZF,
	x86.FlagSF, x86.FlagDF, x86.FlagOF}

// trackedFlagBits adds the bits celer can read or write beyond the
// symbolic set (IF for cli/sti); they start at their concrete baseline.
var trackedFlagBits = append([]uint8{x86.FlagIF}, symFlagBits...)

// UnsupportedError marks an instruction form the celer lifter does not
// model; the checker reports UNKNOWN with this stage string.
type UnsupportedError struct{ Reason string }

func (e *UnsupportedError) Error() string {
	return "equivcheck: celer lift unsupported: " + e.Reason
}

func unsupported(format string, args ...any) error {
	return &UnsupportedError{Reason: fmt.Sprintf(format, args...)}
}

// cstate is celer's symbolic machine state: the register file and the
// tracked EFLAGS bits. Reg-form instructions touch nothing else.
type cstate struct {
	gpr   [8]*expr.Expr // 32-bit terms
	flags map[uint8]*expr.Expr
}

func (s *cstate) clone() *cstate {
	c := &cstate{gpr: s.gpr, flags: make(map[uint8]*expr.Expr, len(s.flags))}
	for k, v := range s.flags {
		c.flags[k] = v
	}
	return c
}

// get reads one output location as a term (the checker's comparison hook).
func (s *cstate) get(loc x86.Loc) *expr.Expr {
	switch loc.Kind {
	case x86.LocGPR:
		return s.gpr[loc.Index]
	case x86.LocFlag:
		return s.flags[loc.Index]
	}
	panic("equivcheck: unsupported output location " + loc.String())
}

// celerPath is one symbolic execution path of celer's translation: the
// conjunction of its branch conditions, its termination outcome, and the
// final state (meaningful only for OutEnd paths).
type celerPath struct {
	cond    []*expr.Expr
	outcome ir.Outcome
	st      *cstate
}

// lifter threads the in-progress main path; fault forks are emitted as
// completed paths with a condition snapshot, and the negation joins the
// main path's condition.
type lifter struct {
	inst *x86.Inst
	osz  uint8
	st   *cstate
	cond []*expr.Expr
	done []*celerPath
}

// liftCeler symbolically executes celer's decode + translation of inst
// over the shared st_* pre-state variables, with base supplying concrete
// values for untracked state. Paths are returned in deterministic order:
// fault forks in program order, the fall-through success path last.
func liftCeler(inst *x86.Inst, base *machine.Machine) ([]*celerPath, error) {
	st := &cstate{flags: make(map[uint8]*expr.Expr)}
	for r := 0; r < 8; r++ {
		st.gpr[r] = expr.Var(32, "st_"+x86.Reg(r).String())
	}
	for _, bit := range trackedFlagBits {
		st.flags[bit] = expr.Const(1, uint64(base.EFLAGS>>bit&1))
	}
	for _, bit := range symFlagBits {
		st.flags[bit] = expr.Var(1, "st_"+x86.Flag(bit).String())
	}

	l := &lifter{inst: inst, osz: uint8(inst.OpSize), st: st}

	// celer's decoder rejects alias encodings with #UD (finding 7) before
	// any translation happens.
	if inst.Spec.AliasEnc {
		l.raise(x86.ExcUD)
		return l.done, nil
	}
	// LOCK legality check from celer's translate.
	if inst.Lock && (!inst.Spec.LockOK || inst.IsRegForm() || !inst.HasModRM) {
		l.raise(x86.ExcUD)
		return l.done, nil
	}
	if err := l.exec(); err != nil {
		return nil, err
	}
	return l.done, nil
}

// raise terminates the current path with a fault.
func (l *lifter) raise(vec uint8) {
	l.done = append(l.done, &celerPath{
		cond:    append([]*expr.Expr(nil), l.cond...),
		outcome: ir.Outcome{Kind: ir.OutRaise, Vector: vec},
		st:      l.st,
	})
}

// fork emits a fault path guarded by cond and constrains the main path to
// its negation. Constant conditions collapse to a single path, exactly as
// concrete execution would.
func (l *lifter) fork(cond *expr.Expr, vec uint8) bool {
	if cond.IsTrue() {
		l.raise(vec)
		return true // main path is dead
	}
	if cond.IsFalse() {
		return false
	}
	saved := l.cond
	l.cond = append(append([]*expr.Expr(nil), saved...), cond)
	l.raise(vec)
	l.cond = append(saved, expr.Not(cond))
	return false
}

// end terminates the main path normally.
func (l *lifter) end() {
	l.done = append(l.done, &celerPath{
		cond:    l.cond,
		outcome: ir.Outcome{Kind: ir.OutEnd},
		st:      l.st,
	})
}

// halt terminates the main path with the halt outcome (celer's hlt).
func (l *lifter) halt() {
	l.done = append(l.done, &celerPath{
		cond:    l.cond,
		outcome: ir.Outcome{Kind: ir.OutHalt},
		st:      l.st,
	})
}

// --- register/flag helpers mirroring celer/mem.go ------------------------

func (l *lifter) gprRead(idx, w uint8) *expr.Expr {
	switch w {
	case 32:
		return l.st.gpr[idx]
	case 16:
		return expr.Extract(l.st.gpr[idx], 0, 16)
	case 8:
		if idx < 4 {
			return expr.Extract(l.st.gpr[idx], 0, 8)
		}
		return expr.Extract(l.st.gpr[idx-4], 8, 8)
	}
	panic("equivcheck: bad width")
}

func (l *lifter) gprWrite(idx, w uint8, v *expr.Expr) {
	if v.Width != w {
		panic("equivcheck: gpr write width mismatch")
	}
	switch w {
	case 32:
		l.st.gpr[idx] = v
	case 16:
		l.st.gpr[idx] = expr.Concat(expr.Extract(l.st.gpr[idx], 16, 16), v)
	case 8:
		if idx < 4 {
			l.st.gpr[idx] = expr.Concat(expr.Extract(l.st.gpr[idx], 8, 24), v)
		} else {
			old := l.st.gpr[idx-4]
			l.st.gpr[idx-4] = expr.Concat(expr.Extract(old, 16, 16),
				expr.Concat(v, expr.Extract(old, 0, 8)))
		}
	default:
		panic("equivcheck: bad width")
	}
}

func (l *lifter) flag(bit uint8) *expr.Expr { return l.st.flags[bit] }

func (l *lifter) setFlag(bit uint8, v *expr.Expr) {
	if v.Width != 1 {
		panic("equivcheck: flag width mismatch")
	}
	l.st.flags[bit] = v
}

func (l *lifter) setFlagConst(bit uint8, v uint64) {
	l.setFlag(bit, expr.Const(1, v))
}

func bit(e *expr.Expr, i uint8) *expr.Expr { return expr.Extract(e, i, 1) }

func msb(e *expr.Expr) *expr.Expr { return bit(e, e.Width-1) }

// parity8 is celer's parity8: even parity of the low byte.
func parity8(r *expr.Expr) *expr.Expr {
	p := bit(r, 0)
	for i := uint8(1); i < 8; i++ {
		p = expr.Xor(p, bit(r, i))
	}
	return expr.Not(p)
}

func (l *lifter) setSZP(r *expr.Expr) {
	l.setFlag(x86.FlagSF, msb(r))
	l.setFlag(x86.FlagZF, expr.Eq(r, expr.Const(r.Width, 0)))
	l.setFlag(x86.FlagPF, parity8(r))
}

// addFlags mirrors celer's addFlags: CF from the carry out of a w+1-bit
// sum, OF/AF from the classic xor identities.
func (l *lifter) addFlags(a, b, cin, r *expr.Expr) {
	w := a.Width
	wide := expr.Add(expr.Add(expr.ZExt(a, w+1), expr.ZExt(b, w+1)),
		expr.ZExt(cin, w+1))
	l.setFlag(x86.FlagCF, bit(wide, w))
	l.setFlag(x86.FlagOF,
		bit(expr.And(expr.Not(expr.Xor(a, b)), expr.Xor(a, r)), w-1))
	l.setFlag(x86.FlagAF, bit(expr.Xor(expr.Xor(a, b), r), 4))
	l.setSZP(r)
}

func (l *lifter) subFlags(a, b, cin, r *expr.Expr) {
	w := a.Width
	wide := expr.Sub(expr.Sub(expr.ZExt(a, w+1), expr.ZExt(b, w+1)),
		expr.ZExt(cin, w+1))
	l.setFlag(x86.FlagCF, bit(wide, w))
	l.setFlag(x86.FlagOF,
		bit(expr.And(expr.Xor(a, b), expr.Xor(a, r)), w-1))
	l.setFlag(x86.FlagAF, bit(expr.Xor(expr.Xor(a, b), r), 4))
	l.setSZP(r)
}

func (l *lifter) logicFlags(r *expr.Expr) {
	l.setFlagConst(x86.FlagCF, 0)
	l.setFlagConst(x86.FlagOF, 0)
	// AF deliberately left unchanged, like celer (finding 8).
	l.setSZP(r)
}

// condValue mirrors celer's condition-code evaluation.
func (l *lifter) condValue(cc uint8) *expr.Expr {
	var v *expr.Expr
	one := func(bit uint8) *expr.Expr { return l.flag(bit) }
	switch cc >> 1 {
	case 0:
		v = one(x86.FlagOF)
	case 1:
		v = one(x86.FlagCF)
	case 2:
		v = one(x86.FlagZF)
	case 3:
		v = expr.Or(one(x86.FlagCF), one(x86.FlagZF))
	case 4:
		v = one(x86.FlagSF)
	case 5:
		v = one(x86.FlagPF)
	case 6:
		v = expr.Ne(one(x86.FlagSF), one(x86.FlagOF))
	case 7:
		v = expr.Or(one(x86.FlagZF), expr.Ne(one(x86.FlagSF), one(x86.FlagOF)))
	}
	if cc&1 == 1 {
		v = expr.Not(v)
	}
	return v
}

var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func ccOf(name string) (uint8, bool) {
	for i, n := range ccNames {
		if n == name {
			return uint8(i), true
		}
	}
	return 0, false
}

// rmReg returns the register index named by a reg-form r/m operand, or an
// error for memory forms (the lifter models no memory).
func (l *lifter) rmReg() (uint8, error) {
	if !l.inst.IsRegForm() {
		return 0, unsupported("memory operand")
	}
	return l.inst.RM(), nil
}

func (l *lifter) immConst(w uint8) *expr.Expr {
	return expr.Const(w, uint64(uint32(l.inst.Imm))&expr.Mask(w))
}

// --- the exec dispatch, mirroring celer/exec.go ---------------------------

func (l *lifter) exec() error {
	name := l.inst.Spec.Name
	op := name
	form := ""
	if us := strings.IndexByte(name, '_'); us >= 0 {
		op, form = name[:us], name[us+1:]
	}

	switch op {
	case "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "test":
		return l.binALU(op, form)
	case "inc", "dec":
		return l.incDec(op == "inc", form)
	case "not", "neg":
		return l.notNeg(op == "neg", form)
	case "mul", "imul", "imul1":
		return l.mulOne(op != "mul", form)
	case "imul2", "imul3":
		return l.imulMulti(op == "imul3")
	case "div", "idiv":
		return l.divide(op == "idiv", form)
	case "rol", "ror", "rcl", "rcr", "shl", "shr", "sar":
		return l.shiftRotate(op, form)
	case "bt", "bts", "btr", "btc":
		return l.bitTest(op, form)
	}

	switch name {
	case "nop":
		l.end()
		return nil
	case "ud2":
		l.raise(x86.ExcUD)
		return nil
	case "hlt":
		l.halt()
		return nil
	case "mov_rm8_r8", "mov_rmv_rv", "mov_r8_rm8", "mov_rv_rmv",
		"mov_rm8_imm8", "mov_rmv_immv":
		return l.movGeneric(strings.TrimPrefix(name, "mov_"))
	case "mov_r8_imm8":
		l.gprWrite(l.inst.Opcode&7, 8, l.immConst(8))
		l.end()
		return nil
	case "mov_r_immv":
		l.gprWrite(l.inst.Opcode&7, l.osz, l.immConst(l.osz))
		l.end()
		return nil
	case "movzx_rv_rm8", "movzx_rv_rm16", "movsx_rv_rm8", "movsx_rv_rm16":
		return l.movExtend(name)
	case "xchg_eax_r":
		r := l.inst.Opcode & 7
		a, b := l.gprRead(0, l.osz), l.gprRead(r, l.osz)
		l.gprWrite(0, l.osz, b)
		l.gprWrite(r, l.osz, a)
		l.end()
		return nil
	case "xchg_rm8_r8", "xchg_rmv_rv":
		w := l.osz
		if name == "xchg_rm8_r8" {
			w = 8
		}
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		a := l.gprRead(rm, w)
		b := l.gprRead(l.inst.RegField(), w)
		l.gprWrite(rm, w, b)
		l.gprWrite(l.inst.RegField(), w, a)
		l.end()
		return nil
	case "xadd_rm8_r8", "xadd_rmv_rv":
		w := l.osz
		if name == "xadd_rm8_r8" {
			w = 8
		}
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		a := l.gprRead(rm, w)
		b := l.gprRead(l.inst.RegField(), w)
		sum := expr.Add(a, b)
		l.addFlags(a, b, expr.Const(1, 0), sum)
		// celer writes the source register first, then the destination, so
		// the destination wins when both name the same register.
		l.gprWrite(l.inst.RegField(), w, a)
		l.gprWrite(rm, w, sum)
		l.end()
		return nil
	case "cmpxchg_rm8_r8", "cmpxchg_rmv_rv":
		return l.cmpxchg(name == "cmpxchg_rm8_r8")
	case "bswap":
		// celer ignores the operand size and swaps all 32 bits.
		r := l.inst.Opcode & 7
		v := l.st.gpr[r]
		l.st.gpr[r] = expr.Concat(
			expr.Concat(bits8(v, 0), bits8(v, 8)),
			expr.Concat(bits8(v, 16), bits8(v, 24)))
		l.end()
		return nil
	case "cwde":
		if l.osz == 32 {
			l.gprWrite(0, 32, expr.SExt(l.gprRead(0, 16), 32))
		} else {
			l.gprWrite(0, 16, expr.SExt(l.gprRead(0, 8), 16))
		}
		l.end()
		return nil
	case "cdq":
		sign := msb(l.gprRead(0, l.osz))
		l.gprWrite(2, l.osz, expr.Ite(sign,
			expr.Const(l.osz, expr.Mask(l.osz)), expr.Const(l.osz, 0)))
		l.end()
		return nil
	case "lahf":
		// AH = SF:ZF:0:AF:0:PF:1:CF, bit 7 down to bit 0.
		ah := expr.Concat(l.flag(x86.FlagSF),
			expr.Concat(l.flag(x86.FlagZF),
				expr.Concat(expr.Const(1, 0),
					expr.Concat(l.flag(x86.FlagAF),
						expr.Concat(expr.Const(1, 0),
							expr.Concat(l.flag(x86.FlagPF),
								expr.Concat(expr.Const(1, 1), l.flag(x86.FlagCF))))))))
		l.gprWrite(4, 8, ah)
		l.end()
		return nil
	case "sahf":
		ah := l.gprRead(4, 8)
		l.setFlag(x86.FlagCF, bit(ah, 0))
		l.setFlag(x86.FlagPF, bit(ah, 2))
		l.setFlag(x86.FlagAF, bit(ah, 4))
		l.setFlag(x86.FlagZF, bit(ah, 6))
		l.setFlag(x86.FlagSF, bit(ah, 7))
		l.end()
		return nil
	case "clc":
		l.setFlagConst(x86.FlagCF, 0)
		l.end()
		return nil
	case "stc":
		l.setFlagConst(x86.FlagCF, 1)
		l.end()
		return nil
	case "cmc":
		l.setFlag(x86.FlagCF, expr.Not(l.flag(x86.FlagCF)))
		l.end()
		return nil
	case "cld":
		l.setFlagConst(x86.FlagDF, 0)
		l.end()
		return nil
	case "std":
		l.setFlagConst(x86.FlagDF, 1)
		l.end()
		return nil
	case "cli":
		l.setFlagConst(x86.FlagIF, 0)
		l.end()
		return nil
	case "sti":
		l.setFlagConst(x86.FlagIF, 1)
		l.end()
		return nil
	case "aam":
		imm := uint64(uint32(l.inst.Imm)) & 0xff
		if imm == 0 {
			l.raise(x86.ExcDE)
			return nil
		}
		al := l.gprRead(0, 8)
		d := expr.Const(8, imm)
		rem := expr.URem(al, d)
		l.gprWrite(4, 8, expr.UDiv(al, d))
		l.gprWrite(0, 8, rem)
		l.setSZP(rem)
		l.setFlagConst(x86.FlagCF, 0)
		l.setFlagConst(x86.FlagOF, 0)
		l.setFlagConst(x86.FlagAF, 0)
		l.end()
		return nil
	case "aad":
		imm := uint64(uint32(l.inst.Imm)) & 0xff
		r := expr.Add(l.gprRead(0, 8),
			expr.Mul(l.gprRead(4, 8), expr.Const(8, imm)))
		l.gprWrite(0, 16, expr.ZExt(r, 16))
		l.setSZP(r)
		l.setFlagConst(x86.FlagCF, 0)
		l.setFlagConst(x86.FlagOF, 0)
		l.setFlagConst(x86.FlagAF, 0)
		l.end()
		return nil
	}

	if cc, ok := ccOf(strings.TrimPrefix(name, "set")); ok &&
		strings.HasPrefix(name, "set") && len(name) <= 5 {
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		l.gprWrite(rm, 8, expr.ZExt(l.condValue(cc), 8))
		l.end()
		return nil
	}
	if cc, ok := ccOf(strings.TrimPrefix(name, "cmov")); ok &&
		strings.HasPrefix(name, "cmov") {
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		v := l.gprRead(rm, l.osz)
		old := l.gprRead(l.inst.RegField(), l.osz)
		l.gprWrite(l.inst.RegField(), l.osz, expr.Ite(l.condValue(cc), v, old))
		l.end()
		return nil
	}

	return unsupported("handler %s", name)
}

func bits8(v *expr.Expr, lo uint8) *expr.Expr { return expr.Extract(v, lo, 8) }

func (l *lifter) binALU(op, form string) error {
	i := strings.IndexByte(form, '_')
	if i < 0 {
		return unsupported("form %s", form)
	}
	dstTok, srcTok := form[:i], form[i+1:]
	readOnly := op == "cmp" || op == "test"

	type operand struct {
		isReg bool
		reg   uint8
		w     uint8
		val   *expr.Expr
	}
	read := func(tok string) (operand, error) {
		switch tok {
		case "rm8", "rmv":
			w := l.osz
			if tok == "rm8" {
				w = 8
			}
			rm, err := l.rmReg()
			if err != nil {
				return operand{}, err
			}
			return operand{isReg: true, reg: rm, w: w, val: l.gprRead(rm, w)}, nil
		case "r8":
			r := l.inst.RegField()
			return operand{isReg: true, reg: r, w: 8, val: l.gprRead(r, 8)}, nil
		case "rv":
			r := l.inst.RegField()
			return operand{isReg: true, reg: r, w: l.osz, val: l.gprRead(r, l.osz)}, nil
		case "al":
			return operand{isReg: true, reg: 0, w: 8, val: l.gprRead(0, 8)}, nil
		case "eax":
			return operand{isReg: true, reg: 0, w: l.osz, val: l.gprRead(0, l.osz)}, nil
		case "imm8", "immv", "imm8s":
			return operand{}, nil // width fixed up below
		}
		return operand{}, unsupported("operand token %s", tok)
	}
	dst, err := read(dstTok)
	if err != nil {
		return err
	}
	w := dst.w
	if w == 0 {
		w = l.osz
	}
	src, err := read(srcTok)
	if err != nil {
		return err
	}
	a := dst.val
	b := src.val
	if b == nil {
		b = l.immConst(w)
	} else if b.Width != w {
		// Never happens for the architected forms, but keep widths honest.
		return unsupported("operand width mismatch in %s", form)
	}

	var r *expr.Expr
	switch op {
	case "add":
		r = expr.Add(a, b)
		l.addFlags(a, b, expr.Const(1, 0), r)
	case "adc":
		cin := l.flag(x86.FlagCF)
		r = expr.Add(expr.Add(a, b), expr.ZExt(cin, w))
		l.addFlags(a, b, cin, r)
	case "sub", "cmp":
		r = expr.Sub(a, b)
		l.subFlags(a, b, expr.Const(1, 0), r)
	case "sbb":
		cin := l.flag(x86.FlagCF)
		r = expr.Sub(expr.Sub(a, b), expr.ZExt(cin, w))
		l.subFlags(a, b, cin, r)
	case "and", "test":
		r = expr.And(a, b)
		l.logicFlags(r)
	case "or":
		r = expr.Or(a, b)
		l.logicFlags(r)
	case "xor":
		r = expr.Xor(a, b)
		l.logicFlags(r)
	}
	if !readOnly {
		l.gprWrite(dst.reg, w, r)
	}
	l.end()
	return nil
}

func (l *lifter) incDec(isInc bool, form string) error {
	var reg, w uint8
	switch form {
	case "r":
		reg, w = l.inst.Opcode&7, l.osz
	case "rm8", "rmv":
		w = l.osz
		if form == "rm8" {
			w = 8
		}
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		reg = rm
	default:
		return unsupported("inc/dec form %s", form)
	}
	a := l.gprRead(reg, w)
	one := expr.Const(w, 1)
	var r *expr.Expr
	if isInc {
		r = expr.Add(a, one)
		l.setFlag(x86.FlagOF,
			bit(expr.And(expr.Not(expr.Xor(a, one)), expr.Xor(a, r)), w-1))
	} else {
		r = expr.Sub(a, one)
		l.setFlag(x86.FlagOF,
			bit(expr.And(expr.Xor(a, one), expr.Xor(a, r)), w-1))
	}
	l.setFlag(x86.FlagAF, bit(expr.Xor(expr.Xor(a, one), r), 4))
	l.setSZP(r)
	// CF untouched, like celer.
	l.gprWrite(reg, w, r)
	l.end()
	return nil
}

func (l *lifter) notNeg(isNeg bool, form string) error {
	w := l.osz
	if form == "rm8" {
		w = 8
	}
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	a := l.gprRead(rm, w)
	if isNeg {
		r := expr.Neg(a)
		l.subFlags(expr.Const(w, 0), a, expr.Const(1, 0), r)
		l.gprWrite(rm, w, r)
	} else {
		l.gprWrite(rm, w, expr.Not(a))
	}
	l.end()
	return nil
}

func (l *lifter) mulOne(signed bool, form string) error {
	w := l.osz
	if form == "rm8" {
		w = 8
	}
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	mv := l.gprRead(rm, w)
	a := l.gprRead(0, w)
	ext := expr.ZExt
	if signed {
		ext = expr.SExt
	}
	wide := expr.Mul(ext(a, 2*w), ext(mv, 2*w))
	lo := expr.Extract(wide, 0, w)
	hi := expr.Extract(wide, w, w)
	if w == 8 {
		l.gprWrite(0, 16, wide)
	} else {
		l.gprWrite(0, w, lo)
		l.gprWrite(2, w, hi)
	}
	var over *expr.Expr
	if signed {
		over = expr.Ne(expr.SExt(lo, 2*w), wide)
	} else {
		over = expr.Ne(hi, expr.Const(w, 0))
	}
	l.setFlag(x86.FlagCF, over)
	l.setFlag(x86.FlagOF, over)
	// SF/ZF/AF/PF left unchanged (undefined), like celer.
	l.end()
	return nil
}

func (l *lifter) imulMulti(threeOp bool) error {
	w := l.osz
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	mv := l.gprRead(rm, w)
	var a *expr.Expr
	if threeOp {
		a = l.immConst(w)
	} else {
		a = l.gprRead(l.inst.RegField(), w)
	}
	wide := expr.Mul(expr.SExt(a, 2*w), expr.SExt(mv, 2*w))
	r := expr.Extract(wide, 0, w)
	over := expr.Ne(expr.SExt(r, 2*w), wide)
	l.gprWrite(l.inst.RegField(), w, r)
	l.setFlag(x86.FlagCF, over)
	l.setFlag(x86.FlagOF, over)
	l.end()
	return nil
}

func (l *lifter) divide(signed bool, form string) error {
	w := l.osz
	if form == "rm8" {
		w = 8
	}
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	d := l.gprRead(rm, w)
	if l.fork(expr.Eq(d, expr.Const(w, 0)), x86.ExcDE) {
		return nil
	}
	w2 := 2 * w
	var dividend *expr.Expr
	if w == 8 {
		dividend = l.gprRead(0, 16)
	} else {
		dividend = expr.Concat(l.gprRead(2, w), l.gprRead(0, w))
	}
	var q, r, over *expr.Expr
	if signed {
		// Signed division built from unsigned: divide magnitudes, then fix
		// the signs (quotient by the sign product, remainder by the
		// dividend's sign). The single non-representable case — the most
		// negative dividend divided by -1 — fails the fit check below, so
		// its garbage magnitude result is confined to a #DE path.
		negD := msb(dividend)
		negV := msb(d)
		dv := expr.SExt(d, w2)
		absD := expr.Ite(negD, expr.Neg(dividend), dividend)
		absV := expr.Ite(negV, expr.Neg(dv), dv)
		uq := expr.UDiv(absD, absV)
		ur := expr.URem(absD, absV)
		q = expr.Ite(expr.Xor(negD, negV), expr.Neg(uq), uq)
		r = expr.Ite(negD, expr.Neg(ur), ur)
		over = expr.Ne(expr.SExt(expr.Extract(q, 0, w), w2), q)
	} else {
		q = expr.UDiv(dividend, expr.ZExt(d, w2))
		r = expr.URem(dividend, expr.ZExt(d, w2))
		over = expr.Ugt(q, expr.Const(w2, expr.Mask(w)))
	}
	if l.fork(over, x86.ExcDE) {
		return nil
	}
	qw := expr.Extract(q, 0, w)
	rw := expr.Extract(r, 0, w)
	if w == 8 {
		l.gprWrite(0, 16, expr.Concat(rw, qw))
	} else {
		l.gprWrite(0, w, qw)
		l.gprWrite(2, w, rw)
	}
	// All flags undefined: left unchanged, like celer.
	l.end()
	return nil
}

func (l *lifter) cmpxchg(byteForm bool) error {
	w := l.osz
	if byteForm {
		w = 8
	}
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	old := l.gprRead(rm, w)
	acc := l.gprRead(0, w)
	src := l.gprRead(l.inst.RegField(), w)
	l.subFlags(acc, old, expr.Const(1, 0), expr.Sub(acc, old))
	eq := expr.Eq(acc, old)
	// Mirror celer's write order: the accumulator update happens before the
	// destination write, and the miss path writes back the originally read
	// value (reg forms cannot fault, so only aliasing matters).
	l.gprWrite(0, w, expr.Ite(eq, acc, old))
	l.gprWrite(rm, w, expr.Ite(eq, src, old))
	l.end()
	return nil
}

func (l *lifter) shiftRotate(op, form string) error {
	i := strings.IndexByte(form, '_')
	if i < 0 {
		return unsupported("shift form %s", form)
	}
	dstTok, amtTok := form[:i], form[i+1:]
	w := l.osz
	if dstTok == "rm8" {
		w = 8
	}
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	a := l.gprRead(rm, w)

	var ct8 *expr.Expr
	switch amtTok {
	case "imm8":
		ct8 = expr.Const(8, uint64(uint32(l.inst.Imm))&0x1f)
	case "1":
		ct8 = expr.Const(8, 1)
	case "cl":
		ct8 = expr.And(l.gprRead(1, 8), expr.Const(8, 0x1f))
	default:
		return unsupported("shift amount %s", amtTok)
	}
	isZero := expr.Eq(ct8, expr.Const(8, 0))
	isOne := expr.Eq(ct8, expr.Const(8, 1))
	ctw := ct8
	if w > 8 {
		ctw = expr.ZExt(ct8, w)
	}

	// guard applies celer's count==0 early return (state unchanged) and the
	// count==1-only OF update (finding 8: OF untouched for larger counts).
	oldFlags := l.st.clone().flags
	guard := func(r *expr.Expr, newOF *expr.Expr) {
		for bitIdx, nf := range l.st.flags {
			if of, ok := oldFlags[bitIdx]; ok && nf != of {
				l.st.flags[bitIdx] = expr.Ite(isZero, of, nf)
			}
		}
		if newOF != nil {
			l.setFlag(x86.FlagOF, expr.Ite(isOne, newOF, oldFlags[x86.FlagOF]))
		}
		l.gprWrite(rm, w, expr.Ite(isZero, a, r))
	}

	switch op {
	case "shl":
		wide := expr.Shl(expr.ZExt(a, 64), expr.ZExt(ct8, 64))
		r := expr.Extract(wide, 0, w)
		// Bit w of the exact 64-bit product is automatically 0 for counts
		// beyond the width, matching celer's forced cf = 0.
		cf := bit(wide, w)
		l.setFlag(x86.FlagCF, cf)
		l.setSZP(r)
		guard(r, expr.Xor(msb(r), cf))
	case "shr":
		r := expr.LShr(a, ctw)
		// Bit count-1: yields the MSB at count == w and 0 beyond, exactly
		// celer's three cases in one term.
		cf := bit(expr.LShr(a, expr.Sub(ctw, expr.Const(w, 1))), 0)
		l.setFlag(x86.FlagCF, cf)
		l.setSZP(r)
		guard(r, msb(a))
	case "sar":
		r := expr.AShr(a, ctw) // AShr clamps counts at w-1, like celer
		cf := expr.Ite(expr.Ugt(ctw, expr.Const(w, uint64(w)-1)),
			msb(a),
			bit(expr.LShr(a, expr.Sub(ctw, expr.Const(w, 1))), 0))
		l.setFlag(x86.FlagCF, cf)
		l.setSZP(r)
		guard(r, expr.Const(1, 0))
	case "rol", "ror":
		n := expr.And(ctw, expr.Const(w, uint64(w)-1))
		comp := expr.Sub(expr.Const(w, uint64(w)), n)
		var r *expr.Expr
		if op == "rol" {
			r = expr.Or(expr.Shl(a, n), expr.LShr(a, comp))
		} else {
			r = expr.Or(expr.LShr(a, n), expr.Shl(a, comp))
		}
		var cf, of *expr.Expr
		if op == "rol" {
			cf = bit(r, 0)
			of = expr.Xor(msb(r), bit(r, 0))
		} else {
			cf = msb(r)
			of = expr.Xor(msb(r), bit(r, w-2))
		}
		l.setFlag(x86.FlagCF, cf)
		guard(r, of)
	case "rcl", "rcr":
		ww := w + 1
		x := expr.Concat(l.flag(x86.FlagCF), a)
		n := expr.URem(expr.ZExt(ct8, ww), expr.Const(ww, uint64(ww)))
		comp := expr.Sub(expr.Const(ww, uint64(ww)), n)
		var rx *expr.Expr
		if op == "rcl" {
			rx = expr.Or(expr.Shl(x, n), expr.LShr(x, comp))
		} else {
			rx = expr.Or(expr.LShr(x, n), expr.Shl(x, comp))
		}
		r := expr.Extract(rx, 0, w)
		ncf := bit(rx, w)
		l.setFlag(x86.FlagCF, ncf)
		var of *expr.Expr
		if op == "rcl" {
			of = expr.Xor(msb(r), ncf)
		} else {
			of = expr.Xor(msb(r), bit(r, w-2))
		}
		guard(r, of)
	}
	l.end()
	return nil
}

func (l *lifter) bitTest(op, form string) error {
	w := l.osz
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	a := l.gprRead(rm, w)
	var idx *expr.Expr
	if strings.HasSuffix(form, "imm8") {
		idx = expr.Const(w, uint64(uint32(l.inst.Imm))&uint64(w-1))
	} else {
		idx = expr.And(l.gprRead(l.inst.RegField(), w),
			expr.Const(w, uint64(w)-1))
	}
	l.setFlag(x86.FlagCF, bit(expr.LShr(a, idx), 0))
	if op != "bt" {
		bm := expr.Shl(expr.Const(w, 1), idx)
		var r *expr.Expr
		switch op {
		case "bts":
			r = expr.Or(a, bm)
		case "btr":
			r = expr.And(a, expr.Not(bm))
		case "btc":
			r = expr.Xor(a, bm)
		}
		l.gprWrite(rm, w, r)
	}
	l.end()
	return nil
}

func (l *lifter) movGeneric(form string) error {
	switch form {
	case "rm8_r8":
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		l.gprWrite(rm, 8, l.gprRead(l.inst.RegField(), 8))
	case "rmv_rv":
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		l.gprWrite(rm, l.osz, l.gprRead(l.inst.RegField(), l.osz))
	case "r8_rm8":
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		l.gprWrite(l.inst.RegField(), 8, l.gprRead(rm, 8))
	case "rv_rmv":
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		l.gprWrite(l.inst.RegField(), l.osz, l.gprRead(rm, l.osz))
	case "rm8_imm8":
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		l.gprWrite(rm, 8, l.immConst(8))
	case "rmv_immv":
		rm, err := l.rmReg()
		if err != nil {
			return err
		}
		l.gprWrite(rm, l.osz, l.immConst(l.osz))
	default:
		return unsupported("mov form %s", form)
	}
	l.end()
	return nil
}

func (l *lifter) movExtend(name string) error {
	rm, err := l.rmReg()
	if err != nil {
		return err
	}
	srcW := uint8(8)
	if strings.HasSuffix(name, "rm16") {
		srcW = 16
	}
	v := l.gprRead(rm, srcW)
	if srcW >= l.osz {
		// movzx/movsx r16, r/m16 under the 66 prefix: plain move.
		l.gprWrite(l.inst.RegField(), l.osz, expr.Extract(v, 0, l.osz))
	} else if strings.HasPrefix(name, "movzx") {
		l.gprWrite(l.inst.RegField(), l.osz, expr.ZExt(v, l.osz))
	} else {
		l.gprWrite(l.inst.RegField(), l.osz, expr.SExt(v, l.osz))
	}
	l.end()
	return nil
}
