package equivcheck

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pokeemu/internal/core"
	"pokeemu/internal/corpus"
	"pokeemu/internal/diff"
	"pokeemu/internal/equiv"
	"pokeemu/internal/expr"
	"pokeemu/internal/harness"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/solver"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

var update = flag.Bool("update", false, "rewrite golden files")

// gateReport memoizes one Run over the gate handlers for the whole test
// binary — several tests assert different properties of the same report.
var gateReport = sync.OnceValue(func() *Report {
	rep, err := Run(Options{Handlers: DefaultGateHandlers})
	if err != nil {
		panic(err)
	}
	return rep
})

// TestGateVerdicts pins the expected verdict matrix of the seeded gate
// subset: every lifted family proves EQUIV and the single alias encoding is
// the one expected DIVERGES (celer's decoder rejects it with #UD).
func TestGateVerdicts(t *testing.T) {
	rep := gateReport()
	if rep.Unknown != 0 {
		t.Fatalf("gate run has %d UNKNOWN verdicts:\n%s", rep.Unknown, rep.Render())
	}
	for _, v := range rep.Handlers {
		want := VerdictEquiv
		if strings.HasSuffix(v.Handler, "_alias") {
			want = VerdictDiverges
		}
		if v.Verdict != want {
			t.Errorf("%s: verdict %s, want %s (stage %q)", v.Handler, v.Verdict, want, v.Stage)
		}
	}
	if rep.Diverges == 0 {
		t.Fatal("gate run found no DIVERGES; the alias-encoding finding is gone")
	}
}

// TestModelsReproduce is the counterexample replay property: every DIVERGES
// model the prover emits must decode into a runnable test case whose
// concrete execution on the fidelis/celer harness pair reproduces a
// divergence — a symbolic finding that cannot be replayed is a prover bug.
func TestModelsReproduce(t *testing.T) {
	for _, v := range gateReport().Handlers {
		if v.Verdict != VerdictDiverges {
			continue
		}
		ce := v.CE
		if ce == nil {
			t.Errorf("%s: DIVERGES without a counterexample", v.Handler)
			continue
		}
		if ce.BuildErr != "" {
			t.Errorf("%s: counterexample did not build: %s", v.Handler, ce.BuildErr)
			continue
		}
		if !ce.Replayed {
			t.Errorf("%s: counterexample did not reproduce concretely (output %s, witness %v)",
				v.Handler, ce.Output, ce.Assignment)
			continue
		}
		if ce.RootCause == "" || len(ce.Fields) == 0 {
			t.Errorf("%s: replayed counterexample lacks root cause/fields", v.Handler)
		}
	}
}

// TestAliasHandlersDiverge checks every liftable alias encoding in the
// instruction set: celer rejects them all with #UD, so each must either be
// a replayed DIVERGES or an UNKNOWN whose stage names an unliftable form —
// never a (wrong) EQUIV.
func TestAliasHandlersDiverge(t *testing.T) {
	var aliases []string
	for _, u := range instrSet().Unique {
		if strings.HasSuffix(u.Spec.Name, "_alias") {
			aliases = append(aliases, u.Key())
		}
	}
	if len(aliases) == 0 {
		t.Fatal("no alias handlers in the instruction set")
	}
	rep, err := Run(Options{Handlers: aliases, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Handlers {
		switch v.Verdict {
		case VerdictDiverges:
			if v.CE == nil || (v.CE.BuildErr == "" && !v.CE.Replayed) {
				t.Errorf("%s: alias DIVERGES did not replay", v.Handler)
			}
		case VerdictUnknown:
			if !strings.HasPrefix(v.Stage, "regform:") && !strings.HasPrefix(v.Stage, "celer-lift:") {
				t.Errorf("%s: alias UNKNOWN at unexpected stage %q", v.Handler, v.Stage)
			}
		default:
			t.Errorf("%s: alias encoding proved EQUIV; celer must reject it with #UD", v.Handler)
		}
	}
}

// detHandlers is a small mixed subset exercising all three verdicts for the
// determinism and golden tests: EQUIV families, one DIVERGES, one
// lift-unsupported UNKNOWN.
var detHandlers = []string{
	"add_rm8_r8", "adc_rmv_rv", "sete", "rol_rmv_cl",
	"add_rm8_imm8_alias", "shld_cl",
}

// TestWorkerDeterminism requires byte-identical reports (text and JSON) for
// any worker count — the ISSUE's determinism acceptance criterion, also run
// under -race by make race.
func TestWorkerDeterminism(t *testing.T) {
	var renders []string
	var encodes []string
	for _, workers := range []int{1, 4, 8} {
		rep, err := Run(Options{Handlers: detHandlers, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, rep.Render())
		encodes = append(encodes, string(data))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Errorf("text report differs between workers=1 and workers=%d:\n--- w1:\n%s\n--- w%d:\n%s",
				[]int{1, 4, 8}[i], renders[0], []int{1, 4, 8}[i], renders[i])
		}
		if encodes[i] != encodes[0] {
			t.Errorf("JSON report differs between worker counts")
		}
	}
}

// TestReportGolden pins the text and JSON report formats byte for byte.
// Regenerate deliberately with:
//
//	go test ./internal/equivcheck -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	rep, err := Run(Options{Handlers: detHandlers})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "report.golden"), []byte(rep.Render()))
	compareGolden(t, filepath.Join("testdata", "report_json.golden"), data)
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != string(got) {
		t.Errorf("report differs from %s (format changes must be deliberate; -update to regenerate):\n--- want:\n%s\n--- got:\n%s",
			path, want, got)
	}
}

// TestWarmCacheStability: with a corpus, a second identical Run answers
// every handler from cached verdicts — zero fresh solver queries — and
// still renders byte-identically to the cold run.
func TestWarmCacheStability(t *testing.T) {
	crp, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(Options{Handlers: detHandlers, Corpus: crp})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Timing.CacheMisses != len(detHandlers) || cold.Timing.CacheHits != 0 {
		t.Fatalf("cold run: %d hits / %d misses, want 0 / %d",
			cold.Timing.CacheHits, cold.Timing.CacheMisses, len(detHandlers))
	}
	instrSet() // ensure exploration is already memoized before measuring
	before := solver.QueriesTotal()
	warm, err := Run(Options{Handlers: detHandlers, Corpus: crp})
	if err != nil {
		t.Fatal(err)
	}
	if delta := solver.QueriesTotal() - before; delta != 0 {
		t.Errorf("warm run issued %d solver queries, want 0", delta)
	}
	if warm.Timing.CacheHits != len(detHandlers) || warm.Timing.CacheMisses != 0 {
		t.Errorf("warm run: %d hits / %d misses, want %d / 0",
			warm.Timing.CacheHits, warm.Timing.CacheMisses, len(detHandlers))
	}
	for _, v := range warm.Handlers {
		if !v.Cached {
			t.Errorf("%s: not served from the verdict cache on the warm run", v.Handler)
		}
	}
	if warm.Render() != cold.Render() || !sameEncoding(t, warm, cold) {
		t.Errorf("warm report differs from cold report:\n--- cold:\n%s\n--- warm:\n%s",
			cold.Render(), warm.Render())
	}
}

func sameEncoding(t *testing.T, a, b *Report) bool {
	t.Helper()
	da, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return string(da) == string(db)
}

// TestQueryBudgetUnknown: exhausting the per-handler solver-query budget
// must degrade to UNKNOWN at the solver-budget stage, never to a wrong
// EQUIV.
func TestQueryBudgetUnknown(t *testing.T) {
	rep, err := Run(Options{Handlers: []string{"div_rm8"}, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Handlers[0]
	if v.Verdict != VerdictUnknown || !strings.HasPrefix(v.Stage, "solver-budget:") {
		t.Fatalf("div_rm8 with budget 2: verdict %s stage %q, want UNKNOWN solver-budget",
			v.Verdict, v.Stage)
	}
}

// TestUnknownHandlerKey: a bad handler key is a request error, not a
// verdict.
func TestUnknownHandlerKey(t *testing.T) {
	if _, err := Run(Options{Handlers: []string{"no_such_handler"}}); err == nil {
		t.Fatal("Run accepted an unknown handler key")
	}
}

// TestGateEvaluation covers the gate predicate: UNKNOWN always violates,
// DIVERGES violates only outside the known set.
func TestGateEvaluation(t *testing.T) {
	rep := &Report{Handlers: []*HandlerVerdict{
		{Handler: "a", Verdict: VerdictEquiv},
		{Handler: "b", Verdict: VerdictDiverges, CE: &Counterexample{Output: "eax"}},
		{Handler: "c", Verdict: VerdictUnknown, Stage: "celer-lift: handler c"},
	}}
	if got := rep.Gate(&KnownDiverges{Handlers: []string{"b"}}); len(got) != 1 ||
		!strings.Contains(got[0], "UNKNOWN") {
		t.Fatalf("gate with b known = %v, want only the UNKNOWN violation", got)
	}
	if got := rep.Gate(&KnownDiverges{}); len(got) != 2 {
		t.Fatalf("gate with empty known = %v, want 2 violations", got)
	}
}

// TestEquivAgreement cross-checks the two symbolic checkers on shared
// handlers: where equivcheck proves fidelis ≡ celer, the PR-2 config
// checker must also prove fidelis self-equivalent on the same reg-form
// encoding and output set (a disagreement would mean the two symbolic
// pipelines model different state spaces).
func TestEquivAgreement(t *testing.T) {
	for _, key := range []string{"add_rm8_r8", "xor_rmv_rv", "adc_rmv_rv"} {
		var verdict string
		for _, v := range gateReport().Handlers {
			if v.Handler == key {
				verdict = v.Verdict
			}
		}
		if verdict != VerdictEquiv {
			t.Fatalf("%s: gate verdict %s, want EQUIV", key, verdict)
		}
		us, err := resolveHandlers([]string{key})
		if err != nil {
			t.Fatal(err)
		}
		enc, inst, err := regFormEncoding(us[0])
		if err != nil {
			t.Fatal(err)
		}
		rep, err := equiv.CheckInstruction(enc[:inst.Len], sem.BochsConfig, sem.BochsConfig,
			outputsFor(us[0].Spec.Name), DefaultPathCap)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete || !rep.Equivalent() {
			t.Errorf("%s: equiv.CheckInstruction disagrees with equivcheck EQUIV:\n%s",
				key, rep)
		}
	}
}

// concreteOutcome runs one concrete pre-state through both emulators and
// returns the filtered state difference (empty = they agree).
func concreteOutcome(t *testing.T, u *core.UniqueInstr, enc []byte, instLen int,
	symSt *symex.SymState, asn map[string]uint64) []diff.FieldDiff {
	t.Helper()
	tc := &core.TestCase{
		ID:         u.Key() + "/oracle",
		InstrBytes: append([]byte(nil), enc[:instLen]...),
		Handler:    u.Spec.Name,
		Mnemonic:   u.Spec.Mn,
		Assignment: asn,
		Baseline:   symSt.Baseline,
		Widths:     symSt.Vars,
		VarLoc:     symSt.VarLoc,
		VarMem:     symSt.VarMem,
	}
	prog, err := testgen.Build(tc)
	if err != nil {
		t.Fatalf("%s: building oracle test: %v", u.Key(), err)
	}
	image := machine.BaselineImage()
	boot := testgen.BaselineInit()
	fr := harness.RunBootBudget(harness.FidelisFactory(), image, boot, prog.Code, harness.Budget{})
	cr := harness.RunBootBudget(harness.CelerFactory(), image, boot, prog.Code, harness.Budget{})
	if fr.Snapshot == nil || cr.Snapshot == nil {
		t.Fatalf("%s: oracle run produced no snapshot", u.Key())
	}
	return diff.Compare(fr.Snapshot, cr.Snapshot, diff.UndefFilterFor(u.Spec.Name))
}

// makeSymState rebuilds the checker's symbolic pre-state for a handler, so
// tests can draw concrete assignments over the same variables.
func makeSymState() *symex.SymState {
	symSt := symex.NewSymState(machine.NewBaseline(machine.BaselineImage()))
	for r := 0; r < 8; r++ {
		symSt.MarkLocSymbolic(x86.GPR(x86.Reg(r)), ^uint64(0))
	}
	for _, b := range symFlagBits {
		symSt.MarkLocSymbolic(x86.Flag(b), 1)
	}
	return symSt
}

// FuzzVsOracle is the verdict/oracle agreement property: when the prover
// says EQUIV, no sampled concrete pre-state may distinguish the emulators —
// a sampled divergence on an EQUIV handler is a prover (or lifter) bug.
func FuzzVsOracle(f *testing.F) {
	for i := range DefaultGateHandlers {
		f.Add(uint16(i), uint64(i)*0x9e3779b97f4a7c15)
	}
	f.Fuzz(func(t *testing.T, hsel uint16, seed uint64) {
		key := DefaultGateHandlers[int(hsel)%len(DefaultGateHandlers)]
		var verdict *HandlerVerdict
		for _, v := range gateReport().Handlers {
			if v.Handler == key {
				verdict = v
			}
		}
		if verdict == nil || verdict.Verdict != VerdictEquiv {
			return // DIVERGES/UNKNOWN handlers carry no equivalence claim
		}
		us, err := resolveHandlers([]string{key})
		if err != nil {
			t.Fatal(err)
		}
		enc, inst, err := regFormEncoding(us[0])
		if err != nil {
			t.Fatal(err)
		}
		symSt := makeSymState()
		rng := rand.New(rand.NewSource(int64(seed)))
		asn := make(map[string]uint64, len(symSt.Vars))
		for name, w := range symSt.Vars {
			asn[name] = rng.Uint64() & expr.Mask(w)
		}
		if fields := concreteOutcome(t, us[0], enc, inst.Len, symSt, asn); len(fields) != 0 {
			t.Fatalf("prover bug: %s is EQUIV but concrete state %v diverges: %v",
				key, asn, fields)
		}
	})
}

// TestLifterSoundness cross-checks the celer lifter against concrete celer
// execution: for random concrete pre-states, evaluate the lifted paths'
// conditions to find the taken path, then require every lifted GPR/flag
// output to evaluate to exactly the value the concrete emulator computes.
func TestLifterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, key := range []string{
		// ALU in each encoding form, plus inc/dec/not.
		"add_rm8_r8", "adc_rmv_rv", "sbb_rmv_rv", "neg_rmv", "or_rv_rmv",
		"and_al_imm8", "xor_eax_immv", "sub_rmv_imm8s", "cmp_rm8_imm8",
		"test_rmv_immv", "add_rmv_immv", "inc_r", "dec_rm8", "not_rm8",
		// Multiply and divide, signed and unsigned, both widths.
		"mul_rmv", "mul_rm8", "imul_rm8", "imul1_rmv", "imul2_rv_rmv",
		"imul3_rv_rmv_imm8s", "div_rm8", "div_rmv", "idiv_rm8",
		// Every shift/rotate op across the 1/cl/imm8 count forms.
		"shl_rmv_imm8", "shl_rm8_cl", "shr_rmv_cl", "shr_rm8_1", "sar_rm8_1",
		"sar_rmv_cl", "rol_rmv_cl", "rol_rm8_1", "ror_rm8_imm8", "rcl_rmv_1",
		"rcr_rmv_cl", "rcr_rm8_imm8",
		// Bit tests, data movement, exchanges.
		"bt_rmv_rv", "bt_rmv_imm8", "bts_rmv_rv", "btr_rmv_imm8",
		"btc_rmv_imm8", "mov_rm8_r8", "mov_rv_rmv", "mov_r8_rm8",
		"mov_rmv_immv", "mov_rm8_imm8", "mov_r8_imm8", "mov_r_immv",
		"movzx_rv_rm8", "movzx_rv_rm16", "movsx_rv_rm8", "movsx_rv_rm16",
		"xchg_eax_r", "xchg_rmv_rv", "xadd_rmv_rv", "cmpxchg_rm8_r8",
		"cmpxchg_rmv_rv", "bswap",
		// Flag housekeeping, conversions, BCD, no-ops, faults.
		"cdq", "cwde", "lahf", "sahf", "clc", "stc", "cmc", "cld", "std",
		"aam", "aad", "nop", "ud2",
		// Condition-code decoding: setcc and cmovcc across the cc table.
		"sete", "setne", "seto", "setb", "setbe", "seta", "sets", "setp",
		"setl", "setge", "setg", "cmove", "cmovb", "cmovle", "cmovs",
		"cmovp", "cmovo", "cmovg", "cmova",
	} {
		us, err := resolveHandlers([]string{key})
		if err != nil {
			t.Fatal(err)
		}
		u := us[0]
		enc, inst, err := regFormEncoding(u)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		cPaths, err := liftCeler(inst, machine.NewBaseline(machine.BaselineImage()))
		if err != nil {
			t.Fatalf("%s: lift: %v", key, err)
		}
		symSt := makeSymState()
		for trial := 0; trial < 16; trial++ {
			asn := make(map[string]uint64, len(symSt.Vars))
			for name, w := range symSt.Vars {
				asn[name] = rng.Uint64() & expr.Mask(w)
			}
			// Find the lifted path this concrete state takes.
			var taken *celerPath
			for _, cp := range cPaths {
				sat := true
				for _, c := range cp.cond {
					if expr.Eval(c, asn) == 0 {
						sat = false
						break
					}
				}
				if sat {
					taken = cp
					break
				}
			}
			if taken == nil {
				t.Fatalf("%s: no lifted path is satisfied by %v", key, asn)
			}
			cr := runCeler(t, u, enc, inst.Len, symSt, asn)
			checkLiftedOutputs(t, key, taken, asn, cr)
		}
	}
}

// runCeler executes one concrete pre-state on the celer harness alone.
func runCeler(t *testing.T, u *core.UniqueInstr, enc []byte, instLen int,
	symSt *symex.SymState, asn map[string]uint64) *machine.Snapshot {
	t.Helper()
	tc := &core.TestCase{
		ID:         u.Key() + "/lifter",
		InstrBytes: append([]byte(nil), enc[:instLen]...),
		Handler:    u.Spec.Name,
		Mnemonic:   u.Spec.Mn,
		Assignment: asn,
		Baseline:   symSt.Baseline,
		Widths:     symSt.Vars,
		VarLoc:     symSt.VarLoc,
		VarMem:     symSt.VarMem,
	}
	prog, err := testgen.Build(tc)
	if err != nil {
		t.Fatalf("%s: building lifter test: %v", u.Key(), err)
	}
	r := harness.RunBootBudget(harness.CelerFactory(), machine.BaselineImage(),
		testgen.BaselineInit(), prog.Code, harness.Budget{})
	if r.Snapshot == nil {
		t.Fatalf("%s: celer run produced no snapshot", u.Key())
	}
	return r.Snapshot
}

// checkLiftedOutputs evaluates the taken lifted path's final state under the
// assignment and compares GPRs and symbolic flags against the concrete
// celer snapshot. Fault paths only check that the concrete run faulted too.
func checkLiftedOutputs(t *testing.T, key string,
	taken *celerPath, asn map[string]uint64, snap *machine.Snapshot) {
	t.Helper()
	if taken.outcome.Kind != ir.OutEnd {
		if snap.Exception == nil {
			t.Errorf("%s: lifted path faults (%v) but concrete celer did not under %v",
				key, taken.outcome, asn)
		}
		return
	}
	if snap.Exception != nil {
		t.Errorf("%s: lifted path ends normally but concrete celer raised #%d under %v",
			key, snap.Exception.Vector, asn)
		return
	}
	for r := 0; r < 8; r++ {
		want := uint64(snap.CPU.GPR[r])
		got := expr.Eval(taken.st.gpr[r], asn)
		if got != want {
			t.Errorf("%s: lifted %s = %#x, concrete celer = %#x under %v",
				key, x86.Reg(r), got, want, asn)
		}
	}
	for _, bitIdx := range symFlagBits {
		want := uint64(snap.CPU.EFLAGS >> bitIdx & 1)
		got := expr.Eval(taken.st.flags[bitIdx], asn)
		if got != want {
			t.Errorf("%s: lifted flag %s = %d, concrete celer = %d under %v",
				key, x86.Flag(bitIdx), got, want, asn)
		}
	}
}
