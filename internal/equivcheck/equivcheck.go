// Package equivcheck implements symbolic disequivalence checking between
// the Hi-Fi (fidelis) and Lo-Fi (celer) implementations, the Tamarin-style
// upgrade of the paper's sampled differential testing: instead of running
// both emulators on concrete states drawn from explored paths, both are
// executed *symbolically* over one shared symbolic pre-state and the solver
// is asked whether any input makes their final states differ.
//
// The fidelis side reuses the existing machinery end to end: the handler's
// IR program (sem.Compile) is explored by the symex engine over a state
// whose eight GPRs and seven EFLAGS bits are symbolic. The celer side is
// lifted by this package (lift.go) directly from its translator's
// semantics into the same internal/expr terms over the same st_* variables.
// For every pair of feasible paths (one per side) the path conditions are
// conjoined and a per-output disequality query
//
//	out_fidelis ≠ out_celer ∧ path_f ∧ path_c
//
// is posed to the bit-blasting solver *with assumptions*, so the hot path
// reuses the expression intern table and the solver's assumption memo
// across the whole pairwise product. UNSAT on every pair and output proves
// the handler EQUIV within the modeled state space; a SAT answer yields a
// model that is decoded into a ready-to-run corpus test case (testgen) and
// replayed on the concrete harness pair, feeding the existing triage and
// baseline pipeline. Budget exhaustion or an unliftable form yields
// UNKNOWN with the exhausted stage named in the degradation ledger.
package equivcheck

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pokeemu/internal/core"
	"pokeemu/internal/corpus"
	"pokeemu/internal/diff"
	"pokeemu/internal/expr"
	"pokeemu/internal/harness"
	"pokeemu/internal/ir"
	"pokeemu/internal/machine"
	"pokeemu/internal/solver"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// SemVersion versions the disequivalence-checking semantics (the lifter,
// the query shape, and the output set). It participates in the corpus
// cache key so a checker change invalidates cached verdicts.
const SemVersion = 1

// ConfigLabel names the fidelis semantics configuration checked against
// celer (the corpus cache key's Config field).
const ConfigLabel = "bochs"

// immFill is the byte used for every immediate position when synthesizing
// the canonical register-form encoding: nonzero so shift counts, aam
// divisors, and imul multiplier immediates exercise non-degenerate
// behavior, small so sign-extended forms stay positive and comparable.
const immFill = 0x05

// Verdict values.
const (
	VerdictEquiv    = "EQUIV"
	VerdictDiverges = "DIVERGES"
	VerdictUnknown  = "UNKNOWN"
)

// DefaultPathCap bounds the fidelis-side path exploration per handler when
// Options.MaxPaths is zero.
const DefaultPathCap = 256

// DefaultMaxConflicts is the per-query SAT conflict budget: high enough
// that every lifted handler family except 32-bit signed division proves
// out, low enough that a blow-up degrades to UNKNOWN in seconds.
const DefaultMaxConflicts = 100_000

// DefaultGateHandlers is the seeded handler subset the CI gate checks: a
// cross-section of every lifted instruction family (ALU, carry chains,
// inc/dec, mul/div, shifts, rotates, bit tests, moves, flag ops) plus one
// alias encoding whose DIVERGES verdict is the pinned, expected decoder
// finding. The list is small enough to finish within the pinned budget on
// every run.
var DefaultGateHandlers = []string{
	"add_rm8_r8",
	"adc_rmv_rv",
	"sub_rmv_immv",
	"cmp_al_imm8",
	"xor_rmv_rv",
	"test_rm8_imm8",
	"inc_r",
	"dec_rm8",
	"neg_rmv",
	"not_rm8",
	"mul_rmv",
	"imul2_rv_rmv",
	"div_rm8",
	"shl_rmv_imm8",
	"sar_rm8_1",
	"rol_rmv_cl",
	"bt_rmv_rv",
	"btc_rmv_imm8",
	"mov_rmv_rv",
	"movzx_rv_rm8",
	"xchg_rmv_rv",
	"cmpxchg_rm8_r8",
	"sete",
	"cmc",
	"lahf",
	"cwde",
	"add_rm8_imm8_alias",
}

// Options configure a Run.
type Options struct {
	// Handlers restricts checking to these unique-instruction keys
	// (core.UniqueInstr.Key). Empty = every handler in the explored set.
	Handlers []string
	// MaxPaths caps the fidelis-side path exploration (0 = DefaultPathCap).
	MaxPaths int
	// Budget caps solver queries per handler, exploration included
	// (0 = unlimited). Exceeding it yields UNKNOWN at stage solver-budget.
	Budget int64
	// MaxConflicts bounds each disequality query's SAT search
	// (0 = DefaultMaxConflicts; negative = unlimited). The budget is
	// deterministic — conflicts, not wall clock — so a hard handler gets
	// the same UNKNOWN verdict on every run and every machine.
	MaxConflicts int64
	// Workers bounds parallel handler checks. Like campaign workers it
	// only affects wall-clock time: the report is byte-identical for any
	// worker count.
	Workers int
	// Corpus caches per-handler verdicts keyed by (handler, config, path
	// cap, budget, semantics and generator versions). nil = no caching.
	Corpus *corpus.Corpus
	// NoCache ignores cached verdicts while still refreshing them.
	NoCache bool
}

// Counterexample is a decoded DIVERGES witness: the solver model as a
// st_* assignment, the generated ready-to-run test program, and the
// concrete replay result on the fidelis/celer harness pair.
type Counterexample struct {
	// Output names the disagreeing location ("eax", "cf", …) or "outcome"
	// when the paths terminate differently (e.g. #UD vs normal end).
	Output         string `json:"output"`
	PathFidelis    int    `json:"path_fidelis"`
	PathCeler      int    `json:"path_celer"`
	OutcomeFidelis string `json:"outcome_fidelis"`
	OutcomeCeler   string `json:"outcome_celer"`
	// Assignment is the distinguishing pre-state over the st_* variables
	// (model values, baseline-filled and width-masked).
	Assignment map[string]uint64 `json:"assignment"`
	// TestID / Prog / TestOffset are the generated corpus test case
	// (initializer + test instruction), ready for the triage pipeline.
	TestID     string `json:"test_id"`
	Prog       []byte `json:"prog,omitempty"`
	TestOffset int    `json:"test_offset,omitempty"`
	BuildErr   string `json:"build_err,omitempty"`
	// Replayed is set when the concrete harness pair reproduced a
	// divergence from this assignment; RootCause/Fields classify it.
	Replayed  bool     `json:"replayed"`
	RootCause string   `json:"root_cause,omitempty"`
	Fields    []string `json:"fields,omitempty"`
}

// HandlerVerdict is one handler's result. Every serialized field is
// deterministic — independent of worker count and cache temperature — so
// verdict reports are byte-identical across runs; Cached is runtime-only.
type HandlerVerdict struct {
	Handler string `json:"handler"`
	Verdict string `json:"verdict"`
	// Stage names the exhausted stage for UNKNOWN verdicts (the
	// degradation ledger entry): regform, celer-lift:…, fidelis-paths,
	// solver-budget, panic:….
	Stage        string          `json:"stage,omitempty"`
	PathsFidelis int             `json:"paths_fidelis"`
	PathsCeler   int             `json:"paths_celer"`
	Pairs        int             `json:"pairs"`   // feasible path pairs
	Outputs      int             `json:"outputs"` // locations compared per pair
	Queries      int64           `json:"queries"` // solver queries, exploration included
	CE           *Counterexample `json:"counterexample,omitempty"`

	Cached bool `json:"-"` // answered from the corpus (timing only)
}

// Report is the full verdict matrix of one Run, rendered in input order.
type Report struct {
	Config   string            `json:"config"`
	PathCap  int               `json:"path_cap"`
	Budget   int64             `json:"budget"`
	Handlers []*HandlerVerdict `json:"handlers"`
	Equiv    int               `json:"equiv"`
	Diverges int               `json:"diverges"`
	Unknown  int               `json:"unknown"`
	Queries  int64             `json:"queries"`

	// Timing is the run-dependent wall-clock/cache table (never part of
	// the deterministic report bytes).
	Timing *Timing `json:"-"`
}

// Timing is the run-dependent side channel: wall time and cache traffic.
type Timing struct {
	Wall        time.Duration
	CacheHits   int
	CacheMisses int
}

// Table renders the timing counters like the campaign's -timing table.
func (t *Timing) Table() string {
	return fmt.Sprintf("timing: wall %v, verdict cache %d hit / %d miss\n",
		t.Wall.Round(time.Millisecond), t.CacheHits, t.CacheMisses)
}

// instrSet memoizes the (expensive, deterministic) instruction-set
// exploration across Runs in one process — a warm cached Run then issues
// zero solver queries of its own.
var instrSet = sync.OnceValue(core.ExploreInstructionSet)

// resolveHandlers maps requested handler keys onto unique instructions, in
// request order (or exploration order when the request is empty).
func resolveHandlers(want []string) ([]*core.UniqueInstr, error) {
	all := instrSet().Unique
	if len(want) == 0 {
		return all, nil
	}
	byKey := make(map[string]*core.UniqueInstr, len(all))
	for _, u := range all {
		byKey[u.Key()] = u
	}
	out := make([]*core.UniqueInstr, 0, len(want))
	for _, k := range want {
		u, ok := byKey[k]
		if !ok {
			return nil, fmt.Errorf("equivcheck: unknown handler key %q (see pokeemu explore)", k)
		}
		out = append(out, u)
	}
	return out, nil
}

// Run checks every requested handler and assembles the verdict matrix.
// The report is deterministic: byte-identical for any Workers value and
// any cache temperature.
func Run(opts Options) (*Report, error) {
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = DefaultPathCap
	}
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = DefaultMaxConflicts
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	us, err := resolveHandlers(opts.Handlers)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	env := &checkEnv{image: machine.BaselineImage(), boot: testgen.BaselineInit()}
	results := make([]*HandlerVerdict, len(us))
	var next int64 = -1
	var cacheHits, cacheMisses int64
	var wg sync.WaitGroup
	workers := opts.Workers
	if workers > len(us) {
		workers = len(us)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(us) {
					return
				}
				v := checkHandler(us[i], &opts, env)
				if v.Cached {
					atomic.AddInt64(&cacheHits, 1)
				} else {
					atomic.AddInt64(&cacheMisses, 1)
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()

	rep := &Report{
		Config:   ConfigLabel,
		PathCap:  opts.MaxPaths,
		Budget:   opts.Budget,
		Handlers: results,
		Timing: &Timing{
			Wall:        time.Since(start),
			CacheHits:   int(cacheHits),
			CacheMisses: int(cacheMisses),
		},
	}
	for _, v := range results {
		switch v.Verdict {
		case VerdictEquiv:
			rep.Equiv++
		case VerdictDiverges:
			rep.Diverges++
		default:
			rep.Unknown++
		}
		rep.Queries += v.Queries
	}
	return rep, nil
}

// checkEnv is the read-only state shared by every handler check.
type checkEnv struct {
	image *machine.Memory
	boot  []byte // baseline initializer for counterexample replay
}

// cacheKey builds the corpus key for one handler under these options.
func cacheKey(handler string, opts *Options) corpus.EquivKey {
	return corpus.EquivKey{
		Handler:      handler,
		Config:       ConfigLabel,
		PathCap:      opts.MaxPaths,
		Budget:       opts.Budget,
		MaxConflicts: opts.MaxConflicts,
		SemVersion:   SemVersion,
		GenVersion:   testgen.Version,
	}
}

// checkHandler produces one handler's verdict, answering from the corpus
// when possible and recovering any panic into an UNKNOWN verdict so a bad
// handler never kills the run.
func checkHandler(u *core.UniqueInstr, opts *Options, env *checkEnv) (v *HandlerVerdict) {
	key := cacheKey(u.Key(), opts)
	if opts.Corpus != nil && !opts.NoCache {
		if e, ok := opts.Corpus.GetEquiv(key); ok {
			var cached HandlerVerdict
			if json.Unmarshal(e.Verdict, &cached) == nil && cached.Handler == u.Key() {
				cached.Cached = true
				return &cached
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			v = &HandlerVerdict{
				Handler: u.Key(), Verdict: VerdictUnknown,
				Stage: fmt.Sprintf("panic: %v", r),
			}
		}
		if opts.Corpus != nil {
			if data, err := json.Marshal(v); err == nil {
				// A failed cache write degrades to an uncached next run.
				_ = opts.Corpus.PutEquiv(&corpus.EquivEntry{Key: key, Verdict: data})
			}
		}
	}()
	v = checkOne(u, opts, env)
	return v
}

// fpath is one explored fidelis path.
type fpath struct {
	cond    []*expr.Expr
	outcome ir.Outcome
	final   *symex.SymState
}

// outputsFor lists the compared locations for a handler: all eight GPRs
// plus the status/direction flags the architecture defines for it.
// Architecturally undefined flags (diff.UndefFilterFor) are excluded —
// celer leaves them unchanged while the Bochs-faithful fidelis models a
// specific choice, a disagreement the concrete pipeline also filters out.
func outputsFor(handler string) []x86.Loc {
	undef := diff.UndefFilterFor(handler).EFLAGSMask
	outs := make([]x86.Loc, 0, 8+len(symFlagBits))
	for r := 0; r < 8; r++ {
		outs = append(outs, x86.GPR(x86.Reg(r)))
	}
	for _, b := range symFlagBits {
		if undef>>b&1 == 0 {
			outs = append(outs, x86.Flag(b))
		}
	}
	return outs
}

// unknown builds an UNKNOWN verdict at the named stage.
func unknown(u *core.UniqueInstr, stage string, queries int64) *HandlerVerdict {
	return &HandlerVerdict{
		Handler: u.Key(), Verdict: VerdictUnknown, Stage: stage, Queries: queries,
	}
}

// checkOne runs the full disequivalence check for one handler.
func checkOne(u *core.UniqueInstr, opts *Options, env *checkEnv) *HandlerVerdict {
	enc, inst, err := regFormEncoding(u)
	if err != nil {
		return unknown(u, "regform: "+err.Error(), 0)
	}

	// Celer side: lift the translator's semantics into expr terms.
	cPaths, err := liftCeler(inst, machine.NewBaseline(env.image))
	if err != nil {
		return unknown(u, "celer-lift: "+liftReason(err), 0)
	}

	// Fidelis side: symbolic exploration of the handler's IR program over
	// the same symbolic pre-state variables.
	prog := sem.Compile(inst, sem.BochsConfig)
	symSt := symex.NewSymState(machine.NewBaseline(env.image))
	for r := 0; r < 8; r++ {
		symSt.MarkLocSymbolic(x86.GPR(x86.Reg(r)), ^uint64(0))
	}
	for _, b := range symFlagBits {
		symSt.MarkLocSymbolic(x86.Flag(b), 1)
	}
	en := symex.NewEngine(symSt, nil, symex.Options{
		MaxPaths: opts.MaxPaths, MaxSteps: 1 << 16, Seed: 1, SkipMinimize: true,
	})
	var fPaths []*fpath
	aborted := false
	en.Explore(prog, func(r *symex.PathResult) {
		if r.Aborted {
			aborted = true
		}
		fPaths = append(fPaths, &fpath{
			cond:    append([]*expr.Expr(nil), r.Cond...),
			outcome: r.Outcome,
			final:   r.Final,
		})
	})
	stats := en.Stats()
	if !stats.Exhausted || aborted {
		return unknown(u, "fidelis-paths: exploration capped", stats.SolverQueries)
	}

	outputs := outputsFor(u.Spec.Name)
	v := &HandlerVerdict{
		Handler: u.Key(), Verdict: VerdictEquiv,
		PathsFidelis: len(fPaths), PathsCeler: len(cPaths),
		Outputs: len(outputs),
	}

	// Pairwise path product over one solver instance: the assumption memo
	// and intern table amortize shared sub-terms across all queries.
	// The disequality solver runs with reduceDB off (and no subsumption):
	// verdicts here sit against a MaxConflicts budget boundary and the
	// counterexample models feed the pinned known-diverges baseline, so
	// the search trajectory is frozen at the pre-reduction behavior to
	// keep the full-matrix verdict counts and cached entries stable.
	bv := solver.NewBV()
	bv.NoReduce = true
	if opts.MaxConflicts > 0 {
		bv.MaxConflicts = opts.MaxConflicts
	}
	queries := func() int64 { return stats.SolverQueries + bv.Queries }
	overBudget := func() bool { return opts.Budget > 0 && queries() >= opts.Budget }
	litsOf := func(conds []*expr.Expr) []solver.Lit {
		lits := make([]solver.Lit, 0, len(conds))
		for _, c := range conds {
			lits = append(lits, bv.LitFor(c))
		}
		return lits
	}

	for fi, fp := range fPaths {
		fLits := litsOf(fp.cond)
		for ci, cp := range cPaths {
			if overBudget() {
				return unknown(u, "solver-budget: query budget exhausted", queries())
			}
			pairLits := append(append([]solver.Lit(nil), fLits...), litsOf(cp.cond)...)
			switch bv.CheckLits(pairLits) {
			case solver.Unsat:
				continue // infeasible combination
			case solver.Unknown:
				return unknown(u, "solver-budget: conflict limit", queries())
			}
			v.Pairs++
			if fp.outcome.Kind != cp.outcome.Kind ||
				(fp.outcome.Kind == ir.OutRaise && fp.outcome.Vector != cp.outcome.Vector) {
				v.Verdict = VerdictDiverges
				v.CE = buildCE(u, enc, inst, fi, ci, fp, cp, "outcome",
					bv.Model(), symSt, env)
				v.Queries = queries()
				return v
			}
			if fp.outcome.Kind != ir.OutEnd {
				continue // same fault/halt on both sides; no state to compare
			}
			for _, loc := range outputs {
				ne := expr.Ne(fp.final.Get(loc), cp.st.get(loc))
				if ne.IsFalse() {
					continue // structurally identical terms
				}
				if overBudget() {
					return unknown(u, "solver-budget: query budget exhausted", queries())
				}
				switch bv.CheckLits(append(pairLits, bv.LitFor(ne))) {
				case solver.Sat:
					v.Verdict = VerdictDiverges
					v.CE = buildCE(u, enc, inst, fi, ci, fp, cp, loc.String(),
						bv.Model(), symSt, env)
					v.Queries = queries()
					return v
				case solver.Unknown:
					return unknown(u, "solver-budget: conflict limit", queries())
				}
			}
		}
	}
	v.Queries = queries()
	return v
}

// liftReason extracts the stage detail from a lifter error.
func liftReason(err error) string {
	if ue, ok := err.(*UnsupportedError); ok {
		return ue.Reason
	}
	return err.Error()
}

// buildCE decodes a distinguishing solver model into a corpus test case
// and replays it on the concrete fidelis/celer pair. A reproduced
// divergence is classified with the shared root-cause analysis; a failed
// reproduction is recorded too (Replayed=false flags a prover bug the
// replay property test will catch).
func buildCE(u *core.UniqueInstr, enc []byte, inst *x86.Inst, fi, ci int,
	fp *fpath, cp *celerPath, output string, model map[string]uint64,
	symSt *symex.SymState, env *checkEnv) *Counterexample {

	asn := make(map[string]uint64, len(symSt.Vars))
	for name, w := range symSt.Vars {
		val, ok := model[name]
		if !ok {
			val = symSt.Baseline[name]
		}
		asn[name] = val & expr.Mask(w)
	}
	ce := &Counterexample{
		Output:         output,
		PathFidelis:    fi,
		PathCeler:      ci,
		OutcomeFidelis: fmt.Sprint(fp.outcome),
		OutcomeCeler:   fmt.Sprint(cp.outcome),
		Assignment:     asn,
		TestID:         u.Key() + "/equivcheck#" + strconv.Itoa(fi),
	}

	tc := &core.TestCase{
		ID:         ce.TestID,
		InstrBytes: append([]byte(nil), enc[:inst.Len]...),
		Handler:    u.Spec.Name,
		Mnemonic:   u.Spec.Mn,
		PathIndex:  fi,
		Outcome:    fp.outcome,
		Assignment: asn,
		Baseline:   symSt.Baseline,
		Widths:     symSt.Vars,
		VarLoc:     symSt.VarLoc,
		VarMem:     symSt.VarMem,
	}
	prog, err := testgen.Build(tc)
	if err != nil {
		ce.BuildErr = err.Error()
		return ce
	}
	ce.Prog = prog.Code
	ce.TestOffset = prog.TestOffset

	fr := harness.RunBootBudget(harness.FidelisFactory(), env.image, env.boot, prog.Code, harness.Budget{})
	cr := harness.RunBootBudget(harness.CelerFactory(), env.image, env.boot, prog.Code, harness.Budget{})
	if fr.Snapshot == nil || cr.Snapshot == nil || fr.TimedOut || cr.TimedOut ||
		fr.BaselineFault || cr.BaselineFault {
		return ce
	}
	fields := diff.Compare(fr.Snapshot, cr.Snapshot, diff.UndefFilterFor(u.Spec.Name))
	if len(fields) == 0 {
		return ce
	}
	ce.Replayed = true
	d := &diff.Difference{
		TestID: tc.ID, Handler: u.Spec.Name, Mnemonic: u.Spec.Mn,
		ImplA: fr.Impl, ImplB: cr.Impl, Fields: fields,
	}
	ce.RootCause = diff.RootCause(d)
	for _, f := range fields {
		ce.Fields = append(ce.Fields, f.Field)
	}
	sort.Strings(ce.Fields)
	return ce
}

// regFormEncoding synthesizes the canonical register-form encoding for a
// unique instruction: the representative's prefixes and opcode, ModRM
// forced to mod 3 (dropping any SIB/displacement), and every immediate
// byte filled with immFill. The result must decode to the same handler at
// the same operand size, or the handler is not checkable symbolically
// (memory-only forms like lea).
func regFormEncoding(u *core.UniqueInstr) ([]byte, *x86.Inst, error) {
	full := make([]byte, x86.MaxInstLen)
	copy(full, u.Repr)
	inst0, err := x86.Decode(full)
	if err != nil {
		return nil, nil, fmt.Errorf("representative does not decode: %w", err)
	}
	opLen := inst0.Len - inst0.ImmSize - inst0.DispSize
	if inst0.HasSIB {
		opLen--
	}
	if inst0.HasModRM {
		opLen--
	}
	if opLen <= 0 || opLen > inst0.Len {
		return nil, nil, fmt.Errorf("cannot locate opcode bytes")
	}
	enc := make([]byte, 0, x86.MaxInstLen)
	enc = append(enc, inst0.Raw[:opLen]...)
	if inst0.HasModRM {
		enc = append(enc, inst0.ModRM|0xc0)
	}
	for i := 0; i < inst0.ImmSize; i++ {
		enc = append(enc, immFill)
	}
	full2 := make([]byte, x86.MaxInstLen)
	copy(full2, enc)
	inst, err := x86.Decode(full2)
	if err != nil {
		return nil, nil, fmt.Errorf("no register form: %w", err)
	}
	if inst.Spec.Name != inst0.Spec.Name || inst.OpSize != inst0.OpSize {
		return nil, nil, fmt.Errorf("register form decodes to %s", inst.Spec.Name)
	}
	if inst.HasModRM && !inst.IsRegForm() {
		return nil, nil, fmt.Errorf("register form still has a memory operand")
	}
	return full2, inst, nil
}
