package randtest

import "testing"

func TestRandomBaselineRuns(t *testing.T) {
	res := Run(Config{Tests: 150, Seed: 7, FuzzState: true})
	if res.Executed != 150 {
		t.Fatalf("executed %d, want 150", res.Executed)
	}
	if res.Valid < res.Executed {
		t.Error("every executed test stems from a valid sequence")
	}
	if res.Generated < res.Valid {
		t.Error("generation count must dominate valid count")
	}
}

func TestRandomFindsEncodingButNotOrderingBugs(t *testing.T) {
	// The Section 6.2 comparison: random testing stumbles into encoding
	// acceptance differences quickly (every alias byte sequence triggers
	// one), but the ordering/atomicity findings need engineered states.
	res := Run(Config{Tests: 800, Seed: 3, FuzzState: true})
	if res.DiffTests == 0 {
		t.Error("random testing should find at least encoding differences")
	}
	for _, cause := range []string{
		"iret: stack pop order",
		"leave: non-atomic ESP update",
	} {
		if res.FindsCause(cause) {
			t.Errorf("random testing found %q — astronomically unlikely; "+
				"check the harness", cause)
		}
	}
}

func TestRandomWithoutFuzzState(t *testing.T) {
	res := Run(Config{Tests: 50, Seed: 1, FuzzState: false})
	if res.Executed != 50 {
		t.Fatalf("executed %d", res.Executed)
	}
}
